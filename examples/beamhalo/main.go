// Beamhalo reproduces the paper's §2 workload end to end: a
// mismatched intense beam in a quadrupole channel develops a halo over
// hundreds of lattice periods; frames are partitioned, extracted at a
// byte budget, and rendered looking down the beam axis like Fig 5,
// with the four-fold symmetry and halo statistics printed per frame.
// It also demonstrates the Fig 3 inverse-linked transfer-function
// editing and the Fig 1 volume-vs-hybrid comparison on the final
// frame.
//
//	go run ./examples/beamhalo
package main

import (
	"fmt"
	"log"

	"repro/internal/beam"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/stats"
	"repro/internal/vec"
	"repro/internal/volren"

	"math"

	"repro/internal/render"
)

func main() {
	log.SetFlags(0)

	const particles = 60_000
	pp := core.NewParticlePipeline(particles)
	pp.Extract.VolumeRes = 32
	pp.Extract.Budget = particles / 15

	sim, err := pp.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	m := sim.Matched()
	fmt.Printf("matched envelope (%.4f, %.4f), mismatch %.1fx -> halo resonance\n",
		m.A, m.B, pp.Sim.Mismatch)

	// Fig 5: evolution frames viewed down the beam axis.
	const nFrames = 6
	fmt.Printf("\n%-8s %-8s %-12s %-12s %-10s\n", "frame", "period", "halo frac", "4-fold sym", "hybrid MB")
	var lastRep *hybrid.Representation
	for f := 0; f < nFrames; f++ {
		sim.RunPeriods(8)
		snap := sim.Snapshot()
		rep, err := pp.ProcessFrame(snap)
		if err != nil {
			log.Fatal(err)
		}
		lastRep = rep
		halo := beam.FractionBeyondRadius(snap.E, 2.5*(m.A+m.B)/2, 0)
		sym := beam.FourFoldSymmetry(snap.E)
		fmt.Printf("%-8d %-8d %-12.4f %-12.3f %-10.2f\n",
			f, (f+1)*8, halo, sym, float64(rep.SizeBytes())/1e6)

		tf, err := core.DefaultTF(rep)
		if err != nil {
			log.Fatal(err)
		}
		fb, _, _, err := core.RenderFrame(rep, tf, 384, 384, vec.New(0, 0, 1))
		if err != nil {
			log.Fatal(err)
		}
		if err := fb.WritePNG(fmt.Sprintf("beamhalo_frame%02d.png", f)); err != nil {
			log.Fatal(err)
		}
	}

	// Fig 3: inverse-linked transfer function editing.
	fmt.Println("\ntransfer-function linkage (Fig 3): raising the volume profile lowers the point profile")
	tf, err := core.DefaultTF(lastRep)
	if err != nil {
		log.Fatal(err)
	}
	before := tf.Point.Val[1]
	if err := tf.SetVolumeStop(1, 0.9); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  volume stop 1 -> 0.90; point stop 1: %.2f -> %.2f (complementary: %v)\n",
		before, tf.Point.Val[1], tf.Complementary())

	// Fig 1: volume-only vs hybrid on the final frame.
	fmt.Println("\nFig 1 comparison on the final frame:")
	cam, err := render.LookAtBounds(lastRep.Bounds, vec.New(0.2, 0.25, 1), math.Pi/3, 1)
	if err != nil {
		log.Fatal(err)
	}
	tfc, err := core.DefaultTF(lastRep)
	if err != nil {
		log.Fatal(err)
	}
	fbVol, _ := render.NewFramebuffer(384, 384)
	vr, err := volren.New(lastRep.Volume, tfc)
	if err != nil {
		log.Fatal(err)
	}
	vr.Render(fbVol, cam)
	fbHyb, _ := render.NewFramebuffer(384, 384)
	if _, _, err := volren.RenderHybrid(lastRep, tfc, fbHyb, cam, 1.2, false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  gradient energy: volume-only %.4f, hybrid %.4f (points reveal halo detail)\n",
		stats.GradientEnergy(fbVol), stats.GradientEnergy(fbHyb))
	if err := fbVol.WritePNG("beamhalo_volume_only.png"); err != nil {
		log.Fatal(err)
	}
	if err := fbHyb.WritePNG("beamhalo_hybrid.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote beamhalo_frame*.png, beamhalo_volume_only.png, beamhalo_hybrid.png")
}
