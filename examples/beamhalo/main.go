// Beamhalo reproduces the paper's §2 workload end to end: a
// mismatched intense beam in a quadrupole channel develops a halo over
// hundreds of lattice periods; frames stream through the staged
// engine — frame N+1 simulates while frame N partitions, frame N-1
// extracts and frame N-2 renders — and are drawn looking down the beam
// axis like Fig 5, with the four-fold symmetry and halo statistics
// printed per frame. It also demonstrates the Fig 3 inverse-linked
// transfer-function editing and the Fig 1 volume-vs-hybrid comparison
// on the final frame.
//
//	go run ./examples/beamhalo
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/beam"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/render"
	"repro/internal/stats"
	"repro/internal/vec"
	"repro/internal/volren"
)

func main() {
	log.SetFlags(0)

	const particles = 60_000
	pp := core.NewParticlePipeline(particles)
	pp.Extract.VolumeRes = 32
	pp.Extract.Budget = particles / 15

	sim, err := pp.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	m := sim.Matched()
	fmt.Printf("matched envelope (%.4f, %.4f), mismatch %.1fx -> halo resonance\n",
		m.A, m.B, pp.Sim.Mismatch)

	// Fig 5: evolution frames viewed down the beam axis, streamed
	// through the frame-overlapped engine.
	const nFrames = 6
	fmt.Printf("\n%-8s %-8s %-12s %-12s %-10s\n", "frame", "period", "halo frac", "4-fold sym", "hybrid MB")
	s := pp.StreamFrames(context.Background(), core.SimSource(sim, nFrames, 8), core.StreamOptions{
		KeepFrames: true, // per-frame halo statistics need the ensemble
		Buffer:     2,
		Render: &core.RenderOptions{
			Width: 384, Height: 384,
			ViewDir: vec.New(0, 0, 1),
		},
	})
	var lastRep *hybrid.Representation
	for r := range s.Out {
		lastRep = r.Rep
		halo := beam.FractionBeyondRadius(r.Frame.E, 2.5*(m.A+m.B)/2, 0)
		sym := beam.FourFoldSymmetry(r.Frame.E)
		fmt.Printf("%-8d %-8d %-12.4f %-12.3f %-10.2f\n",
			r.Index, (r.Index+1)*8, halo, sym, float64(r.Rep.SizeBytes())/1e6)
		if err := r.FB.WritePNG(fmt.Sprintf("beamhalo_frame%02d.png", r.Index)); err != nil {
			log.Fatal(err)
		}
		s.RecycleFB(r.FB)
	}
	if err := s.Wait(); err != nil {
		log.Fatal(err)
	}

	// Fig 3: inverse-linked transfer function editing.
	fmt.Println("\ntransfer-function linkage (Fig 3): raising the volume profile lowers the point profile")
	tf, err := core.DefaultTF(lastRep)
	if err != nil {
		log.Fatal(err)
	}
	before := tf.Point.Val[1]
	if err := tf.SetVolumeStop(1, 0.9); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  volume stop 1 -> 0.90; point stop 1: %.2f -> %.2f (complementary: %v)\n",
		before, tf.Point.Val[1], tf.Complementary())

	// Fig 1: volume-only vs hybrid on the final frame.
	fmt.Println("\nFig 1 comparison on the final frame:")
	cam, err := render.LookAtBounds(lastRep.Bounds, vec.New(0.2, 0.25, 1), math.Pi/3, 1)
	if err != nil {
		log.Fatal(err)
	}
	tfc, err := core.DefaultTF(lastRep)
	if err != nil {
		log.Fatal(err)
	}
	fbVol, _ := render.NewFramebuffer(384, 384)
	vr, err := volren.New(lastRep.Volume, tfc)
	if err != nil {
		log.Fatal(err)
	}
	vr.Render(fbVol, cam)
	fbHyb, _ := render.NewFramebuffer(384, 384)
	if _, _, err := volren.RenderHybrid(lastRep, tfc, fbHyb, cam, 1.2, false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  gradient energy: volume-only %.4f, hybrid %.4f (points reveal halo detail)\n",
		stats.GradientEnergy(fbVol), stats.GradientEnergy(fbHyb))
	if err := fbVol.WritePNG("beamhalo_volume_only.png"); err != nil {
		log.Fatal(err)
	}
	if err := fbHyb.WritePNG("beamhalo_hybrid.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote beamhalo_frame*.png, beamhalo_volume_only.png, beamhalo_hybrid.png")
}
