// Quickstart: the 60-second end-to-end tour of the library.
//
// It runs a small mismatched-beam simulation, partitions one frame
// into an octree, extracts a hybrid representation, renders it to
// quickstart_beam.png, then solves a small 3-cell cavity, traces
// electric field lines with the density-proportional seeding strategy,
// and renders them as self-orienting surfaces to quickstart_cavity.png.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sos"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	if err := core.Verify(); err != nil {
		log.Fatal(err)
	}

	// --- Part 1: hybrid particle visualization (paper §2) ---
	fmt.Println("1. beam dynamics: 20,000 particles, 10 lattice periods, 1.5x mismatch")
	pp := core.NewParticlePipeline(20_000)
	pp.Extract.VolumeRes = 32
	sim, err := pp.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	sim.RunPeriods(10)

	fmt.Println("2. partition into octree + extract hybrid representation")
	rep, err := pp.ProcessFrame(sim.Snapshot())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   hybrid: %d halo points + %d^3 volume = %.2f MB (raw: %.2f MB)\n",
		rep.NumPoints(), rep.Volume.Nx,
		float64(rep.SizeBytes())/1e6, float64(sim.Particles.Len()*48)/1e6)

	fmt.Println("3. render with inverse-linked transfer functions")
	tf, err := core.DefaultTF(rep)
	if err != nil {
		log.Fatal(err)
	}
	fb, rast, vr, err := core.RenderFrame(rep, tf, 512, 512, vec.New(0.4, 0.3, 1))
	if err != nil {
		log.Fatal(err)
	}
	if err := fb.WritePNG("quickstart_beam.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   quickstart_beam.png: %d point splats, %d volume samples\n",
		rast.PointCount, vr.SampleCount)

	// --- Part 2: field-line visualization (paper §3) ---
	fmt.Println("4. FDTD solve of a 3-cell accelerator cavity")
	fp := core.NewFieldPipeline(8, 120)
	frame, err := fp.Solve(6)
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := fp.Mesh()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d hex elements, dt=%.3g (Courant-limited), t=%.2f\n",
		mesh.NumElements(), fp.Sim().DT(), frame.Time)

	fmt.Println("5. density-proportional field-line seeding + SOS rendering")
	lines, err := fp.TraceE(frame)
	if err != nil {
		log.Fatal(err)
	}
	fbl, st, err := fp.RenderLines(lines.Lines, sos.TechSOS, 512, 512, vec.New(0.8, 0.45, 0.9))
	if err != nil {
		log.Fatal(err)
	}
	if err := fbl.WritePNG("quickstart_cavity.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   quickstart_cavity.png: %d lines, %d triangles (a 6-sided tube set would need %dx more)\n",
		st.Lines, st.Triangles, 6)
	fmt.Println("done.")
}
