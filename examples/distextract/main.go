// Distextract demonstrates distributed stage execution across real
// processes — the architectural split the paper ran at NERSC, where
// simulation and visualization compute lived on different machines.
//
// The parent process runs the beam simulation and the stream
// orchestration; the heavy partition+extract stage runs on a fleet of
// two child worker processes (this same binary re-executed with
// -worker, exactly what cmd/vizworker hosts in production). Each
// frame's projected point set crosses a process boundary over the
// service protocol's Compute verb and the hybrid representation comes
// back, with frames striped across both workers.
//
// Mid-stream, the demo kills one of the two workers outright. The
// fleet ejects it, re-dispatches its in-flight frames to the
// survivor, and the stream finishes with every frame in order and
// bit-identical to an all-local run of the same configuration — the
// failover is invisible in the output.
//
//	go run ./examples/distextract
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
)

const (
	particles = 30_000
	nFrames   = 4
	volumeRes = 24
	nWorkers  = 2
)

func main() {
	log.SetFlags(0)
	if len(os.Args) > 1 && os.Args[1] == "-worker" {
		runWorker()
		return
	}

	// Spawn the worker fleet as separate OS processes on ephemeral
	// ports, scraping each chosen address off the child's stdout.
	children := make([]*exec.Cmd, nWorkers)
	addrs := make([]string, nWorkers)
	for i := range children {
		child := exec.Command(os.Args[0], "-worker")
		child.Stderr = os.Stderr
		stdout, err := child.StdoutPipe()
		if err != nil {
			log.Fatal(err)
		}
		if err := child.Start(); err != nil {
			log.Fatal(err)
		}
		defer func() {
			child.Process.Kill()
			child.Wait()
		}()
		addr, err := readWorkerAddr(stdout)
		if err != nil {
			log.Fatalf("worker never came up: %v", err)
		}
		children[i], addrs[i] = child, addr
		fmt.Printf("parent: worker process %d serving on %s\n", child.Process.Pid, addr)
	}

	pipelineFor := func() (*core.ParticlePipeline, core.FrameSource, error) {
		pp := core.NewParticlePipeline(particles)
		pp.Extract.VolumeRes = volumeRes
		// Pin the splat worker count so all runs are bit-identical
		// even if the processes saw different GOMAXPROCS.
		pp.Extract.Workers = 2
		sim, err := pp.NewSim()
		if err != nil {
			return nil, nil, err
		}
		return pp, core.SimSource(sim, nFrames, 2), nil
	}

	// All-local reference run.
	pp, src, err := pipelineFor()
	if err != nil {
		log.Fatal(err)
	}
	localStart := time.Now()
	var local [][]byte
	s := pp.StreamFrames(context.Background(), src, core.StreamOptions{ExtractWorkers: 2})
	for r := range s.Out {
		local = append(local, r.Rep.AppendBinary(nil))
	}
	if err := s.Wait(); err != nil {
		log.Fatal(err)
	}
	localTime := time.Since(localStart)

	// Distributed run: same simulation, same configs, but the
	// partition+extract stage stripes across the child fleet — and one
	// child is killed under the stream.
	pp, src, err = pipelineFor()
	if err != nil {
		log.Fatal(err)
	}
	distStart := time.Now()
	s = pp.StreamFrames(context.Background(), src, core.StreamOptions{
		ExtractAddrs:   addrs,
		ExtractWorkers: 2, // frames in flight per worker
		ExtractPolicy: &remote.FleetOptions{
			EjectAfter:    1,
			ProbeInterval: -1, // the killed child is not coming back
		},
	})
	frame := 0
	for r := range s.Out {
		enc := r.Rep.AppendBinary(nil)
		match := "differs!"
		if bytes.Equal(enc, local[r.Index]) {
			match = "bit-identical"
		}
		fmt.Printf("parent: frame %d extracted on fleet (%d halo points, %.2f MB) — %s\n",
			r.Index, r.Rep.NumPoints(), float64(len(enc))/1e6, match)
		if match == "differs!" {
			log.Fatalf("frame %d: distributed extraction diverged from local", r.Index)
		}
		frame++
		if frame == 1 {
			// One frame through: kill a worker with the stream live. The
			// fleet must hand its frames to the survivor.
			fmt.Printf("parent: killing worker process %d mid-stream\n", children[0].Process.Pid)
			children[0].Process.Kill()
		}
	}
	if err := s.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parent: %d/%d frames bit-identical across process boundaries, one worker lost mid-run\n",
		frame, nFrames)
	fmt.Printf("parent: local %.2fs, distributed %.2fs (loopback wire cost included)\n",
		localTime.Seconds(), time.Since(distStart).Seconds())
}

// runWorker is the child half: a vizworker on an ephemeral port.
func runWorker() {
	w, err := remote.NewWorker("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// The parent scrapes this line for the port.
	fmt.Printf("vizworker: serving on %s\n", w.Addr())
	select {} // serve until the parent kills us
}

// readWorkerAddr scans the child's stdout for the serving line.
func readWorkerAddr(r interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "vizworker: serving on "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("worker exited without announcing an address")
}
