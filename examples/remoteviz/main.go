// Remoteviz demonstrates the remote-visualization setting the paper
// motivates: hybrid frames are produced server-side (where the
// supercomputer and the raw terabytes live), and a thin client on "a
// scientist's desk thousands of miles away" streams and renders them.
// The client link is throttled to model the wide-area network, showing
// why the hybrid representation's compactness matters: the raw frame
// would take proportionally longer by its size ratio.
//
//	go run ./examples/remoteviz
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/pario"
	"repro/internal/remote"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)

	// Server side: simulate and extract three hybrid frames.
	const particles = 30_000
	pp := core.NewParticlePipeline(particles)
	pp.Extract.VolumeRes = 24
	sim, err := pp.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	var frames []*hybrid.Representation
	for f := 0; f < 3; f++ {
		sim.RunPeriods(6)
		rep, err := pp.ProcessFrame(sim.Snapshot())
		if err != nil {
			log.Fatal(err)
		}
		frames = append(frames, rep)
	}
	srv, err := remote.NewServer("127.0.0.1:0", frames)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server: %d hybrid frames at %s\n", len(frames), srv.Addr())

	// Client side: fetch over a throttled link and render.
	cli, err := remote.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	const linkBps = 20 << 20 // a 20 MB/s wide-area link
	cli.BandwidthBps = linkBps

	n, err := cli.NumFrames()
	if err != nil {
		log.Fatal(err)
	}
	rawBytes := pario.FrameBytes(particles)
	fmt.Printf("client: %d frames available; link %d MB/s\n\n", n, linkBps>>20)
	for i := 0; i < n; i++ {
		rep, size, took, err := cli.FetchFrame(i)
		if err != nil {
			log.Fatal(err)
		}
		rawTime := remote.TransferEstimate(rawBytes, linkBps)
		fmt.Printf("frame %d: %7.2f MB in %8v (raw %.2f MB would take %v — %.0fx longer)\n",
			i, float64(size)/1e6, took.Round(1000),
			float64(rawBytes)/1e6, rawTime.Round(1000),
			float64(rawBytes)/float64(size))

		tf, err := core.DefaultTF(rep)
		if err != nil {
			log.Fatal(err)
		}
		fb, _, _, err := core.RenderFrame(rep, tf, 256, 256, vec.New(0.4, 0.3, 1))
		if err != nil {
			log.Fatal(err)
		}
		if err := fb.WritePNG(fmt.Sprintf("remoteviz_frame%d.png", i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nwrote remoteviz_frame*.png")
}
