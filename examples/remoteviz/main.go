// Remoteviz demonstrates the visualization service in the remote
// setting the paper motivates — but against a *live* pipeline: the
// server side runs the beam simulation and publishes each extracted
// hybrid frame into a bounded latest-wins ring while a subscribed
// client consumes the run in both client modes:
//
// fetch-and-render-locally (download the hybrid frame over a
// throttled wide-area link and render on the desktop — §2.5's
// "10 seconds for a 100MB time step" economics) and render-remotely
// (thin client: ship only camera parameters and receive an
// RLE-compressed framebuffer rendered server-side, bit-identical to
// the local render at a fraction of the bytes).
//
// The thin-client mode runs at both protocol v3 quality tiers side by
// side: the lossless default, and a preview-tier subscriber — the
// "scrubbing" client that trades bit-exactness for a quantized 8-bit
// image several times smaller again. Both renders come out of the
// server's encode-once render cache, so the second subscriber's tier
// is the only extra work the server does for it.
//
// A fourth seat demonstrates protocol v5 resilience: a viewer on a
// remote.ReconnectClient whose connection is deliberately killed
// mid-stream. The resumed subscription redials, re-subscribes, and
// catches up over GetDelta — the viewer ends the run with every frame,
// in order, with no duplicates, as if the link had never dropped.
//
//	go run ./examples/remoteviz
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/pario"
	"repro/internal/remote"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)

	// Server side: an in-situ service over a live-frame ring.
	const (
		particles = 30_000
		nFrames   = 3
		linkBps   = 20 << 20 // a 20 MB/s wide-area link
	)
	ring, err := remote.NewLiveRing(nFrames)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := remote.NewService("127.0.0.1:0", ring)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server: in-situ service at %s\n", srv.Addr())

	pp := core.NewParticlePipeline(particles)
	pp.Extract.VolumeRes = 24
	sim, err := pp.NewSim()
	if err != nil {
		log.Fatal(err)
	}
	stream := pp.StreamFrames(context.Background(),
		core.SimSource(sim, nFrames, 6),
		core.StreamOptions{Sink: ring})

	// Client side: subscribe over a throttled link and consume the run
	// while it computes.
	cli, err := remote.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	cli.SetBandwidth(linkBps)
	sub, err := cli.Subscribe()
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	// A second, preview-tier subscriber on its own connection — the
	// low-bandwidth seat riding the same encode-once caches.
	preview, err := remote.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer preview.Close()
	preview.SetBandwidth(linkBps)

	// A resilient viewer (protocol v5): its dialer remembers the live
	// connection so the demo can kill it mid-stream, and the resumed
	// subscription survives the loss invisibly.
	var (
		connMu   sync.Mutex
		liveConn net.Conn
	)
	rcli, err := remote.DialReconnect(srv.Addr(), remote.ReconnectOptions{
		Dial: func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err == nil {
				connMu.Lock()
				liveConn = c
				connMu.Unlock()
			}
			return c, err
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rcli.Close()
	rsub, err := rcli.SubscribeResume(-1)
	if err != nil {
		log.Fatal(err)
	}
	defer rsub.Close()
	resumedIdxs := make(chan []int, 1)
	go func() {
		killed := false
		var idxs []int
		for f := range rsub.Frames {
			idxs = append(idxs, f.Index)
			if !killed {
				// Sever the viewer's link right after its first frame —
				// the reconnect layer redials and resumes at frame
				// f.Index+1, no gap, no duplicate.
				killed = true
				connMu.Lock()
				liveConn.Close()
				connMu.Unlock()
				fmt.Printf("viewer: link killed after frame %d — reconnecting\n", f.Index)
			}
			if f.Index == nFrames-1 {
				break
			}
		}
		resumedIdxs <- idxs
	}()

	// Surface a mid-run pipeline failure instead of blocking on a feed
	// that will never deliver the final frame.
	streamErr := make(chan error, 1)
	go func() { streamErr <- stream.Wait() }()

	viewDir := vec.New(0.4, 0.3, 1)
	rawBytes := pario.FrameBytes(particles)
	fmt.Printf("client: following live run; link %d MB/s\n\n", linkBps>>20)
	seen := 0
	for seenLast := false; !seenLast; {
		var frames int
		select {
		case f, ok := <-sub.Updates:
			if !ok {
				log.Fatal("subscription feed closed before the final frame")
			}
			frames = f
		case err := <-streamErr:
			if err != nil {
				log.Fatal(err)
			}
			streamErr = nil // clean finish: keep draining updates
			continue
		}
		if frames == 0 {
			continue // initial count before the first publish
		}
		i := frames - 1 // latest-wins: render the newest frame
		seenLast = i == nFrames-1

		// Mode 1: fetch the hybrid frame, render locally.
		rep, size, took, err := cli.FetchFrame(i)
		if err != nil {
			log.Fatal(err)
		}
		rawTime := remote.TransferEstimate(rawBytes, linkBps)
		fmt.Printf("frame %d: fetched %7.2f MB in %8v (raw %.2f MB would take %v — %.0fx longer)\n",
			i, float64(size)/1e6, took.Round(1000),
			float64(rawBytes)/1e6, rawTime.Round(1000),
			float64(rawBytes)/float64(size))
		tf, err := core.DefaultTF(rep)
		if err != nil {
			log.Fatal(err)
		}
		fb, _, _, err := core.RenderFrame(rep, tf, 256, 256, viewDir)
		if err != nil {
			log.Fatal(err)
		}
		if err := fb.WritePNG(fmt.Sprintf("remoteviz_local%d.png", i)); err != nil {
			log.Fatal(err)
		}

		// Mode 2: thin client — the server renders the same frame.
		rfb, wire, rtook, err := cli.Render(remote.RenderParams{
			Frame: i, Width: 256, Height: 256, ViewDir: viewDir,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d: server-rendered %.3f MB image in %8v (%.0fx smaller than the frame)\n",
			i, float64(wire)/1e6, rtook.Round(1000), float64(size)/float64(wire))
		if err := rfb.WritePNG(fmt.Sprintf("remoteviz_remote%d.png", i)); err != nil {
			log.Fatal(err)
		}

		// Mode 3: the preview-tier subscriber asks for the same view at
		// the quantized tier — the cheapest seat in the house.
		pfb, pwire, ptook, err := preview.Render(remote.RenderParams{
			Frame: i, Width: 256, Height: 256, ViewDir: viewDir,
			Quality: remote.QualityPreview,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d: preview-tier    %.3f MB image in %8v (%.1fx smaller than lossless)\n",
			i, float64(pwire)/1e6, ptook.Round(1000), float64(wire)/float64(pwire))
		if err := pfb.WritePNG(fmt.Sprintf("remoteviz_preview%d.png", i)); err != nil {
			log.Fatal(err)
		}

		seen++
	}
	if streamErr != nil {
		if err := <-streamErr; err != nil {
			log.Fatal(err)
		}
	}
	idxs := <-resumedIdxs
	fmt.Printf("\nresilient viewer: frames %v over %d redial(s), %d skipped — seamless resume\n",
		idxs, rcli.Redials(), rsub.Skipped())
	fmt.Printf("consumed %d live frames; wrote remoteviz_{local,remote,preview}*.png\n", seen)
}
