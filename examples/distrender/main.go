// Distrender demonstrates sort-last parallel rendering across real
// processes — the compositing architecture the paper ran for
// terascale fields, where no single node holds the frame's full point
// set and partial images are merged by depth.
//
// The parent process runs the beam simulation, hybrid extraction and
// the volume ray cast; the point-splat pass is split along the octree
// partition into sub-volumes and fanned across a fleet of three child
// worker processes (this same binary re-executed with -worker, the
// production shape of cmd/vizworker). Each worker renders its
// sub-volume with a depth channel, ships the compressed RGBA+depth
// partial framebuffer back over the Compute verb (kernel
// render.partial.v1), and the parent depth-composites the partials
// before finishing the frame locally.
//
// Mid-stream, the demo kills one of the three workers outright. The
// fleet ejects it and re-dispatches its partitions to the survivors —
// and because compositing is deterministic, every frame is still
// bit-identical to an all-local render of the same configuration, at
// every pixel, despite the loss.
//
//	go run ./examples/distrender
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/render"
)

const (
	particles  = 30_000
	nFrames    = 4
	volumeRes  = 24
	nWorkers   = 3
	partitions = 4
	frameSize  = 160
)

func main() {
	log.SetFlags(0)
	if len(os.Args) > 1 && os.Args[1] == "-worker" {
		runWorker()
		return
	}

	// Spawn the render fleet as separate OS processes on ephemeral
	// ports, scraping each chosen address off the child's stdout.
	children := make([]*exec.Cmd, nWorkers)
	addrs := make([]string, nWorkers)
	for i := range children {
		child := exec.Command(os.Args[0], "-worker")
		child.Stderr = os.Stderr
		stdout, err := child.StdoutPipe()
		if err != nil {
			log.Fatal(err)
		}
		if err := child.Start(); err != nil {
			log.Fatal(err)
		}
		defer func() {
			child.Process.Kill()
			child.Wait()
		}()
		addr, err := readWorkerAddr(stdout)
		if err != nil {
			log.Fatalf("worker never came up: %v", err)
		}
		children[i], addrs[i] = child, addr
		fmt.Printf("parent: render worker %d serving on %s\n", child.Process.Pid, addr)
	}

	ro := core.RenderOptions{
		Width: frameSize, Height: frameSize,
		Workers:    2,
		Partitions: partitions,
	}
	pipelineFor := func() (*core.ParticlePipeline, core.FrameSource, error) {
		pp := core.NewParticlePipeline(particles)
		pp.Extract.VolumeRes = volumeRes
		// Pin the splat worker count so all runs are bit-identical
		// even if the processes saw different GOMAXPROCS.
		pp.Extract.Workers = 2
		sim, err := pp.NewSim()
		if err != nil {
			return nil, nil, err
		}
		return pp, core.SimSource(sim, nFrames, 2), nil
	}

	// All-local reference run: the same stream with the render stage
	// (splat pass + ray cast) in-process.
	pp, src, err := pipelineFor()
	if err != nil {
		log.Fatal(err)
	}
	localStart := time.Now()
	var local []*render.Framebuffer
	s := pp.StreamFrames(context.Background(), src, core.StreamOptions{Render: &ro})
	for r := range s.Out {
		local = append(local, r.FB)
	}
	if err := s.Wait(); err != nil {
		log.Fatal(err)
	}
	localTime := time.Since(localStart)

	// Distributed run: same simulation, same configs, but each frame's
	// point pass splits into sub-volumes rendered on the child fleet
	// and depth-composited here — and one child dies under the stream.
	pp, src, err = pipelineFor()
	if err != nil {
		log.Fatal(err)
	}
	distStart := time.Now()
	s = pp.StreamFrames(context.Background(), src, core.StreamOptions{
		Render:      &ro,
		RenderAddrs: addrs,
		RenderPolicy: &remote.FleetOptions{
			EjectAfter:    1,
			ProbeInterval: -1, // the killed child is not coming back
		},
	})
	frame := 0
	for r := range s.Out {
		match := "differs!"
		if sameFrame(r.FB, local[r.Index]) {
			match = "bit-identical"
		}
		fmt.Printf("parent: frame %d composited from %d partials (%dx%d) — %s\n",
			r.Index, partitions, r.FB.W, r.FB.H, match)
		if match == "differs!" {
			log.Fatalf("frame %d: distributed composite diverged from local render", r.Index)
		}
		s.RecycleFB(r.FB)
		frame++
		if frame == 1 {
			// One frame through: kill a worker with partitions in
			// flight. The fleet must hand them to the survivors.
			fmt.Printf("parent: killing render worker %d mid-stream\n", children[0].Process.Pid)
			children[0].Process.Kill()
		}
	}
	if err := s.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parent: %d/%d frames bit-identical to the local render, one worker lost mid-run\n",
		frame, nFrames)
	fmt.Printf("parent: local %.2fs, distributed %.2fs (loopback wire cost included)\n",
		localTime.Seconds(), time.Since(distStart).Seconds())
}

// sameFrame is the bit-level framebuffer comparison — NaN-safe, so a
// background depth of +Inf compares equal too.
func sameFrame(a, b *render.Framebuffer) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Color {
		if math.Float32bits(a.Color[i]) != math.Float32bits(b.Color[i]) {
			return false
		}
	}
	for i := range a.Depth {
		if math.Float32bits(a.Depth[i]) != math.Float32bits(b.Depth[i]) {
			return false
		}
	}
	return true
}

// runWorker is the child half: a vizworker on an ephemeral port.
func runWorker() {
	w, err := remote.NewWorker("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// The parent scrapes this line for the port.
	fmt.Printf("vizworker: serving on %s\n", w.Addr())
	select {} // serve until the parent kills us
}

// readWorkerAddr scans the child's stdout for the serving line.
func readWorkerAddr(r interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "vizworker: serving on "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("worker exited without announcing an address")
}
