// Cavity reproduces the paper's §3 workload: it solves the RF fields
// of a 3-cell accelerator structure with the FDTD substrate, traces
// electric field lines with the density-proportional seeding strategy,
// and renders all nine Fig 6 technique panels plus the Fig 7
// incremental-loading sweep, printing the triangle/fragment economics
// of self-orienting surfaces along the way.
//
//	go run ./examples/cavity
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lineio"
	"repro/internal/sos"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)

	fp := core.NewFieldPipeline(10, 200)
	fmt.Println("solving 3-cell cavity (FDTD, Courant-limited)...")
	frame, err := fp.Solve(8)
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := fp.Mesh()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d elements, t=%.2f, maxE=%.3g, raw field %.2f MB/step\n",
		mesh.NumElements(), frame.Time, frame.MaxE(), float64(frame.RawBytes())/1e6)

	fmt.Println("tracing field lines (density-proportional greedy seeding)...")
	res, err := fp.TraceE(frame)
	if err != nil {
		log.Fatal(err)
	}
	lb := lineio.LinesBytes(res.Lines)
	fmt.Printf("  %d lines, %.2f MB stored, saving %.1fx vs raw field\n",
		len(res.Lines), float64(lb)/1e6, lineio.SavingFactor(frame.RawBytes(), lb))

	// Fig 6: all nine technique panels.
	fmt.Println("\nFig 6 panels:")
	view := vec.New(0.8, 0.45, 0.9)
	var sosTris, tubeTris int64
	for i, tech := range sos.Techniques() {
		fb, st, err := fp.RenderLines(res.Lines, tech, 384, 384, view)
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("cavity_fig6%c_%s.png", 'a'+i, tech)
		if err := fb.WritePNG(name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (%c) %-12s %8d triangles -> %s\n", 'a'+i, tech, st.Triangles, name)
		if tech == sos.TechSOS {
			sosTris = st.Triangles
		}
		if tech == sos.TechStreamtubes {
			tubeTris = st.Triangles
		}
	}
	fmt.Printf("  streamtubes use %.1fx the triangles of self-orienting surfaces (paper: 5-6x)\n",
		float64(tubeTris)/float64(sosTris))

	// Fig 7: incremental loading.
	fmt.Println("\nFig 7 incremental loading:")
	for _, n := range []int{len(res.Lines) / 8, len(res.Lines) / 4, len(res.Lines) / 2, len(res.Lines)} {
		corr := res.DensityCorrelation(mesh, n)
		fb, _, err := fp.RenderLines(res.Prefix(n), sos.TechSOS, 384, 384, view)
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("cavity_fig7_%03d.png", n)
		if err := fb.WritePNG(name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  first %3d lines: density correlation %.3f -> %s\n", n, corr, name)
	}
	fmt.Println("done.")
}
