// Package repro's root benchmark harness: one benchmark per figure and
// per quantitative claim of the paper (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for recorded results).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks share lazily-built fixtures (one beam frame, one solved
// cavity) so the suite measures the operations of interest, not
// repeated setup.
package repro

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/beam"
	"repro/internal/core"
	"repro/internal/emsim"
	"repro/internal/hexmesh"
	"repro/internal/hybrid"
	"repro/internal/lineio"
	"repro/internal/octree"
	"repro/internal/pario"
	"repro/internal/render"
	"repro/internal/seeding"
	"repro/internal/sos"
	"repro/internal/stats"
	"repro/internal/vec"
	"repro/internal/viewer"
	"repro/internal/volren"
)

// Benchmark scale: small enough for CI, big enough that the paper's
// asymmetries (hybrid vs full-res volume, strip vs tube) are visible.
const (
	benchParticles = 200_000
	benchImage     = 128
	benchVolFull   = 96 // "256^3" stand-in
	benchVolHyb    = 24 // "64^3" stand-in
	benchCavityRes = 8
	benchLines     = 100
)

// ---- shared fixtures -------------------------------------------------

var (
	beamOnce  sync.Once
	beamFrame beam.Frame

	treeOnce  sync.Once
	phaseTree *octree.Tree

	cavityOnce  sync.Once
	cavityPipe  *core.FieldPipeline
	cavityFrame *emsim.FieldFrame
	cavityLines *seeding.Result
)

func getBeamFrame(b *testing.B) beam.Frame {
	b.Helper()
	beamOnce.Do(func() {
		sim, err := beam.NewSim(beam.DefaultConfig(benchParticles))
		if err != nil {
			panic(err)
		}
		sim.RunPeriods(15)
		beamFrame = sim.Snapshot()
	})
	return beamFrame
}

func getPhaseTree(b *testing.B) *octree.Tree {
	b.Helper()
	treeOnce.Do(func() {
		f := getBeamFrame(b)
		pts := make([]vec.V3, f.E.Len())
		for i := range pts {
			pts[i] = f.E.Point3(i, [3]beam.Axis{beam.AxisX, beam.AxisPX, beam.AxisY})
		}
		t, err := octree.Build(pts, octree.DefaultConfig())
		if err != nil {
			panic(err)
		}
		phaseTree = t
	})
	return phaseTree
}

func getCavity(b *testing.B) (*core.FieldPipeline, *emsim.FieldFrame, *seeding.Result) {
	b.Helper()
	cavityOnce.Do(func() {
		fp := core.NewFieldPipeline(benchCavityRes, benchLines)
		frame, err := fp.Solve(6)
		if err != nil {
			panic(err)
		}
		res, err := fp.TraceE(frame)
		if err != nil {
			panic(err)
		}
		cavityPipe, cavityFrame, cavityLines = fp, frame, res
	})
	return cavityPipe, cavityFrame, cavityLines
}

func extractAt(b *testing.B, res int, budget int64) (*hybrid.Representation, *hybrid.LinkedTF) {
	b.Helper()
	tree := getPhaseTree(b)
	rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: res, Budget: budget})
	if err != nil {
		b.Fatal(err)
	}
	tf, err := core.DefaultTF(rep)
	if err != nil {
		b.Fatal(err)
	}
	return rep, tf
}

// ---- Fig 1: full-res volume vs hybrid --------------------------------

// BenchmarkFig1VolumeRendering ray-casts the "full resolution" density
// volume — the brute-force baseline of Fig 1 (left).
func BenchmarkFig1VolumeRendering(b *testing.B) {
	rep, tf := extractAt(b, benchVolFull, 1)
	cam, err := render.LookAtBounds(rep.Bounds, vec.New(0.2, 0.25, 1), math.Pi/3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb, _ := render.NewFramebuffer(benchImage, benchImage)
		vr, err := volren.New(rep.Volume, tf)
		if err != nil {
			b.Fatal(err)
		}
		vr.Render(fb, cam)
	}
}

// BenchmarkFig1HybridRendering renders the hybrid representation —
// low-res volume plus halo points — of Fig 1 (right). The paper's
// claim is that this runs at "much higher frame rates" than the
// full-resolution volume; compare ns/op with BenchmarkFig1VolumeRendering.
// The frag/s metric tracks the point-pass throughput of the tile
// rasterizer (fragments counted after screen culling).
func BenchmarkFig1HybridRendering(b *testing.B) {
	rep, tf := extractAt(b, benchVolHyb, benchParticles/25)
	cam, err := render.LookAtBounds(rep.Bounds, vec.New(0.2, 0.25, 1), math.Pi/3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var frags int64
	for i := 0; i < b.N; i++ {
		fb, _ := render.NewFramebuffer(benchImage, benchImage)
		rast, _, err := volren.RenderHybrid(rep, tf, fb, cam, 1.2, false)
		if err != nil {
			b.Fatal(err)
		}
		frags += rast.FragmentCount
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(frags)/sec, "frag/s")
	}
}

// TestFig1DetailPreservation verifies the qualitative half of Fig 1:
// the hybrid image resolves more fine detail (gradient energy) than
// the volume-only rendering, despite its far lower volume resolution.
func TestFig1DetailPreservation(t *testing.T) {
	b := &testing.B{}
	rep, tf := extractAt(b, benchVolHyb, benchParticles/25)
	full, tfFull := extractAt(b, benchVolFull, 1)
	cam, err := render.LookAtBounds(rep.Bounds, vec.New(0.2, 0.25, 1), math.Pi/3, 1)
	if err != nil {
		t.Fatal(err)
	}
	fbVol, _ := render.NewFramebuffer(benchImage, benchImage)
	vr, err := volren.New(full.Volume, tfFull)
	if err != nil {
		t.Fatal(err)
	}
	vr.Render(fbVol, cam)
	fbHyb, _ := render.NewFramebuffer(benchImage, benchImage)
	if _, _, err := volren.RenderHybrid(rep, tf, fbHyb, cam, 1.2, false); err != nil {
		t.Fatal(err)
	}
	gVol := stats.GradientEnergy(fbVol)
	gHyb := stats.GradientEnergy(fbHyb)
	if gHyb <= gVol {
		t.Errorf("hybrid gradient energy %.5f <= volume %.5f; detail advantage missing", gHyb, gVol)
	}
}

// ---- Fig 2: the four phase-space distributions ------------------------

func BenchmarkFig2PhasePlots(b *testing.B) {
	f := getBeamFrame(b)
	plots := [][3]beam.Axis{
		{beam.AxisX, beam.AxisY, beam.AxisZ},
		{beam.AxisX, beam.AxisPX, beam.AxisY},
		{beam.AxisX, beam.AxisPX, beam.AxisZ},
		{beam.AxisPX, beam.AxisPY, beam.AxisPZ},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		axes := plots[i%len(plots)]
		pts := make([]vec.V3, f.E.Len())
		for j := range pts {
			pts[j] = f.E.Point3(j, axes)
		}
		tree, err := octree.Build(pts, octree.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: benchVolHyb, Budget: benchParticles / 25}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig 4: hybrid decomposition --------------------------------------

func BenchmarkFig4HybridDecomposition(b *testing.B) {
	rep, tf := extractAt(b, benchVolHyb, benchParticles/20)
	cam, err := render.LookAtBounds(rep.Bounds, vec.New(0.2, 0.3, 1), math.Pi/3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Volume part, point part, combined — the Fig 4 triptych.
		fbV, _ := render.NewFramebuffer(benchImage, benchImage)
		vr, _ := volren.New(rep.Volume, tf)
		vr.Render(fbV, cam)
		fbP, _ := render.NewFramebuffer(benchImage, benchImage)
		rast := render.NewRasterizer(fbP, cam)
		splats := make([]render.PointSplat, len(rep.Points))
		for j := range rep.Points {
			c := tf.Color.Eval(tf.MapDensity(float64(rep.PointDensity[j])))
			c.A = 1
			splats[j] = render.PointSplat{Pos: rep.Points[j], Radius: 1.2, Color: c}
		}
		rast.DrawPointBatch(splats)
		fbC, _ := render.NewFramebuffer(benchImage, benchImage)
		if _, _, err := volren.RenderHybrid(rep, tf, fbC, cam, 1.2, true); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig 5: time series ------------------------------------------------

// BenchmarkFig5TimeSeries measures the full per-frame pipeline cost of
// the evolution animation: simulate -> partition -> extract.
func BenchmarkFig5TimeSeries(b *testing.B) {
	sim, err := beam.NewSim(beam.DefaultConfig(benchParticles / 8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunPeriods(1)
		f := sim.Snapshot()
		pts := make([]vec.V3, f.E.Len())
		for j := range pts {
			pts[j] = f.E.Point3(j, [3]beam.Axis{beam.AxisX, beam.AxisY, beam.AxisZ})
		}
		tree, err := octree.Build(pts, octree.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: benchVolHyb, Budget: int64(len(pts) / 20)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingTimeSeries compares the two executions of the
// Fig 5 animation pipeline: the serial loop (each frame runs
// simulate → partition → extract to completion before the next frame
// starts) against the streaming stage engine (frame N+1 simulates
// while frame N partitions and frame N-1 extracts). Per-stage internal
// worker counts are pinned to 1 in BOTH variants so the ratio
// measures orchestration — stage overlap and frame-level workers —
// not intra-stage parallelism; at GOMAXPROCS >= 4 the overlapped
// variant should deliver well over 1.3x the serial frame throughput.
func BenchmarkStreamingTimeSeries(b *testing.B) {
	const n = benchParticles / 8
	newPipeline := func(b *testing.B) (*core.ParticlePipeline, *beam.Sim) {
		pp := core.NewParticlePipeline(n)
		pp.Sim.Workers = 1
		pp.Tree.Workers = 1
		pp.Extract = hybrid.ExtractConfig{VolumeRes: benchVolHyb, Budget: int64(n / 20), Workers: 1}
		sim, err := pp.NewSim()
		if err != nil {
			b.Fatal(err)
		}
		return pp, sim
	}

	b.Run("serial", func(b *testing.B) {
		pp, sim := newPipeline(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.RunPeriods(1)
			tree, err := pp.Partition(sim.Snapshot())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pp.Hybrid(tree); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("overlapped", func(b *testing.B) {
		pp, sim := newPipeline(b)
		b.ResetTimer()
		s := pp.StreamFrames(context.Background(), core.SimSource(sim, b.N, 1), core.StreamOptions{
			PartitionWorkers: 2,
			ExtractWorkers:   2,
			Buffer:           2,
		})
		frames := 0
		for range s.Out {
			frames++
		}
		if err := s.Wait(); err != nil {
			b.Fatal(err)
		}
		if frames != b.N {
			b.Fatalf("stream emitted %d frames, want %d", frames, b.N)
		}
	})
}

func TestFig5FourFoldSymmetry(t *testing.T) {
	sim, err := beam.NewSim(beam.DefaultConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 4; f++ {
		sim.RunPeriods(5)
		if score := beam.FourFoldSymmetry(sim.Particles); score > 0.1 {
			t.Errorf("frame %d: four-fold symmetry deviation %.3f > 0.1", f, score)
		}
	}
}

// ---- Fig 6: the nine techniques ----------------------------------------

func BenchmarkFig6Techniques(b *testing.B) {
	fp, _, res := getCavity(b)
	for _, tech := range sos.Techniques() {
		b.Run(tech.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, st, err := fp.RenderLines(res.Lines, tech, benchImage, benchImage, vec.New(0.8, 0.45, 0.9))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(st.Triangles), "triangles")
				b.ReportMetric(float64(st.Fragments), "fragments")
			}
		})
	}
}

// ---- Fig 7: incremental loading ----------------------------------------

func BenchmarkFig7IncrementalLoading(b *testing.B) {
	fp, _, res := getCavity(b)
	fractions := []int{8, 4, 2, 1}
	for _, frac := range fractions {
		n := len(res.Lines) / frac
		b.Run(fmt.Sprintf("lines=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := fp.RenderLines(res.Prefix(n), sos.TechSOS, benchImage, benchImage, vec.New(0.8, 0.45, 0.9)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Fig 8: RF propagation ----------------------------------------------

// BenchmarkFig8RFPropagation measures one FDTD drive period plus a
// snapshot — the per-frame cost of the Fig 8 animation.
func BenchmarkFig8RFPropagation(b *testing.B) {
	cav := hexmesh.DefaultCavity(benchCavityRes)
	mesh, err := hexmesh.BuildCavity(cav)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := emsim.New(emsim.DefaultConfig(mesh, cav))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.AdvancePeriods(1)
		_ = sim.Snapshot()
	}
}

// ---- Fig 9: multi-cell structure with asymmetric ports -------------------

func BenchmarkFig9TwelveCell(b *testing.B) {
	// Mesh + a short solve of the (scaled) 12-cell structure.
	for i := 0; i < b.N; i++ {
		cav := hexmesh.TwelveCellCavity(benchCavityRes, 0.4)
		cav.Cells = 6
		cav.OutputPort.Cell = 5
		mesh, err := hexmesh.BuildCavity(cav)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := emsim.New(emsim.DefaultConfig(mesh, cav))
		if err != nil {
			b.Fatal(err)
		}
		sim.AdvancePeriods(2)
		b.ReportMetric(float64(mesh.NumElements()), "elements")
	}
}

func TestFig9PortAsymmetry(t *testing.T) {
	run := func(asym float64) float64 {
		cav := hexmesh.TwelveCellCavity(6, asym)
		cav.Cells = 4
		cav.OutputPort.Cell = 3
		mesh, err := hexmesh.BuildCavity(cav)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := emsim.New(emsim.DefaultConfig(mesh, cav))
		if err != nil {
			t.Fatal(err)
		}
		sim.AdvancePeriods(6)
		return sim.Snapshot().TransverseAsymmetry()
	}
	if sym, asym := run(0), run(0.5); asym <= sym {
		t.Errorf("port asymmetry did not induce field asymmetry: %.4f vs %.4f", asym, sym)
	}
}

// ---- Fig 10: strength-styled incremental rendering -----------------------

func BenchmarkFig10StyledIncremental(b *testing.B) {
	fp, _, res := getCavity(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fp.RenderLines(res.Lines, sos.TechRibbon, benchImage, benchImage, vec.New(0.8, 0.45, 0.9)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- C1: partitioning time scales linearly -------------------------------

func BenchmarkPartitionScaling(b *testing.B) {
	f := getBeamFrame(b)
	makePoints := func(n int) []vec.V3 {
		pts := make([]vec.V3, n)
		for i := range pts {
			pts[i] = f.E.Point3(i%f.E.Len(), [3]beam.Axis{beam.AxisX, beam.AxisY, beam.AxisZ})
		}
		return pts
	}
	// Linear-in-N scaling (C1) at the default worker count.
	for _, n := range []int{25_000, 50_000, 100_000, 200_000} {
		pts := makePoints(n)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := octree.Build(pts, octree.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Worker sweep at terascale-direction N: the sharded sort and
	// concurrent carve should scale the partition stage with cores.
	bigPts := makePoints(1_000_000)
	workerCounts := []int{1, 2, 4}
	if ncpu := runtime.NumCPU(); ncpu > 4 {
		workerCounts = append(workerCounts, ncpu)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("N=1000000/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			cfg := octree.DefaultConfig()
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := octree.Build(bigPts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- C2: extraction cost at different thresholds --------------------------

func BenchmarkExtractionThreshold(b *testing.B) {
	tree := getPhaseTree(b)
	for _, div := range []int{100, 20, 5} {
		budget := int64(benchParticles / div)
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: benchVolHyb, Budget: budget}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestExtractionPrefixProperty (C2): extraction reads a contiguous
// prefix — the kept point count equals the leaf-offset table entry at
// the cut, with no gathering.
func TestExtractionPrefixProperty(t *testing.T) {
	b := &testing.B{}
	tree := getPhaseTree(b)
	th := tree.ThresholdForBudget(benchParticles / 20)
	cut := tree.CutLeaf(th)
	if got, want := tree.HaloCount(th), tree.LeafOffsets[cut]; got != want {
		t.Errorf("halo count %d != prefix length %d", got, want)
	}
}

// ---- C3: frame sizes and load times ---------------------------------------

func BenchmarkFrameLoad(b *testing.B) {
	rep, _ := extractAt(b, benchVolHyb, benchParticles/20)
	path := b.TempDir() + "/frame.achy"
	if err := rep.WriteFile(path); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(rep.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hybrid.ReadFile(path); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHybridCompressionRatio(t *testing.T) {
	b := &testing.B{}
	rep, _ := extractAt(b, benchVolHyb, benchParticles/20)
	if f := rep.CompressionFactor(benchParticles); f < 3 {
		t.Errorf("hybrid only %.1fx smaller than raw; expected > 3x at this budget", f)
	}
	// Paper arithmetic: raw 500MB frames -> 2 in memory; hybrid <=
	// 100MB -> ~10 ("a high-end PC is capable of holding around 10 time
	// steps in memory at once").
	raw := pario.FrameBytes(100_000_000) / 10 // paper's ~500MB frame at reduced res
	if raw/rep.SizeBytes() <= 0 {
		t.Error("size arithmetic degenerate")
	}
}

// ---- C5: SOS triangle economy ---------------------------------------------

func BenchmarkSOSTriangles(b *testing.B) {
	_, _, res := getCavity(b)
	eye := vec.New(0, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tris int
		for _, l := range res.Lines {
			verts := sos.BuildStrip(l, eye, sos.StripParams{Width: 0.02, Color: hybrid.RGBA{A: 1}})
			tris += len(verts) - 2
		}
		b.ReportMetric(float64(tris), "strip-tris")
	}
}

// ---- C6: line storage saving ------------------------------------------------

func BenchmarkLineStorage(b *testing.B) {
	_, frame, res := getCavity(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lb := lineio.LinesBytes(res.Lines)
		b.ReportMetric(lineio.SavingFactor(frame.RawBytes(), lb), "saving-x")
	}
}

// ---- C7/C8: Courant arithmetic and FDTD step cost ----------------------------

func BenchmarkFDTDStep(b *testing.B) {
	cav := hexmesh.DefaultCavity(benchCavityRes)
	mesh, err := hexmesh.BuildCavity(cav)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := emsim.New(emsim.DefaultConfig(mesh, cav))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance(1)
	}
}

func TestCourantStepCount(t *testing.T) {
	steps := emsim.PaperScaleSteps(40e-9, 63.57e-6, 1.0)
	if math.Abs(steps-326_700) > 0.02*326_700 {
		t.Errorf("paper Courant arithmetic gives %.0f steps, want ~326,700", steps)
	}
}

// ---- Ablation: density-sorted prefix extraction vs unsorted gather -----------

// BenchmarkAblationPrefixExtract measures the paper's layout: kept
// points are a contiguous prefix (a single copy).
func BenchmarkAblationPrefixExtract(b *testing.B) {
	tree := getPhaseTree(b)
	th := tree.ThresholdForBudget(benchParticles / 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := tree.HaloCount(th)
		out := make([]vec.V3, n)
		copy(out, tree.Points[:n])
	}
}

// BenchmarkAblationGatherExtract measures the layout the paper's sort
// avoids: leaf groups in arbitrary order, so extraction must walk every
// leaf, test its density, and gather scattered ranges.
func BenchmarkAblationGatherExtract(b *testing.B) {
	tree := getPhaseTree(b)
	th := tree.ThresholdForBudget(benchParticles / 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []vec.V3
		// Walk leaves in tree order (not density order) as an unsorted
		// layout would have to.
		for idx := range tree.Nodes {
			node := &tree.Nodes[idx]
			if !node.IsLeaf() || node.Count == 0 || node.Density >= th {
				continue
			}
			out = append(out, tree.Points[node.Offset:node.Offset+node.Count]...)
		}
		_ = out
	}
}

// ---- Ablation: OIT vs depth-sorted transparency ---------------------------

// BenchmarkAblationSortedTransparency is the default transparent mode:
// strips sorted back-to-front per line.
func BenchmarkAblationSortedTransparency(b *testing.B) {
	fp, _, res := getCavity(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fp.RenderLines(res.Lines, sos.TechTransparent, benchImage, benchImage, vec.New(0.8, 0.45, 0.9)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOITTransparency resolves unsorted fragments through
// the order-independent buffer — exact compositing at the cost of
// per-pixel fragment lists (the §3.3.3 extension).
func BenchmarkAblationOITTransparency(b *testing.B) {
	fp, _, res := getCavity(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fp.RenderLines(res.Lines, sos.TechTransparentOIT, benchImage, benchImage, vec.New(0.8, 0.45, 0.9)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation: volume sampling rate ----------------------------------------

// BenchmarkAblationVolrenStepScale sweeps the ray-march oversampling
// factor — the quality/cost dial of the volume renderer.
func BenchmarkAblationVolrenStepScale(b *testing.B) {
	rep, tf := extractAt(b, benchVolHyb, 1)
	cam, err := render.LookAtBounds(rep.Bounds, vec.New(0.2, 0.25, 1), math.Pi/3, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, scale := range []float64{0.25, 0.5, 1.0} {
		b.Run(fmt.Sprintf("step=%.2f", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fb, _ := render.NewFramebuffer(benchImage, benchImage)
				vr, err := volren.New(rep.Volume, tf)
				if err != nil {
					b.Fatal(err)
				}
				vr.StepScale = scale
				vr.Render(fb, cam)
				b.ReportMetric(float64(vr.SampleCount), "samples")
			}
		})
	}
}

// ---- Ablation: enhanced lighting costs nothing extra ------------------------

// BenchmarkAblationSingleLight vs BenchmarkAblationEnhancedLighting
// verifies the paper's "no significant performance penalty" claim for
// multi-light SOS shading.
func BenchmarkAblationSingleLight(b *testing.B) {
	fp, _, res := getCavity(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fp.RenderLines(res.Lines, sos.TechSOS, benchImage, benchImage, vec.New(0.8, 0.45, 0.9)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEnhancedLighting(b *testing.B) {
	fp, _, res := getCavity(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fp.RenderLines(res.Lines, sos.TechEnhanced, benchImage, benchImage, vec.New(0.8, 0.45, 0.9)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation: splat parallelism --------------------------------------------

func BenchmarkAblationSplatWorkers(b *testing.B) {
	f := getBeamFrame(b)
	pts := make([]vec.V3, f.E.Len())
	bounds := vec.Empty()
	for i := range pts {
		pts[i] = f.E.Point3(i, [3]beam.Axis{beam.AxisX, beam.AxisY, beam.AxisZ})
		bounds = bounds.ExtendPoint(pts[i])
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hybrid.Splat(pts, bounds, benchVolHyb, benchVolHyb, benchVolHyb, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Viewer cache behavior ----------------------------------------------------

// BenchmarkFrameCacheHit measures redisplaying a cached frame — the
// paper's "displayed instantaneously" path.
func BenchmarkFrameCacheHit(b *testing.B) {
	rep, _ := extractAt(b, benchVolHyb, benchParticles/20)
	cache, err := viewer.NewCache(1, 1<<40, func(int) (*hybrid.Representation, error) { return rep, nil })
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cache.Get(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Get(0); err != nil {
			b.Fatal(err)
		}
	}
}
