// Package hybrid implements the paper's hybrid data representation
// (§2): a low-resolution density volume standing in for the dense beam
// core plus full-resolution raw points for the sparse halo, selected by
// a leaf-density threshold over the octree partitioning, with the two
// inverse-linked transfer functions of Fig 3 controlling how the two
// halves composite at view time.
package hybrid

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/vec"
)

// Grid is a regular scalar volume — the "3-D texture" of the paper's
// texture-mapping-hardware rendering path. Values are stored in x-major
// order: index = (z*Ny + y)*Nx + x.
type Grid struct {
	Nx, Ny, Nz int
	Bounds     vec.AABB
	Data       []float32
}

// NewGrid allocates a zeroed grid with the given resolution over bounds.
func NewGrid(nx, ny, nz int, bounds vec.AABB) (*Grid, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("hybrid: grid resolution %dx%dx%d must be positive", nx, ny, nz)
	}
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("hybrid: empty grid bounds")
	}
	return &Grid{
		Nx: nx, Ny: ny, Nz: nz,
		Bounds: bounds,
		Data:   make([]float32, nx*ny*nz),
	}, nil
}

// Len returns the voxel count.
func (g *Grid) Len() int { return g.Nx * g.Ny * g.Nz }

// At returns the voxel value at integer coordinates, clamping to the
// grid edge (texture clamp-to-edge semantics).
func (g *Grid) At(x, y, z int) float32 {
	x = clampInt(x, 0, g.Nx-1)
	y = clampInt(y, 0, g.Ny-1)
	z = clampInt(z, 0, g.Nz-1)
	return g.Data[(z*g.Ny+y)*g.Nx+x]
}

// Set stores a voxel value; coordinates must be in range.
func (g *Grid) Set(x, y, z int, v float32) {
	g.Data[(z*g.Ny+y)*g.Nx+x] = v
}

// Sample returns the trilinearly interpolated value at world position
// p, or 0 outside the bounds — the software equivalent of a hardware
// 3-D texture fetch.
func (g *Grid) Sample(p vec.V3) float64 {
	if !g.Bounds.Contains(p) {
		return 0
	}
	n := g.Bounds.Normalize(p)
	// Voxel centers sit at (i+0.5)/N; convert to continuous voxel coords.
	fx := n.X*float64(g.Nx) - 0.5
	fy := n.Y*float64(g.Ny) - 0.5
	fz := n.Z*float64(g.Nz) - 0.5
	x0 := int(math.Floor(fx))
	y0 := int(math.Floor(fy))
	z0 := int(math.Floor(fz))
	tx := fx - float64(x0)
	ty := fy - float64(y0)
	tz := fz - float64(z0)

	lerp := func(a, b float32, t float64) float64 {
		return float64(a) + t*(float64(b)-float64(a))
	}
	c00 := lerp(g.At(x0, y0, z0), g.At(x0+1, y0, z0), tx)
	c10 := lerp(g.At(x0, y0+1, z0), g.At(x0+1, y0+1, z0), tx)
	c01 := lerp(g.At(x0, y0, z0+1), g.At(x0+1, y0, z0+1), tx)
	c11 := lerp(g.At(x0, y0+1, z0+1), g.At(x0+1, y0+1, z0+1), tx)
	c0 := c00 + ty*(c10-c00)
	c1 := c01 + ty*(c11-c01)
	return c0 + tz*(c1-c0)
}

// MaxValue returns the largest voxel value.
func (g *Grid) MaxValue() float32 {
	var m float32
	for _, v := range g.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// Scale multiplies every voxel by f in place.
func (g *Grid) Scale(f float32) {
	for i := range g.Data {
		g.Data[i] *= f
	}
}

// Normalize rescales the grid so its maximum value is exactly 1 and
// returns the factor the data was divided by (0 for an all-zero grid,
// which is left unchanged). Division (rather than multiplication by the
// reciprocal) guarantees the max voxel lands exactly on 1 in float32.
func (g *Grid) Normalize() float32 {
	m := g.MaxValue()
	if m == 0 {
		return 0
	}
	for i := range g.Data {
		g.Data[i] /= m
	}
	return m
}

// SizeBytes returns the in-memory payload size of the grid, the number
// the paper's storage comparisons count for the volume part.
func (g *Grid) SizeBytes() int64 { return int64(g.Len()) * 4 }

// Splat deposits the given points onto a fresh nx*ny*nz grid over
// bounds using cloud-in-cell (trilinear) weighting, producing the point
// density volume that the hybrid representation renders for the dense
// core. The deposit runs in parallel with per-worker partial grids
// merged at the end, so it is deterministic regardless of scheduling.
func Splat(points []vec.V3, bounds vec.AABB, nx, ny, nz, workers int) (*Grid, error) {
	out, err := NewGrid(nx, ny, nz, bounds)
	if err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = par.Workers()
	}
	// Cap worker count so the partial-grid memory stays modest.
	const maxPartialBytes = 256 << 20
	if int64(workers)*out.SizeBytes() > maxPartialBytes {
		workers = int(maxPartialBytes / out.SizeBytes())
		if workers < 1 {
			workers = 1
		}
	}
	partials := make([][]float32, workers)
	slabs := par.Slabs(len(points), workers)
	par.ForChunks(len(slabs), workers, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			buf := make([]float32, out.Len())
			depositCIC(points[slabs[s][0]:slabs[s][1]], bounds, nx, ny, nz, buf)
			partials[s] = buf
		}
	})
	for _, buf := range partials {
		if buf == nil {
			continue
		}
		for i, v := range buf {
			out.Data[i] += v
		}
	}
	return out, nil
}

// depositCIC adds each point's unit mass to the eight voxels
// surrounding it with trilinear weights.
func depositCIC(points []vec.V3, bounds vec.AABB, nx, ny, nz int, data []float32) {
	for _, p := range points {
		if !bounds.Contains(p) {
			continue
		}
		n := bounds.Normalize(p)
		fx := n.X*float64(nx) - 0.5
		fy := n.Y*float64(ny) - 0.5
		fz := n.Z*float64(nz) - 0.5
		x0 := int(math.Floor(fx))
		y0 := int(math.Floor(fy))
		z0 := int(math.Floor(fz))
		tx := fx - float64(x0)
		ty := fy - float64(y0)
		tz := fz - float64(z0)
		for dz := 0; dz < 2; dz++ {
			z := z0 + dz
			if z < 0 || z >= nz {
				continue
			}
			wz := tz
			if dz == 0 {
				wz = 1 - tz
			}
			for dy := 0; dy < 2; dy++ {
				y := y0 + dy
				if y < 0 || y >= ny {
					continue
				}
				wy := ty
				if dy == 0 {
					wy = 1 - ty
				}
				for dx := 0; dx < 2; dx++ {
					x := x0 + dx
					if x < 0 || x >= nx {
						continue
					}
					wx := tx
					if dx == 0 {
						wx = 1 - tx
					}
					data[(z*ny+y)*nx+x] += float32(wx * wy * wz)
				}
			}
		}
	}
}

// TotalMass returns the sum of all voxel values. Cloud-in-cell
// deposits conserve mass for interior points, which the tests verify.
func (g *Grid) TotalMass() float64 {
	var sum float64
	for _, v := range g.Data {
		sum += float64(v)
	}
	return sum
}

// Downsample returns a grid reduced by factor k along each axis (box
// filter). It is used by the Fig 1 experiment to derive the 64^3 hybrid
// volume from the same data as the 256^3 reference.
func (g *Grid) Downsample(k int) (*Grid, error) {
	if k < 1 || g.Nx%k != 0 || g.Ny%k != 0 || g.Nz%k != 0 {
		return nil, fmt.Errorf("hybrid: cannot downsample %dx%dx%d by %d", g.Nx, g.Ny, g.Nz, k)
	}
	out, err := NewGrid(g.Nx/k, g.Ny/k, g.Nz/k, g.Bounds)
	if err != nil {
		return nil, err
	}
	inv := 1 / float32(k*k*k)
	for z := 0; z < out.Nz; z++ {
		for y := 0; y < out.Ny; y++ {
			for x := 0; x < out.Nx; x++ {
				var sum float32
				for dz := 0; dz < k; dz++ {
					for dy := 0; dy < k; dy++ {
						for dx := 0; dx < k; dx++ {
							sum += g.At(x*k+dx, y*k+dy, z*k+dz)
						}
					}
				}
				out.Set(x, y, z, sum*inv)
			}
		}
	}
	return out, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
