package hybrid

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/vec"
)

// AppendBinary appends the representation's wire encoding to dst and
// returns the extended slice. The bytes are identical to what Write
// produces (asserted by tests), but the encoder works append-style
// into a caller-owned buffer — no bufio layer, no per-field temporary
// allocations — so hot paths (the remote service's frame cache, the
// distributed-stage reply path) can recycle one buffer across frames.
func (r *Representation) AppendBinary(dst []byte) []byte {
	need := int(r.SizeBytes())
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	le := binary.LittleEndian

	dst = append(dst, magicHybrid[:]...)
	dst = le.AppendUint64(dst, hybridVersion)
	for _, f := range []float64{
		r.Bounds.Min.X, r.Bounds.Min.Y, r.Bounds.Min.Z,
		r.Bounds.Max.X, r.Bounds.Max.Y, r.Bounds.Max.Z,
		r.Threshold, r.MaxLeafD,
	} {
		dst = le.AppendUint64(dst, math.Float64bits(f))
	}
	for _, d := range []int64{int64(r.Volume.Nx), int64(r.Volume.Ny), int64(r.Volume.Nz)} {
		dst = le.AppendUint64(dst, uint64(d))
	}
	for _, v := range r.Volume.Data {
		dst = le.AppendUint32(dst, math.Float32bits(v))
	}
	dst = le.AppendUint64(dst, uint64(len(r.Points)))
	for _, p := range r.Points {
		dst = le.AppendUint64(dst, math.Float64bits(p.X))
		dst = le.AppendUint64(dst, math.Float64bits(p.Y))
		dst = le.AppendUint64(dst, math.Float64bits(p.Z))
	}
	for _, d := range r.PointDensity {
		dst = le.AppendUint32(dst, math.Float32bits(d))
	}
	for _, i := range r.OrigIndex {
		dst = le.AppendUint64(dst, uint64(i))
	}
	return le.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// DecodeBinary decodes one representation from p, which must hold
// exactly the encoding (as produced by Write or AppendBinary),
// verifying the trailing checksum. The result copies everything out of
// p, so the caller may recycle the buffer immediately.
func DecodeBinary(p []byte) (*Representation, error) {
	le := binary.LittleEndian
	// Fixed prelude: magic, version, 8 floats, 3 dims.
	const prelude = 4 + 8 + 8*8 + 3*8
	if len(p) < prelude+8+4 {
		return nil, fmt.Errorf("hybrid: encoding truncated (%d bytes)", len(p))
	}
	if [4]byte(p[:4]) != magicHybrid {
		return nil, fmt.Errorf("hybrid: bad magic %q", p[:4])
	}
	if v := le.Uint64(p[4:]); v != hybridVersion {
		return nil, fmt.Errorf("hybrid: unsupported version %d", v)
	}
	var f [8]float64
	for i := range f {
		f[i] = math.Float64frombits(le.Uint64(p[12+8*i:]))
	}
	r := &Representation{
		Bounds:    vec.Box(vec.New(f[0], f[1], f[2]), vec.New(f[3], f[4], f[5])),
		Threshold: f[6],
		MaxLeafD:  f[7],
	}
	var dims [3]int64
	for i := range dims {
		dims[i] = int64(le.Uint64(p[76+8*i:]))
		if dims[i] < 1 || dims[i] > 1<<33 {
			return nil, fmt.Errorf("hybrid: implausible volume dims %v", dims)
		}
	}
	voxels := dims[0] * dims[1]
	if voxels/dims[1] != dims[0] || voxels*dims[2]/dims[2] != voxels || voxels*dims[2] > 1<<33 {
		return nil, fmt.Errorf("hybrid: implausible volume dims %v", dims)
	}
	voxels *= dims[2]
	// Validate sizes against the buffer before allocating the grid, so a
	// hostile dims field cannot force an arbitrary allocation.
	off := int64(prelude)
	rest := int64(len(p)) - off
	volBytes := voxels * 4
	if rest < volBytes+8+4 {
		return nil, fmt.Errorf("hybrid: encoding truncated inside volume (%d bytes left, volume needs %d)", rest, volBytes)
	}
	vol, err := NewGrid(int(dims[0]), int(dims[1]), int(dims[2]), r.Bounds)
	if err != nil {
		return nil, err
	}
	for i := range vol.Data {
		vol.Data[i] = math.Float32frombits(le.Uint32(p[off+int64(i)*4:]))
	}
	off += volBytes
	r.Volume = vol
	n := int64(le.Uint64(p[off:]))
	off += 8
	if n < 0 || n > 1<<40 {
		return nil, fmt.Errorf("hybrid: implausible point count %d", n)
	}
	// Exactly the point arrays and the checksum must remain.
	if int64(len(p))-off != n*(24+4+8)+4 {
		return nil, fmt.Errorf("hybrid: encoding is %d bytes, want %d for %d points",
			len(p), off+n*36+4, n)
	}
	r.Points = make([]vec.V3, n)
	for i := range r.Points {
		r.Points[i] = vec.New(
			math.Float64frombits(le.Uint64(p[off:])),
			math.Float64frombits(le.Uint64(p[off+8:])),
			math.Float64frombits(le.Uint64(p[off+16:])),
		)
		off += 24
	}
	r.PointDensity = make([]float32, n)
	for i := range r.PointDensity {
		r.PointDensity[i] = math.Float32frombits(le.Uint32(p[off:]))
		off += 4
	}
	r.OrigIndex = make([]int64, n)
	for i := range r.OrigIndex {
		r.OrigIndex[i] = int64(le.Uint64(p[off:]))
		off += 8
	}
	if got, want := le.Uint32(p[off:]), crc32.ChecksumIEEE(p[:off]); got != want {
		return nil, fmt.Errorf("hybrid: checksum mismatch (buffer %08x, computed %08x)", got, want)
	}
	return r, nil
}
