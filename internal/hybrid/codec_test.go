package hybrid

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/octree"
	"repro/internal/vec"
)

func codecFixture(t testing.TB) *Representation {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	pts := make([]vec.V3, 4000)
	for i := range pts {
		pts[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	tree, err := octree.Build(pts, octree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Extract(tree, ExtractConfig{VolumeRes: 8, Budget: 800})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestAppendBinaryMatchesWrite: the append-style encoder must produce
// byte-for-byte the stream Write produces — the wire and file formats
// are one format.
func TestAppendBinaryMatchesWrite(t *testing.T) {
	rep := codecFixture(t)
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	enc := rep.AppendBinary(nil)
	if !bytes.Equal(enc, buf.Bytes()) {
		t.Fatalf("AppendBinary (%d bytes) differs from Write (%d bytes)", len(enc), buf.Len())
	}
	if int64(len(enc)) != rep.SizeBytes() {
		t.Errorf("encoding is %d bytes, SizeBytes says %d", len(enc), rep.SizeBytes())
	}

	// Appending after a prefix leaves the prefix alone and the encoding
	// intact.
	prefixed := rep.AppendBinary([]byte("prefix"))
	if !bytes.Equal(prefixed[:6], []byte("prefix")) || !bytes.Equal(prefixed[6:], enc) {
		t.Error("AppendBinary with a non-empty dst mangled the stream")
	}
}

// TestDecodeBinaryRoundTrip: DecodeBinary inverts AppendBinary and
// copies everything out of the input buffer.
func TestDecodeBinaryRoundTrip(t *testing.T) {
	rep := codecFixture(t)
	enc := rep.AppendBinary(nil)
	back, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.AppendBinary(nil), enc) {
		t.Fatal("decoded representation re-encodes differently")
	}
	// Clobber the buffer: the decoded representation must be unaffected
	// (the remote compute path recycles reply buffers immediately).
	for i := range enc {
		enc[i] = 0xAA
	}
	if !bytes.Equal(back.AppendBinary(nil), rep.AppendBinary(nil)) {
		t.Fatal("decoded representation aliases the input buffer")
	}
}

// TestDecodeBinaryMalformed: every corruption class errors cleanly —
// no panic, no giant allocation.
func TestDecodeBinaryMalformed(t *testing.T) {
	rep := codecFixture(t)
	good := rep.AppendBinary(nil)

	flip := func(i int) []byte {
		out := append([]byte(nil), good...)
		out[i] ^= 0xff
		return out
	}
	huge := append([]byte(nil), good...)
	for i := 0; i < 8; i++ {
		huge[76+i] = 0xff // dims[0] = huge
	}
	cases := map[string][]byte{
		"empty":           {},
		"truncated magic": good[:3],
		"bad magic":       flip(0),
		"bad version":     flip(4),
		"truncated body":  good[:len(good)/2],
		"extra bytes":     append(append([]byte(nil), good...), 0),
		"flipped point":   flip(len(good) - 100),
		"flipped crc":     flip(len(good) - 1),
		"hostile dims":    huge,
	}
	for name, data := range cases {
		if _, err := DecodeBinary(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func FuzzDecodeBinary(f *testing.F) {
	// A deliberately tiny representation: large seeds make mutation
	// unproductively slow.
	pts := make([]vec.V3, 40)
	rng := rand.New(rand.NewSource(5))
	for i := range pts {
		pts[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	tree, err := octree.Build(pts, octree.DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	rep, err := Extract(tree, ExtractConfig{VolumeRes: 2, Budget: 10})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rep.AppendBinary(nil))
	f.Add([]byte("ACHY"))
	f.Add(make([]byte, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic and never over-allocate on hostile fields.
		_, _ = DecodeBinary(data)
	})
}
