package hybrid

import (
	"fmt"
	"math"
	"sort"
)

// RGBA is a straight (non-premultiplied) floating-point color.
type RGBA struct {
	R, G, B, A float64
}

// Lerp interpolates component-wise between c and d.
func (c RGBA) Lerp(d RGBA, t float64) RGBA {
	return RGBA{
		c.R + t*(d.R-c.R),
		c.G + t*(d.G-c.G),
		c.B + t*(d.B-c.B),
		c.A + t*(d.A-c.A),
	}
}

// Scale multiplies all components by f.
func (c RGBA) Scale(f float64) RGBA { return RGBA{c.R * f, c.G * f, c.B * f, c.A * f} }

// ScalarTF is a piecewise-linear scalar transfer function over the
// normalized density domain [0,1]. Both of the paper's transfer
// functions are scalar at heart: the volume TF's opacity profile, and
// the point TF's "fraction of points drawn".
type ScalarTF struct {
	Pos []float64 // strictly increasing stop positions in [0,1]
	Val []float64 // value at each stop, in [0,1]
}

// NewScalarTF builds a transfer function from parallel position/value
// slices. Positions must be strictly increasing within [0,1].
func NewScalarTF(pos, val []float64) (*ScalarTF, error) {
	if len(pos) != len(val) || len(pos) < 2 {
		return nil, fmt.Errorf("hybrid: transfer function needs >= 2 matched stops, got %d/%d", len(pos), len(val))
	}
	for i := range pos {
		if pos[i] < 0 || pos[i] > 1 {
			return nil, fmt.Errorf("hybrid: stop position %g outside [0,1]", pos[i])
		}
		if i > 0 && pos[i] <= pos[i-1] {
			return nil, fmt.Errorf("hybrid: stop positions not increasing at %d", i)
		}
		if val[i] < 0 || val[i] > 1 {
			return nil, fmt.Errorf("hybrid: stop value %g outside [0,1]", val[i])
		}
	}
	return &ScalarTF{Pos: append([]float64(nil), pos...), Val: append([]float64(nil), val...)}, nil
}

// StepRamp returns the paper's canonical volume-opacity shape: 0 below
// lo, a linear ramp between lo and hi, and the constant value above hi
// ("a step function ... maps low-density regions to 0 and higher
// density regions to some low constant", with "a ramp to transition ...
// so the artificial boundary of the volume-rendered region is less
// visible").
func StepRamp(lo, hi, value float64) (*ScalarTF, error) {
	if !(lo >= 0 && lo < hi && hi <= 1) {
		return nil, fmt.Errorf("hybrid: step ramp needs 0 <= lo < hi <= 1, got %g/%g", lo, hi)
	}
	pos := []float64{0, lo, hi, 1}
	val := []float64{0, 0, value, value}
	if lo == 0 {
		pos, val = pos[1:], val[1:]
	}
	if hi == 1 {
		pos, val = pos[:len(pos)-1], val[:len(val)-1]
	}
	return NewScalarTF(pos, val)
}

// Eval returns the piecewise-linear value at x, clamping outside the
// stop range.
func (tf *ScalarTF) Eval(x float64) float64 {
	if x <= tf.Pos[0] {
		return tf.Val[0]
	}
	last := len(tf.Pos) - 1
	if x >= tf.Pos[last] {
		return tf.Val[last]
	}
	i := sort.SearchFloat64s(tf.Pos, x)
	// Pos[i-1] < x <= Pos[i]
	t := (x - tf.Pos[i-1]) / (tf.Pos[i] - tf.Pos[i-1])
	return tf.Val[i-1] + t*(tf.Val[i]-tf.Val[i-1])
}

// Clone returns an independent copy.
func (tf *ScalarTF) Clone() *ScalarTF {
	return &ScalarTF{
		Pos: append([]float64(nil), tf.Pos...),
		Val: append([]float64(nil), tf.Val...),
	}
}

// Invert replaces every stop value v with 1-v.
func (tf *ScalarTF) Invert() {
	for i := range tf.Val {
		tf.Val[i] = 1 - tf.Val[i]
	}
}

// ColorMap maps normalized density to color through a fixed ramp; the
// volume TF of the paper is this color ramp modulated by the scalar
// opacity profile.
type ColorMap struct {
	Stops []RGBA // evenly spaced over [0,1]
}

// HeatMap returns the blue-to-red color ramp used by the figures.
func HeatMap() ColorMap {
	return ColorMap{Stops: []RGBA{
		{0.05, 0.05, 0.3, 1},
		{0.1, 0.3, 0.9, 1},
		{0.2, 0.8, 0.9, 1},
		{0.9, 0.9, 0.2, 1},
		{1.0, 0.4, 0.1, 1},
		{1.0, 0.1, 0.1, 1},
	}}
}

// GrayMap returns a linear grayscale ramp.
func GrayMap() ColorMap {
	return ColorMap{Stops: []RGBA{{0, 0, 0, 1}, {1, 1, 1, 1}}}
}

// Eval interpolates the ramp at x in [0,1].
func (cm ColorMap) Eval(x float64) RGBA {
	n := len(cm.Stops)
	if n == 0 {
		return RGBA{}
	}
	if n == 1 || x <= 0 {
		return cm.Stops[0]
	}
	if x >= 1 {
		return cm.Stops[n-1]
	}
	f := x * float64(n-1)
	i := int(math.Floor(f))
	if i >= n-1 {
		i = n - 2
	}
	return cm.Stops[i].Lerp(cm.Stops[i+1], f-float64(i))
}

// LinkedTF is the inverse-linked pair of Fig 3(b): a volume transfer
// function (opacity profile times color ramp) and a point transfer
// function (fraction of points drawn), defined on a shared set of stop
// positions. While Linked, the two scalar profiles are exact
// complements — "changing one results in an equal and opposite change
// in the other" — so the user drags a single boundary between the
// point-rendered and volume-rendered regions of the image.
type LinkedTF struct {
	Volume *ScalarTF // opacity weight per normalized density
	Point  *ScalarTF // fraction of points drawn per normalized density
	Color  ColorMap
	// OpacityScale converts the volume weight (0..1) into the actual
	// compositing opacity per sample; the paper uses "some low constant"
	// so the interior stays visible.
	OpacityScale float64
	// Boundary is the normalized preprocessing threshold: densities
	// above it have no stored points ("up until the boundary specified
	// during preprocessing, beyond which no points are available").
	Boundary float64
	Linked   bool
	// Domain optionally remaps raw normalized density before the
	// profiles and color map are evaluated. Beam data spans thousands
	// of densities between halo and core ("the halo is thousands of
	// times less dense than the beam core"), so a logarithmic domain
	// (LogDomain) is what gives the transfer functions usable dynamic
	// range. nil means identity.
	Domain func(float64) float64
}

// LogDomain returns the domain remap x -> log(1+k*x)/log(1+k), which
// expands the low-density end by a factor controlled by k. k must be
// positive; larger k devotes more of the TF domain to sparse regions.
func LogDomain(k float64) func(float64) float64 {
	norm := 1 / math.Log1p(k)
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return math.Log1p(k*x) * norm
	}
}

// mapD applies the optional domain remap.
func (l *LinkedTF) mapD(d float64) float64 {
	if l.Domain != nil {
		return l.Domain(d)
	}
	return d
}

// MapDensity exposes the domain remap for callers that color points
// with the shared color map.
func (l *LinkedTF) MapDensity(d float64) float64 { return l.mapD(d) }

// NewLinkedTF builds a linked pair from the volume weight profile; the
// point profile starts as its exact complement.
func NewLinkedTF(volume *ScalarTF, color ColorMap, opacityScale, boundary float64) (*LinkedTF, error) {
	if opacityScale <= 0 || opacityScale > 1 {
		return nil, fmt.Errorf("hybrid: opacity scale %g outside (0,1]", opacityScale)
	}
	if boundary < 0 || boundary > 1 {
		return nil, fmt.Errorf("hybrid: boundary %g outside [0,1]", boundary)
	}
	point := volume.Clone()
	point.Invert()
	return &LinkedTF{
		Volume:       volume,
		Point:        point,
		Color:        color,
		OpacityScale: opacityScale,
		Boundary:     boundary,
		Linked:       true,
	}, nil
}

// SetVolumeStop changes the volume weight at stop i; when linked, the
// point fraction at the same stop becomes its complement.
func (l *LinkedTF) SetVolumeStop(i int, v float64) error {
	if i < 0 || i >= len(l.Volume.Val) {
		return fmt.Errorf("hybrid: stop index %d out of range", i)
	}
	if v < 0 || v > 1 {
		return fmt.Errorf("hybrid: stop value %g outside [0,1]", v)
	}
	l.Volume.Val[i] = v
	if l.Linked {
		l.Point.Val[i] = 1 - v
	}
	return nil
}

// SetPointStop changes the point fraction at stop i; when linked, the
// volume weight at the same stop becomes its complement.
func (l *LinkedTF) SetPointStop(i int, v float64) error {
	if i < 0 || i >= len(l.Point.Val) {
		return fmt.Errorf("hybrid: stop index %d out of range", i)
	}
	if v < 0 || v > 1 {
		return fmt.Errorf("hybrid: stop value %g outside [0,1]", v)
	}
	l.Point.Val[i] = v
	if l.Linked {
		l.Volume.Val[i] = 1 - v
	}
	return nil
}

// VolumeRGBA returns the volume transfer function's color and opacity
// at normalized density d (after the optional domain remap).
func (l *LinkedTF) VolumeRGBA(d float64) RGBA {
	x := l.mapD(d)
	c := l.Color.Eval(x)
	c.A = l.Volume.Eval(x) * l.OpacityScale
	return c
}

// PointFraction returns the fraction of stored points to draw at
// normalized density d. Beyond the preprocessing boundary no points
// exist, so the fraction is 0 regardless of the editable profile.
func (l *LinkedTF) PointFraction(d float64) float64 {
	if d > l.Boundary {
		return 0
	}
	return l.Point.Eval(l.mapD(d))
}

// Complementary reports whether the two profiles are exact complements
// at every stop — the linked-editing invariant the property tests
// check.
func (l *LinkedTF) Complementary() bool {
	if len(l.Volume.Val) != len(l.Point.Val) {
		return false
	}
	for i := range l.Volume.Val {
		if math.Abs(l.Volume.Val[i]+l.Point.Val[i]-1) > 1e-12 {
			return false
		}
	}
	return true
}

// DefaultTF builds the viewer's default transfer-function pair for a
// representation: a log-density domain (the halo is thousands of times
// less dense than the core), a step-ramp volume profile whose
// breakpoint sits at the extraction boundary, the heat-map color ramp,
// and a low constant volume opacity so the interior stays visible.
func DefaultTF(rep *Representation) (*LinkedTF, error) {
	return DefaultTFParams(rep.Threshold, rep.MaxLeafD)
}

// DefaultTFParams builds DefaultTF's transfer-function pair from the
// only two representation fields it depends on — the extraction
// threshold and the maximum leaf density. A remote render kernel
// rebuilds the identical TF from these sixteen wire bytes instead of
// shipping a whole frame.
func DefaultTFParams(threshold, maxLeafD float64) (*LinkedTF, error) {
	boundary := 1.0
	if maxLeafD > 0 {
		boundary = threshold / maxLeafD
	}
	dom := LogDomain(1e4)
	b := dom(boundary)
	lo := b / 2
	hi := math.Min(b*1.5, 1)
	if hi <= lo {
		lo, hi = 0.1, 0.5
	}
	vol, err := StepRamp(lo, hi, 1.0)
	if err != nil {
		return nil, err
	}
	tf, err := NewLinkedTF(vol, HeatMap(), 0.12, boundary)
	if err != nil {
		return nil, err
	}
	tf.Domain = dom
	return tf, nil
}
