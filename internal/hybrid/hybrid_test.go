package hybrid

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/octree"
	"repro/internal/vec"
)

func unitBox() vec.AABB { return vec.Box(vec.New(0, 0, 0), vec.New(1, 1, 1)) }

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 4, 4, unitBox()); err == nil {
		t.Error("accepted zero resolution")
	}
	if _, err := NewGrid(4, 4, 4, vec.Empty()); err == nil {
		t.Error("accepted empty bounds")
	}
}

func TestGridSetAtSample(t *testing.T) {
	g, err := NewGrid(4, 4, 4, unitBox())
	if err != nil {
		t.Fatal(err)
	}
	g.Set(1, 2, 3, 5)
	if got := g.At(1, 2, 3); got != 5 {
		t.Errorf("At = %v, want 5", got)
	}
	// At clamps out-of-range coordinates.
	if got := g.At(-1, 2, 3); got != g.At(0, 2, 3) {
		t.Errorf("clamping failed: %v vs %v", got, g.At(0, 2, 3))
	}
	// Sampling exactly at the voxel center recovers the stored value.
	center := vec.New((1.0+0.5)/4, (2.0+0.5)/4, (3.0+0.5)/4)
	if got := g.Sample(center); math.Abs(got-5) > 1e-12 {
		t.Errorf("Sample(center) = %v, want 5", got)
	}
	// Outside the bounds sampling yields 0.
	if got := g.Sample(vec.New(2, 2, 2)); got != 0 {
		t.Errorf("Sample(outside) = %v, want 0", got)
	}
}

func TestSampleInterpolatesLinearly(t *testing.T) {
	g, err := NewGrid(2, 1, 1, unitBox())
	if err != nil {
		t.Fatal(err)
	}
	g.Set(0, 0, 0, 0)
	g.Set(1, 0, 0, 1)
	// Halfway between the two voxel centers (x=0.25 and x=0.75).
	if got := g.Sample(vec.New(0.5, 0.5, 0.5)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("midpoint sample = %v, want 0.5", got)
	}
	// Quarter of the way.
	if got := g.Sample(vec.New(0.375, 0.5, 0.5)); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("quarter sample = %v, want 0.25", got)
	}
}

func TestSplatConservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]vec.V3, 5000)
	for i := range pts {
		// Keep points well inside so no CIC weight falls off the grid.
		pts[i] = vec.New(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64())
	}
	g, err := Splat(pts, unitBox(), 16, 16, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.TotalMass(); math.Abs(got-5000) > 0.5 {
		t.Errorf("total mass = %v, want 5000", got)
	}
}

func TestSplatDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]vec.V3, 3000)
	for i := range pts {
		pts[i] = vec.New(rng.Float64(), rng.Float64(), rng.Float64())
	}
	g1, err := Splat(pts, unitBox(), 8, 8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	g4, err := Splat(pts, unitBox(), 8, 8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.Data {
		if math.Abs(float64(g1.Data[i]-g4.Data[i])) > 1e-3 {
			t.Fatalf("voxel %d differs between 1 and 4 workers: %v vs %v", i, g1.Data[i], g4.Data[i])
		}
	}
}

func TestSplatEmpty(t *testing.T) {
	g, err := Splat(nil, unitBox(), 4, 4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalMass() != 0 {
		t.Error("empty splat has mass")
	}
}

func TestNormalize(t *testing.T) {
	g, _ := NewGrid(2, 2, 2, unitBox())
	g.Set(0, 0, 0, 4)
	g.Set(1, 1, 1, 2)
	factor := g.Normalize()
	if factor != 4 {
		t.Errorf("factor = %v, want 4", factor)
	}
	if g.MaxValue() != 1 {
		t.Errorf("max after normalize = %v", g.MaxValue())
	}
	// All-zero grid: factor 0, unchanged.
	z, _ := NewGrid(2, 2, 2, unitBox())
	if f := z.Normalize(); f != 0 {
		t.Errorf("zero-grid factor = %v", f)
	}
}

func TestDownsample(t *testing.T) {
	g, _ := NewGrid(4, 4, 4, unitBox())
	for i := range g.Data {
		g.Data[i] = 2
	}
	d, err := g.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Nx != 2 || d.Ny != 2 || d.Nz != 2 {
		t.Fatalf("downsampled dims %dx%dx%d", d.Nx, d.Ny, d.Nz)
	}
	for i, v := range d.Data {
		if v != 2 {
			t.Fatalf("voxel %d = %v, want 2 (box filter of constant field)", i, v)
		}
	}
	if _, err := g.Downsample(3); err == nil {
		t.Error("accepted non-divisor downsample factor")
	}
}

func TestScalarTFValidation(t *testing.T) {
	if _, err := NewScalarTF([]float64{0}, []float64{1}); err == nil {
		t.Error("accepted single stop")
	}
	if _, err := NewScalarTF([]float64{0, 0}, []float64{0, 1}); err == nil {
		t.Error("accepted non-increasing positions")
	}
	if _, err := NewScalarTF([]float64{0, 2}, []float64{0, 1}); err == nil {
		t.Error("accepted out-of-range position")
	}
	if _, err := NewScalarTF([]float64{0, 1}, []float64{0, 2}); err == nil {
		t.Error("accepted out-of-range value")
	}
}

func TestScalarTFEval(t *testing.T) {
	tf, err := NewScalarTF([]float64{0.2, 0.4, 0.8}, []float64{0, 1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.0, 0},    // clamp below
		{0.2, 0},    // first stop
		{0.3, 0.5},  // mid first segment
		{0.4, 1},    // second stop
		{0.6, 0.75}, // mid second segment
		{0.8, 0.5},  // last stop
		{1.0, 0.5},  // clamp above
	}
	for _, c := range cases {
		if got := tf.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestStepRamp(t *testing.T) {
	tf, err := StepRamp(0.1, 0.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got := tf.Eval(0.05); got != 0 {
		t.Errorf("below lo: %v", got)
	}
	if got := tf.Eval(0.2); math.Abs(got-0.025) > 1e-12 {
		t.Errorf("mid ramp: %v, want 0.025", got)
	}
	if got := tf.Eval(0.9); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("above hi: %v, want 0.05", got)
	}
	if _, err := StepRamp(0.5, 0.2, 1); err == nil {
		t.Error("accepted lo > hi")
	}
}

func TestColorMapEndpoints(t *testing.T) {
	cm := HeatMap()
	lo := cm.Eval(0)
	hi := cm.Eval(1)
	if lo != cm.Stops[0] {
		t.Errorf("Eval(0) = %v", lo)
	}
	if hi != cm.Stops[len(cm.Stops)-1] {
		t.Errorf("Eval(1) = %v", hi)
	}
	// Monotone red increase for the heat map.
	if cm.Eval(0.2).R >= cm.Eval(0.9).R {
		t.Error("heat map red channel not increasing")
	}
}

func newTestLinked(t *testing.T) *LinkedTF {
	t.Helper()
	vol, err := StepRamp(0.1, 0.3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLinkedTF(vol, GrayMap(), 0.08, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLinkedTFStartsComplementary(t *testing.T) {
	l := newTestLinked(t)
	if !l.Complementary() {
		t.Error("fresh linked TF not complementary")
	}
}

// Fig 3(b) property: under any sequence of linked edits to either
// profile, point fraction and volume weight remain exact complements.
func TestLinkedTFInverseLinkProperty(t *testing.T) {
	f := func(edits []struct {
		OnVolume bool
		Stop     uint8
		Val      float64
	}) bool {
		l := newTestLinked(t)
		for _, e := range edits {
			i := int(e.Stop) % len(l.Volume.Val)
			v := math.Abs(math.Mod(e.Val, 1))
			if e.OnVolume {
				if err := l.SetVolumeStop(i, v); err != nil {
					return false
				}
			} else {
				if err := l.SetPointStop(i, v); err != nil {
					return false
				}
			}
			if !l.Complementary() {
				return false
			}
		}
		// The evaluated profiles must also sum to 1 everywhere (same
		// stop positions, complementary values, linear interpolation).
		for x := 0.0; x <= 1.0; x += 0.01 {
			if math.Abs(l.Volume.Eval(x)+l.Point.Eval(x)-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLinkedTFUnlinkedEditsIndependent(t *testing.T) {
	l := newTestLinked(t)
	l.Linked = false
	if err := l.SetVolumeStop(0, 0.7); err != nil {
		t.Fatal(err)
	}
	if l.Complementary() {
		t.Error("unlinked edit still mirrored")
	}
}

func TestPointFractionBeyondBoundary(t *testing.T) {
	l := newTestLinked(t) // boundary 0.35
	if got := l.PointFraction(0.5); got != 0 {
		t.Errorf("fraction beyond boundary = %v, want 0 (no points stored there)", got)
	}
	if got := l.PointFraction(0.05); got <= 0 {
		t.Errorf("fraction in sparse region = %v, want > 0", got)
	}
}

func buildTree(t *testing.T, n int, seed int64) *octree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.V3, n)
	for i := range pts {
		if rng.Float64() < 0.85 {
			pts[i] = vec.New(rng.NormFloat64()*0.3, rng.NormFloat64()*0.3, rng.NormFloat64()*0.3)
		} else {
			pts[i] = vec.New(rng.Float64()*6-3, rng.Float64()*6-3, rng.Float64()*6-3)
		}
	}
	tree, err := octree.Build(pts, octree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestExtractBasics(t *testing.T) {
	tree := buildTree(t, 20000, 3)
	rep, err := Extract(tree, ExtractConfig{VolumeRes: 16, Budget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumPoints() == 0 || rep.NumPoints() > 5000 {
		t.Errorf("extracted %d points for budget 5000", rep.NumPoints())
	}
	if rep.Volume.MaxValue() != 1 {
		t.Errorf("volume not normalized: max %v", rep.Volume.MaxValue())
	}
	if len(rep.PointDensity) != rep.NumPoints() {
		t.Errorf("density array length %d != point count %d", len(rep.PointDensity), rep.NumPoints())
	}
	// Point densities are normalized and non-decreasing (density order).
	prev := float32(-1)
	for i, d := range rep.PointDensity {
		if d < 0 || d > 1 {
			t.Fatalf("point %d density %v outside [0,1]", i, d)
		}
		if d < prev {
			t.Fatalf("point densities not sorted at %d", i)
		}
		prev = d
	}
}

func TestExtractThresholdVsBudgetAgree(t *testing.T) {
	tree := buildTree(t, 10000, 4)
	byBudget, err := Extract(tree, ExtractConfig{VolumeRes: 8, Budget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	byThreshold, err := Extract(tree, ExtractConfig{VolumeRes: 8, Threshold: byBudget.Threshold})
	if err != nil {
		t.Fatal(err)
	}
	if byBudget.NumPoints() != byThreshold.NumPoints() {
		t.Errorf("budget path kept %d, threshold path kept %d", byBudget.NumPoints(), byThreshold.NumPoints())
	}
}

func TestExtractRejectsTinyVolume(t *testing.T) {
	tree := buildTree(t, 100, 5)
	if _, err := Extract(tree, ExtractConfig{VolumeRes: 1, Budget: 10}); err == nil {
		t.Error("accepted 1-voxel volume")
	}
}

func TestRepresentationRoundTrip(t *testing.T) {
	tree := buildTree(t, 8000, 6)
	rep, err := Extract(tree, ExtractConfig{VolumeRes: 8, Budget: 1500})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumPoints() != rep.NumPoints() || got.Threshold != rep.Threshold {
		t.Fatalf("round trip changed shape")
	}
	for i := range rep.Points {
		if got.Points[i] != rep.Points[i] || got.PointDensity[i] != rep.PointDensity[i] {
			t.Fatalf("point %d mismatch", i)
		}
	}
	for i := range rep.Volume.Data {
		if got.Volume.Data[i] != rep.Volume.Data[i] {
			t.Fatalf("voxel %d mismatch", i)
		}
	}
}

func TestRepresentationDetectsCorruption(t *testing.T) {
	tree := buildTree(t, 2000, 7)
	rep, err := Extract(tree, ExtractConfig{VolumeRes: 8, Budget: 500})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xA5
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("corrupted representation accepted")
	}
}

func TestSizeBytesMatchesEncoding(t *testing.T) {
	tree := buildTree(t, 3000, 8)
	rep, err := Extract(tree, ExtractConfig{VolumeRes: 8, Budget: 700})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != rep.SizeBytes() {
		t.Errorf("encoded %d bytes, SizeBytes says %d", buf.Len(), rep.SizeBytes())
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	tree := buildTree(t, 50000, 9)
	rep, err := Extract(tree, ExtractConfig{VolumeRes: 16, Budget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if f := rep.CompressionFactor(50000); f <= 1 {
		t.Errorf("compression factor %v <= 1; hybrid bigger than raw", f)
	}
}

func TestSelectPointsFraction(t *testing.T) {
	// Build a representation with uniform density so the TF fraction
	// applies to all points equally.
	rep := &Representation{
		Points:       make([]vec.V3, 10000),
		PointDensity: make([]float32, 10000),
	}
	for i := range rep.PointDensity {
		rep.PointDensity[i] = 0.1
	}
	vol, err := NewScalarTF([]float64{0, 1}, []float64{0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLinkedTF(vol, GrayMap(), 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Point fraction = 1 - 0.25 = 0.75: expect ~3 of 4 points drawn.
	sel := rep.SelectPoints(l)
	frac := float64(len(sel)) / 10000
	if math.Abs(frac-0.75) > 0.01 {
		t.Errorf("selected fraction %v, want ~0.75", frac)
	}
	// Determinism.
	sel2 := rep.SelectPoints(l)
	if len(sel) != len(sel2) {
		t.Error("selection not deterministic")
	}
}

// TestSelectPointsOffsetSplitEquivalence is the guarantee the
// sort-last distributed render leans on: splitting a frame's points
// into contiguous ranges and selecting each range at its own global
// offset draws exactly the points the undivided selection draws.
func TestSelectPointsOffsetSplitEquivalence(t *testing.T) {
	n := 5000
	rep := &Representation{
		Points:       make([]vec.V3, n),
		PointDensity: make([]float32, n),
	}
	for i := range rep.PointDensity {
		rep.PointDensity[i] = float32(i%7) / 10
	}
	vol, err := NewScalarTF([]float64{0, 1}, []float64{0.6, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLinkedTF(vol, GrayMap(), 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := rep.SelectPoints(l)
	if len(want) == 0 || len(want) == n {
		t.Fatalf("degenerate selection: %d of %d", len(want), n)
	}
	for _, parts := range []int{1, 2, 3, 8} {
		var got []int
		for k := 0; k < parts; k++ {
			lo, hi := k*n/parts, (k+1)*n/parts
			sub := &Representation{Points: rep.Points[lo:hi], PointDensity: rep.PointDensity[lo:hi]}
			for _, i := range sub.SelectPointsOffset(l, lo) {
				got = append(got, lo+i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("parts=%d: selected %d points, want %d", parts, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("parts=%d: selection %d is point %d, want %d", parts, j, got[j], want[j])
			}
		}
	}
}

func TestSelectPointsExtremes(t *testing.T) {
	rep := &Representation{
		Points:       make([]vec.V3, 100),
		PointDensity: make([]float32, 100),
	}
	all, err := NewScalarTF([]float64{0, 1}, []float64{0, 0}) // volume weight 0 -> point fraction 1
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLinkedTF(all, GrayMap(), 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.SelectPoints(l)); got != 100 {
		t.Errorf("fraction 1 selected %d of 100", got)
	}
	none, err := NewScalarTF([]float64{0, 1}, []float64{1, 1}) // point fraction 0
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLinkedTF(none, GrayMap(), 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.SelectPoints(l2)); got != 0 {
		t.Errorf("fraction 0 selected %d", got)
	}
}

// §2.5: "Because the output data size does not necessarily depend on
// the input data size, large simulations ... can be reduced to the
// same size hybrid representation as the smaller simulations."
func TestOutputSizeIndependentOfInputSize(t *testing.T) {
	sizes := []int{20000, 80000}
	const budget = 3000
	var reps []*Representation
	for _, n := range sizes {
		tree := buildTree(t, n, int64(n))
		rep, err := Extract(tree, ExtractConfig{VolumeRes: 16, Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	// Same volume resolution, same point budget: sizes within 25% of
	// each other even though the inputs differ 4x.
	a, b := reps[0].SizeBytes(), reps[1].SizeBytes()
	ratio := float64(b) / float64(a)
	if ratio > 1.25 || ratio < 0.75 {
		t.Errorf("hybrid sizes %d vs %d (ratio %.2f) for 4x different inputs", a, b, ratio)
	}
}
