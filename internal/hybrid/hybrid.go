package hybrid

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/octree"
	"repro/internal/vec"
)

// Representation is one hybrid frame: the low-resolution density
// volume standing in for the dense core, plus the full-resolution halo
// points from octree leaves below the density threshold. It is the
// unit the viewer loads, caches and renders (§2.4–2.5).
type Representation struct {
	Bounds    vec.AABB
	Threshold float64 // leaf-density threshold used at extraction
	MaxLeafD  float64 // max leaf density in the source tree (normalization)

	Volume *Grid // normalized density volume of the full data

	Points       []vec.V3  // halo points, in increasing leaf-density order
	PointDensity []float32 // normalized leaf density per point (for the point TF)
	// OrigIndex maps each halo point back to its particle index in the
	// source frame. It is what makes the paper's §2.5 extension
	// possible: "because points are drawn dynamically, they could be
	// drawn (in terms of color or opacity) based on some dynamically
	// calculated property that the scientist is interested in, such as
	// temperature or emittance" — the viewer looks the property up per
	// point at draw time instead of baking it in.
	OrigIndex []int64
}

// ExtractConfig controls Extract.
type ExtractConfig struct {
	VolumeRes int     // density volume resolution per axis (e.g. 64)
	Threshold float64 // leaf-density threshold; <= 0 means use Budget
	Budget    int64   // max points to keep when Threshold <= 0
	Workers   int
}

// Extract converts a partitioned tree into a hybrid representation:
// the contiguous low-density prefix of the particle array becomes the
// point set, and the full data is splatted into a VolumeRes^3 density
// volume. This is the paper's "extraction program": because the
// particle file is sorted by increasing density, the points kept are a
// prefix copy and the discarded dense-core particles are only touched
// by the (one-time) volume splat.
func Extract(t *octree.Tree, cfg ExtractConfig) (*Representation, error) {
	if cfg.VolumeRes < 2 {
		return nil, fmt.Errorf("hybrid: volume resolution %d too small", cfg.VolumeRes)
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = t.ThresholdForBudget(cfg.Budget)
	}
	cut := t.CutLeaf(threshold)
	end := t.LeafOffsets[cut]

	rep := &Representation{
		Bounds:    t.Bounds,
		Threshold: threshold,
	}
	// Normalization: densities are expressed relative to the densest leaf.
	if n := t.NumLeaves(); n > 0 {
		rep.MaxLeafD = t.Leaf(n - 1).Density
	}

	// Halo points: contiguous prefix (copied so the representation is
	// self-contained once the tree is evicted).
	rep.Points = append([]vec.V3(nil), t.Points[:end]...)
	rep.OrigIndex = append([]int64(nil), t.OrigIndex[:end]...)
	rep.PointDensity = make([]float32, end)
	norm := 1.0
	if rep.MaxLeafD > 0 {
		norm = 1 / rep.MaxLeafD
	}
	for k := 0; k < cut; k++ {
		d := float32(t.Leaf(k).Density * norm)
		for i := t.LeafOffsets[k]; i < t.LeafOffsets[k+1]; i++ {
			rep.PointDensity[i] = d
		}
	}

	// Density volume over the full data.
	vol, err := Splat(t.Points, t.Bounds, cfg.VolumeRes, cfg.VolumeRes, cfg.VolumeRes, cfg.Workers)
	if err != nil {
		return nil, err
	}
	vol.Normalize()
	rep.Volume = vol
	return rep, nil
}

// NumPoints returns the number of halo points kept.
func (r *Representation) NumPoints() int { return len(r.Points) }

// SizeBytes returns the serialized payload size: the number behind the
// paper's "hybrid data smaller than 100MB" and frame-cache claims.
func (r *Representation) SizeBytes() int64 {
	const header = 4 + 8 + 6*8 + 8 + 8 + 3*8 + 8 + 4 // magic, version, bounds, thresholds, dims, count, crc
	return header + r.Volume.SizeBytes() + int64(len(r.Points))*24 +
		int64(len(r.PointDensity))*4 + int64(len(r.OrigIndex))*8
}

// CompressionFactor returns rawBytes / SizeBytes for a raw frame of n
// particles at 48 bytes each.
func (r *Representation) CompressionFactor(n int64) float64 {
	return float64(n*48) / float64(r.SizeBytes())
}

var magicHybrid = [4]byte{'A', 'C', 'H', 'Y'}

const hybridVersion = 2

// Write serializes the representation with a trailing CRC-32.
func (r *Representation) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(bw, crc)
	if _, err := mw.Write(magicHybrid[:]); err != nil {
		return fmt.Errorf("hybrid: writing magic: %w", err)
	}
	le := binary.LittleEndian
	write := func(v any) error { return binary.Write(mw, le, v) }
	if err := write(uint64(hybridVersion)); err != nil {
		return err
	}
	for _, f := range []float64{
		r.Bounds.Min.X, r.Bounds.Min.Y, r.Bounds.Min.Z,
		r.Bounds.Max.X, r.Bounds.Max.Y, r.Bounds.Max.Z,
		r.Threshold, r.MaxLeafD,
	} {
		if err := write(f); err != nil {
			return err
		}
	}
	for _, d := range []int64{int64(r.Volume.Nx), int64(r.Volume.Ny), int64(r.Volume.Nz)} {
		if err := write(d); err != nil {
			return err
		}
	}
	if err := write(r.Volume.Data); err != nil {
		return err
	}
	if err := write(int64(len(r.Points))); err != nil {
		return err
	}
	for _, p := range r.Points {
		if err := write([3]float64{p.X, p.Y, p.Z}); err != nil {
			return err
		}
	}
	if err := write(r.PointDensity); err != nil {
		return err
	}
	if err := write(r.OrigIndex); err != nil {
		return err
	}
	if err := binary.Write(bw, le, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a representation written by Write, verifying the
// checksum.
func Read(rd io.Reader) (*Representation, error) {
	br := bufio.NewReaderSize(rd, 1<<20)
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)
	le := binary.LittleEndian
	var magic [4]byte
	if _, err := io.ReadFull(tr, magic[:]); err != nil {
		return nil, fmt.Errorf("hybrid: reading magic: %w", err)
	}
	if magic != magicHybrid {
		return nil, fmt.Errorf("hybrid: bad magic %q", magic[:])
	}
	read := func(v any) error { return binary.Read(tr, le, v) }
	var version uint64
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != hybridVersion {
		return nil, fmt.Errorf("hybrid: unsupported version %d", version)
	}
	var f [8]float64
	if err := read(&f); err != nil {
		return nil, err
	}
	r := &Representation{
		Bounds:    vec.Box(vec.New(f[0], f[1], f[2]), vec.New(f[3], f[4], f[5])),
		Threshold: f[6],
		MaxLeafD:  f[7],
	}
	var dims [3]int64
	if err := read(&dims); err != nil {
		return nil, err
	}
	if dims[0] < 1 || dims[1] < 1 || dims[2] < 1 || dims[0]*dims[1]*dims[2] > 1<<33 {
		return nil, fmt.Errorf("hybrid: implausible volume dims %v", dims)
	}
	vol, err := NewGrid(int(dims[0]), int(dims[1]), int(dims[2]), r.Bounds)
	if err != nil {
		return nil, err
	}
	if err := read(vol.Data); err != nil {
		return nil, err
	}
	r.Volume = vol
	var n int64
	if err := read(&n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<40 {
		return nil, fmt.Errorf("hybrid: implausible point count %d", n)
	}
	r.Points = make([]vec.V3, n)
	for i := range r.Points {
		var p [3]float64
		if err := read(&p); err != nil {
			return nil, err
		}
		r.Points[i] = vec.New(p[0], p[1], p[2])
	}
	r.PointDensity = make([]float32, n)
	if err := read(&r.PointDensity); err != nil {
		return nil, err
	}
	r.OrigIndex = make([]int64, n)
	if err := read(&r.OrigIndex); err != nil {
		return nil, err
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(br, le, &got); err != nil {
		return nil, fmt.Errorf("hybrid: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("hybrid: checksum mismatch (file %08x, computed %08x)", got, want)
	}
	return r, nil
}

// WriteFile writes the representation to the named file, atomically:
// the bytes go to a temp file in the same directory, which is renamed
// into place only after a successful close. A writer killed mid-frame
// leaves a stray temp file, never a partial .achy at the final path —
// the crash-safety a DirStore shared between a producing pipeline and
// a serving process needs (the reader additionally skips any partial
// leftovers; see remote.NewDirStore).
func (r *Representation) WriteFile(path string) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return fmt.Errorf("hybrid: %w", err)
	}
	tmp := f.Name()
	if err := r.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("hybrid: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("hybrid: %w", err)
	}
	return nil
}

// FileComplete reports whether the named file is a structurally
// complete hybrid frame: correct magic and version, and a byte length
// exactly accounting for the volume, point arrays and trailing CRC its
// header promises. It costs two small reads — no decode, no CRC pass —
// which is what lets a DirStore scan of thousands of frames skip the
// partial leftovers of a killed (pre-atomic-rename) writer without
// reading them.
func FileComplete(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return false
	}
	size := st.Size()
	const header = 4 + 8 + 8*8 + 3*8 // magic, version, bounds+thresholds, dims
	var head [header]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false
	}
	if [4]byte(head[:4]) != magicHybrid {
		return false
	}
	le := binary.LittleEndian
	if le.Uint64(head[4:12]) != hybridVersion {
		return false
	}
	nx := int64(le.Uint64(head[76:84]))
	ny := int64(le.Uint64(head[84:92]))
	nz := int64(le.Uint64(head[92:100]))
	if nx < 0 || ny < 0 || nz < 0 || nx*ny*nz < 0 {
		return false
	}
	volBytes := nx * ny * nz * 4
	if volBytes < 0 || header+volBytes+8 > size {
		return false
	}
	var cnt [8]byte
	if _, err := f.ReadAt(cnt[:], header+volBytes); err != nil {
		return false
	}
	n := int64(le.Uint64(cnt[:]))
	if n < 0 || n > size { // bound before multiplying: n is untrusted
		return false
	}
	return size == header+volBytes+8+n*24+n*4+n*8+4
}

// ReadFile reads a representation from the named file.
func ReadFile(path string) (*Representation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// SelectPoints applies the point transfer function: for each halo
// point, the fraction tf.PointFraction(density) decides whether it is
// drawn. Selection is deterministic — point i at fraction f is drawn
// iff frac((i+1)*phi) < f with phi the golden-ratio conjugate — so "the
// transfer function's value at 0.75 ... means three out of every four
// points are drawn" holds without flicker between frames.
func (r *Representation) SelectPoints(tf *LinkedTF) []int {
	return r.SelectPointsOffset(tf, 0)
}

// SelectPointsOffset selects points as SelectPoints does, but treats
// the representation as the contiguous sub-range of a larger frame
// starting at global point index offset: point i hashes as global
// point offset+i. Splitting a frame's points into contiguous ranges
// and selecting each range at its own offset therefore draws exactly
// the points the undivided frame would — the invariant the sort-last
// distributed render path depends on.
func (r *Representation) SelectPointsOffset(tf *LinkedTF, offset int) []int {
	const phi = 0.6180339887498949
	out := make([]int, 0, len(r.Points))
	for i := range r.Points {
		f := tf.PointFraction(float64(r.PointDensity[i]))
		if f <= 0 {
			continue
		}
		if f >= 1 {
			out = append(out, i)
			continue
		}
		u := math.Mod(float64(offset+i+1)*phi, 1)
		if u < f {
			out = append(out, i)
		}
	}
	return out
}
