// Package volren is the software volume renderer of the hybrid
// pipeline — the stand-in for the texture-mapping-hardware volume
// rendering of §2.1. It ray-casts a density grid through the viewer's
// transfer function with front-to-back compositing, early ray
// termination, and correct interleaving with opaque geometry already
// in the depth buffer (so halo points occlude and are occluded by the
// volume exactly as in Fig 4).
package volren

import (
	"fmt"
	"math"

	"repro/internal/hybrid"
	"repro/internal/par"
	"repro/internal/render"
	"repro/internal/vec"
)

// Renderer ray-casts one density grid.
type Renderer struct {
	Grid *hybrid.Grid
	TF   *hybrid.LinkedTF

	// StepScale is the ray sampling distance as a fraction of the voxel
	// size; 0.5 gives the conventional 2x oversampling.
	StepScale float64
	// Jitter offsets ray starts by a per-pixel deterministic fraction of
	// a step to break banding ("wood grain") artifacts.
	Jitter bool
	// Workers bounds goroutine parallelism (0 = auto). Scanlines are
	// distributed in contiguous chunks.
	Workers int

	// SampleCount accumulates how many volume samples the last Render
	// took; it is the cost metric the Fig 1 experiment reports (256^3
	// full-res casting vs 64^3 hybrid casting).
	SampleCount int64
}

// New returns a renderer over the given grid and transfer functions.
func New(grid *hybrid.Grid, tf *hybrid.LinkedTF) (*Renderer, error) {
	if grid == nil || tf == nil {
		return nil, fmt.Errorf("volren: nil grid or transfer function")
	}
	return &Renderer{Grid: grid, TF: tf, StepScale: 0.5}, nil
}

// Render casts one ray per pixel into fb. Pixels already covered by
// opaque geometry composite the volume only in front of that geometry.
// The color result is blended over the existing framebuffer contents.
func (r *Renderer) Render(fb *render.Framebuffer, cam render.Camera) {
	voxel := r.Grid.Bounds.Size().X / float64(r.Grid.Nx)
	if s := r.Grid.Bounds.Size().Y / float64(r.Grid.Ny); s < voxel {
		voxel = s
	}
	if s := r.Grid.Bounds.Size().Z / float64(r.Grid.Nz); s < voxel {
		voxel = s
	}
	step := voxel * r.stepScale()
	refStep := voxel

	counts := make([]int64, fb.H)
	par.ForChunks(fb.H, r.Workers, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			var n int64
			for x := 0; x < fb.W; x++ {
				n += r.castPixel(fb, cam, x, y, step, refStep)
			}
			counts[y] = n
		}
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	r.SampleCount = total
}

func (r *Renderer) stepScale() float64 {
	if r.StepScale <= 0 {
		return 0.5
	}
	return r.StepScale
}

// castPixel marches one ray and blends the result over the pixel.
// It returns the number of volume samples taken.
func (r *Renderer) castPixel(fb *render.Framebuffer, cam render.Camera, x, y int, step, refStep float64) int64 {
	origin, dir := cam.Ray(x, y, fb.W, fb.H)
	tEnter, tExit, hit := r.Grid.Bounds.IntersectRay(origin, dir)
	if !hit || tExit <= 0 {
		return 0
	}
	if tEnter < cam.Near {
		tEnter = cam.Near
	}
	if r.Jitter {
		// Deterministic per-pixel jitter from a hash of the coordinates.
		h := uint32(x)*374761393 + uint32(y)*668265263
		h = (h ^ (h >> 13)) * 1274126177
		tEnter += step * float64(h%1024) / 1024
	}

	// Existing opaque geometry limits the march.
	zGeom := fb.DepthAt(x, y)
	geomLimit := math.Inf(1)
	if !math.IsInf(float64(zGeom), 1) {
		// Convert the stored NDC depth back to a ray parameter limit by
		// bisection over view-space depth (monotonic), cheap enough at
		// per-pixel granularity and exact at convergence.
		geomLimit = r.rayLimitForDepth(cam, origin, dir, float64(zGeom), tEnter, tExit)
	}

	end := math.Min(tExit, geomLimit)
	var cr, cg, cb, ca float64 // premultiplied accumulation
	samples := int64(0)
	for t := tEnter; t < end && ca < 0.99; t += step {
		p := origin.Add(dir.Scale(t))
		d := r.Grid.Sample(p)
		samples++
		if d <= 0 {
			continue
		}
		s := r.TF.VolumeRGBA(d)
		if s.A <= 0 {
			continue
		}
		// Opacity correction for the step length.
		alpha := 1 - math.Pow(1-s.A, step/refStep)
		w := (1 - ca) * alpha
		cr += w * s.R
		cg += w * s.G
		cb += w * s.B
		ca += w
	}
	if ca <= 0 {
		return samples
	}
	// Composite the accumulated (premultiplied) color over the pixel.
	r.blendOver(fb, x, y, cr, cg, cb, ca)
	return samples
}

// rayLimitForDepth finds the ray parameter whose NDC depth equals
// zNDC, by bisection over [tLo, tHi].
func (r *Renderer) rayLimitForDepth(cam render.Camera, origin, dir vec.V3, zNDC, tLo, tHi float64) float64 {
	// Depth is increasing in t (farther along the ray = deeper).
	lo, hi := tLo, tHi
	if cam.NDCDepth(cam.ViewZ(origin.Add(dir.Scale(hi)))) <= zNDC {
		return hi // geometry is behind the volume exit
	}
	if cam.NDCDepth(cam.ViewZ(origin.Add(dir.Scale(lo)))) >= zNDC {
		return lo // geometry is in front of the volume entry
	}
	for i := 0; i < 32; i++ {
		mid := (lo + hi) / 2
		if cam.NDCDepth(cam.ViewZ(origin.Add(dir.Scale(mid)))) < zNDC {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// blendOver composites premultiplied (cr,cg,cb,ca) over pixel (x,y).
func (r *Renderer) blendOver(fb *render.Framebuffer, x, y int, cr, cg, cb, ca float64) {
	i := (y*fb.W + x) * 4
	fb.Color[i] = float32(cr) + fb.Color[i]*float32(1-ca)
	fb.Color[i+1] = float32(cg) + fb.Color[i+1]*float32(1-ca)
	fb.Color[i+2] = float32(cb) + fb.Color[i+2]*float32(1-ca)
	fb.Color[i+3] = float32(ca) + fb.Color[i+3]*float32(1-ca)
}

// PointAttr computes a scalar property for the halo point with the
// given original particle index — the §2.5 dynamic-coloring hook
// ("points could be drawn ... based on some dynamically calculated
// property that the scientist is interested in, such as temperature or
// emittance").
type PointAttr func(orig int64) float64

// RenderHybridDynamic renders like RenderHybrid but colors each drawn
// halo point by attr through attrMap, normalized over the selected
// points. "Volume-based rendering, because it is limited to
// pre-calculated data, cannot allow dynamic changes like these" — only
// the point half of the image restyles.
func RenderHybridDynamic(rep *hybrid.Representation, tf *hybrid.LinkedTF,
	fb *render.Framebuffer, cam render.Camera, pointSize float64,
	attr PointAttr, attrMap hybrid.ColorMap) (*render.Rasterizer, *Renderer, error) {

	if attr == nil {
		return nil, nil, fmt.Errorf("volren: nil point attribute")
	}
	if len(rep.OrigIndex) != len(rep.Points) {
		return nil, nil, fmt.Errorf("volren: representation lacks original indices (%d vs %d points)",
			len(rep.OrigIndex), len(rep.Points))
	}
	sel := rep.SelectPoints(tf)
	// Normalize the attribute over the drawn set so the full color ramp
	// is used regardless of units.
	lo, hi := math.Inf(1), math.Inf(-1)
	vals := make([]float64, len(sel))
	for k, i := range sel {
		v := attr(rep.OrigIndex[i])
		vals[k] = v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	rast := render.NewRasterizer(fb, cam)
	rast.Mode = render.BlendOpaque
	splats := make([]render.PointSplat, len(sel))
	for k, i := range sel {
		c := attrMap.Eval((vals[k] - lo) / span)
		c.A = 1
		splats[k] = render.PointSplat{Pos: rep.Points[i], Radius: pointSize, Color: c}
	}
	rast.DrawPointBatch(splats)
	vr, err := New(rep.Volume, tf)
	if err != nil {
		return nil, nil, err
	}
	vr.Render(fb, cam)
	return rast, vr, nil
}

// PointPassOptions bounds a halo-point pass to a sub-range of a
// frame's points — the worker-side render of the sort-last
// distributed path, where each fleet member draws one contiguous
// octree-ordered slice of the frame's point set.
type PointPassOptions struct {
	// Offset is the global index of the pass's first point: point
	// selection hashes global indices (SelectPointsOffset), so a
	// sub-range pass draws exactly the points the whole frame's pass
	// would draw from that range.
	Offset int
	// Clip bounds the pass to the depth slab of the points' own
	// bounding box (Camera.DepthRange over the sub-volume), the IceT
	// sort-last idiom: a partition can never write outside its depth
	// interval. The interval is conservative, so clipping changes no
	// pixel of a pass that only draws its own points.
	Clip bool
}

// RenderPointPass draws the halo-point half of RenderHybrid — the
// depth-writing opaque splats selected by the point transfer function
// — and returns the rasterizer holding the pass stats. The volume
// pass is not run; rep.Volume may be nil. Splitting a frame's points
// into contiguous sub-ranges and running one pass per range (each at
// its global Offset) writes, across all partial framebuffers, exactly
// the fragments the undivided pass writes.
func RenderPointPass(rep *hybrid.Representation, tf *hybrid.LinkedTF,
	fb *render.Framebuffer, cam render.Camera, pointSize float64, opaquePoints bool,
	opt PointPassOptions) *render.Rasterizer {

	rast := render.NewRasterizer(fb, cam)
	rast.Mode = render.BlendOpaque
	if opt.Clip && len(rep.Points) > 0 {
		box := vec.Empty()
		for _, p := range rep.Points {
			box = box.ExtendPoint(p)
		}
		if near, far, ok := cam.DepthRange(box); ok {
			rast.ClipDepth, rast.ClipNear, rast.ClipFar = true, near, far
		}
	}
	sel := rep.SelectPointsOffset(tf, opt.Offset)
	// The halo points go through the tile-binned parallel backend: the
	// splat batch is projected, binned and rasterized on all cores with
	// output bit-identical to serial DrawPoint calls in this order.
	splats := make([]render.PointSplat, len(sel))
	for k, i := range sel {
		d := tf.MapDensity(float64(rep.PointDensity[i]))
		c := tf.Color.Eval(d)
		if !opaquePoints {
			c.A = 0.35 + 0.65*d
		} else {
			c.A = 1
		}
		splats[k] = render.PointSplat{Pos: rep.Points[i], Radius: pointSize, Color: c}
	}
	rast.DrawPointBatch(splats)
	return rast
}

// RenderHybrid renders a hybrid representation exactly as the paper's
// viewer does: the halo points selected by the point transfer function
// are drawn first as depth-writing splats, then the density volume is
// ray-cast in front of and behind them (§2.4, Fig 4). pointSize is the
// splat radius in pixels; opaquePoints matches Fig 4's "points shown
// here are completely opaque" mode, otherwise points modulate alpha by
// their leaf density through the color map.
func RenderHybrid(rep *hybrid.Representation, tf *hybrid.LinkedTF,
	fb *render.Framebuffer, cam render.Camera, pointSize float64, opaquePoints bool) (*render.Rasterizer, *Renderer, error) {

	rast := RenderPointPass(rep, tf, fb, cam, pointSize, opaquePoints, PointPassOptions{})

	vr, err := New(rep.Volume, tf)
	if err != nil {
		return nil, nil, err
	}
	vr.Render(fb, cam)
	return rast, vr, nil
}

// RenderStill renders a hybrid representation from the given view
// direction into a fresh w x h framebuffer with the standard
// experiment camera (LookAtBounds over the representation's bounds),
// returning the frame and both renderer stat blocks. It is the
// one-call render path shared by the core façade, the remote service's
// thin-client mode, and the viewer — all of which must produce
// bit-identical images for the same representation and TF.
func RenderStill(rep *hybrid.Representation, tf *hybrid.LinkedTF, w, h int, viewDir vec.V3) (*render.Framebuffer, *render.Rasterizer, *Renderer, error) {
	fb, err := render.NewFramebuffer(w, h)
	if err != nil {
		return nil, nil, nil, err
	}
	cam, err := render.LookAtBounds(rep.Bounds, viewDir, math.Pi/3, float64(w)/float64(h))
	if err != nil {
		return nil, nil, nil, err
	}
	rast, vr, err := RenderHybrid(rep, tf, fb, cam, 1.5, false)
	if err != nil {
		return nil, nil, nil, err
	}
	return fb, rast, vr, nil
}
