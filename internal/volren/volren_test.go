package volren

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/render"
	"repro/internal/vec"
)

// solidGrid returns a grid with a dense ball in the middle.
func solidGrid(t *testing.T, n int) *hybrid.Grid {
	t.Helper()
	g, err := hybrid.NewGrid(n, n, n, vec.Box(vec.New(-1, -1, -1), vec.New(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				fx := (float64(x)+0.5)/float64(n)*2 - 1
				fy := (float64(y)+0.5)/float64(n)*2 - 1
				fz := (float64(z)+0.5)/float64(n)*2 - 1
				if fx*fx+fy*fy+fz*fz < 0.5 {
					g.Set(x, y, z, 1)
				}
			}
		}
	}
	return g
}

func testTF(t *testing.T) *hybrid.LinkedTF {
	t.Helper()
	vol, err := hybrid.StepRamp(0.05, 0.2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := hybrid.NewLinkedTF(vol, hybrid.GrayMap(), 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return tf
}

func testCam(t *testing.T) render.Camera {
	t.Helper()
	cam, err := render.NewCamera(vec.New(0, 0, 4), vec.New(0, 0, 0), vec.New(0, 1, 0),
		math.Pi/3, 1, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	return cam
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, testTF(t)); err == nil {
		t.Error("accepted nil grid")
	}
	if _, err := New(solidGrid(t, 8), nil); err == nil {
		t.Error("accepted nil TF")
	}
}

func TestRenderCoversBall(t *testing.T) {
	r, err := New(solidGrid(t, 16), testTF(t))
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := render.NewFramebuffer(64, 64)
	r.Render(fb, testCam(t))
	// Center pixel must be lit, far corner must not.
	if fb.At(32, 32).A == 0 {
		t.Error("ball center not rendered")
	}
	if fb.At(1, 1).A != 0 {
		t.Error("empty corner rendered")
	}
	if r.SampleCount == 0 {
		t.Error("no samples counted")
	}
}

func TestRenderRespectsOpaqueGeometry(t *testing.T) {
	grid := solidGrid(t, 16)
	tf := testTF(t)
	cam := testCam(t)

	// Frame A: geometry in FRONT of the volume (at z = +0.9 toward the
	// camera): the red point should dominate the center pixel.
	fbA, _ := render.NewFramebuffer(64, 64)
	rastA := render.NewRasterizer(fbA, cam)
	red := hybrid.RGBA{R: 1, A: 1}
	rastA.DrawPoint(vec.New(0, 0, 0.95), 2, red)
	rA, _ := New(grid, tf)
	rA.Render(fbA, cam)

	// Frame B: geometry BEHIND the volume (z = -0.95): volume should
	// attenuate the red.
	fbB, _ := render.NewFramebuffer(64, 64)
	rastB := render.NewRasterizer(fbB, cam)
	rastB.DrawPoint(vec.New(0, 0, -0.95), 2, red)
	rB, _ := New(grid, tf)
	rB.Render(fbB, cam)

	frontRed := fbA.At(32, 32).R
	backRed := fbB.At(32, 32).R
	if frontRed <= backRed {
		t.Errorf("front-point red %v <= back-point red %v; volume/geometry interleaving wrong",
			frontRed, backRed)
	}
}

func TestEarlyTerminationReducesSamples(t *testing.T) {
	grid := solidGrid(t, 16)
	// Fully opaque TF terminates rays quickly.
	volHi, _ := hybrid.StepRamp(0.01, 0.02, 1.0)
	tfHi, _ := hybrid.NewLinkedTF(volHi, hybrid.GrayMap(), 1.0, 0.3)
	// Nearly transparent TF marches every ray through.
	volLo, _ := hybrid.StepRamp(0.01, 0.02, 0.02)
	tfLo, _ := hybrid.NewLinkedTF(volLo, hybrid.GrayMap(), 0.02, 0.3)

	cam := testCam(t)
	fb1, _ := render.NewFramebuffer(32, 32)
	r1, _ := New(grid, tfHi)
	r1.Render(fb1, cam)
	fb2, _ := render.NewFramebuffer(32, 32)
	r2, _ := New(grid, tfLo)
	r2.Render(fb2, cam)
	if r1.SampleCount >= r2.SampleCount {
		t.Errorf("opaque TF took %d samples, transparent %d; early termination missing",
			r1.SampleCount, r2.SampleCount)
	}
}

func TestSampleCountScalesWithResolution(t *testing.T) {
	// Casting a higher-resolution grid costs proportionally more
	// samples — the heart of the Fig 1 volume-vs-hybrid comparison.
	cam := testCam(t)
	tf := testTF(t)
	small, _ := New(solidGrid(t, 8), tf)
	big, _ := New(solidGrid(t, 32), tf)
	fb1, _ := render.NewFramebuffer(32, 32)
	small.Render(fb1, cam)
	fb2, _ := render.NewFramebuffer(32, 32)
	big.Render(fb2, cam)
	ratio := float64(big.SampleCount) / float64(small.SampleCount)
	if ratio < 2 {
		t.Errorf("32^3 grid took only %.2fx the samples of 8^3", ratio)
	}
}

func TestRenderHybridEndToEnd(t *testing.T) {
	// Build a small hybrid representation and render it.
	rng := rand.New(rand.NewSource(1))
	pts := make([]vec.V3, 20000)
	for i := range pts {
		if rng.Float64() < 0.8 {
			pts[i] = vec.New(rng.NormFloat64()*0.2, rng.NormFloat64()*0.2, rng.NormFloat64()*0.2)
		} else {
			pts[i] = vec.New(rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1)
		}
	}
	tree, err := octree.Build(pts, octree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: 16, Budget: 4000})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := hybrid.StepRamp(0.3, 0.6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := hybrid.NewLinkedTF(vol, hybrid.HeatMap(), 0.5, float64(rep.Threshold/rep.MaxLeafD))
	if err != nil {
		t.Fatal(err)
	}
	tf.Domain = hybrid.LogDomain(1e4)
	fb, _ := render.NewFramebuffer(64, 64)
	cam, err := render.LookAtBounds(rep.Bounds, vec.New(0.3, 0.2, 1), math.Pi/3, 1)
	if err != nil {
		t.Fatal(err)
	}
	rast, vr, err := RenderHybrid(rep, tf, fb, cam, 1.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if rast.PointCount == 0 {
		t.Error("no points drawn")
	}
	if vr.SampleCount == 0 {
		t.Error("no volume samples")
	}
	if fb.CoveredPixels(0.01) == 0 {
		t.Error("hybrid render produced a black frame")
	}
}

func TestJitterChangesNothingStructural(t *testing.T) {
	grid := solidGrid(t, 16)
	tf := testTF(t)
	cam := testCam(t)
	r1, _ := New(grid, tf)
	fb1, _ := render.NewFramebuffer(32, 32)
	r1.Render(fb1, cam)
	r2, _ := New(grid, tf)
	r2.Jitter = true
	fb2, _ := render.NewFramebuffer(32, 32)
	r2.Render(fb2, cam)
	// Jitter must not change which pixels are covered, only shading.
	a := fb1.CoveredPixels(0.01)
	b := fb2.CoveredPixels(0.01)
	if a == 0 || math.Abs(float64(a-b)) > float64(a)/5 {
		t.Errorf("jitter changed coverage: %d vs %d", a, b)
	}
}

func TestRenderHybridDynamicColoring(t *testing.T) {
	// Build a hybrid representation whose points carry original indices.
	rng := rand.New(rand.NewSource(5))
	pts := make([]vec.V3, 10000)
	for i := range pts {
		if rng.Float64() < 0.8 {
			pts[i] = vec.New(rng.NormFloat64()*0.2, rng.NormFloat64()*0.2, rng.NormFloat64()*0.2)
		} else {
			pts[i] = vec.New(rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1)
		}
	}
	tree, err := octree.Build(pts, octree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: 8, Budget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OrigIndex) != rep.NumPoints() {
		t.Fatalf("extract kept %d orig indices for %d points", len(rep.OrigIndex), rep.NumPoints())
	}
	tf := testTF(t)
	cam, err := render.LookAtBounds(rep.Bounds, vec.New(0.3, 0.2, 1), math.Pi/3, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Attribute: x coordinate of the ORIGINAL point; color map red-blue.
	attr := func(orig int64) float64 { return pts[orig].X }
	rb := hybrid.ColorMap{Stops: []hybrid.RGBA{{R: 1, A: 1}, {B: 1, A: 1}}}
	fb, _ := render.NewFramebuffer(96, 96)
	rast, _, err := RenderHybridDynamic(rep, tf, fb, cam, 1.5, attr, rb)
	if err != nil {
		t.Fatal(err)
	}
	if rast.PointCount == 0 {
		t.Fatal("no points drawn")
	}
	// Left half of the image should skew red, right half blue (camera
	// roughly looks down -z, x maps left-to-right).
	var leftR, leftB, rightR, rightB float64
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			c := fb.At(x, y)
			if x < 48 {
				leftR += c.R
				leftB += c.B
			} else {
				rightR += c.R
				rightB += c.B
			}
		}
	}
	if leftR <= leftB || rightB <= rightR {
		t.Errorf("dynamic coloring not spatially correlated: left(R=%.1f,B=%.1f) right(R=%.1f,B=%.1f)",
			leftR, leftB, rightR, rightB)
	}
}

func TestRenderHybridDynamicValidation(t *testing.T) {
	rep := &hybrid.Representation{Points: make([]vec.V3, 3)}
	tf := testTF(t)
	fb, _ := render.NewFramebuffer(8, 8)
	cam := testCam(t)
	if _, _, err := RenderHybridDynamic(rep, tf, fb, cam, 1, nil, hybrid.GrayMap()); err == nil {
		t.Error("nil attribute accepted")
	}
	attr := func(int64) float64 { return 0 }
	if _, _, err := RenderHybridDynamic(rep, tf, fb, cam, 1, attr, hybrid.GrayMap()); err == nil {
		t.Error("representation without orig indices accepted")
	}
}
