package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	const n = 10000
	var hits [n]int32
	For(n, 4, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-5, 4, func(int) { called = true })
	if called {
		t.Error("body called for empty range")
	}
}

func TestForSingleWorkerIsSequential(t *testing.T) {
	var order []int
	For(100, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("single worker out of order at %d: %d", i, v)
		}
	}
}

func TestForChunksCoverRange(t *testing.T) {
	f := func(n16 uint16, w8 uint8) bool {
		n := int(n16 % 2000)
		w := int(w8%8) + 1
		var mu sync.Mutex
		seen := make(map[int]int)
		ForChunks(n, w, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMapReduceSum(t *testing.T) {
	const n = 100000
	got := MapReduce(n, 4,
		func() int64 { return 0 },
		func(part int64, lo, hi int) int64 {
			for i := lo; i < hi; i++ {
				part += int64(i)
			}
			return part
		},
		func(a, b int64) int64 { return a + b },
	)
	want := int64(n) * (n - 1) / 2
	if got != want {
		t.Errorf("MapReduce sum = %d, want %d", got, want)
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(0, 4,
		func() int { return 7 },
		func(part int, lo, hi int) int { return part + hi - lo },
		func(a, b int) int { return a + b },
	)
	if got != 7 {
		t.Errorf("MapReduce on empty range = %d, want the fresh partial 7", got)
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4, 8)
	defer p.Close()
	var count int64
	for i := 0; i < 1000; i++ {
		p.Submit(func() { atomic.AddInt64(&count, 1) })
	}
	p.Wait()
	if count != 1000 {
		t.Errorf("pool ran %d tasks, want 1000", count)
	}
}

func TestPoolReusableAfterWait(t *testing.T) {
	p := NewPool(2, 4)
	defer p.Close()
	var count int64
	p.Submit(func() { atomic.AddInt64(&count, 1) })
	p.Wait()
	p.Submit(func() { atomic.AddInt64(&count, 1) })
	p.Wait()
	if count != 2 {
		t.Errorf("count = %d after two rounds, want 2", count)
	}
}

func TestGroupRecursiveSum(t *testing.T) {
	// A recursive fork-join reduction must complete and be correct at
	// any budget, including the fully-inline workers=1 case.
	for _, w := range []int{1, 2, 8} {
		g := NewGroup(w)
		var sum func(lo, hi int) int64
		sum = func(lo, hi int) int64 {
			if hi-lo <= 64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				return s
			}
			mid := (lo + hi) / 2
			var left, right int64
			g.Do(
				func() { left = sum(lo, mid) },
				func() { right = sum(mid, hi) },
			)
			return left + right
		}
		const n = 100000
		if got, want := sum(0, n), int64(n)*(n-1)/2; got != want {
			t.Errorf("workers=%d: recursive sum = %d, want %d", w, got, want)
		}
	}
}

func TestGroupBoundsConcurrency(t *testing.T) {
	const workers = 3
	g := NewGroup(workers)
	var cur, peak int64
	var tasks []func()
	for i := 0; i < 64; i++ {
		tasks = append(tasks, func() {
			c := atomic.AddInt64(&cur, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
					break
				}
			}
			atomic.AddInt64(&cur, -1)
		})
	}
	g.Do(tasks...)
	if peak > workers {
		t.Errorf("observed %d concurrent tasks, budget %d", peak, workers)
	}
}

func TestGroupEmptyDo(t *testing.T) {
	NewGroup(4).Do() // must not panic or hang
}

func TestSlabsPartition(t *testing.T) {
	slabs := Slabs(10, 3)
	if len(slabs) == 0 {
		t.Fatal("no slabs")
	}
	if slabs[0][0] != 0 {
		t.Errorf("first slab starts at %d", slabs[0][0])
	}
	if slabs[len(slabs)-1][1] != 10 {
		t.Errorf("last slab ends at %d", slabs[len(slabs)-1][1])
	}
	for i := 1; i < len(slabs); i++ {
		if slabs[i][0] != slabs[i-1][1] {
			t.Errorf("gap between slab %d and %d", i-1, i)
		}
	}
}

func TestSlabsDegenerate(t *testing.T) {
	if got := Slabs(0, 4); got != nil {
		t.Errorf("Slabs(0) = %v, want nil", got)
	}
	slabs := Slabs(2, 16)
	total := 0
	for _, s := range slabs {
		total += s[1] - s[0]
	}
	if total != 2 {
		t.Errorf("slabs cover %d layers, want 2", total)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Errorf("Workers() = %d", Workers())
	}
}

// TestPoolResizeUnderLoad pins the live-resize contract: a pool can
// grow and shrink while tasks are flowing, every submitted task still
// runs exactly once, and no worker goroutine outlives Close.
func TestPoolResizeUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(2, 4)
	var ran atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ {
			p.Submit(func() {
				time.Sleep(50 * time.Microsecond)
				ran.Add(1)
			})
		}
	}()
	sizes := []int{8, 1, 6, 2, 12, 1, 4}
	for _, n := range sizes {
		if got := p.Resize(n); got != n {
			t.Fatalf("Resize(%d) applied %d", n, got)
		}
		if got := p.Size(); got != n {
			t.Fatalf("Size() = %d after Resize(%d)", got, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-done
	p.Close()
	if got := ran.Load(); got != 400 {
		t.Fatalf("%d of 400 tasks ran across resizes", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestPoolResizeShrinkRetiresIdleWorkers proves a shrink takes effect
// without requiring new task traffic: idle workers are nudged awake
// and retire, observable as the goroutine count dropping.
func TestPoolResizeShrinkRetiresIdleWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(16, 16)
	defer p.Close()
	p.Resize(1)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		// base counts the test goroutine; allow the 1 surviving worker.
		if runtime.NumGoroutine() <= base+1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("idle workers did not retire: %d goroutines (base %d)", runtime.NumGoroutine(), base)
}

// TestPoolResizeClampsAndSurvivesClose pins the edges: Resize(0) means
// one worker, and Resize after Close is a harmless no-op.
func TestPoolResizeClampsAndSurvivesClose(t *testing.T) {
	p := NewPool(2, 2)
	if got := p.Resize(0); got != 1 {
		t.Errorf("Resize(0) applied %d, want 1", got)
	}
	p.Close()
	if got := p.Resize(8); got != 1 {
		t.Errorf("Resize after Close applied %d, want unchanged 1", got)
	}
}
