// Package par provides the goroutine-parallel building blocks used by
// every heavy stage of the pipeline: octree construction, density
// splatting, FDTD slab updates, ray casting, and field-line seeding.
//
// The paper's preprocessing ran on an IBM SP with thousands of CPUs and
// on SLAC's 32-node cluster; here the same decompositions (range
// chunking, slab decomposition, per-worker reduction) are expressed with
// goroutines so the code retains the parallel structure at any core
// count, including one.
package par

import (
	"runtime"
	"sync"
)

// Workers returns the default worker count: GOMAXPROCS, but never less
// than 1.
func Workers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// For runs body(i) for every i in [0,n) across the given number of
// workers (0 means Workers()). Iterations are distributed in contiguous
// chunks so memory access within a worker stays sequential, which is
// the access pattern the pipeline's large array passes need.
func For(n, workers int, body func(i int)) {
	ForChunks(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunks splits [0,n) into one contiguous chunk per worker and calls
// body(lo, hi) concurrently for each chunk. It blocks until every chunk
// has been processed. n <= 0 is a no-op.
func ForChunks(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MapReduce runs mapBody on contiguous chunks of [0,n), each worker
// accumulating into its own partial produced by newPartial, then folds
// the partials together with merge on the calling goroutine. It is the
// pattern used for parallel histogramming and min/max scans over
// hundred-million-particle arrays.
func MapReduce[T any](n, workers int, newPartial func() T, mapBody func(part T, lo, hi int) T, merge func(a, b T) T) T {
	if workers <= 0 {
		workers = Workers()
	}
	if n <= 0 {
		return newPartial()
	}
	if workers > n {
		workers = n
	}
	partials := make([]T, workers)
	ForChunks(n, workers, func(lo, hi int) {
		// Identify the worker by its chunk start; chunks are fixed-size.
		chunk := (n + workers - 1) / workers
		w := lo / chunk
		partials[w] = mapBody(newPartial(), lo, hi)
	})
	out := newPartial()
	for _, p := range partials {
		out = merge(out, p)
	}
	return out
}

// Pool is a worker pool executing submitted tasks. It is used where
// work items are irregular (per-octree-node extraction, per-seed
// field-line integration) and static chunking would imbalance. The
// worker count can be changed while tasks are in flight with Resize,
// which is how the pipeline balancer shifts capacity between stages.
// The zero value is not usable; construct with NewPool.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	once  sync.Once
	wake  chan struct{}

	mu     sync.Mutex
	target int // desired worker count
	live   int // running worker goroutines
	closed bool
}

// NewPool starts a pool with the given number of workers (0 means
// Workers()) and a task queue of the given depth.
func NewPool(workers, queueDepth int) *Pool {
	if workers <= 0 {
		workers = Workers()
	}
	if queueDepth <= 0 {
		queueDepth = workers * 4
	}
	p := &Pool{
		tasks: make(chan func(), queueDepth),
		wake:  make(chan struct{}, 64),
	}
	p.mu.Lock()
	p.target = workers
	p.live = workers
	p.mu.Unlock()
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// worker runs tasks until the pool closes or a shrink retires it. The
// target check happens between tasks, never mid-task: a shrink takes
// effect at the next task boundary, so in the pipeline a rebalance can
// never tear a frame.
func (p *Pool) worker() {
	for {
		p.mu.Lock()
		if p.live > p.target {
			p.live--
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		select {
		case task, ok := <-p.tasks:
			if !ok {
				return
			}
			task()
			p.wg.Done()
		case <-p.wake:
			// Re-check the target: Resize nudges idle workers here so a
			// shrink doesn't wait for the next task to land.
		}
	}
}

// Submit enqueues a task. It blocks when the queue is full, which
// provides natural backpressure against unbounded memory growth when a
// producer (e.g. the seeding loop) outruns the integrators.
func (p *Pool) Submit(task func()) {
	p.wg.Add(1)
	p.tasks <- task
}

// Wait blocks until every submitted task has completed. The pool
// remains usable afterwards.
func (p *Pool) Wait() { p.wg.Wait() }

// Close waits for outstanding tasks and shuts the workers down. The
// pool must not be used after Close.
func (p *Pool) Close() {
	p.wg.Wait()
	p.once.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		close(p.tasks)
	})
}

// Size returns the pool's current target worker count.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target
}

// Resize changes the worker count to n (minimum 1) while tasks are in
// flight, and returns the applied target. Growth spawns workers
// immediately; shrink retires workers at their next task boundary, so
// running tasks always complete. Resize never blocks on busy workers
// and is safe to call concurrently with Submit; after Close it is a
// no-op.
func (p *Pool) Resize(n int) int {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	if p.closed {
		n = p.target
		p.mu.Unlock()
		return n
	}
	p.target = n
	spawn := n - p.live
	if spawn > 0 {
		p.live = n
	}
	retire := p.live - n
	p.mu.Unlock()
	for i := 0; i < spawn; i++ {
		go p.worker()
	}
	// Nudge idle workers parked in select so they observe the shrink
	// promptly; busy workers re-check after their current task anyway.
	for i := 0; i < retire; i++ {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
	return n
}

// Group is a bounded fork-join scope for recursive divide-and-conquer
// work (e.g. the octree's concurrent tree carve). Unlike Pool, whose
// Wait covers every submitted task and therefore deadlocks when tasks
// spawn and wait on subtasks, Group.Do waits only for the tasks of
// that call, and a task that cannot obtain a worker slot simply runs
// on the calling goroutine — recursion never blocks on the budget, it
// just degrades to serial execution.
type Group struct {
	slots chan struct{}
}

// NewGroup returns a group that runs at most `workers` tasks
// concurrently across all nested Do calls (0 means Workers()). The
// calling goroutine counts as one worker, so workers <= 1 yields fully
// serial execution.
func NewGroup(workers int) *Group {
	if workers <= 0 {
		workers = Workers()
	}
	return &Group{slots: make(chan struct{}, workers-1)}
}

// Do runs the given tasks and returns when all of them have completed.
// Tasks beyond the group's concurrency budget execute inline on the
// caller, preserving bounded parallelism under arbitrary recursion
// depth.
func (g *Group) Do(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, task := range tasks[1:] {
		select {
		case g.slots <- struct{}{}:
			wg.Add(1)
			go func(t func()) {
				defer wg.Done()
				defer func() { <-g.slots }()
				t()
			}(task)
		default:
			task()
		}
	}
	tasks[0]()
	wg.Wait()
}

// Slabs divides n layers (e.g. the z-extent of an FDTD grid) into
// contiguous slabs, one per worker, and returns the slab boundaries as
// a slice of [lo,hi) pairs. Domain-slab decomposition is how the
// paper's parallel field solver distributes the mesh; the same
// boundaries are reused across time steps so each worker touches the
// same memory every step.
func Slabs(n, workers int) [][2]int {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return nil
	}
	out := make([][2]int, 0, workers)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
