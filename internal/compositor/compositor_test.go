package compositor

import (
	"math"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/render"
	"repro/internal/vec"
)

const testW, testH = 96, 80

// testSplats builds a deterministic splat cloud with duplicated
// positions near the end, so equal-depth fragments land in different
// partitions and the composite's tie-breaking is actually exercised.
func testSplats(n int) []render.PointSplat {
	state := uint64(0x9e3779b97f4a7c15)
	rnd := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	splats := make([]render.PointSplat, n)
	for i := range splats {
		splats[i] = render.PointSplat{
			Pos:    vec.New(rnd(), rnd(), rnd()),
			Radius: 1 + 2*rnd(),
			Color:  hybrid.RGBA{R: rnd(), G: rnd(), B: rnd(), A: 1},
		}
	}
	// Re-submit a handful of early positions with new colors: identical
	// projected depth, later submission — the rasterizer's "last equal
	// fragment wins" rule must survive partitioning.
	for i := 0; i < n/10; i++ {
		dup := splats[i]
		dup.Color = hybrid.RGBA{R: rnd(), G: rnd(), B: rnd(), A: 1}
		splats = append(splats, dup)
	}
	return splats
}

func testCamera(t *testing.T) render.Camera {
	t.Helper()
	cam, err := render.LookAtBounds(vec.Box(vec.New(0, 0, 0), vec.New(1, 1, 1)),
		vec.New(0.4, 0.3, 1), math.Pi/3, float64(testW)/float64(testH))
	if err != nil {
		t.Fatal(err)
	}
	return cam
}

// rasterize draws the splats into a fresh cleared framebuffer with the
// opaque depth-tested point pass.
func rasterize(t *testing.T, cam render.Camera, splats []render.PointSplat) *render.Framebuffer {
	t.Helper()
	fb, err := render.NewFramebuffer(testW, testH)
	if err != nil {
		t.Fatal(err)
	}
	fb.Clear(hybrid.RGBA{})
	rast := render.NewRasterizer(fb, cam)
	rast.Mode = render.BlendOpaque
	rast.DrawPointBatch(splats)
	return fb
}

// partialize renders each contiguous partition into its own
// framebuffer and round-trips it through the wire codec, exactly as a
// fleet worker's reply arrives at the compositor.
func partialize(t *testing.T, cam render.Camera, splats []render.PointSplat, parts int) []*render.PartialFrame {
	t.Helper()
	partials := make([]*render.PartialFrame, parts)
	for k := 0; k < parts; k++ {
		lo, hi := k*len(splats)/parts, (k+1)*len(splats)/parts
		fb := rasterize(t, cam, splats[lo:hi])
		pf, err := render.DecompressPartial(render.CompressPartial(fb, k))
		if err != nil {
			t.Fatalf("partition %d: %v", k, err)
		}
		partials[k] = pf
	}
	return partials
}

// mustEqualFB compares two framebuffers bit for bit (Float32bits, so
// NaN payloads and signed zeros count too).
func mustEqualFB(t *testing.T, got, want *render.Framebuffer, label string) {
	t.Helper()
	if got.W != want.W || got.H != want.H {
		t.Fatalf("%s: size %dx%d, want %dx%d", label, got.W, got.H, want.W, want.H)
	}
	for i := range want.Color {
		if math.Float32bits(got.Color[i]) != math.Float32bits(want.Color[i]) {
			t.Fatalf("%s: color word %d = %g, want %g", label, i, got.Color[i], want.Color[i])
		}
	}
	for i := range want.Depth {
		if math.Float32bits(got.Depth[i]) != math.Float32bits(want.Depth[i]) {
			t.Fatalf("%s: depth word %d = %g, want %g", label, i, got.Depth[i], want.Depth[i])
		}
	}
}

// TestCompositeDepthMatchesSingleRasterizer is the compositor
// acceptance test: splitting a splat batch into 1, 2, 4 or 8
// contiguous partitions, rasterizing each alone, and depth-compositing
// the partials must reproduce the undivided rasterization bit for bit,
// at every composite worker count, regardless of partial arrival
// order.
func TestCompositeDepthMatchesSingleRasterizer(t *testing.T) {
	cam := testCamera(t)
	splats := testSplats(600)
	want := rasterize(t, cam, splats)

	for _, parts := range []int{1, 2, 4, 8} {
		partials := partialize(t, cam, splats, parts)
		// Reverse arrival order: Seq, not slice position, fixes the merge.
		for i, j := 0, len(partials)-1; i < j; i, j = i+1, j-1 {
			partials[i], partials[j] = partials[j], partials[i]
		}
		for _, workers := range []int{0, 1, 3, 7} {
			dst, err := render.NewFramebuffer(testW, testH)
			if err != nil {
				t.Fatal(err)
			}
			dst.Clear(hybrid.RGBA{})
			if err := CompositeDepth(dst, partials, workers); err != nil {
				t.Fatalf("parts=%d workers=%d: %v", parts, workers, err)
			}
			mustEqualFB(t, dst, want, "parts/workers composite")
		}
	}
}

// TestCompositeDepthEmptyAndNoPartials: an empty partial (worker whose
// sub-volume fell entirely off screen) contributes nothing, and
// compositing zero partials leaves the cleared background untouched.
func TestCompositeDepthEmptyAndNoPartials(t *testing.T) {
	cam := testCamera(t)
	splats := testSplats(200)
	want := rasterize(t, cam, splats)

	empty, err := render.NewFramebuffer(testW, testH)
	if err != nil {
		t.Fatal(err)
	}
	empty.Clear(hybrid.RGBA{})
	pfEmpty, err := render.DecompressPartial(render.CompressPartial(empty, 9))
	if err != nil {
		t.Fatal(err)
	}
	pf, err := render.DecompressPartial(render.CompressPartial(want, 0))
	if err != nil {
		t.Fatal(err)
	}

	dst, err := render.NewFramebuffer(testW, testH)
	if err != nil {
		t.Fatal(err)
	}
	dst.Clear(hybrid.RGBA{})
	if err := CompositeDepth(dst, []*render.PartialFrame{pf, pfEmpty}, 0); err != nil {
		t.Fatal(err)
	}
	mustEqualFB(t, dst, want, "empty partial changed the frame")

	bg, err := render.NewFramebuffer(testW, testH)
	if err != nil {
		t.Fatal(err)
	}
	bg.Clear(hybrid.RGBA{})
	blank, err := render.NewFramebuffer(testW, testH)
	if err != nil {
		t.Fatal(err)
	}
	blank.Clear(hybrid.RGBA{})
	if err := CompositeDepth(blank, nil, 0); err != nil {
		t.Fatal(err)
	}
	mustEqualFB(t, blank, bg, "no-partial composite dirtied the background")
}

// TestCompositeValidation: nil destinations, nil partials and size
// mismatches are rejected before any pixel moves.
func TestCompositeValidation(t *testing.T) {
	fbSmall, err := render.NewFramebuffer(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	fbBig, err := render.NewFramebuffer(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	good := &render.PartialFrame{FB: fbSmall}

	if err := CompositeDepth(nil, nil, 0); err == nil {
		t.Error("nil destination accepted")
	}
	if err := CompositeDepth(fbSmall, []*render.PartialFrame{nil}, 0); err == nil {
		t.Error("nil partial accepted")
	}
	if err := CompositeDepth(fbSmall, []*render.PartialFrame{{}}, 0); err == nil {
		t.Error("partial with nil framebuffer accepted")
	}
	if err := CompositeDepth(fbBig, []*render.PartialFrame{good}, 0); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := CompositeOver(nil, nil, 0); err == nil {
		t.Error("CompositeOver: nil destination accepted")
	}
	if err := CompositeOver(fbBig, []*render.PartialFrame{good}, 0); err == nil {
		t.Error("CompositeOver: size mismatch accepted")
	}
}

// overPartial builds a 1x1-coverage partial with the given color,
// alpha and depth at pixel (0,0) of a 2x2 frame.
func overPartial(t *testing.T, seq int, r, g, b, a, depth float32) *render.PartialFrame {
	t.Helper()
	fb, err := render.NewFramebuffer(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fb.Clear(hybrid.RGBA{})
	fb.Color[0], fb.Color[1], fb.Color[2], fb.Color[3] = r, g, b, a
	fb.Depth[0] = depth
	return &render.PartialFrame{FB: fb, Seq: seq, RW: 1, RH: 1}
}

// TestCompositeOverBackToFront pins the translucent merge: samples
// blend farthest first with the straight "over" operator, equal depths
// resolve by partition sequence, and the result is identical at every
// worker count.
func TestCompositeOverBackToFront(t *testing.T) {
	// far red (depth .8, alpha .5) under near green (depth .2, alpha .5):
	// over = green*.5 + red*.5*.5
	far := overPartial(t, 0, 1, 0, 0, 0.5, 0.8)
	near := overPartial(t, 1, 0, 1, 0, 0.5, 0.2)

	for _, workers := range []int{1, 4} {
		dst, err := render.NewFramebuffer(2, 2)
		if err != nil {
			t.Fatal(err)
		}
		dst.Clear(hybrid.RGBA{})
		// Pass near-first: depth, not argument order, must sort them.
		if err := CompositeOver(dst, []*render.PartialFrame{near, far}, workers); err != nil {
			t.Fatal(err)
		}
		wantR := float32(1*0.5) * (1 - 0.5)
		wantG := float32(0.5)
		wantA := float32(0.5 + 0.5*(1-0.5))
		if dst.Color[0] != wantR || dst.Color[1] != wantG || dst.Color[3] != wantA {
			t.Fatalf("workers=%d: blended pixel = %v, want (%g,%g,_,%g)",
				workers, dst.Color[0:4], wantR, wantG, wantA)
		}
		if dst.Depth[0] != 0.2 {
			t.Fatalf("workers=%d: stored depth %g, want nearest sample 0.2", workers, dst.Depth[0])
		}
	}

	// Equal depths: ascending Seq is the back-to-front order, so Seq 1
	// blends over Seq 0 — opaque alpha makes the winner unambiguous.
	a := overPartial(t, 0, 1, 0, 0, 1, 0.5)
	b := overPartial(t, 1, 0, 0, 1, 1, 0.5)
	dst, err := render.NewFramebuffer(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dst.Clear(hybrid.RGBA{})
	if err := CompositeOver(dst, []*render.PartialFrame{b, a}, 1); err != nil {
		t.Fatal(err)
	}
	if dst.Color[0] != 0 || dst.Color[2] != 1 {
		t.Fatalf("equal-depth tie: pixel = %v, want the higher partition sequence on top", dst.Color[0:4])
	}
}
