// Package compositor implements deterministic sort-last image
// compositing: merging the RGBA+depth partial framebuffers that a
// fleet of render workers produced from disjoint sub-volumes of one
// frame into the single image a lone renderer would have made — the
// IceT idiom behind the paper's terascale ambition, where the data for
// one frame exceeds a node and space itself must be partitioned.
//
// Determinism is the design center. CompositeDepth reproduces the
// depth-buffered rasterizer's fragment semantics exactly: a partial
// pixel lands iff its depth is <= the stored depth, and partials merge
// in ascending partition sequence — the splat submission order — so
// equal-depth ties resolve to the latest submission, exactly as the
// single-node rasterizer resolves them. Every pixel is independent,
// so the merge parallelizes over scanlines with bit-identical output
// at every worker count, and the result is bit-identical to rendering
// the undivided frame regardless of how many partitions it was split
// into or which workers rendered them.
package compositor

import (
	"fmt"
	"sort"

	"repro/internal/par"
	"repro/internal/render"
)

// checkPartials validates the partial set against dst and returns the
// partials in composite order: ascending Seq, stable for equal Seq.
func checkPartials(dst *render.Framebuffer, partials []*render.PartialFrame) ([]*render.PartialFrame, error) {
	if dst == nil {
		return nil, fmt.Errorf("compositor: nil destination framebuffer")
	}
	order := make([]*render.PartialFrame, len(partials))
	copy(order, partials)
	for i, p := range order {
		if p == nil || p.FB == nil {
			return nil, fmt.Errorf("compositor: partial %d is nil", i)
		}
		if p.FB.W != dst.W || p.FB.H != dst.H {
			return nil, fmt.Errorf("compositor: partial %d is %dx%d, destination %dx%d",
				i, p.FB.W, p.FB.H, dst.W, dst.H)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].Seq < order[b].Seq })
	return order, nil
}

// CompositeDepth merges depth-augmented partials into dst with the
// opaque rasterizer's depth test: per pixel, in ascending partition
// sequence, a partial's pixel overwrites color and depth iff its
// depth is <= the depth already stored. Partials may be passed in any
// order (fleet replies arrive as workers finish); Seq fixes the
// merge order. Pixels of dst not yet covered must hold the cleared
// background (transparent black, +Inf depth), as a partial's own
// uncovered pixels do. workers bounds scanline parallelism (0 =
// par.Workers()); the output is identical at every count.
func CompositeDepth(dst *render.Framebuffer, partials []*render.PartialFrame, workers int) error {
	order, err := checkPartials(dst, partials)
	if err != nil {
		return err
	}
	par.ForChunks(dst.H, workers, func(lo, hi int) {
		for _, p := range order {
			y0, y1 := p.Y0, p.Y0+p.RH
			if y0 < lo {
				y0 = lo
			}
			if y1 > hi {
				y1 = hi
			}
			for y := y0; y < y1; y++ {
				row := y * dst.W
				for x := p.X0; x < p.X0+p.RW; x++ {
					i := row + x
					d := p.FB.Depth[i]
					if d > dst.Depth[i] {
						continue
					}
					ci := i * 4
					dst.Color[ci] = p.FB.Color[ci]
					dst.Color[ci+1] = p.FB.Color[ci+1]
					dst.Color[ci+2] = p.FB.Color[ci+2]
					dst.Color[ci+3] = p.FB.Color[ci+3]
					dst.Depth[i] = d
				}
			}
		}
	})
	return nil
}

// CompositeOver alpha-blends partials into dst back to front: per
// pixel, the covering partial samples (finite depth) sort by depth,
// farthest first — equal depths resolve by ascending partition
// sequence, the submission order — and composite with the straight
// "over" operator onto dst's existing color. The stored depth becomes
// the nearest contributing sample's. This is the translucent variant
// of sort-last compositing; like CompositeDepth it is bit-identical
// at every worker count, but partials must come from disjoint depth
// slabs for the result to match a single translucent render, since
// "over" does not commute.
func CompositeOver(dst *render.Framebuffer, partials []*render.PartialFrame, workers int) error {
	order, err := checkPartials(dst, partials)
	if err != nil {
		return err
	}
	par.ForChunks(dst.H, workers, func(lo, hi int) {
		type sample struct {
			d float32
			p *render.PartialFrame
		}
		samples := make([]sample, 0, len(order))
		for y := lo; y < hi; y++ {
			row := y * dst.W
			for x := 0; x < dst.W; x++ {
				i := row + x
				samples = samples[:0]
				for _, p := range order {
					if x < p.X0 || x >= p.X0+p.RW || y < p.Y0 || y >= p.Y0+p.RH {
						continue
					}
					d := p.FB.Depth[i]
					if d != d || d > maxFinite {
						continue // background: +Inf depth
					}
					// Insertion sort: farthest first; order (ascending
					// Seq) already breaks equal-depth ties correctly.
					k := len(samples)
					samples = append(samples, sample{d, p})
					for k > 0 && samples[k-1].d < samples[k].d {
						samples[k-1], samples[k] = samples[k], samples[k-1]
						k--
					}
				}
				if len(samples) == 0 {
					continue
				}
				ci := i * 4
				for _, s := range samples {
					a := s.p.FB.Color[ci+3]
					dst.Color[ci] = s.p.FB.Color[ci]*a + dst.Color[ci]*(1-a)
					dst.Color[ci+1] = s.p.FB.Color[ci+1]*a + dst.Color[ci+1]*(1-a)
					dst.Color[ci+2] = s.p.FB.Color[ci+2]*a + dst.Color[ci+2]*(1-a)
					dst.Color[ci+3] = a + dst.Color[ci+3]*(1-a)
				}
				near := samples[len(samples)-1].d
				if near < dst.Depth[i] {
					dst.Depth[i] = near
				}
			}
		}
	})
	return nil
}

// maxFinite is the largest finite float32; anything above it in a
// depth plane (+Inf) marks an uncovered pixel.
const maxFinite = 3.4028234663852886e+38
