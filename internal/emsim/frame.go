package emsim

import (
	"math"

	"repro/internal/hexmesh"
	"repro/internal/vec"
)

// FieldFrame is one time step of cell-centered electric and magnetic
// fields over the mesh — the data product the field-line visualization
// pipeline consumes, and the unit of the paper's storage arithmetic
// ("it would take about 80 megabytes of storage space to save one time
// step of the electric and magnetic fields together" for 1.6M
// elements: 1.6e6 elements x 2 vectors x 3 doubles x 8 bytes = 76.8MB).
type FieldFrame struct {
	Mesh *hexmesh.Mesh
	E    []vec.V3 // per element, cell-centered
	B    []vec.V3
	Step int
	Time float64
}

// Snapshot averages the staggered Yee components to element centers
// and returns a frame decoupled from further stepping.
func (s *Sim) Snapshot() *FieldFrame {
	m := s.Mesh
	f := &FieldFrame{
		Mesh: m,
		E:    make([]vec.V3, m.NumElements()),
		B:    make([]vec.V3, m.NumElements()),
		Step: s.step,
		Time: s.time,
	}
	for e := range m.Elements {
		el := &m.Elements[e]
		i, j, k := el.I, el.J, el.K
		ex := (s.ex[s.iEx(i, j, k)] + s.ex[s.iEx(i, j+1, k)] +
			s.ex[s.iEx(i, j, k+1)] + s.ex[s.iEx(i, j+1, k+1)]) / 4
		ey := (s.ey[s.iEy(i, j, k)] + s.ey[s.iEy(i+1, j, k)] +
			s.ey[s.iEy(i, j, k+1)] + s.ey[s.iEy(i+1, j, k+1)]) / 4
		ez := (s.ez[s.iEz(i, j, k)] + s.ez[s.iEz(i+1, j, k)] +
			s.ez[s.iEz(i, j+1, k)] + s.ez[s.iEz(i+1, j+1, k)]) / 4
		bx := (s.hx[s.iHx(i, j, k)] + s.hx[s.iHx(i+1, j, k)]) / 2
		by := (s.hy[s.iHy(i, j, k)] + s.hy[s.iHy(i, j+1, k)]) / 2
		bz := (s.hz[s.iHz(i, j, k)] + s.hz[s.iHz(i, j, k+1)]) / 2
		f.E[e] = vec.New(ex, ey, ez)
		f.B[e] = vec.New(bx, by, bz)
	}
	return f
}

// RawBytes returns the storage cost of this frame in the paper's
// accounting: both vector fields in double precision per element.
func (f *FieldFrame) RawBytes() int64 {
	return int64(f.Mesh.NumElements()) * (3 + 3) * 8
}

// sampleField trilinearly interpolates a cell-centered vector field at
// world point p. Conductor cells contribute zero, which correctly
// drives the interpolated tangential field toward zero at walls.
func (f *FieldFrame) sampleField(field []vec.V3, p vec.V3) vec.V3 {
	m := f.Mesh
	if !m.Bounds.Contains(p) {
		return vec.V3{}
	}
	fx := (p.X-m.Bounds.Min.X)/m.Dx - 0.5
	fy := (p.Y-m.Bounds.Min.Y)/m.Dy - 0.5
	fz := (p.Z-m.Bounds.Min.Z)/m.Dz - 0.5
	i0 := int(math.Floor(fx))
	j0 := int(math.Floor(fy))
	k0 := int(math.Floor(fz))
	tx := fx - float64(i0)
	ty := fy - float64(j0)
	tz := fz - float64(k0)
	var acc vec.V3
	for dk := 0; dk < 2; dk++ {
		wz := tz
		if dk == 0 {
			wz = 1 - tz
		}
		for dj := 0; dj < 2; dj++ {
			wy := ty
			if dj == 0 {
				wy = 1 - ty
			}
			for di := 0; di < 2; di++ {
				wx := tx
				if di == 0 {
					wx = 1 - tx
				}
				e := m.ElementIndexAt(i0+di, j0+dj, k0+dk)
				if e < 0 {
					continue // conductor contributes zero
				}
				acc = acc.Add(field[e].Scale(wx * wy * wz))
			}
		}
	}
	return acc
}

// SampleE returns the interpolated electric field at p.
func (f *FieldFrame) SampleE(p vec.V3) vec.V3 { return f.sampleField(f.E, p) }

// SampleB returns the interpolated magnetic field at p.
func (f *FieldFrame) SampleB(p vec.V3) vec.V3 { return f.sampleField(f.B, p) }

// MaxE returns the largest electric field magnitude over the mesh.
func (f *FieldFrame) MaxE() float64 {
	var m float64
	for _, e := range f.E {
		if l := e.Len(); l > m {
			m = l
		}
	}
	return m
}

// ElementEMagnitude returns |E| at element index e.
func (f *FieldFrame) ElementEMagnitude(e int) float64 { return f.E[e].Len() }

// TransverseAsymmetry quantifies the up/down field asymmetry that the
// Fig 9 port geometry induces: it compares |E| integrated over the
// upper (y > 0) and lower (y < 0) halves of the structure and returns
// |upper-lower| / (upper+lower). A perfectly symmetric structure gives
// 0.
func (f *FieldFrame) TransverseAsymmetry() float64 {
	var up, down float64
	for e := range f.Mesh.Elements {
		mag := f.E[e].Len()
		if f.Mesh.Elements[e].Center.Y > 0 {
			up += mag
		} else {
			down += mag
		}
	}
	if up+down == 0 {
		return 0
	}
	return math.Abs(up-down) / (up + down)
}

// ProbeSeries records a field component at a fixed point over many
// steps — the diagnostic used to measure what frequency the cavity
// actually rings at (finding eigenmodes is what the paper's
// electromagnetic simulations are for).
type ProbeSeries struct {
	Values []float64
	DT     float64
}

// RunProbe advances the simulation n steps, sampling Ez at world point
// p after every step.
func (s *Sim) RunProbe(p vec.V3, n int) *ProbeSeries {
	series := &ProbeSeries{DT: s.dt, Values: make([]float64, 0, n)}
	for i := 0; i < n; i++ {
		s.advanceOnce()
		f := s.probeEz(p)
		series.Values = append(series.Values, f)
	}
	return series
}

// probeEz samples the Ez Yee component nearest to p (cheap single-point
// probe; Snapshot interpolation is unnecessary for spectral use).
func (s *Sim) probeEz(p vec.V3) float64 {
	m := s.Mesh
	i := int((p.X - m.Bounds.Min.X) / m.Dx)
	j := int((p.Y - m.Bounds.Min.Y) / m.Dy)
	k := int((p.Z - m.Bounds.Min.Z) / m.Dz)
	if i < 0 || i >= s.nx || j < 0 || j >= s.ny || k < 0 || k >= s.nz {
		return 0
	}
	return s.ez[s.iEz(i, j, k)]
}

// PaperScaleSteps computes the step count the paper's Courant
// arithmetic implies: simulating realSeconds of physical time with the
// given mesh spacing (meters) at the speed of light and the given
// Courant safety factor. With spacing ≈ 63 µm and safety 0.58 this
// reproduces "40 nanoseconds ... corresponds to 326,700 time steps".
func PaperScaleSteps(realSeconds, spacingMeters, courant float64) float64 {
	const c = 299_792_458.0 // m/s
	dtMax := spacingMeters / (c * math.Sqrt(3))
	return realSeconds / (courant * dtMax)
}
