package emsim

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/hexmesh"
	"repro/internal/vec"
)

func smallSim(t *testing.T, res int) *Sim {
	t.Helper()
	cav := hexmesh.DefaultCavity(res)
	m, err := hexmesh.BuildCavity(cav)
	if err != nil {
		t.Fatalf("BuildCavity: %v", err)
	}
	s, err := New(DefaultConfig(m, cav))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted nil mesh")
	}
	cav := hexmesh.DefaultCavity(6)
	m, err := hexmesh.BuildCavity(cav)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(m, cav)
	cfg.Courant = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("accepted Courant factor > 1")
	}
}

func TestCourantBound(t *testing.T) {
	s := smallSim(t, 6)
	// dt must be below the stability limit and positive.
	if s.DT() <= 0 || s.DT() >= s.CourantDT() {
		t.Errorf("dt %g outside (0, courant limit %g)", s.DT(), s.CourantDT())
	}
	// For a uniform cubic lattice the limit is d/sqrt(3).
	want := s.Mesh.Dx / math.Sqrt(3)
	if math.Abs(s.CourantDT()-want) > 1e-12 {
		t.Errorf("CourantDT = %g, want %g", s.CourantDT(), want)
	}
}

func TestEnergyInjectionAndStability(t *testing.T) {
	s := smallSim(t, 6)
	if s.Energy() != 0 {
		t.Fatalf("initial energy %g, want 0", s.Energy())
	}
	s.AdvancePeriods(3)
	e1 := s.Energy()
	if e1 <= 0 {
		t.Fatal("drive injected no energy")
	}
	if math.IsNaN(e1) || math.IsInf(e1, 0) {
		t.Fatalf("energy diverged: %g", e1)
	}
	// Run several more periods: energy must stay finite (stable scheme).
	s.AdvancePeriods(5)
	e2 := s.Energy()
	if math.IsNaN(e2) || math.IsInf(e2, 0) {
		t.Fatalf("energy diverged after more periods: %g", e2)
	}
	// With Mur-terminated ports the energy must not grow unboundedly:
	// allow growth while filling, but bounded by a generous factor.
	if e2 > e1*1e3 {
		t.Errorf("energy grew from %g to %g; absorbing boundary suspect", e1, e2)
	}
}

func TestFieldsStayZeroInConductor(t *testing.T) {
	s := smallSim(t, 6)
	s.AdvancePeriods(2)
	f := s.Snapshot()
	// Sample deep inside the conductor (corner of the domain, far from
	// ports and cavity).
	p := vec.New(s.Mesh.Bounds.Min.X+s.Mesh.Dx, s.Mesh.Bounds.Min.Y+s.Mesh.Dy, s.Mesh.Bounds.Min.Z+s.Mesh.Dz)
	if s.Mesh.Inside(p) {
		t.Skip("test point unexpectedly in vacuum")
	}
	if e := f.SampleE(p); e.Len() != 0 {
		t.Errorf("E in conductor = %v", e)
	}
}

func TestWavePropagatesIntoCavity(t *testing.T) {
	s := smallSim(t, 8)
	cav := s.Cfg.Cavity
	// Before driving, the field at the first cell center is zero.
	probe := vec.New(0, 0, cav.PipeLength+cav.CellLength/2)
	f0 := s.Snapshot()
	if f0.SampleE(probe).Len() != 0 {
		t.Fatal("field nonzero before any steps")
	}
	s.AdvancePeriods(4)
	f1 := s.Snapshot()
	if f1.SampleE(probe).Len() == 0 {
		t.Error("no field reached the first cell after 4 periods")
	}
}

func TestWaveReachesOutputEnd(t *testing.T) {
	s := smallSim(t, 8)
	cav := s.Cfg.Cavity
	lastCell := vec.New(0, 0, cav.PipeLength+2*(cav.CellLength+cav.IrisThickness)+cav.CellLength/2)
	s.AdvancePeriods(8)
	f := s.Snapshot()
	if f.SampleE(lastCell).Len() == 0 {
		t.Error("no field reached the last cell; RF transmission broken")
	}
}

func TestSnapshotIndependentOfSim(t *testing.T) {
	s := smallSim(t, 6)
	s.AdvancePeriods(2)
	f := s.Snapshot()
	e0 := f.SampleE(vec.New(0, 0, s.Cfg.Cavity.TotalLength()/2))
	s.AdvancePeriods(1)
	e1 := f.SampleE(vec.New(0, 0, s.Cfg.Cavity.TotalLength()/2))
	if e0 != e1 {
		t.Error("snapshot changed after further stepping")
	}
}

func TestRawBytesMatchesPaperArithmetic(t *testing.T) {
	s := smallSim(t, 6)
	f := s.Snapshot()
	want := int64(s.Mesh.NumElements()) * 48
	if f.RawBytes() != want {
		t.Errorf("RawBytes = %d, want %d", f.RawBytes(), want)
	}
	// The paper's 12-cell figure: 1.6M elements -> ~80MB/step.
	mb := 1_600_000 * 48.0 / 1e6
	if mb < 70 || mb > 85 {
		t.Errorf("1.6M elements = %.1f MB/step, paper says ~80", mb)
	}
}

func TestPaperScaleStepsMatchesPaper(t *testing.T) {
	// Invert the paper's numbers: 40 ns in 326,700 steps means
	// dt = 1.224e-13 s, i.e. a mesh spacing of ~63.6 µm at the cubic
	// Courant limit. Verify the arithmetic reproduces the step count
	// within 2%.
	steps := PaperScaleSteps(40e-9, 63.57e-6, 1.0)
	if math.Abs(steps-326_700) > 0.02*326_700 {
		t.Errorf("PaperScaleSteps = %.0f, want ~326,700", steps)
	}
	// And the headline claim: 100 ns requires close to a million steps
	// even at the Courant limit, and "millions" with any safety factor.
	steps100 := PaperScaleSteps(100e-9, 63.57e-6, 0.5)
	if steps100 < 1_000_000 {
		t.Errorf("100 ns = %.0f steps; paper says millions", steps100)
	}
}

func TestTransverseAsymmetryDetectsPortAsymmetry(t *testing.T) {
	run := func(asym float64) float64 {
		cav := hexmesh.TwelveCellCavity(6, asym)
		cav.Cells = 4 // shrink for test speed; ports stay on first/last cells
		cav.InputPort.Cell = 0
		cav.OutputPort.Cell = 3
		m, err := hexmesh.BuildCavity(cav)
		if err != nil {
			t.Fatalf("BuildCavity: %v", err)
		}
		s, err := New(DefaultConfig(m, cav))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		s.AdvancePeriods(6)
		return s.Snapshot().TransverseAsymmetry()
	}
	sym := run(0)
	asym := run(0.5)
	if asym <= sym {
		t.Errorf("asymmetric ports gave asymmetry %.4f <= symmetric %.4f", asym, sym)
	}
	// With symmetric ports, both mouths drive identically, so the field
	// must be nearly up/down symmetric in absolute terms.
	if sym > 0.05 {
		t.Errorf("symmetric ports gave asymmetry %.4f, want < 0.05 (port drive unbalanced)", sym)
	}
}

func TestRunToSteadyState(t *testing.T) {
	s := smallSim(t, 6)
	periods, _ := s.RunToSteadyState(0.05, 30)
	if periods < 1 {
		t.Error("steady-state run did nothing")
	}
	if e := s.Energy(); math.IsNaN(e) || math.IsInf(e, 0) {
		t.Errorf("energy diverged during steady-state run: %g", e)
	}
}

func TestSampleEOutsideDomain(t *testing.T) {
	s := smallSim(t, 6)
	f := s.Snapshot()
	if e := f.SampleE(vec.New(1e6, 0, 0)); e.Len() != 0 {
		t.Error("nonzero field outside domain")
	}
}

// The FDTD substrate must ring near the physical eigenfrequency of the
// cavity: the pillbox TM010 estimate omega = 2.405 c / R (with the
// iris-loaded geometry shifting it somewhat). This validates that the
// solver produces physically meaningful fields, not just bounded ones.
func TestCavityResonanceNearTM010(t *testing.T) {
	cav := hexmesh.DefaultCavity(10)
	m, err := hexmesh.BuildCavity(cav)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(m, cav)
	// Drive slightly off the TM010 estimate so the measured ring
	// frequency is the cavity's own response, then let it ring.
	cfg.Freq = 2.0 / cav.CellRadius
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the cavity, then record a probe at the center of cell 1.
	s.AdvancePeriods(6)
	probe := vec.New(0, 0, cav.PipeLength+1.5*cav.CellLength+cav.IrisThickness)
	series := s.RunProbe(probe, 4096)
	omega, err := dsp.PeakFrequency(series.Values, series.DT)
	if err != nil {
		t.Fatalf("PeakFrequency: %v", err)
	}
	tm010 := 2.405 / cav.CellRadius
	// Staircase meshing and iris loading shift the mode slightly; the
	// measured ring frequency lands within ~5% of the pillbox estimate.
	if omega < 0.85*tm010 || omega > 1.25*tm010 {
		t.Errorf("cavity rings at omega=%.3f; TM010 estimate %.3f (accept 0.85x-1.25x)", omega, tm010)
	}
	t.Logf("measured ring frequency %.3f vs TM010 estimate %.3f (ratio %.2f)", omega, tm010, omega/tm010)
}
