// Package emsim is the time-domain electromagnetic field solver
// substrate — the stand-in for SLAC's Tau3P (ref [16]), the "parallel
// time domain electromagnetic field solver using unstructured
// hexahedral meshes" that produced the field data of §3.
//
// The solver is a Yee finite-difference time-domain (FDTD) scheme over
// the cavity mesh: electric field components live on cell edges,
// magnetic components on cell faces, and the perfectly conducting
// structure walls are imposed by zeroing tangential E on every edge
// touching conductor. Waveguide ports are driven with a ramped
// sinusoid across the port mouth and terminated with a first-order Mur
// absorbing boundary, so RF power enters through the input ports,
// rings the cells, and leaves through the output ports — the process
// Fig 8 animates.
//
// Units are normalized: c = epsilon0 = mu0 = 1. The Courant condition
// the paper highlights ("the simulations must not proceed faster than
// electromagnetic information could physically flow through mesh
// elements ... simulating 100 nanoseconds in the real world requires
// millions of time steps") appears here exactly as in Tau3P: the time
// step is bounded by the mesh spacing via CourantDT.
package emsim

import (
	"fmt"
	"math"

	"repro/internal/hexmesh"
	"repro/internal/par"
)

// Config describes an FDTD run over a cavity mesh.
type Config struct {
	Mesh   *hexmesh.Mesh
	Cavity hexmesh.CavityConfig

	// Courant is the safety factor applied to the stability limit;
	// (0, 1). The default 0.5 keeps the Mur boundary comfortably stable.
	Courant float64
	// Freq is the angular drive frequency. 0 selects the pillbox TM010
	// estimate 2.405/CellRadius, which couples well into the cells.
	Freq float64
	// RampPeriods is how many drive periods the source amplitude takes
	// to ramp from 0 to full (a smooth turn-on avoids a broadband
	// transient).
	RampPeriods float64
	Workers     int
}

// DefaultConfig returns a configuration for the given mesh/cavity.
func DefaultConfig(m *hexmesh.Mesh, cav hexmesh.CavityConfig) Config {
	return Config{Mesh: m, Cavity: cav, Courant: 0.5, RampPeriods: 2}
}

// Sim is a running FDTD simulation. Field arrays follow the Yee
// staggering; use Snapshot to obtain cell-centered fields for
// visualization.
type Sim struct {
	Cfg  Config
	Mesh *hexmesh.Mesh

	nx, ny, nz int
	dt         float64
	omega      float64
	time       float64
	step       int

	// Yee arrays (sizes in the constructor).
	ex, ey, ez []float64
	hx, hy, hz []float64
	// Edge activity masks for E components (false = conductor edge).
	mx, my, mz []bool

	ports []portPlane
}

// portPlane is one absorbing/driving port mouth at a j = const plane.
type portPlane struct {
	iLo, iHi, kLo, kHi, j int
	top                   bool // +y mouth (wave travels -y into the cavity)
	drive                 bool // input ports drive; all ports absorb
	// prev holds the previous-step Ex values on the two rows used by
	// the first-order Mur update.
	prevBoundary, prevInner []float64
}

// New builds the solver: allocates Yee arrays, computes the edge
// masks from the mesh and configures the ports.
func New(cfg Config) (*Sim, error) {
	if cfg.Mesh == nil {
		return nil, fmt.Errorf("emsim: nil mesh")
	}
	if cfg.Courant <= 0 || cfg.Courant >= 1 {
		return nil, fmt.Errorf("emsim: Courant factor %g outside (0,1)", cfg.Courant)
	}
	m := cfg.Mesh
	s := &Sim{Cfg: cfg, Mesh: m, nx: m.Nx, ny: m.Ny, nz: m.Nz}
	s.dt = cfg.Courant * s.CourantDT()
	s.omega = cfg.Freq
	if s.omega == 0 {
		s.omega = 2.405 / cfg.Cavity.CellRadius
	}

	nx, ny, nz := s.nx, s.ny, s.nz
	s.ex = make([]float64, nx*(ny+1)*(nz+1))
	s.ey = make([]float64, (nx+1)*ny*(nz+1))
	s.ez = make([]float64, (nx+1)*(ny+1)*nz)
	s.hx = make([]float64, (nx+1)*ny*nz)
	s.hy = make([]float64, nx*(ny+1)*nz)
	s.hz = make([]float64, nx*ny*(nz+1))
	s.mx = make([]bool, len(s.ex))
	s.my = make([]bool, len(s.ey))
	s.mz = make([]bool, len(s.ez))
	s.buildMasks()
	s.buildPorts()
	return s, nil
}

// CourantDT returns the stability limit dt_max = 1/(c sqrt(sum dx_i^-2))
// for the mesh — the paper's Courant condition.
func (s *Sim) CourantDT() float64 {
	m := s.Mesh
	return 1 / math.Sqrt(1/(m.Dx*m.Dx)+1/(m.Dy*m.Dy)+1/(m.Dz*m.Dz))
}

// DT returns the actual step used.
func (s *Sim) DT() float64 { return s.dt }

// Time returns the elapsed simulated time.
func (s *Sim) Time() float64 { return s.time }

// Step returns the number of steps taken.
func (s *Sim) Step() int { return s.step }

// Omega returns the angular drive frequency in use.
func (s *Sim) Omega() float64 { return s.omega }

// Index helpers for the staggered arrays.
func (s *Sim) iEx(i, j, k int) int { return (k*(s.ny+1)+j)*s.nx + i }
func (s *Sim) iEy(i, j, k int) int { return (k*s.ny+j)*(s.nx+1) + i }
func (s *Sim) iEz(i, j, k int) int { return (k*(s.ny+1)+j)*(s.nx+1) + i }
func (s *Sim) iHx(i, j, k int) int { return (k*s.ny+j)*(s.nx+1) + i }
func (s *Sim) iHy(i, j, k int) int { return (k*(s.ny+1)+j)*s.nx + i }
func (s *Sim) iHz(i, j, k int) int { return (k*s.ny+j)*s.nx + i }

// vac reports whether lattice cell (i,j,k) is vacuum; out-of-range
// counts as conductor.
func (s *Sim) vac(i, j, k int) bool {
	return s.Mesh.ElementIndexAt(i, j, k) >= 0
}

// buildMasks marks E edges active only when every adjacent cell is
// vacuum — the staircase perfect-conductor boundary.
func (s *Sim) buildMasks() {
	nx, ny, nz := s.nx, s.ny, s.nz
	// Ex edge (i+1/2, j, k): cells (i, j-1..j, k-1..k).
	for k := 0; k <= nz; k++ {
		for j := 0; j <= ny; j++ {
			for i := 0; i < nx; i++ {
				s.mx[s.iEx(i, j, k)] = s.vac(i, j-1, k-1) && s.vac(i, j, k-1) &&
					s.vac(i, j-1, k) && s.vac(i, j, k)
			}
		}
	}
	// Ey edge (i, j+1/2, k): cells (i-1..i, j, k-1..k).
	for k := 0; k <= nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i <= nx; i++ {
				s.my[s.iEy(i, j, k)] = s.vac(i-1, j, k-1) && s.vac(i, j, k-1) &&
					s.vac(i-1, j, k) && s.vac(i, j, k)
			}
		}
	}
	// Ez edge (i, j, k+1/2): cells (i-1..i, j-1..j, k).
	for k := 0; k < nz; k++ {
		for j := 0; j <= ny; j++ {
			for i := 0; i <= nx; i++ {
				s.mz[s.iEz(i, j, k)] = s.vac(i-1, j-1, k) && s.vac(i, j-1, k) &&
					s.vac(i-1, j, k) && s.vac(i, j, k)
			}
		}
	}
}

// buildPorts configures the driving/absorbing planes from the cavity
// port specs.
func (s *Sim) buildPorts() {
	add := func(spec *hexmesh.PortSpec, top, drive bool) {
		iLo, iHi, kLo, kHi, j, ok := hexmesh.PortMouth(s.Mesh, s.Cfg.Cavity, spec, top)
		if !ok {
			return
		}
		n := (iHi - iLo + 1) * (kHi - kLo + 1)
		s.ports = append(s.ports, portPlane{
			iLo: iLo, iHi: iHi, kLo: kLo, kHi: kHi, j: j,
			top: top, drive: drive,
			prevBoundary: make([]float64, n),
			prevInner:    make([]float64, n),
		})
	}
	add(s.Cfg.Cavity.InputPort, true, true)
	add(s.Cfg.Cavity.InputPort, false, true)
	add(s.Cfg.Cavity.OutputPort, true, false)
	add(s.Cfg.Cavity.OutputPort, false, false)
}

// Advance runs n full leapfrog steps.
func (s *Sim) Advance(n int) {
	for i := 0; i < n; i++ {
		s.advanceOnce()
	}
}

// AdvancePeriods runs enough steps to cover n drive periods.
func (s *Sim) AdvancePeriods(n float64) {
	period := 2 * math.Pi / s.omega
	steps := int(math.Ceil(n * period / s.dt))
	s.Advance(steps)
}

func (s *Sim) advanceOnce() {
	s.updateH()
	s.updateE()
	s.applyPorts()
	s.time += s.dt
	s.step++
}

// updateH applies the curl-E update to all magnetic components.
func (s *Sim) updateH() {
	nx, ny, nz := s.nx, s.ny, s.nz
	dx, dy, dz := s.Mesh.Dx, s.Mesh.Dy, s.Mesh.Dz
	dt := s.dt
	w := s.Cfg.Workers
	// Hx(i, j+1/2, k+1/2) -= dt * (dEz/dy - dEy/dz)
	par.ForChunks(nz, w, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i <= nx; i++ {
					curl := (s.ez[s.iEz(i, j+1, k)]-s.ez[s.iEz(i, j, k)])/dy -
						(s.ey[s.iEy(i, j, k+1)]-s.ey[s.iEy(i, j, k)])/dz
					s.hx[s.iHx(i, j, k)] -= dt * curl
				}
			}
		}
	})
	// Hy(i+1/2, j, k+1/2) -= dt * (dEx/dz - dEz/dx)
	par.ForChunks(nz, w, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			for j := 0; j <= ny; j++ {
				for i := 0; i < nx; i++ {
					curl := (s.ex[s.iEx(i, j, k+1)]-s.ex[s.iEx(i, j, k)])/dz -
						(s.ez[s.iEz(i+1, j, k)]-s.ez[s.iEz(i, j, k)])/dx
					s.hy[s.iHy(i, j, k)] -= dt * curl
				}
			}
		}
	})
	// Hz(i+1/2, j+1/2, k) -= dt * (dEy/dx - dEx/dy)
	par.ForChunks(nz+1, w, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					curl := (s.ey[s.iEy(i+1, j, k)]-s.ey[s.iEy(i, j, k)])/dx -
						(s.ex[s.iEx(i, j+1, k)]-s.ex[s.iEx(i, j, k)])/dy
					s.hz[s.iHz(i, j, k)] -= dt * curl
				}
			}
		}
	})
}

// updateE applies the curl-H update to all active electric edges.
func (s *Sim) updateE() {
	nx, ny, nz := s.nx, s.ny, s.nz
	dx, dy, dz := s.Mesh.Dx, s.Mesh.Dy, s.Mesh.Dz
	dt := s.dt
	w := s.Cfg.Workers
	// Ex(i+1/2, j, k) += dt * (dHz/dy - dHy/dz), interior edges only.
	par.ForChunks(nz-1, w, func(lo, hi int) {
		for k := lo + 1; k < hi+1; k++ {
			for j := 1; j < ny; j++ {
				for i := 0; i < nx; i++ {
					idx := s.iEx(i, j, k)
					if !s.mx[idx] {
						continue
					}
					curl := (s.hz[s.iHz(i, j, k)]-s.hz[s.iHz(i, j-1, k)])/dy -
						(s.hy[s.iHy(i, j, k)]-s.hy[s.iHy(i, j, k-1)])/dz
					s.ex[idx] += dt * curl
				}
			}
		}
	})
	// Ey(i, j+1/2, k) += dt * (dHx/dz - dHz/dx)
	par.ForChunks(nz-1, w, func(lo, hi int) {
		for k := lo + 1; k < hi+1; k++ {
			for j := 0; j < ny; j++ {
				for i := 1; i < nx; i++ {
					idx := s.iEy(i, j, k)
					if !s.my[idx] {
						continue
					}
					curl := (s.hx[s.iHx(i, j, k)]-s.hx[s.iHx(i, j, k-1)])/dz -
						(s.hz[s.iHz(i, j, k)]-s.hz[s.iHz(i-1, j, k)])/dx
					s.ey[idx] += dt * curl
				}
			}
		}
	})
	// Ez(i, j, k+1/2) += dt * (dHy/dx - dHx/dy)
	par.ForChunks(nz, w, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			for j := 1; j < ny; j++ {
				for i := 1; i < nx; i++ {
					idx := s.iEz(i, j, k)
					if !s.mz[idx] {
						continue
					}
					curl := (s.hy[s.iHy(i, j, k)]-s.hy[s.iHy(i-1, j, k)])/dx -
						(s.hx[s.iHx(i, j, k)]-s.hx[s.iHx(i, j-1, k)])/dy
					s.ez[idx] += dt * curl
				}
			}
		}
	})
}

// applyPorts drives the input mouths and applies the first-order Mur
// absorbing update on every port mouth so outgoing waves leave the
// domain ("the reflection and transmission properties of open
// structures").
func (s *Sim) applyPorts() {
	for p := range s.ports {
		s.applyPort(&s.ports[p])
	}
}

func (s *Sim) applyPort(p *portPlane) {
	dy := s.Mesh.Dy
	coef := (s.dt - dy) / (s.dt + dy)
	// The port field is Ez: tangential to the mouth plane and aligned
	// with the cavity axis, so it couples directly into the TM
	// accelerating modes. Edge rows in Yee corner indexing: cell row j
	// spans corners j and j+1, and corner edges on the domain faces are
	// PEC-masked. For a top mouth at cell row p.j the outermost
	// *interior* edge row is corner p.j; for a bottom mouth it is
	// corner p.j+1. The Mur inner sample sits one further row toward
	// the cavity.
	jB, jIn := p.j, p.j-1
	if !p.top {
		jB, jIn = p.j+1, p.j+2
	}
	// Drive amplitude with smooth ramp.
	period := 2 * math.Pi / s.omega
	ramp := 1.0
	if s.Cfg.RampPeriods > 0 {
		r := s.time / (s.Cfg.RampPeriods * period)
		if r < 1 {
			ramp = 0.5 * (1 - math.Cos(math.Pi*r))
		}
	}
	driveVal := math.Sin(s.omega*s.time) * ramp

	idx := 0
	for k := p.kLo; k <= p.kHi && k < s.nz; k++ {
		for i := p.iLo; i <= p.iHi; i++ {
			bi := s.iEz(i, jB, k)
			ii := s.iEz(i, jIn, k)
			if s.mz[bi] && s.mz[ii] {
				// First-order Mur: outgoing wave absorbed at the mouth.
				s.ez[bi] = p.prevInner[idx] + coef*(s.ez[ii]-p.prevBoundary[idx])
				if p.drive {
					// Soft TE10-profile source superposed on the mouth.
					profile := math.Sin(math.Pi * float64(i-p.iLo+1) / float64(p.iHi-p.iLo+2))
					s.ez[bi] += s.dt * driveVal * profile
				}
			}
			p.prevBoundary[idx] = s.ez[bi]
			p.prevInner[idx] = s.ez[ii]
			idx++
		}
	}
}

// Energy returns the total electromagnetic field energy
// (1/2) sum (E^2 + H^2) dV — the diagnostic used to detect steady
// state and verify stability.
func (s *Sim) Energy() float64 {
	dv := s.Mesh.Dx * s.Mesh.Dy * s.Mesh.Dz
	var sum float64
	for _, v := range s.ex {
		sum += v * v
	}
	for _, v := range s.ey {
		sum += v * v
	}
	for _, v := range s.ez {
		sum += v * v
	}
	for _, v := range s.hx {
		sum += v * v
	}
	for _, v := range s.hy {
		sum += v * v
	}
	for _, v := range s.hz {
		sum += v * v
	}
	return 0.5 * sum * dv
}

// RunToSteadyState advances until the per-period energy change drops
// below tol (relative) or maxPeriods elapse. It returns the number of
// periods simulated and whether steady state was reached — the
// experiment behind the paper's "simulation of this 12-cell structure
// reaches steady state at about 40 nanoseconds".
func (s *Sim) RunToSteadyState(tol float64, maxPeriods int) (periods int, steady bool) {
	prev := -1.0
	for p := 0; p < maxPeriods; p++ {
		s.AdvancePeriods(1)
		e := s.Energy()
		if prev > 0 && math.Abs(e-prev) < tol*prev {
			return p + 1, true
		}
		prev = e
	}
	return maxPeriods, false
}
