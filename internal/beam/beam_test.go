package beam

import (
	"math"
	"testing"
)

func testLattice() Lattice {
	return Lattice{QuadLen: 0.2, DriftLen: 0.3, Strength: 12}
}

func TestLatticeValidate(t *testing.T) {
	cases := []struct {
		name string
		lat  Lattice
		ok   bool
	}{
		{"good", testLattice(), true},
		{"zero quad", Lattice{0, 0.3, 32}, false},
		{"negative drift", Lattice{0.2, -1, 32}, false},
		{"zero strength", Lattice{0.2, 0.3, 0}, false},
	}
	for _, c := range cases {
		err := c.lat.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestKappaLayout(t *testing.T) {
	lat := testLattice()
	p := lat.Period()
	if p != 1.0 {
		t.Fatalf("period = %v, want 1.0", p)
	}
	cases := []struct {
		s    float64
		want float64
	}{
		{0.05, 12},  // first half of F quad
		{0.2, 0},    // drift
		{0.5, -12},  // D quad
		{0.8, 0},    // drift
		{0.95, 12},  // second half of F quad
		{1.05, 12},  // periodic wrap
		{-0.05, 12}, // negative s wraps to tail F half
		{2.5, -12},  // wraps into D quad
	}
	for _, c := range cases {
		if got := lat.Kappa(c.s); got != c.want {
			t.Errorf("Kappa(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestKappaAlternates(t *testing.T) {
	// Integral of kappa over a full period must vanish for a symmetric
	// FODO channel (equal focusing and defocusing).
	lat := testLattice()
	const n = 100000
	sum := 0.0
	ds := lat.Period() / n
	for i := 0; i < n; i++ {
		sum += lat.Kappa((float64(i)+0.5)*ds) * ds
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("integral of kappa over period = %v, want 0", sum)
	}
}

func TestPhaseAdvanceStable(t *testing.T) {
	lat := testLattice()
	sigma, err := lat.PhaseAdvance()
	if err != nil {
		t.Fatalf("PhaseAdvance: %v", err)
	}
	deg := sigma * 180 / math.Pi
	// Halo studies operate below the 90-degree envelope-instability
	// threshold; confirm the default channel is in that regime.
	if deg <= 10 || deg >= 90 {
		t.Errorf("phase advance = %.1f deg, want in (10, 90)", deg)
	}
}

func TestPhaseAdvanceUnstable(t *testing.T) {
	lat := Lattice{QuadLen: 0.5, DriftLen: 1.0, Strength: 100}
	if _, err := lat.PhaseAdvance(); err == nil {
		t.Error("expected instability error for absurdly strong lattice")
	}
}

func TestMatchedEnvelopeIsPeriodic(t *testing.T) {
	lat := testLattice()
	const K, eps = 6e-3, 1.5e-3
	m, err := MatchedEnvelope(lat, K, eps, eps, 256)
	if err != nil {
		t.Fatalf("MatchedEnvelope: %v", err)
	}
	if m.A <= 0 || m.B <= 0 {
		t.Fatalf("non-positive matched envelope %+v", m)
	}
	// Propagate one period and confirm it returns to itself.
	e := m
	steps := 1024
	ds := lat.Period() / float64(steps)
	s := 0.0
	for i := 0; i < steps; i++ {
		e = e.StepRK4(lat, s, ds, K, eps, eps)
		s += ds
	}
	if math.Abs(e.A-m.A) > 1e-4*m.A || math.Abs(e.B-m.B) > 1e-4*m.B {
		t.Errorf("matched envelope not periodic: start %+v end %+v", m, e)
	}
}

func TestMatchedEnvelopeSymmetry(t *testing.T) {
	// With equal emittances, the matched envelope at the F-quad center
	// has a > b (beam wide where focusing is strong in x... actually the
	// F quad focuses x, so the x envelope is at a minimum there in a
	// zero-current channel; with the period starting mid-F-quad, a and b
	// must simply be distinct and positive).
	lat := testLattice()
	m, err := MatchedEnvelope(lat, 6e-3, 1.5e-3, 1.5e-3, 256)
	if err != nil {
		t.Fatalf("MatchedEnvelope: %v", err)
	}
	if m.A == m.B {
		t.Errorf("matched a == b (%v) in an alternating-gradient channel", m.A)
	}
}

func TestSpaceChargeKickContinuity(t *testing.T) {
	// The force must be continuous across the core boundary.
	a, b, K := 2.0, 1.0, 1e-2
	// Point on the boundary along a diagonal: x/a = cos t, y/b = sin t.
	tt := 0.7
	x, y := a*math.Cos(tt), b*math.Sin(tt)
	fxIn, fyIn := spaceChargeKick(x*0.999999, y*0.999999, a, b, K)
	fxOut, fyOut := spaceChargeKick(x*1.000001, y*1.000001, a, b, K)
	if math.Abs(fxIn-fxOut) > 1e-6*math.Abs(fxIn) || math.Abs(fyIn-fyOut) > 1e-6*math.Abs(fyIn) {
		t.Errorf("space-charge force discontinuous at boundary: in (%v,%v) out (%v,%v)",
			fxIn, fyIn, fxOut, fyOut)
	}
}

func TestSpaceChargeFarField(t *testing.T) {
	// Far from a round core the field must match the line-charge far
	// field of this perveance convention: F = K/r (the interior field
	// K x/a^2 continued through the boundary).
	a, K := 1.0, 1e-2
	r := 50.0
	fx, _ := spaceChargeKick(r, 0, a, a, K)
	want := K / r
	if math.Abs(fx-want) > 1e-9 {
		t.Errorf("far field = %v, want %v", fx, want)
	}
}

func TestSpaceChargeLinearInside(t *testing.T) {
	a, b, K := 1.5, 0.8, 1e-2
	fx1, fy1 := spaceChargeKick(0.1, 0.05, a, b, K)
	fx2, fy2 := spaceChargeKick(0.2, 0.10, a, b, K)
	if math.Abs(fx2-2*fx1) > 1e-12 || math.Abs(fy2-2*fy1) > 1e-12 {
		t.Errorf("interior force not linear: (%v,%v) vs 2x(%v,%v)", fx2, fy2, fx1, fy1)
	}
}

func TestNewSimValidation(t *testing.T) {
	cfg := DefaultConfig(0)
	if _, err := NewSim(cfg); err == nil {
		t.Error("NewSim accepted zero particles")
	}
	cfg = DefaultConfig(10)
	cfg.EmitX = -1
	if _, err := NewSim(cfg); err == nil {
		t.Error("NewSim accepted negative emittance")
	}
}

func TestSimMatchedBeamStaysBounded(t *testing.T) {
	cfg := DefaultConfig(2000)
	cfg.Mismatch = 1.0 // matched: no halo should develop
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	sim.RunPeriods(20)
	if r := sim.MaxRadius(); r > 4 {
		t.Errorf("matched beam max radius = %.2f matched radii; expected < 4", r)
	}
}

func TestSimMismatchedBeamGrowsHalo(t *testing.T) {
	mk := func(mismatch float64) float64 {
		cfg := DefaultConfig(2000)
		cfg.Mismatch = mismatch
		sim, err := NewSim(cfg)
		if err != nil {
			t.Fatalf("NewSim: %v", err)
		}
		sim.RunPeriods(40)
		m := sim.Matched()
		// Fraction of particles beyond 2.5 matched mean radii — the
		// particle-core halo population.
		return FractionBeyondRadius(sim.Particles, 2.5*(m.A+m.B)/2, 0)
	}
	matched := mk(1.0)
	mismatched := mk(1.5)
	if matched > 0.001 {
		t.Errorf("matched beam grew a halo: fraction %.4f beyond 2.5 radii", matched)
	}
	if mismatched < 0.005 {
		t.Errorf("mismatched beam halo fraction %.4f, want >= 0.005 (resonance missing)", mismatched)
	}
}

func TestSimPreservesParticleCount(t *testing.T) {
	cfg := DefaultConfig(500)
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	sim.RunPeriods(5)
	if sim.Particles.Len() != 500 {
		t.Errorf("particle count changed to %d", sim.Particles.Len())
	}
	for i := 0; i < sim.Particles.Len(); i++ {
		for a := AxisX; a <= AxisPZ; a++ {
			v := sim.Particles.Coord(a)[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("particle %d axis %v is %v", i, a, v)
			}
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	run := func() *Ensemble {
		cfg := DefaultConfig(300)
		sim, err := NewSim(cfg)
		if err != nil {
			t.Fatalf("NewSim: %v", err)
		}
		sim.RunPeriods(3)
		return sim.Particles
	}
	a, b := run(), run()
	for i := 0; i < a.Len(); i++ {
		if a.X[i] != b.X[i] || a.Px[i] != b.Px[i] {
			t.Fatalf("run not deterministic at particle %d", i)
		}
	}
}

func TestRunWithFrames(t *testing.T) {
	cfg := DefaultConfig(200)
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	frames := sim.RunWithFrames(100, 25)
	if len(frames) != 5 { // initial + 4
		t.Fatalf("got %d frames, want 5", len(frames))
	}
	if frames[0].Step != 0 || frames[4].Step != 100 {
		t.Errorf("frame steps = %d..%d, want 0..100", frames[0].Step, frames[4].Step)
	}
	// Frames must be independent copies.
	frames[0].E.X[0] = 1e9
	if frames[1].E.X[0] == 1e9 {
		t.Error("frames share storage")
	}
}

func TestFourFoldSymmetryOfChannel(t *testing.T) {
	cfg := DefaultConfig(20000)
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	sim.RunPeriods(10)
	if score := FourFoldSymmetry(sim.Particles); score > 0.08 {
		t.Errorf("four-fold symmetry deviation = %.3f, want <= 0.08", score)
	}
}

func TestPlaneMoments(t *testing.T) {
	e := NewEnsemble(4)
	e.X = []float64{1, -1, 2, -2}
	e.Px = []float64{1, 1, -1, -1}
	m := PlaneMoments(e, AxisX, AxisPX, 0)
	if m.MeanQ != 0 || m.MeanP != 0 {
		t.Errorf("means = (%v, %v), want 0", m.MeanQ, m.MeanP)
	}
	wantSig := math.Sqrt(2.5)
	if math.Abs(m.SigQ-wantSig) > 1e-12 {
		t.Errorf("SigQ = %v, want %v", m.SigQ, wantSig)
	}
	if m.SigP != 1 {
		t.Errorf("SigP = %v, want 1", m.SigP)
	}
}

func TestEmittanceInvariantUnderDrift(t *testing.T) {
	// RMS emittance is preserved by a pure drift x += L*px.
	e := NewEnsemble(1000)
	e.GaussianInit(42, [6]float64{1, 1, 1, 0.1, 0.1, 0.1}, 0)
	before := PlaneMoments(e, AxisX, AxisPX, 0).Emittance
	for i := range e.X {
		e.X[i] += 3.7 * e.Px[i]
	}
	after := PlaneMoments(e, AxisX, AxisPX, 0).Emittance
	if math.Abs(after-before) > 1e-9*before {
		t.Errorf("drift changed emittance: %v -> %v", before, after)
	}
}

func TestRadialHistogramTotal(t *testing.T) {
	e := NewEnsemble(5000)
	e.GaussianInit(7, [6]float64{1, 1, 1, 1, 1, 1}, 0)
	h := RadialHistogram(e, 100, 32)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 5000 {
		t.Errorf("histogram total = %d, want 5000 (rMax large enough for all)", total)
	}
}

func TestGaussianInitStatistics(t *testing.T) {
	e := NewEnsemble(50000)
	e.GaussianInit(1, [6]float64{2, 3, 4, 0.2, 0.3, 0.4}, 0)
	m := PlaneMoments(e, AxisX, AxisPX, 0)
	if math.Abs(m.SigQ-2) > 0.05 {
		t.Errorf("sigma_x = %v, want ~2", m.SigQ)
	}
	if math.Abs(m.SigP-0.2) > 0.005 {
		t.Errorf("sigma_px = %v, want ~0.2", m.SigP)
	}
}

func TestSemiGaussianInsideEllipsoid(t *testing.T) {
	e := NewEnsemble(10000)
	a, b, c := 2.0, 1.0, 3.0
	e.SemiGaussianInit(9, a, b, c, [3]float64{0.1, 0.1, 0.1})
	for i := 0; i < e.Len(); i++ {
		u := e.X[i]*e.X[i]/(a*a) + e.Y[i]*e.Y[i]/(b*b) + e.Z[i]*e.Z[i]/(c*c)
		if u > 1+1e-12 {
			t.Fatalf("particle %d outside ellipsoid: u=%v", i, u)
		}
	}
}

func TestParseAxis(t *testing.T) {
	for a := AxisX; a <= AxisPZ; a++ {
		got, err := ParseAxis(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAxis(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAxis("bogus"); err == nil {
		t.Error("ParseAxis accepted bogus axis")
	}
}

func TestPoint3Projection(t *testing.T) {
	e := NewEnsemble(1)
	e.X[0], e.Y[0], e.Z[0] = 1, 2, 3
	e.Px[0], e.Py[0], e.Pz[0] = 4, 5, 6
	p := e.Point3(0, [3]Axis{AxisX, AxisPX, AxisY})
	if p.X != 1 || p.Y != 4 || p.Z != 2 {
		t.Errorf("Point3 = %v, want (1,4,2)", p)
	}
}
