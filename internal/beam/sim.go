package beam

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// Config describes a particle-core beam-dynamics run. The defaults
// (see DefaultConfig) put the channel at a zero-current phase advance
// near 80 degrees with strong space charge and a 1.5x envelope
// mismatch — the canonical halo-formation regime of Qiang & Ryne's
// particle-core studies, which is the regime the paper's figures show.
type Config struct {
	N    int   // number of test particles
	Seed int64 // RNG seed for the initial distribution

	Lattice   Lattice
	Perveance float64 // space-charge strength K
	EmitX     float64 // x emittance of the core
	EmitY     float64 // y emittance of the core
	Mismatch  float64 // initial envelope scale factor (1 = matched)

	// Longitudinal model: the bunch drifts in z at unit design velocity
	// with a weak linear restoring force holding it together. This keeps
	// the six-dimensional structure of the data without a longitudinal
	// space-charge solver, which the visualized halo does not depend on.
	FocusZ float64 // longitudinal focusing strength
	DriftZ float64 // design longitudinal velocity added to z each unit s

	StepsPerPeriod int // integrator resolution
	Workers        int // goroutine count for particle pushes (0 = auto)
}

// DefaultConfig returns a configuration that develops a visible halo in
// a few dozen lattice periods at laptop-scale particle counts.
func DefaultConfig(n int) Config {
	return Config{
		N:    n,
		Seed: 20020101,
		Lattice: Lattice{
			QuadLen:  0.2,
			DriftLen: 0.3,
			Strength: 12,
		},
		Perveance:      6e-3,
		EmitX:          1.5e-3,
		EmitY:          1.5e-3,
		Mismatch:       1.5,
		FocusZ:         0.5,
		DriftZ:         0.02,
		StepsPerPeriod: 64,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("beam: particle count %d must be positive", c.N)
	}
	if err := c.Lattice.Validate(); err != nil {
		return err
	}
	if c.Perveance < 0 {
		return fmt.Errorf("beam: perveance %g must be non-negative", c.Perveance)
	}
	if c.EmitX <= 0 || c.EmitY <= 0 {
		return fmt.Errorf("beam: emittances (%g, %g) must be positive", c.EmitX, c.EmitY)
	}
	if c.Mismatch <= 0 {
		return fmt.Errorf("beam: mismatch factor %g must be positive", c.Mismatch)
	}
	if c.StepsPerPeriod < 8 {
		return fmt.Errorf("beam: steps per period %d too coarse (need >= 8)", c.StepsPerPeriod)
	}
	return nil
}

// Sim is a running particle-core simulation. Create with NewSim, then
// call Step or RunPeriods; read Particles for the current phase-space
// state. Sim is not safe for concurrent use, but each Step internally
// pushes particles in parallel.
type Sim struct {
	Config    Config
	Particles *Ensemble
	Core      Envelope // current core envelope
	S         float64  // path length travelled

	steps   int
	matched Envelope
	ds      float64
}

// NewSim constructs a simulation: solves for the matched envelope,
// applies the mismatch factor, and loads a semi-Gaussian particle
// distribution filling the (mismatched) core.
func NewSim(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	matched, err := MatchedEnvelope(cfg.Lattice, cfg.Perveance, cfg.EmitX, cfg.EmitY, cfg.StepsPerPeriod*4)
	if err != nil {
		return nil, err
	}
	core := Envelope{
		A: matched.A * cfg.Mismatch,
		B: matched.B * cfg.Mismatch,
	}
	e := NewEnsemble(cfg.N)
	// Momentum spread chosen so the particle distribution is roughly
	// self-consistent with the core emittance: sigma_p ~ eps / (2 sigma_x).
	psx := cfg.EmitX / (2 * core.A / 2)
	psy := cfg.EmitY / (2 * core.B / 2)
	e.SemiGaussianInit(cfg.Seed, core.A, core.B, core.A*4, [3]float64{psx, psy, psx / 4})
	return &Sim{
		Config:    cfg,
		Particles: e,
		Core:      core,
		matched:   matched,
		ds:        cfg.Lattice.Period() / float64(cfg.StepsPerPeriod),
	}, nil
}

// Matched returns the matched envelope found at construction.
func (s *Sim) Matched() Envelope { return s.matched }

// Steps returns the number of integration steps taken so far.
func (s *Sim) Steps() int { return s.steps }

// spaceChargeKick returns the transverse space-charge force (Fx, Fy) on
// a particle at (x, y) from the uniform elliptical core with semi-axes
// (a, b). Inside the core the KV field is exactly linear:
//
//	Fx = 2K x / (a (a+b)),   Fy = 2K y / (b (a+b))
//
// Outside, the field decays; we use the continuation F_out = F_in / u
// with u = x^2/a^2 + y^2/b^2 (>1 outside), which is continuous at the
// boundary and exact in the round-beam limit (where it reduces to the
// K/r line-charge far field). This is the standard particle-core closure.
func spaceChargeKick(x, y, a, b, perveance float64) (fx, fy float64) {
	u := (x*x)/(a*a) + (y*y)/(b*b)
	fx = 2 * perveance * x / (a * (a + b))
	fy = 2 * perveance * y / (b * (a + b))
	if u > 1 {
		fx /= u
		fy /= u
	}
	return
}

// Step advances the simulation by one integration step of length ds
// using a leapfrog (kick-drift-kick) scheme for the particles,
// synchronized with an RK4 update of the core envelope.
func (s *Sim) Step() {
	cfg := s.Config
	ds := s.ds
	half := ds / 2
	kappa0 := cfg.Lattice.Kappa(s.S)
	kappa1 := cfg.Lattice.Kappa(s.S + ds)
	a0, b0 := s.Core.A, s.Core.B
	next := s.Core.StepRK4(cfg.Lattice, s.S, ds, cfg.Perveance, cfg.EmitX, cfg.EmitY)
	a1, b1 := next.A, next.B

	e := s.Particles
	par.For(e.Len(), cfg.Workers, func(i int) {
		x, y, z := e.X[i], e.Y[i], e.Z[i]
		px, py, pz := e.Px[i], e.Py[i], e.Pz[i]

		// First half-kick with fields at s.
		fx, fy := spaceChargeKick(x, y, a0, b0, cfg.Perveance)
		px += half * (-kappa0*x + fx)
		py += half * (kappa0*y + fy)
		pz += half * (-cfg.FocusZ * z)

		// Drift.
		x += ds * px
		y += ds * py
		z += ds * (pz + cfg.DriftZ)

		// Second half-kick with fields at s+ds.
		fx, fy = spaceChargeKick(x, y, a1, b1, cfg.Perveance)
		px += half * (-kappa1*x + fx)
		py += half * (kappa1*y + fy)
		pz += half * (-cfg.FocusZ * z)

		e.X[i], e.Y[i], e.Z[i] = x, y, z
		e.Px[i], e.Py[i], e.Pz[i] = px, py, pz
	})

	s.Core = next
	s.S += ds
	s.steps++
}

// RunPeriods advances the simulation by n full lattice periods.
func (s *Sim) RunPeriods(n int) {
	for i := 0; i < n*s.Config.StepsPerPeriod; i++ {
		s.Step()
	}
}

// RunSteps advances the simulation by n integration steps.
func (s *Sim) RunSteps(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Frame is a snapshot of the simulation state at one output time step —
// the unit the paper's partitioner and viewer operate on.
type Frame struct {
	Step int       // simulation step index at capture
	S    float64   // path length at capture
	E    *Ensemble // deep copy of the phase-space state
}

// Snapshot captures the current state as a Frame.
func (s *Sim) Snapshot() Frame {
	return Frame{Step: s.steps, S: s.S, E: s.Particles.Clone()}
}

// RunWithFrames advances nSteps and captures a frame every interval
// steps (plus the initial state). It is the generator used by the
// Fig 5 time-series experiment (350 frames of an evolving beam).
func (s *Sim) RunWithFrames(nSteps, interval int) []Frame {
	if interval <= 0 {
		interval = 1
	}
	frames := []Frame{s.Snapshot()}
	for i := 1; i <= nSteps; i++ {
		s.Step()
		if i%interval == 0 {
			frames = append(frames, s.Snapshot())
		}
	}
	return frames
}

// MaxRadius returns the largest sqrt(x^2+y^2) over the ensemble,
// normalized by the matched envelope's mean semi-axis — the standard
// halo-extent diagnostic of particle-core studies.
func (s *Sim) MaxRadius() float64 {
	mean := (s.matched.A + s.matched.B) / 2
	maxR2 := 0.0
	e := s.Particles
	for i := 0; i < e.Len(); i++ {
		r2 := e.X[i]*e.X[i] + e.Y[i]*e.Y[i]
		if r2 > maxR2 {
			maxR2 = r2
		}
	}
	return math.Sqrt(maxR2) / mean
}
