// Package beam implements the beam-dynamics substrate that generates
// the particle data visualized in §2 of the paper.
//
// The paper's data came from IMPACT, an object-oriented parallel
// particle-in-cell code (Qiang, Ryne, Habib, Decyk — ref [11]) running
// 100M–1B particle simulations of an intense beam in a magnetic
// quadrupole channel. Re-running those is out of scope for one host, so
// this package implements the published *particle-core* model (Qiang &
// Ryne, "Beam halo studies using a 3-dimensional particle-core model" —
// ref [10]), the very model used for the halo physics the paper's
// figures show: test particles tracked through an alternating-gradient
// (FODO) lattice under the nonlinear space-charge field of a mismatched
// uniform-density core whose envelope satisfies the KV equations.
// A mismatched core oscillates; the parametric 2:1 resonance between
// core oscillation and single-particle motion drives particles to large
// amplitude, forming exactly the tenuous halo that the paper's hybrid
// renderer exists to show.
//
// Particles carry the same six double-precision phase-space coordinates
// as the paper's data: (x, y, z, px, py, pz).
package beam

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vec"
)

// Axis identifies one of the six phase-space coordinates. The paper's
// viewer builds 3-D plots from any three of them (Fig 2 shows (x,y,z),
// (x,px,y), (x,px,z) and (px,py,pz)).
type Axis int

// The six phase-space axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
	AxisPX
	AxisPY
	AxisPZ
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	case AxisZ:
		return "z"
	case AxisPX:
		return "px"
	case AxisPY:
		return "py"
	case AxisPZ:
		return "pz"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// ParseAxis converts a name like "x" or "px" to an Axis.
func ParseAxis(s string) (Axis, error) {
	for a := AxisX; a <= AxisPZ; a++ {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("beam: unknown axis %q", s)
}

// Ensemble stores N particles in structure-of-arrays layout so the
// per-coordinate passes of the integrator and the octree partitioner
// stream through memory sequentially. All six slices always have equal
// length.
type Ensemble struct {
	X, Y, Z    []float64
	Px, Py, Pz []float64
}

// NewEnsemble allocates an ensemble of n particles at the phase-space
// origin.
func NewEnsemble(n int) *Ensemble {
	return &Ensemble{
		X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n),
		Px: make([]float64, n), Py: make([]float64, n), Pz: make([]float64, n),
	}
}

// Len returns the particle count.
func (e *Ensemble) Len() int { return len(e.X) }

// Coord returns the slice backing the given axis.
func (e *Ensemble) Coord(a Axis) []float64 {
	switch a {
	case AxisX:
		return e.X
	case AxisY:
		return e.Y
	case AxisZ:
		return e.Z
	case AxisPX:
		return e.Px
	case AxisPY:
		return e.Py
	case AxisPZ:
		return e.Pz
	}
	panic(fmt.Sprintf("beam: bad axis %d", int(a)))
}

// Point3 returns particle i projected onto the three given axes — the
// operation behind every "plot type" in the paper's partitioner.
func (e *Ensemble) Point3(i int, ax [3]Axis) vec.V3 {
	return vec.V3{
		X: e.Coord(ax[0])[i],
		Y: e.Coord(ax[1])[i],
		Z: e.Coord(ax[2])[i],
	}
}

// Clone returns a deep copy of the ensemble — a simulation "frame"
// snapshot decoupled from further stepping.
func (e *Ensemble) Clone() *Ensemble {
	c := NewEnsemble(e.Len())
	copy(c.X, e.X)
	copy(c.Y, e.Y)
	copy(c.Z, e.Z)
	copy(c.Px, e.Px)
	copy(c.Py, e.Py)
	copy(c.Pz, e.Pz)
	return c
}

// Bounds returns the AABB of the projection of the ensemble onto the
// three given axes.
func (e *Ensemble) Bounds(ax [3]Axis) vec.AABB {
	b := vec.Empty()
	for i := 0; i < e.Len(); i++ {
		b = b.ExtendPoint(e.Point3(i, ax))
	}
	return b
}

// GaussianInit fills the ensemble with a 6-D Gaussian distribution with
// the given RMS widths, truncated at cut standard deviations (cut <= 0
// means untruncated). The generator is deterministic for a given seed
// so experiments are reproducible.
func (e *Ensemble) GaussianInit(seed int64, sigma [6]float64, cut float64) {
	rng := rand.New(rand.NewSource(seed))
	draw := func(s float64) float64 {
		for {
			v := rng.NormFloat64()
			if cut <= 0 || math.Abs(v) <= cut {
				return v * s
			}
		}
	}
	for i := 0; i < e.Len(); i++ {
		e.X[i] = draw(sigma[0])
		e.Y[i] = draw(sigma[1])
		e.Z[i] = draw(sigma[2])
		e.Px[i] = draw(sigma[3])
		e.Py[i] = draw(sigma[4])
		e.Pz[i] = draw(sigma[5])
	}
}

// SemiGaussianInit fills the ensemble with the semi-Gaussian
// distribution conventional in halo studies: uniformly filled spatial
// ellipsoid (radii a, b, c) with Gaussian momenta. This matches the
// uniform-density core assumption of the particle-core model at s=0.
func (e *Ensemble) SemiGaussianInit(seed int64, a, b, c float64, psigma [3]float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < e.Len(); i++ {
		// Rejection-sample the unit ball, then scale per-axis.
		for {
			x := 2*rng.Float64() - 1
			y := 2*rng.Float64() - 1
			z := 2*rng.Float64() - 1
			if x*x+y*y+z*z <= 1 {
				e.X[i], e.Y[i], e.Z[i] = a*x, b*y, c*z
				break
			}
		}
		e.Px[i] = psigma[0] * rng.NormFloat64()
		e.Py[i] = psigma[1] * rng.NormFloat64()
		e.Pz[i] = psigma[2] * rng.NormFloat64()
	}
}
