package beam

import (
	"math"

	"repro/internal/par"
)

// Moments holds second-order statistics of one transverse plane.
type Moments struct {
	MeanQ, MeanP float64 // centroid
	SigQ, SigP   float64 // RMS widths
	Emittance    float64 // RMS emittance sqrt(<q^2><p^2> - <qp>^2)
}

// PlaneMoments computes centroid, RMS widths and RMS emittance for the
// plane defined by coordinate axis q and momentum axis p. The reduction
// runs in parallel chunks.
func PlaneMoments(e *Ensemble, q, p Axis, workers int) Moments {
	qs, ps := e.Coord(q), e.Coord(p)
	n := e.Len()
	if n == 0 {
		return Moments{}
	}
	type acc struct{ sq, sp, sqq, spp, sqp float64 }
	total := par.MapReduce(n, workers,
		func() acc { return acc{} },
		func(a acc, lo, hi int) acc {
			for i := lo; i < hi; i++ {
				a.sq += qs[i]
				a.sp += ps[i]
				a.sqq += qs[i] * qs[i]
				a.spp += ps[i] * ps[i]
				a.sqp += qs[i] * ps[i]
			}
			return a
		},
		func(a, b acc) acc {
			return acc{a.sq + b.sq, a.sp + b.sp, a.sqq + b.sqq, a.spp + b.spp, a.sqp + b.sqp}
		},
	)
	fn := float64(n)
	mq, mp := total.sq/fn, total.sp/fn
	vq := total.sqq/fn - mq*mq
	vp := total.spp/fn - mp*mp
	cqp := total.sqp/fn - mq*mp
	det := vq*vp - cqp*cqp
	if det < 0 {
		det = 0
	}
	return Moments{
		MeanQ: mq, MeanP: mp,
		SigQ: math.Sqrt(math.Max(vq, 0)), SigP: math.Sqrt(math.Max(vp, 0)),
		Emittance: math.Sqrt(det),
	}
}

// HaloFraction returns the fraction of particles whose transverse
// radius exceeds k times the RMS transverse radius. Halo studies
// conventionally quote the fraction beyond a few RMS radii; the paper's
// point-rendered region is precisely this population.
func HaloFraction(e *Ensemble, k float64, workers int) float64 {
	n := e.Len()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += e.X[i]*e.X[i] + e.Y[i]*e.Y[i]
	}
	rms2 := sum / float64(n)
	threshold2 := k * k * rms2
	count := par.MapReduce(n, workers,
		func() int { return 0 },
		func(c, lo, hi int) int {
			for i := lo; i < hi; i++ {
				if e.X[i]*e.X[i]+e.Y[i]*e.Y[i] > threshold2 {
					c++
				}
			}
			return c
		},
		func(a, b int) int { return a + b },
	)
	return float64(count) / float64(n)
}

// FractionBeyondRadius returns the fraction of particles whose
// transverse radius exceeds r (an absolute threshold, typically a
// multiple of the matched envelope radius). Unlike HaloFraction it is
// insensitive to the growth of the ensemble's own RMS as halo forms.
func FractionBeyondRadius(e *Ensemble, r float64, workers int) float64 {
	n := e.Len()
	if n == 0 {
		return 0
	}
	r2 := r * r
	count := par.MapReduce(n, workers,
		func() int { return 0 },
		func(c, lo, hi int) int {
			for i := lo; i < hi; i++ {
				if e.X[i]*e.X[i]+e.Y[i]*e.Y[i] > r2 {
					c++
				}
			}
			return c
		},
		func(a, b int) int { return a + b },
	)
	return float64(count) / float64(n)
}

// FourFoldSymmetry measures how evenly particles populate the four
// transverse quadrants. It returns the maximum relative deviation of
// any quadrant count from the mean; 0 is perfect four-fold symmetry.
// The alternating-gradient channel of Fig 5 produces x/y-mirror
// symmetric beams, so this score stays small throughout the run.
func FourFoldSymmetry(e *Ensemble) float64 {
	var counts [4]int
	for i := 0; i < e.Len(); i++ {
		q := 0
		if e.X[i] >= 0 {
			q |= 1
		}
		if e.Y[i] >= 0 {
			q |= 2
		}
		counts[q]++
	}
	mean := float64(e.Len()) / 4
	if mean == 0 {
		return 0
	}
	worst := 0.0
	for _, c := range counts {
		d := math.Abs(float64(c)-mean) / mean
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Temperature returns a per-particle "temperature" lookup: the
// transverse kinetic measure px^2 + py^2. It is the example dynamic
// property of §2.5 — computed at draw time from the original particle
// data rather than baked into the stored representation.
func Temperature(e *Ensemble) func(orig int64) float64 {
	return func(orig int64) float64 {
		if orig < 0 || orig >= int64(e.Len()) {
			return 0
		}
		return e.Px[orig]*e.Px[orig] + e.Py[orig]*e.Py[orig]
	}
}

// RadialHistogram bins particles by transverse radius into nBins bins
// spanning [0, rMax) and returns the counts. It is the diagnostic
// behind the density classification of the hybrid pipeline: the beam
// core occupies the innermost bins at densities thousands of times the
// halo's.
func RadialHistogram(e *Ensemble, rMax float64, nBins int) []int {
	counts := make([]int, nBins)
	if rMax <= 0 || nBins <= 0 {
		return counts
	}
	for i := 0; i < e.Len(); i++ {
		r := math.Sqrt(e.X[i]*e.X[i] + e.Y[i]*e.Y[i])
		bin := int(r / rMax * float64(nBins))
		if bin >= 0 && bin < nBins {
			counts[bin]++
		}
	}
	return counts
}
