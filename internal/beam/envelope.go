package beam

import (
	"fmt"
	"math"
)

// Envelope holds the state of the KV beam-core envelope: semi-axes a
// (horizontal) and b (vertical) and their derivatives with respect to
// path length. The core of the particle-core model is a uniformly
// charged elliptical cylinder with these semi-axes; its oscillation
// when mismatched drives halo formation.
type Envelope struct {
	A, B   float64 // semi-axes
	Ap, Bp float64 // d/ds of semi-axes
}

// envRHS evaluates the KV envelope equations
//
//	a'' = -kappa(s)*a + 2K/(a+b) + epsx^2/a^3
//	b'' = +kappa(s)*b + 2K/(a+b) + epsy^2/b^3
//
// where K is the beam perveance and eps the unnormalized RMS-equivalent
// emittances. kappa enters with opposite signs in the two planes
// (alternating-gradient focusing).
func envRHS(e Envelope, kappa, perveance, epsX, epsY float64) (app, bpp float64) {
	app = -kappa*e.A + 2*perveance/(e.A+e.B) + epsX*epsX/(e.A*e.A*e.A)
	bpp = kappa*e.B + 2*perveance/(e.A+e.B) + epsY*epsY/(e.B*e.B*e.B)
	return
}

// StepRK4 advances the envelope by ds through the lattice. The step is
// split at lattice segment boundaries so each RK4 sub-step sees a
// smooth (piecewise-constant) kappa; within a smooth piece classical
// RK4 converges at full order, making the result effectively
// independent of the caller's step size.
func (e Envelope) StepRK4(lat Lattice, s, ds, perveance, epsX, epsY float64) Envelope {
	end := s + ds
	const tiny = 1e-12
	for s < end-tiny {
		next := lat.NextBoundary(s)
		if next > end {
			next = end
		}
		e = e.rk4Smooth(lat, s, next-s, perveance, epsX, epsY)
		s = next
	}
	return e
}

// rk4Smooth performs one classical RK4 step of length ds assuming
// kappa is constant over [s, s+ds]; it is sampled once at the piece
// midpoint so segment-boundary endpoints never pick up the neighboring
// segment's value.
func (e Envelope) rk4Smooth(lat Lattice, s, ds, perveance, epsX, epsY float64) Envelope {
	kap := lat.Kappa(s + ds/2)
	type state struct{ a, b, ap, bp float64 }
	deriv := func(st state) state {
		app, bpp := envRHS(Envelope{st.a, st.b, st.ap, st.bp}, kap, perveance, epsX, epsY)
		return state{st.ap, st.bp, app, bpp}
	}
	add := func(st state, d state, h float64) state {
		return state{st.a + h*d.a, st.b + h*d.b, st.ap + h*d.ap, st.bp + h*d.bp}
	}
	y := state{e.A, e.B, e.Ap, e.Bp}
	k1 := deriv(y)
	k2 := deriv(add(y, k1, ds/2))
	k3 := deriv(add(y, k2, ds/2))
	k4 := deriv(add(y, k3, ds))
	out := state{
		y.a + ds/6*(k1.a+2*k2.a+2*k3.a+k4.a),
		y.b + ds/6*(k1.b+2*k2.b+2*k3.b+k4.b),
		y.ap + ds/6*(k1.ap+2*k2.ap+2*k3.ap+k4.ap),
		y.bp + ds/6*(k1.bp+2*k2.bp+2*k3.bp+k4.bp),
	}
	return Envelope{out.a, out.b, out.ap, out.bp}
}

// MatchedEnvelope finds the periodic (matched) envelope of the lattice:
// initial semi-axes (a0, b0) with a'=b'=0 at the symmetry point such
// that the envelope returns to the same state after one period. It uses
// Newton iteration on the 2-D residual (a(L)-a0, b(L)-b0) with a
// finite-difference Jacobian. stepsPerPeriod controls integration
// resolution.
func MatchedEnvelope(lat Lattice, perveance, epsX, epsY float64, stepsPerPeriod int) (Envelope, error) {
	if err := lat.Validate(); err != nil {
		return Envelope{}, err
	}
	if stepsPerPeriod < 16 {
		stepsPerPeriod = 16
	}
	period := lat.Period()
	ds := period / float64(stepsPerPeriod)

	propagate := func(a0, b0 float64) (Envelope, bool) {
		e := Envelope{A: a0, B: b0}
		s := 0.0
		for i := 0; i < stepsPerPeriod; i++ {
			e = e.StepRK4(lat, s, ds, perveance, epsX, epsY)
			s += ds
			if e.A <= 0 || e.B <= 0 || math.IsNaN(e.A) || math.IsNaN(e.B) {
				return e, false
			}
		}
		return e, true
	}

	// Smooth-focusing estimate as the starting guess: treat the
	// alternating gradient as an average focusing k_eff and solve the
	// stationary round-beam envelope r'' = 0.
	sigma0, err := lat.PhaseAdvance()
	if err != nil {
		return Envelope{}, err
	}
	kEff := sigma0 * sigma0 / (period * period)
	// Solve k*r - 2K/(2r) - eps^2/r^3 = 0 by bisection.
	eps := math.Max(epsX, epsY)
	f := func(r float64) float64 { return kEff*r - perveance/r - eps*eps/(r*r*r) }
	lo, hi := 1e-9, 1.0
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e9 {
			return Envelope{}, fmt.Errorf("beam: cannot bracket matched radius")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	a0, b0 := (lo+hi)/2, (lo+hi)/2

	// Newton iteration on the period map residual.
	for iter := 0; iter < 60; iter++ {
		e, ok := propagate(a0, b0)
		if !ok {
			return Envelope{}, fmt.Errorf("beam: envelope integration diverged during matching")
		}
		ra, rb := e.A-a0, e.B-b0
		if math.Abs(ra) < 1e-12*a0 && math.Abs(rb) < 1e-12*b0 {
			return Envelope{A: a0, B: b0}, nil
		}
		h := 1e-6 * (a0 + b0)
		ea, okA := propagate(a0+h, b0)
		eb, okB := propagate(a0, b0+h)
		if !okA || !okB {
			return Envelope{}, fmt.Errorf("beam: envelope Jacobian evaluation diverged")
		}
		// Jacobian of residual (r_a, r_b) wrt (a0, b0).
		j00 := ((ea.A - (a0 + h)) - ra) / h
		j01 := ((eb.A - a0) - ra) / h
		j10 := ((ea.B - b0) - rb) / h
		j11 := ((eb.B - (b0 + h)) - rb) / h
		det := j00*j11 - j01*j10
		if math.Abs(det) < 1e-30 {
			return Envelope{}, fmt.Errorf("beam: singular Jacobian in envelope matching")
		}
		da := (-ra*j11 + rb*j01) / det
		db := (ra*j10 - rb*j00) / det
		// Damp large Newton steps to stay in the basin.
		limit := 0.5 * math.Min(a0, b0)
		if math.Abs(da) > limit {
			da = math.Copysign(limit, da)
		}
		if math.Abs(db) > limit {
			db = math.Copysign(limit, db)
		}
		a0 += da
		b0 += db
		if a0 <= 0 || b0 <= 0 {
			return Envelope{}, fmt.Errorf("beam: matching drove envelope non-positive")
		}
	}
	// Accept a slightly looser tolerance after the iteration budget.
	e, ok := propagate(a0, b0)
	if ok && math.Abs(e.A-a0) < 1e-6*a0 && math.Abs(e.B-b0) < 1e-6*b0 {
		return Envelope{A: a0, B: b0}, nil
	}
	return Envelope{}, fmt.Errorf("beam: envelope matching did not converge")
}
