package beam

import (
	"fmt"
	"math"
)

// Lattice describes a periodic FODO quadrupole channel: a focusing
// quad, a drift, a defocusing quad, and a second drift. Kappa(s)
// returns the horizontal focusing strength at path position s; the
// vertical strength is its negative (alternating-gradient focusing),
// which is what produces the four-fold symmetric beam evolution seen in
// the paper's Fig 5.
type Lattice struct {
	QuadLen  float64 // length of each quadrupole
	DriftLen float64 // length of each drift section
	Strength float64 // quadrupole gradient kappa0 (>0)
}

// Period returns the lattice period length.
func (l Lattice) Period() float64 { return 2*l.QuadLen + 2*l.DriftLen }

// Validate reports a descriptive error for non-physical parameters.
func (l Lattice) Validate() error {
	if l.QuadLen <= 0 {
		return fmt.Errorf("beam: quad length %g must be positive", l.QuadLen)
	}
	if l.DriftLen < 0 {
		return fmt.Errorf("beam: drift length %g must be non-negative", l.DriftLen)
	}
	if l.Strength <= 0 {
		return fmt.Errorf("beam: quad strength %g must be positive", l.Strength)
	}
	return nil
}

// Kappa returns the horizontal focusing function kappa_x(s). The period
// starts at the center of the focusing quad so that, by symmetry, the
// matched envelope has a'(0) = b'(0) = 0 — the property the matched-
// envelope solver relies on.
//
// Layout over one period (F = focusing in x, D = defocusing in x):
//
//	[ F/2 ][ drift ][ D ][ drift ][ F/2 ]
func (l Lattice) Kappa(s float64) float64 {
	p := l.Period()
	s = math.Mod(s, p)
	if s < 0 {
		s += p
	}
	half := l.QuadLen / 2
	switch {
	case s < half: // first half of F quad
		return l.Strength
	case s < half+l.DriftLen: // drift
		return 0
	case s < half+l.DriftLen+l.QuadLen: // D quad
		return -l.Strength
	case s < half+2*l.DriftLen+l.QuadLen: // drift
		return 0
	default: // second half of F quad
		return l.Strength
	}
}

// NextBoundary returns the smallest segment boundary strictly greater
// than s. Segment boundaries are where Kappa is discontinuous; the
// envelope integrator splits its steps there so the RK4 stages never
// sample across a discontinuity, keeping the integration accuracy
// independent of step phase.
func (l Lattice) NextBoundary(s float64) float64 {
	p := l.Period()
	base := math.Floor(s/p) * p
	local := s - base
	half := l.QuadLen / 2
	boundaries := []float64{
		half,
		half + l.DriftLen,
		half + l.DriftLen + l.QuadLen,
		half + 2*l.DriftLen + l.QuadLen,
		p,
	}
	const tiny = 1e-12
	for _, b := range boundaries {
		if b > local+tiny {
			return base + b
		}
	}
	return base + p + half
}

// PhaseAdvance returns the zero-current phase advance per period, in
// radians, computed from the 2x2 transfer matrix of the horizontal
// plane. It is the standard design parameter for a FODO channel
// (stable for 0 < sigma0 < pi) and is used by tests to confirm the
// channel is in the operating regime of the paper's simulations.
func (l Lattice) PhaseAdvance() (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	// Multiply the thick-lens transfer matrices across one period.
	m := [2][2]float64{{1, 0}, {0, 1}}
	mul := func(a, b [2][2]float64) [2][2]float64 {
		return [2][2]float64{
			{a[0][0]*b[0][0] + a[0][1]*b[1][0], a[0][0]*b[0][1] + a[0][1]*b[1][1]},
			{a[1][0]*b[0][0] + a[1][1]*b[1][0], a[1][0]*b[0][1] + a[1][1]*b[1][1]},
		}
	}
	focus := func(k, length float64) [2][2]float64 {
		if k > 0 {
			w := math.Sqrt(k)
			return [2][2]float64{
				{math.Cos(w * length), math.Sin(w*length) / w},
				{-w * math.Sin(w*length), math.Cos(w * length)},
			}
		}
		if k < 0 {
			w := math.Sqrt(-k)
			return [2][2]float64{
				{math.Cosh(w * length), math.Sinh(w*length) / w},
				{w * math.Sinh(w*length), math.Cosh(w * length)},
			}
		}
		return [2][2]float64{{1, length}, {0, 1}}
	}
	segs := []struct{ k, l float64 }{
		{l.Strength, l.QuadLen / 2},
		{0, l.DriftLen},
		{-l.Strength, l.QuadLen},
		{0, l.DriftLen},
		{l.Strength, l.QuadLen / 2},
	}
	for _, s := range segs {
		m = mul(focus(s.k, s.l), m)
	}
	tr := m[0][0] + m[1][1]
	if math.Abs(tr) >= 2 {
		return 0, fmt.Errorf("beam: lattice unstable (|trace| = %g >= 2)", math.Abs(tr))
	}
	return math.Acos(tr / 2), nil
}
