package sos

import (
	"math"
	"testing"

	"repro/internal/fieldline"
	"repro/internal/hybrid"
	"repro/internal/render"
	"repro/internal/vec"
)

// helix returns a helical field line with n points.
func helix(n int) *fieldline.Line {
	l := &fieldline.Line{}
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1) * 4 * math.Pi
		p := vec.New(math.Cos(t), math.Sin(t), t/8)
		tang := vec.New(-math.Sin(t), math.Cos(t), 1.0/8).Norm()
		l.Points = append(l.Points, p)
		l.Tangents = append(l.Tangents, tang)
		l.Strengths = append(l.Strengths, 1+math.Sin(t/2))
	}
	return l
}

func straightLine(n int) *fieldline.Line {
	l := &fieldline.Line{}
	for i := 0; i < n; i++ {
		l.Points = append(l.Points, vec.New(float64(i)*0.1, 0, 0))
		l.Tangents = append(l.Tangents, vec.New(1, 0, 0))
		l.Strengths = append(l.Strengths, 2)
	}
	return l
}

func testCam(t *testing.T) render.Camera {
	t.Helper()
	cam, err := render.NewCamera(vec.New(0, 0, 8), vec.New(0, 0, 0), vec.New(0, 1, 0),
		math.Pi/3, 1, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	return cam
}

func TestBuildStripVertexCount(t *testing.T) {
	line := helix(20)
	verts := BuildStrip(line, vec.New(0, 0, 8), StripParams{Width: 0.1, Color: hybrid.RGBA{R: 1, A: 1}})
	if len(verts) != 40 {
		t.Fatalf("strip has %d vertices, want 40", len(verts))
	}
	// Degenerate lines produce nothing.
	if BuildStrip(&fieldline.Line{}, vec.New(0, 0, 8), StripParams{Width: 0.1}) != nil {
		t.Error("empty line produced vertices")
	}
}

func TestStripOrientsTowardViewer(t *testing.T) {
	// For every vertex pair, the across-strip direction must be
	// perpendicular to both the tangent and the view direction.
	line := helix(30)
	eye := vec.New(3, -2, 10)
	verts := BuildStrip(line, eye, StripParams{Width: 0.2, Color: hybrid.RGBA{A: 1}})
	for i := 0; i < len(verts); i += 2 {
		pt := line.Points[i/2]
		across := verts[i+1].Pos.Sub(verts[i].Pos).Norm()
		view := eye.Sub(pt).Norm()
		tang := line.Tangents[i/2]
		if math.Abs(across.Dot(view)) > 1e-9 {
			t.Fatalf("vertex %d: across-strip not perpendicular to view (dot %g)", i, across.Dot(view))
		}
		if math.Abs(across.Dot(tang)) > 1e-9 {
			t.Fatalf("vertex %d: across-strip not perpendicular to tangent (dot %g)", i, across.Dot(tang))
		}
	}
}

func TestStripWidth(t *testing.T) {
	line := straightLine(5)
	verts := BuildStrip(line, vec.New(0, 0, 8), StripParams{Width: 0.3, Color: hybrid.RGBA{A: 1}})
	for i := 0; i < len(verts); i += 2 {
		w := verts[i+1].Pos.Dist(verts[i].Pos)
		if math.Abs(w-0.3) > 1e-9 {
			t.Fatalf("strip width %g at sample %d, want 0.3", w, i/2)
		}
	}
}

func TestStripUVConvention(t *testing.T) {
	line := straightLine(4)
	verts := BuildStrip(line, vec.New(0, 0, 8), StripParams{Width: 0.1, Color: hybrid.RGBA{A: 1}})
	for i := 0; i < len(verts); i += 2 {
		if verts[i].UV[0] != -1 || verts[i+1].UV[0] != 1 {
			t.Fatalf("UV[0] convention broken at pair %d: %v / %v", i/2, verts[i].UV, verts[i+1].UV)
		}
		// Constant strength 2 equals the line max, so UV[1] = 1.
		if verts[i].UV[1] != 1 {
			t.Fatalf("UV[1] = %v, want 1", verts[i].UV[1])
		}
	}
}

func TestStripSideContinuity(t *testing.T) {
	// Along a smooth helix, consecutive side vectors must never flip.
	line := helix(100)
	verts := BuildStrip(line, vec.New(0, 0, 8), StripParams{Width: 0.1, Color: hybrid.RGBA{A: 1}})
	for i := 2; i < len(verts); i += 2 {
		prev := verts[i-1].Pos.Sub(verts[i-2].Pos)
		cur := verts[i+1].Pos.Sub(verts[i].Pos)
		if prev.Dot(cur) < 0 {
			t.Fatalf("side vector flipped at sample %d", i/2)
		}
	}
}

// The paper's compactness claim (C5): a self-orienting strip uses
// about 5-6x fewer triangles than a typical polygonal streamtube.
func TestSOSTriangleFactor(t *testing.T) {
	n := 50
	strip := StripTriangles(n)
	if strip != 98 {
		t.Fatalf("StripTriangles(50) = %d, want 98", strip)
	}
	for _, sides := range []int{5, 6} {
		tube := TubeTriangles(n, sides)
		factor := float64(tube) / float64(strip)
		if factor != float64(sides) {
			t.Errorf("triangle factor for %d-sided tube = %g, want %d", sides, factor, sides)
		}
	}
	// The generated geometry matches the formulas.
	line := helix(n)
	verts := BuildStrip(line, vec.New(0, 0, 8), StripParams{Width: 0.1, Color: hybrid.RGBA{A: 1}})
	gotStrip := len(verts) - 2
	if gotStrip != strip {
		t.Errorf("strip geometry yields %d triangles, formula says %d", gotStrip, strip)
	}
	tube := BuildTube(line, 0.05, 6, hybrid.RGBA{A: 1})
	if len(tube)/3 != TubeTriangles(n, 6) {
		t.Errorf("tube geometry yields %d triangles, formula says %d", len(tube)/3, TubeTriangles(n, 6))
	}
}

func TestTubeNormalsPointOutward(t *testing.T) {
	line := straightLine(10)
	tube := BuildTube(line, 0.2, 8, hybrid.RGBA{A: 1})
	for i, v := range tube {
		// For a straight x-axis tube, normals must be perpendicular to x.
		if math.Abs(v.N.X) > 1e-9 {
			t.Fatalf("vertex %d normal %v not perpendicular to tube axis", i, v.N)
		}
		if math.Abs(v.N.Len()-1) > 1e-9 {
			t.Fatalf("vertex %d normal not unit: %v", i, v.N)
		}
	}
}

func TestSortByDepthBackToFront(t *testing.T) {
	near := straightLine(5) // at z=0
	farLine := &fieldline.Line{}
	for i := 0; i < 5; i++ {
		farLine.Points = append(farLine.Points, vec.New(float64(i)*0.1, 0, -5))
		farLine.Tangents = append(farLine.Tangents, vec.New(1, 0, 0))
		farLine.Strengths = append(farLine.Strengths, 1)
	}
	eye := vec.New(0, 0, 8)
	order := SortByDepth([]*fieldline.Line{near, farLine}, eye)
	if order[0] != 1 || order[1] != 0 {
		t.Errorf("depth order %v, want far line first", order)
	}
}

func TestClipLines(t *testing.T) {
	line := straightLine(10) // x from 0 to 0.9
	// Cut away x > 0.45.
	clipped := ClipLines([]*fieldline.Line{line}, vec.New(1, 0, 0), 0.45)
	if len(clipped) != 1 {
		t.Fatalf("clip produced %d lines, want 1", len(clipped))
	}
	for _, p := range clipped[0].Points {
		if p.X > 0.45 {
			t.Fatalf("point %v survived the cut", p)
		}
	}
	// Cutting through the middle of a line that re-enters produces
	// multiple segments.
	wave := &fieldline.Line{}
	for i := 0; i < 20; i++ {
		t := float64(i) * 0.5
		wave.Points = append(wave.Points, vec.New(math.Sin(t), 0, t))
		wave.Tangents = append(wave.Tangents, vec.New(math.Cos(t), 0, 1).Norm())
		wave.Strengths = append(wave.Strengths, 1)
	}
	parts := ClipLines([]*fieldline.Line{wave}, vec.New(1, 0, 0), 0.5)
	if len(parts) < 2 {
		t.Errorf("re-entrant line clipped into %d parts, want >= 2", len(parts))
	}
}

func TestRenderLinesAllTechniques(t *testing.T) {
	lines := []*fieldline.Line{helix(40), straightLine(20)}
	cam := testCam(t)
	for _, tech := range Techniques() {
		fb, err := render.NewFramebuffer(64, 64)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions(4)
		opts.CutNormal = vec.New(0, 0, 1)
		opts.CutOffset = 0.2
		opts.FocusCenter = vec.New(0, 0, 0)
		opts.FocusRadius = 1.5
		stats := RenderLines(fb, cam, lines, tech, opts)
		if stats.Technique != tech {
			t.Errorf("%v: wrong technique in stats", tech)
		}
		if fb.CoveredPixels(0.01) == 0 {
			t.Errorf("%v: rendered a black frame", tech)
		}
		switch tech {
		case TechLines, TechIlluminated, TechDense:
			if stats.Triangles != 0 {
				t.Errorf("%v: line technique drew %d triangles", tech, stats.Triangles)
			}
		default:
			if stats.Triangles == 0 {
				t.Errorf("%v: no triangles drawn", tech)
			}
		}
	}
}

// Fig 6 cost relation: streamtubes must draw ~TubeSides times the
// strip triangles for the same lines.
func TestStreamtubeCostExceedsSOS(t *testing.T) {
	lines := []*fieldline.Line{helix(60), helix(80)}
	cam := testCam(t)
	opts := DefaultOptions(4)
	fb1, _ := render.NewFramebuffer(64, 64)
	sosStats := RenderLines(fb1, cam, lines, TechSOS, opts)
	fb2, _ := render.NewFramebuffer(64, 64)
	tubeStats := RenderLines(fb2, cam, lines, TechStreamtubes, opts)
	ratio := float64(tubeStats.Triangles) / float64(sosStats.Triangles)
	if ratio < 5.5 || ratio > 6.5 {
		t.Errorf("tube/strip triangle ratio %.2f, want ~6 (6-sided tubes)", ratio)
	}
}

func TestCutawayDrawsFewerFragments(t *testing.T) {
	lines := []*fieldline.Line{helix(60), helix(80), straightLine(30)}
	cam := testCam(t)
	opts := DefaultOptions(4)
	opts.CutNormal = vec.New(0, 0, 1)
	opts.CutOffset = 0 // cut the front half (z > 0)
	fb1, _ := render.NewFramebuffer(64, 64)
	full := RenderLines(fb1, cam, lines, TechSOS, opts)
	fb2, _ := render.NewFramebuffer(64, 64)
	cut := RenderLines(fb2, cam, lines, TechCutaway, opts)
	if cut.Triangles >= full.Triangles {
		t.Errorf("cutaway drew %d triangles >= full %d", cut.Triangles, full.Triangles)
	}
}
