package sos

import (
	"testing"

	"repro/internal/fieldline"
	"repro/internal/render"
	"repro/internal/stats"
	"repro/internal/vec"
)

// The OIT transparent variant must produce nearly the same image as the
// depth-sorted transparent technique (both composite the same fragments
// back-to-front; OIT just does it per pixel at resolve time).
func TestOITMatchesSortedTransparency(t *testing.T) {
	set := []*fieldline.Line{helix(50), helix(70), straightLine(30)}
	cam := testCam(t)
	opts := DefaultOptions(4)
	opts.FocusCenter = vec.New(0, 0, 0)
	opts.FocusRadius = 1.2

	fbSorted, _ := render.NewFramebuffer(96, 96)
	RenderLines(fbSorted, cam, set, TechTransparent, opts)
	fbOIT, _ := render.NewFramebuffer(96, 96)
	RenderLines(fbOIT, cam, set, TechTransparentOIT, opts)

	rmse, err := stats.RMSE(fbSorted, fbOIT)
	if err != nil {
		t.Fatal(err)
	}
	// Per-line sorting is approximate (the paper's point); OIT is
	// exact, so small differences are expected — but the images must
	// agree closely.
	if rmse > 0.05 {
		t.Errorf("OIT and sorted transparency diverge: RMSE %.4f", rmse)
	}
	if fbOIT.CoveredPixels(0.01) == 0 {
		t.Error("OIT variant rendered nothing")
	}
}

func TestOITTechniqueInAllTechniques(t *testing.T) {
	all := AllTechniques()
	if len(all) != len(Techniques())+1 {
		t.Fatalf("AllTechniques has %d entries", len(all))
	}
	if all[len(all)-1] != TechTransparentOIT {
		t.Error("OIT technique missing from AllTechniques")
	}
	if TechTransparentOIT.String() != "transparent-oit" {
		t.Errorf("name = %q", TechTransparentOIT.String())
	}
}
