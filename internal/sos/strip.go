// Package sos implements self-orienting surfaces (§3.1, ref [12]): a
// compact, texture-enhanced representation for interactive
// visualization of 3-D vector fields. Each field line becomes a
// triangle strip built from its points and tangents that always
// orients toward the observer; a procedural "bump texture" (the
// render.TubeShader) reconstructs per-fragment tube normals so the
// flat strip shades exactly like a polygonal streamtube while using
// five to six times fewer triangles — the storage/rendering saving the
// paper quantifies.
package sos

import (
	"math"

	"repro/internal/fieldline"
	"repro/internal/hybrid"
	"repro/internal/render"
	"repro/internal/sortx"
	"repro/internal/vec"
)

// StripParams controls strip generation.
type StripParams struct {
	// Width is the full world-space width of the strip (the tube
	// diameter it emulates).
	Width float64
	// MaxStrength normalizes per-point field strength into UV[1]; 0
	// means use the line's own maximum.
	MaxStrength float64
	// Color is the base color; when ColorByStrength is set the color
	// map is evaluated at the normalized strength instead.
	Color           hybrid.RGBA
	ColorByStrength bool
	ColorMap        hybrid.ColorMap
	// AlphaByStrength modulates vertex alpha by normalized strength —
	// the Fig 10 "line opacity proportional to local field strength"
	// styling.
	AlphaByStrength bool
}

// BuildStrip converts one field line into a view-oriented triangle
// strip. For each sample, the strip extends half a width to each side
// along S = normalize(T x V), where T is the line tangent and V the
// direction to the eye — so the strip's plane always contains the view
// direction ("the triangle strip always orients toward the observer").
// UV[0] carries the across-strip coordinate in [-1, +1] (the tube
// profile parameter the shader consumes); UV[1] carries normalized
// field strength. Degenerate samples (tangent parallel to the view)
// reuse the previous side vector, keeping the strip continuous.
func BuildStrip(line *fieldline.Line, eye vec.V3, p StripParams) []render.Vertex {
	n := line.NumPoints()
	if n < 2 {
		return nil
	}
	maxS := p.MaxStrength
	if maxS <= 0 {
		maxS = line.MaxStrength()
	}
	if maxS == 0 {
		maxS = 1
	}
	verts := make([]render.Vertex, 0, 2*n)
	var prevSide vec.V3
	havePrev := false
	for i := 0; i < n; i++ {
		pt := line.Points[i]
		view := eye.Sub(pt).Norm()
		side := line.Tangents[i].Cross(view)
		if side.Len2() < 1e-16 {
			if !havePrev {
				side = line.Tangents[i].Perp()
			} else {
				side = prevSide
			}
		} else {
			side = side.Norm()
			// Keep side continuity: avoid sudden flips along the strip.
			if havePrev && side.Dot(prevSide) < 0 {
				side = side.Neg()
			}
		}
		prevSide, havePrev = side, true

		strength := line.Strengths[i] / maxS
		if strength > 1 {
			strength = 1
		}
		color := p.Color
		if p.ColorByStrength {
			color = p.ColorMap.Eval(strength)
		}
		if p.AlphaByStrength {
			color.A *= 0.15 + 0.85*strength
		}
		half := side.Scale(p.Width / 2)
		// The vertex normal slot carries the side vector for the tube
		// shader's normal reconstruction.
		verts = append(verts,
			render.Vertex{Pos: pt.Sub(half), N: side, UV: [2]float64{-1, strength}, Color: color},
			render.Vertex{Pos: pt.Add(half), N: side, UV: [2]float64{+1, strength}, Color: color},
		)
	}
	return verts
}

// StripTriangles returns the triangle count of the self-orienting
// strip for a line with n points: 2(n-1).
func StripTriangles(n int) int {
	if n < 2 {
		return 0
	}
	return 2 * (n - 1)
}

// TubeTriangles returns the triangle count of a conventional polygonal
// streamtube with the given number of cross-section sides for a line
// with n points: 2*sides*(n-1) (ignoring end caps). The paper's
// "about five to six times less" corresponds to the typical 5-6 sided
// tube tessellation.
func TubeTriangles(n, sides int) int {
	if n < 2 {
		return 0
	}
	return 2 * sides * (n - 1)
}

// BuildTube tessellates a conventional polygonal streamtube around the
// line — the Fig 6(c) baseline the strip representation is compared
// against. It returns a triangle list (not a strip) with outward
// normals for Phong shading. The cross-section frame is propagated
// along the line by parallel transport to avoid twisting.
func BuildTube(line *fieldline.Line, radius float64, sides int, color hybrid.RGBA) []render.Vertex {
	n := line.NumPoints()
	if n < 2 || sides < 3 {
		return nil
	}
	// Parallel-transport frames.
	normals := make([]vec.V3, n)
	binormals := make([]vec.V3, n)
	normals[0] = line.Tangents[0].Perp()
	binormals[0] = line.Tangents[0].Cross(normals[0]).Norm()
	for i := 1; i < n; i++ {
		t0, t1 := line.Tangents[i-1], line.Tangents[i]
		axis := t0.Cross(t1)
		if axis.Len2() < 1e-16 {
			normals[i] = normals[i-1]
		} else {
			// Rotate the previous normal by the angle between tangents.
			angle := math.Acos(clamp(t0.Dot(t1), -1, 1))
			normals[i] = rotateAround(normals[i-1], axis.Norm(), angle)
		}
		// Re-orthogonalize against accumulated error.
		normals[i] = normals[i].Sub(t1.Scale(normals[i].Dot(t1))).Norm()
		binormals[i] = t1.Cross(normals[i]).Norm()
	}

	ring := func(i, s int) render.Vertex {
		angle := 2 * math.Pi * float64(s) / float64(sides)
		dir := normals[i].Scale(math.Cos(angle)).Add(binormals[i].Scale(math.Sin(angle)))
		return render.Vertex{
			Pos:   line.Points[i].Add(dir.Scale(radius)),
			N:     dir,
			Color: color,
		}
	}
	var tris []render.Vertex
	for i := 0; i+1 < n; i++ {
		for s := 0; s < sides; s++ {
			a := ring(i, s)
			b := ring(i, (s+1)%sides)
			c := ring(i+1, s)
			d := ring(i+1, (s+1)%sides)
			tris = append(tris, a, b, c, b, d, c)
		}
	}
	return tris
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// rotateAround rotates v around the unit axis by angle (Rodrigues).
func rotateAround(v, axis vec.V3, angle float64) vec.V3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return v.Scale(c).
		Add(axis.Cross(v).Scale(s)).
		Add(axis.Scale(axis.Dot(v) * (1 - c)))
}

// SortByDepth orders line indices back-to-front with respect to the
// eye using each line's midpoint — the compositing order transparency
// rendering needs. (The paper notes full depth sorting "is not
// practical for very large data" and points at hardware
// order-independent transparency; per-line midpoint sorting is the
// standard interactive approximation.)
func SortByDepth(lines []*fieldline.Line, eye vec.V3) []int {
	// Descending float keys sort ascending as uints; sortx is stable,
	// so equal-depth lines keep their input order, matching the
	// sort.SliceStable behavior this replaces.
	kv := make([]sortx.KV, len(lines))
	for i, l := range lines {
		var depth float64
		if l.NumPoints() > 0 {
			depth = eye.Dist(l.Points[l.NumPoints()/2])
		}
		kv[i] = sortx.KV{K: sortx.Float64KeyDesc(depth), V: int64(i)}
	}
	sortx.Pairs(kv, 0)
	order := make([]int, len(lines))
	for i := range kv {
		order[i] = int(kv[i].V)
	}
	return order
}

// ClipLines cuts away every line sample on the positive side of the
// plane (normal·p > offset), splitting lines as needed — the Fig 6(h)
// cutaway and the Fig 9 "front half of the mesh has been removed"
// view. Lines shorter than 2 points after clipping are dropped.
func ClipLines(lines []*fieldline.Line, normal vec.V3, offset float64) []*fieldline.Line {
	var out []*fieldline.Line
	n := normal.Norm()
	for _, l := range lines {
		var cur *fieldline.Line
		flush := func() {
			if cur != nil && cur.NumPoints() >= 2 {
				out = append(out, cur)
			}
			cur = nil
		}
		for i, p := range l.Points {
			if n.Dot(p) > offset {
				flush()
				continue
			}
			if cur == nil {
				cur = &fieldline.Line{}
			}
			cur.Points = append(cur.Points, p)
			cur.Tangents = append(cur.Tangents, l.Tangents[i])
			cur.Strengths = append(cur.Strengths, l.Strengths[i])
		}
		flush()
	}
	return out
}
