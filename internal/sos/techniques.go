package sos

import (
	"fmt"
	"time"

	"repro/internal/fieldline"
	"repro/internal/hybrid"
	"repro/internal/par"
	"repro/internal/render"
	"repro/internal/vec"
)

// Technique enumerates the nine field-line rendering modes of Fig 6.
type Technique int

// The Fig 6 rendering modes, in the paper's panel order.
const (
	TechLines       Technique = iota // (a) conventional line drawing
	TechIlluminated                  // (b) illuminated streamlines (ref [13])
	TechStreamtubes                  // (c) conventional polygonal streamtubes
	TechSOS                          // (d) self-orienting surfaces with tube shading
	TechRibbon                       // (e) compact textured ribbon, density by strength
	TechEnhanced                     // (f) SOS with enhanced (multi-light) lighting
	TechDense                        // (g) dense opaque lines
	TechCutaway                      // (h) cutaway of the dense set
	TechTransparent                  // (i) transparency-de-emphasized context

	// TechTransparentOIT is the §3.3.3 extension: the same focus+context
	// split resolved through an order-independent transparency buffer
	// (the GeForce 3 feature the paper proposes coupling with), with
	// bump mapping disabled as the paper notes it requires.
	TechTransparentOIT
)

// String implements fmt.Stringer.
func (t Technique) String() string {
	switch t {
	case TechLines:
		return "lines"
	case TechIlluminated:
		return "illuminated"
	case TechStreamtubes:
		return "streamtubes"
	case TechSOS:
		return "sos"
	case TechRibbon:
		return "ribbon"
	case TechEnhanced:
		return "enhanced"
	case TechDense:
		return "dense"
	case TechCutaway:
		return "cutaway"
	case TechTransparent:
		return "transparent"
	case TechTransparentOIT:
		return "transparent-oit"
	}
	return fmt.Sprintf("Technique(%d)", int(t))
}

// Techniques lists all nine modes in panel order.
func Techniques() []Technique {
	return []Technique{
		TechLines, TechIlluminated, TechStreamtubes, TechSOS, TechRibbon,
		TechEnhanced, TechDense, TechCutaway, TechTransparent,
	}
}

// AllTechniques additionally includes the order-independent
// transparency extension.
func AllTechniques() []Technique {
	return append(Techniques(), TechTransparentOIT)
}

// RenderOptions configures RenderLines.
type RenderOptions struct {
	Width       float64 // strip/tube world width
	TubeSides   int     // streamtube tessellation (default 6)
	HaloStart   float64 // SOS halo band start (0 disables)
	Color       hybrid.RGBA
	ColorMap    hybrid.ColorMap
	MaxStrength float64 // strength normalization across lines (0 = per line)
	// CutNormal/CutOffset define the cutaway plane for TechCutaway.
	CutNormal vec.V3
	CutOffset float64
	// FocusCenter/FocusRadius define the opaque region of interest for
	// TechTransparent; context outside is drawn semi-transparent.
	FocusCenter vec.V3
	FocusRadius float64
	// Workers bounds the tile-rasterizer parallelism (0 = auto). The
	// image is identical at every count.
	Workers int
}

// DefaultOptions returns sensible options for the given scene scale.
func DefaultOptions(sceneDiagonal float64) RenderOptions {
	return RenderOptions{
		Width:     sceneDiagonal / 150,
		TubeSides: 6,
		HaloStart: 0.8,
		Color:     hybrid.RGBA{R: 0.35, G: 0.55, B: 1, A: 1},
		ColorMap:  hybrid.HeatMap(),
	}
}

// Stats reports what one RenderLines call cost — the numbers behind
// the Fig 6 technique comparison and the C5 triangle-count claim.
type Stats struct {
	Technique Technique
	Lines     int
	Triangles int64
	Fragments int64
	Elapsed   time.Duration
}

// RenderLines draws the given field lines with the selected technique
// and returns cost statistics. The light setup is a headlight plus,
// for TechEnhanced, two fill lights (the paper's "enhanced lighting ...
// carries no significant performance penalty over a single light
// source", which the stats let benchmarks verify).
func RenderLines(fb *render.Framebuffer, cam render.Camera, lines []*fieldline.Line,
	tech Technique, opts RenderOptions) Stats {

	start := time.Now()
	rast := render.NewRasterizer(fb, cam)
	rast.Workers = opts.Workers
	headlight := render.Light{Dir: cam.Eye.Norm(), Color: hybrid.RGBA{R: 1, G: 1, B: 1, A: 1}, Intensity: 1}
	lights := []render.Light{headlight}
	if tech == TechEnhanced {
		lights = append(lights,
			render.Light{Dir: vec.New(1, 2, 0.5).Norm(), Color: hybrid.RGBA{R: 0.9, G: 0.9, B: 1, A: 1}, Intensity: 0.5},
			render.Light{Dir: vec.New(-1, 0.5, -1).Norm(), Color: hybrid.RGBA{R: 1, G: 0.95, B: 0.8, A: 1}, Intensity: 0.35},
		)
	}
	mat := render.DefaultPhong()

	// buildStrips assembles strips concurrently (BuildStrip is a pure
	// function of one line) in the given submission order.
	buildStrips := func(ls []*fieldline.Line, order []int, params StripParams) [][]render.Vertex {
		strips := make([][]render.Vertex, len(order))
		par.For(len(order), opts.Workers, func(k int) {
			strips[k] = BuildStrip(ls[order[k]], cam.Eye, params)
		})
		return strips
	}

	drawStrips := func(ls []*fieldline.Line, shader render.Shader, params StripParams, blend render.BlendMode) {
		rast.Mode = blend
		rast.Shade = shader
		rast.DrawTriangleStripBatch(buildStrips(ls, SortByDepth(ls, cam.Eye), params))
	}

	switch tech {
	case TechLines, TechDense:
		var segs []render.LineSeg
		for _, l := range lines {
			for i := 1; i < l.NumPoints(); i++ {
				segs = append(segs, render.LineSeg{P0: l.Points[i-1], P1: l.Points[i], Width: 1, C0: opts.Color, C1: opts.Color})
			}
		}
		rast.DrawLineBatch(segs)

	case TechIlluminated:
		var segs []render.LineSeg
		for _, l := range lines {
			for i := 1; i < l.NumPoints(); i++ {
				c0 := render.IlluminatedLineColor(opts.Color, l.Tangents[i-1], headlight.Dir, cam.ViewDir(l.Points[i-1]), mat)
				c1 := render.IlluminatedLineColor(opts.Color, l.Tangents[i], headlight.Dir, cam.ViewDir(l.Points[i]), mat)
				segs = append(segs, render.LineSeg{P0: l.Points[i-1], P1: l.Points[i], Width: 1, C0: c0, C1: c1})
			}
		}
		rast.DrawLineBatch(segs)

	case TechStreamtubes:
		rast.Shade = render.PhongShader(lights, mat)
		tubes := make([][]render.Vertex, len(lines))
		par.For(len(lines), opts.Workers, func(i int) {
			tubes[i] = BuildTube(lines[i], opts.Width/2, opts.TubeSides, opts.Color)
		})
		batch := rast.NewBatch()
		for _, tube := range tubes {
			for i := 0; i+2 < len(tube); i += 3 {
				batch.Triangle(tube[i], tube[i+1], tube[i+2])
			}
		}
		batch.Flush()

	case TechSOS, TechEnhanced:
		drawStrips(lines, render.TubeShader(lights, mat, opts.HaloStart),
			StripParams{Width: opts.Width, MaxStrength: opts.MaxStrength, Color: opts.Color},
			render.BlendOpaque)

	case TechRibbon:
		// Wider ribbons, fewer of them, with stripe density encoding
		// field strength (Fig 6(e)).
		drawStrips(lines, render.RibbonDensityShader(lights, mat, 5),
			StripParams{Width: opts.Width * 4, MaxStrength: opts.MaxStrength, Color: opts.Color},
			render.BlendOpaque)

	case TechCutaway:
		clipped := ClipLines(lines, opts.CutNormal, opts.CutOffset)
		drawStrips(clipped, render.TubeShader(lights, mat, opts.HaloStart),
			StripParams{Width: opts.Width, MaxStrength: opts.MaxStrength, Color: opts.Color},
			render.BlendOpaque)

	case TechTransparent, TechTransparentOIT:
		// Context (outside the focus region) drawn transparent; the
		// region of interest stays opaque. Per the paper, transparency
		// requires disabling the bump-map shading, so context strips use
		// plain Phong on the strip side vector. TechTransparent sorts
		// strips back-to-front; TechTransparentOIT instead resolves
		// unsorted fragments through an order-independent buffer.
		inFocus := func(l *fieldline.Line) bool {
			mid := l.Points[l.NumPoints()/2]
			return mid.Dist(opts.FocusCenter) < opts.FocusRadius
		}
		var focus, context []*fieldline.Line
		for _, l := range lines {
			if l.NumPoints() == 0 {
				continue
			}
			if inFocus(l) {
				focus = append(focus, l)
			} else {
				context = append(context, l)
			}
		}
		ctxColor := opts.Color
		ctxColor.A = 0.15
		// Opaque focus first so the transparent context can be
		// occlusion-tested against it.
		drawStrips(focus, render.TubeShader(lights, mat, opts.HaloStart),
			StripParams{Width: opts.Width, Color: opts.Color},
			render.BlendOpaque)
		if tech == TechTransparentOIT {
			oit := render.NewOITBuffer(fb.W, fb.H)
			oit.Workers = opts.Workers
			restore := rast.AttachOIT(oit)
			rast.Mode = render.BlendAlpha
			rast.Shade = render.PhongShader(lights, mat)
			// Submission order deliberately unsorted: correctness comes
			// from the resolve. The batched draw captures fragments into
			// per-tile OIT buckets concurrently.
			order := make([]int, len(context))
			for i := range order {
				order[i] = i
			}
			rast.DrawTriangleStripBatch(buildStrips(context, order,
				StripParams{Width: opts.Width, Color: ctxColor}))
			restore()
			oit.Resolve(fb)
		} else {
			rast.DepthWrite = false
			drawStrips(context, render.PhongShader(lights, mat),
				StripParams{Width: opts.Width, Color: ctxColor},
				render.BlendAlpha)
			rast.DepthWrite = true
		}
	}

	return Stats{
		Technique: tech,
		Lines:     len(lines),
		Triangles: rast.TriangleCount,
		Fragments: rast.FragmentCount,
		Elapsed:   time.Since(start),
	}
}
