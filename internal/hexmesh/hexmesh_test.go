package hexmesh

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func build3Cell(t *testing.T, res int) (*Mesh, CavityConfig) {
	t.Helper()
	cfg := DefaultCavity(res)
	m, err := BuildCavity(cfg)
	if err != nil {
		t.Fatalf("BuildCavity: %v", err)
	}
	return m, cfg
}

func TestCavityValidate(t *testing.T) {
	good := DefaultCavity(8)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := good
	bad.Cells = 0
	if bad.Validate() == nil {
		t.Error("accepted zero cells")
	}
	bad = good
	bad.IrisRadius = 2 // > cell radius
	if bad.Validate() == nil {
		t.Error("accepted iris >= cavity radius")
	}
	bad = good
	bad.CellsPerRadius = 2
	if bad.Validate() == nil {
		t.Error("accepted hopeless resolution")
	}
	bad = good
	bad.InputPort = &PortSpec{Cell: 99, Width: 0.5, Height: 0.5}
	if bad.Validate() == nil {
		t.Error("accepted out-of-range port cell")
	}
}

func TestCavityHasElements(t *testing.T) {
	m, _ := build3Cell(t, 8)
	if m.NumElements() == 0 {
		t.Fatal("empty mesh")
	}
	// Sanity: fewer elements than the full lattice (conductor exists).
	if m.NumElements() >= m.Nx*m.Ny*m.Nz {
		t.Error("mesh fills entire lattice; no conductor present")
	}
}

func TestCavityGeometryRegions(t *testing.T) {
	m, cfg := build3Cell(t, 12)
	// Center of the middle cell is vacuum.
	mid := vec.New(0, 0, cfg.cellCenterZ(1))
	if !m.Inside(mid) {
		t.Error("center of middle cell not vacuum")
	}
	// On-axis inside the pipe is vacuum.
	if !m.Inside(vec.New(0, 0, cfg.PipeLength/2)) {
		t.Error("beam pipe not vacuum")
	}
	// Inside pipe wall (r > iris radius in the pipe region) is conductor.
	if m.Inside(vec.New(cfg.IrisRadius+0.1, 0, cfg.PipeLength/2)) {
		t.Error("pipe wall is vacuum")
	}
	// Corner of the cavity cell (r close to the wall) is vacuum.
	if !m.Inside(vec.New(cfg.CellRadius-3*m.Dx, 0, cfg.cellCenterZ(0))) {
		t.Error("cavity interior near wall not vacuum")
	}
	// Outside the cavity radius (no port in x direction) is conductor.
	if m.Inside(vec.New(cfg.CellRadius+0.05, 0, cfg.cellCenterZ(1))) {
		t.Error("beyond cavity wall is vacuum")
	}
	// Inside the iris wall between cells 0 and 1 at large radius: conductor.
	irisZ := cfg.PipeLength + cfg.CellLength + cfg.IrisThickness/2
	if m.Inside(vec.New(cfg.IrisRadius+0.2, 0, irisZ)) {
		t.Error("iris wall is vacuum")
	}
	// On-axis through the iris: vacuum.
	if !m.Inside(vec.New(0, 0, irisZ)) {
		t.Error("iris aperture not vacuum")
	}
	// Input port channel above the first cell: vacuum.
	if !m.Inside(vec.New(0, cfg.CellRadius+cfg.PortLength/2, cfg.cellCenterZ(0))) {
		t.Error("input port channel not vacuum")
	}
	// No port above the middle cell: conductor.
	if m.Inside(vec.New(0, cfg.CellRadius+cfg.PortLength/2, cfg.cellCenterZ(1))) {
		t.Error("phantom port above middle cell")
	}
}

func TestLocateMatchesElementCenters(t *testing.T) {
	m, _ := build3Cell(t, 8)
	for i := 0; i < m.NumElements(); i += 53 {
		e := &m.Elements[i]
		if got := m.Locate(e.Center); got != i {
			t.Fatalf("Locate(center of %d) = %d", i, got)
		}
	}
	if m.Locate(vec.New(100, 100, 100)) != -1 {
		t.Error("located a far-outside point")
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	m, _ := build3Cell(t, 8)
	for e := 0; e < m.NumElements(); e += 101 {
		m.Neighbors6(e, func(n int) {
			found := false
			m.Neighbors6(n, func(back int) {
				if back == e {
					found = true
				}
			})
			if !found {
				t.Fatalf("neighbor relation not symmetric between %d and %d", e, n)
			}
		})
	}
}

func TestSurfaceElements(t *testing.T) {
	m, cfg := build3Cell(t, 10)
	// An element near the cavity wall must be a surface element; one on
	// the axis in the middle of a cell must not.
	wallIdx := m.Locate(vec.New(cfg.CellRadius-m.Dx/2, 0, cfg.cellCenterZ(1)))
	if wallIdx < 0 {
		t.Fatal("no element near wall")
	}
	if !m.SurfaceElement(wallIdx) {
		t.Error("wall-adjacent element not marked surface")
	}
	axisIdx := m.Locate(vec.New(0, 0, cfg.cellCenterZ(1)))
	if axisIdx < 0 {
		t.Fatal("no element on axis")
	}
	if m.SurfaceElement(axisIdx) {
		t.Error("axis element marked surface")
	}
}

func TestElementVolumesSumToVacuum(t *testing.T) {
	m, _ := build3Cell(t, 8)
	var sum float64
	for i := range m.Elements {
		sum += m.Elements[i].Volume()
	}
	if sum <= 0 || sum >= m.Bounds.Volume() {
		t.Errorf("vacuum volume %g outside (0, domain %g)", sum, m.Bounds.Volume())
	}
	// Each element volume is the lattice cell volume.
	want := m.Dx * m.Dy * m.Dz
	if got := m.Elements[0].Volume(); math.Abs(got-want) > 1e-12*want {
		t.Errorf("element volume %g, want %g", got, want)
	}
}

func TestElementCountScalesWithResolution(t *testing.T) {
	m8, _ := build3Cell(t, 8)
	m16, _ := build3Cell(t, 16)
	ratio := float64(m16.NumElements()) / float64(m8.NumElements())
	if ratio < 6 || ratio > 10 {
		t.Errorf("element count ratio %g for 2x resolution, want ~8", ratio)
	}
}

func TestTwelveCellLongerThanThree(t *testing.T) {
	c3 := DefaultCavity(8)
	c12 := TwelveCellCavity(8, 0.2)
	if c12.TotalLength() <= c3.TotalLength() {
		t.Error("12-cell structure not longer than 3-cell")
	}
	m, err := BuildCavity(c12)
	if err != nil {
		t.Fatalf("BuildCavity(12): %v", err)
	}
	if m.NumElements() == 0 {
		t.Fatal("empty 12-cell mesh")
	}
}

func TestPortAsymmetryShrinksBottomPort(t *testing.T) {
	cfg := TwelveCellCavity(10, 0.4)
	m, err := BuildCavity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count vacuum elements in the top and bottom port channels of the
	// input cell.
	zc := cfg.cellCenterZ(cfg.InputPort.Cell)
	top, bottom := 0, 0
	y := cfg.CellRadius + cfg.PortLength/2
	for x := -cfg.CellRadius; x <= cfg.CellRadius; x += m.Dx / 2 {
		if m.Inside(vec.New(x, y, zc)) {
			top++
		}
		if m.Inside(vec.New(x, -y, zc)) {
			bottom++
		}
	}
	if bottom >= top {
		t.Errorf("bottom port (%d samples) not narrower than top (%d)", bottom, top)
	}
}

func TestPortMouth(t *testing.T) {
	m, cfg := build3Cell(t, 10)
	iLo, iHi, kLo, kHi, j, ok := PortMouth(m, cfg, cfg.InputPort, true)
	if !ok {
		t.Fatal("input port mouth not found")
	}
	if iLo >= iHi || kLo >= kHi {
		t.Errorf("degenerate mouth rectangle [%d,%d)x[%d,%d)", iLo, iHi, kLo, kHi)
	}
	// The mouth row must contain vacuum.
	if m.ElementIndexAt((iLo+iHi)/2, j, (kLo+kHi)/2) < 0 {
		t.Error("mouth center is not vacuum")
	}
	if _, _, _, _, _, ok := PortMouth(m, cfg, nil, true); ok {
		t.Error("nil port reported a mouth")
	}
}

func TestMinSpacing(t *testing.T) {
	m, _ := build3Cell(t, 8)
	if m.MinSpacing() <= 0 {
		t.Error("non-positive spacing")
	}
	if m.MinSpacing() > m.Dx+1e-15 {
		t.Errorf("MinSpacing %g > Dx %g", m.MinSpacing(), m.Dx)
	}
}
