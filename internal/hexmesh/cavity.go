package hexmesh

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// PortSpec describes one rectangular waveguide port pair attached to
// the side walls (+y and -y) of a cavity cell — the coupling structure
// through which "power flows in from the top and bottom through input
// ports" (Fig 9).
type PortSpec struct {
	Cell   int     // which cavity cell the port couples to (0-based)
	Width  float64 // port extent along x
	Height float64 // port extent along z
	// Asymmetry shrinks the -y (bottom) port width by this relative
	// factor. The paper's Fig 9 discussion: "the radial asymmetry in
	// the geometry of the ports causes asymmetry in the electric
	// field"; setting this non-zero reproduces that study.
	Asymmetry float64
}

// CavityConfig describes an n-cell linear accelerator structure: a
// chain of cylindrical cavity cells joined by iris apertures, beam
// pipes on both ends, and waveguide port pairs for power in/out.
type CavityConfig struct {
	Cells         int     // number of accelerating cells (3 for Fig 6-8, 12 for Fig 9)
	CellRadius    float64 // cavity radius
	CellLength    float64 // cavity length along the beam (z) axis
	IrisRadius    float64 // aperture between cells
	IrisThickness float64 // wall thickness between cells
	PipeLength    float64 // beam pipe length on each end
	PortLength    float64 // how far ports extend beyond the cavity wall in y

	// CellsPerRadius sets the lattice resolution: lattice spacing is
	// CellRadius / CellsPerRadius in every direction.
	CellsPerRadius int

	InputPort  *PortSpec // nil for no input port
	OutputPort *PortSpec // nil for no output port
}

// DefaultCavity returns the 3-cell structure of Figs 6-8 at the given
// lattice resolution.
func DefaultCavity(cellsPerRadius int) CavityConfig {
	cfg := CavityConfig{
		Cells:          3,
		CellRadius:     1.0,
		CellLength:     0.8,
		IrisRadius:     0.35,
		IrisThickness:  0.15,
		PipeLength:     0.5,
		PortLength:     0.6,
		CellsPerRadius: cellsPerRadius,
	}
	cfg.InputPort = &PortSpec{Cell: 0, Width: 0.7, Height: 0.5}
	cfg.OutputPort = &PortSpec{Cell: 2, Width: 0.7, Height: 0.5}
	return cfg
}

// TwelveCellCavity returns the 12-cell structure of Fig 9, with the
// asymmetric ports the paper attributes the field asymmetry to.
func TwelveCellCavity(cellsPerRadius int, asymmetry float64) CavityConfig {
	cfg := DefaultCavity(cellsPerRadius)
	cfg.Cells = 12
	cfg.InputPort = &PortSpec{Cell: 0, Width: 0.7, Height: 0.5, Asymmetry: asymmetry}
	cfg.OutputPort = &PortSpec{Cell: 11, Width: 0.7, Height: 0.5, Asymmetry: asymmetry}
	return cfg
}

// Validate reports the first problem with the configuration.
func (c CavityConfig) Validate() error {
	if c.Cells < 1 {
		return fmt.Errorf("hexmesh: cavity needs >= 1 cell, got %d", c.Cells)
	}
	if c.CellRadius <= 0 || c.CellLength <= 0 {
		return fmt.Errorf("hexmesh: cell radius/length must be positive")
	}
	if c.IrisRadius <= 0 || c.IrisRadius >= c.CellRadius {
		return fmt.Errorf("hexmesh: iris radius %g must be in (0, cell radius)", c.IrisRadius)
	}
	if c.IrisThickness < 0 || c.PipeLength < 0 || c.PortLength < 0 {
		return fmt.Errorf("hexmesh: negative geometry length")
	}
	if c.CellsPerRadius < 4 {
		return fmt.Errorf("hexmesh: resolution %d cells/radius too coarse (need >= 4)", c.CellsPerRadius)
	}
	for _, p := range []*PortSpec{c.InputPort, c.OutputPort} {
		if p == nil {
			continue
		}
		if p.Cell < 0 || p.Cell >= c.Cells {
			return fmt.Errorf("hexmesh: port cell %d out of range [0,%d)", p.Cell, c.Cells)
		}
		if p.Width <= 0 || p.Height <= 0 {
			return fmt.Errorf("hexmesh: port dimensions must be positive")
		}
		if p.Asymmetry < 0 || p.Asymmetry >= 1 {
			return fmt.Errorf("hexmesh: port asymmetry %g outside [0,1)", p.Asymmetry)
		}
	}
	return nil
}

// cellPitch is the z length of one cavity cell plus its downstream iris.
func (c CavityConfig) cellPitch() float64 { return c.CellLength + c.IrisThickness }

// TotalLength returns the full z extent of the structure.
func (c CavityConfig) TotalLength() float64 {
	return 2*c.PipeLength + float64(c.Cells)*c.CellLength + float64(c.Cells-1)*c.IrisThickness
}

// cellCenterZ returns the z coordinate of the center of cavity cell i.
func (c CavityConfig) cellCenterZ(i int) float64 {
	return c.PipeLength + float64(i)*c.cellPitch() + c.CellLength/2
}

// insideVacuum reports whether the world point p is inside the vacuum
// region of the structure.
func (c CavityConfig) insideVacuum(p vec.V3) bool {
	z := p.Z
	r := math.Hypot(p.X, p.Y)
	total := c.TotalLength()
	if z < 0 || z > total {
		return false
	}
	// Beam pipes.
	if z < c.PipeLength || z > total-c.PipeLength {
		return r < c.IrisRadius
	}
	// Which cell or iris?
	local := z - c.PipeLength
	pitch := c.cellPitch()
	cell := int(local / pitch)
	if cell >= c.Cells {
		cell = c.Cells - 1
	}
	within := local - float64(cell)*pitch
	inCavity := within < c.CellLength
	if inCavity && r < c.CellRadius {
		return true
	}
	if !inCavity && r < c.IrisRadius {
		return true // iris aperture
	}
	// Port channels extend beyond the cavity wall in +/-y.
	for _, port := range []*PortSpec{c.InputPort, c.OutputPort} {
		if port == nil {
			continue
		}
		zc := c.cellCenterZ(port.Cell)
		if math.Abs(z-zc) > port.Height/2 {
			continue
		}
		wTop := port.Width
		wBot := port.Width * (1 - port.Asymmetry)
		yMax := c.CellRadius + c.PortLength
		if p.Y > 0 && p.Y < yMax && math.Abs(p.X) < wTop/2 {
			return true
		}
		if p.Y < 0 && p.Y > -yMax && math.Abs(p.X) < wBot/2 {
			return true
		}
	}
	return false
}

// BuildCavity meshes the structure with axis-aligned hexahedra at the
// configured resolution.
func BuildCavity(cfg CavityConfig) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.CellRadius / float64(cfg.CellsPerRadius)
	yMax := cfg.CellRadius
	if cfg.InputPort != nil || cfg.OutputPort != nil {
		yMax = cfg.CellRadius + cfg.PortLength
	}
	total := cfg.TotalLength()
	// Even cell counts centered on the beam axis keep the voxel
	// staircase mirror-symmetric in x and y — without this, symmetric
	// geometry meshes asymmetrically and the resonant fields inherit a
	// spurious up/down imbalance.
	evenCeil := func(x float64) int {
		n := int(math.Ceil(x))
		if n%2 != 0 {
			n++
		}
		return n
	}
	nx := evenCeil(2 * cfg.CellRadius / d)
	ny := evenCeil(2 * yMax / d)
	nz := int(math.Ceil(total / d))
	bounds := vec.Box(
		vec.New(-float64(nx)*d/2, -float64(ny)*d/2, 0),
		vec.New(float64(nx)*d/2, float64(ny)*d/2, float64(nz)*d),
	)
	m, err := buildFromMask(bounds, nx, ny, nz, func(i, j, k int) bool {
		center := vec.New(
			bounds.Min.X+(float64(i)+0.5)*d,
			bounds.Min.Y+(float64(j)+0.5)*d,
			bounds.Min.Z+(float64(k)+0.5)*d,
		)
		return cfg.insideVacuum(center)
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// PortMouth returns the lattice-cell rectangle of the given port's
// mouth plane (at the far y extent), which is where the field solver
// applies its excitation and absorbing boundary. top selects the +y
// mouth; the bool result reports whether the port exists.
func PortMouth(m *Mesh, cfg CavityConfig, port *PortSpec, top bool) (iLo, iHi, kLo, kHi, j int, ok bool) {
	if port == nil {
		return 0, 0, 0, 0, 0, false
	}
	w := port.Width
	if !top {
		w = port.Width * (1 - port.Asymmetry)
	}
	zc := cfg.cellCenterZ(port.Cell)
	iLo = int((-w/2 - m.Bounds.Min.X) / m.Dx)
	iHi = int((w/2 - m.Bounds.Min.X) / m.Dx)
	kLo = int((zc - port.Height/2 - m.Bounds.Min.Z) / m.Dz)
	kHi = int((zc + port.Height/2 - m.Bounds.Min.Z) / m.Dz)
	if top {
		j = m.Ny - 1
		// Walk down until the row actually contains vacuum.
		for j > 0 && m.ElementIndexAt((iLo+iHi)/2, j, (kLo+kHi)/2) < 0 {
			j--
		}
	} else {
		j = 0
		for j < m.Ny-1 && m.ElementIndexAt((iLo+iHi)/2, j, (kLo+kHi)/2) < 0 {
			j++
		}
	}
	return iLo, iHi, kLo, kHi, j, true
}
