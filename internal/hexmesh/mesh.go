// Package hexmesh provides the unstructured hexahedral meshes that the
// electromagnetic solver and the field-line seeding strategy operate
// on — the mesh model of SLAC's Tau3P code (ref [16]), which solves the
// time-domain Maxwell equations "using unstructured hexahedral meshes".
//
// The meshes built here describe multi-cell linear-accelerator
// structures: a chain of pillbox-like cavity cells joined by a beam
// pipe, with rectangular waveguide ports on the side walls for power
// in/out (the "open structures" whose reflection and transmission the
// paper's simulations model, and whose port asymmetry Fig 9
// visualizes). Geometrically they are voxelizations — structured
// hexahedra are a special case of unstructured ones — but the package
// stores full element connectivity, volumes and adjacency so every
// algorithm downstream (seeding, integration, storage accounting)
// works exactly as it would on a general Tau3P mesh.
package hexmesh

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Element is one hexahedral cell of the mesh.
type Element struct {
	// Index triple of the cell in the generating lattice.
	I, J, K int
	// Center and per-axis half-sizes; elements are axis-aligned boxes.
	Center vec.V3
	Half   vec.V3
}

// Bounds returns the element's bounding box (exact for these
// axis-aligned hexahedra).
func (e *Element) Bounds() vec.AABB {
	return vec.Box(e.Center.Sub(e.Half), e.Center.Add(e.Half))
}

// Volume returns the element volume.
func (e *Element) Volume() float64 { return 8 * e.Half.X * e.Half.Y * e.Half.Z }

// Mesh is an unstructured hexahedral mesh: a set of elements with a
// uniform-lattice spatial index for point location. Elements exist
// only where the accelerator structure is hollow (vacuum); the
// surrounding conductor is simply absent from the element list.
type Mesh struct {
	Bounds     vec.AABB
	Nx, Ny, Nz int     // generating lattice resolution
	Dx, Dy, Dz float64 // lattice spacing

	Elements []Element
	// index maps lattice cell -> element index + 1 (0 = no element).
	index []int32
}

// cellIndex returns the lattice index for (i, j, k).
func (m *Mesh) cellIndex(i, j, k int) int { return (k*m.Ny+j)*m.Nx + i }

// ElementAt returns the element covering lattice cell (i, j, k), or
// nil when the cell is conductor/outside.
func (m *Mesh) ElementAt(i, j, k int) *Element {
	if i < 0 || i >= m.Nx || j < 0 || j >= m.Ny || k < 0 || k >= m.Nz {
		return nil
	}
	idx := m.index[m.cellIndex(i, j, k)]
	if idx == 0 {
		return nil
	}
	return &m.Elements[idx-1]
}

// ElementIndexAt is like ElementAt but returns the element's index in
// Elements, or -1.
func (m *Mesh) ElementIndexAt(i, j, k int) int {
	if i < 0 || i >= m.Nx || j < 0 || j >= m.Ny || k < 0 || k >= m.Nz {
		return -1
	}
	return int(m.index[m.cellIndex(i, j, k)]) - 1
}

// Locate returns the index of the element containing world point p, or
// -1 when p is in conductor or outside the mesh.
func (m *Mesh) Locate(p vec.V3) int {
	if !m.Bounds.Contains(p) {
		return -1
	}
	i := int((p.X - m.Bounds.Min.X) / m.Dx)
	j := int((p.Y - m.Bounds.Min.Y) / m.Dy)
	k := int((p.Z - m.Bounds.Min.Z) / m.Dz)
	if i >= m.Nx {
		i = m.Nx - 1
	}
	if j >= m.Ny {
		j = m.Ny - 1
	}
	if k >= m.Nz {
		k = m.Nz - 1
	}
	return m.ElementIndexAt(i, j, k)
}

// Inside reports whether p lies in the vacuum region.
func (m *Mesh) Inside(p vec.V3) bool { return m.Locate(p) >= 0 }

// NumElements returns the element count — the "millions of mesh
// elements" scale figure the paper quotes for the 12-cell structure.
func (m *Mesh) NumElements() int { return len(m.Elements) }

// MinSpacing returns the smallest lattice spacing, which drives the
// Courant limit of the field solver.
func (m *Mesh) MinSpacing() float64 {
	return math.Min(m.Dx, math.Min(m.Dy, m.Dz))
}

// Neighbors6 calls fn with the element index of each of the six
// face-neighbors of element e that exist (vacuum on the other side of
// the face).
func (m *Mesh) Neighbors6(e int, fn func(n int)) {
	el := &m.Elements[e]
	deltas := [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	for _, d := range deltas {
		if n := m.ElementIndexAt(el.I+d[0], el.J+d[1], el.K+d[2]); n >= 0 {
			fn(n)
		}
	}
}

// SurfaceElement reports whether element e touches the conductor (has
// fewer than six vacuum neighbors) — where electric field lines
// originate and terminate ("electric field lines ... originate and
// terminate at the surface of the mesh").
func (m *Mesh) SurfaceElement(e int) bool {
	count := 0
	m.Neighbors6(e, func(int) { count++ })
	return count < 6
}

// BuildBox meshes a solid rectangular vacuum region — no conductor at
// all. It is used by tests and by synthetic-field experiments that
// need a mesh without cavity geometry.
func BuildBox(bounds vec.AABB, nx, ny, nz int) (*Mesh, error) {
	return buildFromMask(bounds, nx, ny, nz, func(i, j, k int) bool { return true })
}

// RandomPointIn returns a deterministic pseudo-random point inside
// element e, mixing the provided 64-bit state with a splitmix step.
// Seeding uses it to "pick a random seed point within that element".
func (m *Mesh) RandomPointIn(e int, state *uint64) vec.V3 {
	next := func() float64 {
		*state += 0x9e3779b97f4a7c15
		z := *state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
	el := &m.Elements[e]
	return vec.New(
		el.Center.X+(next()*2-1)*el.Half.X,
		el.Center.Y+(next()*2-1)*el.Half.Y,
		el.Center.Z+(next()*2-1)*el.Half.Z,
	)
}

// buildFromMask constructs the mesh from a voxel occupancy mask.
func buildFromMask(bounds vec.AABB, nx, ny, nz int, inside func(i, j, k int) bool) (*Mesh, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("hexmesh: resolution %dx%dx%d invalid", nx, ny, nz)
	}
	size := bounds.Size()
	m := &Mesh{
		Bounds: bounds,
		Nx:     nx, Ny: ny, Nz: nz,
		Dx: size.X / float64(nx),
		Dy: size.Y / float64(ny),
		Dz: size.Z / float64(nz),
	}
	m.index = make([]int32, nx*ny*nz)
	half := vec.New(m.Dx/2, m.Dy/2, m.Dz/2)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if !inside(i, j, k) {
					continue
				}
				center := vec.New(
					bounds.Min.X+(float64(i)+0.5)*m.Dx,
					bounds.Min.Y+(float64(j)+0.5)*m.Dy,
					bounds.Min.Z+(float64(k)+0.5)*m.Dz,
				)
				m.Elements = append(m.Elements, Element{I: i, J: j, K: k, Center: center, Half: half})
				m.index[m.cellIndex(i, j, k)] = int32(len(m.Elements))
			}
		}
	}
	if len(m.Elements) == 0 {
		return nil, fmt.Errorf("hexmesh: geometry produced an empty mesh")
	}
	return m, nil
}
