package viewer

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/vec"
)

// makeFrames builds n small hybrid frames of roughly equal size.
func makeFrames(t *testing.T, n int) []*hybrid.Representation {
	t.Helper()
	frames := make([]*hybrid.Representation, n)
	for f := 0; f < n; f++ {
		rng := rand.New(rand.NewSource(int64(f + 1)))
		pts := make([]vec.V3, 2000)
		for i := range pts {
			pts[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		}
		tree, err := octree.Build(pts, octree.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: 8, Budget: 400})
		if err != nil {
			t.Fatal(err)
		}
		frames[f] = rep
	}
	return frames
}

func countingLoader(frames []*hybrid.Representation, loads *int64) Loader {
	return func(i int) (*hybrid.Representation, error) {
		if i < 0 || i >= len(frames) {
			return nil, fmt.Errorf("no frame %d", i)
		}
		atomic.AddInt64(loads, 1)
		return frames[i], nil
	}
}

func TestCacheValidation(t *testing.T) {
	ld := func(int) (*hybrid.Representation, error) { return nil, nil }
	if _, err := NewCache(0, 100, ld); err == nil {
		t.Error("accepted zero frames")
	}
	if _, err := NewCache(5, 0, ld); err == nil {
		t.Error("accepted zero budget")
	}
	if _, err := NewCache(5, 100, nil); err == nil {
		t.Error("accepted nil loader")
	}
}

func TestCacheHitAvoidsReload(t *testing.T) {
	frames := makeFrames(t, 3)
	var loads int64
	c, err := NewCache(3, 1<<30, countingLoader(frames, &loads))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Get(1); err != nil {
			t.Fatal(err)
		}
	}
	if loads != 1 {
		t.Errorf("frame loaded %d times, want 1", loads)
	}
	if st := c.Stats(); st.Hits != 9 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 9/1", st.Hits, st.Misses)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	frames := makeFrames(t, 4)
	size := frames[0].SizeBytes()
	var loads int64
	// Budget for roughly two frames.
	c, err := NewCache(4, 2*size+size/2, countingLoader(frames, &loads))
	if err != nil {
		t.Fatal(err)
	}
	mustGet := func(i int) {
		t.Helper()
		if _, err := c.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(0)
	mustGet(1)
	mustGet(2) // evicts 0
	if c.Cached(0) {
		t.Error("frame 0 not evicted")
	}
	if !c.Cached(1) || !c.Cached(2) {
		t.Error("recently used frames evicted")
	}
	// Touch 1 so 2 becomes LRU; loading 3 must now evict 2.
	mustGet(1)
	mustGet(3)
	if c.Cached(2) {
		t.Error("LRU order not respected")
	}
	if !c.Cached(1) {
		t.Error("recently touched frame evicted")
	}
	if c.UsedBytes() > 2*size+size/2 {
		t.Errorf("cache over budget: %d", c.UsedBytes())
	}
}

func TestCacheOversizedFrameNotRetained(t *testing.T) {
	frames := makeFrames(t, 1)
	var loads int64
	c, err := NewCache(1, 10, countingLoader(frames, &loads)) // tiny budget
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("oversized frame not returned")
	}
	if c.Cached(0) {
		t.Error("oversized frame retained")
	}
}

func TestCacheRangeCheck(t *testing.T) {
	frames := makeFrames(t, 2)
	var loads int64
	c, err := NewCache(2, 1<<30, countingLoader(frames, &loads))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := c.Get(2); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestPlayerSteppingAndClamping(t *testing.T) {
	frames := makeFrames(t, 5)
	var loads int64
	c, err := NewCache(5, 1<<30, countingLoader(frames, &loads))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlayer(c, 0)
	if _, err := p.Frame(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Step(2); err != nil {
		t.Fatal(err)
	}
	if p.Current() != 2 {
		t.Errorf("current = %d, want 2", p.Current())
	}
	if _, err := p.Step(100); err != nil {
		t.Fatal(err)
	}
	if p.Current() != 4 {
		t.Errorf("clamped current = %d, want 4", p.Current())
	}
	if _, err := p.Step(-100); err != nil {
		t.Fatal(err)
	}
	if p.Current() != 0 {
		t.Errorf("clamped current = %d, want 0", p.Current())
	}
}

func TestPlayerPrefetchWarmsAhead(t *testing.T) {
	frames := makeFrames(t, 6)
	var loads int64
	c, err := NewCache(6, 1<<30, countingLoader(frames, &loads))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlayer(c, 2)
	if _, err := p.Frame(); err != nil { // current 0, warms 1 and 2
		t.Fatal(err)
	}
	p.Wait()
	if !c.Cached(1) || !c.Cached(2) {
		t.Error("prefetch did not warm the next frames")
	}
	// Stepping onto a prefetched frame is a cache hit.
	hitsBefore := c.Stats().Hits
	if _, err := p.Step(1); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if c.Stats().Hits <= hitsBefore {
		t.Error("stepping onto prefetched frame missed the cache")
	}
}

func TestPlayerPrefetchFollowsDirection(t *testing.T) {
	frames := makeFrames(t, 8)
	var loads int64
	c, err := NewCache(8, 1<<30, countingLoader(frames, &loads))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlayer(c, 1)
	if _, err := p.Step(4); err != nil { // at 4, forward: warms 5
		t.Fatal(err)
	}
	p.Wait()
	if !c.Cached(5) {
		t.Error("forward prefetch missing")
	}
	if _, err := p.Step(-1); err != nil { // at 3, backward: warms 2
		t.Fatal(err)
	}
	p.Wait()
	if !c.Cached(2) {
		t.Error("backward prefetch missing")
	}
}
