// Package viewer implements the frame-management layer of the paper's
// desktop viewing program (§2.5): hybrid frames are held in a
// byte-budgeted memory cache so that stepping through time steps with
// the keyboard redisplays cached frames "instantaneously" while evicted
// frames reload from disk (~10 s per 100 MB in the paper's setting),
// and a prefetcher warms the frames ahead of the current one in the
// stepping direction.
package viewer

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/hybrid"
)

// Loader fetches a frame by index — from disk, or over the network in
// the remote setting.
type Loader func(index int) (*hybrid.Representation, error)

// Cache is a byte-budgeted LRU cache of hybrid frames. It is safe for
// concurrent use (the prefetcher loads from a background goroutine).
type Cache struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	loader   Loader
	nFrames  int
	entries  map[int]*list.Element
	eviction *list.List // front = most recently used

	// Counters behind Stats, guarded by mu: cache hits display
	// instantly, misses pay the load (§2.5).
	hits   int64
	misses int64
}

// CacheStats is a consistent snapshot of the hit/miss counters.
type CacheStats struct {
	Hits   int64
	Misses int64
}

type cacheEntry struct {
	index int
	rep   *hybrid.Representation
	size  int64
}

// NewCache builds a cache over nFrames frames with the given byte
// budget.
func NewCache(nFrames int, budgetBytes int64, loader Loader) (*Cache, error) {
	if nFrames < 1 {
		return nil, fmt.Errorf("viewer: need at least one frame, got %d", nFrames)
	}
	if budgetBytes < 1 {
		return nil, fmt.Errorf("viewer: byte budget %d must be positive", budgetBytes)
	}
	if loader == nil {
		return nil, fmt.Errorf("viewer: nil loader")
	}
	return &Cache{
		budget:   budgetBytes,
		loader:   loader,
		nFrames:  nFrames,
		entries:  make(map[int]*list.Element),
		eviction: list.New(),
	}, nil
}

// NumFrames returns the frame count.
func (c *Cache) NumFrames() int { return c.nFrames }

// Stats returns the hit/miss counters. It is safe to call while the
// prefetcher loads concurrently.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses}
}

// UsedBytes returns the current cache occupancy.
func (c *Cache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Cached reports whether frame i is resident without touching LRU
// order.
func (c *Cache) Cached(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[i]
	return ok
}

// Get returns frame i, loading it on a miss and evicting
// least-recently-used frames to stay within budget. A frame larger
// than the whole budget is returned but not retained.
func (c *Cache) Get(i int) (*hybrid.Representation, error) {
	if i < 0 || i >= c.nFrames {
		return nil, fmt.Errorf("viewer: frame %d out of range [0,%d)", i, c.nFrames)
	}
	c.mu.Lock()
	if el, ok := c.entries[i]; ok {
		c.eviction.MoveToFront(el)
		c.hits++
		rep := el.Value.(*cacheEntry).rep
		c.mu.Unlock()
		return rep, nil
	}
	c.misses++
	c.mu.Unlock()

	// Load outside the lock so concurrent gets of different frames
	// overlap (the prefetcher relies on this).
	rep, err := c.loader(i)
	if err != nil {
		return nil, fmt.Errorf("viewer: loading frame %d: %w", i, err)
	}
	size := rep.SizeBytes()

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[i]; ok {
		// Someone else loaded it meanwhile; use theirs.
		c.eviction.MoveToFront(el)
		return el.Value.(*cacheEntry).rep, nil
	}
	if size > c.budget {
		return rep, nil // too large to retain
	}
	for c.used+size > c.budget && c.eviction.Len() > 0 {
		back := c.eviction.Back()
		entry := back.Value.(*cacheEntry)
		c.eviction.Remove(back)
		delete(c.entries, entry.index)
		c.used -= entry.size
	}
	el := c.eviction.PushFront(&cacheEntry{index: i, rep: rep, size: size})
	c.entries[i] = el
	c.used += size
	return rep, nil
}

// Player steps through frames like the paper's viewer ("the previewing
// program allows the user to step through frames using the keyboard"),
// prefetching ahead in the stepping direction.
type Player struct {
	cache    *Cache
	current  int
	dir      int // +1 forward, -1 backward
	prefetch int // how many frames to warm ahead

	wg sync.WaitGroup
}

// NewPlayer wraps a cache with stepping state. prefetch <= 0 disables
// prefetching.
func NewPlayer(cache *Cache, prefetch int) *Player {
	return &Player{cache: cache, dir: 1, prefetch: prefetch}
}

// Current returns the current frame index.
func (p *Player) Current() int { return p.current }

// Frame returns the current frame, loading if needed, and warms the
// frames ahead in the background.
func (p *Player) Frame() (*hybrid.Representation, error) {
	rep, err := p.cache.Get(p.current)
	if err != nil {
		return nil, err
	}
	for k := 1; k <= p.prefetch; k++ {
		next := p.current + k*p.dir
		if next < 0 || next >= p.cache.NumFrames() || p.cache.Cached(next) {
			continue
		}
		p.wg.Add(1)
		go func(i int) {
			defer p.wg.Done()
			_, _ = p.cache.Get(i) // best-effort warm-up
		}(next)
	}
	return rep, nil
}

// Step advances by delta frames (clamped) and records the stepping
// direction for the prefetcher. It returns the new current frame.
func (p *Player) Step(delta int) (*hybrid.Representation, error) {
	if delta > 0 {
		p.dir = 1
	} else if delta < 0 {
		p.dir = -1
	}
	next := p.current + delta
	if next < 0 {
		next = 0
	}
	if next >= p.cache.NumFrames() {
		next = p.cache.NumFrames() - 1
	}
	p.current = next
	return p.Frame()
}

// Wait blocks until outstanding prefetches complete (used by tests).
func (p *Player) Wait() { p.wg.Wait() }
