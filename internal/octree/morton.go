// Package octree implements the particle partitioner of §2.3 of the
// paper: unstructured particle data is organized into an octree whose
// subdivision is bounded by a maximal level; particles are grouped by
// leaf node, the groups are sorted in order of increasing node density,
// and each node records an offset and count into the reordered particle
// array. That layout is what makes the paper's extraction step a
// contiguous-prefix copy ("all particles required for any hybrid
// representation are in a contiguous block at the beginning of the
// file ... discarded particles are never read from disk").
//
// The build is the classic linear-octree construction: particles are
// assigned Morton codes at the maximal subdivision level, sorted, and
// the tree is carved top-down out of the sorted array, with each
// level's split points found by binary search. All heavy passes run in
// parallel chunks.
package octree

// MaxLevel is the deepest supported subdivision level: 21 levels of 3
// bits fit in a 63-bit Morton code.
const MaxLevel = 21

// spread3 spreads the low 21 bits of x so that bit i moves to bit 3i,
// leaving two zero bits between consecutive bits — the standard
// bit-twiddling kernel of 3-D Morton encoding.
func spread3(x uint64) uint64 {
	x &= 0x1fffff // 21 bits
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact3 inverts spread3.
func compact3(x uint64) uint64 {
	x &= 0x1249249249249249
	x = (x | x>>2) & 0x10c30c30c30c30c3
	x = (x | x>>4) & 0x100f00f00f00f00f
	x = (x | x>>8) & 0x1f0000ff0000ff
	x = (x | x>>16) & 0x1f00000000ffff
	x = (x | x>>32) & 0x1fffff
	return x
}

// Encode interleaves three 21-bit cell coordinates into a Morton code.
// Bit 0 of x lands in bit 0, bit 0 of y in bit 1, bit 0 of z in bit 2,
// matching the AABB.Octant child indexing (bit 0 = upper X half).
func Encode(x, y, z uint64) uint64 {
	return spread3(x) | spread3(y)<<1 | spread3(z)<<2
}

// Decode recovers the three cell coordinates from a Morton code.
func Decode(code uint64) (x, y, z uint64) {
	return compact3(code), compact3(code >> 1), compact3(code >> 2)
}

// childAt extracts the 3-bit child index of the given level from a
// code computed at maxLevel. Level 0's child bits are the most
// significant triple.
func childAt(code uint64, level, maxLevel int) int {
	shift := uint(3 * (maxLevel - 1 - level))
	return int(code >> shift & 7)
}
