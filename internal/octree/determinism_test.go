package octree

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/vec"
)

// TestBuildDeterministicAcrossWorkers pins the partitioner's central
// concurrency contract: the parallel carve, the radix scatter, and the
// density gather change only the wall clock — Build over the same
// points yields identical trees at every worker count.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	inputs := map[string][]vec.V3{
		// Enough points that the carve actually fans out (grain 4096).
		"gaussian-halo": randomPoints(60_000, 42),
		// Duplicate positions produce duplicate Morton codes, the case
		// where only a stable sort keeps the output worker-invariant.
		"duplicates": func() []vec.V3 {
			base := randomPoints(1_000, 43)
			pts := make([]vec.V3, 0, 30_000)
			for i := 0; i < 30_000; i++ {
				pts = append(pts, base[i%len(base)])
			}
			return pts
		}(),
	}
	for name, pts := range inputs {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Workers = 1
			ref, err := Build(pts, cfg)
			if err != nil {
				t.Fatalf("Build(workers=1): %v", err)
			}
			if err := ref.Validate(); err != nil {
				t.Fatalf("reference tree invalid: %v", err)
			}
			for _, w := range []int{2, runtime.NumCPU()} {
				cfg.Workers = w
				got, err := Build(pts, cfg)
				if err != nil {
					t.Fatalf("Build(workers=%d): %v", w, err)
				}
				if !reflect.DeepEqual(got.Nodes, ref.Nodes) {
					t.Errorf("workers=%d: Nodes differ from serial build", w)
				}
				if !reflect.DeepEqual(got.LeafOffsets, ref.LeafOffsets) {
					t.Errorf("workers=%d: LeafOffsets differ from serial build", w)
				}
				if !reflect.DeepEqual(got.LeavesByDensity, ref.LeavesByDensity) {
					t.Errorf("workers=%d: LeavesByDensity differ from serial build", w)
				}
				if !reflect.DeepEqual(got.OrigIndex, ref.OrigIndex) {
					t.Errorf("workers=%d: OrigIndex differs from serial build", w)
				}
				if !reflect.DeepEqual(got.Points, ref.Points) {
					t.Errorf("workers=%d: Points differ from serial build", w)
				}
			}
		})
	}
}
