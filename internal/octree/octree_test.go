package octree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestMortonRoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		xi := uint64(x) & 0x1fffff
		yi := uint64(y) & 0x1fffff
		zi := uint64(z) & 0x1fffff
		gx, gy, gz := Decode(Encode(xi, yi, zi))
		return gx == xi && gy == yi && gz == zi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMortonOrderingMatchesOctants(t *testing.T) {
	// The first 8 codes must equal the octant indices of the 2x2x2 grid.
	for z := uint64(0); z < 2; z++ {
		for y := uint64(0); y < 2; y++ {
			for x := uint64(0); x < 2; x++ {
				want := x | y<<1 | z<<2
				if got := Encode(x, y, z); got != want {
					t.Errorf("Encode(%d,%d,%d) = %d, want %d", x, y, z, got, want)
				}
			}
		}
	}
}

func TestChildAt(t *testing.T) {
	// Code for cell (3, 1, 0) at maxLevel 2: x=11b, y=01b, z=00b.
	code := Encode(3, 1, 0)
	// Level 0 child: top bits (x=1, y=0, z=0) -> 1.
	if got := childAt(code, 0, 2); got != 1 {
		t.Errorf("level-0 child = %d, want 1", got)
	}
	// Level 1 child: low bits (x=1, y=1, z=0) -> 3.
	if got := childAt(code, 1, 2); got != 3 {
		t.Errorf("level-1 child = %d, want 3", got)
	}
}

func randomPoints(n int, seed int64) []vec.V3 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.V3, n)
	for i := range pts {
		// A Gaussian ball plus a sparse uniform halo, mimicking the
		// core/halo structure of the beam data.
		if rng.Float64() < 0.9 {
			pts[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		} else {
			pts[i] = vec.New(
				(rng.Float64()*2-1)*8,
				(rng.Float64()*2-1)*8,
				(rng.Float64()*2-1)*8,
			)
		}
	}
	return pts
}

func TestBuildValidates(t *testing.T) {
	pts := randomPoints(20000, 1)
	tree, err := Build(pts, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildPreservesPoints(t *testing.T) {
	pts := randomPoints(5000, 2)
	tree, err := Build(pts, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(tree.Points) != len(pts) {
		t.Fatalf("tree has %d points, want %d", len(tree.Points), len(pts))
	}
	// Every original index appears exactly once and maps to its point.
	seen := make(map[int64]bool, len(pts))
	for i, oi := range tree.OrigIndex {
		if seen[oi] {
			t.Fatalf("original index %d appears twice", oi)
		}
		seen[oi] = true
		if tree.Points[i] != pts[oi] {
			t.Fatalf("reordered point %d does not match original %d", i, oi)
		}
	}
}

func TestBuildRespectsMaxLevel(t *testing.T) {
	pts := randomPoints(50000, 3)
	cfg := DefaultConfig()
	cfg.MaxLevel = 3
	cfg.LeafCap = 1 // force subdivision to the level cap
	tree, err := Build(pts, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d := tree.MaxDepth(); d > 3 {
		t.Errorf("depth %d exceeds max level 3", d)
	}
}

func TestBuildRespectsLeafCap(t *testing.T) {
	pts := randomPoints(20000, 4)
	cfg := DefaultConfig()
	cfg.MaxLevel = 12
	cfg.LeafCap = 32
	tree, err := Build(pts, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Leaves may exceed the cap only at the max level.
	for k := 0; k < tree.NumLeaves(); k++ {
		leaf := tree.Leaf(k)
		if leaf.Count > 32 && int(leaf.Level) < cfg.MaxLevel {
			t.Errorf("leaf at level %d holds %d points (cap 32) but is not at max level",
				leaf.Level, leaf.Count)
		}
	}
}

func TestLeafDensityOrdering(t *testing.T) {
	pts := randomPoints(30000, 5)
	tree, err := Build(pts, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	prev := math.Inf(-1)
	for k := 0; k < tree.NumLeaves(); k++ {
		d := tree.Leaf(k).Density
		if d < prev {
			t.Fatalf("leaf %d density %g < previous %g", k, d, prev)
		}
		prev = d
	}
}

// The paper's central storage property: for ANY threshold, the halo
// points form a contiguous prefix of the point array.
func TestExtractionPrefixProperty(t *testing.T) {
	pts := randomPoints(30000, 6)
	tree, err := Build(pts, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Collect all distinct leaf densities and probe thresholds around them.
	ds := []float64{0}
	for k := 0; k < tree.NumLeaves(); k++ {
		ds = append(ds, tree.Leaf(k).Density)
	}
	ds = append(ds, math.Inf(1))
	for _, threshold := range ds {
		cut := tree.CutLeaf(threshold)
		end := tree.LeafOffsets[cut]
		// Every point before end must come from a leaf below threshold;
		// every point after must not.
		for k := 0; k < tree.NumLeaves(); k++ {
			leaf := tree.Leaf(k)
			below := leaf.Density < threshold
			inPrefix := leaf.Offset < end
			if below != inPrefix {
				t.Fatalf("threshold %g: leaf %d (density %g, offset %d) prefix membership wrong",
					threshold, k, leaf.Density, leaf.Offset)
			}
		}
	}
}

func TestHaloCountMonotonic(t *testing.T) {
	pts := randomPoints(20000, 7)
	tree, err := Build(pts, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	prev := int64(-1)
	for _, th := range []float64{0, 0.001, 0.01, 0.1, 1, 10, 100, 1e6, math.Inf(1)} {
		c := tree.HaloCount(th)
		if c < prev {
			t.Fatalf("HaloCount(%g) = %d < previous %d", th, c, prev)
		}
		prev = c
	}
	if got := tree.HaloCount(math.Inf(1)); got != int64(len(pts)) {
		t.Errorf("HaloCount(inf) = %d, want all %d", got, len(pts))
	}
	if got := tree.HaloCount(0); got != 0 {
		t.Errorf("HaloCount(0) = %d, want 0", got)
	}
}

func TestHaloPointsComeFromSparseRegions(t *testing.T) {
	pts := randomPoints(50000, 8)
	tree, err := Build(pts, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Choose a threshold keeping ~10% of points.
	th := tree.ThresholdForBudget(int64(len(pts) / 10))
	refs := tree.HaloPoints(th)
	if len(refs) == 0 {
		t.Fatal("no halo points at 10% budget")
	}
	// Halo points should be far from the origin on average compared to
	// the full set (the Gaussian core is at the origin).
	var haloR, allR float64
	for _, r := range refs {
		haloR += tree.Points[r.Index].Len()
	}
	haloR /= float64(len(refs))
	for _, p := range pts {
		allR += p.Len()
	}
	allR /= float64(len(pts))
	if haloR <= allR {
		t.Errorf("mean halo radius %.2f <= mean radius %.2f; halo should be the sparse outskirts",
			haloR, allR)
	}
}

func TestThresholdForBudget(t *testing.T) {
	pts := randomPoints(30000, 9)
	tree, err := Build(pts, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, budget := range []int64{0, 1, 100, 5000, 29999, 30000} {
		th := tree.ThresholdForBudget(budget)
		if got := tree.HaloCount(th); got > budget {
			t.Errorf("budget %d: threshold %g keeps %d points", budget, th, got)
		}
	}
	// The full budget must admit every point.
	th := tree.ThresholdForBudget(int64(len(pts)))
	if got := tree.HaloCount(th); got != int64(len(pts)) {
		t.Errorf("full budget keeps %d of %d points", got, len(pts))
	}
}

func TestFindLeaf(t *testing.T) {
	pts := randomPoints(10000, 10)
	tree, err := Build(pts, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Every stored point must be found in a leaf whose group contains it.
	for i := 0; i < len(tree.Points); i += 97 {
		p := tree.Points[i]
		leaf := tree.FindLeaf(p)
		if leaf == nil {
			t.Fatalf("point %d not found in tree", i)
		}
		if !leaf.Bounds.Contains(p) {
			t.Fatalf("leaf bounds do not contain point %d", i)
		}
	}
	if tree.FindLeaf(vec.New(1e9, 0, 0)) != nil {
		t.Error("FindLeaf returned a leaf for a far-outside point")
	}
}

func TestBuildEmptyInput(t *testing.T) {
	if _, err := Build(nil, DefaultConfig()); err == nil {
		t.Error("Build accepted empty input")
	}
}

func TestBuildCoincidentPoints(t *testing.T) {
	pts := make([]vec.V3, 1000)
	for i := range pts {
		pts[i] = vec.New(1, 2, 3)
	}
	tree, err := Build(pts, DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.NumLeaves() != 1 {
		t.Errorf("coincident points spread over %d leaves", tree.NumLeaves())
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(), true},
		{"zero level", Config{MaxLevel: 0, LeafCap: 1}, false},
		{"too deep", Config{MaxLevel: 22, LeafCap: 1}, false},
		{"zero cap", Config{MaxLevel: 4, LeafCap: 0}, false},
		{"negative pad", Config{MaxLevel: 4, LeafCap: 1, Pad: -1}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// Property test: build on random inputs always yields a valid tree
// whose HaloCount at the median density matches a direct count.
func TestBuildPropertyRandom(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		n := int(n16%3000) + 1
		pts := randomPoints(n, seed)
		cfg := DefaultConfig()
		cfg.MaxLevel = 5
		tree, err := Build(pts, cfg)
		if err != nil {
			return false
		}
		if tree.Validate() != nil {
			return false
		}
		// Direct count must agree with the offset table.
		densities := make([]float64, tree.NumLeaves())
		for k := range densities {
			densities[k] = tree.Leaf(k).Density
		}
		if len(densities) == 0 {
			return false
		}
		sort.Float64s(densities)
		th := densities[len(densities)/2]
		var direct int64
		for k := 0; k < tree.NumLeaves(); k++ {
			if tree.Leaf(k).Density < th {
				direct += tree.Leaf(k).Count
			}
		}
		return direct == tree.HaloCount(th)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicBuild(t *testing.T) {
	pts := randomPoints(5000, 11)
	a, err1 := Build(pts, DefaultConfig())
	b, err2 := Build(pts, DefaultConfig())
	if err1 != nil || err2 != nil {
		t.Fatalf("Build: %v %v", err1, err2)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] || a.OrigIndex[i] != b.OrigIndex[i] {
			t.Fatalf("build not deterministic at point %d", i)
		}
	}
}

// §2.5: "the octree must be subdivided more finely where there is a
// high gradient ... If a higher level of subdivision is not used, the
// outline of the lowest level octree nodes will be visible at the
// boundary of the halo region." Deeper subdivision must shrink the
// cells that straddle the core/halo density boundary.
func TestDeeperSubdivisionRefinesHaloBoundary(t *testing.T) {
	pts := randomPoints(60000, 13)
	// The high-gradient region is the edge of the Gaussian core
	// (radius ~2); measure the mean leaf size there.
	boundaryCellSize := func(maxLevel int) float64 {
		cfg := DefaultConfig()
		cfg.MaxLevel = maxLevel
		cfg.LeafCap = 32
		tree, err := Build(pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		count := 0
		for k := 0; k < tree.NumLeaves(); k++ {
			leaf := tree.Leaf(k)
			r := leaf.Bounds.Center().Len()
			if r > 1.5 && r < 2.5 {
				sum += leaf.Bounds.Size().X
				count++
			}
		}
		if count == 0 {
			t.Fatal("no leaves in the core-edge shell")
		}
		return sum / float64(count)
	}
	coarse := boundaryCellSize(4)
	fine := boundaryCellSize(8)
	if fine >= coarse {
		t.Errorf("deeper octree did not refine the halo boundary: level 4 cells %.4f, level 8 cells %.4f",
			coarse, fine)
	}
}
