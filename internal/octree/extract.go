package octree

import "sort"

// CutLeaf returns the number of leading leaves (in density order) whose
// density is strictly below threshold. Everything before the cut is
// "halo" (kept as points by the extraction program); everything after
// is "core" (represented by the density volume).
func (t *Tree) CutLeaf(threshold float64) int {
	return sort.Search(len(t.LeavesByDensity), func(i int) bool {
		return t.Nodes[t.LeavesByDensity[i]].Density >= threshold
	})
}

// HaloPoints returns the points of all leaves with density below
// threshold. Because leaf groups are stored in increasing-density
// order, this is a zero-copy contiguous prefix of the point array —
// the property that makes the paper's extraction step pure sequential
// I/O with "no computation necessary for the particles" and discarded
// particles never read.
func (t *Tree) HaloPoints(threshold float64) []PointRef {
	cut := t.CutLeaf(threshold)
	end := t.LeafOffsets[cut]
	return t.refs(0, end)
}

// PointRef pairs a stored point with its leaf density and original
// particle index, the attributes the viewer's point transfer function
// and dynamic coloring need.
type PointRef struct {
	Index   int64   // position in Tree.Points
	Orig    int64   // index in the original particle array
	Density float64 // density of the owning leaf
}

// refs materializes PointRefs for Points[lo:hi].
func (t *Tree) refs(lo, hi int64) []PointRef {
	out := make([]PointRef, 0, hi-lo)
	// Walk leaf groups overlapping [lo,hi); groups are contiguous.
	for k := 0; k < len(t.LeavesByDensity); k++ {
		gLo, gHi := t.LeafOffsets[k], t.LeafOffsets[k+1]
		if gHi <= lo {
			continue
		}
		if gLo >= hi {
			break
		}
		d := t.Nodes[t.LeavesByDensity[k]].Density
		for i := max(gLo, lo); i < min(gHi, hi); i++ {
			out = append(out, PointRef{Index: i, Orig: t.OrigIndex[i], Density: d})
		}
	}
	return out
}

// HaloCount returns how many points an extraction at the given
// threshold would keep, without materializing them.
func (t *Tree) HaloCount(threshold float64) int64 {
	return t.LeafOffsets[t.CutLeaf(threshold)]
}

// ThresholdForBudget returns the largest leaf-density threshold whose
// extraction keeps at most budget points. This is how the viewer's
// "balance file size against visual accuracy" control (§2.3) is
// implemented: pick a byte budget, derive the density cut.
func (t *Tree) ThresholdForBudget(budget int64) float64 {
	if budget <= 0 {
		return 0
	}
	// Find the last leaf whose cumulative count fits the budget.
	k := sort.Search(len(t.LeavesByDensity), func(i int) bool {
		return t.LeafOffsets[i+1] > budget
	})
	if k == len(t.LeavesByDensity) {
		// Everything fits: any threshold above the max density.
		return t.Nodes[t.LeavesByDensity[k-1]].Density * 2
	}
	return t.Nodes[t.LeavesByDensity[k]].Density
}
