package octree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
	"repro/internal/sortx"
	"repro/internal/vec"
)

// NoChild marks a node without children (a leaf).
const NoChild = int32(-1)

// Node is one octree node. Children, when present, are eight
// consecutive entries starting at FirstChild, indexed by the
// AABB.Octant convention. Leaves own a contiguous group of the tree's
// reordered point array.
type Node struct {
	Bounds     vec.AABB
	FirstChild int32   // NoChild for leaves
	Level      uint8   // root is level 0
	Offset     int64   // leaf: start of its group in Tree.Points
	Count      int64   // number of points in this subtree (== group size for leaves)
	Density    float64 // Count / Bounds.Volume()
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.FirstChild == NoChild }

// Tree is a partitioned particle data set: the octree plus the particle
// positions reordered so that leaf groups are contiguous and ordered by
// increasing leaf density. OrigIndex maps each reordered point back to
// its index in the source data, so per-particle attributes (e.g. the
// other three phase-space coordinates) can be looked up after
// extraction.
type Tree struct {
	Bounds   vec.AABB
	MaxLevel int
	LeafCap  int // subdivision stops once a node holds <= LeafCap points

	Nodes     []Node
	Points    []vec.V3
	OrigIndex []int64

	// LeavesByDensity lists leaf node indices in increasing density
	// order; group k occupies Points[LeafOffsets[k]:LeafOffsets[k+1]].
	LeavesByDensity []int32
	LeafOffsets     []int64
}

// Config controls a partitioning run.
type Config struct {
	MaxLevel int // maximal subdivision level (paper §2.3); 1..MaxLevel
	LeafCap  int // target max points per leaf before subdividing further
	Workers  int // parallelism (0 = auto)
	// Pad expands the bounding box by this relative amount so points on
	// the max faces land strictly inside the root cell.
	Pad float64
}

// DefaultConfig returns the configuration used by the experiments:
// level-8 subdivision (256^3 finest cells) with small leaves.
func DefaultConfig() Config {
	return Config{MaxLevel: 8, LeafCap: 64, Pad: 1e-9}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.MaxLevel < 1 || c.MaxLevel > MaxLevel {
		return fmt.Errorf("octree: max level %d out of range [1, %d]", c.MaxLevel, MaxLevel)
	}
	if c.LeafCap < 1 {
		return fmt.Errorf("octree: leaf capacity %d must be >= 1", c.LeafCap)
	}
	if c.Pad < 0 {
		return fmt.Errorf("octree: pad %g must be non-negative", c.Pad)
	}
	return nil
}

// Build partitions the given points into an octree. The input slice is
// not modified; the tree stores a reordered copy. Build is the
// "partitioning program" of the paper's preprocessing pipeline.
func Build(points []vec.V3, cfg Config) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("octree: no points to partition")
	}

	// Pass 1 (parallel): bounding box.
	bounds := par.MapReduce(len(points), cfg.Workers,
		vec.Empty,
		func(b vec.AABB, lo, hi int) vec.AABB {
			for i := lo; i < hi; i++ {
				b = b.ExtendPoint(points[i])
			}
			return b
		},
		func(a, b vec.AABB) vec.AABB { return a.ExtendBox(b) },
	)
	// Make the root cell cubical so octants stay cubical at every level
	// (equal per-level cell volumes make density comparisons uniform),
	// then pad so max-face points map inside the last cell row.
	size := bounds.Size().MaxComponent()
	if size == 0 {
		size = 1 // all points coincident; any box works
	}
	size *= 1 + cfg.Pad
	c := bounds.Center()
	half := size / 2
	root := vec.Box(
		vec.New(c.X-half, c.Y-half, c.Z-half),
		vec.New(c.X+half, c.Y+half, c.Z+half),
	)

	// Pass 2 (parallel): Morton codes at the maximal level, packed with
	// the source index into (key, payload) pairs for the sort.
	n := len(points)
	cells := uint64(1) << uint(cfg.MaxLevel)
	pairs := make([]sortx.KV, n)
	scale := float64(cells) / size
	par.For(n, cfg.Workers, func(i int) {
		p := points[i]
		cx := cellCoord((p.X-root.Min.X)*scale, cells)
		cy := cellCoord((p.Y-root.Min.Y)*scale, cells)
		cz := cellCoord((p.Z-root.Min.Z)*scale, cells)
		// Codes compare as if computed at MaxLevel resolution; childAt
		// below uses cfg.MaxLevel consistently.
		pairs[i] = sortx.KV{K: Encode(cx, cy, cz), V: int64(i)}
	})

	// Pass 3 (parallel): stable radix sort by code. Stability makes the
	// whole build independent of the worker count: equal codes keep
	// input order, so every downstream pass sees the same permutation.
	sortx.Pairs(pairs, cfg.Workers)

	// The carve's binary-search splits assume monotone codes, and a
	// violated assumption would carve a silently corrupt tree — so
	// spend one cheap parallel scan keeping the invariant loud (the
	// role the serial carve's partition panic used to play).
	sorted := par.MapReduce(n, cfg.Workers,
		func() bool { return true },
		func(ok bool, lo, hi int) bool {
			if lo == 0 {
				lo = 1
			}
			for i := lo; i < hi; i++ {
				if pairs[i-1].K > pairs[i].K {
					return false
				}
			}
			return ok
		},
		func(a, b bool) bool { return a && b },
	)
	if !sorted {
		panic("octree: Morton codes not sorted (sortx invariant violated)")
	}

	// Pass 4 (parallel): carve the tree out of the sorted array.
	// Independent subtrees build concurrently into local buffers that
	// are stitched back in depth-first order, so the node layout is
	// identical at every worker count.
	t := &Tree{
		Bounds:   root,
		MaxLevel: cfg.MaxLevel,
		LeafCap:  cfg.LeafCap,
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	cv := &carver{pairs: pairs, cfg: cfg}
	if workers > 1 {
		cv.grp = par.NewGroup(workers)
		// Aim for several tasks per worker so irregular subtrees
		// balance; below the grain a subtree is carved serially.
		cv.grain = int64(n) / int64(workers*4)
		if cv.grain < 4096 {
			cv.grain = 4096
		}
	}
	t.Nodes = cv.carve(Node{Bounds: root, FirstChild: NoChild}, 0, int64(n))

	// Pass 5 (parallel): order leaves by increasing density and emit the
	// grouped, density-sorted point array (the paper's particle-file
	// layout). The density sort reuses sortx via an order-preserving
	// float-to-uint key; the gather fans out over leaf groups, whose
	// destination ranges are disjoint by construction.
	var leaves []int32
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() && t.Nodes[i].Count > 0 {
			leaves = append(leaves, int32(i))
		}
	}
	byDensity := make([]sortx.KV, len(leaves))
	for k, li := range leaves {
		byDensity[k] = sortx.KV{K: sortx.Float64Key(t.Nodes[li].Density), V: int64(li)}
	}
	sortx.Pairs(byDensity, cfg.Workers)
	for k := range byDensity {
		leaves[k] = int32(byDensity[k].V)
	}

	t.Points = make([]vec.V3, n)
	t.OrigIndex = make([]int64, n)
	t.LeavesByDensity = leaves
	t.LeafOffsets = make([]int64, len(leaves)+1)
	pos := int64(0)
	for k, li := range leaves {
		t.LeafOffsets[k] = pos
		pos += t.Nodes[li].Count
	}
	t.LeafOffsets[len(leaves)] = pos
	par.ForChunks(len(leaves), cfg.Workers, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			node := &t.Nodes[leaves[k]]
			// node.Offset holds the group start in the Morton-sorted
			// order; rewrite it to the density-sorted order.
			src := node.Offset
			dst := t.LeafOffsets[k]
			for j := int64(0); j < node.Count; j++ {
				oi := pairs[src+j].V
				t.Points[dst+j] = points[oi]
				t.OrigIndex[dst+j] = oi
			}
			node.Offset = dst
		}
	})
	return t, nil
}

// cellCoord clamps a scaled coordinate to a valid cell index.
func cellCoord(x float64, cells uint64) uint64 {
	if x <= 0 {
		return 0
	}
	c := uint64(x)
	if c >= cells {
		c = cells - 1
	}
	return c
}

// carver carves the tree out of the Morton-sorted pair array. pairs is
// shared, read-only, and positional: pairs[i].K is the code of the
// i-th sorted point. A nil grp (or subtree sizes at or below grain)
// means serial depth-first carving; otherwise the eight child subtrees
// of a node are carved concurrently on the group and stitched back in
// child order, which reproduces the serial depth-first node layout
// exactly — concurrency changes only the wall clock, never the tree.
type carver struct {
	pairs []sortx.KV
	cfg   Config
	grain int64
	grp   *par.Group
}

// fill sets the per-node statistics every node carries, leaf or not.
func (cv *carver) fill(node *Node, lo, hi int64) {
	node.Offset = lo
	node.Count = hi - lo
	vol := node.Bounds.Volume()
	if vol > 0 {
		node.Density = float64(node.Count) / vol
	} else {
		node.Density = math.Inf(1)
	}
}

// split returns the nine boundaries of the eight child ranges of
// [lo,hi) at the given level. The Morton sort makes each child's
// points contiguous and the child id non-decreasing over the range, so
// each boundary is a binary search — O(log n) per child instead of the
// linear scan the serial carve used.
func (cv *carver) split(lo, hi int64, level int) [9]int64 {
	var s [9]int64
	s[0] = lo
	maxLevel := cv.cfg.MaxLevel
	for c := 0; c < 8; c++ {
		base := s[c]
		k := sort.Search(int(hi-base), func(i int) bool {
			return childAt(cv.pairs[base+int64(i)].K, level, maxLevel) > c
		})
		s[c+1] = base + int64(k)
	}
	return s
}

// carve builds the subtree rooted at root, whose points occupy sorted
// positions [lo,hi), and returns its nodes in depth-first layout with
// the root at index 0 and FirstChild indices local to the returned
// slice. Offsets stored here are provisional (Morton order); Build
// rewrites them in density order afterwards.
func (cv *carver) carve(root Node, lo, hi int64) []Node {
	if cv.grp == nil || hi-lo <= cv.grain {
		nodes := []Node{root}
		cv.carveSerial(&nodes, 0, lo, hi)
		return nodes
	}
	cv.fill(&root, lo, hi)
	if hi-lo <= int64(cv.cfg.LeafCap) || int(root.Level) >= cv.cfg.MaxLevel {
		return []Node{root}
	}
	// Fan the eight children out on the group; each carves into its own
	// buffer. Serial depth-first order is [root, child 0..7,
	// descendants(0), descendants(1), ...] — children first (they are
	// appended when the parent expands), each child's descendant block
	// following in child order — so stitching the buffers back in child
	// order with relabeled FirstChild indices is layout-identical to
	// the serial carve.
	splits := cv.split(lo, hi, int(root.Level))
	var sub [8][]Node
	tasks := make([]func(), 8)
	for c := 0; c < 8; c++ {
		c := c
		child := Node{
			Bounds:     root.Bounds.Octant(c),
			FirstChild: NoChild,
			Level:      root.Level + 1,
		}
		tasks[c] = func() { sub[c] = cv.carve(child, splits[c], splits[c+1]) }
	}
	cv.grp.Do(tasks...)

	total := 9
	var descStart [8]int32
	for c := 0; c < 8; c++ {
		descStart[c] = int32(total)
		total += len(sub[c]) - 1
	}
	out := make([]Node, 0, total)
	root.FirstChild = 1
	out = append(out, root)
	// relabel maps a child-local node index (>= 1; nothing points back
	// at a subtree's root) into the stitched layout.
	relabel := func(nd Node, c int) Node {
		if nd.FirstChild != NoChild {
			nd.FirstChild = descStart[c] + nd.FirstChild - 1
		}
		return nd
	}
	for c := 0; c < 8; c++ {
		out = append(out, relabel(sub[c][0], c))
	}
	for c := 0; c < 8; c++ {
		for _, nd := range sub[c][1:] {
			out = append(out, relabel(nd, c))
		}
	}
	return out
}

// carveSerial recursively subdivides (*nodes)[idx], whose points occupy
// sorted positions [lo,hi) — the serial depth-first carve, appending to
// a local buffer.
func (cv *carver) carveSerial(nodes *[]Node, idx int32, lo, hi int64) {
	node := &(*nodes)[idx]
	cv.fill(node, lo, hi)
	if hi-lo <= int64(cv.cfg.LeafCap) || int(node.Level) >= cv.cfg.MaxLevel {
		return
	}

	level := int(node.Level)
	first := int32(len(*nodes))
	node.FirstChild = first
	bounds := node.Bounds
	childLevel := node.Level + 1
	for c := 0; c < 8; c++ {
		*nodes = append(*nodes, Node{
			Bounds:     bounds.Octant(c),
			FirstChild: NoChild,
			Level:      childLevel,
		})
	}
	splits := cv.split(lo, hi, level)
	for c := 0; c < 8; c++ {
		cv.carveSerial(nodes, first+int32(c), splits[c], splits[c+1])
	}
}

// NumLeaves returns the number of non-empty leaf groups.
func (t *Tree) NumLeaves() int { return len(t.LeavesByDensity) }

// Leaf returns the k-th leaf in increasing-density order.
func (t *Tree) Leaf(k int) *Node { return &t.Nodes[t.LeavesByDensity[k]] }

// MaxDepth returns the deepest level present in the tree.
func (t *Tree) MaxDepth() int {
	d := 0
	for i := range t.Nodes {
		if int(t.Nodes[i].Level) > d {
			d = int(t.Nodes[i].Level)
		}
	}
	return d
}

// FindLeaf returns the leaf node containing p, or nil if p is outside
// the root bounds.
func (t *Tree) FindLeaf(p vec.V3) *Node {
	if !t.Bounds.Contains(p) {
		return nil
	}
	idx := int32(0)
	for {
		node := &t.Nodes[idx]
		if node.IsLeaf() {
			return node
		}
		idx = node.FirstChild + int32(node.Bounds.OctantIndex(p))
	}
}

// Validate checks the tree's structural invariants. It is used by the
// property tests and by the file reader to reject corrupt input:
//
//   - children tile their parent and partition its count
//   - leaf groups are disjoint, contiguous, and cover Points exactly
//   - leaf densities are non-decreasing in LeavesByDensity order
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("octree: empty tree")
	}
	var walk func(idx int32) (int64, error)
	walk = func(idx int32) (int64, error) {
		n := &t.Nodes[idx]
		if n.IsLeaf() {
			if n.Count > 0 {
				if n.Offset < 0 || n.Offset+n.Count > int64(len(t.Points)) {
					return 0, fmt.Errorf("octree: leaf %d group [%d,%d) out of range", idx, n.Offset, n.Offset+n.Count)
				}
				for j := n.Offset; j < n.Offset+n.Count; j++ {
					if !n.Bounds.Contains(t.Points[j]) {
						return 0, fmt.Errorf("octree: point %d outside its leaf bounds", j)
					}
				}
			}
			return n.Count, nil
		}
		var sum int64
		for c := int32(0); c < 8; c++ {
			cnt, err := walk(n.FirstChild + c)
			if err != nil {
				return 0, err
			}
			sum += cnt
		}
		if sum != n.Count {
			return 0, fmt.Errorf("octree: node %d count %d != children sum %d", idx, n.Count, sum)
		}
		return sum, nil
	}
	total, err := walk(0)
	if err != nil {
		return err
	}
	if total != int64(len(t.Points)) {
		return fmt.Errorf("octree: tree holds %d points, array has %d", total, len(t.Points))
	}
	if len(t.LeafOffsets) != len(t.LeavesByDensity)+1 {
		return fmt.Errorf("octree: leaf offset table size mismatch")
	}
	prev := math.Inf(-1)
	for k, li := range t.LeavesByDensity {
		n := &t.Nodes[li]
		if n.Density < prev {
			return fmt.Errorf("octree: leaf %d density %g out of order (prev %g)", k, n.Density, prev)
		}
		prev = n.Density
		if n.Offset != t.LeafOffsets[k] {
			return fmt.Errorf("octree: leaf %d offset %d != table %d", k, n.Offset, t.LeafOffsets[k])
		}
		if n.Offset+n.Count != t.LeafOffsets[k+1] {
			return fmt.Errorf("octree: leaf %d group end %d != table %d", k, n.Offset+n.Count, t.LeafOffsets[k+1])
		}
	}
	return nil
}
