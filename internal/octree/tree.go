package octree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
	"repro/internal/vec"
)

// NoChild marks a node without children (a leaf).
const NoChild = int32(-1)

// Node is one octree node. Children, when present, are eight
// consecutive entries starting at FirstChild, indexed by the
// AABB.Octant convention. Leaves own a contiguous group of the tree's
// reordered point array.
type Node struct {
	Bounds     vec.AABB
	FirstChild int32   // NoChild for leaves
	Level      uint8   // root is level 0
	Offset     int64   // leaf: start of its group in Tree.Points
	Count      int64   // number of points in this subtree (== group size for leaves)
	Density    float64 // Count / Bounds.Volume()
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.FirstChild == NoChild }

// Tree is a partitioned particle data set: the octree plus the particle
// positions reordered so that leaf groups are contiguous and ordered by
// increasing leaf density. OrigIndex maps each reordered point back to
// its index in the source data, so per-particle attributes (e.g. the
// other three phase-space coordinates) can be looked up after
// extraction.
type Tree struct {
	Bounds   vec.AABB
	MaxLevel int
	LeafCap  int // subdivision stops once a node holds <= LeafCap points

	Nodes     []Node
	Points    []vec.V3
	OrigIndex []int64

	// LeavesByDensity lists leaf node indices in increasing density
	// order; group k occupies Points[LeafOffsets[k]:LeafOffsets[k+1]].
	LeavesByDensity []int32
	LeafOffsets     []int64
}

// Config controls a partitioning run.
type Config struct {
	MaxLevel int // maximal subdivision level (paper §2.3); 1..MaxLevel
	LeafCap  int // target max points per leaf before subdividing further
	Workers  int // parallelism (0 = auto)
	// Pad expands the bounding box by this relative amount so points on
	// the max faces land strictly inside the root cell.
	Pad float64
}

// DefaultConfig returns the configuration used by the experiments:
// level-8 subdivision (256^3 finest cells) with small leaves.
func DefaultConfig() Config {
	return Config{MaxLevel: 8, LeafCap: 64, Pad: 1e-9}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.MaxLevel < 1 || c.MaxLevel > MaxLevel {
		return fmt.Errorf("octree: max level %d out of range [1, %d]", c.MaxLevel, MaxLevel)
	}
	if c.LeafCap < 1 {
		return fmt.Errorf("octree: leaf capacity %d must be >= 1", c.LeafCap)
	}
	if c.Pad < 0 {
		return fmt.Errorf("octree: pad %g must be non-negative", c.Pad)
	}
	return nil
}

// Build partitions the given points into an octree. The input slice is
// not modified; the tree stores a reordered copy. Build is the
// "partitioning program" of the paper's preprocessing pipeline.
func Build(points []vec.V3, cfg Config) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("octree: no points to partition")
	}

	// Pass 1 (parallel): bounding box.
	bounds := par.MapReduce(len(points), cfg.Workers,
		vec.Empty,
		func(b vec.AABB, lo, hi int) vec.AABB {
			for i := lo; i < hi; i++ {
				b = b.ExtendPoint(points[i])
			}
			return b
		},
		func(a, b vec.AABB) vec.AABB { return a.ExtendBox(b) },
	)
	// Make the root cell cubical so octants stay cubical at every level
	// (equal per-level cell volumes make density comparisons uniform),
	// then pad so max-face points map inside the last cell row.
	size := bounds.Size().MaxComponent()
	if size == 0 {
		size = 1 // all points coincident; any box works
	}
	size *= 1 + cfg.Pad
	c := bounds.Center()
	half := size / 2
	root := vec.Box(
		vec.New(c.X-half, c.Y-half, c.Z-half),
		vec.New(c.X+half, c.Y+half, c.Z+half),
	)

	// Pass 2 (parallel): Morton codes at the maximal level.
	n := len(points)
	cells := uint64(1) << uint(cfg.MaxLevel)
	codes := make([]uint64, n)
	scale := float64(cells) / size
	par.For(n, cfg.Workers, func(i int) {
		p := points[i]
		cx := cellCoord((p.X-root.Min.X)*scale, cells)
		cy := cellCoord((p.Y-root.Min.Y)*scale, cells)
		cz := cellCoord((p.Z-root.Min.Z)*scale, cells)
		// Shift codes up so they compare as if computed at MaxLevel
		// resolution; childAt below uses cfg.MaxLevel consistently.
		codes[i] = Encode(cx, cy, cz)
	})

	// Pass 3: sort point indices by code.
	order := make([]int64, n)
	for i := range order {
		order[i] = int64(i)
	}
	sort.Slice(order, func(a, b int) bool { return codes[order[a]] < codes[order[b]] })

	// Pass 4: carve the tree out of the sorted array.
	t := &Tree{
		Bounds:   root,
		MaxLevel: cfg.MaxLevel,
		LeafCap:  cfg.LeafCap,
	}
	t.Nodes = append(t.Nodes, Node{Bounds: root, FirstChild: NoChild, Count: int64(n)})
	t.build(0, 0, int64(n), codes, order, cfg)

	// Pass 5: order leaves by increasing density and emit the grouped,
	// density-sorted point array (the paper's particle-file layout).
	var leaves []int32
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() && t.Nodes[i].Count > 0 {
			leaves = append(leaves, int32(i))
		}
	}
	sort.SliceStable(leaves, func(a, b int) bool {
		return t.Nodes[leaves[a]].Density < t.Nodes[leaves[b]].Density
	})

	t.Points = make([]vec.V3, n)
	t.OrigIndex = make([]int64, n)
	t.LeavesByDensity = leaves
	t.LeafOffsets = make([]int64, len(leaves)+1)
	pos := int64(0)
	for k, li := range leaves {
		node := &t.Nodes[li]
		t.LeafOffsets[k] = pos
		// node.Offset currently holds the group start in the
		// Morton-sorted order; rewrite it to the density-sorted order.
		src := node.Offset
		for j := int64(0); j < node.Count; j++ {
			oi := order[src+j]
			t.Points[pos+j] = points[oi]
			t.OrigIndex[pos+j] = oi
		}
		node.Offset = pos
		pos += node.Count
	}
	t.LeafOffsets[len(leaves)] = pos
	return t, nil
}

// cellCoord clamps a scaled coordinate to a valid cell index.
func cellCoord(x float64, cells uint64) uint64 {
	if x <= 0 {
		return 0
	}
	c := uint64(x)
	if c >= cells {
		c = cells - 1
	}
	return c
}

// build recursively subdivides node idx, whose points occupy
// order[lo:hi] (Morton-sorted). Offsets stored here are provisional
// (Morton order); Build rewrites them in density order afterwards.
func (t *Tree) build(idx int32, lo, hi int64, codes []uint64, order []int64, cfg Config) {
	node := &t.Nodes[idx]
	node.Offset = lo
	node.Count = hi - lo
	vol := node.Bounds.Volume()
	if vol > 0 {
		node.Density = float64(node.Count) / vol
	} else {
		node.Density = math.Inf(1)
	}
	if hi-lo <= int64(cfg.LeafCap) || int(node.Level) >= cfg.MaxLevel {
		return
	}

	level := int(node.Level)
	first := int32(len(t.Nodes))
	node.FirstChild = first
	bounds := node.Bounds
	childLevel := node.Level + 1
	for c := 0; c < 8; c++ {
		t.Nodes = append(t.Nodes, Node{
			Bounds:     bounds.Octant(c),
			FirstChild: NoChild,
			Level:      childLevel,
		})
	}
	// Split [lo,hi) by the 3-bit child id at this level; the Morton
	// sort guarantees each child's points are contiguous.
	start := lo
	for c := 0; c < 8; c++ {
		end := start
		for end < hi && childAt(codes[order[end]], level, cfg.MaxLevel) == c {
			end++
		}
		t.build(first+int32(c), start, end, codes, order, cfg)
		start = end
	}
	if start != hi {
		panic("octree: children do not partition parent range (Morton sort violated)")
	}
}

// NumLeaves returns the number of non-empty leaf groups.
func (t *Tree) NumLeaves() int { return len(t.LeavesByDensity) }

// Leaf returns the k-th leaf in increasing-density order.
func (t *Tree) Leaf(k int) *Node { return &t.Nodes[t.LeavesByDensity[k]] }

// MaxDepth returns the deepest level present in the tree.
func (t *Tree) MaxDepth() int {
	d := 0
	for i := range t.Nodes {
		if int(t.Nodes[i].Level) > d {
			d = int(t.Nodes[i].Level)
		}
	}
	return d
}

// FindLeaf returns the leaf node containing p, or nil if p is outside
// the root bounds.
func (t *Tree) FindLeaf(p vec.V3) *Node {
	if !t.Bounds.Contains(p) {
		return nil
	}
	idx := int32(0)
	for {
		node := &t.Nodes[idx]
		if node.IsLeaf() {
			return node
		}
		idx = node.FirstChild + int32(node.Bounds.OctantIndex(p))
	}
}

// Validate checks the tree's structural invariants. It is used by the
// property tests and by the file reader to reject corrupt input:
//
//   - children tile their parent and partition its count
//   - leaf groups are disjoint, contiguous, and cover Points exactly
//   - leaf densities are non-decreasing in LeavesByDensity order
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("octree: empty tree")
	}
	var walk func(idx int32) (int64, error)
	walk = func(idx int32) (int64, error) {
		n := &t.Nodes[idx]
		if n.IsLeaf() {
			if n.Count > 0 {
				if n.Offset < 0 || n.Offset+n.Count > int64(len(t.Points)) {
					return 0, fmt.Errorf("octree: leaf %d group [%d,%d) out of range", idx, n.Offset, n.Offset+n.Count)
				}
				for j := n.Offset; j < n.Offset+n.Count; j++ {
					if !n.Bounds.Contains(t.Points[j]) {
						return 0, fmt.Errorf("octree: point %d outside its leaf bounds", j)
					}
				}
			}
			return n.Count, nil
		}
		var sum int64
		for c := int32(0); c < 8; c++ {
			cnt, err := walk(n.FirstChild + c)
			if err != nil {
				return 0, err
			}
			sum += cnt
		}
		if sum != n.Count {
			return 0, fmt.Errorf("octree: node %d count %d != children sum %d", idx, n.Count, sum)
		}
		return sum, nil
	}
	total, err := walk(0)
	if err != nil {
		return err
	}
	if total != int64(len(t.Points)) {
		return fmt.Errorf("octree: tree holds %d points, array has %d", total, len(t.Points))
	}
	if len(t.LeafOffsets) != len(t.LeavesByDensity)+1 {
		return fmt.Errorf("octree: leaf offset table size mismatch")
	}
	prev := math.Inf(-1)
	for k, li := range t.LeavesByDensity {
		n := &t.Nodes[li]
		if n.Density < prev {
			return fmt.Errorf("octree: leaf %d density %g out of order (prev %g)", k, n.Density, prev)
		}
		prev = n.Density
		if n.Offset != t.LeafOffsets[k] {
			return fmt.Errorf("octree: leaf %d offset %d != table %d", k, n.Offset, t.LeafOffsets[k])
		}
		if n.Offset+n.Count != t.LeafOffsets[k+1] {
			return fmt.Errorf("octree: leaf %d group end %d != table %d", k, n.Offset+n.Count, t.LeafOffsets[k+1])
		}
	}
	return nil
}
