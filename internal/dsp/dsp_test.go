package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Error("accepted length 12")
	}
	if err := FFT(nil); err == nil {
		t.Error("accepted empty input")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is flat ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A pure complex exponential at bin k concentrates all energy there.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k*i)/n))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		mag := cmplx.Abs(v)
		if i == k {
			if math.Abs(mag-n) > 1e-9 {
				t.Errorf("bin %d magnitude %g, want %d", i, mag, n)
			}
		} else if mag > 1e-9 {
			t.Errorf("leakage at bin %d: %g", i, mag)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Energy in time domain equals energy in frequency domain / N.
	rng := rand.New(rand.NewSource(3))
	const n = 128
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/n-timeE) > 1e-9*timeE {
		t.Errorf("Parseval violated: time %g, freq/N %g", timeE, freqE/n)
	}
}

func TestPeakFrequencyRecoversSine(t *testing.T) {
	const omega = 3.7 // angular frequency
	const dt = 0.01
	signal := make([]float64, 2000)
	for i := range signal {
		signal[i] = 2.5 * math.Sin(omega*float64(i)*dt)
	}
	got, err := PeakFrequency(signal, dt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-omega) > 0.02*omega {
		t.Errorf("peak frequency %g, want %g", got, omega)
	}
}

func TestPeakFrequencyWithNoiseAndOffset(t *testing.T) {
	const omega = 12.0
	const dt = 0.005
	rng := rand.New(rand.NewSource(4))
	signal := make([]float64, 3000)
	for i := range signal {
		signal[i] = 5 + math.Sin(omega*float64(i)*dt) + 0.2*rng.NormFloat64()
	}
	got, err := PeakFrequency(signal, dt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-omega) > 0.05*omega {
		t.Errorf("peak frequency %g, want %g (noise/offset case)", got, omega)
	}
}

func TestPeakFrequencyValidation(t *testing.T) {
	if _, err := PeakFrequency([]float64{1, 2}, 0.1); err == nil {
		t.Error("accepted too-short signal")
	}
	if _, err := PeakFrequency(make([]float64, 100), -1); err == nil {
		t.Error("accepted negative dt")
	}
	if _, err := PeakFrequency(make([]float64, 100), 0.1); err == nil {
		t.Error("accepted all-zero signal")
	}
}

func TestPowerSpectrumLength(t *testing.T) {
	ps, err := PowerSpectrum(make([]float64, 100)) // padded to 128
	if err == nil {
		// All-zero signal: spectrum exists but is flat zero; that's fine
		// for PowerSpectrum itself (PeakFrequency rejects it).
		if len(ps) != 64 {
			t.Errorf("spectrum length %d, want 64", len(ps))
		}
	}
}
