// Package dsp provides the small signal-processing kernel the solver
// diagnostics need: a radix-2 FFT and a peak-frequency estimator, used
// to verify that the FDTD substrate actually rings at the cavity's
// physical eigenfrequency (the paper's simulations exist to find "the
// eigenmodes in extremely large and complex 3D electromagnetic
// structures").
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. The length must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// PowerSpectrum returns |FFT|^2 of a real signal after removing its
// mean and applying a Hann window, with the signal zero-padded to the
// next power of two. Only the positive-frequency half is returned.
func PowerSpectrum(signal []float64) ([]float64, error) {
	if len(signal) < 4 {
		return nil, fmt.Errorf("dsp: signal too short (%d samples)", len(signal))
	}
	n := 1
	for n < len(signal) {
		n <<= 1
	}
	var mean float64
	for _, v := range signal {
		mean += v
	}
	mean /= float64(len(signal))

	x := make([]complex128, n)
	for i, v := range signal {
		// Hann window against spectral leakage.
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(len(signal)-1)))
		x[i] = complex((v-mean)*w, 0)
	}
	if err := FFT(x); err != nil {
		return nil, err
	}
	half := n / 2
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		out[i] = real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	return out, nil
}

// PeakFrequency estimates the dominant angular frequency of a real
// signal sampled at interval dt, using a parabolic interpolation of
// the spectral peak for sub-bin resolution. The DC bin is excluded.
func PeakFrequency(signal []float64, dt float64) (float64, error) {
	if dt <= 0 {
		return 0, fmt.Errorf("dsp: sample interval %g must be positive", dt)
	}
	ps, err := PowerSpectrum(signal)
	if err != nil {
		return 0, err
	}
	// Find the largest non-DC bin.
	best := 1
	for i := 2; i < len(ps); i++ {
		if ps[i] > ps[best] {
			best = i
		}
	}
	if ps[best] == 0 {
		return 0, fmt.Errorf("dsp: signal has no spectral content")
	}
	// Parabolic refinement using the log power of the neighbors.
	delta := 0.0
	if best > 1 && best < len(ps)-1 && ps[best-1] > 0 && ps[best+1] > 0 {
		l := math.Log(ps[best-1])
		c := math.Log(ps[best])
		r := math.Log(ps[best+1])
		den := l - 2*c + r
		if den != 0 {
			delta = 0.5 * (l - r) / den
		}
	}
	// FFT length is 2*len(ps); bin k is frequency k/(N*dt) cycles per
	// unit time.
	n := 2 * len(ps)
	freq := (float64(best) + delta) / (float64(n) * dt)
	return 2 * math.Pi * freq, nil // angular frequency
}
