package pipeline

import (
	"context"
	"sync/atomic"
	"time"
)

// PlacementExec is the non-generic control surface of a
// placement-switchable executor. MapExec detects it on the executor it
// is given and wires the stage's metrics block to it, which is what
// lets the balancer flip a stage between local and remote execution
// through Pipeline.SetStagePlacement without knowing the stage's
// types.
type PlacementExec interface {
	// Remote reports which side new frames are dispatched to.
	Remote() bool
	// SetRemote picks the side for subsequent frames. Frames already
	// in flight finish where they started — a flip is always a frame
	// boundary.
	SetRemote(bool)
	// SideEWMA returns the smoothed per-frame service time observed on
	// each side (zero until a side has run a frame).
	SideEWMA() (local, remote time.Duration)
	// Fallbacks counts remote failures that were served by the local
	// side instead.
	Fallbacks() uint64
}

// SwitchExec routes each Apply to one of two executors computing the
// same function — an in-process local side and a fleet-backed remote
// side — under a flag the balancer owns. Because both sides are
// bit-identical by contract and the Map machinery re-sequences output,
// a placement flip is invisible in the stream: only latency changes.
//
// A remote failure while the pipeline is still alive falls back to the
// local side for that frame (and is counted), so a degraded WAN path
// costs latency, not the run; the balancer sees the per-side EWMAs and
// flips the stage home when remote service time degrades past its
// threshold.
type SwitchExec[I, O any] struct {
	local, remote StageExecutor[I, O]

	useRemote atomic.Bool
	localNS   atomic.Uint64 // float64 bits EWMA
	remoteNS  atomic.Uint64 // float64 bits EWMA
	flips     atomic.Uint64
	fallbacks atomic.Uint64
}

// NewSwitchExec pairs a local executor with its remote twin, starting
// on the local side. Both must compute the same function; local must
// be non-nil (it is the fallback side).
func NewSwitchExec[I, O any](local, remote StageExecutor[I, O]) *SwitchExec[I, O] {
	return &SwitchExec[I, O]{local: local, remote: remote}
}

// Apply implements StageExecutor: route to the current side, timing it
// into that side's EWMA; on a remote error with the pipeline still
// alive, serve the frame locally instead.
func (s *SwitchExec[I, O]) Apply(ctx context.Context, v I) (O, error) {
	if s.useRemote.Load() && s.remote != nil {
		t0 := nowNanos()
		o, err := s.remote.Apply(ctx, v)
		if err == nil {
			ewmaUpdate(&s.remoteNS, float64(nowNanos()-t0))
			return o, nil
		}
		if ctx.Err() != nil {
			return o, err
		}
		s.fallbacks.Add(1)
	}
	t0 := nowNanos()
	o, err := s.local.Apply(ctx, v)
	if err == nil {
		ewmaUpdate(&s.localNS, float64(nowNanos()-t0))
	}
	return o, err
}

// Remote implements PlacementExec.
func (s *SwitchExec[I, O]) Remote() bool { return s.useRemote.Load() }

// SetRemote implements PlacementExec.
func (s *SwitchExec[I, O]) SetRemote(remote bool) {
	if s.remote == nil {
		remote = false
	}
	if s.useRemote.Swap(remote) != remote {
		s.flips.Add(1)
	}
}

// SideEWMA implements PlacementExec.
func (s *SwitchExec[I, O]) SideEWMA() (local, remote time.Duration) {
	return ewmaDuration(&s.localNS), ewmaDuration(&s.remoteNS)
}

// Fallbacks implements PlacementExec.
func (s *SwitchExec[I, O]) Fallbacks() uint64 { return s.fallbacks.Load() }

// Flips counts placement changes since construction.
func (s *SwitchExec[I, O]) Flips() uint64 { return s.flips.Load() }
