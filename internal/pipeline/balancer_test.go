package pipeline

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// balanceModel is a closed-form stand-in for a pipeline: three elastic
// stages with fixed per-frame service costs (ms). Throughput is bound
// by the slowest stage, utilization follows from cost × throughput /
// workers, and the highest-utilization stage is critical — the same
// shape Snapshot reports for a real sleep-modeled chain, but exact.
type balanceModel struct {
	names   []string
	costs   []float64 // ms per frame
	workers []int
	max     int
}

func (m *balanceModel) snapshot() []StageSnapshot {
	tput := math.Inf(1)
	for i := range m.costs {
		if r := float64(m.workers[i]) / m.costs[i]; r < tput {
			tput = r
		}
	}
	snap := make([]StageSnapshot, len(m.names))
	best, crit := -1.0, 0
	for i := range snap {
		util := m.costs[i] * tput / float64(m.workers[i])
		snap[i] = StageSnapshot{
			Name: m.names[i], Kind: KindMap,
			Workers: m.workers[i], MinWorkers: 1, MaxWorkers: m.max,
			Resizable: true, Utilization: util, Throughput: tput * 1000,
		}
		if util > best+1e-9 {
			best, crit = util, i
		}
	}
	snap[crit].Critical = true
	return snap
}

func (m *balanceModel) apply(t *testing.T, d Decision) {
	t.Helper()
	set := func(name string, n int) {
		for i, s := range m.names {
			if s == name {
				m.workers[i] = n
				return
			}
		}
		t.Fatalf("decision names unknown stage %q", name)
	}
	switch d.Kind {
	case DecisionGrow:
		set(d.Stage, d.StageWorkers)
	case DecisionMove:
		set(d.From, d.FromWorkers)
		set(d.Stage, d.StageWorkers)
	default:
		t.Fatalf("unexpected decision kind %v", d.Kind)
	}
}

func runModel(t *testing.T, ticks int) ([]Decision, []int) {
	t.Helper()
	m := &balanceModel{
		names:   []string{"partition", "extract", "render"},
		costs:   []float64{0.8, 3.2, 1.6},
		workers: []int{5, 1, 1},
		max:     7,
	}
	b := NewBalancer(BalancerOptions{Cooldown: -1})
	var log []Decision
	for i := 0; i < ticks; i++ {
		for _, d := range b.Decide(m.snapshot()) {
			m.apply(t, d)
			log = append(log, d)
		}
	}
	return log, m.workers
}

// TestBalancerConvergesOnModel drives Decide with exact synthetic
// snapshots of a badly mis-provisioned chain (5/1/1 against costs that
// want 1/4/2) and checks it converges to the hand-tuned optimum by
// pure worker moves, never exceeding the budget, then goes quiet.
func TestBalancerConvergesOnModel(t *testing.T) {
	log, workers := runModel(t, 60)
	if want := []int{1, 4, 2}; !reflect.DeepEqual(workers, want) {
		t.Fatalf("converged to %v, want %v (decisions: %v)", workers, want, log)
	}
	if len(log) != 4 {
		t.Errorf("%d decisions to converge, want 4: %v", len(log), log)
	}
	for _, d := range log {
		if d.Kind != DecisionMove {
			t.Errorf("expected only moves within budget, got %v", d)
		}
	}
	// Steady state: a longer run makes no further decisions.
	longer, _ := runModel(t, 400)
	if !reflect.DeepEqual(longer, log) {
		t.Errorf("balancer kept acting after convergence: %v vs %v", longer, log)
	}
}

// TestBalancerDeterministic replays the identical snapshot sequence
// through two fresh engines and requires byte-identical decision logs.
func TestBalancerDeterministic(t *testing.T) {
	a, _ := runModel(t, 120)
	b, _ := runModel(t, 120)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same snapshots, different decisions:\n%v\n%v", a, b)
	}
}

// TestBalancerGrowsIntoFreeBudget checks the grow branch: with budget
// above the chain's live worker count, the critical stage grows from
// slack before anyone is robbed.
func TestBalancerGrowsIntoFreeBudget(t *testing.T) {
	m := &balanceModel{
		names:   []string{"a", "b"},
		costs:   []float64{1, 4},
		workers: []int{1, 1},
		max:     8,
	}
	b := NewBalancer(BalancerOptions{Cooldown: -1, Budget: 6})
	var log []Decision
	for i := 0; i < 40; i++ {
		for _, d := range b.Decide(m.snapshot()) {
			m.apply(t, d)
			log = append(log, d)
		}
	}
	if len(log) == 0 || log[0].Kind != DecisionGrow || log[0].Stage != "b" {
		t.Fatalf("first decision %v, want grow of b", log)
	}
	if m.workers[1] != 4 {
		t.Fatalf("final workers %v, want the bottleneck at 4", m.workers)
	}
	if got := m.workers[0] + m.workers[1]; got > 6 {
		t.Fatalf("budget 6 exceeded: %d live workers", got)
	}
}

// TestBalancerPlacementFlips exercises the placement branch on
// synthetic snapshots: a saturated placeable stage that workers cannot
// help flips remote, and a degraded remote side comes home.
func TestBalancerPlacementFlips(t *testing.T) {
	b := NewBalancer(BalancerOptions{Cooldown: -1})
	sat := []StageSnapshot{{
		Name: "extract", Kind: KindMap, Workers: 2, MinWorkers: 1, MaxWorkers: 2,
		Resizable: true, Placeable: true, Critical: true, Utilization: 0.97,
	}}
	var log []Decision
	for i := 0; i < 5 && len(log) == 0; i++ {
		log = append(log, b.Decide(sat)...)
	}
	if len(log) != 1 || log[0].Kind != DecisionPlace || !log[0].Remote {
		t.Fatalf("saturated placeable stage: got %v, want place-remote", log)
	}

	degraded := []StageSnapshot{{
		Name: "extract", Kind: KindMap, Workers: 2, MinWorkers: 1, MaxWorkers: 2,
		Resizable: true, Placeable: true, Remote: true, Utilization: 0.5,
		LocalEWMA: 2 * time.Millisecond, RemoteEWMA: 9 * time.Millisecond,
	}}
	log = nil
	for i := 0; i < 5 && len(log) == 0; i++ {
		log = append(log, b.Decide(degraded)...)
	}
	if len(log) != 1 || log[0].Kind != DecisionPlace || log[0].Remote {
		t.Fatalf("degraded remote stage: got %v, want place-local", log)
	}
}

// TestStartBalancerLive runs the full loop against a real
// sleep-modeled chain: a starved bottleneck gains workers while the
// stream runs, and the output stays complete and ordered.
func TestStartBalancerLive(t *testing.T) {
	p := New(context.Background())
	const n = 300
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	fast := Map(p, FromSlice(p, 4, vals),
		StageConfig{Name: "fast", Workers: 5, MinWorkers: 1, MaxWorkers: 8},
		func(_ context.Context, v int) (int, error) {
			time.Sleep(100 * time.Microsecond)
			return v, nil
		})
	slow := Map(p, fast,
		StageConfig{Name: "slow", Workers: 1, MinWorkers: 1, MaxWorkers: 8},
		func(_ context.Context, v int) (int, error) {
			time.Sleep(800 * time.Microsecond)
			return v + 1000, nil
		})
	got := Collect(p, slow)
	var moved atomic.Int64
	p.StartBalancer(BalancerOptions{
		Interval:   5 * time.Millisecond,
		OnDecision: func(Decision) { moved.Add(1) },
	})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if moved.Load() == 0 {
		t.Error("balancer made no decisions over a starved bottleneck")
	}
	final := p.Snapshot()
	for _, s := range final {
		if s.Name == "slow" && s.Workers <= 1 {
			t.Errorf("bottleneck still at %d workers after balancing", s.Workers)
		}
	}
	if len(*got) != n {
		t.Fatalf("%d of %d frames", len(*got), n)
	}
	for i, v := range *got {
		if v != i+1000 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1000)
		}
	}
}

// flakySide counts calls and fails the first few.
type flakySide struct {
	calls atomic.Int64
	fails int64
	delay time.Duration
	bias  int
}

func (f *flakySide) Apply(ctx context.Context, v int) (int, error) {
	n := f.calls.Add(1)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if n <= f.fails {
		return 0, errors.New("transient remote failure")
	}
	return v + f.bias, nil
}

// TestSwitchExecRoutesAndFallsBack pins the placement seam: routing
// follows the flag, a failing remote falls back to local (and counts
// it), and per-side EWMAs populate for the balancer's return check.
func TestSwitchExecRoutesAndFallsBack(t *testing.T) {
	local := &flakySide{}
	remote := &flakySide{fails: 2, delay: 200 * time.Microsecond}
	sw := NewSwitchExec[int, int](local, remote)

	if sw.Remote() {
		t.Fatal("switch starts remote, want local")
	}
	if v, err := sw.Apply(context.Background(), 7); err != nil || v != 7 {
		t.Fatalf("local apply = %d, %v", v, err)
	}
	sw.SetRemote(true)
	if !sw.Remote() {
		t.Fatal("SetRemote(true) did not flip")
	}
	// First two remote calls fail; both must fall back to local and
	// still return the right answer.
	for i := 0; i < 4; i++ {
		if v, err := sw.Apply(context.Background(), i); err != nil || v != i {
			t.Fatalf("apply %d while remote = %d, %v", i, v, err)
		}
	}
	if got := sw.Fallbacks(); got != 2 {
		t.Errorf("fallbacks = %d, want 2", got)
	}
	if local.calls.Load() != 3 { // 1 pre-flip + 2 fallbacks
		t.Errorf("local saw %d calls, want 3", local.calls.Load())
	}
	lo, re := sw.SideEWMA()
	if lo <= 0 || re <= 0 {
		t.Errorf("side EWMAs not populated: local=%v remote=%v", lo, re)
	}
	if re < 100*time.Microsecond {
		t.Errorf("remote EWMA %v, want >= 100µs for the slow side", re)
	}
	sw.SetRemote(false)
	sw.SetRemote(true)
	if sw.Flips() < 3 {
		t.Errorf("flips = %d, want >= 3", sw.Flips())
	}

	// A nil remote side refuses to flip out.
	solo := NewSwitchExec[int, int](local, nil)
	solo.SetRemote(true)
	if solo.Remote() {
		t.Error("switch with nil remote flipped remote")
	}
}

// TestSwitchExecCancelledContextDoesNotFallBack: a remote error caused
// by cancellation must surface, not silently retry locally.
func TestSwitchExecCancelledContextDoesNotFallBack(t *testing.T) {
	local := &flakySide{}
	remote := &flakySide{fails: 1 << 30}
	sw := NewSwitchExec[int, int](local, remote)
	sw.SetRemote(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sw.Apply(ctx, 1); err == nil {
		t.Fatal("cancelled remote apply returned nil error")
	}
	if local.calls.Load() != 0 {
		t.Errorf("local ran %d times under a dead context", local.calls.Load())
	}
	if sw.Fallbacks() != 0 {
		t.Errorf("fallbacks = %d, want 0 for cancellation", sw.Fallbacks())
	}
}
