package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var errTransient = errors.New("transient")

// fastRetry keeps test backoffs far below test timeouts.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Jitter: -1}

func TestRetryEventualSuccess(t *testing.T) {
	attempts := 0
	err := Retry(context.Background(), fastRetry, nil, func(context.Context) error {
		attempts++
		if attempts < 3 {
			return errTransient
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v, want nil", err)
	}
	if attempts != 3 {
		t.Errorf("ran %d attempts, want 3", attempts)
	}
}

func TestRetryExhaustion(t *testing.T) {
	attempts := 0
	err := Retry(context.Background(), fastRetry, nil, func(context.Context) error {
		attempts++
		return errTransient
	})
	if !errors.Is(err, errTransient) {
		t.Fatalf("Retry = %v, want the last attempt's error", err)
	}
	if attempts != fastRetry.MaxAttempts {
		t.Errorf("ran %d attempts, want %d", attempts, fastRetry.MaxAttempts)
	}
}

func TestRetryNonRetryable(t *testing.T) {
	permanent := errors.New("permanent")
	attempts := 0
	err := Retry(context.Background(), fastRetry, func(err error) bool { return !errors.Is(err, permanent) },
		func(context.Context) error {
			attempts++
			return permanent
		})
	if !errors.Is(err, permanent) {
		t.Fatalf("Retry = %v, want permanent error", err)
	}
	if attempts != 1 {
		t.Errorf("ran %d attempts, want 1 (no retry on a non-retryable error)", attempts)
	}
}

func TestRetryCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pol := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour, Jitter: -1}
	attempts := 0
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, pol, nil, func(context.Context) error {
			attempts++
			return errTransient
		})
	}()
	time.Sleep(10 * time.Millisecond) // first attempt fails, backoff starts
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, errTransient) {
			t.Errorf("Retry = %v, want the attempt's error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry slept through cancellation")
	}
	if attempts != 1 {
		t.Errorf("ran %d attempts, want 1", attempts)
	}
}

func TestRetryCancelledContextNoRedispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attempts := 0
	err := Retry(ctx, fastRetry, nil, func(context.Context) error {
		attempts++
		return errTransient
	})
	if !errors.Is(err, errTransient) {
		t.Fatalf("Retry = %v", err)
	}
	if attempts != 1 {
		t.Errorf("ran %d attempts against a dead context, want 1", attempts)
	}
}

// TestWithRetryInStream: a flaky executor — every frame fails on its
// first try — behind WithRetry still yields a complete, in-order
// stream, with the retries invisible in the output.
func TestWithRetryInStream(t *testing.T) {
	const frames = 20
	var mu sync.Mutex
	firstTry := make(map[int]bool)
	flaky := ExecFunc[int, int](func(_ context.Context, v int) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		if !firstTry[v] {
			firstTry[v] = true
			return 0, errTransient
		}
		return v * v, nil
	})

	p := New(context.Background())
	in := make([]int, frames)
	for i := range in {
		in[i] = i
	}
	src := FromSlice(p, 2, in)
	out := MapExec(p, src, StageConfig{Name: "flaky", Workers: 4},
		WithRetry[int, int](flaky, fastRetry, nil))
	got := Collect(p, out)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != frames {
		t.Fatalf("stream emitted %d frames, want %d", len(*got), frames)
	}
	for i, v := range *got {
		if v != i*i {
			t.Errorf("frame %d = %d, want %d (order or value lost across retry)", i, v, i*i)
		}
	}
}

// TestWithRetryExhaustionFailsStream: a permanently failing frame
// still fails the pipeline once the policy is spent.
func TestWithRetryExhaustionFailsStream(t *testing.T) {
	var attempts atomic.Int64
	dead := ExecFunc[int, int](func(_ context.Context, v int) (int, error) {
		attempts.Add(1)
		return 0, fmt.Errorf("frame %d: %w", v, errTransient)
	})
	p := New(context.Background())
	out := MapExec(p, FromSlice(p, 1, []int{0}), StageConfig{Name: "dead", Workers: 1},
		WithRetry[int, int](dead, fastRetry, nil))
	Collect(p, out)
	if err := p.Wait(); !errors.Is(err, errTransient) {
		t.Fatalf("Wait = %v, want the stage error", err)
	}
	if got := attempts.Load(); got != int64(fastRetry.MaxAttempts) {
		t.Errorf("ran %d attempts, want %d", got, fastRetry.MaxAttempts)
	}
}
