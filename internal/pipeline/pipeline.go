// Package pipeline is the streaming stage engine behind the core
// façade: a generic executor that connects typed stages with bounded
// channels so successive frames of a time series overlap — frame N+1
// partitions while frame N extracts and frame N-1 renders, the same
// stage-parallel structure the paper's chain of separate programs
// (simulate → partition → extract → render) has when driven over
// hundreds of time steps.
//
// The building blocks:
//
//   - A Pipeline owns the shared context, the first error, and the
//     lifetime of every goroutine a stream starts. Wait blocks until
//     all stages drain and returns the first error; Cancel aborts the
//     whole stream promptly.
//   - Source feeds values into the chain from a generator goroutine.
//   - Map is a stage: per-stage worker counts built on par.Pool, a
//     bounded output channel for backpressure, and order preservation
//     (results are re-sequenced, so a multi-worker stage still emits
//     frames in input order — required for deterministic output files
//     and bit-identical comparisons against the serial path).
//   - StageExecutor is the seam under Map: MapExec runs the same
//     ordering/backpressure/cancellation machinery over any executor,
//     so a stage body can run in-process (ExecFunc over par.Pool
//     workers) or on a remote worker process (the distributed-stage
//     path wired by core.StreamOptions.ExtractAddr) without the engine
//     knowing the difference.
//   - Sink and Collect terminate a chain.
//   - FreeList (freelist.go) recycles per-frame scratch buffers
//     (projection point slices, framebuffers) through a sync.Pool so a
//     long stream's allocation rate is bounded by the number of frames
//     in flight, not the number of frames processed.
//
// Error handling is first-error-wins: a failing stage records its
// error and cancels the shared context; every blocked send, receive
// and generator observes the cancellation and unwinds, so Wait returns
// promptly with no goroutine left behind.
//
// # Stage sizing and defaults
//
// StageConfig.Workers is mandatory and must be >= 1 — a zero config no
// longer silently runs one worker; Map/MapExec fail the pipeline on an
// invalid config (Workers <= 0, negative Buf, MaxWorkers < MinWorkers,
// or a starting Workers outside the bounds). Buf defaults to Workers.
// MinWorkers/MaxWorkers both zero pins the stage; MaxWorkers > 0 makes
// it elastic (MinWorkers 0 then means 1).
//
// # Telemetry & balancing
//
// Every stage feeds a lock-cheap StageMetrics block: per-frame service
// time (cumulative + EWMA), queue-wait split into input-recv and
// output-send blocking, in-flight and completed counts.
// Pipeline.Snapshot diffs those counters since the previous call into
// a []StageSnapshot table in chain order — per stage: worker count and
// bounds, windowed throughput (frames/s), utilization (busy
// worker-time fraction; for a Source, 1 − send-wait), RecvWait /
// SendWait fractions, placement side and per-side EWMAs — and marks
// the critical-path stage (highest utilization × (1 − RecvWait), ties
// toward the front of the chain).
//
// A Balancer (balancer.go) polls Snapshot on an interval and, with
// hysteresis, moves workers from over-provisioned elastic stages to
// the critical stage within a global budget via SetStageWorkers — the
// par.Pool under each stage grows and shrinks its worker loop live at
// task boundaries, so re-sequencing (and therefore output order and
// bit-identity) is untouched. When a stage runs a SwitchExec
// (switch.go), the balancer can also flip it between its local and
// remote executor at a frame boundary via SetStagePlacement: remote
// when the local side saturates and workers can't grow, back home when
// the remote path degrades. Every decision is a pure function of the
// snapshot sequence, so tests can replay snapshots and assert the
// exact moves.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/par"
)

// Pipeline coordinates the stages of one streaming run. Create with
// New, wire stages with Source/Map/Sink, then Wait. The zero value is
// not usable.
type Pipeline struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	err      error
	resolved bool // Wait has fixed the final error
	cleanups []func()

	// Telemetry (metrics.go): stage metrics blocks in chain order, the
	// cumulative counters at the previous Snapshot, and the snapshot
	// window anchors.
	stages   []*StageMetrics
	lastCum  []stageCum
	lastSnap time.Time
	created  time.Time

	cleanupOnce sync.Once
}

// New returns a pipeline whose stages run under a child of ctx:
// cancelling ctx aborts the stream.
func New(ctx context.Context) *Pipeline {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	return &Pipeline{ctx: ctx, cancel: cancel, created: time.Now()}
}

// Context returns the pipeline's context; stage functions receive it
// and long-running bodies should poll it.
func (p *Pipeline) Context() context.Context { return p.ctx }

// Cancel aborts the stream. Stages unwind promptly; Wait returns the
// cancellation error unless a stage failed first.
func (p *Pipeline) Cancel() { p.fail(context.Canceled) }

// Fail aborts the stream with the given error (first error wins), for
// callers that detect a problem outside any stage body.
func (p *Pipeline) Fail(err error) { p.fail(err) }

// fail records the first error and cancels the shared context.
func (p *Pipeline) fail(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.cancel()
}

// Defer registers fn to run exactly once after every stage goroutine
// has exited, in reverse registration order — release hooks for
// resources a stream owns for its whole lifetime (a dialed remote
// worker connection, a temp directory). Cleanups run on the first Wait
// call to observe the drained pipeline, clean or failed.
func (p *Pipeline) Defer(fn func()) {
	p.mu.Lock()
	p.cleanups = append(p.cleanups, fn)
	p.mu.Unlock()
}

// Wait blocks until every stage goroutine has exited and returns the
// first error (nil on a clean run). A run aborted by the parent
// context reports that context's error, so a truncated stream is
// never mistaken for a completed one. Wait is safe to call from
// multiple goroutines.
func (p *Pipeline) Wait() error {
	p.wg.Wait()
	p.cleanupOnce.Do(func() {
		p.mu.Lock()
		cleanups := p.cleanups
		p.cleanups = nil
		p.mu.Unlock()
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	})
	p.mu.Lock()
	if !p.resolved {
		if p.err == nil {
			// No stage failed and nobody called Cancel/Fail: any live
			// cancellation on the shared context came from the parent.
			// Resolve exactly once — the release-cancel below must not
			// turn a later concurrent Wait's nil into a cancellation.
			p.err = context.Cause(p.ctx)
		}
		p.resolved = true
	}
	err := p.err
	p.mu.Unlock()
	p.cancel() // release the context even on clean runs
	return err
}

// go_ runs f tracked by the pipeline's WaitGroup.
func (p *Pipeline) go_(f func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		f()
	}()
}

// send delivers v unless the pipeline is cancelled first.
func send[T any](ctx context.Context, ch chan<- T, v T) bool {
	select {
	case ch <- v:
		return true
	case <-ctx.Done():
		return false
	}
}

// recv takes the next value; ok is false once ch closes or the
// pipeline is cancelled.
func recv[T any](ctx context.Context, ch <-chan T) (v T, ok bool) {
	select {
	case v, ok = <-ch:
		return v, ok
	case <-ctx.Done():
		return v, false
	}
}

// StageConfig sizes one stage. Workers must be explicit and >= 1 —
// the engine no longer silently picks a worker count for a zero
// config. Defaults for the optional fields: Buf 0 means Workers;
// MinWorkers/MaxWorkers both 0 means a fixed stage. Setting
// MaxWorkers > 0 makes the stage elastic: the balancer (or
// Pipeline.SetStageWorkers) may move it anywhere in
// [max(MinWorkers,1), MaxWorkers] live, and Workers — the starting
// count — must lie inside those bounds. An invalid config fails the
// pipeline at construction.
type StageConfig struct {
	Name    string // used in error messages and the snapshot table
	Workers int    // initial concurrent applications of the stage body (>= 1)
	Buf     int    // output channel capacity (0 = Workers)

	// Rebalance bounds. MaxWorkers > 0 marks the stage elastic;
	// MinWorkers 0 then means 1. MaxWorkers 0 pins the stage at
	// Workers.
	MinWorkers int
	MaxWorkers int
}

func (c StageConfig) buf() int {
	if c.Buf > 0 {
		return c.Buf
	}
	return c.Workers
}

func (c StageConfig) minWorkers() int {
	if c.MinWorkers > 0 {
		return c.MinWorkers
	}
	return 1
}

func (c StageConfig) maxWorkers() int {
	if c.MaxWorkers > 0 {
		return c.MaxWorkers
	}
	return c.Workers
}

// validate rejects configs the engine used to paper over: a missing
// worker count, inverted rebalance bounds, or a starting count outside
// them.
func (c StageConfig) validate() error {
	name := c.Name
	if name == "" {
		name = "(unnamed)"
	}
	if c.Workers <= 0 {
		return fmt.Errorf("pipeline: stage %s: Workers must be >= 1, got %d", name, c.Workers)
	}
	if c.Buf < 0 {
		return fmt.Errorf("pipeline: stage %s: Buf must be >= 0, got %d", name, c.Buf)
	}
	if c.MinWorkers < 0 {
		return fmt.Errorf("pipeline: stage %s: MinWorkers must be >= 0, got %d", name, c.MinWorkers)
	}
	if c.MaxWorkers < 0 {
		return fmt.Errorf("pipeline: stage %s: MaxWorkers must be >= 0, got %d", name, c.MaxWorkers)
	}
	if c.MaxWorkers > 0 {
		if c.MaxWorkers < c.minWorkers() {
			return fmt.Errorf("pipeline: stage %s: MaxWorkers %d < MinWorkers %d", name, c.MaxWorkers, c.minWorkers())
		}
		if c.Workers < c.minWorkers() || c.Workers > c.MaxWorkers {
			return fmt.Errorf("pipeline: stage %s: Workers %d outside [%d, %d]", name, c.Workers, c.minWorkers(), c.MaxWorkers)
		}
	} else if c.MinWorkers > 0 {
		return fmt.Errorf("pipeline: stage %s: MinWorkers %d set without MaxWorkers", name, c.MinWorkers)
	}
	return nil
}

// stageError wraps a stage body failure with the stage's name.
func stageError(name string, err error) error {
	if name == "" {
		return err
	}
	return fmt.Errorf("pipeline: stage %s: %w", name, err)
}

// Source starts a generator goroutine feeding a bounded channel of
// depth buf (minimum 1). emit returns false once the pipeline is
// cancelled; the generator should then return promptly (its error, if
// any, is ignored after cancellation wins). Returning a non-nil error
// fails the pipeline.
func Source[T any](p *Pipeline, buf int, gen func(ctx context.Context, emit func(T) bool) error) <-chan T {
	if buf < 1 {
		buf = 1
	}
	out := make(chan T, buf)
	m := p.newStage("source", KindSource, 1, 0, 0)
	p.go_(func() {
		defer close(out)
		defer m.finished.Store(true)
		emit := func(v T) bool {
			t0 := nowNanos()
			ok := send(p.ctx, out, v)
			m.sendWaitNS.Add(nowNanos() - t0)
			if ok {
				m.done.Add(1)
			}
			return ok
		}
		if err := gen(p.ctx, emit); err != nil && p.ctx.Err() == nil {
			p.fail(stageError("source", err))
		}
	})
	return out
}

// FromSlice is a Source over a fixed set of values.
func FromSlice[T any](p *Pipeline, buf int, vs []T) <-chan T {
	return Source(p, buf, func(_ context.Context, emit func(T) bool) error {
		for _, v := range vs {
			if !emit(v) {
				return nil
			}
		}
		return nil
	})
}

// seqItem tags a value with its input sequence number so multi-worker
// stages can restore order.
type seqItem[T any] struct {
	seq int64
	val T
}

// StageExecutor is the seam between the Map machinery — sequence
// tagging, result re-sequencing, bounded-channel backpressure,
// first-error cancellation — and where a stage's per-frame work
// actually runs. Apply is called from up to cfg.Workers goroutines
// concurrently, so implementations must be safe for concurrent use.
//
// The in-process path is ExecFunc: the body runs on this process's
// par.Pool workers. A remote executor instead ships the frame payload
// to a worker process and blocks for the reply; with Workers > 1 the
// stage keeps several frames in flight on one multiplexed connection,
// overlapping wide-area round-trips, while the shared reorderer
// re-sequences the out-of-order replies back into frame order.
type StageExecutor[I, O any] interface {
	Apply(ctx context.Context, v I) (O, error)
}

// ExecFunc adapts a plain stage body to a StageExecutor — the
// in-process execution path.
type ExecFunc[I, O any] func(ctx context.Context, v I) (O, error)

// Apply implements StageExecutor.
func (f ExecFunc[I, O]) Apply(ctx context.Context, v I) (O, error) { return f(ctx, v) }

// Map connects in to a new bounded output channel through fn. Up to
// cfg.Workers frames are processed concurrently on a par.Pool; output
// order always matches input order regardless of worker count. A fn
// error fails the pipeline and cancels the stream.
func Map[I, O any](p *Pipeline, in <-chan I, cfg StageConfig, fn func(ctx context.Context, v I) (O, error)) <-chan O {
	return MapExec(p, in, cfg, ExecFunc[I, O](fn))
}

// MapExec is Map with the execution strategy made explicit: the stage
// machinery (ordering, backpressure, cancellation) is identical
// whether ex runs the body in-process or on a remote worker.
func MapExec[I, O any](p *Pipeline, in <-chan I, cfg StageConfig, ex StageExecutor[I, O]) <-chan O {
	if err := cfg.validate(); err != nil {
		p.fail(err)
		out := make(chan O)
		close(out)
		return out
	}
	workers := cfg.Workers
	maxW := cfg.maxWorkers()
	m := p.newStage(cfg.Name, KindMap, workers, cfg.minWorkers(), maxW)
	if pe, ok := ex.(PlacementExec); ok {
		m.place = pe
	}
	out := make(chan O, cfg.buf())
	// Results and the pool queue are buffered to maxWorkers+buf so a
	// worker never blocks on a reorderer that is itself blocked
	// downstream holding earlier seqs — even after the stage grows to
	// its full bound.
	results := make(chan seqItem[O], maxW+cfg.buf())
	pool := par.NewPool(workers, maxW+cfg.buf())
	if cfg.MaxWorkers > 0 {
		m.resize = func(n int) { pool.Resize(n) }
	}

	// Dispatcher: tag inputs with sequence numbers and submit to the
	// pool. Submit blocking on a full queue is the stage's backpressure.
	p.go_(func() {
		defer close(results)
		defer pool.Close()
		var seq int64
		for {
			t0 := nowNanos()
			v, ok := recv(p.ctx, in)
			m.recvWaitNS.Add(nowNanos() - t0)
			if !ok {
				return
			}
			s := seq
			seq++
			m.inFlight.Add(1)
			pool.Submit(func() {
				if p.ctx.Err() != nil {
					m.inFlight.Add(-1)
					return
				}
				t1 := nowNanos()
				o, err := ex.Apply(p.ctx, v)
				m.noteService(nowNanos()-t1, err == nil)
				if err != nil {
					m.inFlight.Add(-1)
					if p.ctx.Err() == nil {
						p.fail(stageError(cfg.Name, err))
					}
					return
				}
				if !send(p.ctx, results, seqItem[O]{s, o}) {
					m.inFlight.Add(-1)
				}
			})
		}
	})

	// Reorderer: emit results in sequence order.
	p.go_(func() {
		defer close(out)
		defer m.finished.Store(true)
		next := int64(0)
		pending := make(map[int64]O, maxW)
		for r := range results {
			pending[r.seq] = r.val
			for {
				v, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				t0 := nowNanos()
				ok = send(p.ctx, out, v)
				m.sendWaitNS.Add(nowNanos() - t0)
				m.inFlight.Add(-1)
				if !ok {
					return
				}
				next++
			}
		}
	})
	return out
}

// Sink consumes in on a single goroutine in arrival order (which Map
// guarantees is input order), calling fn for each value. A fn error
// fails the pipeline. Use it for ordered writers at the end of a
// chain.
func Sink[T any](p *Pipeline, in <-chan T, name string, fn func(ctx context.Context, v T) error) {
	m := p.newStage(name, KindSink, 1, 0, 0)
	p.go_(func() {
		defer m.finished.Store(true)
		for {
			t0 := nowNanos()
			v, ok := recv(p.ctx, in)
			m.recvWaitNS.Add(nowNanos() - t0)
			if !ok {
				return
			}
			t1 := nowNanos()
			err := fn(p.ctx, v)
			m.noteService(nowNanos()-t1, err == nil)
			if err != nil {
				if p.ctx.Err() == nil {
					p.fail(stageError(name, err))
				}
				return
			}
		}
	})
}

// Collect accumulates every value of in into a slice. The slice is
// valid only after Wait returns.
func Collect[T any](p *Pipeline, in <-chan T) *[]T {
	out := new([]T)
	Sink(p, in, "collect", func(_ context.Context, v T) error {
		*out = append(*out, v)
		return nil
	})
	return out
}

// Stream pairs a pipeline with its typed output channel — the handle
// the core façade returns to callers. Range over Out, then call Wait;
// or Cancel mid-stream to abort.
type Stream[T any] struct {
	Out <-chan T
	p   *Pipeline
}

// NewStream wraps an output channel and its pipeline.
func NewStream[T any](p *Pipeline, out <-chan T) *Stream[T] {
	return &Stream[T]{Out: out, p: p}
}

// Wait drains any unread output and blocks until the stream has fully
// unwound, returning its first error.
func (s *Stream[T]) Wait() error {
	for range s.Out {
	}
	return s.p.Wait()
}

// Cancel aborts the stream; Wait then returns context.Canceled unless
// a stage failed first.
func (s *Stream[T]) Cancel() { s.p.Cancel() }

// Snapshot returns the underlying pipeline's per-stage telemetry table
// (see Pipeline.Snapshot) — the hook a service publishes through the
// Stats verb.
func (s *Stream[T]) Snapshot() []StageSnapshot { return s.p.Snapshot() }

// Pipeline exposes the underlying pipeline for balancer control and
// Defer hooks.
func (s *Stream[T]) Pipeline() *Pipeline { return s.p }
