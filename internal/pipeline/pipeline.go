// Package pipeline is the streaming stage engine behind the core
// façade: a generic executor that connects typed stages with bounded
// channels so successive frames of a time series overlap — frame N+1
// partitions while frame N extracts and frame N-1 renders, the same
// stage-parallel structure the paper's chain of separate programs
// (simulate → partition → extract → render) has when driven over
// hundreds of time steps.
//
// The building blocks:
//
//   - A Pipeline owns the shared context, the first error, and the
//     lifetime of every goroutine a stream starts. Wait blocks until
//     all stages drain and returns the first error; Cancel aborts the
//     whole stream promptly.
//   - Source feeds values into the chain from a generator goroutine.
//   - Map is a stage: per-stage worker counts built on par.Pool, a
//     bounded output channel for backpressure, and order preservation
//     (results are re-sequenced, so a multi-worker stage still emits
//     frames in input order — required for deterministic output files
//     and bit-identical comparisons against the serial path).
//   - StageExecutor is the seam under Map: MapExec runs the same
//     ordering/backpressure/cancellation machinery over any executor,
//     so a stage body can run in-process (ExecFunc over par.Pool
//     workers) or on a remote worker process (the distributed-stage
//     path wired by core.StreamOptions.ExtractAddr) without the engine
//     knowing the difference.
//   - Sink and Collect terminate a chain.
//   - FreeList (freelist.go) recycles per-frame scratch buffers
//     (projection point slices, framebuffers) through a sync.Pool so a
//     long stream's allocation rate is bounded by the number of frames
//     in flight, not the number of frames processed.
//
// Error handling is first-error-wins: a failing stage records its
// error and cancels the shared context; every blocked send, receive
// and generator observes the cancellation and unwinds, so Wait returns
// promptly with no goroutine left behind.
package pipeline

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/par"
)

// Pipeline coordinates the stages of one streaming run. Create with
// New, wire stages with Source/Map/Sink, then Wait. The zero value is
// not usable.
type Pipeline struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	err      error
	resolved bool // Wait has fixed the final error
	cleanups []func()

	cleanupOnce sync.Once
}

// New returns a pipeline whose stages run under a child of ctx:
// cancelling ctx aborts the stream.
func New(ctx context.Context) *Pipeline {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	return &Pipeline{ctx: ctx, cancel: cancel}
}

// Context returns the pipeline's context; stage functions receive it
// and long-running bodies should poll it.
func (p *Pipeline) Context() context.Context { return p.ctx }

// Cancel aborts the stream. Stages unwind promptly; Wait returns the
// cancellation error unless a stage failed first.
func (p *Pipeline) Cancel() { p.fail(context.Canceled) }

// Fail aborts the stream with the given error (first error wins), for
// callers that detect a problem outside any stage body.
func (p *Pipeline) Fail(err error) { p.fail(err) }

// fail records the first error and cancels the shared context.
func (p *Pipeline) fail(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.cancel()
}

// Defer registers fn to run exactly once after every stage goroutine
// has exited, in reverse registration order — release hooks for
// resources a stream owns for its whole lifetime (a dialed remote
// worker connection, a temp directory). Cleanups run on the first Wait
// call to observe the drained pipeline, clean or failed.
func (p *Pipeline) Defer(fn func()) {
	p.mu.Lock()
	p.cleanups = append(p.cleanups, fn)
	p.mu.Unlock()
}

// Wait blocks until every stage goroutine has exited and returns the
// first error (nil on a clean run). A run aborted by the parent
// context reports that context's error, so a truncated stream is
// never mistaken for a completed one. Wait is safe to call from
// multiple goroutines.
func (p *Pipeline) Wait() error {
	p.wg.Wait()
	p.cleanupOnce.Do(func() {
		p.mu.Lock()
		cleanups := p.cleanups
		p.cleanups = nil
		p.mu.Unlock()
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	})
	p.mu.Lock()
	if !p.resolved {
		if p.err == nil {
			// No stage failed and nobody called Cancel/Fail: any live
			// cancellation on the shared context came from the parent.
			// Resolve exactly once — the release-cancel below must not
			// turn a later concurrent Wait's nil into a cancellation.
			p.err = context.Cause(p.ctx)
		}
		p.resolved = true
	}
	err := p.err
	p.mu.Unlock()
	p.cancel() // release the context even on clean runs
	return err
}

// go_ runs f tracked by the pipeline's WaitGroup.
func (p *Pipeline) go_(f func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		f()
	}()
}

// send delivers v unless the pipeline is cancelled first.
func send[T any](ctx context.Context, ch chan<- T, v T) bool {
	select {
	case ch <- v:
		return true
	case <-ctx.Done():
		return false
	}
}

// recv takes the next value; ok is false once ch closes or the
// pipeline is cancelled.
func recv[T any](ctx context.Context, ch <-chan T) (v T, ok bool) {
	select {
	case v, ok = <-ch:
		return v, ok
	case <-ctx.Done():
		return v, false
	}
}

// StageConfig sizes one stage.
type StageConfig struct {
	Name    string // used in error messages
	Workers int    // concurrent applications of the stage body (0 or <0 = 1)
	Buf     int    // output channel capacity (0 = Workers)
}

func (c StageConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 1
}

func (c StageConfig) buf() int {
	if c.Buf > 0 {
		return c.Buf
	}
	return c.workers()
}

// stageError wraps a stage body failure with the stage's name.
func stageError(name string, err error) error {
	if name == "" {
		return err
	}
	return fmt.Errorf("pipeline: stage %s: %w", name, err)
}

// Source starts a generator goroutine feeding a bounded channel of
// depth buf (minimum 1). emit returns false once the pipeline is
// cancelled; the generator should then return promptly (its error, if
// any, is ignored after cancellation wins). Returning a non-nil error
// fails the pipeline.
func Source[T any](p *Pipeline, buf int, gen func(ctx context.Context, emit func(T) bool) error) <-chan T {
	if buf < 1 {
		buf = 1
	}
	out := make(chan T, buf)
	p.go_(func() {
		defer close(out)
		emit := func(v T) bool { return send(p.ctx, out, v) }
		if err := gen(p.ctx, emit); err != nil && p.ctx.Err() == nil {
			p.fail(stageError("source", err))
		}
	})
	return out
}

// FromSlice is a Source over a fixed set of values.
func FromSlice[T any](p *Pipeline, buf int, vs []T) <-chan T {
	return Source(p, buf, func(_ context.Context, emit func(T) bool) error {
		for _, v := range vs {
			if !emit(v) {
				return nil
			}
		}
		return nil
	})
}

// seqItem tags a value with its input sequence number so multi-worker
// stages can restore order.
type seqItem[T any] struct {
	seq int64
	val T
}

// StageExecutor is the seam between the Map machinery — sequence
// tagging, result re-sequencing, bounded-channel backpressure,
// first-error cancellation — and where a stage's per-frame work
// actually runs. Apply is called from up to cfg.Workers goroutines
// concurrently, so implementations must be safe for concurrent use.
//
// The in-process path is ExecFunc: the body runs on this process's
// par.Pool workers. A remote executor instead ships the frame payload
// to a worker process and blocks for the reply; with Workers > 1 the
// stage keeps several frames in flight on one multiplexed connection,
// overlapping wide-area round-trips, while the shared reorderer
// re-sequences the out-of-order replies back into frame order.
type StageExecutor[I, O any] interface {
	Apply(ctx context.Context, v I) (O, error)
}

// ExecFunc adapts a plain stage body to a StageExecutor — the
// in-process execution path.
type ExecFunc[I, O any] func(ctx context.Context, v I) (O, error)

// Apply implements StageExecutor.
func (f ExecFunc[I, O]) Apply(ctx context.Context, v I) (O, error) { return f(ctx, v) }

// Map connects in to a new bounded output channel through fn. Up to
// cfg.Workers frames are processed concurrently on a par.Pool; output
// order always matches input order regardless of worker count. A fn
// error fails the pipeline and cancels the stream.
func Map[I, O any](p *Pipeline, in <-chan I, cfg StageConfig, fn func(ctx context.Context, v I) (O, error)) <-chan O {
	return MapExec(p, in, cfg, ExecFunc[I, O](fn))
}

// MapExec is Map with the execution strategy made explicit: the stage
// machinery (ordering, backpressure, cancellation) is identical
// whether ex runs the body in-process or on a remote worker.
func MapExec[I, O any](p *Pipeline, in <-chan I, cfg StageConfig, ex StageExecutor[I, O]) <-chan O {
	workers := cfg.workers()
	out := make(chan O, cfg.buf())
	// Results are buffered to workers+buf so a worker never blocks on a
	// reorderer that is itself blocked downstream holding earlier seqs.
	results := make(chan seqItem[O], workers+cfg.buf())
	pool := par.NewPool(workers, workers)

	// Dispatcher: tag inputs with sequence numbers and submit to the
	// pool. Submit blocking on a full queue is the stage's backpressure.
	p.go_(func() {
		defer close(results)
		defer pool.Close()
		var seq int64
		for {
			v, ok := recv(p.ctx, in)
			if !ok {
				return
			}
			s := seq
			seq++
			pool.Submit(func() {
				if p.ctx.Err() != nil {
					return
				}
				o, err := ex.Apply(p.ctx, v)
				if err != nil {
					if p.ctx.Err() == nil {
						p.fail(stageError(cfg.Name, err))
					}
					return
				}
				send(p.ctx, results, seqItem[O]{s, o})
			})
		}
	})

	// Reorderer: emit results in sequence order.
	p.go_(func() {
		defer close(out)
		next := int64(0)
		pending := make(map[int64]O, workers)
		for r := range results {
			pending[r.seq] = r.val
			for {
				v, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if !send(p.ctx, out, v) {
					return
				}
				next++
			}
		}
	})
	return out
}

// Sink consumes in on a single goroutine in arrival order (which Map
// guarantees is input order), calling fn for each value. A fn error
// fails the pipeline. Use it for ordered writers at the end of a
// chain.
func Sink[T any](p *Pipeline, in <-chan T, name string, fn func(ctx context.Context, v T) error) {
	p.go_(func() {
		for {
			v, ok := recv(p.ctx, in)
			if !ok {
				return
			}
			if err := fn(p.ctx, v); err != nil {
				if p.ctx.Err() == nil {
					p.fail(stageError(name, err))
				}
				return
			}
		}
	})
}

// Collect accumulates every value of in into a slice. The slice is
// valid only after Wait returns.
func Collect[T any](p *Pipeline, in <-chan T) *[]T {
	out := new([]T)
	Sink(p, in, "collect", func(_ context.Context, v T) error {
		*out = append(*out, v)
		return nil
	})
	return out
}

// Stream pairs a pipeline with its typed output channel — the handle
// the core façade returns to callers. Range over Out, then call Wait;
// or Cancel mid-stream to abort.
type Stream[T any] struct {
	Out <-chan T
	p   *Pipeline
}

// NewStream wraps an output channel and its pipeline.
func NewStream[T any](p *Pipeline, out <-chan T) *Stream[T] {
	return &Stream[T]{Out: out, p: p}
}

// Wait drains any unread output and blocks until the stream has fully
// unwound, returning its first error.
func (s *Stream[T]) Wait() error {
	for range s.Out {
	}
	return s.p.Wait()
}

// Cancel aborts the stream; Wait then returns context.Canceled unless
// a stage failed first.
func (s *Stream[T]) Cancel() { s.p.Cancel() }
