package pipeline

import (
	"context"
	"math/rand"
	"time"
)

// RetryPolicy bounds how a transiently failing stage application is
// retried: up to MaxAttempts total tries, sleeping an exponentially
// growing, jittered delay between them. The zero value is a usable
// default (3 attempts, 50ms base doubling to a 2s cap, ±50% jitter).
//
// Retrying is what turns a lost frame into a re-dispatched frame
// instead of a dead stream: the distributed extract stage wraps its
// fleet dispatch in this policy, so a worker crash mid-frame costs one
// backoff, not the run. Because MapExec re-sequences results by input
// sequence number, a retried frame — however late it lands — still
// emits in order, and the output stays bit-identical to a run with no
// failures at all.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included
	// (<= 0 means 3). Retrying stops as soon as an attempt succeeds,
	// the error is classified non-retryable, or the context dies.
	MaxAttempts int
	// BaseDelay is the sleep before the second attempt (<= 0 means
	// 50ms); it doubles each retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay (<= 0 means 2s).
	MaxDelay time.Duration
	// Jitter widens each delay by a uniformly random fraction of
	// itself in [0, Jitter], decorrelating the retry storms of many
	// concurrent frames after one shared failure. 0 means the default
	// 0.5; negative disables jitter.
	Jitter float64
	// Seed seeds the policy's private jitter RNG. Every Retry call
	// derives its own rand.Rand from it — the package-global math/rand
	// stream is never consulted — so retry timing is reproducible run
	// to run and failover tests need no sleeps to line up under -race.
	// 0 means the fixed default seed 1.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// seed returns the jitter RNG seed (0 means 1, so the zero policy is
// still fully deterministic).
func (p RetryPolicy) seed() int64 {
	if p.Seed != 0 {
		return p.Seed
	}
	return 1
}

// delay returns the jittered backoff before attempt n+1 (n counts
// completed attempts, so n >= 1). rng may be nil when jitter is
// disabled.
func (p RetryPolicy) delay(n int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay << (n - 1)
	if d > p.MaxDelay || d <= 0 { // <= 0: shift overflow
		d = p.MaxDelay
	}
	if p.Jitter > 0 && rng != nil {
		d += time.Duration(p.Jitter * rng.Float64() * float64(d))
	}
	return d
}

// Retry runs f under pol: on a retryable error it sleeps the policy's
// backoff and tries again, up to the attempt bound. retryable
// classifies errors (nil means every error retries); context errors
// never retry — a cancelled pipeline must unwind, not back off. The
// last attempt's error is returned.
func Retry(ctx context.Context, pol RetryPolicy, retryable func(error) bool, f func(ctx context.Context) error) error {
	pol = pol.withDefaults()
	var rng *rand.Rand // allocated only if an attempt actually backs off
	for attempt := 1; ; attempt++ {
		err := f(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The attempt failed because (or while) the caller's context
			// died; report the attempt's error, but never re-dispatch
			// work nobody wants.
			return err
		}
		if attempt >= pol.MaxAttempts || (retryable != nil && !retryable(err)) {
			return err
		}
		if pol.Jitter > 0 && rng == nil {
			rng = rand.New(rand.NewSource(pol.seed()))
		}
		t := time.NewTimer(pol.delay(attempt, rng))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return err
		}
	}
}

// retryExec decorates a StageExecutor with a RetryPolicy.
type retryExec[I, O any] struct {
	ex        StageExecutor[I, O]
	pol       RetryPolicy
	retryable func(error) bool
}

// WithRetry wraps ex so each Apply is retried under pol — the
// executor-seam form of Retry. The stage machinery above (sequence
// tagging, re-sequencing, backpressure) is untouched: a frame that
// fails, backs off and succeeds on attempt three still emits exactly
// where its sequence number says, so retries are invisible in the
// output. retryable classifies errors as in Retry.
func WithRetry[I, O any](ex StageExecutor[I, O], pol RetryPolicy, retryable func(error) bool) StageExecutor[I, O] {
	return &retryExec[I, O]{ex: ex, pol: pol, retryable: retryable}
}

// Apply implements StageExecutor.
func (r *retryExec[I, O]) Apply(ctx context.Context, v I) (O, error) {
	var out O
	err := Retry(ctx, r.pol, r.retryable, func(ctx context.Context) error {
		o, err := r.ex.Apply(ctx, v)
		if err == nil {
			out = o
		}
		return err
	})
	return out, err
}
