package pipeline

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestStageConfigValidation pins the satellite contract: the engine
// rejects configs it used to paper over, failing the pipeline with a
// named-stage error instead of silently running one worker.
func TestStageConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  StageConfig
		want string
	}{
		{"zero workers", StageConfig{Name: "z"}, "Workers must be >= 1"},
		{"negative workers", StageConfig{Name: "n", Workers: -2}, "Workers must be >= 1"},
		{"negative buf", StageConfig{Name: "b", Workers: 1, Buf: -1}, "Buf must be >= 0"},
		{"inverted bounds", StageConfig{Name: "i", Workers: 4, MinWorkers: 4, MaxWorkers: 2}, "MaxWorkers 2 < MinWorkers 4"},
		{"start above max", StageConfig{Name: "a", Workers: 9, MaxWorkers: 4}, "outside"},
		{"start below min", StageConfig{Name: "u", Workers: 1, MinWorkers: 2, MaxWorkers: 4}, "outside"},
		{"min without max", StageConfig{Name: "m", Workers: 3, MinWorkers: 2}, "without MaxWorkers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New(context.Background())
			out := Map(p, FromSlice(p, 1, []int{1, 2}), tc.cfg,
				func(_ context.Context, v int) (int, error) { return v, nil })
			for range out {
			}
			err := p.Wait()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Wait() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestStageConfigValidationAcceptsElastic proves a well-formed elastic
// config passes and the stage runs.
func TestStageConfigValidationAcceptsElastic(t *testing.T) {
	p := New(context.Background())
	out := Map(p, FromSlice(p, 2, []int{1, 2, 3}),
		StageConfig{Name: "ok", Workers: 2, MinWorkers: 1, MaxWorkers: 4},
		func(_ context.Context, v int) (int, error) { return v * v, nil })
	got := Collect(p, out)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 3 {
		t.Fatalf("got %d results", len(*got))
	}
}

// TestSnapshotTelemetry runs a chain with a deliberately slow sink and
// checks the snapshot table: chain order, kinds, in-flight/done
// accounting, a critical-path mark on the bottleneck, and the final
// all-finished state.
func TestSnapshotTelemetry(t *testing.T) {
	p := New(context.Background())
	const frames = 40
	src := FromSlice(p, 1, make([]int, frames))
	mapped := Map(p, src, StageConfig{Name: "work", Workers: 1},
		func(_ context.Context, v int) (int, error) {
			time.Sleep(200 * time.Microsecond)
			return v, nil
		})
	Sink(p, mapped, "drain", func(_ context.Context, v int) error {
		// Far above timer granularity so the bottleneck is unambiguous.
		time.Sleep(4 * time.Millisecond)
		return nil
	})

	time.Sleep(50 * time.Millisecond)
	snap := p.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("%d stages in snapshot, want 3", len(snap))
	}
	wantNames := []string{"source", "work", "drain"}
	wantKinds := []StageKind{KindSource, KindMap, KindSink}
	for i, s := range snap {
		if s.Name != wantNames[i] || s.Kind != wantKinds[i] {
			t.Errorf("stage %d = %s/%s, want %s/%s", i, s.Name, s.Kind, wantNames[i], wantKinds[i])
		}
	}
	if !snap[2].Critical {
		t.Errorf("critical stage not the slow sink: %+v", snap)
	}
	if snap[2].ServiceEWMA < 2*time.Millisecond {
		t.Errorf("sink service EWMA %v, want >= 2ms", snap[2].ServiceEWMA)
	}
	if snap[1].Done == 0 || snap[1].Throughput <= 0 {
		t.Errorf("map stage shows no progress mid-run: done=%d tput=%g", snap[1].Done, snap[1].Throughput)
	}

	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	final := p.Snapshot()
	for _, s := range final {
		if !s.Finished {
			t.Errorf("stage %s not finished after Wait", s.Name)
		}
		if s.Done != frames {
			t.Errorf("stage %s done=%d, want %d", s.Name, s.Done, frames)
		}
		if s.InFlight != 0 {
			t.Errorf("stage %s in-flight=%d after drain", s.Name, s.InFlight)
		}
	}
}

// TestSetStageWorkersBounds pins the control surface: unknown or fixed
// stages refuse, elastic stages clamp to their bounds.
func TestSetStageWorkersBounds(t *testing.T) {
	p := New(context.Background())
	block := make(chan struct{})
	out := Map(p, FromSlice(p, 1, make([]int, 4)),
		StageConfig{Name: "elastic", Workers: 2, MaxWorkers: 4},
		func(ctx context.Context, v int) (int, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return v, nil
		})
	fixed := Map(p, out, StageConfig{Name: "fixed", Workers: 1},
		func(_ context.Context, v int) (int, error) { return v, nil })
	Collect(p, fixed)

	if p.SetStageWorkers("nope", 3) {
		t.Error("SetStageWorkers on unknown stage reported true")
	}
	if p.SetStageWorkers("fixed", 3) {
		t.Error("SetStageWorkers on fixed stage reported true")
	}
	if !p.SetStageWorkers("elastic", 99) {
		t.Error("SetStageWorkers on elastic stage reported false")
	}
	for _, s := range p.Snapshot() {
		if s.Name == "elastic" && s.Workers != 4 {
			t.Errorf("elastic workers = %d after clamped resize, want 4", s.Workers)
		}
	}
	close(block)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestMapExecOrderDeterministicAcrossResizes is the satellite
// determinism proof: an elastic stage thrashed between 1 and 8 workers
// mid-stream still emits every value, in input order, with identical
// content — rebalancing is invisible in the output.
func TestMapExecOrderDeterministicAcrossResizes(t *testing.T) {
	p := New(context.Background())
	const n = 400
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	out := Map(p, FromSlice(p, 4, vals),
		StageConfig{Name: "thrash", Workers: 2, MinWorkers: 1, MaxWorkers: 8},
		func(_ context.Context, v int) (int, error) {
			// Skewed latency: later frames often finish before earlier
			// ones, so ordering is genuinely exercised while workers
			// come and go.
			time.Sleep(time.Duration((v*37)%11) * 50 * time.Microsecond)
			return v * 3, nil
		})
	got := Collect(p, out)

	stop := make(chan struct{})
	resized := make(chan struct{})
	go func() {
		defer close(resized)
		sizes := []int{1, 8, 3, 1, 6, 2, 8, 1, 4}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.SetStageWorkers("thrash", sizes[i%len(sizes)])
			time.Sleep(500 * time.Microsecond)
		}
	}()
	err := p.Wait()
	close(stop)
	<-resized
	if err != nil {
		t.Fatal(err)
	}
	if len(*got) != n {
		t.Fatalf("%d of %d values emitted", len(*got), n)
	}
	for i, v := range *got {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d: rebalance disturbed order", i, v, i*3)
		}
	}
}
