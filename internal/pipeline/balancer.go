package pipeline

import (
	"fmt"
	"sync"
	"time"
)

// BalancerOptions tunes the self-balancing loop. The zero value is a
// usable default (20ms interval, grow/steal toward a stage above 75%
// utilization from donors below 45%, 2-tick settle, 1-tick cooldown,
// one worker per move, budget = the chain's initial elastic worker
// count, placement out at 85% saturation and home when the remote
// side's EWMA exceeds 1.5× local).
type BalancerOptions struct {
	// Interval between snapshot/decide ticks (<= 0 means 20ms).
	Interval time.Duration
	// HighWater is the utilization at which the critical stage is
	// considered starved of workers (<= 0 means 0.75).
	HighWater float64
	// LowWater is the utilization at or below which an elastic stage
	// may donate a worker (<= 0 means 0.45).
	LowWater float64
	// Settle is how many consecutive ticks a condition must hold
	// before the balancer acts — the hysteresis that stops one noisy
	// window from thrashing workers (<= 0 means 2).
	Settle int
	// Cooldown is how many ticks to sit out after a decision, letting
	// the windowed rates re-form around the new shape (< 0 means 0;
	// 0 means the default 1).
	Cooldown int
	// MaxMoves bounds the workers shifted per decision (<= 0 means 1).
	MaxMoves int
	// Budget caps the total workers across elastic stages. 0 means the
	// sum of their starting counts — rebalancing then only ever
	// redistributes, never adds load.
	Budget int
	// PlaceHighWater is the utilization at which a placeable critical
	// stage that cannot grow flips to its remote side (<= 0 means
	// 0.85).
	PlaceHighWater float64
	// ReturnFactor flips a remote stage home once its remote EWMA
	// exceeds ReturnFactor × its local EWMA — the degraded-WAN escape
	// hatch (<= 0 means 1.5).
	ReturnFactor float64
	// OnDecision, when set, observes every applied decision.
	OnDecision func(Decision)
}

func (o BalancerOptions) withDefaults() BalancerOptions {
	if o.Interval <= 0 {
		o.Interval = 20 * time.Millisecond
	}
	if o.HighWater <= 0 {
		o.HighWater = 0.75
	}
	if o.LowWater <= 0 {
		o.LowWater = 0.45
	}
	if o.Settle <= 0 {
		o.Settle = 2
	}
	if o.Cooldown == 0 {
		o.Cooldown = 1
	} else if o.Cooldown < 0 {
		o.Cooldown = 0
	}
	if o.MaxMoves <= 0 {
		o.MaxMoves = 1
	}
	if o.PlaceHighWater <= 0 {
		o.PlaceHighWater = 0.85
	}
	if o.ReturnFactor <= 0 {
		o.ReturnFactor = 1.5
	}
	return o
}

// DecisionKind tags what a balancer decision does.
type DecisionKind uint8

const (
	// DecisionGrow adds workers to the critical stage from unspent
	// budget.
	DecisionGrow DecisionKind = iota
	// DecisionMove shifts workers from a donor stage to the critical
	// stage.
	DecisionMove
	// DecisionPlace flips a stage between local and remote execution.
	DecisionPlace
)

// Decision is one balancer action, carrying absolute targets so
// applying it is idempotent and a replayed snapshot sequence yields a
// byte-identical decision log.
type Decision struct {
	Kind  DecisionKind
	Stage string // the stage acted on (the bottleneck)
	// Worker targets (Grow/Move): the new counts after the decision.
	StageWorkers int
	From         string // donor stage (Move only)
	FromWorkers  int
	// Placement target (Place): the new side.
	Remote bool
}

func (d Decision) String() string {
	switch d.Kind {
	case DecisionGrow:
		return fmt.Sprintf("grow %s to %d workers", d.Stage, d.StageWorkers)
	case DecisionMove:
		return fmt.Sprintf("move %s to %d, %s to %d workers", d.From, d.FromWorkers, d.Stage, d.StageWorkers)
	case DecisionPlace:
		side := "local"
		if d.Remote {
			side = "remote"
		}
		return fmt.Sprintf("place %s %s", d.Stage, side)
	}
	return "no-op"
}

// Balancer periodically snapshots a pipeline and shifts capacity
// toward the critical stage: workers first (within the budget and each
// stage's bounds), placement when workers can't help. Decide is a pure
// function of the snapshot sequence — feed it synthetic snapshots in
// tests and the decision log is fully deterministic. Construct with
// NewBalancer (decision engine only) or Pipeline.StartBalancer (engine
// plus the polling goroutine).
type Balancer struct {
	opts BalancerOptions
	p    *Pipeline // nil when driven by hand via Decide

	// Decision-engine state, touched only by the owning goroutine (or
	// the test calling Decide).
	budget    int
	budgetSet bool
	cooldown  int
	hot       map[string]int // consecutive ticks critical+saturated
	cold      map[string]int // consecutive ticks donatable
	placeHot  map[string]int // consecutive ticks saturated & unplaceable locally
	degraded  map[string]int // consecutive ticks remote side degraded

	mu     sync.Mutex
	ledger []Decision

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewBalancer returns an unstarted decision engine for opts. Use it in
// tests (or custom control loops) by calling Decide with snapshots and
// applying the decisions yourself.
func NewBalancer(opts BalancerOptions) *Balancer {
	return &Balancer{
		opts:     opts.withDefaults(),
		hot:      map[string]int{},
		cold:     map[string]int{},
		placeHot: map[string]int{},
		degraded: map[string]int{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// StartBalancer runs a balancer over p's snapshots until the pipeline
// is cancelled, drains, or Stop is called; the pipeline's Wait stops
// it via Defer. Decisions apply through SetStageWorkers and
// SetStagePlacement, so only elastic or placeable stages ever change.
func (p *Pipeline) StartBalancer(opts BalancerOptions) *Balancer {
	b := NewBalancer(opts)
	b.p = p
	go b.run()
	p.Defer(b.Stop)
	return b
}

// Stop halts the polling loop and blocks until it has exited. Safe to
// call more than once; a no-op for hand-driven balancers after the
// first call.
func (b *Balancer) Stop() {
	b.stopOnce.Do(func() { close(b.stop) })
	if b.p != nil {
		<-b.done
	}
}

// Decisions returns the applied decision log in order.
func (b *Balancer) Decisions() []Decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Decision(nil), b.ledger...)
}

func (b *Balancer) run() {
	defer close(b.done)
	t := time.NewTicker(b.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-b.p.ctx.Done():
			return
		case <-t.C:
			for _, d := range b.Decide(b.p.Snapshot()) {
				b.apply(d)
				b.mu.Lock()
				b.ledger = append(b.ledger, d)
				b.mu.Unlock()
				if b.opts.OnDecision != nil {
					b.opts.OnDecision(d)
				}
			}
		}
	}
}

func (b *Balancer) apply(d Decision) {
	if b.p == nil {
		return
	}
	switch d.Kind {
	case DecisionGrow:
		b.p.SetStageWorkers(d.Stage, d.StageWorkers)
	case DecisionMove:
		// Shrink the donor first so the chain never exceeds the budget,
		// even transiently.
		b.p.SetStageWorkers(d.From, d.FromWorkers)
		b.p.SetStageWorkers(d.Stage, d.StageWorkers)
	case DecisionPlace:
		b.p.SetStagePlacement(d.Stage, d.Remote)
	}
}

// Decide advances the engine one tick over snap and returns the
// decisions to apply (at most one per tick — capacity shifts are
// deliberate, not convulsive). Deterministic: the same snapshot
// sequence always yields the same decisions.
func (b *Balancer) Decide(snap []StageSnapshot) []Decision {
	o := b.opts

	// Locate the critical stage and update hysteresis streaks.
	var crit *StageSnapshot
	for i := range snap {
		s := &snap[i]
		if s.Critical {
			crit = s
		}
	}
	total := 0 // live elastic workers (finished stages have freed theirs)
	for i := range snap {
		s := &snap[i]
		if s.Resizable && !s.Finished {
			total += s.Workers
			if s.Critical && s.Utilization >= o.HighWater {
				b.hot[s.Name]++
			} else {
				b.hot[s.Name] = 0
			}
			if s.Utilization <= o.LowWater {
				b.cold[s.Name]++
			} else {
				b.cold[s.Name] = 0
			}
		}
		if s.Placeable && !s.Finished {
			if !s.Remote && s.Critical && s.Utilization >= o.PlaceHighWater {
				b.placeHot[s.Name]++
			} else {
				b.placeHot[s.Name] = 0
			}
			if s.Remote && s.LocalEWMA > 0 &&
				float64(s.RemoteEWMA) > o.ReturnFactor*float64(s.LocalEWMA) {
				b.degraded[s.Name]++
			} else {
				b.degraded[s.Name] = 0
			}
		}
	}
	if !b.budgetSet && total > 0 {
		b.budget = o.Budget
		if b.budget <= 0 {
			b.budget = total
		}
		b.budgetSet = true
	}
	if b.cooldown > 0 {
		b.cooldown--
		return nil
	}

	// Workers first: grow the critical stage from unspent budget, else
	// steal from the coldest donor.
	if crit != nil && crit.Resizable && !crit.Finished &&
		crit.Workers < crit.MaxWorkers && b.hot[crit.Name] >= o.Settle {
		if free := b.budget - total; free > 0 {
			n := minInt(o.MaxMoves, free, crit.MaxWorkers-crit.Workers)
			d := Decision{Kind: DecisionGrow, Stage: crit.Name, StageWorkers: crit.Workers + n}
			b.acted(crit.Name, "")
			return []Decision{d}
		}
		var donor *StageSnapshot
		for i := range snap {
			s := &snap[i]
			if !s.Resizable || s.Finished || s.Name == crit.Name ||
				s.Workers <= s.MinWorkers || b.cold[s.Name] < o.Settle {
				continue
			}
			if donor == nil || s.Utilization < donor.Utilization {
				donor = s
			}
		}
		if donor != nil {
			n := minInt(o.MaxMoves, donor.Workers-donor.MinWorkers, crit.MaxWorkers-crit.Workers)
			d := Decision{
				Kind:  DecisionMove,
				Stage: crit.Name, StageWorkers: crit.Workers + n,
				From: donor.Name, FromWorkers: donor.Workers - n,
			}
			b.acted(crit.Name, donor.Name)
			return []Decision{d}
		}
	}

	// Placement: a saturated placeable stage that worker moves could
	// not help goes remote; a degraded remote stage comes home. First
	// eligible stage in chain order wins.
	for i := range snap {
		s := &snap[i]
		if !s.Placeable || s.Finished {
			continue
		}
		if !s.Remote && b.placeHot[s.Name] >= o.Settle {
			b.acted(s.Name, "")
			b.placeHot[s.Name] = 0
			return []Decision{{Kind: DecisionPlace, Stage: s.Name, Remote: true}}
		}
		if s.Remote && b.degraded[s.Name] >= o.Settle {
			b.acted(s.Name, "")
			b.degraded[s.Name] = 0
			return []Decision{{Kind: DecisionPlace, Stage: s.Name, Remote: false}}
		}
	}
	return nil
}

// acted arms the cooldown and clears the streaks of the stages a
// decision touched, so the next action needs fresh evidence.
func (b *Balancer) acted(stage, donor string) {
	b.cooldown = b.opts.Cooldown
	b.hot[stage] = 0
	if donor != "" {
		b.cold[donor] = 0
	}
}

func minInt(vs ...int) int {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
