package pipeline

import (
	"math"
	"sync/atomic"
	"time"
)

// Telemetry — every stage a pipeline runs (Source, Map/MapExec, Sink)
// updates a StageMetrics block with per-frame service time, queue-wait
// (time blocked receiving input and sending output), in-flight count
// and an EWMA of per-frame service time. The counters are plain
// atomics: a stage's hot path pays a handful of atomic adds per frame
// and no locks. Pipeline.Snapshot diffs the cumulative counters since
// the previous snapshot into windowed rates and marks the critical
// stage — the balancer and the remote Stats verb both consume that
// table.

// ewmaAlpha is the smoothing factor for per-frame service-time EWMAs:
// ~the last 8 frames dominate, so the estimate tracks load shifts
// within a couple of snapshot windows without gyrating on one slow
// frame.
const ewmaAlpha = 0.25

// epoch anchors nowNanos: time.Since on a fixed base keeps the
// monotonic clock, so interval math is immune to wall-clock steps.
var epoch = time.Now()

func nowNanos() int64 { return int64(time.Since(epoch)) }

// ewmaUpdate folds sample into the float64-bits EWMA stored in a — a
// CAS loop so concurrent workers never lose an update and never lock.
func ewmaUpdate(a *atomic.Uint64, sample float64) {
	for {
		old := a.Load()
		next := sample
		if old != 0 {
			cur := math.Float64frombits(old)
			next = cur + ewmaAlpha*(sample-cur)
		}
		if a.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// ewmaDuration reads a float64-bits EWMA as a duration.
func ewmaDuration(a *atomic.Uint64) time.Duration {
	return time.Duration(math.Float64frombits(a.Load()))
}

// StageKind classifies a stage row in the snapshot table.
type StageKind uint8

const (
	KindSource StageKind = iota
	KindMap
	KindSink
)

func (k StageKind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindMap:
		return "map"
	case KindSink:
		return "sink"
	}
	return "stage"
}

// StageMetrics is the lock-cheap telemetry block one stage updates.
// Stages write it through the helpers below; readers go through
// Pipeline.Snapshot.
type StageMetrics struct {
	name string
	kind StageKind
	min  int // lower rebalance bound (0 when fixed)
	max  int // upper rebalance bound (0 when fixed)

	workers    atomic.Int64  // current worker count
	inFlight   atomic.Int64  // frames dispatched but not yet emitted
	done       atomic.Uint64 // frames completed successfully
	serviceNS  atomic.Int64  // cumulative time in the stage body
	recvWaitNS atomic.Int64  // cumulative time blocked receiving input
	sendWaitNS atomic.Int64  // cumulative time blocked sending output
	ewmaNS     atomic.Uint64 // float64 bits: per-frame service EWMA
	finished   atomic.Bool   // stage output closed

	// resize is set for elastic Map stages (MaxWorkers > 0): it moves
	// the stage's par.Pool to n workers. place is set when the stage's
	// executor can be flipped between local and remote placement.
	resize func(n int)
	place  PlacementExec
}

// noteService records one stage-body execution: d in the cumulative
// service counter and the EWMA; done counts only successes.
func (m *StageMetrics) noteService(d int64, succeeded bool) {
	m.serviceNS.Add(d)
	ewmaUpdate(&m.ewmaNS, float64(d))
	if succeeded {
		m.done.Add(1)
	}
}

func (m *StageMetrics) resizable() bool { return m.resize != nil }

// StageSnapshot is one row of the per-stage telemetry table: the
// windowed view of a StageMetrics since the previous Snapshot call.
// The wire form (remote protocol v7, Stats verb) and the vizclient
// -stats rendering both carry exactly these fields.
type StageSnapshot struct {
	Name string
	Kind StageKind

	// Worker provisioning. MinWorkers/MaxWorkers are the rebalance
	// bounds; Resizable is false for fixed stages (both bounds equal
	// Workers in that case).
	Workers    int
	MinWorkers int
	MaxWorkers int
	Resizable  bool

	// Progress. InFlight counts frames dispatched but not yet emitted;
	// Done counts frames completed over the stage's whole lifetime;
	// Finished reports that the stage's output has closed.
	InFlight int
	Done     uint64
	Finished bool

	// ServiceEWMA is the smoothed per-frame service time (all-time,
	// not windowed) — the balancer's cost model for the stage.
	ServiceEWMA time.Duration

	// Windowed rates over Window (the interval since the previous
	// Snapshot). Throughput is frames/s completed; Utilization is the
	// fraction of worker-time spent in the stage body (for a Source,
	// the fraction not blocked sending); RecvWait and SendWait are the
	// fractions of the window the stage's coordinator spent blocked on
	// its input and output channels.
	Window      time.Duration
	Throughput  float64
	Utilization float64
	RecvWait    float64
	SendWait    float64

	// Placement (set when the stage runs a placement-switchable
	// executor): Remote reports the current side; LocalEWMA/RemoteEWMA
	// are smoothed per-frame service times observed on each side (zero
	// until a side has run); Fallbacks counts remote failures served by
	// the local side instead.
	Placeable  bool
	Remote     bool
	LocalEWMA  time.Duration
	RemoteEWMA time.Duration
	Fallbacks  uint64

	// Critical marks the stage the snapshot identifies as the current
	// critical path: the highest utilization × (1 − input idle) among
	// running stages, ties broken toward the front of the chain.
	Critical bool
}

// stageCum is the cumulative-counter state Snapshot diffs windows from.
type stageCum struct {
	service  int64
	recvWait int64
	sendWait int64
	done     uint64
}

// newStage registers a stage's metrics block in chain order. Called
// from stage constructors, before any stage goroutine starts.
func (p *Pipeline) newStage(name string, kind StageKind, workers, min, max int) *StageMetrics {
	m := &StageMetrics{name: name, kind: kind, min: min, max: max}
	m.workers.Store(int64(workers))
	p.mu.Lock()
	p.stages = append(p.stages, m)
	p.lastCum = append(p.lastCum, stageCum{})
	p.mu.Unlock()
	return m
}

// stageByName returns the first stage registered under name, or nil.
func (p *Pipeline) stageByName(name string) *StageMetrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.stages {
		if m.name == name {
			return m
		}
	}
	return nil
}

// SetStageWorkers moves the named elastic stage to n workers (clamped
// to its [MinWorkers, MaxWorkers] bounds) and reports whether a
// resizable stage by that name exists. Safe while frames are in
// flight: the underlying pool resizes at task boundaries only, and
// re-sequencing is untouched, so output order and content are
// unchanged.
func (p *Pipeline) SetStageWorkers(name string, n int) bool {
	m := p.stageByName(name)
	if m == nil || m.resize == nil {
		return false
	}
	if n < m.min {
		n = m.min
	}
	if n > m.max {
		n = m.max
	}
	m.resize(n)
	m.workers.Store(int64(n))
	return true
}

// SetStagePlacement flips the named stage's executor between its local
// (remote=false) and remote (remote=true) side. The flip lands at a
// frame boundary — in-flight frames finish on the side that dispatched
// them — and reports whether a placeable stage by that name exists.
func (p *Pipeline) SetStagePlacement(name string, remote bool) bool {
	m := p.stageByName(name)
	if m == nil || m.place == nil {
		return false
	}
	m.place.SetRemote(remote)
	return true
}

// Snapshot returns the per-stage telemetry table in chain order:
// cumulative counters are diffed against the previous Snapshot call
// into windowed rates, and the current critical-path stage is marked.
// The window is shared across callers — concurrent pollers (a balancer
// plus a Stats server) each see correct but shorter windows.
func (p *Pipeline) Snapshot() []StageSnapshot {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	last := p.lastSnap
	if last.IsZero() {
		last = p.created
	}
	window := now.Sub(last)
	p.lastSnap = now

	out := make([]StageSnapshot, len(p.stages))
	critical, best := -1, 0.0
	for i, m := range p.stages {
		cum := stageCum{
			service:  m.serviceNS.Load(),
			recvWait: m.recvWaitNS.Load(),
			sendWait: m.sendWaitNS.Load(),
			done:     m.done.Load(),
		}
		d := stageCum{
			service:  cum.service - p.lastCum[i].service,
			recvWait: cum.recvWait - p.lastCum[i].recvWait,
			sendWait: cum.sendWait - p.lastCum[i].sendWait,
			done:     cum.done - p.lastCum[i].done,
		}
		p.lastCum[i] = cum

		workers := int(m.workers.Load())
		s := StageSnapshot{
			Name:        m.name,
			Kind:        m.kind,
			Workers:     workers,
			MinWorkers:  workers,
			MaxWorkers:  workers,
			Resizable:   m.resizable(),
			InFlight:    int(m.inFlight.Load()),
			Done:        cum.done,
			Finished:    m.finished.Load(),
			ServiceEWMA: ewmaDuration(&m.ewmaNS),
			Window:      window,
		}
		if s.Resizable {
			s.MinWorkers, s.MaxWorkers = m.min, m.max
		}
		if pe := m.place; pe != nil {
			s.Placeable = true
			s.Remote = pe.Remote()
			s.LocalEWMA, s.RemoteEWMA = pe.SideEWMA()
			s.Fallbacks = pe.Fallbacks()
		}
		if wns := float64(window); wns > 0 && !s.Finished {
			s.Throughput = float64(d.done) / window.Seconds()
			s.RecvWait = clamp01(float64(d.recvWait) / wns)
			s.SendWait = clamp01(float64(d.sendWait) / wns)
			switch m.kind {
			case KindSource:
				// A generator is "busy" whenever it isn't blocked on its
				// output — it has no measurable body of its own.
				s.Utilization = clamp01(1 - s.SendWait)
			default:
				s.Utilization = clamp01(float64(d.service) / (wns * float64(workers)))
			}
			// Critical path: the busiest stage least starved of input.
			// Map/Sink stages only — a source has no input to starve on
			// and would otherwise always win.
			if m.kind != KindSource {
				if score := s.Utilization * (1 - s.RecvWait); score > best {
					best, critical = score, i
				}
			}
		}
		out[i] = s
	}
	if critical >= 0 {
		out[critical].Critical = true
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
