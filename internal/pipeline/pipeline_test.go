package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderPreserved: a multi-worker stage with deliberately skewed
// per-item latency must still emit in input order.
func TestMapOrderPreserved(t *testing.T) {
	p := New(context.Background())
	in := Source(p, 4, func(_ context.Context, emit func(int) bool) error {
		for i := 0; i < 64; i++ {
			if !emit(i) {
				return nil
			}
		}
		return nil
	})
	out := Map(p, in, StageConfig{Name: "square", Workers: 8}, func(_ context.Context, v int) (int, error) {
		// Early items sleep longest so workers finish out of order.
		time.Sleep(time.Duration(64-v) * 100 * time.Microsecond)
		return v * v, nil
	})
	got := Collect(p, out)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 64 {
		t.Fatalf("got %d results, want 64", len(*got))
	}
	for i, v := range *got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d (order violated)", i, v, i*i)
		}
	}
}

// TestChainedStages runs a three-stage chain and checks the data
// flows end to end.
func TestChainedStages(t *testing.T) {
	p := New(context.Background())
	a := FromSlice(p, 2, []int{1, 2, 3, 4, 5})
	b := Map(p, a, StageConfig{Workers: 2}, func(_ context.Context, v int) (int, error) {
		return v + 10, nil
	})
	c := Map(p, b, StageConfig{Workers: 3}, func(_ context.Context, v int) (string, error) {
		return fmt.Sprintf("#%d", v), nil
	})
	var sunk []string
	Sink(p, c, "gather", func(_ context.Context, v string) error {
		sunk = append(sunk, v)
		return nil
	})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	want := []string{"#11", "#12", "#13", "#14", "#15"}
	if len(sunk) != len(want) {
		t.Fatalf("sunk %v, want %v", sunk, want)
	}
	for i := range want {
		if sunk[i] != want[i] {
			t.Fatalf("sunk[%d] = %q, want %q", i, sunk[i], want[i])
		}
	}
}

// TestFirstErrorPropagation: a mid-stream stage failure must surface
// from Wait and stop the source.
func TestFirstErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	p := New(context.Background())
	var emitted atomic.Int64
	in := Source(p, 1, func(ctx context.Context, emit func(int) bool) error {
		for i := 0; ; i++ {
			if !emit(i) {
				return nil
			}
			emitted.Add(1)
		}
	})
	out := Map(p, in, StageConfig{Name: "fail", Workers: 2}, func(_ context.Context, v int) (int, error) {
		if v == 5 {
			return 0, boom
		}
		return v, nil
	})
	Sink(p, out, "drain", func(_ context.Context, _ int) error { return nil })
	err := p.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	if emitted.Load() > 1000 {
		t.Errorf("source kept running after failure: emitted %d", emitted.Load())
	}
}

// TestCancellationNoGoroutineLeak: cancelling a stream mid-frame
// returns promptly and leaves no goroutines behind.
func TestCancellationNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	p := New(context.Background())
	in := Source(p, 2, func(ctx context.Context, emit func(int) bool) error {
		for i := 0; ; i++ {
			if !emit(i) {
				return nil
			}
		}
	})
	out := Map(p, in, StageConfig{Name: "slow", Workers: 4}, func(ctx context.Context, v int) (int, error) {
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
		}
		return v, nil
	})
	s := NewStream(p, out)

	// Take a couple of results, then abort mid-stream.
	<-s.Out
	<-s.Out
	s.Cancel()

	done := make(chan error, 1)
	go func() { done <- s.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after Cancel")
	}

	// The par.Pool workers park on their task channel until garbage
	// collected with the pool; every pipeline goroutine must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestParentContextCancel aborts the stream via the caller's context.
func TestParentContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New(ctx)
	in := Source(p, 1, func(ctx context.Context, emit func(int) bool) error {
		for i := 0; ; i++ {
			if !emit(i) {
				return nil
			}
		}
	})
	out := Map(p, in, StageConfig{Workers: 2}, func(_ context.Context, v int) (int, error) {
		return v, nil
	})
	s := NewStream(p, out)
	<-s.Out
	cancel()
	done := make(chan error, 1)
	go func() { done <- s.Wait() }()
	select {
	case err := <-done:
		// A parent-aborted run must not look like a clean completion.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after parent cancel")
	}
}

// TestSlicePoolReuse: a recycled backing array must be reused when it
// fits, and regrown when it does not.
func TestSlicePoolReuse(t *testing.T) {
	sp := NewSlicePool[float64]()
	// Under the race detector sync.Pool deliberately drops a fraction of
	// Puts, so assert reuse statistically rather than on one round trip.
	reused := false
	for i := 0; i < 50 && !reused; i++ {
		s := sp.Get(100)
		if len(*s) != 100 {
			t.Fatalf("len = %d, want 100", len(*s))
		}
		first := &(*s)[0]
		sp.Put(s)
		s2 := sp.Get(50)
		if len(*s2) != 50 {
			t.Fatalf("len = %d, want 50", len(*s2))
		}
		reused = &(*s2)[0] == first
		sp.Put(s2)
	}
	if !reused {
		t.Error("backing array never reused for smaller request")
	}
	s3 := sp.Get(200)
	if len(*s3) != 200 {
		t.Fatalf("len = %d, want 200", len(*s3))
	}
}

// countingExecutor is a StageExecutor that tracks concurrent Applies,
// standing in for a remote executor (per-call blocking round trips,
// concurrency supplied by the stage's worker goroutines).
type countingExecutor struct {
	calls    atomic.Int64
	inFlight atomic.Int64
	peak     atomic.Int64
}

func (e *countingExecutor) Apply(ctx context.Context, v int) (int, error) {
	cur := e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	for {
		p := e.peak.Load()
		if cur <= p || e.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	e.calls.Add(1)
	select {
	case <-time.After(2 * time.Millisecond):
	case <-ctx.Done():
	}
	return v * 10, nil
}

// TestMapExecCustomExecutor: MapExec drives an arbitrary StageExecutor
// through the same ordering machinery Map uses — results arrive in
// input order, and Workers callers run concurrently (how a remote
// stage keeps several frames in flight on one connection).
func TestMapExecCustomExecutor(t *testing.T) {
	p := New(context.Background())
	const n = 64
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	ex := &countingExecutor{}
	out := MapExec(p, FromSlice(p, 4, vals), StageConfig{Name: "remote", Workers: 8}, ex)
	got := Collect(p, out)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != n {
		t.Fatalf("got %d results, want %d", len(*got), n)
	}
	for i, v := range *got {
		if v != i*10 {
			t.Fatalf("result %d = %d, want %d (order violated)", i, v, i*10)
		}
	}
	if c := ex.calls.Load(); c != n {
		t.Errorf("executor ran %d times, want %d", c, n)
	}
	if pk := ex.peak.Load(); pk < 2 {
		t.Errorf("peak concurrent Applies = %d, want >= 2 (frames should overlap)", pk)
	}
}

// TestDeferRunsOnceAfterDrain: cleanups registered with Defer run
// exactly once, after every stage goroutine exits, in reverse order —
// even when Wait is called from several goroutines.
func TestDeferRunsOnceAfterDrain(t *testing.T) {
	p := New(context.Background())
	var stagesLive atomic.Int64
	var order []int
	var mu sync.Mutex
	var runs atomic.Int64

	in := Source(p, 1, func(ctx context.Context, emit func(int) bool) error {
		stagesLive.Add(1)
		defer stagesLive.Add(-1)
		for i := 0; i < 10; i++ {
			if !emit(i) {
				return nil
			}
		}
		return nil
	})
	Sink(p, in, "drop", func(ctx context.Context, v int) error { return nil })

	for i := 0; i < 2; i++ {
		i := i
		p.Defer(func() {
			runs.Add(1)
			if stagesLive.Load() != 0 {
				t.Error("cleanup ran while a stage goroutine was still live")
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Wait(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := runs.Load(); got != 2 {
		t.Fatalf("cleanups ran %d times, want 2", got)
	}
	if order[0] != 1 || order[1] != 0 {
		t.Errorf("cleanup order %v, want reverse registration [1 0]", order)
	}
}
