package pipeline

import "sync"

// FreeList is a typed free list over sync.Pool for the per-frame
// scratch buffers of a stream (projection point slices, framebuffers,
// density grids). A stream allocates at most frames-in-flight buffers
// and recycles them for the rest of the run, so allocation pressure is
// independent of stream length.
type FreeList[T any] struct {
	pool sync.Pool
}

// NewFreeList returns a free list that allocates with newFn when
// empty.
func NewFreeList[T any](newFn func() T) *FreeList[T] {
	return &FreeList[T]{pool: sync.Pool{New: func() any { return newFn() }}}
}

// Get takes a buffer from the list, allocating if none is free.
func (f *FreeList[T]) Get() T { return f.pool.Get().(T) }

// Put returns a buffer for reuse. The caller must not touch it again.
func (f *FreeList[T]) Put(v T) { f.pool.Put(v) }

// SlicePool recycles []E scratch slices of varying length: Get returns
// a slice resized to n (reallocating only when capacity is short), Put
// recycles the backing array. It is the recycler for the per-frame
// projection buffers the partition stage consumes.
type SlicePool[E any] struct {
	free *FreeList[*[]E]
}

// NewSlicePool returns an empty slice pool.
func NewSlicePool[E any]() *SlicePool[E] {
	return &SlicePool[E]{
		free: NewFreeList(func() *[]E { return new([]E) }),
	}
}

// Get returns a length-n slice (contents unspecified) backed by a
// recycled array when one fits.
func (p *SlicePool[E]) Get(n int) *[]E {
	s := p.free.Get()
	if cap(*s) < n {
		*s = make([]E, n)
	} else {
		*s = (*s)[:n]
	}
	return s
}

// Put recycles the slice's backing array.
func (p *SlicePool[E]) Put(s *[]E) {
	if s != nil {
		p.free.Put(s)
	}
}
