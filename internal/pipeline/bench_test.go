package pipeline

import (
	"context"
	"testing"
	"time"
)

// BenchmarkSelfBalance quantifies the tentpole: a deliberately
// mis-provisioned three-stage chain (5/1/1 workers against service
// costs that want 1/4/2) run three ways — frozen as configured, with
// the balancer live, and hand-tuned to the optimum. Costs are modeled
// with sleeps, so the numbers measure scheduling, not CPU count. The
// self-balancing run converges during the warmup frames; throughput is
// measured over the tail so the report reflects the steady state the
// balancer found, which should land well above the static chain
// (>= 1.5x) and within ~10% of hand-tuned.
//
// Emitted in CI as the BENCH_selfbalance.json artifact.
func BenchmarkSelfBalance(b *testing.B) {
	const (
		partitionCost = 2 * time.Millisecond
		extractCost   = 8 * time.Millisecond
		renderCost    = 4 * time.Millisecond
		warmup        = 60 // frames before the measured window
		measured      = 60
		frames        = warmup + measured
	)
	run := func(b *testing.B, workers [3]int, balance bool) float64 {
		b.Helper()
		var tail float64
		for i := 0; i < b.N; i++ {
			p := New(context.Background())
			vals := make([]int, frames)
			for j := range vals {
				vals[j] = j
			}
			elastic := 0
			if balance {
				elastic = 8
			}
			cfg := func(name string, w int) StageConfig {
				c := StageConfig{Name: name, Workers: w, Buf: 4}
				if elastic > 0 {
					c.MinWorkers, c.MaxWorkers = 1, elastic
				}
				return c
			}
			stage := func(in <-chan int, c StageConfig, cost time.Duration) <-chan int {
				return Map(p, in, c, func(_ context.Context, v int) (int, error) {
					time.Sleep(cost)
					return v, nil
				})
			}
			out := stage(FromSlice(p, 4, vals), cfg("partition", workers[0]), partitionCost)
			out = stage(out, cfg("extract", workers[1]), extractCost)
			out = stage(out, cfg("render", workers[2]), renderCost)

			if balance {
				p.StartBalancer(BalancerOptions{Interval: 10 * time.Millisecond})
			}
			var tailStart time.Time
			seen := 0
			for range out {
				seen++
				if seen == warmup {
					tailStart = time.Now()
				}
			}
			if err := p.Wait(); err != nil {
				b.Fatal(err)
			}
			if seen != frames {
				b.Fatalf("%d of %d frames", seen, frames)
			}
			tail = float64(measured) / time.Since(tailStart).Seconds()
		}
		return tail
	}

	b.Run("static-misprovisioned", func(b *testing.B) {
		b.ReportMetric(run(b, [3]int{5, 1, 1}, false), "frames/s")
	})
	b.Run("self-balancing", func(b *testing.B) {
		b.ReportMetric(run(b, [3]int{5, 1, 1}, true), "frames/s")
	})
	b.Run("hand-tuned", func(b *testing.B) {
		b.ReportMetric(run(b, [3]int{1, 4, 2}, false), "frames/s")
	})
}

// TestSelfBalanceConverges is the acceptance check behind the
// benchmark, cheap enough for every CI run: the balanced chain's
// steady-state throughput beats the frozen mis-provisioned chain by
// >= 1.5x. (The benchmark additionally reports proximity to
// hand-tuned.)
func TestSelfBalanceConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive convergence check")
	}
	const (
		partitionCost = 2 * time.Millisecond
		extractCost   = 8 * time.Millisecond
		renderCost    = 4 * time.Millisecond
		warmup        = 50
		measured      = 50
		frames        = warmup + measured
	)
	run := func(balance bool) float64 {
		p := New(context.Background())
		vals := make([]int, frames)
		cfg := func(name string, w int) StageConfig {
			c := StageConfig{Name: name, Workers: w, Buf: 4}
			if balance {
				c.MinWorkers, c.MaxWorkers = 1, 8
			}
			return c
		}
		stage := func(in <-chan int, c StageConfig, cost time.Duration) <-chan int {
			return Map(p, in, c, func(_ context.Context, v int) (int, error) {
				time.Sleep(cost)
				return v, nil
			})
		}
		out := stage(FromSlice(p, 4, vals), cfg("partition", 5), partitionCost)
		out = stage(out, cfg("extract", 1), extractCost)
		out = stage(out, cfg("render", 1), renderCost)
		if balance {
			p.StartBalancer(BalancerOptions{Interval: 10 * time.Millisecond})
		}
		var tailStart time.Time
		seen := 0
		for range out {
			seen++
			if seen == warmup {
				tailStart = time.Now()
			}
		}
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		return float64(measured) / time.Since(tailStart).Seconds()
	}
	static := run(false)
	balanced := run(true)
	if balanced < 1.5*static {
		t.Errorf("self-balancing %.1f frames/s vs static %.1f: ratio %.2f, want >= 1.5",
			balanced, static, balanced/static)
	}
}
