// Package sortx provides the parallel keyed-sort primitive shared by
// the pipeline's hot sorting paths: the Morton-code sort inside the
// octree partitioner, the back-to-front fragment sort of the OIT
// resolver, and the per-line depth sort of the self-orienting-surface
// renderer. One optimized routine — a stable LSD radix sort over packed
// (uint64 key, int64 payload) pairs — serves all three, so the
// partitioner's terascale sort and the renderers' per-frame sorts share
// the same code and the same benchmarks.
//
// The sort is stable: pairs with equal keys keep their input order,
// which is what makes the octree build deterministic at every worker
// count and keeps equal-depth fragments compositing in submission
// order.
package sortx

import (
	"math"
	"sort"

	"repro/internal/par"
)

// KV is one packed sort element: a 64-bit key and a 64-bit payload
// (typically an index into a companion array). Packing key and payload
// into one 16-byte element keeps the scatter passes sequential in
// memory — the indirect-comparator pattern (sort indices, compare
// keys[order[i]]) this package replaces costs a dependent load per
// comparison.
type KV struct {
	K uint64
	V int64
}

// FallbackThreshold is the length below which Pairs delegates to the
// stdlib: a radix pass touches every element once per key byte plus a
// histogram pass, so for small inputs the O(n log n) comparison sort's
// constant factor wins. The crossover is measured by BenchmarkSortx.
const FallbackThreshold = 2048

const (
	radixBits = 8
	buckets   = 1 << radixBits
	digits    = 64 / radixBits
)

// Pairs sorts p by ascending key, stably, across the given number of
// workers (0 = auto). It allocates a same-size scratch buffer; callers
// sorting repeatedly should use PairsScratch to recycle one.
func Pairs(p []KV, workers int) {
	if len(p) <= FallbackThreshold {
		fallback(p)
		return
	}
	radix(p, make([]KV, len(p)), workers)
}

// PairsScratch is Pairs with a caller-provided scratch buffer of at
// least len(p) elements (a shorter one is replaced by a fresh
// allocation, so the call is always correct).
func PairsScratch(p, scratch []KV, workers int) {
	if len(p) <= FallbackThreshold {
		fallback(p)
		return
	}
	if len(scratch) < len(p) {
		scratch = make([]KV, len(p))
	}
	radix(p, scratch[:len(p)], workers)
}

func fallback(p []KV) {
	sort.SliceStable(p, func(i, j int) bool { return p[i].K < p[j].K })
}

// radix runs a stable LSD radix sort over p using scratch as the
// ping-pong buffer. Each needed key byte costs one parallel histogram
// pass and one parallel stable scatter; bytes on which every key
// agrees (detected with a single OR/AND scan) are skipped entirely, so
// 24-bit Morton codes or 32-bit float keys pay only for the bytes that
// actually vary.
func radix(p, scratch []KV, workers int) {
	n := len(p)
	if workers <= 0 {
		workers = par.Workers()
	}
	if workers > n {
		workers = n
	}

	// One scan bounds the key range: a byte position where OR and AND
	// agree is constant across all keys and needs no pass.
	type orAnd struct{ or, and uint64 }
	span := par.MapReduce(n, workers,
		func() orAnd { return orAnd{0, ^uint64(0)} },
		func(a orAnd, lo, hi int) orAnd {
			for i := lo; i < hi; i++ {
				k := p[i].K
				a.or |= k
				a.and &= k
			}
			return a
		},
		func(a, b orAnd) orAnd { return orAnd{a.or | b.or, a.and & b.and} },
	)

	src, dst := p, scratch
	for d := 0; d < digits; d++ {
		shift := uint(d * radixBits)
		if byte(span.or>>shift) == byte(span.and>>shift) {
			continue
		}
		scatterDigit(src, dst, shift, workers)
		src, dst = dst, src
	}
	if &src[0] != &p[0] {
		copy(p, src)
	}
}

// scatterDigit stably reorders src into dst by the key byte at shift:
// per-worker histograms over contiguous chunks, an exclusive scan that
// is bucket-major then worker-major (so equal keys keep chunk order,
// and chunks keep input order — stability), then a parallel scatter in
// which each worker writes its chunk to precomputed disjoint slots.
func scatterDigit(src, dst []KV, shift uint, workers int) {
	n := len(src)
	hist := make([][buckets]int64, workers)
	// Chunk boundaries must match par.ForChunks so lo/chunk recovers
	// the worker index (the same convention par.MapReduce relies on).
	chunk := (n + workers - 1) / workers
	par.ForChunks(n, workers, func(lo, hi int) {
		h := &hist[lo/chunk]
		for i := lo; i < hi; i++ {
			h[byte(src[i].K>>shift)]++
		}
	})
	var total int64
	for b := 0; b < buckets; b++ {
		for w := 0; w < workers; w++ {
			c := hist[w][b]
			hist[w][b] = total
			total += c
		}
	}
	par.ForChunks(n, workers, func(lo, hi int) {
		h := &hist[lo/chunk]
		for i := lo; i < hi; i++ {
			b := byte(src[i].K >> shift)
			dst[h[b]] = src[i]
			h[b]++
		}
	})
}

// Float64Key maps a float64 to a uint64 whose unsigned order matches
// the float order: -Inf < negatives < -0 < +0 < positives < +Inf.
// (NaNs land at the extremes depending on sign bit; callers sort
// non-NaN data.) This is the standard sign-flip trick: negative floats
// have inverted magnitude order, so their bits are complemented;
// non-negative floats just get the sign bit set.
func Float64Key(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 != 0 {
		return ^b
	}
	return b | 1<<63
}

// Float64KeyDesc is Float64Key with the order reversed, for
// back-to-front (descending) sorts.
func Float64KeyDesc(f float64) uint64 { return ^Float64Key(f) }

// Float32Key is Float64Key for float32 keys. The mapped key occupies
// the low 32 bits, so the radix sort skips the four constant high
// bytes automatically.
func Float32Key(f float32) uint64 {
	b := math.Float32bits(f)
	if b>>31 != 0 {
		b = ^b
	} else {
		b |= 1 << 31
	}
	return uint64(b)
}

// Float32KeyDesc reverses Float32Key's order within the low 32 bits
// (the high bytes stay zero and cost no radix passes).
func Float32KeyDesc(f float32) uint64 { return Float32Key(f) ^ 0xffffffff }
