package sortx

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// reference stably sorts a copy of p with the stdlib — the oracle every
// property test compares against.
func reference(p []KV) []KV {
	ref := make([]KV, len(p))
	copy(ref, p)
	sort.SliceStable(ref, func(i, j int) bool { return ref[i].K < ref[j].K })
	return ref
}

func checkAgainstStdlib(t *testing.T, name string, p []KV, workers int) {
	t.Helper()
	ref := reference(p)
	got := make([]KV, len(p))
	copy(got, p)
	Pairs(got, workers)
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("%s (workers=%d): element %d = %+v, want %+v", name, workers, i, got[i], ref[i])
		}
	}
}

// distributions generates the key patterns the radix sort must handle:
// each returns n pairs whose payload is the input position, so payload
// order among duplicate keys certifies stability.
var distributions = map[string]func(n int, rng *rand.Rand) []KV{
	"uniform64": func(n int, rng *rand.Rand) []KV {
		p := make([]KV, n)
		for i := range p {
			p[i] = KV{K: rng.Uint64(), V: int64(i)}
		}
		return p
	},
	"uniform-narrow": func(n int, rng *rand.Rand) []KV {
		// Few distinct keys: exercises duplicate-heavy buckets and the
		// skipped constant high bytes.
		p := make([]KV, n)
		for i := range p {
			p[i] = KV{K: uint64(rng.Intn(17)), V: int64(i)}
		}
		return p
	},
	"all-equal": func(n int, rng *rand.Rand) []KV {
		p := make([]KV, n)
		for i := range p {
			p[i] = KV{K: 0xdeadbeef, V: int64(i)}
		}
		return p
	},
	"presorted": func(n int, rng *rand.Rand) []KV {
		p := make([]KV, n)
		for i := range p {
			p[i] = KV{K: uint64(i) * 3, V: int64(i)}
		}
		return p
	},
	"reversed": func(n int, rng *rand.Rand) []KV {
		p := make([]KV, n)
		for i := range p {
			p[i] = KV{K: uint64(n - i), V: int64(i)}
		}
		return p
	},
	"morton-like": func(n int, rng *rand.Rand) []KV {
		// 24-bit keys as the level-8 octree produces: only three radix
		// passes should run, the rest skip.
		p := make([]KV, n)
		for i := range p {
			p[i] = KV{K: uint64(rng.Intn(1 << 24)), V: int64(i)}
		}
		return p
	},
}

func TestPairsMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{0, 1, 2, 100, FallbackThreshold, FallbackThreshold + 1, 10_000, 65_537}
	for name, gen := range distributions {
		for _, n := range sizes {
			for _, w := range []int{1, 2, runtime.NumCPU()} {
				checkAgainstStdlib(t, name, gen(n, rng), w)
			}
		}
	}
}

func TestPairsStability(t *testing.T) {
	// Heavily duplicated keys: for every run of equal keys the payloads
	// (input positions) must be strictly increasing.
	rng := rand.New(rand.NewSource(2))
	p := make([]KV, 50_000)
	for i := range p {
		p[i] = KV{K: uint64(rng.Intn(64)), V: int64(i)}
	}
	Pairs(p, runtime.NumCPU())
	for i := 1; i < len(p); i++ {
		if p[i].K == p[i-1].K && p[i].V <= p[i-1].V {
			t.Fatalf("stability violated at %d: key %d payloads %d then %d", i, p[i].K, p[i-1].V, p[i].V)
		}
	}
}

func TestPairsScratchShortScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := distributions["uniform64"](10_000, rng)
	ref := reference(p)
	PairsScratch(p, make([]KV, 5), 2) // undersized scratch must still sort
	for i := range p {
		if p[i] != ref[i] {
			t.Fatalf("short-scratch sort wrong at %d", i)
		}
	}
}

func TestFloat64KeyOrdering(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -2.5, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1, 2.5, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a, b := vals[i-1], vals[i]
		if a < b && Float64Key(a) >= Float64Key(b) {
			t.Errorf("Float64Key not monotone: %g vs %g", a, b)
		}
		if a < b && Float64KeyDesc(a) <= Float64KeyDesc(b) {
			t.Errorf("Float64KeyDesc not antitone: %g vs %g", a, b)
		}
	}
}

func TestFloat32KeyOrdering(t *testing.T) {
	inf := float32(math.Inf(1))
	vals := []float32{-inf, -1e30, -1, float32(math.Copysign(0, -1)), 0, 1, 1e30, inf}
	for i := 1; i < len(vals); i++ {
		a, b := vals[i-1], vals[i]
		if a < b && Float32Key(a) >= Float32Key(b) {
			t.Errorf("Float32Key not monotone: %g vs %g", a, b)
		}
		if a < b && Float32KeyDesc(a) <= Float32KeyDesc(b) {
			t.Errorf("Float32KeyDesc not antitone: %g vs %g", a, b)
		}
	}
	// The mapped keys stay in the low 32 bits so high radix passes skip.
	if Float32Key(inf)>>32 != 0 || Float32KeyDesc(-inf)>>32 != 0 {
		t.Error("Float32 keys leak into the high 32 bits")
	}
}

// FuzzPairs feeds arbitrary byte strings as key material; the sorted
// result must match the stdlib oracle element-for-element (payload
// equality makes this a stability check too).
func FuzzPairs(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(make([]byte, 4096))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := make([]KV, 0, len(data)/2+1)
		// Low-entropy keys (one byte each, shifted by position parity)
		// maximize duplicates and bucket skew.
		for i, b := range data {
			p = append(p, KV{K: uint64(b) << (8 * uint(i%3)), V: int64(i)})
		}
		checkAgainstStdlib(t, "fuzz", p, 1+len(data)%4)
	})
}
