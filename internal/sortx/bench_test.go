package sortx

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// BenchmarkSortx compares the parallel radix sort against the stdlib
// stable sort at the sizes the pipeline actually sorts (OIT fragment
// lists sit below FallbackThreshold; Morton sorts at 1e5-1e6+), which
// is the data behind the FallbackThreshold crossover choice.
func BenchmarkSortx(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		rng := rand.New(rand.NewSource(int64(n)))
		master := make([]KV, n)
		for i := range master {
			// 24-bit Morton-like keys: the dominant workload.
			master[i] = KV{K: uint64(rng.Intn(1 << 24)), V: int64(i)}
		}
		work := make([]KV, n)
		scratch := make([]KV, n)

		b.Run(fmt.Sprintf("N=%d/stdlib", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(work, master)
				sort.SliceStable(work, func(a, c int) bool { return work[a].K < work[c].K })
			}
		})
		b.Run(fmt.Sprintf("N=%d/radix/workers=1", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(work, master)
				PairsScratch(work, scratch, 1)
			}
		})
		b.Run(fmt.Sprintf("N=%d/radix/workers=%d", n, runtime.NumCPU()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(work, master)
				PairsScratch(work, scratch, runtime.NumCPU())
			}
		})
	}
}
