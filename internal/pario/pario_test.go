package pario

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/beam"
	"repro/internal/octree"
	"repro/internal/vec"
)

func testFrame(n int, seed int64) beam.Frame {
	e := beam.NewEnsemble(n)
	e.GaussianInit(seed, [6]float64{1, 2, 3, 0.1, 0.2, 0.3}, 0)
	return beam.Frame{Step: 170, S: 42.5, E: e}
}

func TestFrameRoundTrip(t *testing.T) {
	f := testFrame(1234, 1)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if int64(buf.Len()) != FrameBytes(1234) {
		t.Errorf("encoded size %d, FrameBytes says %d", buf.Len(), FrameBytes(1234))
	}
	g, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if g.Step != f.Step || g.S != f.S || g.E.Len() != f.E.Len() {
		t.Fatalf("header mismatch: %+v vs %+v", g.Step, f.Step)
	}
	for i := 0; i < f.E.Len(); i++ {
		if g.E.X[i] != f.E.X[i] || g.E.Pz[i] != f.E.Pz[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	f := testFrame(100, 2)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := ReadFrame(bytes.NewReader(data)); err == nil {
		t.Error("corrupted frame read without error")
	}
}

func TestFrameDetectsTruncation(t *testing.T) {
	f := testFrame(100, 3)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	data := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadFrame(bytes.NewReader(data)); err == nil {
		t.Error("truncated frame read without error")
	}
}

func TestFrameRejectsBadMagic(t *testing.T) {
	data := []byte("NOPE this is not a frame at all, not even close...")
	if _, err := ReadFrame(bytes.NewReader(data)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestFrameFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "frame_0001.acpf")
	f := testFrame(500, 4)
	if err := WriteFrameFile(path, f); err != nil {
		t.Fatalf("WriteFrameFile: %v", err)
	}
	g, err := ReadFrameFile(path)
	if err != nil {
		t.Fatalf("ReadFrameFile: %v", err)
	}
	if g.E.Len() != 500 {
		t.Errorf("read %d particles, want 500", g.E.Len())
	}
}

func buildTestTree(t *testing.T, n int, seed int64) *octree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.V3, n)
	for i := range pts {
		pts[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	tree, err := octree.Build(pts, octree.DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree
}

func TestTreeRoundTrip(t *testing.T) {
	tree := buildTestTree(t, 5000, 5)
	var nodes, pts bytes.Buffer
	if err := WriteTree(&nodes, &pts, tree); err != nil {
		t.Fatalf("WriteTree: %v", err)
	}
	got, err := ReadTree(&nodes, &pts)
	if err != nil {
		t.Fatalf("ReadTree: %v", err)
	}
	if got.MaxLevel != tree.MaxLevel || got.LeafCap != tree.LeafCap {
		t.Errorf("config mismatch: %d/%d vs %d/%d", got.MaxLevel, got.LeafCap, tree.MaxLevel, tree.LeafCap)
	}
	if len(got.Nodes) != len(tree.Nodes) {
		t.Fatalf("node count %d, want %d", len(got.Nodes), len(tree.Nodes))
	}
	if len(got.Points) != len(tree.Points) {
		t.Fatalf("point count %d, want %d", len(got.Points), len(tree.Points))
	}
	for i := range tree.Points {
		if got.Points[i] != tree.Points[i] || got.OrigIndex[i] != tree.OrigIndex[i] {
			t.Fatalf("point %d mismatch", i)
		}
	}
	// Extraction must behave identically on the loaded tree.
	for _, th := range []float64{0.01, 1, 100} {
		if got.HaloCount(th) != tree.HaloCount(th) {
			t.Errorf("HaloCount(%g) differs after round trip", th)
		}
	}
}

func TestTreeFileRoundTrip(t *testing.T) {
	tree := buildTestTree(t, 2000, 6)
	base := filepath.Join(t.TempDir(), "frame170_xyz")
	if err := WriteTreeFiles(base, tree); err != nil {
		t.Fatalf("WriteTreeFiles: %v", err)
	}
	got, err := ReadTreeFiles(base)
	if err != nil {
		t.Fatalf("ReadTreeFiles: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("loaded tree invalid: %v", err)
	}
}

func TestTreeDetectsNodeCorruption(t *testing.T) {
	tree := buildTestTree(t, 1000, 7)
	var nodes, pts bytes.Buffer
	if err := WriteTree(&nodes, &pts, tree); err != nil {
		t.Fatalf("WriteTree: %v", err)
	}
	data := nodes.Bytes()
	data[len(data)/3] ^= 0x55
	if _, err := ReadTree(bytes.NewReader(data), &pts); err == nil {
		t.Error("corrupted nodes part accepted")
	}
}

func TestTreeDetectsPointCorruption(t *testing.T) {
	tree := buildTestTree(t, 1000, 8)
	var nodes, pts bytes.Buffer
	if err := WriteTree(&nodes, &pts, tree); err != nil {
		t.Fatalf("WriteTree: %v", err)
	}
	data := pts.Bytes()
	data[len(data)-8] ^= 0x55 // flip a bit inside the index table
	if _, err := ReadTree(&nodes, bytes.NewReader(data)); err == nil {
		t.Error("corrupted points part accepted")
	}
}

func TestTreeSwappedPartsRejected(t *testing.T) {
	tree := buildTestTree(t, 500, 9)
	var nodes, pts bytes.Buffer
	if err := WriteTree(&nodes, &pts, tree); err != nil {
		t.Fatalf("WriteTree: %v", err)
	}
	if _, err := ReadTree(&pts, &nodes); err == nil {
		t.Error("swapped parts accepted")
	}
}

func TestFrameBytesMatchesPaperScale(t *testing.T) {
	// §2.1: 100M particles at 6 doubles each ~= 5GB per time step.
	gb := float64(FrameBytes(100_000_000)) / (1 << 30)
	if gb < 4 || gb > 5 {
		t.Errorf("100M-particle frame = %.2f GiB, want ~4.5 (paper: 5GB)", gb)
	}
	// The billion-particle initial step: ~48GB in the paper.
	gb = float64(FrameBytes(1_000_000_000)) / (1 << 30)
	if gb < 44 || gb > 48 {
		t.Errorf("1B-particle frame = %.2f GiB, want ~44.7 (paper: 48GB)", gb)
	}
}

// Property: frames of any size and content survive the round trip
// bit-exactly.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seed int64, n16 uint16, step uint16, s float64) bool {
		n := int(n16%500) + 1
		e := beam.NewEnsemble(n)
		e.GaussianInit(seed, [6]float64{1, 1, 1, 1, 1, 1}, 0)
		in := beam.Frame{Step: int(step), S: s, E: e}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		if out.Step != in.Step || out.S != in.S || out.E.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			for a := beam.AxisX; a <= beam.AxisPZ; a++ {
				if out.E.Coord(a)[i] != in.E.Coord(a)[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
