// Package pario implements the binary on-disk formats of the pipeline:
// raw particle frames (the simulation output), and the two-part
// partitioned representation of §2.3 — one part holding all particles
// of the simulation grouped by octree node and sorted by increasing
// node density, the other holding the octree nodes with their offsets
// and counts into the particle part.
//
// All files are little-endian with a magic number, a format version,
// and a trailing CRC-32 so corrupt or truncated transfers (the paper's
// data moves across wide-area networks) are detected on load.
package pario

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/beam"
	"repro/internal/octree"
	"repro/internal/vec"
)

// Format magics. Four bytes each, versioned separately.
var (
	magicFrame = [4]byte{'A', 'C', 'P', 'F'} // accelerator particle frame
	magicNodes = [4]byte{'A', 'C', 'O', 'N'} // octree nodes part
	magicPts   = [4]byte{'A', 'C', 'O', 'P'} // octree particle part
)

const formatVersion = 1

// countingWriter wraps a writer, tracking a running CRC and byte count.
type countingWriter struct {
	w   io.Writer
	crc hash.Hash32
	n   int64
}

func newCountingWriter(w io.Writer) *countingWriter {
	return &countingWriter{w: w, crc: crc32.NewIEEE()}
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	cw.n += int64(n)
	return n, err
}

// countingReader mirrors countingWriter for reads.
type countingReader struct {
	r   io.Reader
	crc hash.Hash32
}

func newCountingReader(r io.Reader) *countingReader {
	return &countingReader{r: r, crc: crc32.NewIEEE()}
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	return n, err
}

// writeU64 / writeF64 / small helpers keep encoding uniform.
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, binary.LittleEndian, v) }
func writeI64(w io.Writer, v int64) error  { return binary.Write(w, binary.LittleEndian, v) }
func writeF64(w io.Writer, v float64) error {
	return binary.Write(w, binary.LittleEndian, math.Float64bits(v))
}

func readU64(r io.Reader) (uint64, error) {
	var v uint64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readI64(r io.Reader) (int64, error) {
	var v int64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readF64(r io.Reader) (float64, error) {
	v, err := readU64(r)
	return math.Float64frombits(v), err
}

func writeFloatSlice(w io.Writer, s []float64) error {
	return binary.Write(w, binary.LittleEndian, s)
}

func readFloatSlice(r io.Reader, n int64) ([]float64, error) {
	s := make([]float64, n)
	if err := binary.Read(r, binary.LittleEndian, s); err != nil {
		return nil, err
	}
	return s, nil
}

// finishCRC writes the running checksum (excluded from its own
// coverage) after the payload.
func finishCRC(cw *countingWriter) error {
	return binary.Write(cw.w, binary.LittleEndian, cw.crc.Sum32())
}

// checkCRC reads the trailing checksum and compares.
func checkCRC(cr *countingReader, what string) error {
	want := cr.crc.Sum32()
	var got uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &got); err != nil {
		return fmt.Errorf("pario: reading %s checksum: %w", what, err)
	}
	if got != want {
		return fmt.Errorf("pario: %s checksum mismatch (file %08x, computed %08x)", what, got, want)
	}
	return nil
}

// WriteFrame writes a simulation frame to w: all six phase-space
// coordinates in double precision, exactly the storage model of the
// paper's data (48 bytes per particle; "100 million particles requires
// 5GB of storage per time step" — 5GB/100M ≈ 50 B/particle with
// headers).
func WriteFrame(w io.Writer, f beam.Frame) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := newCountingWriter(bw)
	if _, err := cw.Write(magicFrame[:]); err != nil {
		return fmt.Errorf("pario: writing frame magic: %w", err)
	}
	for _, v := range []uint64{formatVersion, uint64(f.Step)} {
		if err := writeU64(cw, v); err != nil {
			return fmt.Errorf("pario: writing frame header: %w", err)
		}
	}
	if err := writeF64(cw, f.S); err != nil {
		return fmt.Errorf("pario: writing frame header: %w", err)
	}
	if err := writeI64(cw, int64(f.E.Len())); err != nil {
		return fmt.Errorf("pario: writing frame header: %w", err)
	}
	for _, s := range [][]float64{f.E.X, f.E.Y, f.E.Z, f.E.Px, f.E.Py, f.E.Pz} {
		if err := writeFloatSlice(cw, s); err != nil {
			return fmt.Errorf("pario: writing frame data: %w", err)
		}
	}
	if err := finishCRC(cw); err != nil {
		return fmt.Errorf("pario: writing frame checksum: %w", err)
	}
	return bw.Flush()
}

// ReadFrame reads a frame written by WriteFrame.
func ReadFrame(r io.Reader) (beam.Frame, error) {
	cr := newCountingReader(bufio.NewReaderSize(r, 1<<20))
	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return beam.Frame{}, fmt.Errorf("pario: reading frame magic: %w", err)
	}
	if magic != magicFrame {
		return beam.Frame{}, fmt.Errorf("pario: bad frame magic %q", magic[:])
	}
	version, err := readU64(cr)
	if err != nil {
		return beam.Frame{}, fmt.Errorf("pario: reading frame version: %w", err)
	}
	if version != formatVersion {
		return beam.Frame{}, fmt.Errorf("pario: unsupported frame version %d", version)
	}
	step, err := readU64(cr)
	if err != nil {
		return beam.Frame{}, fmt.Errorf("pario: reading frame step: %w", err)
	}
	s, err := readF64(cr)
	if err != nil {
		return beam.Frame{}, fmt.Errorf("pario: reading frame position: %w", err)
	}
	n, err := readI64(cr)
	if err != nil {
		return beam.Frame{}, fmt.Errorf("pario: reading frame count: %w", err)
	}
	if n < 0 || n > 1<<40 {
		return beam.Frame{}, fmt.Errorf("pario: implausible particle count %d", n)
	}
	f := beam.Frame{Step: int(step), S: s, E: beam.NewEnsemble(int(n))}
	for _, dst := range []*[]float64{&f.E.X, &f.E.Y, &f.E.Z, &f.E.Px, &f.E.Py, &f.E.Pz} {
		sl, err := readFloatSlice(cr, n)
		if err != nil {
			return beam.Frame{}, fmt.Errorf("pario: reading frame data: %w", err)
		}
		*dst = sl
	}
	if err := checkCRC(cr, "frame"); err != nil {
		return beam.Frame{}, err
	}
	return f, nil
}

// WriteFrameFile writes a frame to the named file.
func WriteFrameFile(path string, f beam.Frame) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pario: %w", err)
	}
	defer file.Close()
	if err := WriteFrame(file, f); err != nil {
		return err
	}
	return file.Close()
}

// ReadFrameFile reads a frame from the named file.
func ReadFrameFile(path string) (beam.Frame, error) {
	file, err := os.Open(path)
	if err != nil {
		return beam.Frame{}, fmt.Errorf("pario: %w", err)
	}
	defer file.Close()
	return ReadFrame(file)
}

// FrameBytes returns the exact encoded size of a frame with n
// particles, used by the storage-accounting experiments (claim C3).
func FrameBytes(n int64) int64 {
	return 4 + 8 + 8 + 8 + 8 + 6*8*n + 4
}

// WriteTree writes the partitioned representation as the paper's two
// parts: nodesW receives the octree nodes (with offsets and counts into
// the particle part), ptsW receives the density-ordered particle
// groups plus their original indices.
func WriteTree(nodesW, ptsW io.Writer, t *octree.Tree) error {
	// Nodes part.
	bw := bufio.NewWriterSize(nodesW, 1<<20)
	cw := newCountingWriter(bw)
	if _, err := cw.Write(magicNodes[:]); err != nil {
		return fmt.Errorf("pario: writing nodes magic: %w", err)
	}
	if err := writeU64(cw, formatVersion); err != nil {
		return err
	}
	for _, v := range []float64{
		t.Bounds.Min.X, t.Bounds.Min.Y, t.Bounds.Min.Z,
		t.Bounds.Max.X, t.Bounds.Max.Y, t.Bounds.Max.Z,
	} {
		if err := writeF64(cw, v); err != nil {
			return err
		}
	}
	if err := writeI64(cw, int64(t.MaxLevel)); err != nil {
		return err
	}
	if err := writeI64(cw, int64(t.LeafCap)); err != nil {
		return err
	}
	if err := writeI64(cw, int64(len(t.Nodes))); err != nil {
		return err
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if err := writeI64(cw, int64(n.FirstChild)); err != nil {
			return err
		}
		if err := writeU64(cw, uint64(n.Level)); err != nil {
			return err
		}
		if err := writeI64(cw, n.Offset); err != nil {
			return err
		}
		if err := writeI64(cw, n.Count); err != nil {
			return err
		}
		if err := writeF64(cw, n.Density); err != nil {
			return err
		}
		for _, v := range []float64{
			n.Bounds.Min.X, n.Bounds.Min.Y, n.Bounds.Min.Z,
			n.Bounds.Max.X, n.Bounds.Max.Y, n.Bounds.Max.Z,
		} {
			if err := writeF64(cw, v); err != nil {
				return err
			}
		}
	}
	if err := writeI64(cw, int64(len(t.LeavesByDensity))); err != nil {
		return err
	}
	for _, li := range t.LeavesByDensity {
		if err := writeI64(cw, int64(li)); err != nil {
			return err
		}
	}
	for _, off := range t.LeafOffsets {
		if err := writeI64(cw, off); err != nil {
			return err
		}
	}
	if err := finishCRC(cw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// Particle part.
	bw2 := bufio.NewWriterSize(ptsW, 1<<20)
	cw2 := newCountingWriter(bw2)
	if _, err := cw2.Write(magicPts[:]); err != nil {
		return fmt.Errorf("pario: writing points magic: %w", err)
	}
	if err := writeU64(cw2, formatVersion); err != nil {
		return err
	}
	if err := writeI64(cw2, int64(len(t.Points))); err != nil {
		return err
	}
	for i := range t.Points {
		p := t.Points[i]
		if err := writeF64(cw2, p.X); err != nil {
			return err
		}
		if err := writeF64(cw2, p.Y); err != nil {
			return err
		}
		if err := writeF64(cw2, p.Z); err != nil {
			return err
		}
	}
	if err := binary.Write(cw2, binary.LittleEndian, t.OrigIndex); err != nil {
		return err
	}
	if err := finishCRC(cw2); err != nil {
		return err
	}
	return bw2.Flush()
}

// ReadTree reads both parts written by WriteTree and validates the
// reconstructed tree's invariants before returning it.
func ReadTree(nodesR, ptsR io.Reader) (*octree.Tree, error) {
	cr := newCountingReader(bufio.NewReaderSize(nodesR, 1<<20))
	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("pario: reading nodes magic: %w", err)
	}
	if magic != magicNodes {
		return nil, fmt.Errorf("pario: bad nodes magic %q", magic[:])
	}
	version, err := readU64(cr)
	if err != nil || version != formatVersion {
		return nil, fmt.Errorf("pario: unsupported nodes version %d (err %v)", version, err)
	}
	var bb [6]float64
	for i := range bb {
		if bb[i], err = readF64(cr); err != nil {
			return nil, fmt.Errorf("pario: reading bounds: %w", err)
		}
	}
	t := &octree.Tree{
		Bounds: vec.Box(vec.New(bb[0], bb[1], bb[2]), vec.New(bb[3], bb[4], bb[5])),
	}
	maxLevel, err := readI64(cr)
	if err != nil {
		return nil, err
	}
	leafCap, err := readI64(cr)
	if err != nil {
		return nil, err
	}
	t.MaxLevel = int(maxLevel)
	t.LeafCap = int(leafCap)
	nNodes, err := readI64(cr)
	if err != nil {
		return nil, err
	}
	if nNodes <= 0 || nNodes > 1<<32 {
		return nil, fmt.Errorf("pario: implausible node count %d", nNodes)
	}
	t.Nodes = make([]octree.Node, nNodes)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		fc, err := readI64(cr)
		if err != nil {
			return nil, fmt.Errorf("pario: reading node %d: %w", i, err)
		}
		n.FirstChild = int32(fc)
		lvl, err := readU64(cr)
		if err != nil {
			return nil, err
		}
		n.Level = uint8(lvl)
		if n.Offset, err = readI64(cr); err != nil {
			return nil, err
		}
		if n.Count, err = readI64(cr); err != nil {
			return nil, err
		}
		if n.Density, err = readF64(cr); err != nil {
			return nil, err
		}
		for j := range bb {
			if bb[j], err = readF64(cr); err != nil {
				return nil, err
			}
		}
		n.Bounds = vec.Box(vec.New(bb[0], bb[1], bb[2]), vec.New(bb[3], bb[4], bb[5]))
	}
	nLeaves, err := readI64(cr)
	if err != nil {
		return nil, err
	}
	if nLeaves < 0 || nLeaves > nNodes {
		return nil, fmt.Errorf("pario: implausible leaf count %d", nLeaves)
	}
	t.LeavesByDensity = make([]int32, nLeaves)
	for i := range t.LeavesByDensity {
		v, err := readI64(cr)
		if err != nil {
			return nil, err
		}
		t.LeavesByDensity[i] = int32(v)
	}
	t.LeafOffsets = make([]int64, nLeaves+1)
	for i := range t.LeafOffsets {
		if t.LeafOffsets[i], err = readI64(cr); err != nil {
			return nil, err
		}
	}
	if err := checkCRC(cr, "nodes"); err != nil {
		return nil, err
	}

	// Particle part.
	cr2 := newCountingReader(bufio.NewReaderSize(ptsR, 1<<20))
	if _, err := io.ReadFull(cr2, magic[:]); err != nil {
		return nil, fmt.Errorf("pario: reading points magic: %w", err)
	}
	if magic != magicPts {
		return nil, fmt.Errorf("pario: bad points magic %q", magic[:])
	}
	version, err = readU64(cr2)
	if err != nil || version != formatVersion {
		return nil, fmt.Errorf("pario: unsupported points version %d (err %v)", version, err)
	}
	nPts, err := readI64(cr2)
	if err != nil {
		return nil, err
	}
	if nPts < 0 || nPts > 1<<40 {
		return nil, fmt.Errorf("pario: implausible point count %d", nPts)
	}
	t.Points = make([]vec.V3, nPts)
	for i := range t.Points {
		x, err := readF64(cr2)
		if err != nil {
			return nil, fmt.Errorf("pario: reading point %d: %w", i, err)
		}
		y, err := readF64(cr2)
		if err != nil {
			return nil, err
		}
		z, err := readF64(cr2)
		if err != nil {
			return nil, err
		}
		t.Points[i] = vec.New(x, y, z)
	}
	t.OrigIndex = make([]int64, nPts)
	if err := binary.Read(cr2, binary.LittleEndian, t.OrigIndex); err != nil {
		return nil, err
	}
	if err := checkCRC(cr2, "points"); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("pario: loaded tree invalid: %w", err)
	}
	return t, nil
}

// WriteTreeFiles writes base+".oct" and base+".pts" — the paper's
// two-part layout on disk.
func WriteTreeFiles(base string, t *octree.Tree) error {
	nf, err := os.Create(base + ".oct")
	if err != nil {
		return fmt.Errorf("pario: %w", err)
	}
	defer nf.Close()
	pf, err := os.Create(base + ".pts")
	if err != nil {
		return fmt.Errorf("pario: %w", err)
	}
	defer pf.Close()
	if err := WriteTree(nf, pf, t); err != nil {
		return err
	}
	if err := nf.Close(); err != nil {
		return err
	}
	return pf.Close()
}

// ReadTreeFiles reads the pair written by WriteTreeFiles.
func ReadTreeFiles(base string) (*octree.Tree, error) {
	nf, err := os.Open(base + ".oct")
	if err != nil {
		return nil, fmt.Errorf("pario: %w", err)
	}
	defer nf.Close()
	pf, err := os.Open(base + ".pts")
	if err != nil {
		return nil, fmt.Errorf("pario: %w", err)
	}
	defer pf.Close()
	return ReadTree(nf, pf)
}
