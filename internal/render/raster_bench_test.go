package render

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/vec"
)

// benchSplats builds a deterministic cloud of n splats spread over the
// view volume with mixed radii — the RenderHybrid point-pass workload.
func benchSplats(n int) ([]PointSplat, Camera) {
	cam, err := NewCamera(vec.New(0, 0, 6), vec.New(0, 0, 0), vec.New(0, 1, 0),
		math.Pi/3, 1, 0.1, 100)
	if err != nil {
		panic(err)
	}
	rng := lcg(42)
	splats := make([]PointSplat, n)
	for i := range splats {
		splats[i] = PointSplat{
			Pos:    vec.New(rng.rangeF(-2.5, 2.5), rng.rangeF(-2.5, 2.5), rng.rangeF(-2.5, 2.5)),
			Radius: rng.rangeF(1, 3),
			Color:  hybrid.RGBA{R: rng.next(), G: rng.next(), B: rng.next(), A: 1},
		}
	}
	return splats, cam
}

// BenchmarkRasterPoints compares the serial immediate splat path with
// the tile-binned batched backend across worker counts — the rendering
// hot path of the hybrid viewer. The fragment metric verifies both
// paths do identical per-pixel work.
func BenchmarkRasterPoints(b *testing.B) {
	const size = 512
	for _, n := range []int{100_000, 1_000_000} {
		splats, cam := benchSplats(n)
		b.Run(fmt.Sprintf("N=%d/serial", n), func(b *testing.B) {
			b.ReportAllocs()
			fb, _ := NewFramebuffer(size, size)
			b.ResetTimer()
			var frags int64
			for i := 0; i < b.N; i++ {
				fb.Clear(hybrid.RGBA{})
				r := NewRasterizer(fb, cam)
				for _, s := range splats {
					r.DrawPoint(s.Pos, s.Radius, s.Color)
				}
				frags = r.FragmentCount
			}
			b.ReportMetric(float64(frags), "fragments")
		})
		workerCounts := []int{1, 2, 4}
		if ncpu := runtime.NumCPU(); ncpu > 4 {
			workerCounts = append(workerCounts, ncpu)
		}
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("N=%d/batch/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				fb, _ := NewFramebuffer(size, size)
				b.ResetTimer()
				var frags int64
				for i := 0; i < b.N; i++ {
					fb.Clear(hybrid.RGBA{})
					r := NewRasterizer(fb, cam)
					r.Workers = w
					r.DrawPointBatch(splats)
					frags = r.FragmentCount
				}
				b.ReportMetric(float64(frags), "fragments")
			})
		}
	}
}

// BenchmarkRasterTriangles measures the incremental edge-function fill
// against worker counts on a strip-heavy scene (the SOS workload).
func BenchmarkRasterTriangles(b *testing.B) {
	const size = 512
	cam, err := NewCamera(vec.New(0, 0, 6), vec.New(0, 0, 0), vec.New(0, 1, 0),
		math.Pi/3, 1, 0.1, 100)
	if err != nil {
		b.Fatal(err)
	}
	rng := lcg(7)
	strips := make([][]Vertex, 400)
	for i := range strips {
		strip := make([]Vertex, 64)
		x0, y0 := rng.rangeF(-2.5, 2), rng.rangeF(-2.5, 2.5)
		for j := range strip {
			strip[j] = Vertex{
				Pos:   vec.New(x0+float64(j/2)*0.07, y0+float64(j%2)*0.05, rng.rangeF(-1, 1)),
				N:     vec.New(0, 0, 1),
				Color: hybrid.RGBA{R: rng.next(), G: rng.next(), B: rng.next(), A: 1},
			}
		}
		strips[i] = strip
	}
	run := func(b *testing.B, workers int, batch bool) {
		b.ReportAllocs()
		fb, _ := NewFramebuffer(size, size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fb.Clear(hybrid.RGBA{})
			r := NewRasterizer(fb, cam)
			r.Workers = workers
			if batch {
				r.DrawTriangleStripBatch(strips)
			} else {
				for _, s := range strips {
					r.DrawTriangleStrip(s)
				}
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1, false) })
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("batch/workers=%d", w), func(b *testing.B) { run(b, w, true) })
	}
}
