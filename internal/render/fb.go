// Package render is a software rasterizer standing in for the
// commodity graphics hardware (nVidia GeForce class) the paper renders
// on. It provides the primitives both visualization techniques need:
// depth-buffered points, lines, triangles and triangle strips;
// programmable fragment shading (the stand-in for register combiners /
// bump mapping); alpha blending with back-to-front compositing; and
// additive splatting for dense particle clouds.
//
// Rendering runs through a tile-binned parallel backend: the batched
// entry points (DrawPointBatch, DrawLineBatch, DrawTriangleBatch,
// DrawTriangleStripBatch, or a mixed Batch) project and bin primitives
// into fixed screen tiles, then rasterize the tiles concurrently —
// each tile owned by exactly one worker, primitives replayed in
// submission order, so the image is bit-identical to the serial
// immediate-mode path at every worker count with no locks or atomics
// on pixel data. Point splats read a precomputed Gaussian kernel table
// instead of calling math.Exp per fragment, and triangle fill steps
// affine edge functions with early screen-bounds rejection.
//
// Absolute speed is not the reproduction target — the *ratios* between
// techniques (triangles per field line, hybrid vs full-resolution
// volume cost) are, and those are preserved because every primitive
// pays the same per-fragment cost model as the hardware path it
// replaces.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"

	"repro/internal/hybrid"
)

// Framebuffer is an RGBA color buffer with a float32 depth buffer.
// Depth follows the OpenGL convention: after projection, smaller values
// are nearer; the buffer clears to +Inf.
type Framebuffer struct {
	W, H  int
	Color []float32 // RGBA, 4 per pixel
	Depth []float32
}

// NewFramebuffer allocates a w x h framebuffer cleared to transparent
// black and far depth.
func NewFramebuffer(w, h int) (*Framebuffer, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("render: framebuffer size %dx%d invalid", w, h)
	}
	fb := &Framebuffer{
		W: w, H: h,
		Color: make([]float32, w*h*4),
		Depth: make([]float32, w*h),
	}
	fb.Clear(hybrid.RGBA{})
	return fb, nil
}

// Clear fills the color buffer with c and resets depth to +Inf.
func (fb *Framebuffer) Clear(c hybrid.RGBA) {
	inf := float32(math.Inf(1))
	for i := 0; i < len(fb.Depth); i++ {
		fb.Color[i*4+0] = float32(c.R)
		fb.Color[i*4+1] = float32(c.G)
		fb.Color[i*4+2] = float32(c.B)
		fb.Color[i*4+3] = float32(c.A)
		fb.Depth[i] = inf
	}
}

// At returns the color at pixel (x, y).
func (fb *Framebuffer) At(x, y int) hybrid.RGBA {
	i := (y*fb.W + x) * 4
	return hybrid.RGBA{
		R: float64(fb.Color[i]),
		G: float64(fb.Color[i+1]),
		B: float64(fb.Color[i+2]),
		A: float64(fb.Color[i+3]),
	}
}

// DepthAt returns the depth at pixel (x, y).
func (fb *Framebuffer) DepthAt(x, y int) float32 { return fb.Depth[y*fb.W+x] }

// BlendMode selects how a fragment combines with the stored color.
type BlendMode int

const (
	// BlendOpaque replaces the stored color (depth write + test).
	BlendOpaque BlendMode = iota
	// BlendAlpha composites src over dst (straight alpha).
	BlendAlpha
	// BlendAdditive adds src scaled by alpha — the accumulation mode
	// used for dense particle splatting where many dim points merge
	// into a bright volume.
	BlendAdditive
)

// writeFragment applies the depth test and blend mode for one fragment.
func (fb *Framebuffer) writeFragment(x, y int, depth float32, c hybrid.RGBA, mode BlendMode, depthTest, depthWrite bool) {
	if x < 0 || x >= fb.W || y < 0 || y >= fb.H {
		return
	}
	di := y*fb.W + x
	if depthTest && depth > fb.Depth[di] {
		return
	}
	ci := di * 4
	switch mode {
	case BlendOpaque:
		fb.Color[ci] = float32(c.R)
		fb.Color[ci+1] = float32(c.G)
		fb.Color[ci+2] = float32(c.B)
		fb.Color[ci+3] = float32(c.A)
	case BlendAlpha:
		a := float32(c.A)
		fb.Color[ci] = float32(c.R)*a + fb.Color[ci]*(1-a)
		fb.Color[ci+1] = float32(c.G)*a + fb.Color[ci+1]*(1-a)
		fb.Color[ci+2] = float32(c.B)*a + fb.Color[ci+2]*(1-a)
		fb.Color[ci+3] = a + fb.Color[ci+3]*(1-a)
	case BlendAdditive:
		a := float32(c.A)
		fb.Color[ci] += float32(c.R) * a
		fb.Color[ci+1] += float32(c.G) * a
		fb.Color[ci+2] += float32(c.B) * a
		fb.Color[ci+3] += a
	}
	if depthWrite {
		fb.Depth[di] = depth
	}
}

// ToImage converts the framebuffer to an 8-bit image, clamping each
// channel.
func (fb *Framebuffer) ToImage() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, fb.W, fb.H))
	for y := 0; y < fb.H; y++ {
		for x := 0; x < fb.W; x++ {
			i := (y*fb.W + x) * 4
			img.SetRGBA(x, y, color.RGBA{
				R: clamp8(fb.Color[i]),
				G: clamp8(fb.Color[i+1]),
				B: clamp8(fb.Color[i+2]),
				A: 255,
			})
		}
	}
	return img
}

// WritePNG saves the framebuffer as a PNG file.
func (fb *Framebuffer) WritePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	defer f.Close()
	if err := png.Encode(f, fb.ToImage()); err != nil {
		return fmt.Errorf("render: encoding %s: %w", path, err)
	}
	return f.Close()
}

// Luminance returns the perceptual luminance of pixel (x, y), used by
// the image-statistics experiments.
func (fb *Framebuffer) Luminance(x, y int) float64 {
	c := fb.At(x, y)
	return 0.2126*c.R + 0.7152*c.G + 0.0722*c.B
}

// MeanLuminance averages luminance over the frame.
func (fb *Framebuffer) MeanLuminance() float64 {
	var sum float64
	for y := 0; y < fb.H; y++ {
		for x := 0; x < fb.W; x++ {
			sum += fb.Luminance(x, y)
		}
	}
	return sum / float64(fb.W*fb.H)
}

// CoveredPixels counts pixels whose luminance exceeds the threshold —
// a cheap structure metric for comparing renderings.
func (fb *Framebuffer) CoveredPixels(threshold float64) int {
	n := 0
	for y := 0; y < fb.H; y++ {
		for x := 0; x < fb.W; x++ {
			if fb.Luminance(x, y) > threshold {
				n++
			}
		}
	}
	return n
}

func clamp8(v float32) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}
