package render

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/vec"
)

// partialFixture renders a deterministic splat cloud into a small
// framebuffer — real coverage with real depths, plus untouched
// background around it.
func partialFixture(t testing.TB, n int) *Framebuffer {
	t.Helper()
	fb, err := NewFramebuffer(64, 48)
	if err != nil {
		t.Fatal(err)
	}
	fb.Clear(hybrid.RGBA{})
	cam, err := LookAtBounds(vec.Box(vec.New(0, 0, 0), vec.New(1, 1, 1)),
		vec.New(0.5, 0.25, 1), math.Pi/3, 64.0/48)
	if err != nil {
		t.Fatal(err)
	}
	rast := NewRasterizer(fb, cam)
	state := uint64(7)
	rnd := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	splats := make([]PointSplat, n)
	for i := range splats {
		splats[i] = PointSplat{
			Pos:    vec.New(0.25+0.5*rnd(), 0.25+0.5*rnd(), 0.25+0.5*rnd()),
			Radius: 1.5,
			Color:  hybrid.RGBA{R: rnd(), G: rnd(), B: rnd(), A: 1},
		}
	}
	rast.DrawPointBatch(splats)
	return fb
}

// TestPartialFramebufferRoundTrip: the depth-augmented codec is
// lossless — every color word, every depth word, the sequence tag and
// the covered rectangle survive the wire exactly.
func TestPartialFramebufferRoundTrip(t *testing.T) {
	fb := partialFixture(t, 120)
	blob := CompressPartial(fb, 5)
	pf, err := DecompressPartial(blob)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Seq != 5 {
		t.Errorf("Seq = %d, want 5", pf.Seq)
	}
	if pf.RW <= 0 || pf.RH <= 0 || pf.RW > fb.W || pf.RH > fb.H {
		t.Errorf("implausible covered rect %dx%d at (%d,%d)", pf.RW, pf.RH, pf.X0, pf.Y0)
	}
	for i := range fb.Color {
		if math.Float32bits(pf.FB.Color[i]) != math.Float32bits(fb.Color[i]) {
			t.Fatalf("color word %d = %g, want %g", i, pf.FB.Color[i], fb.Color[i])
		}
	}
	for i := range fb.Depth {
		if math.Float32bits(pf.FB.Depth[i]) != math.Float32bits(fb.Depth[i]) {
			t.Fatalf("depth word %d = %g, want %g", i, pf.FB.Depth[i], fb.Depth[i])
		}
	}
	// AppendPartial onto an existing buffer leaves the prefix alone and
	// produces the same blob.
	prefix := []byte("prefix")
	appended := AppendPartial(append([]byte(nil), prefix...), fb, 5)
	if !bytes.HasPrefix(appended, prefix) || !bytes.Equal(appended[len(prefix):], blob) {
		t.Error("AppendPartial disagrees with CompressPartial")
	}
}

// TestPartialFramebufferEmpty: an untouched framebuffer encodes as a
// 36-byte header with a 0x0 rect and decodes back to a cleared frame.
func TestPartialFramebufferEmpty(t *testing.T) {
	fb, err := NewFramebuffer(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	fb.Clear(hybrid.RGBA{})
	blob := CompressPartial(fb, 3)
	if len(blob) != 36 {
		t.Errorf("empty partial is %d bytes, want header-only 36", len(blob))
	}
	pf, err := DecompressPartial(blob)
	if err != nil {
		t.Fatal(err)
	}
	if pf.RW != 0 || pf.RH != 0 || pf.Seq != 3 {
		t.Errorf("empty partial decoded to rect %dx%d seq %d", pf.RW, pf.RH, pf.Seq)
	}
	inf := float32(math.Inf(1))
	for i, d := range pf.FB.Depth {
		if d != inf {
			t.Fatalf("depth %d = %g, want +Inf background", i, d)
		}
	}
}

// TestPartialFramebufferMalformed: every corruption class errors
// cleanly — no panic, no acceptance.
func TestPartialFramebufferMalformed(t *testing.T) {
	good := CompressPartial(partialFixture(t, 60), 1)
	le := func(b []byte, off int, v uint32) []byte {
		out := append([]byte(nil), b...)
		out[off] = byte(v)
		out[off+1] = byte(v >> 8)
		out[off+2] = byte(v >> 16)
		out[off+3] = byte(v >> 24)
		return out
	}
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": good[:20],
		"bad magic":        append([]byte("XXXX"), good[4:]...),
		"bad version":      le(good, 4, 99),
		"zero width":       le(good, 8, 0),
		"huge dims":        le(le(good, 8, 1<<20), 12, 1<<20),
		"rect outside":     le(good, 20, 1<<15),
		"half-empty rect":  le(le(good, 28, 0), 32, 7),
		"truncated planes": good[:len(good)-5],
		"trailing bytes":   append(append([]byte(nil), good...), 0xab),
	}
	for name, data := range cases {
		if _, err := DecompressPartial(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzPartialFramebuffer: the decoder must never panic or
// over-allocate on hostile input, and everything it accepts must
// re-encode to a decodable blob.
func FuzzPartialFramebuffer(f *testing.F) {
	f.Add(CompressPartial(partialFixture(f, 80), 2))
	empty, err := NewFramebuffer(8, 8)
	if err != nil {
		f.Fatal(err)
	}
	empty.Clear(hybrid.RGBA{})
	f.Add(CompressPartial(empty, 0))
	f.Add([]byte("ACPB"))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		pf, err := DecompressPartial(data)
		if err != nil {
			return
		}
		back, err := DecompressPartial(CompressPartial(pf.FB, pf.Seq))
		if err != nil {
			t.Fatalf("accepted partial failed to round-trip: %v", err)
		}
		for i := range pf.FB.Color {
			if math.Float32bits(back.FB.Color[i]) != math.Float32bits(pf.FB.Color[i]) {
				t.Fatal("re-encoded partial lost a color word")
			}
		}
	})
}
