package render

import (
	"math"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/vec"
)

// TestCameraDepthRangeConservative: every point inside a box projects
// (through the rasterizer's own float32 depth path) inside the box's
// DepthRange interval, for a spread of boxes and cameras.
func TestCameraDepthRangeConservative(t *testing.T) {
	state := uint64(42)
	rnd := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	for trial := 0; trial < 50; trial++ {
		min := vec.New(rnd()*4-2, rnd()*4-2, rnd()*4-2)
		box := vec.Box(min, min.Add(vec.New(0.01+rnd(), 0.01+rnd(), 0.01+rnd())))
		cam, err := LookAtBounds(box, vec.New(rnd()-0.5, rnd()-0.5, rnd()+0.2), math.Pi/3, 1)
		if err != nil {
			t.Fatal(err)
		}
		near, far, ok := cam.DepthRange(box)
		if !ok {
			t.Fatalf("trial %d: DepthRange not ok for a framed box", trial)
		}
		if near >= far {
			t.Fatalf("trial %d: degenerate interval [%g, %g]", trial, near, far)
		}
		for s := 0; s < 200; s++ {
			p := vec.New(
				box.Min.X+rnd()*(box.Max.X-box.Min.X),
				box.Min.Y+rnd()*(box.Max.Y-box.Min.Y),
				box.Min.Z+rnd()*(box.Max.Z-box.Min.Z))
			_, _, depth, vis := cam.WorldToScreen(p, 64, 64)
			if !vis {
				t.Fatalf("trial %d: interior point behind the near plane", trial)
			}
			if d := float32(depth); d < near || d > far {
				t.Fatalf("trial %d: depth %g escapes DepthRange [%g, %g]", trial, d, near, far)
			}
		}
	}
}

// TestCameraDepthRangeRejects: empty boxes and boxes reaching the near
// plane get no interval.
func TestCameraDepthRangeRejects(t *testing.T) {
	box := vec.Box(vec.New(0, 0, 0), vec.New(1, 1, 1))
	cam, err := LookAtBounds(box, vec.New(0, 0, 1), math.Pi/3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := cam.DepthRange(vec.Empty()); ok {
		t.Error("empty box produced a depth interval")
	}
	// A box surrounding the eye touches the near plane.
	huge := vec.Box(cam.Eye.Sub(vec.New(1, 1, 1)), cam.Eye.Add(vec.New(1, 1, 1)))
	if _, _, ok := cam.DepthRange(huge); ok {
		t.Error("box containing the eye produced a depth interval")
	}
}

func clipFixture(t *testing.T) (Camera, []PointSplat) {
	t.Helper()
	box := vec.Box(vec.New(0, 0, 0), vec.New(1, 1, 1))
	cam, err := LookAtBounds(box, vec.New(0.3, 0.4, 1), math.Pi/3, 1)
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(99)
	rnd := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	splats := make([]PointSplat, 300)
	for i := range splats {
		splats[i] = PointSplat{
			Pos:    vec.New(rnd(), rnd(), rnd()),
			Radius: 1 + 2*rnd(),
			Color:  hybrid.RGBA{R: rnd(), G: rnd(), B: rnd(), A: 1},
		}
	}
	return cam, splats
}

func clipRender(t *testing.T, cam Camera, splats []PointSplat, clip bool, near, far float32) *Framebuffer {
	t.Helper()
	fb, err := NewFramebuffer(80, 80)
	if err != nil {
		t.Fatal(err)
	}
	fb.Clear(hybrid.RGBA{})
	rast := NewRasterizer(fb, cam)
	rast.ClipDepth, rast.ClipNear, rast.ClipFar = clip, near, far
	rast.DrawPointBatch(splats)
	return fb
}

func sameFB(a, b *Framebuffer) bool {
	for i := range a.Color {
		if math.Float32bits(a.Color[i]) != math.Float32bits(b.Color[i]) {
			return false
		}
	}
	for i := range a.Depth {
		if math.Float32bits(a.Depth[i]) != math.Float32bits(b.Depth[i]) {
			return false
		}
	}
	return true
}

// TestRasterizerClipDepth pins the depth-slab clip the sort-last
// worker pass relies on: clipping to the splats' own DepthRange
// changes nothing, an empty slab drops everything, and a slab around
// one subset draws exactly that subset.
func TestRasterizerClipDepth(t *testing.T) {
	cam, splats := clipFixture(t)

	box := vec.Empty()
	for _, s := range splats {
		box = box.ExtendPoint(s.Pos)
	}
	near, far, ok := cam.DepthRange(box)
	if !ok {
		t.Fatal("DepthRange failed for the splat cloud")
	}

	plain := clipRender(t, cam, splats, false, 0, 0)
	if !sameFB(clipRender(t, cam, splats, true, near, far), plain) {
		t.Error("clipping to the cloud's own depth slab changed the image")
	}

	// A slab behind everything: nothing survives.
	empty := clipRender(t, cam, splats, true, far+1, far+2)
	background, err := NewFramebuffer(80, 80)
	if err != nil {
		t.Fatal(err)
	}
	background.Clear(hybrid.RGBA{})
	if !sameFB(empty, background) {
		t.Error("an excluding depth slab still wrote fragments")
	}

	// Split the cloud by each splat's projected depth at the slab
	// midpoint; clipping the full batch to the near half's slab must
	// draw exactly the near half.
	mid := (near + far) / 2
	var nearHalf []PointSplat
	for _, s := range splats {
		if _, _, depth, ok := cam.WorldToScreen(s.Pos, 80, 80); ok && float32(depth) <= mid {
			nearHalf = append(nearHalf, s)
		}
	}
	if len(nearHalf) == 0 || len(nearHalf) == len(splats) {
		t.Fatalf("degenerate split: %d of %d near", len(nearHalf), len(splats))
	}
	if !sameFB(clipRender(t, cam, splats, true, near, mid), clipRender(t, cam, nearHalf, false, 0, 0)) {
		t.Error("clipped full batch differs from unclipped near half")
	}

	// Lines route through the generic fragment emitter; the slab must
	// drop their fragments too.
	lineFB, err := NewFramebuffer(80, 80)
	if err != nil {
		t.Fatal(err)
	}
	lineFB.Clear(hybrid.RGBA{})
	rast := NewRasterizer(lineFB, cam)
	rast.ClipDepth, rast.ClipNear, rast.ClipFar = true, far+1, far+2
	rast.DrawLine(vec.New(0, 0, 0), vec.New(1, 1, 1), 1, hybrid.RGBA{R: 1, A: 1}, hybrid.RGBA{B: 1, A: 1})
	if !sameFB(lineFB, background) {
		t.Error("excluding depth slab did not clip line fragments")
	}
}
