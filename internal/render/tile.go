package render

import (
	"sync"

	"repro/internal/hybrid"
	"repro/internal/par"
	"repro/internal/sortx"
	"repro/internal/vec"
)

// TileSize is the edge of the fixed screen tiles the batched path bins
// primitives into. Each tile is rasterized by exactly one worker, so
// the pixels it owns are written without locks or atomics.
const TileSize = 32

// Primitive kinds inside a batch.
const (
	kindPoint = iota
	kindLine
	kindTri
)

// batchPrim is one submitted primitive in submission order.
type batchPrim struct {
	kind int32
	idx  int32 // index into the per-kind submission slice
}

type pointPrim struct {
	pos    vec.V3
	radius float64
	color  hybrid.RGBA
}

type linePrim struct {
	p0, p1 vec.V3
	width  float64
	c0, c1 hybrid.RGBA
}

type triPrim struct {
	i0, i1, i2 int32 // indices into Batch.verts
}

// PointSplat is one batched point submission.
type PointSplat struct {
	Pos    vec.V3
	Radius float64 // splat radius in pixels
	Color  hybrid.RGBA
}

// LineSeg is one batched line-segment submission.
type LineSeg struct {
	P0, P1 vec.V3
	Width  float64
	C0, C1 hybrid.RGBA
}

// Batch records primitives for deferred, tile-parallel rasterization.
// Primitives of any kind may be mixed; submission order is preserved
// exactly, so a Flush produces the same image — bit for bit — as
// issuing the same sequence of immediate Draw* calls, at every worker
// count. Stats are folded into the rasterizer at Flush. A batch may be
// reused after Flush; it keeps its capacity.
type Batch struct {
	r      *Rasterizer
	prims  []batchPrim
	points []pointPrim
	lines  []linePrim
	tris   []triPrim
	verts  []Vertex
}

// NewBatch returns an empty batch bound to the rasterizer.
func (r *Rasterizer) NewBatch() *Batch { return &Batch{r: r} }

// Point submits one point splat.
func (b *Batch) Point(p vec.V3, pixelRadius float64, c hybrid.RGBA) {
	b.prims = append(b.prims, batchPrim{kindPoint, int32(len(b.points))})
	b.points = append(b.points, pointPrim{p, pixelRadius, c})
}

// Line submits one line segment.
func (b *Batch) Line(p0, p1 vec.V3, width float64, c0, c1 hybrid.RGBA) {
	b.prims = append(b.prims, batchPrim{kindLine, int32(len(b.lines))})
	b.lines = append(b.lines, linePrim{p0, p1, width, c0, c1})
}

// Triangle submits one triangle.
func (b *Batch) Triangle(v0, v1, v2 Vertex) {
	base := int32(len(b.verts))
	b.verts = append(b.verts, v0, v1, v2)
	b.prims = append(b.prims, batchPrim{kindTri, int32(len(b.tris))})
	b.tris = append(b.tris, triPrim{base, base + 1, base + 2})
}

// TriangleStrip submits a strip with the same alternating winding as
// DrawTriangleStrip: (0,1,2), (2,1,3), (2,3,4), ...
func (b *Batch) TriangleStrip(verts []Vertex) {
	base := int32(len(b.verts))
	b.verts = append(b.verts, verts...)
	for i := 0; i+2 < len(verts); i++ {
		v0, v1 := base+int32(i), base+int32(i)+1
		if i%2 == 1 {
			v0, v1 = v1, v0
		}
		b.prims = append(b.prims, batchPrim{kindTri, int32(len(b.tris))})
		b.tris = append(b.tris, triPrim{v0, v1, base + int32(i) + 2})
	}
}

// reset empties the batch for reuse, keeping capacity.
func (b *Batch) reset() {
	b.prims = b.prims[:0]
	b.points = b.points[:0]
	b.lines = b.lines[:0]
	b.tris = b.tris[:0]
	b.verts = b.verts[:0]
}

// tileRun is one tile's contiguous slice of the binned pair array.
type tileRun struct{ lo, hi int }

// flushScratch holds the reusable working storage of one Flush. It is
// recycled through a sync.Pool so steady-state rendering (a flush per
// frame) allocates almost nothing.
type flushScratch struct {
	pts   []pointSetup
	lns   []lineSetup
	tris  []triSetup
	offs  []int
	pairs []sortx.KV
	sscr  []sortx.KV
	runs  []tileRun
	frags []int64
}

var scratchPool = sync.Pool{New: func() any { return new(flushScratch) }}

// grow returns s resized to n elements, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func grow[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	return (*s)[:n]
}

// tileSpan counts the tiles a screen bounding box covers.
func tileSpan(x0, y0, x1, y1 int) int {
	return (x1/TileSize - x0/TileSize + 1) * (y1/TileSize - y0/TileSize + 1)
}

// Flush projects, bins and rasterizes every batched primitive, then
// empties the batch. The phases all run on r.Workers goroutines
// (0 = par.Workers()):
//
//  1. setup — primitives are projected and screen-culled in parallel;
//     every primitive owns a fixed slot in the setup arrays, so no
//     ordering work is needed afterwards;
//  2. binning — each visible record expands into (tile key, sequence)
//     pairs which a stable sortx radix pass groups by tile, keeping
//     submission order inside every tile;
//  3. tiles — each tile's primitives are replayed in order by its
//     owning worker through the same raster kernels the immediate
//     path uses, clipped to the tile rect.
//
// Every pixel belongs to exactly one tile, so no two workers touch the
// same framebuffer word and the fragment sequence per pixel equals the
// serial path's — the image is bit-identical at every worker count.
func (b *Batch) Flush() {
	r := b.r
	n := len(b.prims)
	if n == 0 {
		return
	}
	workers := r.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	if workers == 1 {
		// One worker gains nothing from binning: replay the submission
		// immediately. The immediate methods ARE the reference the
		// tile path reproduces, so the output is identical.
		b.flushSerial()
		return
	}
	sc := scratchPool.Get().(*flushScratch)

	// Phase 1 — parallel setup into slot-indexed arrays. offs[i+1]
	// temporarily holds prim i's pair count; invalid triangle fan
	// slots carry an empty-bbox sentinel (x1 < x0).
	pts := grow(&sc.pts, len(b.points))
	lns := grow(&sc.lns, len(b.lines))
	tris := grow(&sc.tris, 2*len(b.tris))
	offs := grow(&sc.offs, n+1)
	nw := workers
	if nw > n {
		nw = n
	}
	chunk := (n + nw - 1) / nw
	stats := make([][3]int64, nw)
	par.ForChunks(n, nw, func(lo, hi int) {
		st := &stats[lo/chunk]
		var clipBuf [4]clipVert
		for i := lo; i < hi; i++ {
			pr := b.prims[i]
			cnt := 0
			switch pr.kind {
			case kindPoint:
				pp := &b.points[pr.idx]
				s := &pts[pr.idx]
				projected, visible := r.setupPoint(pp.pos, pp.radius, pp.color, s)
				if projected {
					st[0]++
					if visible {
						cnt = tileSpan(s.x0, s.y0, s.x1, s.y1)
					}
				}
			case kindLine:
				lp := &b.lines[pr.idx]
				s := &lns[pr.idx]
				drawn, visible := r.setupLine(lp.p0, lp.p1, lp.width, lp.c0, lp.c1, s)
				if drawn {
					st[1]++
					if visible {
						cnt = tileSpan(s.x0, s.y0, s.x1, s.y1)
					}
				}
			case kindTri:
				st[2]++
				tris[2*pr.idx].x0, tris[2*pr.idx].x1 = 0, -1
				tris[2*pr.idx+1].x0, tris[2*pr.idx+1].x1 = 0, -1
				tp := b.tris[pr.idx]
				clipped := r.clipTriangle(b.verts[tp.i0], b.verts[tp.i1], b.verts[tp.i2], clipBuf[:])
				sub := 0
				for j := 1; j+1 < len(clipped) && sub < 2; j++ {
					s := &tris[2*pr.idx+int32(sub)]
					if r.setupTriangle(clipped[0], clipped[j], clipped[j+1], s) {
						cnt += tileSpan(s.x0, s.y0, s.x1, s.y1)
						sub++
					} else {
						s.x0, s.x1 = 0, -1
					}
				}
			}
			offs[i+1] = cnt
		}
	})
	for _, st := range stats {
		r.PointCount += st[0]
		r.LineCount += st[1]
		r.TriangleCount += st[2]
	}

	// Prefix-sum pair counts into offsets.
	offs[0] = 0
	for i := 0; i < n; i++ {
		offs[i+1] += offs[i]
	}
	nPairs := offs[n]
	if nPairs == 0 {
		b.reset()
		scratchPool.Put(sc)
		return
	}

	// Phase 2 — expand records into (tile, sequence) pairs and group
	// them by tile with the stable radix sort. The sequence value
	// encodes (prim index, fan slot), so ascending order inside a tile
	// is exactly submission order.
	tw := (r.FB.W + TileSize - 1) / TileSize
	pairs := grow(&sc.pairs, nPairs)
	emitPairs := func(o int, x0, y0, x1, y1 int, seq int64) int {
		for ty := y0 / TileSize; ty <= y1/TileSize; ty++ {
			for tx := x0 / TileSize; tx <= x1/TileSize; tx++ {
				pairs[o] = sortx.KV{K: uint64(ty*tw + tx), V: seq}
				o++
			}
		}
		return o
	}
	par.ForChunks(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			o := offs[i]
			if offs[i+1] == o {
				continue
			}
			pr := b.prims[i]
			switch pr.kind {
			case kindPoint:
				s := &pts[pr.idx]
				emitPairs(o, s.x0, s.y0, s.x1, s.y1, int64(i)<<1)
			case kindLine:
				s := &lns[pr.idx]
				emitPairs(o, s.x0, s.y0, s.x1, s.y1, int64(i)<<1)
			case kindTri:
				for sub := 0; sub < 2; sub++ {
					s := &tris[2*pr.idx+int32(sub)]
					if s.x1 < s.x0 {
						continue
					}
					o = emitPairs(o, s.x0, s.y0, s.x1, s.y1, int64(i)<<1|int64(sub))
				}
			}
		}
	})
	sscr := grow(&sc.sscr, nPairs)
	sortx.PairsScratch(pairs, sscr, workers)

	// Tile run boundaries over the sorted pairs.
	runs := sc.runs[:0]
	lo := 0
	for i := 1; i <= nPairs; i++ {
		if i == nPairs || pairs[i].K != pairs[lo].K {
			runs = append(runs, tileRun{lo, i})
			lo = i
		}
	}
	sc.runs = runs

	// Phase 3 — rasterize tiles concurrently, one owner per tile.
	if r.fragmentSink != nil {
		r.fragmentSink.beginShards(len(runs))
	}
	frags := grow(&sc.frags, len(runs))
	par.ForChunks(len(runs), workers, func(rlo, rhi int) {
		for ri := rlo; ri < rhi; ri++ {
			run := runs[ri]
			tile := int(pairs[run.lo].K)
			tx, ty := tile%tw, tile/tw
			e := emitCtx{
				r:     r,
				x0:    tx * TileSize,
				y0:    ty * TileSize,
				x1:    min(tx*TileSize+TileSize-1, r.FB.W-1),
				y1:    min(ty*TileSize+TileSize-1, r.FB.H-1),
				shard: ri,
			}
			for pi := run.lo; pi < run.hi; pi++ {
				seq := pairs[pi].V
				pr := b.prims[seq>>1]
				switch pr.kind {
				case kindPoint:
					rasterPoint(&pts[pr.idx], &e)
				case kindLine:
					rasterLine(&lns[pr.idx], &e)
				case kindTri:
					rasterTriangle(&tris[2*pr.idx+int32(seq&1)], &e)
				}
			}
			frags[ri] = e.frags
		}
	})
	if r.fragmentSink != nil {
		r.fragmentSink.endShards()
	}
	for _, f := range frags {
		r.FragmentCount += f
	}
	b.reset()
	scratchPool.Put(sc)
}

// flushSerial replays the batch through the immediate-mode path — the
// single-worker fallback.
func (b *Batch) flushSerial() {
	r := b.r
	for _, pr := range b.prims {
		switch pr.kind {
		case kindPoint:
			pp := &b.points[pr.idx]
			r.DrawPoint(pp.pos, pp.radius, pp.color)
		case kindLine:
			lp := &b.lines[pr.idx]
			r.DrawLine(lp.p0, lp.p1, lp.width, lp.c0, lp.c1)
		case kindTri:
			tp := b.tris[pr.idx]
			r.DrawTriangle(b.verts[tp.i0], b.verts[tp.i1], b.verts[tp.i2])
		}
	}
	b.reset()
}

// batchPool recycles the batches behind the typed entry points so a
// flush per frame reuses its submission buffers.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

func getBatch(r *Rasterizer) *Batch {
	b := batchPool.Get().(*Batch)
	b.r = r
	return b
}

func putBatch(b *Batch) {
	b.r = nil
	batchPool.Put(b)
}

// DrawPointBatch splats every point through the tile-parallel backend;
// equivalent to calling DrawPoint for each splat in order.
//
// This is the hybrid viewer's hot path, so it skips the generic batch
// machinery: point setup is a couple of matrix applies, cheap enough
// to recompute per phase directly from the caller's slice, which
// keeps the flush free of per-splat intermediate storage (only the
// tile pairs are materialized).
func (r *Rasterizer) DrawPointBatch(splats []PointSplat) {
	n := len(splats)
	if n == 0 {
		return
	}
	workers := r.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	if workers == 1 {
		for i := range splats {
			r.DrawPoint(splats[i].Pos, splats[i].Radius, splats[i].Color)
		}
		return
	}
	sc := scratchPool.Get().(*flushScratch)

	// Pass 1 — project, cull, and count covered tiles per splat.
	offs := grow(&sc.offs, n+1)
	nw := workers
	if nw > n {
		nw = n
	}
	chunk := (n + nw - 1) / nw
	stats := make([]int64, nw)
	par.ForChunks(n, nw, func(lo, hi int) {
		var s pointSetup
		count := int64(0)
		for i := lo; i < hi; i++ {
			sp := &splats[i]
			cnt := 0
			projected, visible := r.setupPoint(sp.Pos, sp.Radius, sp.Color, &s)
			if projected {
				count++
				if visible {
					cnt = tileSpan(s.x0, s.y0, s.x1, s.y1)
				}
			}
			offs[i+1] = cnt
		}
		stats[lo/chunk] = count
	})
	for _, c := range stats {
		r.PointCount += c
	}
	offs[0] = 0
	for i := 0; i < n; i++ {
		offs[i+1] += offs[i]
	}
	nPairs := offs[n]
	if nPairs == 0 {
		scratchPool.Put(sc)
		return
	}

	// Pass 2 — expand into (tile, splat) pairs and group by tile.
	tw := (r.FB.W + TileSize - 1) / TileSize
	pairs := grow(&sc.pairs, nPairs)
	par.ForChunks(n, workers, func(lo, hi int) {
		var s pointSetup
		for i := lo; i < hi; i++ {
			o := offs[i]
			if offs[i+1] == o {
				continue
			}
			sp := &splats[i]
			r.setupPoint(sp.Pos, sp.Radius, sp.Color, &s)
			for ty := s.y0 / TileSize; ty <= s.y1/TileSize; ty++ {
				for tx := s.x0 / TileSize; tx <= s.x1/TileSize; tx++ {
					pairs[o] = sortx.KV{K: uint64(ty*tw + tx), V: int64(i)}
					o++
				}
			}
		}
	})
	sscr := grow(&sc.sscr, nPairs)
	sortx.PairsScratch(pairs, sscr, workers)
	runs := sc.runs[:0]
	lo := 0
	for i := 1; i <= nPairs; i++ {
		if i == nPairs || pairs[i].K != pairs[lo].K {
			runs = append(runs, tileRun{lo, i})
			lo = i
		}
	}
	sc.runs = runs

	// Pass 3 — rasterize tiles concurrently, replaying each tile's
	// splats in submission order.
	if r.fragmentSink != nil {
		r.fragmentSink.beginShards(len(runs))
	}
	frags := grow(&sc.frags, len(runs))
	par.ForChunks(len(runs), workers, func(rlo, rhi int) {
		var s pointSetup
		for ri := rlo; ri < rhi; ri++ {
			run := runs[ri]
			tile := int(pairs[run.lo].K)
			tx, ty := tile%tw, tile/tw
			e := emitCtx{
				r:     r,
				x0:    tx * TileSize,
				y0:    ty * TileSize,
				x1:    min(tx*TileSize+TileSize-1, r.FB.W-1),
				y1:    min(ty*TileSize+TileSize-1, r.FB.H-1),
				shard: ri,
			}
			for pi := run.lo; pi < run.hi; pi++ {
				sp := &splats[pairs[pi].V]
				r.setupPoint(sp.Pos, sp.Radius, sp.Color, &s)
				rasterPoint(&s, &e)
			}
			frags[ri] = e.frags
		}
	})
	if r.fragmentSink != nil {
		r.fragmentSink.endShards()
	}
	for _, f := range frags {
		r.FragmentCount += f
	}
	scratchPool.Put(sc)
}

// DrawLineBatch draws every segment through the tile-parallel backend;
// equivalent to calling DrawLine for each segment in order.
func (r *Rasterizer) DrawLineBatch(segs []LineSeg) {
	b := getBatch(r)
	for _, s := range segs {
		b.Line(s.P0, s.P1, s.Width, s.C0, s.C1)
	}
	b.Flush()
	putBatch(b)
}

// DrawTriangleBatch draws a flat triangle list (three vertices per
// triangle) through the tile-parallel backend.
func (r *Rasterizer) DrawTriangleBatch(tris []Vertex) {
	b := getBatch(r)
	for i := 0; i+2 < len(tris); i += 3 {
		b.Triangle(tris[i], tris[i+1], tris[i+2])
	}
	b.Flush()
	putBatch(b)
}

// DrawTriangleStripBatch draws the given strips, in order, through the
// tile-parallel backend; equivalent to DrawTriangleStrip per strip.
func (r *Rasterizer) DrawTriangleStripBatch(strips [][]Vertex) {
	b := getBatch(r)
	for _, s := range strips {
		b.TriangleStrip(s)
	}
	b.Flush()
	putBatch(b)
}
