package render

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Framebuffer RLE codec — the wire format of the remote service's
// server-rendered ("thin client") mode. A rendered frame is mostly
// background (zero color, +Inf depth), so word-level run-length
// encoding shrinks the ~w*h*20-byte raw framebuffer to roughly the
// size of its covered pixels while staying bit-exact: both the color
// and depth planes round-trip losslessly, so a server-rendered frame
// is indistinguishable from one rendered locally.
//
// Layout (little-endian):
//
//	magic "ACFB" | u32 version | u32 w | u32 h |
//	RLE(color words, w*h*4) | RLE(depth words, w*h)
//
// Each plane is a stream of ops over uint32 words (float32 bits):
//
//	control c < 0x80:  c+1 literal words follow        (1..128)
//	control c >= 0x80: next word repeats (c&0x7f)+2 times (2..129)
//
// The same op stream over plain uint32 words is the shared core of the
// two derived wire codecs: CompressDelta (delta.go — XOR residuals of
// two byte streams, for frame-to-frame transfers) and
// CompressFramebufferQuantized (quant.go — packed 8-bit RGBA preview
// images).

var magicFB = [4]byte{'A', 'C', 'F', 'B'}

const fbCodecVersion = 1

// CompressFramebuffer losslessly encodes fb's color and depth planes
// with word-level RLE.
func CompressFramebuffer(fb *Framebuffer) []byte {
	out := make([]byte, 0, 16+len(fb.Color))
	out = append(out, magicFB[:]...)
	out = binary.LittleEndian.AppendUint32(out, fbCodecVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(fb.W))
	out = binary.LittleEndian.AppendUint32(out, uint32(fb.H))
	out = appendRLE(out, fb.Color)
	out = appendRLE(out, fb.Depth)
	return out
}

// appendRLE encodes one float32 plane as RLE ops over its bit words.
func appendRLE(out []byte, words []float32) []byte {
	le := binary.LittleEndian
	i := 0
	litStart := -1
	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > 128 {
				n = 128
			}
			out = append(out, byte(n-1))
			for _, w := range words[litStart : litStart+n] {
				out = le.AppendUint32(out, math.Float32bits(w))
			}
			litStart += n
		}
		litStart = -1
	}
	for i < len(words) {
		run := 1
		for i+run < len(words) && math.Float32bits(words[i+run]) == math.Float32bits(words[i]) {
			run++
		}
		if run >= 2 {
			if litStart >= 0 {
				flushLits(i)
			}
			for run > 0 {
				n := run
				if n > 129 {
					n = 129
				}
				if n < 2 { // a leftover single word joins the next literal run
					break
				}
				out = append(out, byte(0x80|(n-2)))
				out = le.AppendUint32(out, math.Float32bits(words[i]))
				i += n
				run -= n
			}
			if run == 1 {
				litStart = i
				i++
			}
			continue
		}
		if litStart < 0 {
			litStart = i
		}
		i++
	}
	if litStart >= 0 {
		flushLits(len(words))
	}
	return out
}

// DecompressFramebuffer decodes a blob produced by
// CompressFramebuffer. Malformed input returns an error; it never
// panics.
func DecompressFramebuffer(data []byte) (*Framebuffer, error) {
	le := binary.LittleEndian
	if len(data) < 16 {
		return nil, fmt.Errorf("render: framebuffer blob truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != magicFB {
		return nil, fmt.Errorf("render: bad framebuffer magic %q", data[:4])
	}
	if v := le.Uint32(data[4:]); v != fbCodecVersion {
		return nil, fmt.Errorf("render: unsupported framebuffer codec version %d", v)
	}
	w, h := int(le.Uint32(data[8:])), int(le.Uint32(data[12:]))
	if w < 1 || h < 1 || w > 1<<16 || h > 1<<16 || int64(w)*int64(h) > 1<<28 {
		return nil, fmt.Errorf("render: implausible framebuffer size %dx%d", w, h)
	}
	fb, err := NewFramebuffer(w, h)
	if err != nil {
		return nil, err
	}
	rest, err := decodeRLE(data[16:], fb.Color)
	if err != nil {
		return nil, fmt.Errorf("render: color plane: %w", err)
	}
	rest, err = decodeRLE(rest, fb.Depth)
	if err != nil {
		return nil, fmt.Errorf("render: depth plane: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("render: %d trailing bytes after framebuffer", len(rest))
	}
	return fb, nil
}

// appendRLEWords is appendRLE over raw uint32 words — the same op
// format, shared by the delta and quantized codecs, whose planes are
// not float32 bit patterns.
func appendRLEWords(out []byte, words []uint32) []byte {
	le := binary.LittleEndian
	i := 0
	litStart := -1
	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > 128 {
				n = 128
			}
			out = append(out, byte(n-1))
			for _, w := range words[litStart : litStart+n] {
				out = le.AppendUint32(out, w)
			}
			litStart += n
		}
		litStart = -1
	}
	for i < len(words) {
		run := 1
		for i+run < len(words) && words[i+run] == words[i] {
			run++
		}
		if run >= 2 {
			if litStart >= 0 {
				flushLits(i)
			}
			for run > 0 {
				n := run
				if n > 129 {
					n = 129
				}
				if n < 2 { // a leftover single word joins the next literal run
					break
				}
				out = append(out, byte(0x80|(n-2)))
				out = le.AppendUint32(out, words[i])
				i += n
				run -= n
			}
			if run == 1 {
				litStart = i
				i++
			}
			continue
		}
		if litStart < 0 {
			litStart = i
		}
		i++
	}
	if litStart >= 0 {
		flushLits(len(words))
	}
	return out
}

// decodeRLEWords fills dst exactly with uint32 words, returning the
// unconsumed remainder. Malformed input errors; it never panics.
func decodeRLEWords(data []byte, dst []uint32) ([]byte, error) {
	le := binary.LittleEndian
	i := 0
	for i < len(dst) {
		if len(data) == 0 {
			return nil, fmt.Errorf("stream ended %d words short", len(dst)-i)
		}
		c := data[0]
		data = data[1:]
		if c < 0x80 {
			n := int(c) + 1
			if n > len(dst)-i {
				return nil, fmt.Errorf("literal run of %d overruns plane", n)
			}
			if len(data) < 4*n {
				return nil, fmt.Errorf("literal run truncated")
			}
			for k := 0; k < n; k++ {
				dst[i+k] = le.Uint32(data[4*k:])
			}
			data = data[4*n:]
			i += n
		} else {
			n := int(c&0x7f) + 2
			if n > len(dst)-i {
				return nil, fmt.Errorf("repeat run of %d overruns plane", n)
			}
			if len(data) < 4 {
				return nil, fmt.Errorf("repeat run truncated")
			}
			v := le.Uint32(data)
			data = data[4:]
			for k := 0; k < n; k++ {
				dst[i+k] = v
			}
			i += n
		}
	}
	return data, nil
}

// decodeRLE fills dst exactly, returning the unconsumed remainder.
func decodeRLE(data []byte, dst []float32) ([]byte, error) {
	le := binary.LittleEndian
	i := 0
	for i < len(dst) {
		if len(data) == 0 {
			return nil, fmt.Errorf("stream ended %d words short", len(dst)-i)
		}
		c := data[0]
		data = data[1:]
		if c < 0x80 {
			n := int(c) + 1
			if n > len(dst)-i {
				return nil, fmt.Errorf("literal run of %d overruns plane", n)
			}
			if len(data) < 4*n {
				return nil, fmt.Errorf("literal run truncated")
			}
			for k := 0; k < n; k++ {
				dst[i+k] = math.Float32frombits(le.Uint32(data[4*k:]))
			}
			data = data[4*n:]
			i += n
		} else {
			n := int(c&0x7f) + 2
			if n > len(dst)-i {
				return nil, fmt.Errorf("repeat run of %d overruns plane", n)
			}
			if len(data) < 4 {
				return nil, fmt.Errorf("repeat run truncated")
			}
			v := math.Float32frombits(le.Uint32(data))
			data = data[4:]
			for k := 0; k < n; k++ {
				dst[i+k] = v
			}
			i += n
		}
	}
	return data, nil
}
