package render

import (
	"repro/internal/hybrid"
	"repro/internal/par"
	"repro/internal/sortx"
)

// OITBuffer implements order-independent transparency: fragments are
// collected per pixel with their depths and composited back-to-front
// at resolve time, regardless of submission order. This is the
// software equivalent of the "order-independent transparency technique
// supported on the nVidia GeForce 3" that §3.3.3 proposes coupling
// with self-orienting surfaces (noting it "would require disabling
// bump mapping" — the caller uses a plain Phong shader).
//
// Usage: attach with Rasterizer.AttachOIT, draw transparent geometry
// in any order, then Resolve to composite into the framebuffer.
type OITBuffer struct {
	W, H  int
	lists [][]oitFragment
	// FragmentCount tallies stored fragments (memory cost metric: this
	// is why the hardware variant was bounded to a few layers).
	FragmentCount int64
	// Workers bounds Resolve's parallelism (0 = auto). Pixels are
	// independent — sorting and compositing touch only that pixel's
	// fragment list and framebuffer slot — so the resolve fans out
	// without changing the image.
	Workers int
}

type oitFragment struct {
	depth float32
	color hybrid.RGBA
}

// NewOITBuffer allocates per-pixel fragment lists for a w x h frame.
func NewOITBuffer(w, h int) *OITBuffer {
	return &OITBuffer{W: w, H: h, lists: make([][]oitFragment, w*h)}
}

// Add stores a fragment for pixel (x, y).
func (o *OITBuffer) Add(x, y int, depth float32, c hybrid.RGBA) {
	if x < 0 || x >= o.W || y < 0 || y >= o.H || c.A <= 0 {
		return
	}
	i := y*o.W + x
	o.lists[i] = append(o.lists[i], oitFragment{depth, c})
	o.FragmentCount++
}

// Resolve sorts each pixel's fragments far-to-near and composites them
// over the framebuffer with straight alpha. Fragments behind the
// framebuffer's opaque depth are discarded (the opaque scene occludes
// them). The buffer is cleared afterwards. The per-pixel sort runs on
// sortx (stable, so equal-depth fragments composite in submission
// order) with per-worker scratch reused across pixels.
func (o *OITBuffer) Resolve(fb *Framebuffer) {
	par.ForChunks(len(o.lists), o.Workers, func(lo, hi int) {
		var kv, scratch []sortx.KV
		for i := lo; i < hi; i++ {
			frags := o.lists[i]
			if len(frags) == 0 {
				continue
			}
			x, y := i%o.W, i/o.W
			zOpaque := fb.Depth[i]
			if cap(kv) < len(frags) {
				kv = make([]sortx.KV, len(frags))
				scratch = make([]sortx.KV, len(frags))
			}
			kv = kv[:len(frags)]
			for j, f := range frags {
				kv[j] = sortx.KV{K: sortx.Float32KeyDesc(f.depth), V: int64(j)}
			}
			sortx.PairsScratch(kv, scratch[:len(frags)], 1)
			for _, e := range kv {
				f := frags[e.V]
				if f.depth > zOpaque {
					continue // behind opaque geometry
				}
				fb.writeFragment(x, y, f.depth, f.color, BlendAlpha, false, false)
			}
			o.lists[i] = nil
		}
	})
}

// MaxDepthComplexity returns the largest per-pixel fragment count
// currently stored — the "layers" statistic that bounded the hardware
// implementation.
func (o *OITBuffer) MaxDepthComplexity() int {
	m := 0
	for i := range o.lists {
		if len(o.lists[i]) > m {
			m = len(o.lists[i])
		}
	}
	return m
}

// AttachOIT redirects the rasterizer's blended fragments into the OIT
// buffer instead of the framebuffer: it returns a restore function.
// While attached, the rasterizer must use BlendAlpha mode; opaque
// passes should be drawn (and depth-written) before attaching so
// Resolve can occlusion-test against them.
func (r *Rasterizer) AttachOIT(o *OITBuffer) (restore func()) {
	prev := r.fragmentSink
	r.fragmentSink = func(x, y int, depth float32, c hybrid.RGBA) bool {
		// Depth-test against opaque geometry now; defer blending.
		if r.DepthTest {
			if x < 0 || x >= r.FB.W || y < 0 || y >= r.FB.H {
				return true
			}
			if depth > r.FB.Depth[y*r.FB.W+x] {
				return true
			}
		}
		o.Add(x, y, depth, c)
		return true
	}
	return func() { r.fragmentSink = prev }
}
