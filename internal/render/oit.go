package render

import (
	"repro/internal/hybrid"
	"repro/internal/par"
	"repro/internal/sortx"
)

// fragmentSink intercepts fragments before the framebuffer; returning
// true consumes the fragment. shard is the tile-run index during a
// batched draw — every pixel belongs to exactly one shard, so per-shard
// state needs no synchronization — or -1 from the immediate-mode path.
// beginShards/endShards bracket each batched flush so implementations
// can allocate and fold contention-free per-tile state.
type fragmentSink interface {
	sinkFragment(shard, x, y int, depth float32, c hybrid.RGBA) bool
	beginShards(n int)
	endShards()
}

// OITBuffer implements order-independent transparency: fragments are
// collected per pixel with their depths and composited back-to-front
// at resolve time, regardless of submission order. This is the
// software equivalent of the "order-independent transparency technique
// supported on the nVidia GeForce 3" that §3.3.3 proposes coupling
// with self-orienting surfaces (noting it "would require disabling
// bump mapping" — the caller uses a plain Phong shader).
//
// Usage: attach with Rasterizer.AttachOIT, draw transparent geometry
// in any order — immediate or batched — then Resolve to composite into
// the framebuffer. During a batched draw, fragments arrive from
// concurrent tile workers; the per-pixel lists are safe because each
// pixel is owned by one tile, and the fragment tally is kept in
// per-tile buckets folded together after the flush.
type OITBuffer struct {
	W, H  int
	lists [][]oitFragment
	// FragmentCount tallies stored fragments (memory cost metric: this
	// is why the hardware variant was bounded to a few layers).
	FragmentCount int64
	// Workers bounds Resolve's parallelism (0 = auto). Pixels are
	// independent — sorting and compositing touch only that pixel's
	// fragment list and framebuffer slot — so the resolve fans out
	// without changing the image.
	Workers int
}

type oitFragment struct {
	depth float32
	color hybrid.RGBA
}

// NewOITBuffer allocates per-pixel fragment lists for a w x h frame.
func NewOITBuffer(w, h int) *OITBuffer {
	return &OITBuffer{W: w, H: h, lists: make([][]oitFragment, w*h)}
}

// insert appends a fragment to its pixel list without touching the
// shared counter. Callers either own the pixel's tile (batched path)
// or account through Add (serial path). Reports whether the fragment
// was stored.
func (o *OITBuffer) insert(x, y int, depth float32, c hybrid.RGBA) bool {
	if x < 0 || x >= o.W || y < 0 || y >= o.H || c.A <= 0 {
		return false
	}
	i := y*o.W + x
	o.lists[i] = append(o.lists[i], oitFragment{depth, c})
	return true
}

// Add stores a fragment for pixel (x, y).
func (o *OITBuffer) Add(x, y int, depth float32, c hybrid.RGBA) {
	if o.insert(x, y, depth, c) {
		o.FragmentCount++
	}
}

// Resolve sorts each pixel's fragments far-to-near and composites them
// over the framebuffer with straight alpha. Fragments behind the
// framebuffer's opaque depth are discarded (the opaque scene occludes
// them). The buffer is cleared afterwards. The per-pixel sort runs on
// sortx (stable, so equal-depth fragments composite in submission
// order) with per-worker scratch reused across pixels.
func (o *OITBuffer) Resolve(fb *Framebuffer) {
	par.ForChunks(len(o.lists), o.Workers, func(lo, hi int) {
		var kv, scratch []sortx.KV
		for i := lo; i < hi; i++ {
			frags := o.lists[i]
			if len(frags) == 0 {
				continue
			}
			x, y := i%o.W, i/o.W
			zOpaque := fb.Depth[i]
			if cap(kv) < len(frags) {
				kv = make([]sortx.KV, len(frags))
				scratch = make([]sortx.KV, len(frags))
			}
			kv = kv[:len(frags)]
			for j, f := range frags {
				kv[j] = sortx.KV{K: sortx.Float32KeyDesc(f.depth), V: int64(j)}
			}
			sortx.PairsScratch(kv, scratch[:len(frags)], 1)
			for _, e := range kv {
				f := frags[e.V]
				if f.depth > zOpaque {
					continue // behind opaque geometry
				}
				fb.writeFragment(x, y, f.depth, f.color, BlendAlpha, false, false)
			}
			o.lists[i] = nil
		}
	})
}

// MaxDepthComplexity returns the largest per-pixel fragment count
// currently stored — the "layers" statistic that bounded the hardware
// implementation.
func (o *OITBuffer) MaxDepthComplexity() int {
	m := 0
	for i := range o.lists {
		if len(o.lists[i]) > m {
			m = len(o.lists[i])
		}
	}
	return m
}

// oitSink routes rasterizer fragments into an OITBuffer, depth-testing
// against the opaque scene at capture time and deferring the blend to
// Resolve. The batched path counts stored fragments in per-tile
// buckets (one per shard) folded into FragmentCount at endShards, so
// concurrent tile workers never contend on the tally.
type oitSink struct {
	r      *Rasterizer
	o      *OITBuffer
	counts []int64
}

func (s *oitSink) sinkFragment(shard, x, y int, depth float32, c hybrid.RGBA) bool {
	// Depth-test against opaque geometry now; defer blending. The
	// emitter has already clipped to the framebuffer rect.
	if s.r.DepthTest && depth > s.r.FB.Depth[y*s.r.FB.W+x] {
		return true
	}
	if shard >= 0 {
		if s.o.insert(x, y, depth, c) {
			s.counts[shard]++
		}
		return true
	}
	s.o.Add(x, y, depth, c)
	return true
}

func (s *oitSink) beginShards(n int) { s.counts = make([]int64, n) }

func (s *oitSink) endShards() {
	var total int64
	for _, c := range s.counts {
		total += c
	}
	s.o.FragmentCount += total
	s.counts = nil
}

// AttachOIT redirects the rasterizer's blended fragments into the OIT
// buffer instead of the framebuffer: it returns a restore function.
// While attached, the rasterizer must use BlendAlpha mode; opaque
// passes should be drawn (and depth-written) before attaching so
// Resolve can occlusion-test against them. Batched draws work while
// attached: capture parallelizes over tiles with per-tile fragment
// buckets.
func (r *Rasterizer) AttachOIT(o *OITBuffer) (restore func()) {
	prev := r.fragmentSink
	r.fragmentSink = &oitSink{r: r, o: o}
	return func() { r.fragmentSink = prev }
}
