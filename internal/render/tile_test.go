package render

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/vec"
)

// lcg is a tiny deterministic generator for scene construction.
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(*r>>11) / float64(1<<53)
}

func (r *lcg) rangeF(lo, hi float64) float64 { return lo + (hi-lo)*r.next() }

// sceneDraw submits a mixed scene — splats of varying radii, thin and
// fat lines, overlapping triangles and strips, including off-screen
// and near-plane-straddling geometry — through the given callbacks so
// the immediate and batched paths replay the identical sequence.
type scenePainter interface {
	point(p vec.V3, radius float64, c hybrid.RGBA)
	line(p0, p1 vec.V3, width float64, c0, c1 hybrid.RGBA)
	triangle(v0, v1, v2 Vertex)
	strip(verts []Vertex)
}

func paintScene(p scenePainter) {
	rng := lcg(2002)
	col := func() hybrid.RGBA {
		return hybrid.RGBA{R: rng.next(), G: rng.next(), B: rng.next(), A: 0.3 + 0.7*rng.next()}
	}
	pos := func(spread float64) vec.V3 {
		// Mostly in view; the spread pushes some geometry off screen
		// and some behind the camera / across the near plane.
		return vec.New(rng.rangeF(-spread, spread), rng.rangeF(-spread, spread), rng.rangeF(-spread, 6))
	}
	for i := 0; i < 400; i++ {
		p.point(pos(4), rng.rangeF(0.3, 5), col())
	}
	for i := 0; i < 120; i++ {
		w := 1.0
		if i%3 == 0 {
			w = rng.rangeF(2, 6)
		}
		p.line(pos(5), pos(5), w, col(), col())
	}
	vert := func(spread float64) Vertex {
		return Vertex{Pos: pos(spread), N: vec.New(rng.next(), rng.next(), rng.next()), UV: [2]float64{rng.rangeF(-1, 1), rng.next()}, Color: col()}
	}
	for i := 0; i < 60; i++ {
		p.triangle(vert(3), vert(3), vert(3))
	}
	for i := 0; i < 20; i++ {
		strip := make([]Vertex, 8)
		for j := range strip {
			strip[j] = vert(2.5)
		}
		p.strip(strip)
	}
}

type immediatePainter struct{ r *Rasterizer }

func (p immediatePainter) point(pt vec.V3, radius float64, c hybrid.RGBA) {
	p.r.DrawPoint(pt, radius, c)
}
func (p immediatePainter) line(p0, p1 vec.V3, w float64, c0, c1 hybrid.RGBA) {
	p.r.DrawLine(p0, p1, w, c0, c1)
}
func (p immediatePainter) triangle(v0, v1, v2 Vertex) { p.r.DrawTriangle(v0, v1, v2) }
func (p immediatePainter) strip(verts []Vertex)       { p.r.DrawTriangleStrip(verts) }

type batchPainter struct{ b *Batch }

func (p batchPainter) point(pt vec.V3, radius float64, c hybrid.RGBA) { p.b.Point(pt, radius, c) }
func (p batchPainter) line(p0, p1 vec.V3, w float64, c0, c1 hybrid.RGBA) {
	p.b.Line(p0, p1, w, c0, c1)
}
func (p batchPainter) triangle(v0, v1, v2 Vertex) { p.b.Triangle(v0, v1, v2) }
func (p batchPainter) strip(verts []Vertex)       { p.b.TriangleStrip(verts) }

func framebuffersEqual(t *testing.T, label string, a, b *Framebuffer) {
	t.Helper()
	for i := range a.Color {
		if a.Color[i] != b.Color[i] {
			t.Fatalf("%s: color[%d] = %v, serial %v", label, i, b.Color[i], a.Color[i])
		}
	}
	for i := range a.Depth {
		if a.Depth[i] != b.Depth[i] {
			t.Fatalf("%s: depth[%d] = %v, serial %v", label, i, b.Depth[i], a.Depth[i])
		}
	}
}

// configureMode applies one of the blend/shade configurations the
// determinism sweep covers.
func configureMode(r *Rasterizer, mode string) {
	switch mode {
	case "opaque":
		// NewRasterizer defaults.
	case "alpha":
		r.Mode = BlendAlpha
		r.DepthWrite = false
	case "additive-shaded":
		r.Mode = BlendAdditive
		r.DepthTest = false
		r.DepthWrite = false
		lights := []Light{{Dir: vec.New(0.3, 0.8, 0.6).Norm(), Color: hybrid.RGBA{R: 1, G: 1, B: 1, A: 1}, Intensity: 1}}
		r.Shade = PhongShader(lights, DefaultPhong())
	}
}

// TestBatchMatchesSerialBitIdentical is the tentpole's determinism
// guarantee: the tile-binned parallel backend must reproduce the
// serial immediate-mode image bit for bit at every worker count, for
// every blend mode, including the primitive stats.
func TestBatchMatchesSerialBitIdentical(t *testing.T) {
	const w, h = 193, 161 // deliberately not tile-aligned
	cam, err := NewCamera(vec.New(0, 0, 5), vec.New(0, 0, 0), vec.New(0, 1, 0), math.Pi/3, float64(w)/float64(h), 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"opaque", "alpha", "additive-shaded"} {
		fbSerial, _ := NewFramebuffer(w, h)
		serial := NewRasterizer(fbSerial, cam)
		configureMode(serial, mode)
		paintScene(immediatePainter{serial})

		for _, workers := range []int{1, 2, 4, 8} {
			fb, _ := NewFramebuffer(w, h)
			rast := NewRasterizer(fb, cam)
			configureMode(rast, mode)
			rast.Workers = workers
			batch := rast.NewBatch()
			paintScene(batchPainter{batch})
			batch.Flush()

			label := fmt.Sprintf("%s/workers=%d", mode, workers)
			framebuffersEqual(t, label, fbSerial, fb)
			if rast.FragmentCount != serial.FragmentCount ||
				rast.PointCount != serial.PointCount ||
				rast.LineCount != serial.LineCount ||
				rast.TriangleCount != serial.TriangleCount {
				t.Errorf("%s: stats (f=%d p=%d l=%d t=%d) != serial (f=%d p=%d l=%d t=%d)",
					label,
					rast.FragmentCount, rast.PointCount, rast.LineCount, rast.TriangleCount,
					serial.FragmentCount, serial.PointCount, serial.LineCount, serial.TriangleCount)
			}
		}
	}
}

// TestBatchEntryPointsMatchImmediate covers the typed batch entry
// points (as opposed to the mixed Batch) against their immediate
// equivalents.
func TestBatchEntryPointsMatchImmediate(t *testing.T) {
	const w, h = 96, 96
	cam, err := NewCamera(vec.New(0, 0, 5), vec.New(0, 0, 0), vec.New(0, 1, 0), math.Pi/3, 1, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := lcg(7)
	splats := make([]PointSplat, 300)
	for i := range splats {
		splats[i] = PointSplat{
			Pos:    vec.New(rng.rangeF(-2, 2), rng.rangeF(-2, 2), rng.rangeF(-2, 2)),
			Radius: rng.rangeF(0.5, 4),
			Color:  hybrid.RGBA{R: rng.next(), G: rng.next(), B: rng.next(), A: 1},
		}
	}
	fbA, _ := NewFramebuffer(w, h)
	ra := NewRasterizer(fbA, cam)
	for _, s := range splats {
		ra.DrawPoint(s.Pos, s.Radius, s.Color)
	}
	fbB, _ := NewFramebuffer(w, h)
	rb := NewRasterizer(fbB, cam)
	rb.Workers = 4
	rb.DrawPointBatch(splats)
	framebuffersEqual(t, "DrawPointBatch", fbA, fbB)

	segs := make([]LineSeg, 80)
	for i := range segs {
		segs[i] = LineSeg{
			P0:    vec.New(rng.rangeF(-2, 2), rng.rangeF(-2, 2), rng.rangeF(-2, 2)),
			P1:    vec.New(rng.rangeF(-2, 2), rng.rangeF(-2, 2), rng.rangeF(-2, 2)),
			Width: 1 + 3*rng.next(),
			C0:    hybrid.RGBA{R: 1, A: 1}, C1: hybrid.RGBA{B: 1, A: 1},
		}
	}
	fbC, _ := NewFramebuffer(w, h)
	rc := NewRasterizer(fbC, cam)
	for _, s := range segs {
		rc.DrawLine(s.P0, s.P1, s.Width, s.C0, s.C1)
	}
	fbD, _ := NewFramebuffer(w, h)
	rd := NewRasterizer(fbD, cam)
	rd.Workers = 3
	rd.DrawLineBatch(segs)
	framebuffersEqual(t, "DrawLineBatch", fbC, fbD)
	if rc.FragmentCount != rd.FragmentCount || rc.LineCount != rd.LineCount {
		t.Errorf("line stats: serial f=%d l=%d, batch f=%d l=%d",
			rc.FragmentCount, rc.LineCount, rd.FragmentCount, rd.LineCount)
	}
}

// TestOITBatchMatchesSerialResolve: capturing transparent geometry
// through the OIT buffer from the batched tile path must fill the
// buffer identically to the serial capture — same resolved image,
// same fragment tally, same depth complexity.
func TestOITBatchMatchesSerialResolve(t *testing.T) {
	const w, h = 128, 96
	cam, err := NewCamera(vec.New(0, 0, 5), vec.New(0, 0, 0), vec.New(0, 1, 0), math.Pi/3, float64(w)/float64(h), 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	drawOpaque := func(r *Rasterizer) {
		// An opaque backdrop so capture-time depth testing is exercised.
		v := func(x, y, z float64) Vertex {
			return Vertex{Pos: vec.New(x, y, z), Color: hybrid.RGBA{R: 0.2, G: 0.2, B: 0.2, A: 1}}
		}
		r.DrawTriangle(v(-3, -3, -1), v(3, -3, -1), v(0, 1.5, -1))
	}

	run := func(workers int, batched bool) (*Framebuffer, *OITBuffer) {
		fb, _ := NewFramebuffer(w, h)
		rast := NewRasterizer(fb, cam)
		rast.Workers = workers
		drawOpaque(rast)
		oit := NewOITBuffer(w, h)
		restore := rast.AttachOIT(oit)
		rast.Mode = BlendAlpha
		if batched {
			batch := rast.NewBatch()
			paintScene(batchPainter{batch})
			batch.Flush()
		} else {
			paintScene(immediatePainter{rast})
		}
		restore()
		oit.Workers = 1 // the existing single-threaded-equivalent resolve
		complexityBefore := oit.MaxDepthComplexity()
		if complexityBefore == 0 {
			t.Fatal("scene captured no transparent fragments")
		}
		oit.Resolve(fb)
		return fb, oit
	}

	fbSerial, oitSerial := run(1, false)
	for _, workers := range []int{1, 2, 4, 8} {
		fb, oit := run(workers, true)
		framebuffersEqual(t, fmt.Sprintf("oit/workers=%d", workers), fbSerial, fb)
		if oit.FragmentCount != oitSerial.FragmentCount {
			t.Errorf("workers=%d: OIT fragment count %d, serial %d", workers, oit.FragmentCount, oitSerial.FragmentCount)
		}
	}
}

// TestFragmentCountCullsOffscreen is the stats/cost-model fix: splat
// and line fragments falling outside the framebuffer must not count,
// and a splat whose disc misses the screen entirely does no fragment
// work at all (while still counting as a submitted point).
func TestFragmentCountCullsOffscreen(t *testing.T) {
	cam, err := NewCamera(vec.New(0, 0, 5), vec.New(0, 0, 0), vec.New(0, 1, 0), math.Pi/3, 1, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := NewFramebuffer(32, 32)
	r := NewRasterizer(fb, cam)

	// A splat whose disc is entirely off screen: counted, no fragments.
	r.DrawPoint(vec.New(50, 0, 0), 4, hybrid.RGBA{R: 1, A: 1})
	if r.PointCount != 1 || r.FragmentCount != 0 {
		t.Errorf("off-screen splat: points=%d fragments=%d, want 1/0", r.PointCount, r.FragmentCount)
	}

	// A splat centered on the screen edge: only the on-screen half
	// counts. The fragment count must equal the written-pixel count of
	// an additive pass (every emitted fragment lands on screen).
	r.ResetStats()
	r.Mode = BlendAdditive
	r.DepthTest, r.DepthWrite = false, false
	edge := vec.New(0, 0, 0)
	sx, _, _, _ := cam.WorldToScreen(edge, fb.W, fb.H)
	_ = sx
	r.DrawPoint(vec.New(3.05, 0, 0), 6, hybrid.RGBA{R: 1, A: 1}) // straddles the right edge
	if r.FragmentCount == 0 {
		t.Fatal("edge splat emitted nothing; expected a partial disc")
	}
	written := 0
	for y := 0; y < fb.H; y++ {
		for x := 0; x < fb.W; x++ {
			if fb.At(x, y).R > 0 {
				written++
			}
		}
	}
	if int64(written) != r.FragmentCount {
		t.Errorf("edge splat: %d fragments counted, %d pixels written", r.FragmentCount, written)
	}

	// A line running off screen counts only its visible fragments.
	r.ResetStats()
	fb.Clear(hybrid.RGBA{})
	r.DrawLine(vec.New(0, 0, 0), vec.New(100, 0, 0), 1, hybrid.RGBA{G: 1, A: 1}, hybrid.RGBA{G: 1, A: 1})
	if r.LineCount != 1 {
		t.Fatalf("line not drawn")
	}
	if r.FragmentCount == 0 || r.FragmentCount > int64(fb.W) {
		t.Errorf("clipped line counted %d fragments, want 1..%d", r.FragmentCount, fb.W)
	}
}

// TestGaussKernelTable sanity-checks the tabulated splat profile
// against the analytic falloff it replaces.
func TestGaussKernelTable(t *testing.T) {
	if gaussKernel[0] != 1 {
		t.Errorf("kernel center %v, want 1", gaussKernel[0])
	}
	for i := 1; i < len(gaussKernel); i++ {
		if gaussKernel[i] >= gaussKernel[i-1] {
			t.Fatalf("kernel not monotonically decreasing at %d", i)
		}
	}
	for _, u := range []float64{0, 0.25, 0.5, 1} {
		got := gaussKernel[int(u*kernelSteps)]
		want := math.Exp(-2 * u)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("kernel(%g) = %v, want %v", u, got, want)
		}
	}
}
