package render

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/hybrid"
)

// roundTrip compresses and decompresses fb, asserting bit-exactness of
// both planes.
func roundTrip(t *testing.T, fb *Framebuffer) []byte {
	t.Helper()
	blob := CompressFramebuffer(fb)
	got, err := DecompressFramebuffer(blob)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if got.W != fb.W || got.H != fb.H {
		t.Fatalf("size %dx%d, want %dx%d", got.W, got.H, fb.W, fb.H)
	}
	for i := range fb.Color {
		if math.Float32bits(got.Color[i]) != math.Float32bits(fb.Color[i]) {
			t.Fatalf("color word %d: %x != %x", i, math.Float32bits(got.Color[i]), math.Float32bits(fb.Color[i]))
		}
	}
	for i := range fb.Depth {
		if math.Float32bits(got.Depth[i]) != math.Float32bits(fb.Depth[i]) {
			t.Fatalf("depth word %d differs", i)
		}
	}
	return blob
}

func TestRLEEmptyFramebuffer(t *testing.T) {
	fb, err := NewFramebuffer(64, 48)
	if err != nil {
		t.Fatal(err)
	}
	blob := roundTrip(t, fb)
	raw := len(fb.Color)*4 + len(fb.Depth)*4
	if len(blob) >= raw/10 {
		t.Errorf("empty frame compressed to %d bytes, want far below raw %d", len(blob), raw)
	}
}

func TestRLESparseFrame(t *testing.T) {
	fb, err := NewFramebuffer(96, 96)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse coverage like a rendered splat frame: a few hundred lit
	// pixels on a transparent background.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		x, y := rng.Intn(fb.W), rng.Intn(fb.H)
		fb.writeFragment(x, y, rng.Float32(), hybrid.RGBA{
			R: rng.Float64(), G: rng.Float64(), B: rng.Float64(), A: 0.7,
		}, BlendAlpha, true, true)
	}
	blob := roundTrip(t, fb)
	raw := len(fb.Color)*4 + len(fb.Depth)*4
	if len(blob) >= raw {
		t.Errorf("sparse frame compressed to %d bytes, raw %d", len(blob), raw)
	}
}

func TestRLEWorstCaseNoise(t *testing.T) {
	fb, err := NewFramebuffer(37, 23) // odd sizes hit chunk boundaries
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := range fb.Color {
		fb.Color[i] = rng.Float32()
	}
	for i := range fb.Depth {
		fb.Depth[i] = rng.Float32()
	}
	roundTrip(t, fb)
}

func TestRLERunsAcrossChunkBoundaries(t *testing.T) {
	fb, err := NewFramebuffer(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	// A >129-word run, a 1-word orphan, alternating words, another run.
	for i := range fb.Color {
		switch {
		case i < 300:
			fb.Color[i] = 3.25
		case i == 300:
			fb.Color[i] = -1
		case i < 600:
			fb.Color[i] = float32(i % 2)
		default:
			fb.Color[i] = 7
		}
	}
	roundTrip(t, fb)
}

func TestRLEDecodeMalformed(t *testing.T) {
	fb, err := NewFramebuffer(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	good := CompressFramebuffer(fb)
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:10],
		"bad magic":        append([]byte("XXXX"), good[4:]...),
		"bad version":      append(append([]byte{}, good[:4]...), append([]byte{99, 0, 0, 0}, good[8:]...)...),
		"zero width":       append(append([]byte{}, good[:8]...), append([]byte{0, 0, 0, 0}, good[12:]...)...),
		"huge dims":        append(append([]byte{}, good[:8]...), append([]byte{255, 255, 255, 255, 255, 255, 255, 255}, good[16:]...)...),
		"truncated body":   good[:len(good)-3],
		"trailing garbage": append(append([]byte{}, good...), 1, 2, 3),
	}
	for name, data := range cases {
		if _, err := DecompressFramebuffer(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if !bytes.Equal(good, CompressFramebuffer(fb)) {
		t.Error("compression not deterministic")
	}
}

func FuzzDecompressFramebuffer(f *testing.F) {
	fb, _ := NewFramebuffer(8, 8)
	f.Add(CompressFramebuffer(fb))
	f.Add([]byte("ACFB\x01\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fb, err := DecompressFramebuffer(data) // must never panic
		if err == nil && fb == nil {
			t.Fatal("nil framebuffer without error")
		}
	})
}
