package render

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Delta codec — the word-RLE machinery generalized to residual planes.
// CompressDelta ships a byte stream cur as its XOR against a base
// stream the receiver already holds: between nearby frames of a time
// series most of the encoding is unchanged, so the residual is
// dominated by zero words and the RLE collapses it to roughly the size
// of what actually moved. The round trip is lossless — DecompressDelta
// reconstructs cur bit for bit, and a trailing CRC of cur catches a
// receiver applying the delta to the wrong base.
//
// Layout (little-endian):
//
//	magic "ACDL" | u32 version | u32 len(cur) | u32 len(base) |
//	u32 crc32(cur) | RLE(residual words)
//
// The residual is cur XOR base byte-wise (the shorter stream padded
// with zeros), packed into little-endian uint32 words, the tail word
// zero-padded; the op stream is the one documented in rle.go.

var magicDelta = [4]byte{'A', 'C', 'D', 'L'}

const (
	deltaCodecVersion = 1
	deltaHeaderLen    = 4 + 4 + 4 + 4 + 4

	// maxDeltaLen bounds the reconstructed stream so a hostile header
	// cannot force an arbitrary allocation (mirrors the remote
	// protocol's 1 GiB message bound).
	maxDeltaLen = 1 << 30
)

// CompressDelta encodes cur as an RLE-compressed XOR residual against
// base. base may be any byte stream the receiver also holds (including
// empty, which degrades to RLE over cur itself).
func CompressDelta(cur, base []byte) []byte {
	nw := (len(cur) + 3) / 4
	words := make([]uint32, nw)
	// XOR over the overlap, raw cur beyond it; assemble per word so the
	// zero-padded tail never reads out of bounds.
	for i := 0; i < nw; i++ {
		var w uint32
		for k := 0; k < 4; k++ {
			off := 4*i + k
			if off >= len(cur) {
				break
			}
			b := cur[off]
			if off < len(base) {
				b ^= base[off]
			}
			w |= uint32(b) << (8 * k)
		}
		words[i] = w
	}
	out := make([]byte, 0, deltaHeaderLen+len(cur)/8+64)
	out = append(out, magicDelta[:]...)
	le := binary.LittleEndian
	out = le.AppendUint32(out, deltaCodecVersion)
	out = le.AppendUint32(out, uint32(len(cur)))
	out = le.AppendUint32(out, uint32(len(base)))
	out = le.AppendUint32(out, crc32.ChecksumIEEE(cur))
	return appendRLEWords(out, words)
}

// DecompressDelta reconstructs the stream CompressDelta encoded,
// applying the residual in data to base. It fails cleanly — never
// panicking, never over-allocating — on malformed input, and fails
// with a checksum mismatch when base is not the stream the delta was
// encoded against.
func DecompressDelta(data, base []byte) ([]byte, error) {
	le := binary.LittleEndian
	if len(data) < deltaHeaderLen {
		return nil, fmt.Errorf("render: delta blob truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != magicDelta {
		return nil, fmt.Errorf("render: bad delta magic %q", data[:4])
	}
	if v := le.Uint32(data[4:]); v != deltaCodecVersion {
		return nil, fmt.Errorf("render: unsupported delta codec version %d", v)
	}
	curLen := int64(le.Uint32(data[8:]))
	baseLen := int64(le.Uint32(data[12:]))
	wantCRC := le.Uint32(data[16:])
	if curLen > maxDeltaLen {
		return nil, fmt.Errorf("render: implausible delta target size %d", curLen)
	}
	if baseLen != int64(len(base)) {
		return nil, fmt.Errorf("render: delta base is %d bytes, encoder used %d", len(base), baseLen)
	}
	nw := int((curLen + 3) / 4)
	words := make([]uint32, nw)
	rest, err := decodeRLEWords(data[deltaHeaderLen:], words)
	if err != nil {
		return nil, fmt.Errorf("render: delta residual: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("render: %d trailing bytes after delta residual", len(rest))
	}
	cur := make([]byte, curLen)
	for i, w := range words {
		for k := 0; k < 4; k++ {
			off := 4*i + k
			if off >= len(cur) {
				break
			}
			b := byte(w >> (8 * k))
			if off < len(base) {
				b ^= base[off]
			}
			cur[off] = b
		}
	}
	if got := crc32.ChecksumIEEE(cur); got != wantCRC {
		return nil, fmt.Errorf("render: delta reconstruction checksum mismatch (computed %08x, want %08x) — wrong base?", got, wantCRC)
	}
	return cur, nil
}
