package render

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/hybrid"
)

// quantFrame builds a sparsely covered framebuffer like a rendered
// splat frame.
func quantFrame(t testing.TB, w, h, lit int) *Framebuffer {
	t.Helper()
	fb, err := NewFramebuffer(w, h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < lit; i++ {
		fb.writeFragment(rng.Intn(w), rng.Intn(h), rng.Float32(), hybrid.RGBA{
			R: rng.Float64(), G: rng.Float64(), B: rng.Float64(), A: 0.8,
		}, BlendAlpha, true, true)
	}
	return fb
}

// TestQuantizedRoundTrip pins the preview tier's contract: lossy
// against the source framebuffer, but bit-identical to its own decode
// — decode → re-encode → decode is a fixed point.
func TestQuantizedRoundTrip(t *testing.T) {
	fb := quantFrame(t, 96, 96, 400)
	blob := CompressFramebufferQuantized(fb)
	dec, err := DecompressFramebufferQuantized(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != fb.W || dec.H != fb.H {
		t.Fatalf("size %dx%d, want %dx%d", dec.W, dec.H, fb.W, fb.H)
	}
	// Quantization error bounded by half a step per channel.
	for i := range fb.Color {
		want := fb.Color[i]
		if want < 0 {
			want = 0
		}
		if want > 1 {
			want = 1
		}
		if d := math.Abs(float64(dec.Color[i] - want)); d > 1.0/255/2+1e-6 {
			t.Fatalf("color word %d off by %g (> half a quantization step)", i, d)
		}
	}
	// Depth is dropped: the decode carries a cleared depth plane.
	for i := range dec.Depth {
		if !math.IsInf(float64(dec.Depth[i]), 1) {
			t.Fatalf("depth word %d = %g, want +Inf (depth is not shipped)", i, dec.Depth[i])
		}
	}
	// Idempotence: the decoded frame re-encodes to the same blob and
	// decodes bit-identically.
	blob2 := CompressFramebufferQuantized(dec)
	if !bytes.Equal(blob, blob2) {
		t.Error("re-encode of decoded frame differs (quantization not idempotent)")
	}
	dec2, err := DecompressFramebufferQuantized(blob2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec.Color {
		if math.Float32bits(dec2.Color[i]) != math.Float32bits(dec.Color[i]) {
			t.Fatalf("second decode differs at color word %d", i)
		}
	}
}

// TestQuantizedEconomics: the preview tier lands well below the
// lossless codec on the same frame (~4-5x raw, and still smaller
// after both sides' RLE).
func TestQuantizedEconomics(t *testing.T) {
	fb := quantFrame(t, 128, 128, 3000)
	lossless := len(CompressFramebuffer(fb))
	preview := len(CompressFramebufferQuantized(fb))
	if preview*2 >= lossless {
		t.Errorf("preview blob %d bytes vs lossless %d; want at least 2x smaller", preview, lossless)
	}
}

// TestDecodeFramebufferSniffsMagic: the shared decoder dispatches on
// the wire magic, so a client needs no out-of-band codec flag.
func TestDecodeFramebufferSniffsMagic(t *testing.T) {
	fb := quantFrame(t, 32, 32, 50)
	if dec, err := DecodeFramebuffer(CompressFramebuffer(fb)); err != nil {
		t.Errorf("lossless blob: %v", err)
	} else if math.Float32bits(dec.Color[0]) != math.Float32bits(fb.Color[0]) {
		t.Error("lossless blob decoded lossily")
	}
	if _, err := DecodeFramebuffer(CompressFramebufferQuantized(fb)); err != nil {
		t.Errorf("quantized blob: %v", err)
	}
	if _, err := DecodeFramebuffer([]byte("bogus")); err == nil {
		t.Error("garbage decoded without error")
	}
}

func TestQuantizedDecodeMalformed(t *testing.T) {
	good := CompressFramebufferQuantized(quantFrame(t, 16, 16, 30))
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:10],
		"bad magic":        append([]byte("XXXX"), good[4:]...),
		"bad version":      append(append([]byte{}, good[:4]...), append([]byte{99, 0, 0, 0}, good[8:]...)...),
		"zero width":       append(append([]byte{}, good[:8]...), append([]byte{0, 0, 0, 0}, good[12:]...)...),
		"huge dims":        append(append([]byte{}, good[:8]...), append([]byte{255, 255, 255, 255, 255, 255, 255, 255}, good[16:]...)...),
		"truncated body":   good[:len(good)-3],
		"trailing garbage": append(append([]byte{}, good...), 1, 2, 3),
	}
	for name, data := range cases {
		if _, err := DecompressFramebufferQuantized(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzQuantizedCodec: the preview decoder must never panic or
// over-allocate on hostile input, and valid decodes must re-encode
// stably.
func FuzzQuantizedCodec(f *testing.F) {
	fb, _ := NewFramebuffer(8, 8)
	f.Add(CompressFramebufferQuantized(fb))
	f.Add([]byte("ACFQ\x01\x00\x00\x00"))
	f.Add(make([]byte, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecompressFramebufferQuantized(data)
		if err != nil {
			return
		}
		if dec == nil {
			t.Fatal("nil framebuffer without error")
		}
		again, err := DecompressFramebufferQuantized(CompressFramebufferQuantized(dec))
		if err != nil {
			t.Fatalf("re-encode of valid decode failed: %v", err)
		}
		for i := range dec.Color {
			if math.Float32bits(again.Color[i]) != math.Float32bits(dec.Color[i]) {
				t.Fatal("quantized round trip not a fixed point")
			}
		}
	})
}
