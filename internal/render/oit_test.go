package render

import (
	"math"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/vec"
)

func TestOITResolveOrderIndependence(t *testing.T) {
	// Two overlapping transparent fragments composited in both
	// submission orders must give the same result.
	red := hybrid.RGBA{R: 1, A: 0.5}
	blue := hybrid.RGBA{B: 1, A: 0.5}

	run := func(first, second hybrid.RGBA, d1, d2 float32) hybrid.RGBA {
		fb, _ := NewFramebuffer(4, 4)
		o := NewOITBuffer(4, 4)
		o.Add(1, 1, d1, first)
		o.Add(1, 1, d2, second)
		o.Resolve(fb)
		return fb.At(1, 1)
	}
	// red near (0.2), blue far (0.8): blue drawn first then red over it.
	a := run(red, blue, 0.2, 0.8)
	b := run(blue, red, 0.8, 0.2)
	if math.Abs(a.R-b.R) > 1e-6 || math.Abs(a.B-b.B) > 1e-6 {
		t.Errorf("order dependence: %+v vs %+v", a, b)
	}
	// Near red over far blue: red contribution dominates.
	if a.R <= a.B {
		t.Errorf("near red not dominant: %+v", a)
	}
}

func TestOITRespectsOpaqueDepth(t *testing.T) {
	fb, _ := NewFramebuffer(4, 4)
	// Opaque red at depth 0.5.
	fb.writeFragment(2, 2, 0.5, hybrid.RGBA{R: 1, A: 1}, BlendOpaque, true, true)
	o := NewOITBuffer(4, 4)
	// Transparent fragment BEHIND the opaque surface: discarded.
	o.Add(2, 2, 0.9, hybrid.RGBA{R: 0, G: 0, B: 1, A: 0.9})
	o.Resolve(fb)
	c := fb.At(2, 2)
	if c.B > 0.01 {
		t.Errorf("fragment behind opaque geometry leaked through: %+v", c)
	}
	// In front: composites.
	o.Add(2, 2, 0.1, hybrid.RGBA{R: 0, G: 0, B: 1, A: 0.5})
	o.Resolve(fb)
	c = fb.At(2, 2)
	if c.B < 0.4 {
		t.Errorf("fragment in front of opaque geometry missing: %+v", c)
	}
}

func TestOITBufferClearsAfterResolve(t *testing.T) {
	fb, _ := NewFramebuffer(2, 2)
	o := NewOITBuffer(2, 2)
	o.Add(0, 0, 0.5, hybrid.RGBA{R: 1, A: 1})
	o.Resolve(fb)
	if o.MaxDepthComplexity() != 0 {
		t.Error("buffer not cleared after resolve")
	}
}

func TestOITDepthComplexity(t *testing.T) {
	o := NewOITBuffer(2, 2)
	for i := 0; i < 5; i++ {
		o.Add(1, 0, float32(i), hybrid.RGBA{R: 1, A: 0.2})
	}
	o.Add(0, 0, 0, hybrid.RGBA{R: 1, A: 0.2})
	if got := o.MaxDepthComplexity(); got != 5 {
		t.Errorf("depth complexity %d, want 5", got)
	}
	if o.FragmentCount != 6 {
		t.Errorf("fragment count %d, want 6", o.FragmentCount)
	}
}

func TestAttachOITInterceptsRasterizer(t *testing.T) {
	fb, _ := NewFramebuffer(64, 64)
	cam, err := NewCamera(vec.New(0, 0, 5), vec.New(0, 0, 0), vec.New(0, 1, 0),
		math.Pi/3, 1, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRasterizer(fb, cam)
	r.Mode = BlendAlpha
	o := NewOITBuffer(64, 64)
	restore := r.AttachOIT(o)

	v := func(x, y float64, c hybrid.RGBA) Vertex {
		return Vertex{Pos: vec.New(x, y, 0), Color: c}
	}
	c := hybrid.RGBA{R: 1, A: 0.5}
	r.DrawTriangle(v(-1, -1, c), v(1, -1, c), v(0, 1, c))
	// Nothing lands in the framebuffer until Resolve.
	if fb.At(32, 32).R != 0 {
		t.Error("fragments reached framebuffer while OIT attached")
	}
	if o.FragmentCount == 0 {
		t.Fatal("OIT captured no fragments")
	}
	o.Resolve(fb)
	if fb.At(32, 32).R == 0 {
		t.Error("resolve produced nothing")
	}
	restore()
	// After restore, drawing writes directly again.
	r.DrawTriangle(v(-1, -1, c), v(1, -1, c), v(0, 1, c))
	if o.MaxDepthComplexity() != 0 {
		t.Error("fragments still captured after restore")
	}
}

// Property: resolving N identical fragments converges to the fragment
// color as N grows (repeated OVER with the same color).
func TestOITRepeatedCompositeConverges(t *testing.T) {
	fb, _ := NewFramebuffer(2, 2)
	o := NewOITBuffer(2, 2)
	c := hybrid.RGBA{R: 0.8, G: 0.2, B: 0.1, A: 0.5}
	for i := 0; i < 24; i++ {
		o.Add(0, 0, float32(i)*0.01, c)
	}
	o.Resolve(fb)
	got := fb.At(0, 0)
	if math.Abs(got.R-0.8) > 1e-3 || math.Abs(got.G-0.2) > 1e-3 {
		t.Errorf("repeated composite = %+v, want ~(0.8, 0.2, 0.1)", got)
	}
}
