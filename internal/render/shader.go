package render

import (
	"math"

	"repro/internal/hybrid"
	"repro/internal/vec"
)

// Light is a directional light. Dir points from the surface toward the
// light.
type Light struct {
	Dir       vec.V3
	Color     hybrid.RGBA
	Intensity float64
}

// Headlight returns a light shining along the camera view direction —
// the default illumination of the paper's interactive viewers, whose
// haloing analysis (§3.3.2) assumes "a tube with a headlight".
func Headlight(cam Camera, target vec.V3) Light {
	return Light{
		Dir:       cam.Eye.Sub(target).Norm(),
		Color:     hybrid.RGBA{R: 1, G: 1, B: 1, A: 1},
		Intensity: 1,
	}
}

// PhongParams configures the Phong shading model.
type PhongParams struct {
	Ambient   float64
	Diffuse   float64
	Specular  float64
	Shininess float64
}

// DefaultPhong returns the material used by the streamtube and
// self-orienting-surface renderings.
func DefaultPhong() PhongParams {
	return PhongParams{Ambient: 0.08, Diffuse: 0.75, Specular: 0.5, Shininess: 32}
}

// PhongShader returns a fragment shader applying Phong illumination
// with the given lights to the interpolated vertex color. Enhanced
// lighting (§3.3.1) is simply this shader with more than one light; it
// carries no extra per-fragment cost beyond the additional light loop,
// matching the paper's "no significant performance penalty" note.
func PhongShader(lights []Light, mat PhongParams) Shader {
	return func(f Fragment) hybrid.RGBA {
		n := f.N.Norm()
		if n.Len2() == 0 {
			return f.Color
		}
		// Two-sided shading: flip the normal toward the viewer.
		if n.Dot(f.ViewDir) < 0 {
			n = n.Neg()
		}
		var r, g, b float64
		r = mat.Ambient * f.Color.R
		g = mat.Ambient * f.Color.G
		b = mat.Ambient * f.Color.B
		for _, l := range lights {
			ld := l.Dir.Norm()
			diff := n.Dot(ld)
			if diff < 0 {
				diff = 0
			}
			half := ld.Add(f.ViewDir).Norm()
			spec := 0.0
			if diff > 0 {
				spec = math.Pow(math.Max(n.Dot(half), 0), mat.Shininess)
			}
			w := l.Intensity
			r += w * (mat.Diffuse*diff*f.Color.R*l.Color.R + mat.Specular*spec*l.Color.R)
			g += w * (mat.Diffuse*diff*f.Color.G*l.Color.G + mat.Specular*spec*l.Color.G)
			b += w * (mat.Diffuse*diff*f.Color.B*l.Color.B + mat.Specular*spec*l.Color.B)
		}
		return hybrid.RGBA{R: r, G: g, B: b, A: f.Color.A}
	}
}

// TubeShader returns the self-orienting-surface fragment program: the
// strip's across coordinate u = UV[0] in [-1, 1] is interpreted as the
// parametric position on a tube cross-section, and the fragment normal
// is reconstructed as if the flat strip were a half-cylinder bulging
// toward the viewer:
//
//	n(u) = u * S + sqrt(1-u^2) * V
//
// with S the strip's side vector (passed in the vertex normal slot)
// and V the view direction. This is the software statement of the
// paper's hardware bump mapping: "self-orienting surfaces use texture
// to effectively capture the same surface normal vectors that a
// polygonal tube would have, so ... the lighting appears exact."
// Fragments beyond |u| > haloStart are painted black (the halo rim of
// §3.3.2); fragments beyond |u| > 1 would be outside the tube and are
// discarded (alpha 0).
func TubeShader(lights []Light, mat PhongParams, haloStart float64) Shader {
	phong := PhongShader(lights, mat)
	return func(f Fragment) hybrid.RGBA {
		u := f.UV[0]
		au := math.Abs(u)
		if au > 1 {
			return hybrid.RGBA{} // outside the tube profile: discard
		}
		if haloStart > 0 && au > haloStart {
			// Black halo rim, opaque: occludes lines passing behind.
			return hybrid.RGBA{R: 0, G: 0, B: 0, A: f.Color.A}
		}
		side := f.N.Norm()
		n := side.Scale(u).Add(f.ViewDir.Scale(math.Sqrt(1 - u*u)))
		f2 := f
		f2.N = n
		return phong(f2)
	}
}

// RibbonDensityShader implements the Fig 6(e) compact textured ribbon:
// a procedural stripe texture whose line density encodes the local
// field strength carried in UV[1] (0..1). stripes controls the maximum
// line count across the ribbon.
func RibbonDensityShader(lights []Light, mat PhongParams, stripes float64) Shader {
	phong := PhongShader(lights, mat)
	return func(f Fragment) hybrid.RGBA {
		u := f.UV[0] // across the ribbon, -1..1
		if math.Abs(u) > 1 {
			return hybrid.RGBA{}
		}
		strength := f.UV[1]
		// Number of visible stripes grows with field strength.
		n := 1 + math.Floor(strength*(stripes-1))
		phase := math.Abs(math.Sin((u + 1) / 2 * math.Pi * n))
		if phase < 0.55 {
			return hybrid.RGBA{} // between stripes: transparent
		}
		return phong(f)
	}
}

// IlluminatedLineColor computes the Stalling–Zöckler–Hege illuminated
// streamline shading (§3.3.1, ref [13]) for a line segment with unit
// tangent t: because a line has no unique normal, the maximum
// reflection over the normal plane is used:
//
//	diffuse  = sqrt(1 - (L.T)^2)
//	specular = max(0, sqrt(1-(L.T)^2) * sqrt(1-(V.T)^2) - (L.T)(V.T))^p
//
// It returns the shaded color for a base color c. This is the
// technique of Fig 6(b), implemented per-vertex exactly as the texture
// matrix trick in the original paper would evaluate it.
func IlluminatedLineColor(c hybrid.RGBA, tangent, lightDir, viewDir vec.V3, mat PhongParams) hybrid.RGBA {
	t := tangent.Norm()
	l := lightDir.Norm()
	v := viewDir.Norm()
	lt := l.Dot(t)
	vt := v.Dot(t)
	diff := math.Sqrt(math.Max(0, 1-lt*lt))
	spec := diff*math.Sqrt(math.Max(0, 1-vt*vt)) - lt*vt
	if spec < 0 {
		spec = 0
	}
	spec = math.Pow(spec, mat.Shininess)
	return hybrid.RGBA{
		R: mat.Ambient*c.R + mat.Diffuse*diff*c.R + mat.Specular*spec,
		G: mat.Ambient*c.G + mat.Diffuse*diff*c.G + mat.Specular*spec,
		B: mat.Ambient*c.B + mat.Diffuse*diff*c.B + mat.Specular*spec,
		A: c.A,
	}
}
