package render

import (
	"math"

	"repro/internal/hybrid"
	"repro/internal/vec"
)

// Vertex carries the per-vertex attributes the pipeline interpolates:
// world position, shading normal, texture coordinates and color.
type Vertex struct {
	Pos   vec.V3
	N     vec.V3
	UV    [2]float64
	Color hybrid.RGBA
}

// Fragment is the interpolated state handed to a fragment shader.
type Fragment struct {
	Pos     vec.V3 // world position
	N       vec.V3 // interpolated (unnormalized) shading normal
	UV      [2]float64
	Color   hybrid.RGBA
	ViewDir vec.V3 // unit vector toward the camera
}

// Shader computes a fragment's final color; nil means "use the
// interpolated vertex color unchanged". It is the software analog of
// the fragment stage the paper programs through texturing and register
// combiners. Shaders must be pure functions of their fragment: the
// batched path invokes them from concurrent tile workers.
type Shader func(f Fragment) hybrid.RGBA

// Rasterizer draws primitives into a framebuffer through a camera.
// Configure the public fields, then call the Draw methods. The zero
// value is not usable; construct with NewRasterizer.
//
// Two submission paths share the same per-primitive setup and
// per-fragment kernels, so they produce bit-identical images: the
// immediate Draw* methods rasterize each primitive on the calling
// goroutine, while the batched entry points (DrawPointBatch,
// DrawLineBatch, DrawTriangleBatch, DrawTriangleStripBatch, or an
// explicit Batch) bin projected primitives into fixed screen tiles and
// rasterize the tiles concurrently — each tile owned by exactly one
// worker, primitives replayed in submission order, with no locks or
// atomics on the pixel data.
type Rasterizer struct {
	FB  *Framebuffer
	Cam Camera

	Mode       BlendMode
	DepthTest  bool
	DepthWrite bool
	Shade      Shader

	// ClipDepth, when true, restricts the pass to fragments whose
	// projected depth lies inside [ClipNear, ClipFar] (inclusive, the
	// normalized-device depth stored in the depth buffer). Fragments
	// outside the slab are dropped before counting, exactly like
	// off-screen culling. This bounds a pass to a depth interval — the
	// sort-last sub-volume render, where each worker draws one octree
	// cell's contents clipped against the cell's depth range (see
	// Camera.DepthRange for a conservative interval).
	ClipDepth         bool
	ClipNear, ClipFar float32

	// Workers bounds the tile parallelism of the batched draw path
	// (0 = par.Workers()). The image is identical at every count.
	Workers int

	// Stats: fragments written and triangles submitted, the cost model
	// the technique-comparison experiments report. Fragments are
	// counted after screen culling, so off-screen splat and line
	// overhang never inflates the technique comparison.
	FragmentCount int64
	TriangleCount int64
	PointCount    int64
	LineCount     int64

	// fragmentSink, when set, intercepts fragments before the
	// framebuffer (used by the order-independent transparency buffer).
	fragmentSink fragmentSink
}

// emitCtx is a per-worker fragment destination: an inclusive clip
// rectangle plus local counters. Tile workers use their tile rect and
// run index as the sink shard; the immediate-mode path uses the full
// screen and shard -1. Keeping the counters here is what lets tile
// workers run without shared mutable state.
type emitCtx struct {
	r              *Rasterizer
	x0, y0, x1, y1 int
	shard          int
	frags          int64
}

// emit routes one in-rect fragment through the optional sink, then the
// framebuffer. Fragments outside the rect — or outside the depth slab
// when ClipDepth is set — are dropped before counting.
func (e *emitCtx) emit(x, y int, depth float32, c hybrid.RGBA) {
	if x < e.x0 || x > e.x1 || y < e.y0 || y > e.y1 {
		return
	}
	r := e.r
	if r.ClipDepth && (depth < r.ClipNear || depth > r.ClipFar) {
		return
	}
	e.frags++
	if r.fragmentSink != nil && r.fragmentSink.sinkFragment(e.shard, x, y, depth, c) {
		return
	}
	r.FB.writeFragment(x, y, depth, c, r.Mode, r.DepthTest, r.DepthWrite)
}

// screenCtx returns the immediate-mode emit context: the whole screen,
// no sink shard.
func (r *Rasterizer) screenCtx() emitCtx {
	return emitCtx{r: r, x1: r.FB.W - 1, y1: r.FB.H - 1, shard: -1}
}

// NewRasterizer returns an opaque-mode rasterizer with depth testing.
func NewRasterizer(fb *Framebuffer, cam Camera) *Rasterizer {
	return &Rasterizer{FB: fb, Cam: cam, Mode: BlendOpaque, DepthTest: true, DepthWrite: true}
}

// ResetStats zeroes the primitive counters.
func (r *Rasterizer) ResetStats() {
	r.FragmentCount, r.TriangleCount, r.PointCount, r.LineCount = 0, 0, 0, 0
}

// ---- point splats ----------------------------------------------------

// kernelSteps quantizes the normalized squared distance d²/r² of a
// point splat into the Gaussian kernel table.
const kernelSteps = 1024

// gaussKernel[i] = exp(-2·i/kernelSteps): the splat falloff
// exp(-d²/(2σ²)) with σ = r/2 tabulated over d²/r² ∈ [0,1], replacing
// a math.Exp per fragment with one indexed load. The quantization
// error is bounded by the table step (≤ 0.2% of full scale).
var gaussKernel [kernelSteps + 1]float64

func init() {
	for i := range gaussKernel {
		gaussKernel[i] = math.Exp(-2 * float64(i) / kernelSteps)
	}
}

// pointSetup is a projected point splat clipped to the screen.
type pointSetup struct {
	cx, cy         int
	x0, y0, x1, y1 int // disc bounding box clamped to the screen
	r2             float64
	qscale         float64 // kernel-table quantization: kernelSteps/r²
	depth          float32
	color          hybrid.RGBA
}

// setupPoint projects one splat. projected=false means the point is
// behind the camera (not drawn, not counted); visible=false means the
// disc misses the screen entirely (counted, but no fragment work).
func (r *Rasterizer) setupPoint(p vec.V3, pixelRadius float64, c hybrid.RGBA, s *pointSetup) (projected, visible bool) {
	sx, sy, depth, ok := r.Cam.WorldToScreen(p, r.FB.W, r.FB.H)
	if !ok {
		return false, false
	}
	if pixelRadius < 0.5 {
		pixelRadius = 0.5
	}
	ir := int(math.Ceil(pixelRadius))
	cx, cy := int(sx), int(sy)
	x0, y0, x1, y1 := cx-ir, cy-ir, cx+ir, cy+ir
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > r.FB.W-1 {
		x1 = r.FB.W - 1
	}
	if y1 > r.FB.H-1 {
		y1 = r.FB.H - 1
	}
	if x0 > x1 || y0 > y1 {
		return true, false
	}
	s.cx, s.cy = cx, cy
	s.x0, s.y0, s.x1, s.y1 = x0, y0, x1, y1
	s.r2 = pixelRadius * pixelRadius
	s.qscale = kernelSteps / s.r2
	s.depth = float32(depth)
	s.color = c
	return true, true
}

// rasterPoint replays the splat's fragments inside e's rect. Every
// per-fragment value depends only on the pixel coordinate and the
// setup, so any sub-rectangle reproduces the full-screen result.
//
// The sink-free case writes the framebuffer directly with the blend
// state hoisted out of the pixel loop; the values stored are exactly
// those the generic emit path would produce, fragment for fragment.
func rasterPoint(s *pointSetup, e *emitCtx) {
	// A splat's fragments share one depth, so the depth slab accepts or
	// rejects it whole — checked here so the fast loops below need no
	// per-fragment clip test.
	if e.r.ClipDepth && (s.depth < e.r.ClipNear || s.depth > e.r.ClipFar) {
		return
	}
	x0, y0, x1, y1 := s.x0, s.y0, s.x1, s.y1
	if x0 < e.x0 {
		x0 = e.x0
	}
	if y0 < e.y0 {
		y0 = e.y0
	}
	if x1 > e.x1 {
		x1 = e.x1
	}
	if y1 > e.y1 {
		y1 = e.y1
	}
	r := e.r
	if r.fragmentSink != nil {
		for py := y0; py <= y1; py++ {
			dy := py - s.cy
			for px := x0; px <= x1; px++ {
				dx := px - s.cx
				d2 := float64(dx*dx + dy*dy)
				if d2 > s.r2 {
					continue
				}
				fc := s.color
				fc.A = s.color.A * gaussKernel[int(d2*s.qscale)]
				e.emit(px, py, s.depth, fc)
			}
		}
		return
	}
	fb := r.FB
	mode, depthTest, depthWrite := r.Mode, r.DepthTest, r.DepthWrite
	cr, cg, cb := float32(s.color.R), float32(s.color.G), float32(s.color.B)
	depth := s.depth
	if mode == BlendOpaque && depthTest && depthWrite {
		// The viewer's splat configuration, tightest loop of the
		// pipeline: depth-tested opaque stores only.
		for py := y0; py <= y1; py++ {
			dy := py - s.cy
			rowD := py * fb.W
			for px := x0; px <= x1; px++ {
				dx := px - s.cx
				d2 := float64(dx*dx + dy*dy)
				if d2 > s.r2 {
					continue
				}
				e.frags++
				di := rowD + px
				if depth > fb.Depth[di] {
					continue
				}
				ci := di * 4
				fb.Color[ci] = cr
				fb.Color[ci+1] = cg
				fb.Color[ci+2] = cb
				fb.Color[ci+3] = float32(s.color.A * gaussKernel[int(d2*s.qscale)])
				fb.Depth[di] = depth
			}
		}
		return
	}
	for py := y0; py <= y1; py++ {
		dy := py - s.cy
		rowD := py * fb.W
		for px := x0; px <= x1; px++ {
			dx := px - s.cx
			d2 := float64(dx*dx + dy*dy)
			if d2 > s.r2 {
				continue
			}
			e.frags++
			di := rowD + px
			if depthTest && depth > fb.Depth[di] {
				continue
			}
			a := float32(s.color.A * gaussKernel[int(d2*s.qscale)])
			ci := di * 4
			switch mode {
			case BlendOpaque:
				fb.Color[ci] = cr
				fb.Color[ci+1] = cg
				fb.Color[ci+2] = cb
				fb.Color[ci+3] = a
			case BlendAlpha:
				fb.Color[ci] = cr*a + fb.Color[ci]*(1-a)
				fb.Color[ci+1] = cg*a + fb.Color[ci+1]*(1-a)
				fb.Color[ci+2] = cb*a + fb.Color[ci+2]*(1-a)
				fb.Color[ci+3] = a + fb.Color[ci+3]*(1-a)
			case BlendAdditive:
				fb.Color[ci] += cr * a
				fb.Color[ci+1] += cg * a
				fb.Color[ci+2] += cb * a
				fb.Color[ci+3] += a
			}
			if depthWrite {
				fb.Depth[di] = depth
			}
		}
	}
}

// DrawPoint splats a round point of the given pixel radius with a
// Gaussian alpha falloff, the viewer's particle primitive.
func (r *Rasterizer) DrawPoint(p vec.V3, pixelRadius float64, c hybrid.RGBA) {
	var s pointSetup
	projected, visible := r.setupPoint(p, pixelRadius, c, &s)
	if !projected {
		return
	}
	r.PointCount++
	if !visible {
		return
	}
	e := r.screenCtx()
	rasterPoint(&s, &e)
	r.FragmentCount += e.frags
}

// ---- lines -----------------------------------------------------------

// lineSetup is a near-clipped, projected line.
type lineSetup struct {
	ax, ay, ad     float64 // screen start and depth
	dx, dy, dd     float64 // screen deltas
	steps          int
	ir             int     // stamp radius in pixels (0 for 1px lines)
	w2             float64 // width²/4, the stamp disc test
	width          float64
	c0, c1         hybrid.RGBA
	x0, y0, x1, y1 int // conservative bounding box clamped to the screen
}

// setupLine clips and projects one line. drawn=false means the line is
// entirely behind the near plane (not counted); visible=false means no
// fragment can land on screen (counted, no work).
func (r *Rasterizer) setupLine(p0, p1 vec.V3, width float64, c0, c1 hybrid.RGBA, s *lineSetup) (drawn, visible bool) {
	a := r.Cam.viewSpace(p0)
	b := r.Cam.viewSpace(p1)
	// Clip to the near plane in view space.
	nz := -r.Cam.Near
	if a.Z >= nz && b.Z >= nz {
		return false, false
	}
	if a.Z >= nz || b.Z >= nz {
		t := (nz - a.Z) / (b.Z - a.Z)
		clip := a.Lerp(b, t)
		if a.Z >= nz {
			a = clip
		} else {
			b = clip
		}
	}
	ax, ay, ad, _ := r.Cam.project(a, r.FB.W, r.FB.H)
	bx, by, bd, _ := r.Cam.project(b, r.FB.W, r.FB.H)
	dx, dy := bx-ax, by-ay
	steps := int(math.Max(math.Abs(dx), math.Abs(dy))) + 1
	ir := 0
	if width > 1 {
		ir = int(math.Ceil(width / 2))
	}
	x0 := int(math.Floor(math.Min(ax, bx))) - ir - 1
	x1 := int(math.Ceil(math.Max(ax, bx))) + ir + 1
	y0 := int(math.Floor(math.Min(ay, by))) - ir - 1
	y1 := int(math.Ceil(math.Max(ay, by))) + ir + 1
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > r.FB.W-1 {
		x1 = r.FB.W - 1
	}
	if y1 > r.FB.H-1 {
		y1 = r.FB.H - 1
	}
	if x0 > x1 || y0 > y1 {
		return true, false
	}
	s.ax, s.ay, s.ad = ax, ay, ad
	s.dx, s.dy, s.dd = dx, dy, bd-ad
	s.steps, s.ir = steps, ir
	s.w2, s.width = width*width/4, width
	s.c0, s.c1 = c0, c1
	s.x0, s.y0, s.x1, s.y1 = x0, y0, x1, y1
	return true, true
}

// stepRange returns the inclusive range of step indices whose position
// v(i) = a + (i/steps)·d can fall inside [lo, hi]; any=false when none
// can. The bounds carry a one-step safety margin so float rounding can
// never exclude a step that would emit into the interval.
func stepRange(a, d, lo, hi float64, steps int) (int, int, bool) {
	if d == 0 {
		if a < lo || a > hi {
			return 0, 0, false
		}
		return 0, steps, true
	}
	t0 := (lo - a) / d * float64(steps)
	t1 := (hi - a) / d * float64(steps)
	if t0 > t1 {
		t0, t1 = t1, t0
	}
	i0 := int(math.Floor(t0)) - 1
	i1 := int(math.Ceil(t1)) + 1
	if i1 < 0 || i0 > steps {
		return 0, 0, false
	}
	if i0 < 0 {
		i0 = 0
	}
	if i1 > steps {
		i1 = steps
	}
	return i0, i1, true
}

// rasterLine replays the line's fragments inside e's rect. The step
// walk is restricted to the conservative sub-range that can reach the
// rect; each step computes t from its index alone, so a sub-range
// reproduces exactly the fragments the full walk would emit there.
func rasterLine(s *lineSetup, e *emitCtx) {
	pad := float64(s.ir) + 2
	i0, i1 := 0, s.steps
	lo, hi, any := stepRange(s.ax, s.dx, float64(e.x0)-pad, float64(e.x1)+pad, s.steps)
	if !any {
		return
	}
	if lo > i0 {
		i0 = lo
	}
	if hi < i1 {
		i1 = hi
	}
	lo, hi, any = stepRange(s.ay, s.dy, float64(e.y0)-pad, float64(e.y1)+pad, s.steps)
	if !any {
		return
	}
	if lo > i0 {
		i0 = lo
	}
	if hi < i1 {
		i1 = hi
	}
	for i := i0; i <= i1; i++ {
		t := float64(i) / float64(s.steps)
		x := s.ax + t*s.dx
		y := s.ay + t*s.dy
		d := s.ad + t*s.dd
		c := s.c0.Lerp(s.c1, t)
		if s.width <= 1 {
			e.emit(int(x), int(y), float32(d), c)
			continue
		}
		for oy := -s.ir; oy <= s.ir; oy++ {
			for ox := -s.ir; ox <= s.ir; ox++ {
				if float64(ox*ox+oy*oy) > s.w2 {
					continue
				}
				e.emit(int(x)+ox, int(y)+oy, float32(d), c)
			}
		}
	}
}

// DrawLine draws a depth-interpolated line with the given pixel width.
// Widths > 1 stamp a small disc at each step (the "fat line" fallback
// the conventional line-drawing technique of Fig 6(a) uses).
func (r *Rasterizer) DrawLine(p0, p1 vec.V3, width float64, c0, c1 hybrid.RGBA) {
	var s lineSetup
	drawn, visible := r.setupLine(p0, p1, width, c0, c1, &s)
	if !drawn {
		return
	}
	r.LineCount++
	if !visible {
		return
	}
	e := r.screenCtx()
	rasterLine(&s, &e)
	r.FragmentCount += e.frags
}

// ---- triangles -------------------------------------------------------

// clipVert is a view-space vertex used during near-plane clipping.
type clipVert struct {
	pos   vec.V3 // view space
	world vec.V3
	n     vec.V3
	uv    [2]float64
	color hybrid.RGBA
}

func lerpClip(a, b clipVert, t float64) clipVert {
	return clipVert{
		pos:   a.pos.Lerp(b.pos, t),
		world: a.world.Lerp(b.world, t),
		n:     a.n.Lerp(b.n, t),
		uv:    [2]float64{a.uv[0] + t*(b.uv[0]-a.uv[0]), a.uv[1] + t*(b.uv[1]-a.uv[1])},
		color: a.color.Lerp(b.color, t),
	}
}

// clipTriangle Sutherland-Hodgman clips the triangle against the near
// plane into dst (reused to avoid allocation) and returns the clipped
// polygon, which has at most 4 vertices.
func (r *Rasterizer) clipTriangle(v0, v1, v2 Vertex, dst []clipVert) []clipVert {
	poly := [3]clipVert{
		{pos: r.Cam.viewSpace(v0.Pos), world: v0.Pos, n: v0.N, uv: v0.UV, color: v0.Color},
		{pos: r.Cam.viewSpace(v1.Pos), world: v1.Pos, n: v1.N, uv: v1.UV, color: v1.Color},
		{pos: r.Cam.viewSpace(v2.Pos), world: v2.Pos, n: v2.N, uv: v2.UV, color: v2.Color},
	}
	nz := -r.Cam.Near
	clipped := dst[:0]
	for i := 0; i < len(poly); i++ {
		cur, next := poly[i], poly[(i+1)%len(poly)]
		curIn := cur.pos.Z < nz
		nextIn := next.pos.Z < nz
		if curIn {
			clipped = append(clipped, cur)
		}
		if curIn != nextIn {
			t := (nz - cur.pos.Z) / (next.pos.Z - cur.pos.Z)
			clipped = append(clipped, lerpClip(cur, next, t))
		}
	}
	return clipped
}

// triSetup is one projected, screen-clipped raster triangle with its
// edge functions in affine form: wk(x, y) = basek + x·dwkdx + y·dwkdy
// evaluated at pixel centers (w2 = 1 - w0 - w1). The affine form makes
// every pixel's coverage and weights a pure function of its
// coordinates, so tile and full-screen iteration agree bitwise while
// each row costs just one multiply-add per edge to step.
type triSetup struct {
	a, b, c             clipVert
	ad, bd, cd          float64 // projected depths
	aw, bw, cw          float64 // inverse view-space depths
	base0, dw0dx, dw0dy float64
	base1, dw1dx, dw1dy float64
	x0, y0, x1, y1      int // bounding box clamped to the screen
}

// setupTriangle projects one near-clipped view-space triangle and
// derives its edge coefficients. ok=false when the triangle is behind
// the near plane, degenerate, or entirely off screen — the early
// rejection that keeps off-screen geometry out of the per-pixel loop.
func (r *Rasterizer) setupTriangle(a, b, c clipVert, s *triSetup) bool {
	w, h := r.FB.W, r.FB.H
	ax, ay, ad, ok0 := r.Cam.project(a.pos, w, h)
	bx, by, bd, ok1 := r.Cam.project(b.pos, w, h)
	cx, cy, cd, ok2 := r.Cam.project(c.pos, w, h)
	if !ok0 || !ok1 || !ok2 {
		return false
	}
	minX := int(math.Floor(math.Min(ax, math.Min(bx, cx))))
	maxX := int(math.Ceil(math.Max(ax, math.Max(bx, cx))))
	minY := int(math.Floor(math.Min(ay, math.Min(by, cy))))
	maxY := int(math.Ceil(math.Max(ay, math.Max(by, cy))))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX >= w {
		maxX = w - 1
	}
	if maxY >= h {
		maxY = h - 1
	}
	if minX > maxX || minY > maxY {
		return false
	}
	area := (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
	if area == 0 {
		return false
	}
	invArea := 1 / area
	s.a, s.b, s.c = a, b, c
	s.ad, s.bd, s.cd = ad, bd, cd
	// Inverse view-space depth for perspective-correct interpolation.
	s.aw, s.bw, s.cw = -1/a.pos.Z, -1/b.pos.Z, -1/c.pos.Z
	s.base0 = (bx*cy - by*cx) * invArea
	s.dw0dx = (by - cy) * invArea
	s.dw0dy = (cx - bx) * invArea
	s.base1 = (cx*ay - cy*ax) * invArea
	s.dw1dx = (cy - ay) * invArea
	s.dw1dy = (ax - cx) * invArea
	s.x0, s.y0, s.x1, s.y1 = minX, minY, maxX, maxY
	return true
}

// rasterTriangle fills the triangle inside e's rect with
// perspective-correct attribute interpolation.
func rasterTriangle(s *triSetup, e *emitCtx) {
	r := e.r
	x0, y0, x1, y1 := s.x0, s.y0, s.x1, s.y1
	if x0 < e.x0 {
		x0 = e.x0
	}
	if y0 < e.y0 {
		y0 = e.y0
	}
	if x1 > e.x1 {
		x1 = e.x1
	}
	if y1 > e.y1 {
		y1 = e.y1
	}
	for py := y0; py <= y1; py++ {
		y := float64(py) + 0.5
		row0 := s.base0 + y*s.dw0dy
		row1 := s.base1 + y*s.dw1dy
		for px := x0; px <= x1; px++ {
			x := float64(px) + 0.5
			w0 := row0 + x*s.dw0dx
			w1 := row1 + x*s.dw1dx
			w2 := 1 - w0 - w1
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			depth := w0*s.ad + w1*s.bd + w2*s.cd
			// Perspective-correct weights.
			pw := w0*s.aw + w1*s.bw + w2*s.cw
			u0 := w0 * s.aw / pw
			u1 := w1 * s.bw / pw
			u2 := w2 * s.cw / pw

			col := hybrid.RGBA{
				R: u0*s.a.color.R + u1*s.b.color.R + u2*s.c.color.R,
				G: u0*s.a.color.G + u1*s.b.color.G + u2*s.c.color.G,
				B: u0*s.a.color.B + u1*s.b.color.B + u2*s.c.color.B,
				A: u0*s.a.color.A + u1*s.b.color.A + u2*s.c.color.A,
			}
			if r.Shade != nil {
				world := s.a.world.Scale(u0).Add(s.b.world.Scale(u1)).Add(s.c.world.Scale(u2))
				frag := Fragment{
					Pos:     world,
					N:       s.a.n.Scale(u0).Add(s.b.n.Scale(u1)).Add(s.c.n.Scale(u2)),
					UV:      [2]float64{u0*s.a.uv[0] + u1*s.b.uv[0] + u2*s.c.uv[0], u0*s.a.uv[1] + u1*s.b.uv[1] + u2*s.c.uv[1]},
					Color:   col,
					ViewDir: r.Cam.ViewDir(world),
				}
				col = r.Shade(frag)
				if col.A <= 0 {
					continue
				}
			}
			e.emit(px, py, float32(depth), col)
		}
	}
}

// DrawTriangle rasterizes one triangle with perspective-correct
// attribute interpolation and near-plane clipping.
func (r *Rasterizer) DrawTriangle(v0, v1, v2 Vertex) {
	r.TriangleCount++
	var clipBuf [4]clipVert
	clipped := r.clipTriangle(v0, v1, v2, clipBuf[:])
	if len(clipped) < 3 {
		return
	}
	e := r.screenCtx()
	var s triSetup
	for i := 1; i+1 < len(clipped); i++ {
		if r.setupTriangle(clipped[0], clipped[i], clipped[i+1], &s) {
			rasterTriangle(&s, &e)
		}
	}
	r.FragmentCount += e.frags
}

// DrawTriangleStrip draws vertices as a strip: (0,1,2), (1,2,3), ...
// with alternating winding — the exact primitive self-orienting
// surfaces are built from.
func (r *Rasterizer) DrawTriangleStrip(verts []Vertex) {
	for i := 0; i+2 < len(verts); i++ {
		if i%2 == 0 {
			r.DrawTriangle(verts[i], verts[i+1], verts[i+2])
		} else {
			r.DrawTriangle(verts[i+1], verts[i], verts[i+2])
		}
	}
}
