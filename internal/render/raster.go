package render

import (
	"math"

	"repro/internal/hybrid"
	"repro/internal/vec"
)

// Vertex carries the per-vertex attributes the pipeline interpolates:
// world position, shading normal, texture coordinates and color.
type Vertex struct {
	Pos   vec.V3
	N     vec.V3
	UV    [2]float64
	Color hybrid.RGBA
}

// Fragment is the interpolated state handed to a fragment shader.
type Fragment struct {
	Pos     vec.V3 // world position
	N       vec.V3 // interpolated (unnormalized) shading normal
	UV      [2]float64
	Color   hybrid.RGBA
	ViewDir vec.V3 // unit vector toward the camera
}

// Shader computes a fragment's final color; nil means "use the
// interpolated vertex color unchanged". It is the software analog of
// the fragment stage the paper programs through texturing and register
// combiners.
type Shader func(f Fragment) hybrid.RGBA

// Rasterizer draws primitives into a framebuffer through a camera.
// Configure the public fields, then call the Draw methods. The zero
// value is not usable; construct with NewRasterizer.
type Rasterizer struct {
	FB  *Framebuffer
	Cam Camera

	Mode       BlendMode
	DepthTest  bool
	DepthWrite bool
	Shade      Shader

	// Stats: fragments written and triangles submitted, the cost model
	// the technique-comparison experiments report.
	FragmentCount int64
	TriangleCount int64
	PointCount    int64
	LineCount     int64

	// fragmentSink, when set, intercepts fragments before the
	// framebuffer (used by the order-independent transparency buffer).
	// Returning true consumes the fragment.
	fragmentSink func(x, y int, depth float32, c hybrid.RGBA) bool
}

// emit routes one fragment through the optional sink, then the
// framebuffer.
func (r *Rasterizer) emit(x, y int, depth float32, c hybrid.RGBA) {
	r.FragmentCount++
	if r.fragmentSink != nil && r.fragmentSink(x, y, depth, c) {
		return
	}
	r.FB.writeFragment(x, y, depth, c, r.Mode, r.DepthTest, r.DepthWrite)
}

// NewRasterizer returns an opaque-mode rasterizer with depth testing.
func NewRasterizer(fb *Framebuffer, cam Camera) *Rasterizer {
	return &Rasterizer{FB: fb, Cam: cam, Mode: BlendOpaque, DepthTest: true, DepthWrite: true}
}

// ResetStats zeroes the primitive counters.
func (r *Rasterizer) ResetStats() {
	r.FragmentCount, r.TriangleCount, r.PointCount, r.LineCount = 0, 0, 0, 0
}

// DrawPoint splats a round point of the given pixel radius with a
// Gaussian alpha falloff, the viewer's particle primitive.
func (r *Rasterizer) DrawPoint(p vec.V3, pixelRadius float64, c hybrid.RGBA) {
	sx, sy, depth, ok := r.Cam.WorldToScreen(p, r.FB.W, r.FB.H)
	if !ok {
		return
	}
	r.PointCount++
	if pixelRadius < 0.5 {
		pixelRadius = 0.5
	}
	ir := int(math.Ceil(pixelRadius))
	cx, cy := int(sx), int(sy)
	inv2s2 := 1 / (2 * (pixelRadius / 2) * (pixelRadius / 2))
	for dy := -ir; dy <= ir; dy++ {
		for dx := -ir; dx <= ir; dx++ {
			d2 := float64(dx*dx + dy*dy)
			if d2 > pixelRadius*pixelRadius {
				continue
			}
			w := math.Exp(-d2 * inv2s2)
			fc := c
			fc.A = c.A * w
			r.emit(cx+dx, cy+dy, float32(depth), fc)
		}
	}
}

// DrawLine draws a depth-interpolated line with the given pixel width.
// Widths > 1 stamp a small disc at each step (the "fat line" fallback
// the conventional line-drawing technique of Fig 6(a) uses).
func (r *Rasterizer) DrawLine(p0, p1 vec.V3, width float64, c0, c1 hybrid.RGBA) {
	a := r.Cam.viewSpace(p0)
	b := r.Cam.viewSpace(p1)
	// Clip to the near plane in view space.
	nz := -r.Cam.Near
	if a.Z >= nz && b.Z >= nz {
		return
	}
	if a.Z >= nz || b.Z >= nz {
		t := (nz - a.Z) / (b.Z - a.Z)
		clip := a.Lerp(b, t)
		if a.Z >= nz {
			a = clip
		} else {
			b = clip
		}
	}
	r.LineCount++
	ax, ay, ad, _ := r.Cam.project(a, r.FB.W, r.FB.H)
	bx, by, bd, _ := r.Cam.project(b, r.FB.W, r.FB.H)
	dx, dy := bx-ax, by-ay
	steps := int(math.Max(math.Abs(dx), math.Abs(dy))) + 1
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		x := ax + t*dx
		y := ay + t*dy
		d := ad + t*(bd-ad)
		c := c0.Lerp(c1, t)
		if width <= 1 {
			r.emit(int(x), int(y), float32(d), c)
			continue
		}
		ir := int(math.Ceil(width / 2))
		for oy := -ir; oy <= ir; oy++ {
			for ox := -ir; ox <= ir; ox++ {
				if float64(ox*ox+oy*oy) > width*width/4 {
					continue
				}
				r.emit(int(x)+ox, int(y)+oy, float32(d), c)
			}
		}
	}
}

// clipVert is a view-space vertex used during near-plane clipping.
type clipVert struct {
	pos   vec.V3 // view space
	world vec.V3
	n     vec.V3
	uv    [2]float64
	color hybrid.RGBA
}

func lerpClip(a, b clipVert, t float64) clipVert {
	return clipVert{
		pos:   a.pos.Lerp(b.pos, t),
		world: a.world.Lerp(b.world, t),
		n:     a.n.Lerp(b.n, t),
		uv:    [2]float64{a.uv[0] + t*(b.uv[0]-a.uv[0]), a.uv[1] + t*(b.uv[1]-a.uv[1])},
		color: a.color.Lerp(b.color, t),
	}
}

// DrawTriangle rasterizes one triangle with perspective-correct
// attribute interpolation and near-plane clipping.
func (r *Rasterizer) DrawTriangle(v0, v1, v2 Vertex) {
	r.TriangleCount++
	poly := []clipVert{
		{pos: r.Cam.viewSpace(v0.Pos), world: v0.Pos, n: v0.N, uv: v0.UV, color: v0.Color},
		{pos: r.Cam.viewSpace(v1.Pos), world: v1.Pos, n: v1.N, uv: v1.UV, color: v1.Color},
		{pos: r.Cam.viewSpace(v2.Pos), world: v2.Pos, n: v2.N, uv: v2.UV, color: v2.Color},
	}
	// Sutherland-Hodgman clip against z = -near.
	nz := -r.Cam.Near
	var clipped []clipVert
	for i := 0; i < len(poly); i++ {
		cur, next := poly[i], poly[(i+1)%len(poly)]
		curIn := cur.pos.Z < nz
		nextIn := next.pos.Z < nz
		if curIn {
			clipped = append(clipped, cur)
		}
		if curIn != nextIn {
			t := (nz - cur.pos.Z) / (next.pos.Z - cur.pos.Z)
			clipped = append(clipped, lerpClip(cur, next, t))
		}
	}
	if len(clipped) < 3 {
		return
	}
	for i := 1; i+1 < len(clipped); i++ {
		r.fillTriangle(clipped[0], clipped[i], clipped[i+1])
	}
}

// DrawTriangleStrip draws vertices as a strip: (0,1,2), (1,2,3), ...
// with alternating winding — the exact primitive self-orienting
// surfaces are built from.
func (r *Rasterizer) DrawTriangleStrip(verts []Vertex) {
	for i := 0; i+2 < len(verts); i++ {
		if i%2 == 0 {
			r.DrawTriangle(verts[i], verts[i+1], verts[i+2])
		} else {
			r.DrawTriangle(verts[i+1], verts[i], verts[i+2])
		}
	}
}

// fillTriangle rasterizes a clipped view-space triangle.
func (r *Rasterizer) fillTriangle(a, b, c clipVert) {
	w, h := r.FB.W, r.FB.H
	ax, ay, ad, ok0 := r.Cam.project(a.pos, w, h)
	bx, by, bd, ok1 := r.Cam.project(b.pos, w, h)
	cx, cy, cd, ok2 := r.Cam.project(c.pos, w, h)
	if !ok0 || !ok1 || !ok2 {
		return
	}
	// Inverse view-space depth for perspective-correct interpolation.
	aw := -1 / a.pos.Z
	bw := -1 / b.pos.Z
	cw := -1 / c.pos.Z

	minX := int(math.Floor(math.Min(ax, math.Min(bx, cx))))
	maxX := int(math.Ceil(math.Max(ax, math.Max(bx, cx))))
	minY := int(math.Floor(math.Min(ay, math.Min(by, cy))))
	maxY := int(math.Ceil(math.Max(ay, math.Max(by, cy))))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX >= w {
		maxX = w - 1
	}
	if maxY >= h {
		maxY = h - 1
	}
	area := (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
	if area == 0 {
		return
	}
	invArea := 1 / area

	for py := minY; py <= maxY; py++ {
		for px := minX; px <= maxX; px++ {
			x := float64(px) + 0.5
			y := float64(py) + 0.5
			w0 := ((bx-x)*(cy-y) - (by-y)*(cx-x)) * invArea
			w1 := ((cx-x)*(ay-y) - (cy-y)*(ax-x)) * invArea
			w2 := 1 - w0 - w1
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			depth := w0*ad + w1*bd + w2*cd
			// Perspective-correct weights.
			pw := w0*aw + w1*bw + w2*cw
			u0 := w0 * aw / pw
			u1 := w1 * bw / pw
			u2 := w2 * cw / pw

			col := hybrid.RGBA{
				R: u0*a.color.R + u1*b.color.R + u2*c.color.R,
				G: u0*a.color.G + u1*b.color.G + u2*c.color.G,
				B: u0*a.color.B + u1*b.color.B + u2*c.color.B,
				A: u0*a.color.A + u1*b.color.A + u2*c.color.A,
			}
			if r.Shade != nil {
				world := a.world.Scale(u0).Add(b.world.Scale(u1)).Add(c.world.Scale(u2))
				frag := Fragment{
					Pos:     world,
					N:       a.n.Scale(u0).Add(b.n.Scale(u1)).Add(c.n.Scale(u2)),
					UV:      [2]float64{u0*a.uv[0] + u1*b.uv[0] + u2*c.uv[0], u0*a.uv[1] + u1*b.uv[1] + u2*c.uv[1]},
					Color:   col,
					ViewDir: r.Cam.ViewDir(world),
				}
				col = r.Shade(frag)
				if col.A <= 0 {
					continue
				}
			}
			r.emit(px, py, float32(depth), col)
		}
	}
}
