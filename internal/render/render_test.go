package render

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/vec"
)

func testCam(t *testing.T) Camera {
	t.Helper()
	cam, err := NewCamera(vec.New(0, 0, 5), vec.New(0, 0, 0), vec.New(0, 1, 0),
		math.Pi/3, 1, 0.1, 100)
	if err != nil {
		t.Fatalf("NewCamera: %v", err)
	}
	return cam
}

func white() hybrid.RGBA { return hybrid.RGBA{R: 1, G: 1, B: 1, A: 1} }

func TestFramebufferValidation(t *testing.T) {
	if _, err := NewFramebuffer(0, 10); err == nil {
		t.Error("accepted zero width")
	}
}

func TestClearAndAt(t *testing.T) {
	fb, err := NewFramebuffer(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	fb.Clear(hybrid.RGBA{R: 0.5, G: 0.25, B: 0.125, A: 1})
	c := fb.At(2, 3)
	if c.R != 0.5 || c.G != 0.25 || c.B != 0.125 {
		t.Errorf("At = %+v", c)
	}
	if !math.IsInf(float64(fb.DepthAt(0, 0)), 1) {
		t.Errorf("depth not cleared to +Inf")
	}
}

func TestCameraValidation(t *testing.T) {
	if _, err := NewCamera(vec.New(0, 0, 0), vec.New(0, 0, 0), vec.New(0, 1, 0), 1, 1, 0.1, 10); err == nil {
		t.Error("accepted coincident eye/target")
	}
	if _, err := NewCamera(vec.New(0, 0, 5), vec.New(0, 0, 0), vec.New(0, 1, 0), 0, 1, 0.1, 10); err == nil {
		t.Error("accepted zero fovy")
	}
	if _, err := NewCamera(vec.New(0, 0, 5), vec.New(0, 0, 0), vec.New(0, 1, 0), 1, 1, 5, 1); err == nil {
		t.Error("accepted far < near")
	}
}

func TestWorldToScreenCenter(t *testing.T) {
	cam := testCam(t)
	// The look-at target must project to the screen center.
	sx, sy, _, ok := cam.WorldToScreen(vec.New(0, 0, 0), 100, 100)
	if !ok {
		t.Fatal("target not visible")
	}
	if math.Abs(sx-50) > 1e-9 || math.Abs(sy-50) > 1e-9 {
		t.Errorf("target at (%v, %v), want (50, 50)", sx, sy)
	}
	// A point behind the camera is rejected.
	if _, _, _, ok := cam.WorldToScreen(vec.New(0, 0, 10), 100, 100); ok {
		t.Error("point behind camera reported visible")
	}
}

func TestDepthOrdering(t *testing.T) {
	cam := testCam(t)
	_, _, dNear, _ := cam.WorldToScreen(vec.New(0, 0, 2), 100, 100)
	_, _, dFar, _ := cam.WorldToScreen(vec.New(0, 0, -3), 100, 100)
	if dNear >= dFar {
		t.Errorf("depth not monotonic: near %v, far %v", dNear, dFar)
	}
}

func TestLookAtBoundsFramesBox(t *testing.T) {
	b := vec.Box(vec.New(-1, -2, -3), vec.New(4, 5, 6))
	cam, err := LookAtBounds(b, vec.New(0, 0, 1), math.Pi/3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All corners must be visible.
	for i := 0; i < 8; i++ {
		p := vec.New(b.Min.X, b.Min.Y, b.Min.Z)
		if i&1 != 0 {
			p.X = b.Max.X
		}
		if i&2 != 0 {
			p.Y = b.Max.Y
		}
		if i&4 != 0 {
			p.Z = b.Max.Z
		}
		sx, sy, _, ok := cam.WorldToScreen(p, 200, 200)
		if !ok || sx < 0 || sx > 200 || sy < 0 || sy > 200 {
			t.Errorf("corner %v projects to (%v,%v) ok=%v", p, sx, sy, ok)
		}
	}
}

func TestDrawPointWritesPixels(t *testing.T) {
	fb, _ := NewFramebuffer(64, 64)
	r := NewRasterizer(fb, testCam(t))
	r.DrawPoint(vec.New(0, 0, 0), 3, white())
	if fb.At(32, 32).R == 0 {
		t.Error("center pixel not written")
	}
	if r.PointCount != 1 || r.FragmentCount == 0 {
		t.Errorf("stats: points %d fragments %d", r.PointCount, r.FragmentCount)
	}
}

func TestDrawPointBehindCameraIgnored(t *testing.T) {
	fb, _ := NewFramebuffer(64, 64)
	r := NewRasterizer(fb, testCam(t))
	r.DrawPoint(vec.New(0, 0, 100), 3, white())
	if r.PointCount != 0 {
		t.Error("point behind camera counted")
	}
}

func TestDrawLineConnectsEndpoints(t *testing.T) {
	fb, _ := NewFramebuffer(64, 64)
	r := NewRasterizer(fb, testCam(t))
	r.DrawLine(vec.New(-1, 0, 0), vec.New(1, 0, 0), 1, white(), white())
	// The line must pass through the horizontal midline.
	found := 0
	for x := 0; x < 64; x++ {
		if fb.At(x, 32).R > 0 {
			found++
		}
	}
	if found < 10 {
		t.Errorf("only %d midline pixels written", found)
	}
}

func TestDrawLineClippedWhenBehind(t *testing.T) {
	fb, _ := NewFramebuffer(64, 64)
	r := NewRasterizer(fb, testCam(t))
	// Entirely behind the camera: nothing drawn.
	r.DrawLine(vec.New(-1, 0, 20), vec.New(1, 0, 20), 1, white(), white())
	if r.LineCount != 0 {
		t.Error("fully-behind line drawn")
	}
	// Straddling: should draw the visible part without panicking.
	r.DrawLine(vec.New(0, 0, -2), vec.New(0, 0, 20), 1, white(), white())
	if r.LineCount != 1 {
		t.Error("straddling line not drawn")
	}
}

func TestDrawTriangleFillsInterior(t *testing.T) {
	fb, _ := NewFramebuffer(64, 64)
	r := NewRasterizer(fb, testCam(t))
	v := func(x, y float64) Vertex {
		return Vertex{Pos: vec.New(x, y, 0), Color: white()}
	}
	r.DrawTriangle(v(-2, -2), v(2, -2), v(0, 2))
	if fb.At(32, 32).R == 0 {
		t.Error("triangle interior not filled")
	}
	// A corner of the screen should stay empty.
	if fb.At(1, 1).R != 0 {
		t.Error("triangle overflowed to screen corner")
	}
}

func TestDepthTestOccludes(t *testing.T) {
	fb, _ := NewFramebuffer(64, 64)
	r := NewRasterizer(fb, testCam(t))
	v := func(x, y, z float64, c hybrid.RGBA) Vertex {
		return Vertex{Pos: vec.New(x, y, z), Color: c}
	}
	red := hybrid.RGBA{R: 1, A: 1}
	blue := hybrid.RGBA{B: 1, A: 1}
	// Near red triangle first, far blue triangle second.
	r.DrawTriangle(v(-2, -2, 1, red), v(2, -2, 1, red), v(0, 2, 1, red))
	r.DrawTriangle(v(-2, -2, -1, blue), v(2, -2, -1, blue), v(0, 2, -1, blue))
	c := fb.At(32, 32)
	if c.R != 1 || c.B != 0 {
		t.Errorf("depth test failed: center = %+v", c)
	}
}

func TestAlphaBlendOver(t *testing.T) {
	fb, _ := NewFramebuffer(4, 4)
	fb.writeFragment(1, 1, 0.5, hybrid.RGBA{R: 1, A: 1}, BlendOpaque, false, false)
	fb.writeFragment(1, 1, 0.5, hybrid.RGBA{B: 1, A: 0.5}, BlendAlpha, false, false)
	c := fb.At(1, 1)
	if math.Abs(c.R-0.5) > 1e-6 || math.Abs(c.B-0.5) > 1e-6 {
		t.Errorf("alpha blend = %+v, want R=B=0.5", c)
	}
}

func TestAdditiveBlendAccumulates(t *testing.T) {
	fb, _ := NewFramebuffer(4, 4)
	for i := 0; i < 4; i++ {
		fb.writeFragment(1, 1, 0.5, hybrid.RGBA{R: 0.25, A: 0.5}, BlendAdditive, false, false)
	}
	c := fb.At(1, 1)
	if math.Abs(c.R-0.5) > 1e-6 {
		t.Errorf("additive R = %v, want 0.5 (4 x 0.25 x 0.5)", c.R)
	}
}

func TestTriangleStripCount(t *testing.T) {
	fb, _ := NewFramebuffer(32, 32)
	r := NewRasterizer(fb, testCam(t))
	verts := make([]Vertex, 10)
	for i := range verts {
		x := float64(i/2)*0.4 - 1
		y := float64(i%2)*0.4 - 0.2
		verts[i] = Vertex{Pos: vec.New(x, y, 0), Color: white()}
	}
	r.DrawTriangleStrip(verts)
	if r.TriangleCount != 8 {
		t.Errorf("strip of 10 verts drew %d triangles, want 8", r.TriangleCount)
	}
}

func TestPhongShaderLightsFacingSurface(t *testing.T) {
	lights := []Light{{Dir: vec.New(0, 0, 1), Color: white(), Intensity: 1}}
	shader := PhongShader(lights, DefaultPhong())
	lit := shader(Fragment{
		N:       vec.New(0, 0, 1),
		Color:   hybrid.RGBA{R: 0.5, G: 0.5, B: 0.5, A: 1},
		ViewDir: vec.New(0, 0, 1),
	})
	grazing := shader(Fragment{
		N:       vec.New(1, 0, 0.01).Norm(),
		Color:   hybrid.RGBA{R: 0.5, G: 0.5, B: 0.5, A: 1},
		ViewDir: vec.New(0, 0, 1),
	})
	if lit.R <= grazing.R {
		t.Errorf("facing surface (%v) not brighter than grazing (%v)", lit.R, grazing.R)
	}
}

func TestTubeShaderProfile(t *testing.T) {
	lights := []Light{{Dir: vec.New(0, 0, 1), Color: white(), Intensity: 1}}
	shader := TubeShader(lights, DefaultPhong(), 0.8)
	frag := func(u float64) Fragment {
		return Fragment{
			N:       vec.New(1, 0, 0), // side vector
			UV:      [2]float64{u, 0},
			Color:   white(),
			ViewDir: vec.New(0, 0, 1),
		}
	}
	center := shader(frag(0))
	edge := shader(frag(0.9)) // inside halo band
	out := shader(frag(1.5))  // outside profile
	if center.R <= edge.R {
		t.Errorf("tube center (%v) not brighter than halo rim (%v)", center.R, edge.R)
	}
	if edge.R != 0 || edge.A == 0 {
		t.Errorf("halo rim should be opaque black, got %+v", edge)
	}
	if out.A != 0 {
		t.Errorf("outside-profile fragment not discarded: %+v", out)
	}
}

func TestIlluminatedLineMaxWhenPerpendicular(t *testing.T) {
	mat := DefaultPhong()
	c := white()
	perp := IlluminatedLineColor(c, vec.New(1, 0, 0), vec.New(0, 0, 1), vec.New(0, 0, 1), mat)
	along := IlluminatedLineColor(c, vec.New(0, 0, 1), vec.New(0, 0, 1), vec.New(0, 0, 1), mat)
	if perp.R <= along.R {
		t.Errorf("perpendicular line (%v) not brighter than parallel (%v)", perp.R, along.R)
	}
}

func TestWritePNG(t *testing.T) {
	fb, _ := NewFramebuffer(16, 16)
	fb.Clear(hybrid.RGBA{R: 1, A: 1})
	path := filepath.Join(t.TempDir(), "out.png")
	if err := fb.WritePNG(path); err != nil {
		t.Fatalf("WritePNG: %v", err)
	}
}

func TestCoveredPixels(t *testing.T) {
	fb, _ := NewFramebuffer(8, 8)
	fb.writeFragment(0, 0, 0, white(), BlendOpaque, false, false)
	fb.writeFragment(3, 3, 0, white(), BlendOpaque, false, false)
	if got := fb.CoveredPixels(0.5); got != 2 {
		t.Errorf("CoveredPixels = %d, want 2", got)
	}
}

func TestPixelRadiusShrinksWithDistance(t *testing.T) {
	cam := testCam(t)
	near := cam.PixelRadius(vec.New(0, 0, 2), 0.1, 512)
	far := cam.PixelRadius(vec.New(0, 0, -3), 0.1, 512)
	if near <= far {
		t.Errorf("pixel radius near %v <= far %v", near, far)
	}
}
