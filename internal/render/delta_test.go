package render

import (
	"bytes"
	"math/rand"
	"testing"
)

// deltaRoundTrip asserts cur survives the delta codec bit for bit
// against base, returning the blob.
func deltaRoundTrip(t *testing.T, cur, base []byte) []byte {
	t.Helper()
	blob := CompressDelta(cur, base)
	got, err := DecompressDelta(blob, base)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatalf("delta round trip mangled stream: %d bytes in, %d out", len(cur), len(got))
	}
	return blob
}

func TestDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	noise := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	base := noise(10_000)

	// Identical streams collapse to a near-empty residual.
	same := append([]byte(nil), base...)
	if blob := deltaRoundTrip(t, same, base); len(blob) >= len(base)/50 {
		t.Errorf("identical-stream delta is %d bytes for a %d-byte stream", len(blob), len(base))
	}

	// A localized edit costs roughly the edit, not the stream.
	edited := append([]byte(nil), base...)
	copy(edited[4000:], noise(100))
	if blob := deltaRoundTrip(t, edited, base); len(blob) >= len(base)/4 {
		t.Errorf("100-byte edit delta is %d bytes for a %d-byte stream", len(blob), len(base))
	}

	// Length changes in both directions, including non-word tails.
	for _, n := range []int{0, 1, 3, 4, 5, 9_997, 10_000, 10_001, 13_003} {
		cur := noise(n)
		deltaRoundTrip(t, cur, base)
	}
	// And against an empty base (degrades to RLE over cur).
	deltaRoundTrip(t, noise(503), nil)
	deltaRoundTrip(t, nil, nil)
}

// TestDeltaWrongBase: applying a delta to a stream other than the one
// it was encoded against must fail, not hand back a corrupt frame.
func TestDeltaWrongBase(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := make([]byte, 2048)
	rng.Read(base)
	cur := append([]byte(nil), base...)
	cur[100] ^= 0xff
	blob := CompressDelta(cur, base)

	wrongLen := base[:2047]
	if _, err := DecompressDelta(blob, wrongLen); err == nil {
		t.Error("wrong-length base accepted")
	}
	wrong := append([]byte(nil), base...)
	wrong[9] ^= 1
	if _, err := DecompressDelta(blob, wrong); err == nil {
		t.Error("wrong-content base accepted (checksum must catch it)")
	}
}

func TestDeltaDecodeMalformed(t *testing.T) {
	base := []byte("the quick brown fox jumps over the lazy dog")
	good := CompressDelta([]byte("the quick brown cat jumps over the lazy dog"), base)
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:10],
		"bad magic":        append([]byte("XXXX"), good[4:]...),
		"bad version":      flipDeltaByte(good, 4),
		"huge target":      append(append([]byte{}, good[:8]...), append([]byte{255, 255, 255, 255}, good[12:]...)...),
		"truncated body":   good[:len(good)-3],
		"trailing garbage": append(append([]byte{}, good...), 9, 9, 9),
		"flipped residual": flipDeltaByte(good, len(good)-1),
	}
	for name, data := range cases {
		if _, err := DecompressDelta(data, base); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if !bytes.Equal(good, CompressDelta([]byte("the quick brown cat jumps over the lazy dog"), base)) {
		t.Error("delta compression not deterministic")
	}
}

func flipDeltaByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}

// FuzzDeltaCodec: round-trip with fuzzed streams, and the decoder
// against fuzzed blobs — must never panic or over-allocate.
func FuzzDeltaCodec(f *testing.F) {
	f.Add([]byte("current frame bytes"), []byte("base frame bytes"))
	f.Add([]byte{}, []byte{})
	f.Add(CompressDelta([]byte("abc"), []byte("abd")), []byte("abd"))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		// a as payload: must round-trip exactly against base b.
		blob := CompressDelta(a, b)
		got, err := DecompressDelta(blob, b)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(got, a) {
			t.Fatal("round trip not bit-identical")
		}
		// a as hostile blob against base b: must fail cleanly at worst.
		if cur, err := DecompressDelta(a, b); err == nil && cur == nil && len(a) > 0 {
			t.Fatal("nil reconstruction without error")
		}
	})
}
