package render

import (
	"encoding/binary"
	"math"
	"testing"
)

// BenchmarkCompressFramebuffer tracks the three wire codecs the remote
// service chooses between on a realistic sparsely-lit frame: the
// lossless RLE default, the quantized preview tier, and the XOR-delta
// between two nearly identical frames (the Subscribe-follow regime).
// bytes/pixel is the number that matters for the fan-out economics —
// it is what a subscriber pays per frame at each tier.
func BenchmarkCompressFramebuffer(b *testing.B) {
	const w, h = 512, 512
	fb := quantFrame(b, w, h, 40_000)

	// A neighboring frame for the delta pair: same scene, a few more
	// fragments — the frame-to-frame churn of a correlated series.
	next := quantFrame(b, w, h, 40_000)
	for i := 0; i < 2000; i++ {
		next.Color[(i*4099)%len(next.Color)] += 0.01
	}

	perPixel := func(b *testing.B, blob []byte) {
		b.ReportMetric(float64(len(blob))/(w*h), "bytes/pixel")
		b.SetBytes(int64(len(blob)))
	}

	b.Run("lossless", func(b *testing.B) {
		b.ReportAllocs()
		var blob []byte
		for i := 0; i < b.N; i++ {
			blob = CompressFramebuffer(fb)
		}
		perPixel(b, blob)
	})
	b.Run("quantized", func(b *testing.B) {
		b.ReportAllocs()
		var blob []byte
		for i := 0; i < b.N; i++ {
			blob = CompressFramebufferQuantized(fb)
		}
		perPixel(b, blob)
	})
	// The delta codec's regime is fixed-layout streams (the remote
	// frame encodings), where unchanged regions stay byte-aligned
	// between versions — model that with the raw color planes rather
	// than the RLE blobs, whose op streams shift after the first edit.
	rawPlane := func(fb *Framebuffer) []byte {
		out := make([]byte, 0, 4*len(fb.Color))
		for _, v := range fb.Color {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
		}
		return out
	}
	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		cur := rawPlane(next)
		base := rawPlane(fb)
		var blob []byte
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blob = CompressDelta(cur, base)
		}
		perPixel(b, blob)
	})
	b.Run("decompress/lossless", func(b *testing.B) {
		b.ReportAllocs()
		blob := CompressFramebuffer(fb)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := DecompressFramebuffer(blob); err != nil {
				b.Fatal(err)
			}
		}
		perPixel(b, blob)
	})
	b.Run("decompress/quantized", func(b *testing.B) {
		b.ReportAllocs()
		blob := CompressFramebufferQuantized(fb)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := DecompressFramebufferQuantized(blob); err != nil {
				b.Fatal(err)
			}
		}
		perPixel(b, blob)
	})
}
