package render

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Camera combines a look-at view transform with a perspective
// projection and provides world-to-screen mapping for the rasterizer.
type Camera struct {
	Eye    vec.V3
	View   vec.M4
	Proj   vec.M4
	Near   float64
	Far    float64
	Fovy   float64
	Aspect float64
}

// NewCamera constructs a perspective camera at eye looking at target.
func NewCamera(eye, target, up vec.V3, fovy, aspect, near, far float64) (Camera, error) {
	if fovy <= 0 || fovy >= math.Pi {
		return Camera{}, fmt.Errorf("render: fovy %g out of range", fovy)
	}
	if near <= 0 || far <= near {
		return Camera{}, fmt.Errorf("render: bad near/far %g/%g", near, far)
	}
	if eye.Sub(target).Len() == 0 {
		return Camera{}, fmt.Errorf("render: eye and target coincide")
	}
	return Camera{
		Eye:    eye,
		View:   vec.LookAt(eye, target, up),
		Proj:   vec.Perspective(fovy, aspect, near, far),
		Near:   near,
		Far:    far,
		Fovy:   fovy,
		Aspect: aspect,
	}, nil
}

// LookAtBounds places a camera looking at the center of box b from the
// given direction, far enough away that the whole box is in view. It is
// the convenience every example and benchmark uses to frame a data set.
func LookAtBounds(b vec.AABB, dir vec.V3, fovy, aspect float64) (Camera, error) {
	if b.IsEmpty() {
		return Camera{}, fmt.Errorf("render: cannot frame empty bounds")
	}
	center := b.Center()
	radius := b.Diagonal() / 2
	if radius == 0 {
		radius = 1
	}
	dist := radius / math.Tan(fovy/2) * 1.2
	eye := center.Add(dir.Norm().Scale(dist))
	up := vec.New(0, 1, 0)
	if math.Abs(dir.Norm().Dot(up)) > 0.95 {
		up = vec.New(1, 0, 0)
	}
	return NewCamera(eye, center, up, fovy, aspect, dist/100, dist*10)
}

// viewSpace transforms a world point into view space (camera at origin
// looking down -Z).
func (c Camera) viewSpace(p vec.V3) vec.V3 { return c.View.Apply(p) }

// project maps a view-space point to screen coordinates and depth.
// ok is false when the point is on or behind the near plane.
func (c Camera) project(v vec.V3, w, h int) (sx, sy, depth float64, ok bool) {
	if v.Z >= -c.Near {
		return 0, 0, 0, false
	}
	ndc := c.Proj.Apply(v)
	sx = (ndc.X + 1) / 2 * float64(w)
	sy = (1 - ndc.Y) / 2 * float64(h)
	return sx, sy, ndc.Z, true
}

// WorldToScreen maps a world point directly to screen coordinates.
func (c Camera) WorldToScreen(p vec.V3, w, h int) (sx, sy, depth float64, ok bool) {
	return c.project(c.viewSpace(p), w, h)
}

// ViewDir returns the unit vector from p toward the camera eye.
func (c Camera) ViewDir(p vec.V3) vec.V3 { return c.Eye.Sub(p).Norm() }

// Ray returns the world-space origin and unit direction of the viewing
// ray through pixel (px, py) of a w x h image — the ray generator of
// the volume ray caster.
func (c Camera) Ray(px, py, w, h int) (origin, dir vec.V3) {
	ndcX := 2*(float64(px)+0.5)/float64(w) - 1
	ndcY := 1 - 2*(float64(py)+0.5)/float64(h)
	tan := math.Tan(c.Fovy / 2)
	// View-space direction through the pixel.
	vd := vec.New(ndcX*tan*c.Aspect, ndcY*tan, -1)
	// The view matrix rows hold the camera basis (s, u, -f); its
	// rotation inverse is the transpose.
	s := vec.New(c.View[0], c.View[1], c.View[2])
	u := vec.New(c.View[4], c.View[5], c.View[6])
	nf := vec.New(c.View[8], c.View[9], c.View[10]) // -f
	world := s.Scale(vd.X).Add(u.Scale(vd.Y)).Add(nf.Scale(vd.Z))
	return c.Eye, world.Norm()
}

// ViewZ returns the view-space z coordinate of a world point (negative
// in front of the camera).
func (c Camera) ViewZ(p vec.V3) float64 { return c.viewSpace(p).Z }

// NDCDepth converts a view-space z (negative in front of the camera)
// to the normalized-device depth stored in the depth buffer, so volume
// marching can compare against rasterized geometry.
func (c Camera) NDCDepth(viewZ float64) float64 {
	n, f := c.Near, c.Far
	return ((f+n)/(n-f)*viewZ + 2*f*n/(n-f)) / -viewZ
}

// PixelRadius returns the approximate screen-space radius in pixels of
// a sphere of worldRadius at world position p — used to size point
// splats and self-orienting strip widths consistently with perspective.
func (c Camera) PixelRadius(p vec.V3, worldRadius float64, h int) float64 {
	d := c.viewSpace(p)
	dist := -d.Z
	if dist <= c.Near {
		return 0
	}
	return worldRadius / (dist * math.Tan(c.Fovy/2)) * float64(h) / 2
}

// DepthRange returns a conservative normalized-device depth interval
// covering every point inside b — the near/far bound of a sort-last
// sub-volume render pass clipped against an octree cell's box
// (Rasterizer.ClipNear/ClipFar). View-space z is affine in world
// position, so its extrema over a box lie at the corners; the corner
// depths are widened by a relative margin so a point projected through
// the independent project() path can never round outside the interval.
// ok is false when any corner reaches the near plane (no bounded
// interval is safe there) or the box is empty.
func (c Camera) DepthRange(b vec.AABB) (near, far float32, ok bool) {
	if b.IsEmpty() {
		return 0, 0, false
	}
	xs := [2]float64{b.Min.X, b.Max.X}
	ys := [2]float64{b.Min.Y, b.Max.Y}
	zs := [2]float64{b.Min.Z, b.Max.Z}
	dMin, dMax := math.Inf(1), math.Inf(-1)
	for i := 0; i < 8; i++ {
		p := vec.New(xs[i&1], ys[(i>>1)&1], zs[(i>>2)&1])
		vz := c.ViewZ(p)
		if vz >= -c.Near {
			return 0, 0, false
		}
		d := c.NDCDepth(vz)
		if d < dMin {
			dMin = d
		}
		if d > dMax {
			dMax = d
		}
	}
	pad := (math.Abs(dMin)+math.Abs(dMax)+(dMax-dMin))*1e-6 + 1e-12
	return float32(dMin - pad), float32(dMax + pad), true
}
