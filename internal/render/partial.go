package render

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Depth-augmented partial framebuffer codec — the wire format of the
// sort-last distributed render path. A worker that rasterized one
// octree cell's sub-volume produces an image that is mostly background
// (zero color, +Inf depth) outside the cell's screen footprint, so the
// codec ships only the bounding rectangle of the covered pixels, each
// with both its RGBA words and its depth word (the compositor needs
// depth per pixel to merge partials), RLE-compressed with the same
// word-level op stream as the full-framebuffer codec in rle.go. The
// round trip is lossless: a decoded partial is bit-identical to the
// worker's framebuffer.
//
// Layout (little-endian):
//
//	magic "ACPB" | u32 version | u32 w | u32 h | u32 seq |
//	u32 x0 | u32 y0 | u32 rw | u32 rh |
//	RLE(color words of rect, rw*rh*4) | RLE(depth words of rect, rw*rh)
//
// rw = rh = 0 encodes an empty partial (nothing rasterized — a cell
// entirely off screen); no plane data follows. seq is the partition's
// submission-order index, which fixes its place in the deterministic
// composite (compositor.CompositeDepth).

var magicPB = [4]byte{'A', 'C', 'P', 'B'}

const pbCodecVersion = 1

// PartialFrame is one decoded sort-last partial: a worker's
// contribution to a composited frame. FB is a full-size framebuffer
// whose pixels outside the covered rectangle hold the cleared
// background; the rectangle fields let a compositor skip the
// untouched remainder.
type PartialFrame struct {
	FB     *Framebuffer
	Seq    int // partition index in splat submission order
	X0, Y0 int // covered rectangle origin
	RW, RH int // covered rectangle size; 0x0 = empty partial
}

// CompressPartial encodes fb as a depth-augmented partial framebuffer
// tagged with the partition sequence number seq. The covered
// rectangle is the bounding box of the pixels that differ from the
// cleared background (any color word non-zero, or depth finite).
func CompressPartial(fb *Framebuffer, seq int) []byte {
	return AppendPartial(nil, fb, seq)
}

// AppendPartial is CompressPartial appending to dst — the
// pooled-buffer form the render worker kernel uses.
func AppendPartial(dst []byte, fb *Framebuffer, seq int) []byte {
	inf := math.Float32bits(float32(math.Inf(1)))
	x0, y0, x1, y1 := fb.W, fb.H, -1, -1
	for y := 0; y < fb.H; y++ {
		row := y * fb.W
		for x := 0; x < fb.W; x++ {
			i := row + x
			ci := i * 4
			if math.Float32bits(fb.Depth[i]) == inf &&
				fb.Color[ci] == 0 && fb.Color[ci+1] == 0 &&
				fb.Color[ci+2] == 0 && fb.Color[ci+3] == 0 {
				continue
			}
			if x < x0 {
				x0 = x
			}
			if x > x1 {
				x1 = x
			}
			if y < y0 {
				y0 = y
			}
			if y > y1 {
				y1 = y
			}
		}
	}
	rw, rh := 0, 0
	if x1 >= 0 {
		rw, rh = x1-x0+1, y1-y0+1
	} else {
		x0, y0 = 0, 0
	}
	need := 36 + rw*rh*4
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	out := dst
	out = append(out, magicPB[:]...)
	out = binary.LittleEndian.AppendUint32(out, pbCodecVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(fb.W))
	out = binary.LittleEndian.AppendUint32(out, uint32(fb.H))
	out = binary.LittleEndian.AppendUint32(out, uint32(seq))
	out = binary.LittleEndian.AppendUint32(out, uint32(x0))
	out = binary.LittleEndian.AppendUint32(out, uint32(y0))
	out = binary.LittleEndian.AppendUint32(out, uint32(rw))
	out = binary.LittleEndian.AppendUint32(out, uint32(rh))
	if rw == 0 {
		return out
	}
	// Gather the rectangle into contiguous planes so the shared RLE
	// core applies unchanged.
	color := make([]float32, rw*rh*4)
	depth := make([]float32, rw*rh)
	for y := 0; y < rh; y++ {
		src := (y0+y)*fb.W + x0
		copy(color[y*rw*4:(y+1)*rw*4], fb.Color[src*4:(src+rw)*4])
		copy(depth[y*rw:(y+1)*rw], fb.Depth[src:src+rw])
	}
	out = appendRLE(out, color)
	out = appendRLE(out, depth)
	return out
}

// DecompressPartial decodes a blob produced by CompressPartial.
// Malformed input returns an error; it never panics.
func DecompressPartial(data []byte) (*PartialFrame, error) {
	le := binary.LittleEndian
	if len(data) < 36 {
		return nil, fmt.Errorf("render: partial framebuffer blob truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != magicPB {
		return nil, fmt.Errorf("render: bad partial framebuffer magic %q", data[:4])
	}
	if v := le.Uint32(data[4:]); v != pbCodecVersion {
		return nil, fmt.Errorf("render: unsupported partial framebuffer codec version %d", v)
	}
	w, h := int(le.Uint32(data[8:])), int(le.Uint32(data[12:]))
	// Bound the framebuffer a blob can demand (the same 4096-cap the
	// service's render params enforce): a 36-byte header must not force
	// an arbitrary allocation.
	if w < 1 || h < 1 || w > 4096 || h > 4096 || int64(w)*int64(h) > 1<<22 {
		return nil, fmt.Errorf("render: implausible partial framebuffer size %dx%d", w, h)
	}
	seq := int(le.Uint32(data[16:]))
	x0, y0 := int(le.Uint32(data[20:])), int(le.Uint32(data[24:]))
	rw, rh := int(le.Uint32(data[28:])), int(le.Uint32(data[32:]))
	if (rw == 0) != (rh == 0) || rw < 0 || rh < 0 ||
		x0 < 0 || y0 < 0 || x0+rw > w || y0+rh > h {
		return nil, fmt.Errorf("render: partial rect %dx%d at (%d,%d) outside %dx%d frame", rw, rh, x0, y0, w, h)
	}
	// The codec carries no checksum (the wire protocol's frame CRC
	// covers it in transit), so bound the plane allocation by what the
	// input could possibly encode: the densest RLE op yields 129 words
	// per 5 bytes.
	if words := int64(rw) * int64(rh) * 5; (int64(len(data))-36)*129 < words*5 {
		return nil, fmt.Errorf("render: %d-byte blob cannot encode a %dx%d partial rect", len(data), rw, rh)
	}
	fb, err := NewFramebuffer(w, h)
	if err != nil {
		return nil, err
	}
	p := &PartialFrame{FB: fb, Seq: seq, X0: x0, Y0: y0, RW: rw, RH: rh}
	rest := data[36:]
	if rw > 0 {
		color := make([]float32, rw*rh*4)
		depth := make([]float32, rw*rh)
		if rest, err = decodeRLE(rest, color); err != nil {
			return nil, fmt.Errorf("render: partial color plane: %w", err)
		}
		if rest, err = decodeRLE(rest, depth); err != nil {
			return nil, fmt.Errorf("render: partial depth plane: %w", err)
		}
		for y := 0; y < rh; y++ {
			dst := (y0+y)*w + x0
			copy(fb.Color[dst*4:(dst+rw)*4], color[y*rw*4:(y+1)*rw*4])
			copy(fb.Depth[dst:dst+rw], depth[y*rw:(y+1)*rw])
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("render: %d trailing bytes after partial framebuffer", len(rest))
	}
	return p, nil
}
