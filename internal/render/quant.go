package render

import (
	"encoding/binary"
	"fmt"
)

// Quantized framebuffer codec — the preview quality tier of the remote
// service's thin-client mode. Each pixel's RGBA is clamped to [0,1]
// and quantized to 8 bits per channel, packed into one uint32 word,
// and RLE-compressed with the shared op stream; the depth plane is
// dropped entirely. That is 4 bytes/pixel raw against the lossless
// codec's 20 — ~5x smaller before RLE — at preview-grade fidelity:
// the tier is LOSSY relative to the float framebuffer (quantized
// color, no depth) and must never be selected by default. It is,
// however, stable under its own round trip: decode → re-encode →
// decode is bit-identical, which is what the tests pin.
//
// Layout (little-endian):
//
//	magic "ACFQ" | u32 version | u32 w | u32 h |
//	RLE(packed RGBA words, w*h)
//
// with each word R | G<<8 | B<<16 | A<<24, channels quantized by the
// same clamp as Framebuffer.ToImage.

var magicFBQ = [4]byte{'A', 'C', 'F', 'Q'}

const fbqCodecVersion = 1

// CompressFramebufferQuantized encodes fb's color plane at 8 bits per
// channel (lossy; depth is dropped).
func CompressFramebufferQuantized(fb *Framebuffer) []byte {
	words := make([]uint32, fb.W*fb.H)
	for i := range words {
		c := fb.Color[i*4:]
		words[i] = uint32(clamp8(c[0])) |
			uint32(clamp8(c[1]))<<8 |
			uint32(clamp8(c[2]))<<16 |
			uint32(clamp8(c[3]))<<24
	}
	out := make([]byte, 0, 16+len(words))
	out = append(out, magicFBQ[:]...)
	out = binary.LittleEndian.AppendUint32(out, fbqCodecVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(fb.W))
	out = binary.LittleEndian.AppendUint32(out, uint32(fb.H))
	return appendRLEWords(out, words)
}

// DecompressFramebufferQuantized decodes a blob produced by
// CompressFramebufferQuantized into a framebuffer with channel values
// v/255 and depth cleared to +Inf. Malformed input returns an error;
// it never panics.
func DecompressFramebufferQuantized(data []byte) (*Framebuffer, error) {
	le := binary.LittleEndian
	if len(data) < 16 {
		return nil, fmt.Errorf("render: quantized framebuffer blob truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != magicFBQ {
		return nil, fmt.Errorf("render: bad quantized framebuffer magic %q", data[:4])
	}
	if v := le.Uint32(data[4:]); v != fbqCodecVersion {
		return nil, fmt.Errorf("render: unsupported quantized framebuffer codec version %d", v)
	}
	w, h := int(le.Uint32(data[8:])), int(le.Uint32(data[12:]))
	if w < 1 || h < 1 || w > 1<<16 || h > 1<<16 || int64(w)*int64(h) > 1<<28 {
		return nil, fmt.Errorf("render: implausible quantized framebuffer size %dx%d", w, h)
	}
	words := make([]uint32, w*h)
	rest, err := decodeRLEWords(data[16:], words)
	if err != nil {
		return nil, fmt.Errorf("render: quantized color plane: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("render: %d trailing bytes after quantized framebuffer", len(rest))
	}
	fb, err := NewFramebuffer(w, h)
	if err != nil {
		return nil, err
	}
	for i, word := range words {
		fb.Color[i*4+0] = float32(word&0xff) / 255
		fb.Color[i*4+1] = float32(word>>8&0xff) / 255
		fb.Color[i*4+2] = float32(word>>16&0xff) / 255
		fb.Color[i*4+3] = float32(word>>24&0xff) / 255
	}
	return fb, nil
}

// DecodeFramebuffer decodes either framebuffer wire format, sniffing
// the magic — what a thin client calls when the server chose the codec
// from a negotiated quality tier.
func DecodeFramebuffer(data []byte) (*Framebuffer, error) {
	if len(data) >= 4 && [4]byte(data[:4]) == magicFBQ {
		return DecompressFramebufferQuantized(data)
	}
	return DecompressFramebuffer(data)
}
