package remote

import (
	"testing"
	"time"
)

// The end-to-end in-situ acceptance tests (a live core.StreamFrames
// run publishing through a LiveRing into a served Service) live at the
// repository root (insitu_test.go): core sits above remote in the
// layering — it places distributed stages on remote workers — so this
// package's tests cannot import it.

// TestResubscribe: closing a subscription and subscribing again on
// the same connection re-points the server's notifier at the new
// request, so the new feed still sees publishes.
func TestResubscribe(t *testing.T) {
	reps := testReps(t, 2)
	ring, err := NewLiveRing(4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewService("127.0.0.1:0", ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := dial(t, srv.Addr())

	first, err := cli.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if n := <-first.Updates; n != 0 {
		t.Fatalf("initial update %d, want 0", n)
	}
	first.Close()

	second, err := cli.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if n := <-second.Updates; n != 0 {
		t.Fatalf("re-subscribe initial update %d, want 0", n)
	}
	if err := ring.Publish(0, reps[0]); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-second.Updates:
		if n != 1 {
			t.Errorf("post-resubscribe update %d, want 1", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("re-subscribed feed never notified")
	}
}

// TestLiveRingEviction: the ring keeps only the newest frames, List
// reports the surviving range, and evicted fetches fail cleanly.
func TestLiveRingEviction(t *testing.T) {
	reps := testReps(t, 5)
	ring, err := NewLiveRing(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if err := ring.Publish(i, rep); err != nil {
			t.Fatal(err)
		}
	}
	if got := ring.NumFrames(); got != 5 {
		t.Errorf("NumFrames = %d, want 5", got)
	}
	if got := ring.FirstFrame(); got != 3 {
		t.Errorf("FirstFrame = %d, want 3", got)
	}
	srv, err := NewService("127.0.0.1:0", ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := dial(t, srv.Addr())
	li, err := cli.List()
	if err != nil {
		t.Fatal(err)
	}
	if li.Frames != 5 || li.First != 3 || !li.Live {
		t.Errorf("List = %+v, want 5 frames from 3, live", li)
	}
	if _, _, _, err := cli.FetchFrame(0); err == nil {
		t.Error("evicted frame fetched without error")
	}
	if rep, _, _, err := cli.FetchFrame(4); err != nil || rep.NumPoints() != reps[4].NumPoints() {
		t.Errorf("latest frame fetch: %v", err)
	}

	// Out-of-order publishes are rejected.
	if err := ring.Publish(99, reps[0]); err == nil {
		t.Error("out-of-order publish accepted")
	}
}
