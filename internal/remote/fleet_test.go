package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fieldline"
	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/pipeline"
	"repro/internal/vec"
)

// fastFleetRetry keeps failover tests fast and deterministic (no
// jitter, millisecond backoffs).
var fastFleetRetry = pipeline.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: -1}

func fleetNoLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func extractFixture() (octree.Config, hybrid.ExtractConfig) {
	tcfg := octree.DefaultConfig()
	tcfg.Workers = 2
	return tcfg, hybrid.ExtractConfig{VolumeRes: 8, Budget: 600, Workers: 2}
}

// wantExtracts computes the local, bit-exact reference encodings for
// frames seeded 0..n-1.
func wantExtracts(t *testing.T, n, pts int) [][]byte {
	t.Helper()
	tcfg, ecfg := extractFixture()
	want := make([][]byte, n)
	for f := range want {
		tree, err := octree.Build(testPoints(int64(f), pts), tcfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := hybrid.Extract(tree, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		want[f] = rep.AppendBinary(nil)
	}
	return want
}

// runFleetExtracts pushes frames 0..n-1 through the fleet
// concurrently and checks every reply against the local reference.
func runFleetExtracts(t *testing.T, fl *Fleet, n, pts int, want [][]byte) {
	t.Helper()
	tcfg, ecfg := extractFixture()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for f := 0; f < n; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rep, err := fl.ComputeExtract(context.Background(), testPoints(int64(f), pts), tcfg, ecfg)
			if err != nil {
				errs <- fmt.Errorf("frame %d: %w", f, err)
				return
			}
			if !bytes.Equal(rep.AppendBinary(nil), want[f]) {
				errs <- fmt.Errorf("frame %d: fleet extraction not bit-identical", f)
			}
		}(f)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFleetStripesAcrossWorkers: a healthy 3-worker fleet serves a
// concurrent frame burst bit-identically to the local pair, and every
// member actually receives work (striping, not failover, spreads the
// load).
func TestFleetStripesAcrossWorkers(t *testing.T) {
	var addrs []string
	for i := 0; i < 3; i++ {
		addrs = append(addrs, startWorker(t).Addr())
	}
	before := runtime.NumGoroutine() // workers up, fleet not yet built
	fl, err := NewFleet(addrs, FleetOptions{Kernel: KernelHybridExtract, Window: 2, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 12
	runFleetExtracts(t, fl, frames, 1500, wantExtracts(t, frames, 1500))
	var total int64
	for _, st := range fl.Stats() {
		if st.State != WorkerHealthy {
			t.Errorf("worker %s state = %v, want healthy", st.Addr, st.State)
		}
		if st.Dispatched == 0 {
			t.Errorf("worker %s received no dispatches (no striping)", st.Addr)
		}
		total += st.Dispatched
	}
	if total != frames {
		t.Errorf("fleet dispatched %d requests, want %d", total, frames)
	}
	fl.Close()
	fleetNoLeaks(t, before)
}

// failoverFleet builds a 2-worker fleet whose first member's
// connections carry the given faults; frames must still all complete,
// bit-identically, via the clean member.
func failoverFleet(t *testing.T, read, write faultPoint, timeout time.Duration) *Fleet {
	t.Helper()
	faulty := startWorker(t)
	clean := startWorker(t)
	fl, err := NewFleet([]string{faulty.Addr(), clean.Addr()}, FleetOptions{
		Kernel:         KernelHybridExtract,
		Window:         2,
		RequestTimeout: timeout,
		Retry:          fastFleetRetry,
		EjectAfter:     1,
		ProbeInterval:  -1,
		Dial:           faultyDial(faulty.Addr(), read, write),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fl.Close() })
	return fl
}

// checkFailover asserts the faulty member was ejected and the clean
// one served frames.
func checkFailover(t *testing.T, fl *Fleet) {
	t.Helper()
	st := fl.Stats()
	if st[0].State != WorkerEjected {
		t.Errorf("faulty worker state = %v, want ejected", st[0].State)
	}
	if st[0].Failures == 0 {
		t.Error("faulty worker recorded no failures")
	}
	if st[1].State != WorkerHealthy || st[1].Dispatched == 0 {
		t.Errorf("clean worker state = %v dispatched = %d, want a healthy worker that served frames",
			st[1].State, st[1].Dispatched)
	}
}

// The kernel-advertisement exchange ends at read offset 68 / write
// offset 25 on a fresh connection (12- and 8-byte handshakes plus the
// Kernels round trip), so faults at offset 100 land deterministically
// inside the first Compute exchange.

// TestFleetFailoverCorruptReply: a worker whose replies corrupt on
// the wire (CRC mismatch severs the session) forfeits its frames to
// the surviving member; output stays complete and bit-identical.
func TestFleetFailoverCorruptReply(t *testing.T) {
	fl := failoverFleet(t, faultPoint{kind: faultCorrupt, offset: 100}, faultPoint{}, -1)
	const frames = 8
	runFleetExtracts(t, fl, frames, 1500, wantExtracts(t, frames, 1500))
	checkFailover(t, fl)
}

// TestFleetFailoverConnReset: a worker whose connection resets
// mid-request is ejected after the transport failure and its frames
// re-dispatch.
func TestFleetFailoverConnReset(t *testing.T) {
	fl := failoverFleet(t, faultPoint{}, faultPoint{kind: faultReset, offset: 100}, -1)
	const frames = 8
	runFleetExtracts(t, fl, frames, 1500, wantExtracts(t, frames, 1500))
	checkFailover(t, fl)
}

// TestFleetFailoverStalledWorker: a worker that accepts requests but
// never replies trips the per-request deadline; the frames it was
// holding re-dispatch to the surviving member.
func TestFleetFailoverStalledWorker(t *testing.T) {
	fl := failoverFleet(t, faultPoint{kind: faultStall, offset: 100}, faultPoint{}, time.Second)
	const frames = 6
	runFleetExtracts(t, fl, frames, 1500, wantExtracts(t, frames, 1500))
	checkFailover(t, fl)
}

// TestFleetFailoverDroppedReplies: a worker whose replies vanish
// (bytes silently swallowed) behaves like a stall — deadline, eject,
// re-dispatch.
func TestFleetFailoverDroppedReplies(t *testing.T) {
	fl := failoverFleet(t, faultPoint{kind: faultDrop, offset: 100}, faultPoint{}, time.Second)
	const frames = 6
	runFleetExtracts(t, fl, frames, 1500, wantExtracts(t, frames, 1500))
	checkFailover(t, fl)
}

// TestFleetWorkerCrashMidBurst: a member killed outright mid-burst
// (not fault-injected — the process is gone) loses no frames.
func TestFleetWorkerCrashMidBurst(t *testing.T) {
	doomed := startWorker(t)
	survivor := startWorker(t)
	fl, err := NewFleet([]string{doomed.Addr(), survivor.Addr()}, FleetOptions{
		Kernel:        KernelHybridExtract,
		Window:        2,
		Retry:         fastFleetRetry,
		EjectAfter:    1,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	const frames = 10
	want := wantExtracts(t, frames, 1500)
	// Kill the first member once a couple of frames have completed.
	var done sync.WaitGroup
	done.Add(1)
	go func() {
		defer done.Done()
		time.Sleep(20 * time.Millisecond)
		doomed.Close()
	}()
	runFleetExtracts(t, fl, frames, 1500, want)
	done.Wait()
	st := fl.Stats()
	if st[1].State != WorkerHealthy {
		t.Errorf("survivor state = %v, want healthy", st[1].State)
	}
}

// TestFleetAllWorkersDown: when every member is gone the stream gets
// a clean error once the retry policy is spent — no hang, no leak.
func TestFleetAllWorkersDown(t *testing.T) {
	before := runtime.NumGoroutine()
	w := startWorker(t)
	fl, err := NewFleet([]string{w.Addr()}, FleetOptions{
		Kernel:        KernelHybridExtract,
		Retry:         fastFleetRetry,
		EjectAfter:    1,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	tcfg, ecfg := extractFixture()
	_, err = fl.ComputeExtract(context.Background(), testPoints(0, 500), tcfg, ecfg)
	if err == nil {
		t.Fatal("ComputeExtract succeeded against a dead fleet")
	}
	if !strings.Contains(err.Error(), "fleet compute failed") {
		t.Errorf("error = %v, want a fleet compute failure", err)
	}
	fl.Close()
	fleetNoLeaks(t, before)
}

// TestFleetRejoinAfterEjection: an ejected member that comes back is
// re-probed, re-verified, and readmitted — and serves frames again.
func TestFleetRejoinAfterEjection(t *testing.T) {
	a := startWorker(t)
	b := startWorker(t)
	// a dies and is replaced by a2 on the same address, so the accept
	// goroutine count nets out against this snapshot.
	before := runtime.NumGoroutine()
	addrA := a.Addr()
	fl, err := NewFleet([]string{addrA, b.Addr()}, FleetOptions{
		Kernel:        KernelHybridExtract,
		Window:        2,
		Retry:         fastFleetRetry,
		EjectAfter:    1,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	a.Close()
	const frames = 6
	runFleetExtracts(t, fl, frames, 1000, wantExtracts(t, frames, 1000))
	if st := fl.Stats(); st[0].State != WorkerEjected {
		t.Fatalf("dead worker state = %v, want ejected", st[0].State)
	}

	// Resurrect the worker on the same address; the probe must bring
	// it back.
	a2, err := NewWorker(addrA)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a2.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fl.Stats()
		if st[0].State == WorkerHealthy && st[0].Rejoins == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never rejoined: %+v", st[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	runFleetExtracts(t, fl, frames, 1000, wantExtracts(t, frames, 1000))
	if st := fl.Stats(); st[0].State != WorkerHealthy {
		t.Errorf("rejoined worker state = %v, want healthy", st[0].State)
	}
	fl.Close()
	fleetNoLeaks(t, before)
}

// TestNewFleetMisprovisioned: a reachable worker that does not host
// the fleet's kernel is a configuration error, not a degraded member.
func TestNewFleetMisprovisioned(t *testing.T) {
	w := startWorker(t)
	_, err := NewFleet([]string{w.Addr()}, FleetOptions{Kernel: "no.such.kernel.v1", ProbeInterval: -1})
	if err == nil || !strings.Contains(err.Error(), "does not host kernel") {
		t.Fatalf("NewFleet = %v, want a mis-provisioning error", err)
	}
}

// TestNewFleetPartiallyReachable: an unreachable member starts
// ejected; the fleet still forms around the reachable one. A fleet
// with no reachable member at all fails construction.
func TestNewFleetPartiallyReachable(t *testing.T) {
	w := startWorker(t)
	dead, err := NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr()
	dead.Close()

	fl, err := NewFleet([]string{deadAddr, w.Addr()}, FleetOptions{Kernel: KernelHybridExtract, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	st := fl.Stats()
	if st[0].State != WorkerEjected || st[1].State != WorkerHealthy {
		t.Errorf("states = %v/%v, want ejected/healthy", st[0].State, st[1].State)
	}
	fl.Close()

	if _, err := NewFleet([]string{deadAddr}, FleetOptions{Kernel: KernelHybridExtract, ProbeInterval: -1}); err == nil {
		t.Error("NewFleet built a fleet with zero reachable members")
	}
}

// TestIsTransient pins the retry taxonomy: transport trouble and
// draining workers re-dispatch; deterministic application errors and
// caller cancellation do not.
func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, true},
		{errFleetClosed, false},
		{errNoWorkers, true},
		{&WireError{Code: ErrCodeUnavailable, Msg: "draining"}, true},
		{&WireError{Code: ErrCodeBadRequest, Msg: "bad"}, false},
		{&WireError{Code: ErrCodeUnknownKernel, Msg: "nope"}, false},
		{&WireError{Code: ErrCodeGeneric, Msg: "kernel failed"}, false},
		{errors.New("read tcp: connection reset by peer"), true},
		{fmt.Errorf("frame 3: %w", context.Canceled), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestWorkerKernelsAdvertised: the Kernels verb lists the built-in
// kernel set, sorted.
func TestWorkerKernelsAdvertised(t *testing.T) {
	w := startWorker(t)
	cli := dial(t, w.Addr())
	names, err := cli.Kernels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{KernelFieldlineTrace, KernelHybridExtract, KernelRenderPartial}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Kernels = %v, want %v", names, want)
	}
}

// TestComputeTraceBitIdentical: the field-line trace kernel
// reproduces the local TraceAll exactly — full double precision over
// the wire — for both an open dipole trace and a closed vortex loop.
func TestComputeTraceBitIdentical(t *testing.T) {
	w := startWorker(t)
	cli := dial(t, w.Addr())

	cases := []struct {
		name  string
		spec  FieldSpec
		seeds []vec.V3
		cfg   fieldline.Config
	}{
		{
			name:  "dipole",
			spec:  FieldSpec{Kind: FieldDipole, Params: [4]float64{0, 0, 1}},
			seeds: []vec.V3{vec.New(1, 0, 0.2), vec.New(0, 1.2, -0.3), vec.New(-0.8, 0.4, 0.5)},
			cfg:   fieldline.Config{Step: 0.01, MaxSteps: 400, MinMag: 1e-6},
		},
		{
			name:  "vortex-closed",
			spec:  FieldSpec{Kind: FieldVortex, Params: [4]float64{0, 0, 1}},
			seeds: []vec.V3{vec.New(1, 0, 0), vec.New(0, 2, 0.1)},
			cfg:   fieldline.Config{Step: 0.02, MaxSteps: 2000, MinMag: 1e-9, CloseLoop: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := tc.spec.Field()
			if err != nil {
				t.Fatal(err)
			}
			want, err := fieldline.TraceAll(f, tc.seeds, tc.cfg, 1, 2)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cli.ComputeTrace(context.Background(), tc.spec, tc.seeds, tc.cfg, 1, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Error("remote trace not bit-identical to local TraceAll")
			}
			if tc.cfg.CloseLoop {
				closed := false
				for _, ln := range got {
					closed = closed || ln.Closed
				}
				if !closed {
					t.Error("vortex trace closed no loops (CloseLoop did not survive the wire)")
				}
			}
		})
	}
}

// TestFleetComputeTrace: the trace kernel also stripes over a fleet.
func TestFleetComputeTrace(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		addrs = append(addrs, startWorker(t).Addr())
	}
	fl, err := NewFleet(addrs, FleetOptions{Kernel: KernelFieldlineTrace, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	spec := FieldSpec{Kind: FieldUniform, Params: [4]float64{0.3, -0.2, 1}}
	seeds := []vec.V3{vec.New(0, 0, 0), vec.New(1, 1, 1)}
	cfg := fieldline.Config{Step: 0.05, MaxSteps: 50, MinMag: 1e-9}
	f, _ := spec.Field()
	want, err := fieldline.TraceAll(f, seeds, cfg, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fl.ComputeTrace(context.Background(), spec, seeds, cfg, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("fleet trace not bit-identical to local TraceAll")
	}
}

// TestWorkerGracefulDrain: Shutdown lets in-flight kernels finish and
// answers new Computes with the retryable unavailable code, so a
// fleet hands the refused frames to surviving members.
func TestWorkerGracefulDrain(t *testing.T) {
	w := startWorker(t)
	release := make(chan struct{})
	var entered sync.Once
	started := make(chan struct{})
	w.Register("slow.v1", func(ctx context.Context, req []byte) ([]byte, error) {
		entered.Do(func() { close(started) })
		select {
		case <-release:
			return append(getBytes(0), 0x7), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	cli := dial(t, w.Addr())

	slowErr := make(chan error, 1)
	go func() {
		out, err := cli.Compute(context.Background(), "slow.v1", nil)
		if err == nil && (len(out) != 1 || out[0] != 0x7) {
			err = fmt.Errorf("slow kernel returned %v", out)
		}
		slowErr <- err
	}()
	<-started

	drained := make(chan error, 1)
	go func() { drained <- w.Shutdown(context.Background()) }()

	// Drain mode flips asynchronously: poll with a kernel the worker
	// does not host — answered UnknownKernel before the flip,
	// Unavailable after — so the poll never parks on the slow kernel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := cli.Compute(context.Background(), "nope.v1", nil)
		if CodeOf(err) == ErrCodeUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never started refusing requests (last err: %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	if err := <-slowErr; err != nil {
		t.Errorf("in-flight kernel did not survive the drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Errorf("Shutdown = %v, want nil", err)
	}
	if _, err := Dial(w.Addr()); err == nil {
		t.Error("drained worker still accepts new connections")
	}
}
