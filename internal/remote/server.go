package remote

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// server is the connection plumbing shared by the two service types
// (Service, the store server; Worker, the compute server): it owns the
// listening socket, tracks live connections, and hands each accepted
// connection to the service's handler on its own goroutine. Close
// severs everything and waits for all handlers to unwind.
type server struct {
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// newServer listens on addr and serves each accepted connection with
// handle.
func newServer(addr string, handle func(net.Conn)) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	s := &server{ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop(handle)
	return s, nil
}

// Addr returns the listening address.
func (s *server) Addr() string { return s.ln.Addr().String() }

// StopAccepting closes the listening socket without touching live
// connections — the first half of a graceful drain. Close remains
// responsible for severing connections and joining handlers.
func (s *server) StopAccepting() {
	s.ln.Close()
}

// Close stops accepting, severs every connection, and waits for all
// handlers to unwind.
func (s *server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	if errors.Is(err, net.ErrClosed) {
		// StopAccepting already closed the listener; that is not a
		// failure of this Close.
		return nil
	}
	return err
}

func (s *server) acceptLoop(handle func(net.Conn)) {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			handle(conn)
		}()
	}
}

// connWriter serializes response writes from concurrent request
// handlers and the subscription notifier onto one connection. A write
// error severs the connection: the response stream can no longer be
// trusted, and closing unblocks the read loop so the handler unwinds.
type connWriter struct {
	conn net.Conn
	mu   sync.Mutex
	bw   *bufio.Writer
}

func newConnWriter(conn net.Conn) *connWriter {
	return &connWriter{conn: conn, bw: bufio.NewWriterSize(conn, 1<<16)}
}

func (w *connWriter) send(reqID uint64, op byte, payload []byte) error {
	return w.sendVec(reqID, op, payload)
}

// sendVec frames the segments as one payload without joining them —
// the broadcast path writes a shared frame encoding to N connections
// with only a per-connection header built fresh.
func (w *connWriter) sendVec(reqID uint64, op byte, segs ...[]byte) error {
	w.mu.Lock()
	err := writeMessageVec(w.bw, reqID, op, segs...)
	w.mu.Unlock()
	if err != nil {
		w.conn.Close()
	}
	return err
}

// sendErr answers a request with a typed error reply (WireError code +
// message); non-WireErrors go out as ErrCodeGeneric.
func (w *connWriter) sendErr(reqID uint64, err error) error {
	return w.send(reqID, opError, encodeWireError(err))
}
