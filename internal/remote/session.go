package remote

import (
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/pipeline"
)

// This file is the server half of the protocol v5 session-resilience
// layer: per-connection sessions with bounded, policy-governed send
// queues, so the service sheds or degrades slow viewers instead of
// letting one stalled connection wedge the broadcast path — the ISAAC
// idiom of degrading viewers rather than backpressuring the
// simulation. The client half (redial, re-subscribe, resume) lives in
// reconnect.go.

// SlowPolicy selects what the service does when a subscriber's bounded
// send queue overflows — i.e. when the connection cannot drain pushes
// as fast as the pipeline publishes frames. Whatever the policy, the
// publisher itself never blocks: LiveRing.Publish's watcher callback
// only enqueues.
type SlowPolicy uint8

const (
	// SlowSkip (the default) drops the oldest queued pushes and keeps
	// the newest — the subscriber skips to the live head when it
	// catches up, exactly the latest-wins contract the client-side
	// Subscription channels already expose.
	SlowSkip SlowPolicy = iota
	// SlowDegrade switches an inline-payload subscriber to the cheap
	// tier while it is behind: queued pushes collapse to the newest and
	// go out as count-only notifies (no frame payload) until the queue
	// drains, so a struggling viewer keeps a live frame counter and
	// catches frames back up via GetDelta at its own pace.
	SlowDegrade
	// SlowEvict drops the subscriber: a best-effort retryable
	// ErrCodeUnavailable reply is sent (bounded by a write deadline —
	// the connection may already be wedged) and the connection is
	// closed. A ReconnectClient classifies the loss transient and
	// redials; the freed queue protects everyone else.
	SlowEvict
)

func (p SlowPolicy) String() string {
	switch p {
	case SlowSkip:
		return "skip"
	case SlowDegrade:
		return "degrade"
	case SlowEvict:
		return "evict"
	}
	return "unknown"
}

// Defaults for ServiceOptions' zero values.
const (
	// DefaultSendQueue bounds each subscriber's pending-push queue: a
	// briefly slow viewer still sees every frame, a persistently slow
	// one hits the SlowPolicy.
	DefaultSendQueue = 8
	// DefaultServiceIdleTimeout reaps connections that go silent. v5
	// clients heartbeat every DefaultHeartbeatInterval, so a live
	// client never comes close; a dead peer holds a session (and its
	// blocked send queue) for at most this long.
	DefaultServiceIdleTimeout = 2 * time.Minute
)

// ServiceOptions tune the v5 overload protection. The zero value keeps
// every historical behavior: unlimited sessions and renders, skip
// (latest-wins) slow-subscriber handling, and the default idle reaper.
type ServiceOptions struct {
	// MaxSessions bounds concurrent client connections; 0 means
	// unlimited. Over-limit connections still handshake (the protocol
	// has no refusal hello) but answer every verb except Ping with a
	// retryable ErrCodeUnavailable — admission refuses loudly rather
	// than degrading everyone already admitted.
	MaxSessions int
	// MaxRenders bounds concurrent server-side renders across all
	// sessions; 0 means unlimited. A render arriving while all slots
	// are busy answers ErrCodeUnavailable instead of queueing without
	// bound behind the rasterizer.
	MaxRenders int
	// IdleTimeout reaps a connection that sends nothing (not even a
	// heartbeat) for this long. 0 means DefaultServiceIdleTimeout;
	// negative disables the reaper.
	IdleTimeout time.Duration
	// SendQueue bounds each subscriber's pending-push queue (0 means
	// DefaultSendQueue, minimum 1).
	SendQueue int
	// Slow selects the overflow policy for subscribers whose queue
	// fills: SlowSkip, SlowDegrade or SlowEvict.
	Slow SlowPolicy
}

func (o ServiceOptions) sendQueue() int {
	if o.SendQueue <= 0 {
		return DefaultSendQueue
	}
	return o.SendQueue
}

func (o ServiceOptions) idleTimeout() time.Duration {
	switch {
	case o.IdleTimeout > 0:
		return o.IdleTimeout
	case o.IdleTimeout < 0:
		return 0
	default:
		return DefaultServiceIdleTimeout
	}
}

// session is one connection's server-side state: identity for the
// Stats table, the admission verdict, and the subscription queue when
// the client subscribes.
type session struct {
	id      uint64
	remote  string
	refused bool // admission-refused at accept; never serves store verbs

	mu sync.Mutex
	q  *subQueue // active subscription's send queue, nil if none
}

// addSession registers a new connection and decides admission: the
// connection is admitted iff the admitted count is under MaxSessions.
// A refused session still occupies a table row (visible in Stats) but
// never counts toward the limit, so a burst of refused dials cannot
// starve the clients that got in.
func (s *Service) addSession(remote string) *session {
	s.smu.Lock()
	defer s.smu.Unlock()
	s.nextSess++
	sess := &session{id: s.nextSess, remote: remote}
	if s.opts.MaxSessions > 0 && s.admitted >= s.opts.MaxSessions {
		sess.refused = true
		s.stats.sessionsRefused.Add(1)
	} else {
		s.admitted++
	}
	s.sessions[sess.id] = sess
	return sess
}

func (s *Service) removeSession(sess *session) {
	s.smu.Lock()
	if _, ok := s.sessions[sess.id]; ok {
		delete(s.sessions, sess.id)
		if !sess.refused {
			s.admitted--
		}
	}
	s.smu.Unlock()
	sess.mu.Lock()
	q := sess.q
	sess.q = nil
	sess.mu.Unlock()
	if q != nil {
		q.stop()
	}
}

// SessionCount returns the number of live admitted sessions — the
// baseline the subscription-churn leak tests assert against.
func (s *Service) SessionCount() int {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.admitted
}

// statsReport builds the Stats verb's response: service counters plus
// the per-session table, sorted by session id (map order is random;
// operators diffing two reports want stable rows).
func (s *Service) statsReport() StatsReport {
	r := StatsReport{Stats: s.Stats()}
	s.smu.Lock()
	ids := make([]uint64, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sessions := make([]*session, 0, len(ids))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.smu.Unlock()
	// Insertion sort by id: session counts are small.
	for i := 1; i < len(sessions); i++ {
		for j := i; j > 0 && sessions[j-1].id > sessions[j].id; j-- {
			sessions[j-1], sessions[j] = sessions[j], sessions[j-1]
		}
	}
	for _, sess := range sessions {
		row := SessionStats{ID: sess.id, Remote: sess.remote, Refused: sess.refused}
		sess.mu.Lock()
		q := sess.q
		sess.mu.Unlock()
		if q != nil {
			row.Subscribed = true
			row.Inline = q.inline
			q.mu.Lock()
			row.QueueDepth = len(q.pending)
			row.QueueCap = q.cap
			row.Dropped = q.dropped
			row.Degraded = q.degraded
			row.Sent = q.sent
			row.LastSent = q.lastSent
			q.mu.Unlock()
		}
		r.Sessions = append(r.Sessions, row)
	}
	if fn := s.pipelineStats.Load(); fn != nil {
		r.Pipeline = (*fn)()
	}
	return r
}

// SetPipelineStats registers the telemetry hook a live service
// publishes through the Stats verb: fn (typically a running stream's
// Snapshot method) is called per Stats request and its stage table
// rides the v7 response. A nil fn (or never calling this) reports no
// table — the store-backed case. Safe to call while serving.
func (s *Service) SetPipelineStats(fn func() []pipeline.StageSnapshot) {
	if fn == nil {
		s.pipelineStats.Store(nil)
		return
	}
	s.pipelineStats.Store(&fn)
}

// subQueue is one subscriber's bounded send queue: the store's watcher
// callback enqueues frame counts (never blocking — this is what keeps
// a slow client from backpressuring the simulation), and a dedicated
// drain goroutine writes them to the connection as fast as it accepts,
// applying the service's SlowPolicy when the queue overflows.
//
// In inline mode each drained push ships the newest frame's wire
// encoding in the notify itself. The encoding comes from the store's
// publish-time cache or the service's single-flight frame cache, so
// one encode feeds every subscriber and the same buffer is written to
// every connection (sendVec — only the 12-byte header is
// per-connection). A frame that is gone by the time the drain runs
// (live rings evict), or a push sent while the SlowDegrade policy has
// the subscriber marked behind, degrades to a count-only notify.
type subQueue struct {
	svc    *Service
	w      *connWriter
	reqID  uint64
	inline bool
	cap    int
	policy SlowPolicy

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []int // queued frame counts, ascending
	behind   bool  // SlowDegrade latch: drain count-only until empty
	stopped  bool
	evicting bool
	done     chan struct{}

	// Stats, guarded by mu.
	dropped, degraded, sent uint64
	lastSent                int
}

// newSubQueue builds the queue and starts its drain goroutine.
func newSubQueue(s *Service, w *connWriter, reqID uint64, inline bool) *subQueue {
	q := &subQueue{
		svc:    s,
		w:      w,
		reqID:  reqID,
		inline: inline,
		cap:    s.opts.sendQueue(),
		policy: s.opts.Slow,
		done:   make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	go q.drain()
	return q
}

// update is the store watcher callback. It never blocks: enqueue, and
// on overflow apply the slow-subscriber policy inline (drop head,
// latch degrade, or trigger eviction).
func (q *subQueue) update(frames int) {
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return
	}
	if n := len(q.pending); n > 0 && frames <= q.pending[n-1] {
		q.mu.Unlock()
		return // stale or duplicate count
	}
	q.pending = append(q.pending, frames)
	var evict bool
	if len(q.pending) > q.cap {
		switch q.policy {
		case SlowSkip:
			q.pending = q.pending[1:]
			q.dropped++
			q.svc.stats.pushesDropped.Add(1)
		case SlowDegrade:
			q.pending = q.pending[1:]
			q.behind = true
			q.degraded++
			q.svc.stats.pushesDegraded.Add(1)
		case SlowEvict:
			q.stopped = true
			q.evicting = true
			evict = true
		}
	}
	q.mu.Unlock()
	q.cond.Signal()
	if evict {
		q.svc.stats.sessionsEvicted.Add(1)
		// Off the watcher callback — update runs inside the publisher's
		// Publish, which must never block, not even for the bounded
		// eviction write. Unwedge a drain blocked mid-write, best-effort
		// deliver the typed refusal, then sever. The deadline covers
		// both: a wedged in-flight write errors out, and the error reply
		// cannot hang.
		go func() {
			q.w.conn.SetWriteDeadline(time.Now().Add(evictWriteDeadline))
			q.w.sendErr(q.reqID, &WireError{
				Code: ErrCodeUnavailable,
				Msg:  "remote: subscriber too slow, evicted — reconnect and resume",
			})
			q.w.conn.Close()
		}()
	}
}

// evictWriteDeadline bounds the best-effort eviction notice to a
// stalled subscriber before its connection is severed.
const evictWriteDeadline = 250 * time.Millisecond

// drain writes queued pushes in order until stopped or the connection
// dies. Inline payloads are fetched through the service's encode-once
// caches outside the queue lock.
func (q *subQueue) drain() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.stopped {
			q.cond.Wait()
		}
		if q.stopped {
			q.mu.Unlock()
			return
		}
		frames := q.pending[0]
		q.pending = q.pending[1:]
		degraded := q.behind
		if len(q.pending) == 0 {
			q.behind = false // caught up; inline service resumes
		}
		q.mu.Unlock()

		if q.inline && !degraded && frames > 0 {
			if enc, err := q.svc.encodedFrame(frames - 1); err == nil &&
				notifyFrameHeader+len(enc) <= maxBody-msgOverhead {
				var head [notifyFrameHeader]byte
				binary.LittleEndian.PutUint64(head[0:], uint64(frames))
				binary.LittleEndian.PutUint32(head[8:], uint32(frames-1))
				if q.w.sendVec(q.reqID, opNotifyFrame, head[:], enc) != nil {
					return
				}
				q.svc.stats.notifyFrames.Add(1)
				q.noteSent(frames)
				continue
			}
		}
		payload := make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, uint64(frames))
		if q.w.send(q.reqID, opNotify, payload) != nil {
			return
		}
		q.svc.stats.notifyCount.Add(1)
		q.noteSent(frames)
	}
}

func (q *subQueue) noteSent(frames int) {
	q.mu.Lock()
	q.sent++
	q.lastSent = frames
	q.mu.Unlock()
}

// stop terminates the drain goroutine and waits for it. An evicted
// queue's drain may be parked in a write; the eviction path already
// set a deadline and closed the connection, which unblocks it.
func (q *subQueue) stop() {
	q.mu.Lock()
	q.stopped = true
	q.mu.Unlock()
	q.cond.Signal()
	<-q.done
}
