package remote

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"repro/internal/pipeline"
	"repro/internal/vec"
)

// Wire protocol v7. Every connection starts with a handshake:
//
//	client → server: magic "ACVP" | u32 version
//	server → client: magic "ACVP" | u32 version | u32 flags
//
// after which both directions exchange length-prefixed, CRC-framed
// messages (the same trailing-CRC idiom as pario's file formats, so
// corrupt or truncated transfers are detected):
//
//	u32 len(body) | body | u32 crc32(body)
//	body = u64 requestID | u8 opcode | payload
//
// Requests carry a client-chosen ID; every response echoes it, so a
// client can keep many requests in flight on one connection and match
// replies out of order — this is what lets the viewer's prefetcher
// overlap WAN fetches and the distributed extract stage overlap
// in-flight frames. Server-pushed frame notifications echo the
// Subscribe request's ID.
//
// v2 over v1: the Compute verb (remote stage execution against a
// Worker's named kernels), and error replies now carry a one-byte
// error code before the message text (WireError), so a client can
// distinguish "this server does not speak that verb" from an
// application failure without string matching.
//
// v3 over v2 is the fan-out revision — per-frame server work
// independent of subscriber count, per-frame bytes proportional to
// what changed:
//
//   - GetDelta: the client names a frame it already holds and the
//     server ships frame i as an RLE-compressed XOR residual against
//     it (render.CompressDelta), losslessly reconstructed client-side.
//   - Render requests carry a quality tier: lossless RLE (the default,
//     bit-identical to a local render) or a quantized 8-bit preview
//     (~4-5x smaller, documented lossy, never selected by default).
//     v2's 52-byte render payload still decodes (as lossless).
//   - Subscribe requests may carry a flags byte asking for inline
//     frame payloads: the server encodes each new frame once and
//     writes the same buffer to every subscriber (opNotifyFrame)
//     instead of pushing a count that every client answers with a
//     full Get.
//
// v4 over v3 is the fleet revision — what a dispatcher needs to run a
// stage across many workers and survive losing some of them:
//
//   - Kernels: a worker answers with the list of stage kernels it
//     hosts, so a Fleet verifies each member's provisioning at connect
//     (and at every rejoin probe) instead of discovering a missing
//     kernel one failed frame at a time. Stores answer it like any
//     verb they do not speak: typed ErrCodeUnknownVerb, connection
//     kept.
//   - ErrCodeUnavailable: a draining worker (graceful shutdown)
//     refuses new Compute requests with this code before starting
//     them. It is an explicit "retry elsewhere" — the fleet classifies
//     it transient and re-dispatches, unlike application errors which
//     would fail identically on every member.
//
// v5 over v4 is the resilient-session revision — what a long-lived
// viewer over a flaky WAN needs:
//
//   - Ping: a no-payload liveness round trip. Clients heartbeat idle
//     connections with it (ClientOptions.HeartbeatInterval) and both
//     sides run idle deadlines, so a dead peer is detected in bounded
//     time instead of a subscription hanging forever on a connection
//     the kernel never reports dead.
//   - Stats: the measurement surface — the service answers with its
//     ServiceStats counters plus a per-session table (queue depth,
//     drop/degrade counters), so operators and the self-balancing
//     machinery see where a fan-out spends its time and which
//     subscriber is the slow one.
//   - ErrCodeUnavailable now also answers requests refused by
//     admission control (ServiceOptions.MaxSessions / MaxRenders) and
//     subscribers evicted by the SlowEvict overload policy: in every
//     case the same request is welcome later or elsewhere, so
//     ReconnectClient backs off and redials rather than failing.
//
// v6 over v5 is the sort-last distributed rendering revision. No new
// opcode: the change is a third built-in worker kernel riding the
// Compute verb, plus the wire blobs it speaks. The built-in kernel
// table as of v6:
//
//	hybrid.extract.v1   "ACPT" point set in    .achy representation out
//	fieldline.trace.v1  "ACFS" seed batch in   "ACFR" traced lines out
//	render.partial.v1   "ACPR" sub-volume in   "ACPB" RGBA+depth partial out
//
// render.partial.v1 takes one contiguous octree-ordered slice of a
// frame's halo points with the camera/TF parameters and returns the
// slice's rendered partial framebuffer, RLE-compressed with its depth
// plane (render.CompressPartial). The requester composites the
// partials in partition order (compositor.CompositeDepth) and runs
// the volume pass over the merged image, reproducing the single-node
// frame bit for bit at any partition and worker count. The version
// bump exists so a v5 peer — which would answer the kernel name with
// ErrCodeUnknownKernel only after a frame-sized request crossed the
// wire — is refused at handshake instead.
//
// v7 over v6 is the self-balancing revision: the Stats response grows
// a per-stage pipeline telemetry table after the session records. A
// service backed by a live in-situ stream publishes its pipeline's
// snapshot (Service.SetPipelineStats) — one record per stage, in
// chain order: kind, worker count and rebalance bounds, in-flight and
// completed frames, service-time EWMA, the windowed throughput /
// utilization / queue-wait rates, and the placement side with its
// per-side EWMAs — so an operator watching vizclient -stats sees the
// same critical-path table the stream's balancer acts on. An absent
// table (a store-backed service with no pipeline) encodes as a zero
// stage count.

var protoMagic = [4]byte{'A', 'C', 'V', 'P'}

const (
	protoVersion = 7

	// maxBody bounds a message body so a corrupt or hostile length
	// prefix cannot cause an arbitrary allocation.
	maxBody = 1 << 30

	// msgOverhead is the body size before the payload: request ID + op.
	msgOverhead = 8 + 1
)

// Opcodes. Responses are the request opcode with the high bit set;
// opError and opNotify stand alone.
const (
	opList      byte = 0x01
	opGet       byte = 0x02
	opSubscribe byte = 0x03
	opRender    byte = 0x04
	opCompute   byte = 0x05
	opGetDelta  byte = 0x06
	opKernels   byte = 0x07
	opPing      byte = 0x08
	opStats     byte = 0x09

	opListOK      byte = 0x81
	opGetOK       byte = 0x82
	opSubscribeOK byte = 0x83
	opRenderOK    byte = 0x84
	opComputeOK   byte = 0x85
	opGetDeltaOK  byte = 0x86
	opKernelsOK   byte = 0x87
	opPingOK      byte = 0x88
	opStatsOK     byte = 0x89

	opNotify      byte = 0x90
	opNotifyFrame byte = 0x91
	opError       byte = 0xFF
)

// subFlagInline, set in a Subscribe request's flags byte, asks the
// server to push each new frame's wire encoding inline (opNotifyFrame)
// instead of a bare count (opNotify).
const subFlagInline byte = 1 << 0

// notifyFrameHeader is the fixed prefix of an opNotifyFrame payload:
// u64 frames | u32 index, followed by the frame's wire encoding.
const notifyFrameHeader = 8 + 4

// ErrorCode classifies an error reply so clients can react to the
// class without parsing the message text.
type ErrorCode uint8

const (
	// ErrCodeGeneric is an unclassified application failure (missing
	// frame, render error, kernel failure).
	ErrCodeGeneric ErrorCode = 0
	// ErrCodeUnknownVerb: the request was well-framed but its opcode is
	// not one this service speaks. The connection stays usable — an
	// unknown verb says nothing about the framing.
	ErrCodeUnknownVerb ErrorCode = 1
	// ErrCodeBadRequest: the verb is known but its payload did not
	// decode.
	ErrCodeBadRequest ErrorCode = 2
	// ErrCodeUnknownKernel: a Compute named a kernel the worker has not
	// registered.
	ErrCodeUnknownKernel ErrorCode = 3
	// ErrCodeUnavailable: the worker is draining toward shutdown and
	// did not start the request. Transient by definition — the same
	// request is welcome on any other member of the fleet, so
	// IsTransient classifies it retryable.
	ErrCodeUnavailable ErrorCode = 4
)

// WireError is a typed protocol error: what a service sends in an
// opError reply and what client calls return for one. Test with
// errors.As plus the Code field (or the CodeOf shortcut).
type WireError struct {
	Code ErrorCode
	Msg  string
}

func (e *WireError) Error() string { return e.Msg }

// CodeOf extracts the error code from err's chain, or ErrCodeGeneric
// if no WireError is present.
func CodeOf(err error) ErrorCode {
	var we *WireError
	if errors.As(err, &we) {
		return we.Code
	}
	return ErrCodeGeneric
}

// encodeWireError builds an opError payload: u8 code | message text.
func encodeWireError(err error) []byte {
	code := ErrCodeGeneric
	var we *WireError
	if errors.As(err, &we) {
		code = we.Code
	}
	return append([]byte{byte(code)}, err.Error()...)
}

// decodeWireError parses an opError payload. A legacy empty payload
// decodes as a generic error rather than failing.
func decodeWireError(p []byte) *WireError {
	if len(p) == 0 {
		return &WireError{Code: ErrCodeGeneric, Msg: "unspecified server error"}
	}
	return &WireError{Code: ErrorCode(p[0]), Msg: string(p[1:])}
}

// message is one decoded protocol frame. body is the pooled backing
// buffer of payload (when the message came off the wire); consumers
// that fully copy what they need out of payload may recycle it.
type message struct {
	reqID   uint64
	op      byte
	payload []byte
	body    []byte
}

// recycle returns the message's backing buffer to the payload pool.
// The caller must not touch payload afterwards.
func (m message) recycle() {
	if m.body != nil {
		putBytes(m.body)
	}
}

// writeMessage frames and sends one message. The caller serializes
// concurrent writers.
func writeMessage(w *bufio.Writer, reqID uint64, op byte, payload []byte) error {
	return writeMessageVec(w, reqID, op, payload)
}

// writeMessageVec is writeMessage over a vectored payload: the
// segments are framed as one contiguous payload without being joined
// in memory first. The broadcast path leans on this — a shared frame
// encoding goes out to every subscriber prefixed by a tiny
// per-connection header, no per-subscriber copy of the frame.
func writeMessageVec(w *bufio.Writer, reqID uint64, op byte, segs ...[]byte) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total > maxBody-msgOverhead {
		return fmt.Errorf("remote: message payload %d exceeds limit", total)
	}
	le := binary.LittleEndian
	var head [4 + msgOverhead]byte
	le.PutUint32(head[0:], uint32(msgOverhead+total))
	le.PutUint64(head[4:], reqID)
	head[12] = op
	crc := crc32.NewIEEE()
	crc.Write(head[4:])
	for _, s := range segs {
		crc.Write(s)
	}
	if _, err := w.Write(head[:]); err != nil {
		return fmt.Errorf("remote: writing message header: %w", err)
	}
	for _, s := range segs {
		if _, err := w.Write(s); err != nil {
			return fmt.Errorf("remote: writing message payload: %w", err)
		}
	}
	var tail [4]byte
	le.PutUint32(tail[:], crc.Sum32())
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("remote: writing message checksum: %w", err)
	}
	return w.Flush()
}

// readMessage decodes one message from r. rateBps > 0 throttles the
// body read to that many bytes per second (the client's WAN model).
// Malformed input — truncated header or body, an implausible length, a
// checksum mismatch — returns an error and never panics.
func readMessage(r io.Reader, rateBps int64) (message, error) {
	le := binary.LittleEndian
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return message{}, err // io.EOF here is a clean close
	}
	n := le.Uint32(lenBuf[:])
	if n < msgOverhead {
		return message{}, fmt.Errorf("remote: message body %d shorter than header", n)
	}
	if n > maxBody {
		return message{}, fmt.Errorf("remote: implausible message body %d", n)
	}
	body := getBytes(int(n))
	if err := readThrottled(r, body, rateBps); err != nil {
		putBytes(body)
		return message{}, fmt.Errorf("remote: reading message body: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		putBytes(body)
		return message{}, fmt.Errorf("remote: reading message checksum: %w", err)
	}
	if got, want := le.Uint32(crcBuf[:]), crc32.ChecksumIEEE(body); got != want {
		putBytes(body)
		return message{}, fmt.Errorf("remote: message checksum mismatch (wire %08x, computed %08x)", got, want)
	}
	return message{
		reqID:   le.Uint64(body[0:]),
		op:      body[8],
		payload: body[msgOverhead:],
		body:    body,
	}, nil
}

// readThrottled fills p, sleeping as needed to hold the modeled link
// rate — the "10 seconds for a 100MB time step" arithmetic of §2.5.
func readThrottled(r io.Reader, p []byte, rateBps int64) error {
	if rateBps <= 0 {
		_, err := io.ReadFull(r, p)
		return err
	}
	const chunk = 64 << 10
	read := 0
	start := time.Now()
	for read < len(p) {
		n := min(chunk, len(p)-read)
		if _, err := io.ReadFull(r, p[read:read+n]); err != nil {
			return err
		}
		read += n
		ideal := time.Duration(float64(read) / float64(rateBps) * float64(time.Second))
		if elapsed := time.Since(start); elapsed < ideal {
			time.Sleep(ideal - elapsed)
		}
	}
	return nil
}

// clientHello / serverHello run the version handshake.
func clientHello(conn io.ReadWriter) error {
	var out [8]byte
	copy(out[:], protoMagic[:])
	binary.LittleEndian.PutUint32(out[4:], protoVersion)
	if _, err := conn.Write(out[:]); err != nil {
		return fmt.Errorf("remote: sending hello: %w", err)
	}
	var in [12]byte
	if _, err := io.ReadFull(conn, in[:]); err != nil {
		return fmt.Errorf("remote: reading server hello: %w", err)
	}
	if [4]byte(in[:4]) != protoMagic {
		return fmt.Errorf("remote: bad server magic %q", in[:4])
	}
	if v := binary.LittleEndian.Uint32(in[4:]); v != protoVersion {
		return fmt.Errorf("remote: server speaks protocol v%d, client v%d", v, protoVersion)
	}
	return nil
}

func serverHello(conn io.ReadWriter) error {
	var in [8]byte
	if _, err := io.ReadFull(conn, in[:]); err != nil {
		return fmt.Errorf("remote: reading client hello: %w", err)
	}
	if [4]byte(in[:4]) != protoMagic {
		return fmt.Errorf("remote: bad client magic %q", in[:4])
	}
	if v := binary.LittleEndian.Uint32(in[4:]); v != protoVersion {
		return fmt.Errorf("remote: client speaks protocol v%d, server v%d", v, protoVersion)
	}
	var out [12]byte
	copy(out[:], protoMagic[:])
	binary.LittleEndian.PutUint32(out[4:], protoVersion)
	binary.LittleEndian.PutUint32(out[8:], 0) // flags, reserved
	if _, err := conn.Write(out[:]); err != nil {
		return fmt.Errorf("remote: sending hello: %w", err)
	}
	return nil
}

// ListInfo is the List response: the store's frame range and liveness.
type ListInfo struct {
	Frames int  // frames published so far; valid indices end here
	First  int  // oldest index still available (live rings evict)
	Live   bool // whether the store can push new frames to subscribers
}

func encodeListInfo(li ListInfo) []byte {
	out := make([]byte, 17)
	le := binary.LittleEndian
	le.PutUint64(out[0:], uint64(li.Frames))
	le.PutUint64(out[8:], uint64(li.First))
	if li.Live {
		out[16] = 1
	}
	return out
}

func decodeListInfo(p []byte) (ListInfo, error) {
	if len(p) != 17 {
		return ListInfo{}, fmt.Errorf("remote: list payload %d bytes, want 17", len(p))
	}
	le := binary.LittleEndian
	li := ListInfo{
		Frames: int(le.Uint64(p[0:])),
		First:  int(le.Uint64(p[8:])),
		Live:   p[16] != 0,
	}
	if li.Frames < 0 || li.First < 0 || li.First > li.Frames {
		return ListInfo{}, fmt.Errorf("remote: inconsistent list payload (%d frames, first %d)", li.Frames, li.First)
	}
	return li, nil
}

// RenderQuality selects the wire codec of a server-side render — the
// client-negotiated quality tier of protocol v3.
type RenderQuality uint8

const (
	// QualityLossless ships the full float framebuffer under lossless
	// word-RLE, bit-identical to a local render. The default: stills
	// and anything quantitative use it.
	QualityLossless RenderQuality = 0
	// QualityPreview ships a quantized 8-bit color image (~4-5x
	// smaller) with no depth plane — preview-grade interaction only.
	// LOSSY: bit-identical only to its own decode, never to the
	// lossless tier, and never selected unless the client asks.
	QualityPreview RenderQuality = 1
)

func (q RenderQuality) valid() bool { return q <= QualityPreview }

// RenderParams is the thin-client request: instead of transferring the
// full hybrid frame, the client ships camera and transfer-function
// parameters and the server renders on its tile-binned rasterizer,
// returning an RLE-compressed framebuffer. Zero-valued TF fields mean
// the server's defaults (hybrid.DefaultTF), so a zero-TF render is
// bit-identical to core.RenderFrame run locally.
type RenderParams struct {
	Frame         int
	Width, Height int
	ViewDir       vec.V3
	// VolumeOpacity overrides the transfer function's opacity scale
	// when > 0.
	VolumeOpacity float64
	// LogDomainK overrides the log-domain expansion constant when > 0.
	LogDomainK float64
	// Quality selects the response codec; the zero value is lossless.
	Quality RenderQuality
}

// renderParamsLenV2 is the v2 payload size, still accepted (decoding
// as QualityLossless); v3 appends one quality byte.
const renderParamsLenV2 = 12 + 5*8

func encodeRenderParams(p RenderParams) []byte {
	out := make([]byte, renderParamsLenV2+1)
	le := binary.LittleEndian
	le.PutUint32(out[0:], uint32(p.Frame))
	le.PutUint32(out[4:], uint32(p.Width))
	le.PutUint32(out[8:], uint32(p.Height))
	for i, f := range []float64{p.ViewDir.X, p.ViewDir.Y, p.ViewDir.Z, p.VolumeOpacity, p.LogDomainK} {
		le.PutUint64(out[12+8*i:], math.Float64bits(f))
	}
	out[renderParamsLenV2] = byte(p.Quality)
	return out
}

func decodeRenderParams(p []byte) (RenderParams, error) {
	var quality RenderQuality
	switch len(p) {
	case renderParamsLenV2: // v2 client: lossless
	case renderParamsLenV2 + 1:
		quality = RenderQuality(p[renderParamsLenV2])
		if !quality.valid() {
			return RenderParams{}, fmt.Errorf("remote: unknown render quality tier %d", quality)
		}
	default:
		return RenderParams{}, fmt.Errorf("remote: render payload %d bytes, want %d or %d", len(p), renderParamsLenV2, renderParamsLenV2+1)
	}
	le := binary.LittleEndian
	var f [5]float64
	for i := range f {
		f[i] = math.Float64frombits(le.Uint64(p[12+8*i:]))
	}
	rp := RenderParams{
		Frame:         int(int32(le.Uint32(p[0:]))),
		Width:         int(le.Uint32(p[4:])),
		Height:        int(le.Uint32(p[8:])),
		ViewDir:       vec.New(f[0], f[1], f[2]),
		VolumeOpacity: f[3],
		LogDomainK:    f[4],
		Quality:       quality,
	}
	// Bound the framebuffer a request can demand: like maxBody, a
	// hostile 52-byte message must not force an arbitrary server-side
	// allocation (4096x4096 is ~335MB of framebuffer already).
	if rp.Width < 1 || rp.Height < 1 || rp.Width > 4096 || rp.Height > 4096 ||
		rp.Width*rp.Height > 1<<22 {
		return RenderParams{}, fmt.Errorf("remote: implausible render size %dx%d", rp.Width, rp.Height)
	}
	return rp, nil
}

// encodeGetDelta builds a GetDelta request payload: u32 frame | u32
// base — "send me frame, I hold base".
func encodeGetDelta(frame, base int) []byte {
	out := make([]byte, 8)
	le := binary.LittleEndian
	le.PutUint32(out[0:], uint32(frame))
	le.PutUint32(out[4:], uint32(base))
	return out
}

func decodeGetDelta(p []byte) (frame, base int, err error) {
	if len(p) != 8 {
		return 0, 0, fmt.Errorf("remote: get-delta payload %d bytes, want 8", len(p))
	}
	le := binary.LittleEndian
	return int(int32(le.Uint32(p[0:]))), int(int32(le.Uint32(p[4:]))), nil
}

// encodeKernelList builds a Kernels response payload:
// u16 count | count × (u8 len | name). Kernel names are already
// bounded to maxKernelName by Register/appendComputeHeader.
func encodeKernelList(names []string) ([]byte, error) {
	if len(names) > math.MaxUint16 {
		return nil, fmt.Errorf("remote: %d kernels exceed the advertisement limit", len(names))
	}
	out := make([]byte, 2, 2+16*len(names))
	binary.LittleEndian.PutUint16(out, uint16(len(names)))
	for _, name := range names {
		if len(name) == 0 || len(name) > maxKernelName {
			return nil, fmt.Errorf("remote: kernel name %q length out of range [1, %d]", name, maxKernelName)
		}
		out = append(out, byte(len(name)))
		out = append(out, name...)
	}
	return out, nil
}

// decodeKernelList parses a Kernels response payload. Malformed input
// returns an error and never panics.
func decodeKernelList(p []byte) ([]string, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("remote: kernel list payload %d bytes, want >= 2", len(p))
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 1 {
			return nil, fmt.Errorf("remote: kernel list truncated at entry %d", i)
		}
		l := int(p[0])
		if l == 0 || len(p) < 1+l {
			return nil, fmt.Errorf("remote: kernel list entry %d truncated (%d of %d name bytes)", i, len(p)-1, l)
		}
		names = append(names, string(p[1:1+l]))
		p = p[1+l:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("remote: %d trailing bytes after kernel list", len(p))
	}
	return names, nil
}

// SessionStats is one connection's row in the Stats response: who it
// is, whether it subscribes (and how), and how its bounded send queue
// is doing — the per-subscriber half of the overload measurement
// surface. Counters are cumulative over the session's life.
type SessionStats struct {
	ID         uint64 // server-assigned session id, stable for the connection
	Remote     string // peer address
	Subscribed bool   // has an active subscription
	Inline     bool   // subscription asked for inline frame payloads
	Refused    bool   // admission-refused: every verb answers ErrCodeUnavailable
	QueueDepth int    // pushes waiting in the send queue right now
	QueueCap   int    // the queue's bound
	Dropped    uint64 // pushes dropped by the skip policy (overflow)
	Degraded   uint64 // pushes degraded to count-only notifies (overflow)
	Sent       uint64 // pushes actually written to the wire
	LastSent   int    // frame count of the newest push written (0 = none)
}

// StatsReport is the Stats verb's response: the service-wide counters,
// one row per live session, and — when the service fronts a live
// in-situ stream — the stream's per-stage pipeline telemetry table
// (protocol v7).
type StatsReport struct {
	Stats    ServiceStats
	Sessions []SessionStats
	Pipeline []pipeline.StageSnapshot
}

// Session flag bits in the wire encoding.
const (
	sessFlagSubscribed byte = 1 << 0
	sessFlagInline     byte = 1 << 1
	sessFlagRefused    byte = 1 << 2
)

// statsSessionFixed is the fixed-size prefix of one session record:
// u64 id | u8 flags | u32 depth | u32 cap | 4×u64 counters | u8 len.
const statsSessionFixed = 8 + 1 + 4 + 4 + 4*8 + 1

// Stage flag bits in the wire encoding (protocol v7).
const (
	stageFlagResizable byte = 1 << 0
	stageFlagPlaceable byte = 1 << 1
	stageFlagRemote    byte = 1 << 2
	stageFlagCritical  byte = 1 << 3
	stageFlagFinished  byte = 1 << 4
)

// statsStageFixed is the fixed-size prefix of one pipeline stage
// record: u8 kind | u8 flags | 4×u32 (workers, min, max, in-flight) |
// 6×u64 (done, service/local/remote EWMA ns, window ns, fallbacks) |
// 4×f64 (throughput, utilization, recv-wait, send-wait) | u8 nameLen.
const statsStageFixed = 1 + 1 + 4*4 + 6*8 + 4*8 + 1

// encodeStatsReport builds a Stats response payload:
//
//	u16 counterCount | counterCount × u64 | u32 sessionCount | records
//
// The counter count is on the wire so a future revision can append
// counters without breaking older decoders.
func encodeStatsReport(r StatsReport) []byte {
	counters := r.Stats.counters()
	le := binary.LittleEndian
	out := make([]byte, 0, 2+8*len(counters)+4+len(r.Sessions)*(statsSessionFixed+16))
	out = le.AppendUint16(out, uint16(len(counters)))
	for _, c := range counters {
		out = le.AppendUint64(out, c)
	}
	out = le.AppendUint32(out, uint32(len(r.Sessions)))
	for _, s := range r.Sessions {
		out = le.AppendUint64(out, s.ID)
		var flags byte
		if s.Subscribed {
			flags |= sessFlagSubscribed
		}
		if s.Inline {
			flags |= sessFlagInline
		}
		if s.Refused {
			flags |= sessFlagRefused
		}
		out = append(out, flags)
		out = le.AppendUint32(out, uint32(s.QueueDepth))
		out = le.AppendUint32(out, uint32(s.QueueCap))
		out = le.AppendUint64(out, s.Dropped)
		out = le.AppendUint64(out, s.Degraded)
		out = le.AppendUint64(out, s.Sent)
		out = le.AppendUint64(out, uint64(s.LastSent))
		remote := s.Remote
		if len(remote) > math.MaxUint8 {
			remote = remote[:math.MaxUint8]
		}
		out = append(out, byte(len(remote)))
		out = append(out, remote...)
	}
	// v7: pipeline stage table.
	out = le.AppendUint16(out, uint16(len(r.Pipeline)))
	for _, st := range r.Pipeline {
		out = append(out, byte(st.Kind))
		var flags byte
		if st.Resizable {
			flags |= stageFlagResizable
		}
		if st.Placeable {
			flags |= stageFlagPlaceable
		}
		if st.Remote {
			flags |= stageFlagRemote
		}
		if st.Critical {
			flags |= stageFlagCritical
		}
		if st.Finished {
			flags |= stageFlagFinished
		}
		out = append(out, flags)
		out = le.AppendUint32(out, uint32(st.Workers))
		out = le.AppendUint32(out, uint32(st.MinWorkers))
		out = le.AppendUint32(out, uint32(st.MaxWorkers))
		out = le.AppendUint32(out, uint32(st.InFlight))
		out = le.AppendUint64(out, st.Done)
		out = le.AppendUint64(out, uint64(st.ServiceEWMA))
		out = le.AppendUint64(out, uint64(st.LocalEWMA))
		out = le.AppendUint64(out, uint64(st.RemoteEWMA))
		out = le.AppendUint64(out, uint64(st.Window))
		out = le.AppendUint64(out, st.Fallbacks)
		out = le.AppendUint64(out, math.Float64bits(st.Throughput))
		out = le.AppendUint64(out, math.Float64bits(st.Utilization))
		out = le.AppendUint64(out, math.Float64bits(st.RecvWait))
		out = le.AppendUint64(out, math.Float64bits(st.SendWait))
		name := st.Name
		if len(name) > math.MaxUint8 {
			name = name[:math.MaxUint8]
		}
		out = append(out, byte(len(name)))
		out = append(out, name...)
	}
	return out
}

// decodeStatsReport parses a Stats response payload. Malformed input —
// truncated records, hostile counts, trailing bytes — returns an error
// and never panics or over-allocates.
func decodeStatsReport(p []byte) (StatsReport, error) {
	le := binary.LittleEndian
	if len(p) < 2 {
		return StatsReport{}, fmt.Errorf("remote: stats payload %d bytes, want >= 2", len(p))
	}
	nc := int(le.Uint16(p))
	p = p[2:]
	if len(p) < 8*nc {
		return StatsReport{}, fmt.Errorf("remote: stats payload truncated at counter table (%d of %d counters)", len(p)/8, nc)
	}
	counters := make([]uint64, nc)
	for i := range counters {
		counters[i] = le.Uint64(p[8*i:])
	}
	p = p[8*nc:]
	var r StatsReport
	r.Stats.setCounters(counters)
	if len(p) < 4 {
		return StatsReport{}, fmt.Errorf("remote: stats payload truncated before session count")
	}
	ns := int(le.Uint32(p))
	p = p[4:]
	if ns > len(p)/statsSessionFixed {
		return StatsReport{}, fmt.Errorf("remote: stats payload claims %d sessions in %d bytes", ns, len(p))
	}
	r.Sessions = make([]SessionStats, 0, ns)
	for i := 0; i < ns; i++ {
		if len(p) < statsSessionFixed {
			return StatsReport{}, fmt.Errorf("remote: stats session %d truncated", i)
		}
		var s SessionStats
		s.ID = le.Uint64(p[0:])
		flags := p[8]
		s.Subscribed = flags&sessFlagSubscribed != 0
		s.Inline = flags&sessFlagInline != 0
		s.Refused = flags&sessFlagRefused != 0
		s.QueueDepth = int(le.Uint32(p[9:]))
		s.QueueCap = int(le.Uint32(p[13:]))
		s.Dropped = le.Uint64(p[17:])
		s.Degraded = le.Uint64(p[25:])
		s.Sent = le.Uint64(p[33:])
		s.LastSent = int(int64(le.Uint64(p[41:])))
		nameLen := int(p[49])
		p = p[statsSessionFixed:]
		if len(p) < nameLen {
			return StatsReport{}, fmt.Errorf("remote: stats session %d remote addr truncated (%d of %d bytes)", i, len(p), nameLen)
		}
		s.Remote = string(p[:nameLen])
		p = p[nameLen:]
		r.Sessions = append(r.Sessions, s)
	}
	if len(p) == 0 {
		// v6-shaped payload: no stage table. Keeps pre-v7 fuzz corpora
		// (and a zero-value report round trip) decoding cleanly.
		return r, nil
	}
	if len(p) < 2 {
		return StatsReport{}, fmt.Errorf("remote: stats payload truncated before stage count")
	}
	nst := int(le.Uint16(p))
	p = p[2:]
	if nst > len(p)/statsStageFixed {
		return StatsReport{}, fmt.Errorf("remote: stats payload claims %d stages in %d bytes", nst, len(p))
	}
	if nst > 0 {
		r.Pipeline = make([]pipeline.StageSnapshot, 0, nst)
	}
	for i := 0; i < nst; i++ {
		if len(p) < statsStageFixed {
			return StatsReport{}, fmt.Errorf("remote: stats stage %d truncated", i)
		}
		var st pipeline.StageSnapshot
		st.Kind = pipeline.StageKind(p[0])
		flags := p[1]
		st.Resizable = flags&stageFlagResizable != 0
		st.Placeable = flags&stageFlagPlaceable != 0
		st.Remote = flags&stageFlagRemote != 0
		st.Critical = flags&stageFlagCritical != 0
		st.Finished = flags&stageFlagFinished != 0
		st.Workers = int(le.Uint32(p[2:]))
		st.MinWorkers = int(le.Uint32(p[6:]))
		st.MaxWorkers = int(le.Uint32(p[10:]))
		st.InFlight = int(le.Uint32(p[14:]))
		st.Done = le.Uint64(p[18:])
		st.ServiceEWMA = time.Duration(le.Uint64(p[26:]))
		st.LocalEWMA = time.Duration(le.Uint64(p[34:]))
		st.RemoteEWMA = time.Duration(le.Uint64(p[42:]))
		st.Window = time.Duration(le.Uint64(p[50:]))
		st.Fallbacks = le.Uint64(p[58:])
		st.Throughput = math.Float64frombits(le.Uint64(p[66:]))
		st.Utilization = math.Float64frombits(le.Uint64(p[74:]))
		st.RecvWait = math.Float64frombits(le.Uint64(p[82:]))
		st.SendWait = math.Float64frombits(le.Uint64(p[90:]))
		nameLen := int(p[98])
		p = p[statsStageFixed:]
		if len(p) < nameLen {
			return StatsReport{}, fmt.Errorf("remote: stats stage %d name truncated (%d of %d bytes)", i, len(p), nameLen)
		}
		st.Name = string(p[:nameLen])
		p = p[nameLen:]
		r.Pipeline = append(r.Pipeline, st)
	}
	if len(p) != 0 {
		return StatsReport{}, fmt.Errorf("remote: %d trailing bytes after stats report", len(p))
	}
	return r, nil
}

// TransferEstimate returns how long a payload of the given size takes
// at the given bandwidth — the arithmetic behind the paper's frame
// budgeting (100MB at ~10MB/s ≈ 10 s).
func TransferEstimate(bytes, bandwidthBps int64) time.Duration {
	if bandwidthBps <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / float64(bandwidthBps) * float64(time.Second))
}
