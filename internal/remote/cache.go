package remote

import "sync"

// blobCache is the encode-once primitive of the fan-out path: a small,
// bounded LRU of encoded blobs with single-flight fill de-duplication.
// N concurrent requests for the same key trigger exactly one fill —
// the rest block on the first flight and share its result — so
// per-frame server work (frame encodes, renders, delta encodes) stays
// independent of how many subscribers ask. Failed fills are not
// cached: every waiter of the failing flight gets its error, and the
// next fresh request retries.
type blobCache[K comparable] struct {
	mu      sync.Mutex
	cap     int
	entries map[K]*cacheEntry
	order   []K // completed keys, oldest first (in-flight keys are never evicted)
}

type cacheEntry struct {
	done chan struct{} // closed when the fill completes
	blob []byte
	err  error
}

func newBlobCache[K comparable](capacity int) *blobCache[K] {
	return &blobCache[K]{cap: capacity, entries: make(map[K]*cacheEntry)}
}

// get returns the blob for key, filling it with fill on a miss. The
// second result reports whether this call joined an existing entry
// (hit) rather than running fill itself — the counter feed for
// encodes-per-frame accounting.
func (c *blobCache[K]) get(key K, fill func() ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.touch(key)
		c.mu.Unlock()
		<-e.done
		return e.blob, true, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	e.blob, e.err = fill()
	close(e.done)

	c.mu.Lock()
	if e.err != nil {
		// Only drop the entry if it is still ours: a retry may have
		// already replaced it.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
	} else {
		c.order = append(c.order, key)
		for len(c.order) > c.cap {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, evict)
		}
	}
	c.mu.Unlock()
	return e.blob, false, e.err
}

// touch moves key to the most-recent end of the eviction order (a hit
// on an in-flight entry is not in order yet; that is fine — it is
// appended when the fill completes).
func (c *blobCache[K]) touch(key K) {
	for i, k := range c.order {
		if k == key {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = key
			return
		}
	}
}

// len reports how many completed entries the cache holds (test hook).
func (c *blobCache[K]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.order)
}
