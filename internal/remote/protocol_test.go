package remote

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/vec"
)

// frame builds a raw protocol frame with an arbitrary (possibly bogus)
// CRC and length, for malformed-input tests.
func rawFrame(lenField uint32, body []byte, crc uint32) []byte {
	out := binary.LittleEndian.AppendUint32(nil, lenField)
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, crc)
}

func goodBody(reqID uint64, op byte, payload []byte) []byte {
	body := binary.LittleEndian.AppendUint64(nil, reqID)
	body = append(body, op)
	return append(body, payload...)
}

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	payload := []byte("hello frames")
	if err := writeMessage(bw, 7, opGet, payload); err != nil {
		t.Fatal(err)
	}
	msg, err := readMessage(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if msg.reqID != 7 || msg.op != opGet || !bytes.Equal(msg.payload, payload) {
		t.Errorf("round trip mangled message: %+v", msg)
	}
	// Empty payload too.
	if err := writeMessage(bw, 8, opList, nil); err != nil {
		t.Fatal(err)
	}
	msg, err = readMessage(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if msg.reqID != 8 || msg.op != opList || len(msg.payload) != 0 {
		t.Errorf("empty-payload round trip mangled: %+v", msg)
	}
}

// TestDecodeMalformedMessages feeds the decoder every class of
// corruption the satellite task names: truncated headers and bodies,
// oversized lengths, checksum damage. Every case must error cleanly —
// no panic, no hang, no partial message.
func TestDecodeMalformedMessages(t *testing.T) {
	body := goodBody(1, opList, nil)
	good := rawFrame(uint32(len(body)), body, crc32.ChecksumIEEE(body))

	cases := map[string][]byte{
		"empty":                {},
		"truncated length":     good[:2],
		"length only":          good[:4],
		"truncated body":       good[:4+5],
		"missing crc":          good[:len(good)-4],
		"truncated crc":        good[:len(good)-2],
		"length below header":  rawFrame(3, []byte{1, 2, 3}, 0),
		"zero length":          rawFrame(0, nil, 0),
		"oversized length":     rawFrame(maxBody+1, body, crc32.ChecksumIEEE(body)),
		"crc mismatch":         rawFrame(uint32(len(body)), body, crc32.ChecksumIEEE(body)^0xdeadbeef),
		"flipped payload byte": flipByte(good, 8),
	}
	for name, data := range cases {
		if _, err := readMessage(bytes.NewReader(data), 0); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}

func FuzzReadMessage(f *testing.F) {
	body := goodBody(3, opGet, []byte{1, 2, 3, 4})
	f.Add(rawFrame(uint32(len(body)), body, crc32.ChecksumIEEE(body)))
	f.Add([]byte("ACVP\x01\x00\x00\x00"))
	f.Add(make([]byte, 64))
	// v5 frames: a heartbeat and a stats response.
	ping := goodBody(0, opPing, nil)
	f.Add(rawFrame(uint32(len(ping)), ping, crc32.ChecksumIEEE(ping)))
	stats := goodBody(4, opStatsOK, encodeStatsReport(statsFixture()))
	f.Add(rawFrame(uint32(len(stats)), stats, crc32.ChecksumIEEE(stats)))
	// v6 frame: a Compute carrying the partial-render kernel's blob.
	rreq, err := appendComputeHeader(nil, KernelRenderPartial)
	if err != nil {
		f.Fatal(err)
	}
	rreq = appendRenderPartialRequest(rreq, &RenderPartialRequest{
		Width: 8, Height: 8, ViewDir: vec.New(0, 0, 1), PointScale: 1,
		Bounds:    vec.Box(vec.New(0, 0, 0), vec.New(1, 1, 1)),
		Threshold: 0.1, MaxLeafD: 0.5,
		Points: []vec.V3{vec.New(0.5, 0.5, 0.5)}, Density: []float32{0.3},
	})
	compute := goodBody(5, opCompute, rreq)
	f.Add(rawFrame(uint32(len(compute)), compute, crc32.ChecksumIEEE(compute)))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic and never over-allocate on hostile lengths.
		_, _ = readMessage(bytes.NewReader(data), 0)
	})
}

func FuzzDecodePayloads(f *testing.F) {
	f.Add(encodeListInfo(ListInfo{Frames: 4, First: 1, Live: true}))
	f.Add(encodeRenderParams(RenderParams{Frame: 1, Width: 64, Height: 64}))
	// v3 payloads: quality-tiered render params and GetDelta requests.
	f.Add(encodeRenderParams(RenderParams{Frame: 1, Width: 64, Height: 64, Quality: QualityPreview}))
	f.Add(encodeRenderParams(RenderParams{})[:renderParamsLenV2]) // legacy v2 length
	f.Add(encodeGetDelta(7, 6))
	// v6 payload: the partial-render kernel's request blob.
	f.Add(appendRenderPartialRequest(nil, &RenderPartialRequest{
		Width: 8, Height: 8, ViewDir: vec.New(0, 0, 1), PointScale: 1,
		Bounds:    vec.Box(vec.New(0, 0, 0), vec.New(1, 1, 1)),
		Threshold: 0.1, MaxLeafD: 0.5,
		Points: []vec.V3{vec.New(0.5, 0.5, 0.5)}, Density: []float32{0.3},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeListInfo(data)
		_, _ = decodeRenderParams(data)
		_, _, _ = decodeGetDelta(data)
		_, _ = decodeRenderPartialRequest(data)
	})
}

// statsFixture is a fully-populated report for the round-trip test and
// the fuzzer's seed corpus: every counter nonzero, every session flag
// combination, and a remote string long enough to exercise the length
// byte.
func statsFixture() StatsReport {
	return StatsReport{
		Stats: ServiceStats{
			FrameEncodes: 1, FrameHits: 2, Renders: 3, RenderHits: 4,
			DeltaEncodes: 5, DeltaHits: 6, NotifyFrames: 7, NotifyCounts: 8,
			Pings: 9, SessionsRefused: 10, RendersRefused: 11,
			PushesDropped: 12, PushesDegraded: 13, SessionsEvicted: 14,
		},
		Sessions: []SessionStats{
			{ID: 1, Remote: "10.0.0.1:51234", Subscribed: true, Inline: true,
				QueueDepth: 3, QueueCap: 8, Dropped: 2, Degraded: 1, Sent: 40, LastSent: 41},
			{ID: 2, Remote: "10.0.0.2:51235", Refused: true},
			{ID: 3, Remote: ""},
		},
	}
}

// TestStatsReportRoundTrip pins the v5 Stats codec: every counter,
// every session field and every flag survives encode/decode exactly.
func TestStatsReportRoundTrip(t *testing.T) {
	in := statsFixture()
	out, err := decodeStatsReport(encodeStatsReport(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats != in.Stats {
		t.Errorf("counters mangled:\n got %+v\nwant %+v", out.Stats, in.Stats)
	}
	if len(out.Sessions) != len(in.Sessions) {
		t.Fatalf("session count %d, want %d", len(out.Sessions), len(in.Sessions))
	}
	for i := range in.Sessions {
		if out.Sessions[i] != in.Sessions[i] {
			t.Errorf("session %d mangled:\n got %+v\nwant %+v", i, out.Sessions[i], in.Sessions[i])
		}
	}
	// Malformed payloads error cleanly.
	good := encodeStatsReport(in)
	for name, data := range map[string][]byte{
		"empty-nonnil":     {},
		"truncated table":  good[:5],
		"truncated record": good[:len(good)-3],
		"trailing bytes":   append(append([]byte(nil), good...), 0xee),
	} {
		if _, err := decodeStatsReport(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzStatsPayload is the v5 protocol fuzzer: the Stats decoder must
// never panic or over-allocate on hostile session counts, lengths or
// truncations.
func FuzzStatsPayload(f *testing.F) {
	f.Add(encodeStatsReport(statsFixture()))
	f.Add(encodeStatsReport(StatsReport{}))
	// v7 payload: a report carrying the pipeline stage table.
	f.Add(encodeStatsReport(StatsReport{Pipeline: pipelineStatsFixture()}))
	f.Add([]byte{0xff, 0xff})
	f.Add(make([]byte, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeStatsReport(data)
	})
}

// TestRenderParamsQualityRoundTrip pins the v3 params contract: the
// quality byte survives the round trip, a legacy v2-length payload
// decodes to the lossless tier, and an out-of-range tier is rejected —
// preview is only ever an explicit opt-in.
func TestRenderParamsQualityRoundTrip(t *testing.T) {
	p := RenderParams{Frame: 3, Width: 32, Height: 16, Quality: QualityPreview}
	got, err := decodeRenderParams(encodeRenderParams(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Quality != QualityPreview {
		t.Errorf("quality %d after round trip, want preview", got.Quality)
	}
	if def, err := decodeRenderParams(encodeRenderParams(RenderParams{Width: 8, Height: 8})); err != nil || def.Quality != QualityLossless {
		t.Errorf("zero-value params decode to quality %d (err %v), want lossless", def.Quality, err)
	}
	legacy := encodeRenderParams(p)[:renderParamsLenV2]
	if got, err = decodeRenderParams(legacy); err != nil || got.Quality != QualityLossless {
		t.Errorf("v2-length payload: quality %d, err %v; want lossless, nil", got.Quality, err)
	}
	bogus := encodeRenderParams(p)
	bogus[renderParamsLenV2] = 99
	if _, err := decodeRenderParams(bogus); err == nil {
		t.Error("out-of-range quality tier accepted")
	}
}

// TestGetDeltaPayloadRoundTrip covers the 8-byte GetDelta request
// codec and its malformed cases.
func TestGetDeltaPayloadRoundTrip(t *testing.T) {
	frame, base, err := decodeGetDelta(encodeGetDelta(9, 8))
	if err != nil || frame != 9 || base != 8 {
		t.Errorf("round trip = (%d, %d, %v), want (9, 8, nil)", frame, base, err)
	}
	for name, data := range map[string][]byte{
		"empty": {}, "short": {1, 0, 0}, "long": make([]byte, 12),
	} {
		if _, _, err := decodeGetDelta(data); err == nil {
			t.Errorf("%s payload decoded without error", name)
		}
	}
}

// dialRaw opens a raw TCP connection with a completed handshake, for
// driving the server below the Client abstraction.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := clientHello(conn); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestServerRejectsUnknownOpcode: a well-framed message with an
// unassigned opcode gets a *typed* protocol error (ErrCodeUnknownVerb)
// and the connection stays usable — framing integrity is intact, so a
// client mixing up the two service roles keeps its session. Compute
// against a plain frame service takes the same path (the verb belongs
// to Worker), covered from the client side in TestComputeAgainstService.
func TestServerRejectsUnknownOpcode(t *testing.T) {
	srv, _ := serveMem(t, testReps(t, 1))
	conn := dialRaw(t, srv.Addr())
	bw := bufio.NewWriter(conn)
	if err := writeMessage(bw, 5, 0x7e, nil); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := readMessage(conn, 0)
	if err != nil {
		t.Fatalf("no error response: %v", err)
	}
	if msg.op != opError || msg.reqID != 5 {
		t.Errorf("got op %#02x req %d, want opError echoing req 5", msg.op, msg.reqID)
	}
	if we := decodeWireError(msg.payload); we.Code != ErrCodeUnknownVerb {
		t.Errorf("error code %d, want ErrCodeUnknownVerb (%q)", we.Code, we.Msg)
	}
	// The connection survives: a known verb on the same session works.
	if err := writeMessage(bw, 6, opList, nil); err != nil {
		t.Fatal(err)
	}
	if msg, err = readMessage(conn, 0); err != nil || msg.op != opListOK || msg.reqID != 6 {
		t.Errorf("connection unusable after unknown opcode: op %#02x, err %v", msg.op, err)
	}
}

// TestServerDropsCorruptStream: framing damage (bad CRC) terminates
// the connection without tearing down the service.
func TestServerDropsCorruptStream(t *testing.T) {
	srv, _ := serveMem(t, testReps(t, 1))
	conn := dialRaw(t, srv.Addr())
	body := goodBody(1, opList, nil)
	if _, err := conn.Write(rawFrame(uint32(len(body)), body, 0xbad)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		t.Errorf("connection not cleanly closed: %v", err)
	}
	// Service still serves new clients.
	cli := dial(t, srv.Addr())
	if _, err := cli.List(); err != nil {
		t.Errorf("service dead after corrupt stream: %v", err)
	}
}

// TestServerRejectsBadHandshake covers magic and version mismatches.
func TestServerRejectsBadHandshake(t *testing.T) {
	srv, _ := serveMem(t, testReps(t, 1))
	for name, hello := range map[string][]byte{
		"bad magic":   []byte("XXXX\x01\x00\x00\x00"),
		"bad version": []byte("ACVP\x63\x00\x00\x00"),
		"truncated":   []byte("ACV"),
	} {
		conn, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(hello); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		buf := make([]byte, 64)
		for {
			if _, err := conn.Read(buf); err != nil {
				break // server hung up (or sent nothing and closed)
			}
		}
		conn.Close()
		_ = name
	}
	// Service remains healthy.
	cli := dial(t, srv.Addr())
	if _, err := cli.List(); err != nil {
		t.Errorf("service dead after bad handshakes: %v", err)
	}
}

// TestOversizedGetPayload: a Get with the wrong payload size is an
// application error, not a framing error — the connection survives.
func TestOversizedGetPayload(t *testing.T) {
	srv, _ := serveMem(t, testReps(t, 1))
	conn := dialRaw(t, srv.Addr())
	bw := bufio.NewWriter(conn)
	if err := writeMessage(bw, 9, opGet, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	msg, err := readMessage(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if msg.op != opError {
		t.Errorf("malformed get payload answered with op %#02x, want opError", msg.op)
	}
	if err := writeMessage(bw, 10, opList, nil); err != nil {
		t.Fatal(err)
	}
	if msg, err = readMessage(conn, 0); err != nil || msg.op != opListOK {
		t.Errorf("connection dead after payload error: op %#02x, err %v", msg.op, err)
	}
}

// TestDecodeMalformedComputeRequests covers the Compute framing layer:
// kernel-name damage and every corruption class of the extract blob's
// pario-idiom encoding. Every case must error cleanly.
func TestDecodeMalformedComputeRequests(t *testing.T) {
	pts := []vec.V3{vec.New(1, 2, 3), vec.New(4, 5, 6)}
	blob := appendExtractRequest(nil, pts, octree.DefaultConfig(), hybrid.ExtractConfig{VolumeRes: 4, Budget: 1})

	reqCases := map[string][]byte{
		"empty":          {},
		"zero name len":  {0, 'x'},
		"truncated name": {10, 'a', 'b'},
	}
	for name, data := range reqCases {
		if _, _, err := decodeComputeRequest(data); err == nil {
			t.Errorf("compute request %s: decoded without error", name)
		}
	}

	// A huge claimed point count must be rejected before any allocation.
	hugeCount := append([]byte(nil), blob...)
	for i := 0; i < 8; i++ {
		hugeCount[72+i] = 0xff
	}
	blobCases := map[string][]byte{
		"empty":              {},
		"truncated fixed":    blob[:20],
		"bad magic":          flipByte(blob, 0),
		"bad version":        flipByte(blob, 4),
		"truncated points":   blob[:len(blob)-10],
		"extra bytes":        append(append([]byte(nil), blob...), 1, 2, 3),
		"flipped config":     flipByte(blob, 16),
		"flipped point byte": flipByte(blob, 85),
		"flipped crc":        flipByte(blob, len(blob)-1),
		"hostile count":      hugeCount,
	}
	for name, data := range blobCases {
		if _, _, _, err := decodeExtractRequest(data, nil); err == nil {
			t.Errorf("extract blob %s: decoded without error", name)
		}
	}

	// And the good blob round-trips exactly.
	got, tcfg, ecfg, err := decodeExtractRequest(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) || got[0] != pts[0] || got[1] != pts[1] {
		t.Errorf("points mangled in round trip: %v", got)
	}
	if tcfg != octree.DefaultConfig() {
		t.Errorf("tree config mangled: %+v", tcfg)
	}
	if (ecfg != hybrid.ExtractConfig{VolumeRes: 4, Budget: 1}) {
		t.Errorf("extract config mangled: %+v", ecfg)
	}
}

// FuzzComputeFraming is the fourth protocol fuzzer: the Compute
// request splitter and the extract blob decoder must never panic or
// over-allocate on hostile input.
func FuzzComputeFraming(f *testing.F) {
	blob := appendExtractRequest(nil,
		[]vec.V3{vec.New(1, 2, 3)}, octree.DefaultConfig(), hybrid.ExtractConfig{VolumeRes: 4, Budget: 1})
	req, err := appendComputeHeader(nil, KernelHybridExtract)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(req, blob...))
	f.Add(blob)
	f.Add([]byte{1, 'k'})
	f.Add(make([]byte, 96))
	f.Fuzz(func(t *testing.T, data []byte) {
		if kernel, blob, err := decodeComputeRequest(data); err == nil {
			_ = kernel
			_, _, _, _ = decodeExtractRequest(blob, nil)
		}
		_, _, _, _ = decodeExtractRequest(data, nil)
	})
}

// TestWireErrorRoundTrip: typed errors survive the wire encoding, and
// legacy empty payloads decode to a generic error.
func TestWireErrorRoundTrip(t *testing.T) {
	in := &WireError{Code: ErrCodeUnknownKernel, Msg: "remote: no kernel"}
	out := decodeWireError(encodeWireError(in))
	if out.Code != in.Code || out.Msg != in.Msg {
		t.Errorf("round trip mangled error: %+v", out)
	}
	if plain := decodeWireError(encodeWireError(io.ErrUnexpectedEOF)); plain.Code != ErrCodeGeneric {
		t.Errorf("plain error encoded with code %d, want generic", plain.Code)
	}
	if empty := decodeWireError(nil); empty.Code != ErrCodeGeneric || empty.Msg == "" {
		t.Errorf("empty payload decoded to %+v", empty)
	}
}
