package remote

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/hybrid"
	"repro/internal/render"
	"repro/internal/vec"
	"repro/internal/volren"
)

// KernelRenderPartial is the third built-in kernel (protocol v6): the
// worker half of sort-last distributed rendering. One contiguous
// octree-ordered slice of a frame's halo points comes in with the
// camera and transfer-function parameters; the worker runs the exact
// local point pass over its sub-volume — splat selection hashed at
// the slice's global offset, rasterization depth-clipped to the
// slice's own bounds — and a compressed RGBA+depth partial
// framebuffer ("ACPB", render.CompressPartial) goes back for the
// requester's compositor. Compositing every partition's partial
// reproduces the single-node point pass bit for bit.
const KernelRenderPartial = "render.partial.v1"

// RenderPartialRequest is one sub-volume render: the inputs a worker
// needs to reproduce its slice of the frame exactly.
type RenderPartialRequest struct {
	Width, Height int      // framebuffer size
	Seq           int      // partition index in splat submission order
	Offset        int      // global index of Points[0] in the frame's point order
	ViewDir       vec.V3   // camera direction (LookAtBounds)
	PointScale    float64  // splat radius in pixels
	Opaque        bool     // fully-opaque points (Fig 4 style)
	Bounds        vec.AABB // the WHOLE frame's bounds — every partition frames the same camera
	Threshold     float64  // TF parameter: extraction threshold
	MaxLeafD      float64  // TF parameter: max leaf density
	Points        []vec.V3
	Density       []float32 // per-point leaf densities, len == len(Points)
}

// The render request blob ("ACPR" — accelerator partial render):
//
//	magic "ACPR" | u32 version | u32 w | u32 h | u32 seq | i64 offset |
//	3 f64 viewDir | f64 pointScale | u8 opaque | 6 f64 bounds |
//	f64 threshold | f64 maxLeafD | i64 n | n × (3 f64) | n × f32 |
//	u32 crc32 (all preceding bytes)
//
// Bounds/threshold/maxLeafD are the three representation fields the
// camera (render.LookAtBounds) and default TF (hybrid.DefaultTFParams)
// depend on, so the worker rebuilds both bit-identically without the
// frame's volume ever crossing the wire.

var magicPartialRender = [4]byte{'A', 'C', 'P', 'R'}

const (
	partialRenderVersion = 1
	// renderReqFixed is the blob size without the points: magic,
	// version, w, h, seq, offset, viewDir, pointScale, opaque flag,
	// bounds, threshold, maxLeafD, count, crc.
	renderReqFixed = 4 + 4 + 4 + 4 + 4 + 8 + 3*8 + 8 + 1 + 6*8 + 8 + 8 + 8 + 4
)

// appendRenderPartialRequest appends the render kernel's request blob.
func appendRenderPartialRequest(dst []byte, r *RenderPartialRequest) []byte {
	need := renderReqFixed + 28*len(r.Points)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	le := binary.LittleEndian
	dst = append(dst, magicPartialRender[:]...)
	dst = le.AppendUint32(dst, partialRenderVersion)
	dst = le.AppendUint32(dst, uint32(r.Width))
	dst = le.AppendUint32(dst, uint32(r.Height))
	dst = le.AppendUint32(dst, uint32(r.Seq))
	dst = le.AppendUint64(dst, uint64(int64(r.Offset)))
	for _, f := range []float64{
		r.ViewDir.X, r.ViewDir.Y, r.ViewDir.Z, r.PointScale,
	} {
		dst = le.AppendUint64(dst, math.Float64bits(f))
	}
	if r.Opaque {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	for _, f := range []float64{
		r.Bounds.Min.X, r.Bounds.Min.Y, r.Bounds.Min.Z,
		r.Bounds.Max.X, r.Bounds.Max.Y, r.Bounds.Max.Z,
		r.Threshold, r.MaxLeafD,
	} {
		dst = le.AppendUint64(dst, math.Float64bits(f))
	}
	dst = le.AppendUint64(dst, uint64(int64(len(r.Points))))
	for _, p := range r.Points {
		dst = le.AppendUint64(dst, math.Float64bits(p.X))
		dst = le.AppendUint64(dst, math.Float64bits(p.Y))
		dst = le.AppendUint64(dst, math.Float64bits(p.Z))
	}
	for _, d := range r.Density {
		dst = le.AppendUint32(dst, math.Float32bits(d))
	}
	return le.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// decodeRenderPartialRequest parses a render request blob, verifying
// the checksum. Nothing aliases p.
func decodeRenderPartialRequest(p []byte) (*RenderPartialRequest, error) {
	le := binary.LittleEndian
	if len(p) < renderReqFixed {
		return nil, fmt.Errorf("remote: render request truncated (%d bytes)", len(p))
	}
	if [4]byte(p[:4]) != magicPartialRender {
		return nil, fmt.Errorf("remote: bad partial-render magic %q", p[:4])
	}
	if v := le.Uint32(p[4:]); v != partialRenderVersion {
		return nil, fmt.Errorf("remote: unsupported partial-render version %d", v)
	}
	r := &RenderPartialRequest{
		Width:  int(le.Uint32(p[8:])),
		Height: int(le.Uint32(p[12:])),
		Seq:    int(le.Uint32(p[16:])),
		Offset: int(int64(le.Uint64(p[20:]))),
	}
	if r.Width < 1 || r.Height < 1 || r.Width > 4096 || r.Height > 4096 ||
		r.Width*r.Height > 1<<22 {
		return nil, fmt.Errorf("remote: implausible render size %dx%d", r.Width, r.Height)
	}
	r.ViewDir = vec.New(
		math.Float64frombits(le.Uint64(p[28:])),
		math.Float64frombits(le.Uint64(p[36:])),
		math.Float64frombits(le.Uint64(p[44:])))
	r.PointScale = math.Float64frombits(le.Uint64(p[52:]))
	r.Opaque = p[60] != 0
	r.Bounds = vec.Box(
		vec.New(
			math.Float64frombits(le.Uint64(p[61:])),
			math.Float64frombits(le.Uint64(p[69:])),
			math.Float64frombits(le.Uint64(p[77:]))),
		vec.New(
			math.Float64frombits(le.Uint64(p[85:])),
			math.Float64frombits(le.Uint64(p[93:])),
			math.Float64frombits(le.Uint64(p[101:]))))
	r.Threshold = math.Float64frombits(le.Uint64(p[109:]))
	r.MaxLeafD = math.Float64frombits(le.Uint64(p[117:]))
	n := int64(le.Uint64(p[125:]))
	if n < 0 || n > int64(maxBody)/28 {
		return nil, fmt.Errorf("remote: implausible render point count %d", n)
	}
	if int64(len(p)) != int64(renderReqFixed)+28*n {
		return nil, fmt.Errorf("remote: render request is %d bytes, want %d for %d points",
			len(p), int64(renderReqFixed)+28*n, n)
	}
	crcOff := len(p) - 4
	if got, want := le.Uint32(p[crcOff:]), crc32.ChecksumIEEE(p[:crcOff]); got != want {
		return nil, fmt.Errorf("remote: render request checksum mismatch (wire %08x, computed %08x)", got, want)
	}
	r.Points = make([]vec.V3, n)
	ptsOff := renderReqFixed - 4
	for i := range r.Points {
		off := ptsOff + 24*i
		r.Points[i] = vec.New(
			math.Float64frombits(le.Uint64(p[off:])),
			math.Float64frombits(le.Uint64(p[off+8:])),
			math.Float64frombits(le.Uint64(p[off+16:])))
	}
	r.Density = make([]float32, n)
	denOff := ptsOff + 24*int(n)
	for i := range r.Density {
		r.Density[i] = math.Float32frombits(le.Uint32(p[denOff+4*i:]))
	}
	return r, nil
}

// renderPartialKernel is the worker body of KernelRenderPartial: it
// rebuilds the frame's camera and default transfer function from the
// shipped parameters, runs the exact local point pass over its slice
// (selection at the global offset, depth-clipped to the slice's own
// bounds), and replies with the compressed partial framebuffer.
func renderPartialKernel() Kernel {
	return func(ctx context.Context, req []byte) ([]byte, error) {
		r, err := decodeRenderPartialRequest(req)
		if err != nil {
			return nil, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()}
		}
		tf, err := hybrid.DefaultTFParams(r.Threshold, r.MaxLeafD)
		if err != nil {
			return nil, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()}
		}
		cam, err := render.LookAtBounds(r.Bounds, r.ViewDir, math.Pi/3, float64(r.Width)/float64(r.Height))
		if err != nil {
			return nil, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fb, err := render.NewFramebuffer(r.Width, r.Height)
		if err != nil {
			return nil, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()}
		}
		sub := &hybrid.Representation{Points: r.Points, PointDensity: r.Density}
		volren.RenderPointPass(sub, tf, fb, cam, r.PointScale, r.Opaque,
			volren.PointPassOptions{Offset: r.Offset, Clip: true})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return render.AppendPartial(getBytes(0), fb, r.Seq), nil
	}
}

// ComputeRender ships one sub-volume render to the worker's
// render.partial.v1 kernel and decodes the partial framebuffer it
// sends back — the remote form of the frame's point pass restricted
// to req's slice, bit-identical to running that slice locally.
func (c *Client) ComputeRender(ctx context.Context, req *RenderPartialRequest) (*render.PartialFrame, error) {
	if len(req.Points) != len(req.Density) {
		return nil, fmt.Errorf("remote: render request has %d points but %d densities", len(req.Points), len(req.Density))
	}
	buf, err := appendComputeHeader(getBytes(0), KernelRenderPartial)
	if err != nil {
		return nil, err
	}
	buf = appendRenderPartialRequest(buf, req)
	msg, err := c.roundTripCtx(ctx, opCompute, buf)
	putBytes(buf)
	if err != nil {
		return nil, err
	}
	if msg.op != opComputeOK {
		return nil, fmt.Errorf("remote: unexpected compute response %#02x", msg.op)
	}
	pf, err := render.DecompressPartial(msg.payload)
	msg.recycle() // DecompressPartial copies into a fresh framebuffer
	return pf, err
}

// ComputeRender is Client.ComputeRender striped over the fleet: the
// request encodes once, a failed member's sub-volume re-ships the
// identical bytes to a survivor, and the decoded partial is
// bit-identical either way — so a composited frame survives worker
// loss unchanged.
func (f *Fleet) ComputeRender(ctx context.Context, req *RenderPartialRequest) (*render.PartialFrame, error) {
	if len(req.Points) != len(req.Density) {
		return nil, fmt.Errorf("remote: render request has %d points but %d densities", len(req.Points), len(req.Density))
	}
	wire := appendRenderPartialRequest(getBytes(0), req)
	out, err := f.Compute(ctx, wire)
	putBytes(wire)
	if err != nil {
		return nil, err
	}
	pf, err := render.DecompressPartial(out)
	putBytes(out)
	return pf, err
}
