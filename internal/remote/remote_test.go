package remote

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/render"
	"repro/internal/vec"
	"repro/internal/volren"
)

func testReps(t testing.TB, n int) []*hybrid.Representation {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	reps := make([]*hybrid.Representation, n)
	for f := 0; f < n; f++ {
		pts := make([]vec.V3, 3000)
		for i := range pts {
			pts[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		}
		tree, err := octree.Build(pts, octree.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: 8, Budget: 500})
		if err != nil {
			t.Fatal(err)
		}
		reps[f] = rep
	}
	return reps
}

func serveMem(t testing.TB, reps []*hybrid.Representation) (*Service, *MemStore) {
	t.Helper()
	store, err := NewMemStore(reps)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewService("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, store
}

func dial(t testing.TB, addr string) *Client {
	t.Helper()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

func TestServiceRoundTrip(t *testing.T) {
	reps := testReps(t, 3)
	srv, store := serveMem(t, reps)
	cli := dial(t, srv.Addr())

	li, err := cli.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if li.Frames != 3 || li.First != 0 || li.Live {
		t.Errorf("List = %+v, want 3 frames from 0, not live", li)
	}

	for i := 0; i < 3; i++ {
		rep, size, _, err := cli.FetchFrame(i)
		if err != nil {
			t.Fatalf("FetchFrame(%d): %v", i, err)
		}
		if rep.NumPoints() != reps[i].NumPoints() {
			t.Errorf("frame %d: %d points, want %d", i, rep.NumPoints(), reps[i].NumPoints())
		}
		if size != store.FrameBytes(i) {
			t.Errorf("frame %d: transferred %d bytes, store says %d", i, size, store.FrameBytes(i))
		}
		// The fetched frame re-encodes bit-identically: nothing was
		// lost or reordered in transit.
		enc, err := encodeRep(rep)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := store.EncodedFrame(i)
		if !bytes.Equal(enc, want) {
			t.Errorf("frame %d: fetched frame re-encodes differently", i)
		}
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	reps := testReps(t, 2)
	dir := t.TempDir()
	for i, rep := range reps {
		if err := rep.WriteFile(filepath.Join(dir, fmt.Sprintf("frame_%04d.achy", i))); err != nil {
			t.Fatal(err)
		}
	}
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.NumFrames() != 2 {
		t.Fatalf("dir store holds %d frames, want 2", store.NumFrames())
	}
	srv, err := NewService("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := dial(t, srv.Addr())
	for i := range reps {
		rep, size, _, err := cli.FetchFrame(i)
		if err != nil {
			t.Fatalf("FetchFrame(%d): %v", i, err)
		}
		if rep.NumPoints() != reps[i].NumPoints() {
			t.Errorf("frame %d: %d points, want %d", i, rep.NumPoints(), reps[i].NumPoints())
		}
		if fi, err := os.Stat(store.Path(i)); err == nil && size != fi.Size() {
			t.Errorf("frame %d: transferred %d bytes, file is %d", i, size, fi.Size())
		}
	}

	if _, err := NewDirStore(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}

func TestFetchMissingFrame(t *testing.T) {
	srv, _ := serveMem(t, testReps(t, 1))
	cli := dial(t, srv.Addr())
	if _, _, _, err := cli.FetchFrame(99); err == nil {
		t.Error("missing frame fetched without error")
	}
	// The connection survives an application-level error.
	if _, _, _, err := cli.FetchFrame(0); err != nil {
		t.Errorf("fetch after error: %v", err)
	}
}

func TestBandwidthThrottle(t *testing.T) {
	srv, _ := serveMem(t, testReps(t, 1))

	fast := dial(t, srv.Addr())
	_, size, fastTime, err := fast.FetchFrame(0)
	if err != nil {
		t.Fatal(err)
	}

	slow := dial(t, srv.Addr())
	slow.SetBandwidth(size * 10) // frame takes ~100 ms
	_, _, slowTime, err := slow.FetchFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if slowTime < 80*time.Millisecond {
		t.Errorf("throttled fetch took %v, want >= ~100ms", slowTime)
	}
	if slowTime <= fastTime {
		t.Errorf("throttled (%v) not slower than unthrottled (%v)", slowTime, fastTime)
	}
}

func TestTransferEstimate(t *testing.T) {
	// The paper's numbers: 100MB frame at 10MB/s ~ 10 s.
	d := TransferEstimate(100<<20, 10<<20)
	if d < 9*time.Second || d > 11*time.Second {
		t.Errorf("100MB at 10MB/s = %v, want ~10s", d)
	}
	if TransferEstimate(100, 0) != 0 {
		t.Error("zero bandwidth should return 0")
	}
}

// framesEqual asserts two framebuffers match bit for bit.
func framesEqual(t *testing.T, got, want *render.Framebuffer, what string) {
	t.Helper()
	if got.W != want.W || got.H != want.H {
		t.Fatalf("%s: size %dx%d, want %dx%d", what, got.W, got.H, want.W, want.H)
	}
	for i := range want.Color {
		if math.Float32bits(got.Color[i]) != math.Float32bits(want.Color[i]) {
			t.Fatalf("%s: color word %d differs", what, i)
		}
	}
	for i := range want.Depth {
		if math.Float32bits(got.Depth[i]) != math.Float32bits(want.Depth[i]) {
			t.Fatalf("%s: depth word %d differs", what, i)
		}
	}
}

func TestRenderMatchesLocal(t *testing.T) {
	reps := testReps(t, 2)
	srv, _ := serveMem(t, reps)
	cli := dial(t, srv.Addr())

	params := RenderParams{Frame: 1, Width: 96, Height: 72, ViewDir: vec.New(0.4, 0.3, 1)}
	remoteFB, wire, _, err := cli.Render(params)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}

	// The thin-client contract: the shipped image is bit-identical to
	// fetching the frame and rendering locally.
	tf, err := hybrid.DefaultTF(reps[1])
	if err != nil {
		t.Fatal(err)
	}
	localFB, _, _, err := volren.RenderStill(reps[1], tf, 96, 72, params.ViewDir)
	if err != nil {
		t.Fatal(err)
	}
	framesEqual(t, remoteFB, localFB, "server-rendered frame")

	// And the economics: the compressed image is far smaller than the
	// raw framebuffer it stands for, and — at realistic frame sizes —
	// smaller than the frame transfer it replaces (checked against a
	// paper-regime frame in TestRenderEconomics).
	if raw := int64(96 * 72 * 20); wire >= raw {
		t.Errorf("server render shipped %d bytes, raw framebuffer is %d", wire, raw)
	}

	// TF overrides change the image but still decode cleanly.
	styled, _, _, err := cli.Render(RenderParams{
		Frame: 1, Width: 96, Height: 72, ViewDir: params.ViewDir,
		VolumeOpacity: 0.5, LogDomainK: 100,
	})
	if err != nil {
		t.Fatalf("styled render: %v", err)
	}
	same := true
	for i := range styled.Color {
		if styled.Color[i] != remoteFB.Color[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("TF overrides produced an identical image")
	}

	if _, _, _, err := cli.Render(RenderParams{Frame: 42, Width: 8, Height: 8, ViewDir: params.ViewDir}); err == nil {
		t.Error("render of missing frame succeeded")
	}
}

// TestRenderEconomics builds a paper-regime frame (every particle a
// halo point) and checks the thin-client trade: the RLE image costs a
// small fraction of the frame transfer it replaces.
func TestRenderEconomics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]vec.V3, 40000)
	for i := range pts {
		pts[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	tree, err := octree.Build(pts, octree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: 16, Budget: int64(len(pts) / 2)})
	if err != nil {
		t.Fatal(err)
	}
	srv, store := serveMem(t, []*hybrid.Representation{rep})
	cli := dial(t, srv.Addr())
	_, wire, _, err := cli.Render(RenderParams{Frame: 0, Width: 128, Height: 128, ViewDir: vec.New(0.4, 0.3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if frame := store.FrameBytes(0); wire*2 >= frame {
		t.Errorf("server render shipped %d bytes vs %d frame bytes; want at least 2x savings", wire, frame)
	}
}

// TestMultiClientStress runs >= 8 concurrent clients mixing Get,
// Subscribe and Render on one service, asserting every transfer is
// bit-identical to the source data. Run under -race in CI.
func TestMultiClientStress(t *testing.T) {
	reps := testReps(t, 4)
	srv, store := serveMem(t, reps)

	tf, err := hybrid.DefaultTF(reps[2])
	if err != nil {
		t.Fatal(err)
	}
	wantFB, _, _, err := volren.RenderStill(reps[2], tf, 48, 48, vec.New(0.4, 0.3, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantBlob := render.CompressFramebuffer(wantFB)

	const clients = 8
	var wg sync.WaitGroup
	// Every goroutine (outer + 12 inner per client) may report one
	// error; size for all of them so a broad failure can't block sends
	// before the post-Wait drain.
	errs := make(chan error, clients*13)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			sub, err := cli.Subscribe()
			if err != nil {
				errs <- fmt.Errorf("client %d: subscribe: %w", c, err)
				return
			}
			defer sub.Close()
			if n := <-sub.Updates; n != 4 {
				errs <- fmt.Errorf("client %d: initial update %d, want 4", c, n)
				return
			}
			// Pipeline concurrent fetches and renders on one session.
			var inner sync.WaitGroup
			for k := 0; k < 6; k++ {
				inner.Add(1)
				go func(k int) {
					defer inner.Done()
					i := (c + k) % len(reps)
					rep, _, _, err := cli.FetchFrame(i)
					if err != nil {
						errs <- fmt.Errorf("client %d: fetch %d: %w", c, i, err)
						return
					}
					enc, err := encodeRep(rep)
					if err != nil {
						errs <- err
						return
					}
					want, _ := store.EncodedFrame(i)
					if !bytes.Equal(enc, want) {
						errs <- fmt.Errorf("client %d: frame %d not bit-identical", c, i)
					}
				}(k)
				inner.Add(1)
				go func() {
					defer inner.Done()
					fb, _, _, err := cli.Render(RenderParams{Frame: 2, Width: 48, Height: 48, ViewDir: vec.New(0.4, 0.3, 1)})
					if err != nil {
						errs <- fmt.Errorf("client %d: render: %w", c, err)
						return
					}
					if !bytes.Equal(render.CompressFramebuffer(fb), wantBlob) {
						errs <- fmt.Errorf("client %d: rendered frame not bit-identical", c)
					}
				}()
			}
			inner.Wait()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServiceCloseUnblocksClients(t *testing.T) {
	srv, _ := serveMem(t, testReps(t, 1))
	cli := dial(t, srv.Addr())
	if _, _, _, err := cli.FetchFrame(0); err != nil {
		t.Fatal(err)
	}
	sub, err := cli.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	<-sub.Updates
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.Updates {
		}
	}()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("subscription not closed after service shutdown")
	}
	if _, _, _, err := cli.FetchFrame(0); err == nil {
		t.Error("fetch succeeded after service close")
	}
}
