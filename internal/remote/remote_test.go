package remote

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/vec"
)

func testReps(t *testing.T, n int) []*hybrid.Representation {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	reps := make([]*hybrid.Representation, n)
	for f := 0; f < n; f++ {
		pts := make([]vec.V3, 3000)
		for i := range pts {
			pts[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		}
		tree, err := octree.Build(pts, octree.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: 8, Budget: 500})
		if err != nil {
			t.Fatal(err)
		}
		reps[f] = rep
	}
	return reps
}

func TestServerClientRoundTrip(t *testing.T) {
	reps := testReps(t, 3)
	srv, err := NewServer("127.0.0.1:0", reps)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()

	n, err := cli.NumFrames()
	if err != nil {
		t.Fatalf("NumFrames: %v", err)
	}
	if n != 3 {
		t.Errorf("NumFrames = %d, want 3", n)
	}

	for i := 0; i < 3; i++ {
		rep, size, _, err := cli.FetchFrame(i)
		if err != nil {
			t.Fatalf("FetchFrame(%d): %v", i, err)
		}
		if rep.NumPoints() != reps[i].NumPoints() {
			t.Errorf("frame %d: %d points, want %d", i, rep.NumPoints(), reps[i].NumPoints())
		}
		if size != srv.FrameBytes(i) {
			t.Errorf("frame %d: transferred %d bytes, server says %d", i, size, srv.FrameBytes(i))
		}
	}
}

func TestFetchMissingFrame(t *testing.T) {
	reps := testReps(t, 1)
	srv, err := NewServer("127.0.0.1:0", reps)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, _, _, err := cli.FetchFrame(99); err == nil {
		t.Error("missing frame fetched without error")
	}
}

func TestBandwidthThrottle(t *testing.T) {
	reps := testReps(t, 1)
	srv, err := NewServer("127.0.0.1:0", reps)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Unthrottled fetch time.
	fast, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	_, size, fastTime, err := fast.FetchFrame(0)
	if err != nil {
		t.Fatal(err)
	}

	// Throttled to a rate that makes the frame take >= 100ms.
	slow, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slow.BandwidthBps = size * 10 // frame takes ~100 ms
	_, _, slowTime, err := slow.FetchFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if slowTime < 80*time.Millisecond {
		t.Errorf("throttled fetch took %v, want >= ~100ms", slowTime)
	}
	if slowTime <= fastTime {
		t.Errorf("throttled (%v) not slower than unthrottled (%v)", slowTime, fastTime)
	}
}

func TestTransferEstimate(t *testing.T) {
	// The paper's numbers: 100MB frame at 10MB/s ~ 10 s.
	d := TransferEstimate(100<<20, 10<<20)
	if d < 9*time.Second || d > 11*time.Second {
		t.Errorf("100MB at 10MB/s = %v, want ~10s", d)
	}
	if TransferEstimate(100, 0) != 0 {
		t.Error("zero bandwidth should return 0")
	}
}

func TestMultipleClients(t *testing.T) {
	reps := testReps(t, 2)
	srv, err := NewServer("127.0.0.1:0", reps)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan error, 4)
	for c := 0; c < 4; c++ {
		go func() {
			cli, err := Dial(srv.Addr())
			if err != nil {
				done <- err
				return
			}
			defer cli.Close()
			for i := 0; i < 2; i++ {
				if _, _, _, err := cli.FetchFrame(i); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for c := 0; c < 4; c++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent client: %v", err)
		}
	}
}
