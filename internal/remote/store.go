package remote

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/hybrid"
)

// FrameStore is the read side of the service: an ordered collection of
// hybrid frames. Indices run [0, NumFrames()); live stores may have
// evicted old indices, in which case Frame returns an error.
type FrameStore interface {
	NumFrames() int
	Frame(i int) (*hybrid.Representation, error)
}

// The write side of the service is core.FrameSink: a running pipeline
// publishes each extracted frame through StreamOptions.Sink /
// FieldStreamOptions.Sink, so remote viewers watch the simulation
// while it computes. LiveRing implements it (asserted in core, which
// sits above this package — core places distributed stages on remote
// workers, so remote must not import it back).

// LiveStore extends FrameStore with change notification: Watch
// registers fn to be called with the new frame count after each
// publish, until the returned cancel runs. fn must not block.
type LiveStore interface {
	FrameStore
	Watch(fn func(frames int)) (cancel func())
}

// encodedFrameStore is an optional fast path: stores that hold the
// wire encoding serve Get without re-encoding.
type encodedFrameStore interface {
	EncodedFrame(i int) ([]byte, error)
}

// firstFrameStore is an optional extension reporting the oldest index
// still available (live rings evict).
type firstFrameStore interface {
	FirstFrame() int
}

// encodeRep serializes a representation to its wire form (identical
// bytes to Representation.Write, without the streaming layer).
func encodeRep(rep *hybrid.Representation) ([]byte, error) {
	return rep.AppendBinary(nil), nil
}

// ---- MemStore --------------------------------------------------------

// MemStore serves a fixed, fully-resident set of frames — the
// post-hoc setting where extraction already ran. Frames are encoded
// once at construction and served from the encoded cache.
type MemStore struct {
	reps    []*hybrid.Representation
	encoded [][]byte
}

// NewMemStore encodes the given representations eagerly so a bad frame
// fails construction, not a client request.
func NewMemStore(frames []*hybrid.Representation) (*MemStore, error) {
	s := &MemStore{
		reps:    append([]*hybrid.Representation(nil), frames...),
		encoded: make([][]byte, len(frames)),
	}
	for i, rep := range s.reps {
		enc, err := encodeRep(rep)
		if err != nil {
			return nil, fmt.Errorf("remote: encoding frame %d: %w", i, err)
		}
		s.encoded[i] = enc
	}
	return s, nil
}

// NumFrames implements FrameStore.
func (s *MemStore) NumFrames() int { return len(s.reps) }

// Frame implements FrameStore.
func (s *MemStore) Frame(i int) (*hybrid.Representation, error) {
	if i < 0 || i >= len(s.reps) {
		return nil, fmt.Errorf("remote: no frame %d (store holds %d)", i, len(s.reps))
	}
	return s.reps[i], nil
}

// EncodedFrame returns the cached wire encoding of frame i.
func (s *MemStore) EncodedFrame(i int) ([]byte, error) {
	if i < 0 || i >= len(s.encoded) {
		return nil, fmt.Errorf("remote: no frame %d (store holds %d)", i, len(s.encoded))
	}
	return s.encoded[i], nil
}

// FrameBytes returns the encoded size of frame i (0 out of range).
func (s *MemStore) FrameBytes(i int) int64 {
	if i < 0 || i >= len(s.encoded) {
		return 0
	}
	return int64(len(s.encoded[i]))
}

// ---- DirStore --------------------------------------------------------

// DirStore serves the .achy hybrid-frame files of a directory in
// lexical order — the paper's batch workflow, where the extraction
// program leaves one file per time step on shared disk. Files are
// already in wire encoding, so Get streams bytes straight off disk;
// only server-side Render pays a decode.
type DirStore struct {
	paths []string

	mu      sync.Mutex
	decoded map[int]*hybrid.Representation // bounded render-path cache
	order   []int                          // insertion order for eviction
}

// maxDecodedFrames bounds DirStore's decode cache: enough to absorb a
// few clients rendering the same recent frames, small enough that a
// thin client scrubbing a long run can't grow server memory without
// bound (frames are ~100MB at paper scale).
const maxDecodedFrames = 4

// NewDirStore scans dir for *.achy files. Structurally incomplete
// files — the partial leftovers of a writer killed mid-frame (current
// writers rename atomically, but copies and older producers don't) —
// are skipped rather than served: a partial frame would fail every Get
// with a CRC error, and List/Frame indices must name frames that
// actually decode.
func NewDirStore(dir string) (*DirStore, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.achy"))
	if err != nil {
		return nil, fmt.Errorf("remote: scanning %s: %w", dir, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("remote: no .achy frames in %s", dir)
	}
	complete := paths[:0]
	for _, p := range paths {
		if hybrid.FileComplete(p) {
			complete = append(complete, p)
		}
	}
	if len(complete) == 0 {
		return nil, fmt.Errorf("remote: no complete .achy frames in %s (partial files skipped)", dir)
	}
	sort.Strings(complete)
	return &DirStore{paths: complete, decoded: make(map[int]*hybrid.Representation)}, nil
}

// NumFrames implements FrameStore.
func (s *DirStore) NumFrames() int { return len(s.paths) }

// Path returns the file backing frame i.
func (s *DirStore) Path(i int) string { return s.paths[i] }

// Frame implements FrameStore, caching decodes for the render path.
func (s *DirStore) Frame(i int) (*hybrid.Representation, error) {
	if i < 0 || i >= len(s.paths) {
		return nil, fmt.Errorf("remote: no frame %d (directory holds %d)", i, len(s.paths))
	}
	s.mu.Lock()
	rep, ok := s.decoded[i]
	s.mu.Unlock()
	if ok {
		return rep, nil
	}
	rep, err := hybrid.ReadFile(s.paths[i])
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if _, dup := s.decoded[i]; !dup {
		s.decoded[i] = rep
		s.order = append(s.order, i)
		if len(s.order) > maxDecodedFrames {
			delete(s.decoded, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.mu.Unlock()
	return rep, nil
}

// EncodedFrame reads frame i's file — already wire-encoded.
func (s *DirStore) EncodedFrame(i int) ([]byte, error) {
	if i < 0 || i >= len(s.paths) {
		return nil, fmt.Errorf("remote: no frame %d (directory holds %d)", i, len(s.paths))
	}
	return os.ReadFile(s.paths[i])
}

// ---- LiveRing --------------------------------------------------------

// LiveRing is the in-situ store: a bounded, latest-wins ring that a
// running pipeline publishes into (it implements FrameSink) while the
// service reads from it (FrameStore + LiveStore). Publish never blocks
// on consumers — the oldest frame is simply evicted — so a slow remote
// client can never backpressure the simulation; it just sees the
// latest frames the ring still holds.
type LiveRing struct {
	mu       sync.Mutex
	cap      int
	frames   []liveFrame // most recent min(cap, total) frames, oldest first
	total    int         // frames published so far
	watchers map[int]func(int)
	nextW    int
}

type liveFrame struct {
	index   int
	rep     *hybrid.Representation
	encoded []byte
}

// NewLiveRing returns a ring retaining the most recent capacity frames.
func NewLiveRing(capacity int) (*LiveRing, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("remote: live ring capacity %d must be >= 1", capacity)
	}
	return &LiveRing{cap: capacity, watchers: make(map[int]func(int))}, nil
}

// Publish implements FrameSink: encode once, append, evict the oldest
// beyond capacity, and notify watchers. Frames must arrive in index
// order (the pipeline's publish stage guarantees it).
func (r *LiveRing) Publish(index int, rep *hybrid.Representation) error {
	enc, err := encodeRep(rep)
	if err != nil {
		return fmt.Errorf("remote: encoding live frame %d: %w", index, err)
	}
	r.mu.Lock()
	if index != r.total {
		r.mu.Unlock()
		return fmt.Errorf("remote: live frame %d out of order (expected %d)", index, r.total)
	}
	r.frames = append(r.frames, liveFrame{index: index, rep: rep, encoded: enc})
	if len(r.frames) > r.cap {
		r.frames[0] = liveFrame{} // release the evicted frame's memory
		r.frames = r.frames[1:]
	}
	r.total++
	total := r.total
	fns := make([]func(int), 0, len(r.watchers))
	for _, fn := range r.watchers {
		fns = append(fns, fn)
	}
	r.mu.Unlock()
	for _, fn := range fns {
		fn(total)
	}
	return nil
}

// NumFrames implements FrameStore: the count of frames published so
// far (not all still resident).
func (r *LiveRing) NumFrames() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// FirstFrame returns the oldest index still resident.
func (r *LiveRing) FirstFrame() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - len(r.frames)
}

// frame locates index i under the lock.
func (r *LiveRing) frame(i int) (liveFrame, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	first := r.total - len(r.frames)
	if i < 0 || i >= r.total {
		return liveFrame{}, fmt.Errorf("remote: no frame %d (published %d)", i, r.total)
	}
	if i < first {
		return liveFrame{}, fmt.Errorf("remote: frame %d evicted (ring holds [%d,%d))", i, first, r.total)
	}
	return r.frames[i-first], nil
}

// Frame implements FrameStore.
func (r *LiveRing) Frame(i int) (*hybrid.Representation, error) {
	f, err := r.frame(i)
	if err != nil {
		return nil, err
	}
	return f.rep, nil
}

// EncodedFrame serves the encoding captured at publish time.
func (r *LiveRing) EncodedFrame(i int) ([]byte, error) {
	f, err := r.frame(i)
	if err != nil {
		return nil, err
	}
	return f.encoded, nil
}

// Watch implements LiveStore.
func (r *LiveRing) Watch(fn func(frames int)) (cancel func()) {
	r.mu.Lock()
	id := r.nextW
	r.nextW++
	r.watchers[id] = fn
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.watchers, id)
		r.mu.Unlock()
	}
}

// listInfo summarizes any store for the List response.
func listInfo(s FrameStore) ListInfo {
	li := ListInfo{Frames: s.NumFrames()}
	if fs, ok := s.(firstFrameStore); ok {
		li.First = fs.FirstFrame()
	}
	_, li.Live = s.(LiveStore)
	return li
}
