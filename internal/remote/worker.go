package remote

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fieldline"
	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/pipeline"
	"repro/internal/vec"
)

// Kernel is one named remote stage body: decode the request blob,
// compute, encode the reply blob. Kernels run concurrently (one
// goroutine per in-flight Compute) and must not retain req after
// returning — the worker recycles both buffers. ctx is cancelled when
// the requesting connection dies, so long kernels can abort work
// nobody will read.
type Kernel func(ctx context.Context, req []byte) ([]byte, error)

// Worker is the compute half of the distributed stage engine: a
// service hosting named stage kernels behind the Compute verb, so a
// pipeline's Map stage can run on this process while the stream's
// orchestration stays with the requester — the paper's split of
// heavy per-frame compute away from the producing machine. NewWorker
// registers the built-in kernels (hybrid extraction, field-line
// tracing, and the v6 sort-last partial render); Register adds more. Workers advertise their kernel set
// over the v4 Kernels verb, which is how a Fleet verifies a member's
// provisioning before dispatching frames to it. cmd/vizworker is the
// CLI host.
type Worker struct {
	srv *server

	// draining refuses new Computes (ErrCodeUnavailable) while
	// Shutdown waits for the in-flight ones — the graceful half of
	// going away, vs Close's immediate severing.
	draining atomic.Bool
	inflight sync.WaitGroup

	mu      sync.RWMutex
	kernels map[string]Kernel
}

// NewWorker starts a worker on addr (use "127.0.0.1:0" for an
// ephemeral port) with the built-in kernels registered.
func NewWorker(addr string) (*Worker, error) {
	w := &Worker{kernels: make(map[string]Kernel)}
	w.Register(KernelHybridExtract, hybridExtractKernel())
	w.Register(KernelFieldlineTrace, fieldlineTraceKernel())
	w.Register(KernelRenderPartial, renderPartialKernel())
	srv, err := newServer(addr, w.handle)
	if err != nil {
		return nil, err
	}
	w.srv = srv
	return w, nil
}

// Register adds (or replaces) a named kernel. Safe to call while the
// worker is serving.
func (w *Worker) Register(name string, k Kernel) {
	w.mu.Lock()
	w.kernels[name] = k
	w.mu.Unlock()
}

// Kernels lists the registered kernel names, sorted — the set the
// worker advertises over the Kernels verb.
func (w *Worker) Kernels() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	names := make([]string, 0, len(w.kernels))
	for name := range w.kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Addr returns the listening address.
func (w *Worker) Addr() string { return w.srv.Addr() }

// Close stops accepting, severs every connection (cancelling in-flight
// kernels' contexts), and waits for all handlers to unwind.
func (w *Worker) Close() error { return w.srv.Close() }

// Shutdown drains the worker gracefully: stop accepting connections,
// refuse new Compute requests with ErrCodeUnavailable (so a fleet
// re-dispatches them to surviving members instead of losing frames),
// let the in-flight kernels finish and their replies reach the wire,
// then sever what remains. ctx bounds the wait — when it expires the
// remaining kernels are cut off Close-style. This is what
// cmd/vizworker runs on SIGINT/SIGTERM, so killing a worker
// mid-compute hands its frames back rather than truncating them.
func (w *Worker) Shutdown(ctx context.Context) error {
	w.draining.Store(true)
	w.srv.StopAccepting()
	done := make(chan struct{})
	go func() {
		w.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	return w.srv.Close()
}

// handle runs one connection: handshake, then a read loop spawning a
// goroutine per Compute so a slow kernel doesn't stall the frames
// queued behind it — the requester's in-flight frames all make
// progress and its reorderer restores frame order. Framing errors
// terminate the connection; well-framed requests for verbs a worker
// does not speak get a typed ErrCodeUnknownVerb reply and the
// connection stays up.
func (w *Worker) handle(conn net.Conn) {
	if err := serverHello(conn); err != nil {
		return
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	cw := newConnWriter(conn)

	// On exit: cancel the kernels' context first, then wait for the
	// request goroutines — the reverse order would deadlock behind a
	// kernel parked on ctx (defers run last-in-first-out).
	var reqs sync.WaitGroup
	defer reqs.Wait()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	for {
		msg, err := readMessage(br, 0)
		if err != nil {
			return
		}
		switch msg.op {
		case opCompute:
			if w.draining.Load() {
				msg.recycle()
				if cw.sendErr(msg.reqID, &WireError{
					Code: ErrCodeUnavailable,
					Msg:  "remote: worker is draining",
				}) != nil {
					return
				}
				continue
			}
			reqs.Add(1)
			w.inflight.Add(1)
			go func(m message) {
				defer reqs.Done()
				defer w.inflight.Done()
				w.serveCompute(ctx, cw, m)
			}(msg)
		case opPing:
			msg.recycle()
			if cw.send(msg.reqID, opPingOK, nil) != nil {
				return
			}
		case opKernels:
			msg.recycle()
			payload, err := encodeKernelList(w.Kernels())
			if err != nil {
				if cw.sendErr(msg.reqID, err) != nil {
					return
				}
				continue
			}
			if cw.send(msg.reqID, opKernelsOK, payload) != nil {
				return
			}
		default:
			if cw.sendErr(msg.reqID, &WireError{
				Code: ErrCodeUnknownVerb,
				Msg:  fmt.Sprintf("remote: worker does not speak opcode %#02x", msg.op),
			}) != nil {
				return
			}
		}
	}
}

// serveCompute runs one kernel invocation and recycles both payload
// buffers once they are off to the wire.
func (w *Worker) serveCompute(ctx context.Context, cw *connWriter, msg message) {
	name, blob, err := decodeComputeRequest(msg.payload)
	if err != nil {
		cw.sendErr(msg.reqID, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()})
		msg.recycle()
		return
	}
	w.mu.RLock()
	k := w.kernels[name]
	w.mu.RUnlock()
	if k == nil {
		cw.sendErr(msg.reqID, &WireError{
			Code: ErrCodeUnknownKernel,
			Msg:  fmt.Sprintf("remote: worker has no kernel %q", name),
		})
		msg.recycle()
		return
	}
	out, err := k(ctx, blob)
	msg.recycle()
	if err != nil {
		cw.sendErr(msg.reqID, err)
		return
	}
	if len(out) > maxBody-msgOverhead {
		cw.sendErr(msg.reqID, fmt.Errorf("remote: kernel %s reply (%d bytes) exceeds the message limit", name, len(out)))
		return
	}
	cw.send(msg.reqID, opComputeOK, out)
	putBytes(out)
}

// hybridExtractKernel builds the standard distributed stage: a
// projected point set comes in, the worker runs the exact local
// partition+extract pair — octree.Build then hybrid.Extract with the
// shipped configs — and the hybrid representation goes back in .achy
// encoding. Point-set scratch and reply buffers recycle across frames.
func hybridExtractKernel() Kernel {
	scratch := pipeline.NewSlicePool[vec.V3]()
	return func(ctx context.Context, req []byte) ([]byte, error) {
		buf := scratch.Get(0)
		pts, tcfg, ecfg, err := decodeExtractRequest(req, *buf)
		if err != nil {
			scratch.Put(buf)
			return nil, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()}
		}
		*buf = pts
		if err := ctx.Err(); err != nil {
			scratch.Put(buf)
			return nil, err
		}
		tree, err := octree.Build(pts, tcfg)
		scratch.Put(buf) // Build copies what it keeps
		if err != nil {
			return nil, err
		}
		// Phase boundary: if the requester vanished mid-Build, skip the
		// extract nobody will read.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := hybrid.Extract(tree, ecfg)
		if err != nil {
			return nil, err
		}
		return rep.AppendBinary(getBytes(0)), nil
	}
}

// fieldlineTraceKernel hosts batch field-line integration: a named
// analytic field plus a seed set come in, the worker runs the exact
// local fieldline.TraceAll, and the traced lines go back in full
// double precision — so a remote trace is bit-identical to a local
// one. This is the second built-in kernel, giving fleets a
// heterogeneous kernel set to advertise and verify against.
func fieldlineTraceKernel() Kernel {
	return func(ctx context.Context, req []byte) ([]byte, error) {
		spec, seeds, cfg, sign, workers, err := decodeTraceRequest(req)
		if err != nil {
			return nil, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()}
		}
		f, err := spec.Field()
		if err != nil {
			return nil, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lines, err := fieldline.TraceAll(f, seeds, cfg, sign, workers)
		if err != nil {
			return nil, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()}
		}
		return appendTraceReply(getBytes(0), lines), nil
	}
}
