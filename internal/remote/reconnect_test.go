package remote

import (
	"bytes"
	"errors"
	"io"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// fastReconnectRetry keeps the chaos tests deterministic and quick: no
// jitter, millisecond backoff, enough attempts to ride out one injected
// fault plus the dial behind it.
var fastReconnectRetry = pipeline.RetryPolicy{
	MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: -1,
}

// TestReconnectBitIdenticalResume is the tentpole chaos test: a
// resilient subscription whose connection is severed at a deterministic
// byte offset mid-stream must deliver every frame exactly once, in
// order, each payload bit-identical to the server's stored encoding —
// the resumed stream indistinguishable from an uninterrupted one.
//
// The fault fires on the first connection's write side at offset 100:
// past the 8-byte hello, the 17-byte subscribe and the first fetches,
// landing inside a mid-stream GetDelta request. The reconnect layer
// must classify the loss transient, redial, re-subscribe, and catch up
// from the last held frame over GetDelta.
func TestReconnectBitIdenticalResume(t *testing.T) {
	const nFrames = 6
	reps := correlatedReps(t, nFrames)
	ring, err := NewLiveRing(16)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if err := ring.Publish(i, rep); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServiceWith("127.0.0.1:0", ring, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var dials atomic.Int32
	rc, err := DialReconnect(srv.Addr(), ReconnectOptions{
		// Heartbeats off so the byte stream is exactly the verbs below
		// and the fault offset is deterministic.
		Client: ClientOptions{HeartbeatInterval: -1},
		Retry:  fastReconnectRetry,
		Dial: func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) == 1 {
				// First connection only: sever the write side after 100
				// bytes — inside the GetDelta request for frame 3.
				return newFaultConn(conn, faultPoint{}, faultPoint{kind: faultReset, offset: 100}), nil
			}
			return conn, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	sub, err := rc.SubscribeResume(-1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	got := make([]ResumedFrame, 0, nFrames)
	timeout := time.After(30 * time.Second)
	for len(got) < nFrames {
		select {
		case f, ok := <-sub.Frames:
			if !ok {
				t.Fatalf("feed closed after %d frames: %v", len(got), sub.Err())
			}
			got = append(got, f)
		case <-timeout:
			t.Fatalf("timed out after %d frames", len(got))
		}
	}

	for i, f := range got {
		if f.Index != i {
			t.Fatalf("frame %d delivered at position %d — order or duplication broken", f.Index, i)
		}
		want, err := ring.EncodedFrame(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Payload, want) {
			t.Errorf("frame %d payload differs from the store's encoding (%d vs %d bytes)", i, len(f.Payload), len(want))
		}
	}
	if n := dials.Load(); n != 2 {
		t.Errorf("dials = %d, want 2 (one faulted, one resumed)", n)
	}
	if n := rc.Redials(); n != 1 {
		t.Errorf("Redials() = %d, want 1", n)
	}
	if n := sub.Skipped(); n != 0 {
		t.Errorf("Skipped() = %d, want 0 — the gapless guarantee broke", n)
	}
}

// TestReconnectHeartbeatDetectsDeadServer: a server that completes the
// handshake and then never answers anything must be declared dead by
// the client's heartbeat watchdog — the connection fails with an error
// wrapping ErrClientClosed instead of hanging forever.
func TestReconnectHeartbeatDetectsDeadServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if err := serverHello(conn); err != nil {
					return
				}
				io.Copy(io.Discard, conn) // swallow everything, answer nothing
			}(conn)
		}
	}()

	cli, err := DialWith(ln.Addr().String(), ClientOptions{
		HeartbeatInterval: 20 * time.Millisecond,
		IdleTimeout:       100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	select {
	case <-cli.done:
	case <-time.After(5 * time.Second):
		t.Fatal("heartbeat watchdog never declared the silent peer dead")
	}
	if _, err := cli.List(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("List after watchdog kill = %v, want ErrClientClosed in the chain", err)
	}
}

// TestServiceIdleTimeoutReapsDeadPeer is the server half of liveness:
// a client that never sends anything (heartbeats disabled) must be
// reaped by the service's idle deadline, freeing its session slot.
func TestServiceIdleTimeoutReapsDeadPeer(t *testing.T) {
	store, err := NewMemStore(testReps(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServiceWith("127.0.0.1:0", store, ServiceOptions{IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := DialWith(srv.Addr(), ClientOptions{HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.List(); err != nil {
		t.Fatal(err)
	}
	if n := srv.SessionCount(); n != 1 {
		t.Fatalf("SessionCount = %d after dial, want 1", n)
	}

	// The client goes silent; the server must hang up within the idle
	// deadline, which the client observes as a dead connection.
	select {
	case <-cli.done:
	case <-time.After(5 * time.Second):
		t.Fatal("idle server never hung up on the silent client")
	}
	waitFor(t, "session reaped", func() bool { return srv.SessionCount() == 0 })
}

// TestAdmissionRefusedRetriesToSuccess: a MaxSessions-refused client is
// told to retry (ErrCodeUnavailable), and a ReconnectClient does — the
// call succeeds as soon as an admitted session departs, without the
// caller seeing the refusals.
func TestAdmissionRefusedRetriesToSuccess(t *testing.T) {
	store, err := NewMemStore(testReps(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServiceWith("127.0.0.1:0", store, ServiceOptions{MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	holder := dial(t, srv.Addr())
	if _, err := holder.List(); err != nil {
		t.Fatal(err) // the slot is definitely taken now
	}

	rc, err := DialReconnect(srv.Addr(), ReconnectOptions{
		Client: ClientOptions{HeartbeatInterval: -1},
		Retry: pipeline.RetryPolicy{
			MaxAttempts: 100, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Jitter: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	result := make(chan error, 1)
	go func() {
		_, err := rc.List()
		result <- err
	}()

	// Let the refused client burn a few retries, then free the slot.
	time.Sleep(100 * time.Millisecond)
	holder.Close()

	select {
	case err := <-result:
		if err != nil {
			t.Fatalf("List through admission pressure failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("List never completed after the slot freed")
	}
	if n := srv.Stats().SessionsRefused; n == 0 {
		t.Error("SessionsRefused = 0 — the test never actually hit admission control")
	}
}

// TestClientClosedTyped pins the fail-fast contract: every call after
// Close — or after the server hangs up — fails with an error chain
// carrying ErrClientClosed, promptly, whether the close was local or
// remote.
func TestClientClosedTyped(t *testing.T) {
	srv, _ := serveMem(t, testReps(t, 1))

	local, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	local.Close()
	start := time.Now()
	if _, err := local.List(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("List after Close = %v, want ErrClientClosed in the chain", err)
	}
	if _, err := local.Subscribe(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("Subscribe after Close = %v, want ErrClientClosed in the chain", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Errorf("closed-client calls took %v, want fail-fast", took)
	}

	// Remote close: the server tears the connection down.
	remote := dial(t, srv.Addr())
	if _, err := remote.List(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	select {
	case <-remote.done:
	case <-time.After(5 * time.Second):
		t.Fatal("client never noticed the server closing")
	}
	if _, err := remote.List(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("List after server close = %v, want ErrClientClosed in the chain", err)
	}
}

// TestSubscriptionChurnNoLeaks churns 100 subscribe/unsubscribe and
// reconnect-resume cycles and asserts both leak baselines: the server's
// session table returns to empty and the process goroutine count
// returns to its pre-churn level — no stranded drains, watchdogs,
// pumps or heartbeat loops.
func TestSubscriptionChurnNoLeaks(t *testing.T) {
	reps := testReps(t, 2)
	ring, err := NewLiveRing(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if err := ring.Publish(i, rep); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServiceWith("127.0.0.1:0", ring, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		if i%4 == 3 {
			// Reconnect cycle: resume-from-the-end so the pump registers
			// without needing a consumer.
			rc, err := DialReconnect(srv.Addr(), ReconnectOptions{
				Client: ClientOptions{HeartbeatInterval: -1},
				Retry:  fastReconnectRetry,
			})
			if err != nil {
				t.Fatal(err)
			}
			sub, err := rc.SubscribeResume(len(reps) - 1)
			if err != nil {
				t.Fatal(err)
			}
			sub.Close()
			rc.Close()
			continue
		}
		cli, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		sub, err := cli.Subscribe()
		if err != nil {
			t.Fatal(err)
		}
		<-sub.Updates
		sub.Close()
		cli.Close()
	}

	waitFor(t, "session table drained", func() bool { return srv.SessionCount() == 0 })
	fleetNoLeaks(t, before)
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
