package remote

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// pipelineStatsFixture exercises every stage-record field the v7 wire
// format carries: both flag extremes, placement sides, fractional
// rates, and durations.
func pipelineStatsFixture() []pipeline.StageSnapshot {
	return []pipeline.StageSnapshot{
		{
			Name: "source", Kind: pipeline.KindSource,
			Workers: 1, MinWorkers: 1, MaxWorkers: 1,
			Done: 41, ServiceEWMA: 0,
			Window: 250 * time.Millisecond, Throughput: 164, SendWait: 0.91,
		},
		{
			Name: "extract", Kind: pipeline.KindMap,
			Workers: 3, MinWorkers: 1, MaxWorkers: 8, Resizable: true,
			InFlight: 4, Done: 37, ServiceEWMA: 3200 * time.Microsecond,
			Window: 250 * time.Millisecond, Throughput: 148, Utilization: 0.97,
			RecvWait: 0.01, SendWait: 0.02,
			Placeable: true, Remote: true,
			LocalEWMA: 3 * time.Millisecond, RemoteEWMA: 5 * time.Millisecond,
			Fallbacks: 2, Critical: true,
		},
		{
			Name: "publish", Kind: pipeline.KindSink,
			Workers: 1, MinWorkers: 1, MaxWorkers: 1,
			Done: 33, ServiceEWMA: time.Millisecond, Finished: true,
		},
	}
}

// TestStatsReportPipelineRoundTrip pins the v7 stage table: every
// field of every stage record survives encode/decode exactly, a
// report without a table still round-trips (v6-shaped payloads stay
// decodable), and truncation inside the table errors cleanly.
func TestStatsReportPipelineRoundTrip(t *testing.T) {
	in := statsFixture()
	in.Pipeline = pipelineStatsFixture()
	enc := encodeStatsReport(in)
	out, err := decodeStatsReport(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Pipeline, in.Pipeline) {
		t.Errorf("stage table mangled:\n got %+v\nwant %+v", out.Pipeline, in.Pipeline)
	}
	if out.Stats != in.Stats || len(out.Sessions) != len(in.Sessions) {
		t.Error("adding a stage table disturbed the v5 fields")
	}

	// No table encodes and decodes as an empty table.
	bare, err := decodeStatsReport(encodeStatsReport(statsFixture()))
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.Pipeline) != 0 {
		t.Errorf("tableless report decoded %d stages", len(bare.Pipeline))
	}

	for name, data := range map[string][]byte{
		"truncated stage record": enc[:len(enc)-7],
		"truncated stage name":   enc[:len(enc)-1],
		"trailing bytes":         append(append([]byte(nil), enc...), 0xab),
	} {
		if _, err := decodeStatsReport(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// A hostile stage count larger than the remaining bytes must be
	// rejected before allocation.
	base := encodeStatsReport(statsFixture())
	hostile := append(base, 0xff, 0xff)
	if _, err := decodeStatsReport(hostile); err == nil {
		t.Error("hostile stage count decoded without error")
	}
}

// TestStatsVerbPipelineTable drives the operator surface end to end: a
// service given a pipeline stats source reports the stage table over
// the wire, and clearing the source removes it.
func TestStatsVerbPipelineTable(t *testing.T) {
	srv, _ := serveMem(t, testReps(t, 1))
	srv.SetPipelineStats(func() []pipeline.StageSnapshot {
		return pipelineStatsFixture()
	})
	cli := dial(t, srv.Addr())

	r, err := cli.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if !reflect.DeepEqual(r.Pipeline, pipelineStatsFixture()) {
		t.Errorf("stage table over the wire:\n got %+v\nwant %+v", r.Pipeline, pipelineStatsFixture())
	}

	srv.SetPipelineStats(nil)
	r, err = cli.Stats()
	if err != nil {
		t.Fatalf("Stats after clear: %v", err)
	}
	if len(r.Pipeline) != 0 {
		t.Errorf("stage table still reported after SetPipelineStats(nil): %d stages", len(r.Pipeline))
	}
}
