package remote

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBlobCacheSingleFlight: N concurrent gets of one cold key run the
// fill exactly once; everyone shares its result.
func TestBlobCacheSingleFlight(t *testing.T) {
	c := newBlobCache[int](4)
	var fills atomic.Int32
	release := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	blobs := make([][]byte, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blob, hit, err := c.get(7, func() ([]byte, error) {
				fills.Add(1)
				<-release // hold the flight open until everyone has joined
				return []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
			}
			blobs[i], hits[i] = blob, hit
		}(i)
	}
	close(release)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Errorf("%d waiters ran %d fills, want 1", waiters, n)
	}
	fillers := 0
	for i := range blobs {
		if string(blobs[i]) != "payload" {
			t.Errorf("waiter %d got %q", i, blobs[i])
		}
		if !hits[i] {
			fillers++
		}
	}
	if fillers != 1 {
		t.Errorf("%d waiters report running the fill, want 1", fillers)
	}
}

// TestBlobCacheEviction: the cache is LRU-bounded, and a touched entry
// outlives an untouched older one.
func TestBlobCacheEviction(t *testing.T) {
	c := newBlobCache[int](2)
	fill := func(v byte) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte{v}, nil }
	}
	for k := 0; k < 2; k++ {
		if _, hit, _ := c.get(k, fill(byte(k))); hit {
			t.Fatalf("cold key %d hit", k)
		}
	}
	// Touch 0 so 1 is the LRU victim when 2 arrives.
	if _, hit, _ := c.get(0, fill(0)); !hit {
		t.Fatal("warm key 0 missed")
	}
	c.get(2, fill(2))
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, cap 2", c.len())
	}
	if _, hit, _ := c.get(0, fill(0)); !hit {
		t.Error("recently touched key evicted")
	}
	if _, hit, _ := c.get(1, fill(1)); hit {
		t.Error("LRU victim still cached")
	}
}

// TestBlobCacheErrorNotCached: a failed fill propagates to its waiters
// but is not cached — the next get retries and can succeed.
func TestBlobCacheErrorNotCached(t *testing.T) {
	c := newBlobCache[int](2)
	boom := errors.New("boom")
	if _, _, err := c.get(1, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.len() != 0 {
		t.Fatal("failed fill was cached")
	}
	blob, hit, err := c.get(1, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(blob) != "ok" {
		t.Errorf("retry after failure = (%q, %v, %v), want fresh ok", blob, hit, err)
	}
	if _, hit, _ = c.get(1, func() ([]byte, error) { return nil, boom }); !hit {
		t.Error("successful retry not cached")
	}
}
