package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fieldline"
	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/render"
	"repro/internal/vec"
)

// Client is one session against a Service. A single TCP connection
// carries any number of concurrent requests — each tagged with a
// request ID and matched to its response by a background read loop —
// so a prefetching viewer overlaps WAN fetches instead of serializing
// them. Methods are safe for concurrent use.
type Client struct {
	conn       net.Conn
	reqTimeout time.Duration
	hbInterval time.Duration
	hbIdle     time.Duration
	wmu        sync.Mutex
	bw         *bufio.Writer

	bandwidthBps atomic.Int64
	lastInbound  atomic.Int64 // unix nanos of the last inbound message

	mu      sync.Mutex
	pending map[uint64]chan message
	subs    map[uint64]*Subscription
	nextID  uint64
	readErr error
	done    chan struct{}
}

// ErrClientClosed marks a Client whose connection is gone — closed by
// the caller, lost to the transport, or declared dead by the heartbeat
// watchdog. Every call made afterwards fails fast with an error
// wrapping it, so callers (and ReconnectClient) can classify
// retryable-by-redial transport loss with errors.Is instead of
// pattern-matching write errors. IsTransient reports true for it: the
// client object is dead, but a fresh dial may well succeed.
var ErrClientClosed = errors.New("remote: client closed")

// DefaultRequestTimeout bounds a context-free request round trip when
// ClientOptions.RequestTimeout is left zero: a hung or wedged server
// fails the call instead of parking it forever.
const DefaultRequestTimeout = 30 * time.Second

// DefaultHeartbeatInterval is the v5 heartbeat cadence when
// ClientOptions.HeartbeatInterval is left zero. It must sit well
// inside the server's idle timeout (DefaultServiceIdleTimeout), so a
// purely-listening subscriber — which otherwise never writes — keeps
// refreshing the server's read deadline.
const DefaultHeartbeatInterval = 15 * time.Second

// ClientOptions tune a client session.
type ClientOptions struct {
	// RequestTimeout bounds each round trip made without a caller
	// context (List, FetchFrame, Render, FetchFrameDelta): if no reply
	// arrives within it, the call fails with a timeout error instead
	// of blocking forever on a hung server. 0 means
	// DefaultRequestTimeout; negative disables the bound (raise or
	// disable it when SetBandwidth models links slower than a frame
	// per timeout). Context-taking calls (Compute, Kernels) are
	// governed by their context alone.
	RequestTimeout time.Duration

	// HeartbeatInterval is the cadence of the background Ping loop
	// (protocol v5). Pings are sent unconditionally — not only when
	// idle — so the server's read deadline keeps refreshing even for a
	// subscriber that never issues requests. 0 means
	// DefaultHeartbeatInterval; negative disables the loop (and with
	// it IdleTimeout dead-peer detection).
	HeartbeatInterval time.Duration

	// IdleTimeout is how long the heartbeat watchdog tolerates total
	// inbound silence (no responses, no notifies, no pongs) before
	// declaring the peer dead and severing the connection with an
	// error wrapping ErrClientClosed. 0 means 3× the heartbeat
	// interval; negative disables the check while keeping pings
	// flowing.
	IdleTimeout time.Duration
}

func (o ClientOptions) requestTimeout() time.Duration {
	switch {
	case o.RequestTimeout > 0:
		return o.RequestTimeout
	case o.RequestTimeout < 0:
		return 0
	default:
		return DefaultRequestTimeout
	}
}

func (o ClientOptions) heartbeatInterval() time.Duration {
	switch {
	case o.HeartbeatInterval > 0:
		return o.HeartbeatInterval
	case o.HeartbeatInterval < 0:
		return 0
	default:
		return DefaultHeartbeatInterval
	}
}

func (o ClientOptions) heartbeatIdle() time.Duration {
	switch {
	case o.IdleTimeout > 0:
		return o.IdleTimeout
	case o.IdleTimeout < 0:
		return 0
	default:
		return 3 * o.heartbeatInterval()
	}
}

// Dial connects and runs the version handshake with default options.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, ClientOptions{})
}

// DialWith is Dial with explicit options.
func DialWith(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	return NewClientConn(conn, opts)
}

// NewClientConn runs the version handshake over an established
// connection and returns the client session for it. It is the seam
// under Dial for callers that own the transport — a fleet's custom
// dialer, or a test wrapping the connection in a fault injector. On
// error the connection is closed.
func NewClientConn(conn net.Conn, opts ClientOptions) (*Client, error) {
	if err := clientHello(conn); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{
		conn:       conn,
		reqTimeout: opts.requestTimeout(),
		hbInterval: opts.heartbeatInterval(),
		hbIdle:     opts.heartbeatIdle(),
		bw:         bufio.NewWriterSize(conn, 1<<16),
		pending:    make(map[uint64]chan message),
		subs:       make(map[uint64]*Subscription),
		done:       make(chan struct{}),
	}
	c.lastInbound.Store(time.Now().UnixNano())
	go c.readLoop()
	if c.hbInterval > 0 {
		go c.heartbeatLoop()
	}
	return c, nil
}

// SetBandwidth throttles response reads to bps bytes per second,
// modeling the wide-area link (<= 0 disables).
func (c *Client) SetBandwidth(bps int64) { c.bandwidthBps.Store(bps) }

// Close severs the connection; in-flight and later requests fail
// promptly with an error wrapping ErrClientClosed.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return c.conn.Close()
}

// fail records the client's terminal error; only the first one sticks,
// so a caller-initiated Close isn't relabelled as the transport error
// it provokes.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.mu.Unlock()
}

// heartbeatLoop is the protocol-v5 liveness probe: a Ping every
// interval (unconditionally — the pings are what keep the server's
// idle deadline at bay for a subscriber that never writes), and a
// watchdog that declares the peer dead after hbIdle of total inbound
// silence. The pong — like every inbound message — refreshes
// lastInbound in readLoop; heartbeat pings ride request ID 0, which
// roundTrip never allocates, so the replies need no pending entry.
func (c *Client) heartbeatLoop() {
	t := time.NewTicker(c.hbInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		if c.hbIdle > 0 {
			idle := time.Since(time.Unix(0, c.lastInbound.Load()))
			if idle > c.hbIdle {
				c.fail(fmt.Errorf("remote: peer silent for %v (heartbeat timeout): %w", idle.Round(time.Millisecond), ErrClientClosed))
				c.conn.Close()
				return
			}
		}
		c.wmu.Lock()
		err := writeMessage(c.bw, 0, opPing, nil)
		c.wmu.Unlock()
		if err != nil {
			c.fail(fmt.Errorf("remote: heartbeat write: %w (%w)", err, ErrClientClosed))
			c.conn.Close()
			return
		}
	}
}

// readLoop routes every inbound message to its requester (or
// subscription) until the connection dies.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 1<<16)
	for {
		msg, err := readMessage(br, c.bandwidthBps.Load())
		if err != nil {
			c.fail(fmt.Errorf("remote: connection lost: %w (%w)", err, ErrClientClosed))
			close(c.done)
			return
		}
		c.lastInbound.Store(time.Now().UnixNano())
		if msg.op == opNotify {
			if len(msg.payload) != 8 {
				continue
			}
			frames := int(binary.LittleEndian.Uint64(msg.payload))
			c.mu.Lock()
			sub := c.subs[msg.reqID]
			c.mu.Unlock()
			if sub != nil {
				sub.deliver(frames)
			}
			continue
		}
		if msg.op == opNotifyFrame {
			if len(msg.payload) < notifyFrameHeader {
				continue
			}
			frames := int(binary.LittleEndian.Uint64(msg.payload))
			index := int(binary.LittleEndian.Uint32(msg.payload[8:]))
			c.mu.Lock()
			sub := c.subs[msg.reqID]
			c.mu.Unlock()
			if sub != nil {
				sub.deliverFrame(FrameUpdate{
					Frames:  frames,
					Index:   index,
					Payload: msg.payload[notifyFrameHeader:],
				})
				sub.deliver(frames)
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[msg.reqID]
		delete(c.pending, msg.reqID)
		c.mu.Unlock()
		if ch != nil {
			ch <- msg // buffered; never blocks
		}
	}
}

// roundTrip sends one request and waits for its response, translating
// opError replies. The wait is bounded by the client's request timeout
// (ClientOptions.RequestTimeout), so a hung server fails the call
// rather than parking it forever.
func (c *Client) roundTrip(op byte, payload []byte) (message, error) {
	ctx := context.Background()
	if c.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.reqTimeout)
		defer cancel()
	}
	msg, err := c.roundTripCtx(ctx, op, payload)
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		return message{}, fmt.Errorf("remote: no reply within %v: %w", c.reqTimeout, err)
	}
	return msg, err
}

// roundTripCtx is roundTrip under a caller context: a cancellation
// abandons the wait (the server may still process the request, but
// nobody is listening), which is what lets a cancelled pipeline unwind
// a remote stage promptly.
func (c *Client) roundTripCtx(ctx context.Context, op byte, payload []byte) (message, error) {
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return message{}, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan message, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeMessage(c.bw, id, op, payload)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return message{}, fmt.Errorf("remote: request write: %w (%w)", err, ErrClientClosed)
	}

	select {
	case msg := <-ch:
		return checkResponse(msg)
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return message{}, ctx.Err()
	case <-c.done:
		// The read loop may have delivered the response just before
		// the connection died; prefer it over the connection error.
		select {
		case msg := <-ch:
			return checkResponse(msg)
		default:
		}
		c.mu.Lock()
		err := c.readErr
		delete(c.pending, id)
		c.mu.Unlock()
		return message{}, err
	}
}

// checkResponse translates opError replies into typed errors: the
// returned chain carries the server's *WireError, so callers can
// classify with errors.As / CodeOf.
func checkResponse(msg message) (message, error) {
	if msg.op == opError {
		return message{}, fmt.Errorf("remote: server error: %w", decodeWireError(msg.payload))
	}
	return msg, nil
}

// Ping runs one explicit heartbeat round trip and returns its RTT —
// the cheapest liveness and latency probe the protocol offers. (The
// background heartbeat loop pings on its own; Ping is for callers that
// want the measurement.)
func (c *Client) Ping() (time.Duration, error) {
	start := time.Now()
	msg, err := c.roundTrip(opPing, nil)
	if err != nil {
		return 0, err
	}
	if msg.op != opPingOK {
		return 0, fmt.Errorf("remote: unexpected ping response %#02x", msg.op)
	}
	return time.Since(start), nil
}

// Stats fetches the server's ServiceStats plus its per-session table
// (queue depth, drop/degrade counters, admission verdicts) — the v5
// measurement surface for load balancing and operations.
func (c *Client) Stats() (StatsReport, error) {
	msg, err := c.roundTrip(opStats, nil)
	if err != nil {
		return StatsReport{}, err
	}
	if msg.op != opStatsOK {
		return StatsReport{}, fmt.Errorf("remote: unexpected stats response %#02x", msg.op)
	}
	return decodeStatsReport(msg.payload)
}

// List returns the server's frame range and liveness.
func (c *Client) List() (ListInfo, error) {
	msg, err := c.roundTrip(opList, nil)
	if err != nil {
		return ListInfo{}, err
	}
	if msg.op != opListOK {
		return ListInfo{}, fmt.Errorf("remote: unexpected list response %#02x", msg.op)
	}
	return decodeListInfo(msg.payload)
}

// NumFrames returns the server's current frame count.
func (c *Client) NumFrames() (int, error) {
	li, err := c.List()
	return li.Frames, err
}

// FetchFrame downloads and decodes frame i, returning the
// representation, the transfer size and the (throttled) elapsed time —
// the "10 seconds for a 100MB time step" measurement of §2.5.
func (c *Client) FetchFrame(i int) (*hybrid.Representation, int64, time.Duration, error) {
	start := time.Now()
	payload := make([]byte, 4)
	binary.LittleEndian.PutUint32(payload, uint32(i))
	msg, err := c.roundTrip(opGet, payload)
	if err != nil {
		return nil, 0, 0, err
	}
	if msg.op != opGetOK {
		return nil, 0, 0, fmt.Errorf("remote: unexpected get response %#02x", msg.op)
	}
	rep, err := hybrid.Read(bytes.NewReader(msg.payload))
	if err != nil {
		return nil, 0, 0, err
	}
	return rep, int64(len(msg.payload)), time.Since(start), nil
}

// fetchEncoded downloads frame i's raw wire encoding without decoding
// it — the full-frame leg of the delta protocol.
func (c *Client) fetchEncoded(i int) ([]byte, error) {
	payload := make([]byte, 4)
	binary.LittleEndian.PutUint32(payload, uint32(i))
	msg, err := c.roundTrip(opGet, payload)
	if err != nil {
		return nil, err
	}
	if msg.op != opGetOK {
		return nil, fmt.Errorf("remote: unexpected get response %#02x", msg.op)
	}
	return msg.payload, nil
}

// FetchFrameDelta downloads frame i as an XOR-residual against frame
// base, whose full wire encoding baseEnc the caller holds from an
// earlier fetch. On a correlated time series the residual compresses
// to a fraction of the full frame. It returns the decoded
// representation, the reconstructed full encoding of frame i (the
// natural baseEnc for the next fetch), the bytes actually
// transferred, and the (throttled) elapsed time. If the server cannot
// serve the delta (base evicted from a live ring) or the
// reconstruction fails against the caller's base, the client falls
// back to a full fetch transparently — the transfer size then
// reflects the full frame.
func (c *Client) FetchFrameDelta(i, base int, baseEnc []byte) (*hybrid.Representation, []byte, int64, time.Duration, error) {
	start := time.Now()
	if base < 0 || len(baseEnc) == 0 {
		// No base held yet — a plain full fetch seeds the chain.
		enc, err := c.fetchEncoded(i)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		rep, err := hybrid.DecodeBinary(enc)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		return rep, enc, int64(len(enc)), time.Since(start), nil
	}
	enc, wire, err := func() ([]byte, int64, error) {
		msg, err := c.roundTrip(opGetDelta, encodeGetDelta(i, base))
		if err != nil {
			return nil, 0, err
		}
		if msg.op != opGetDeltaOK {
			return nil, 0, fmt.Errorf("remote: unexpected get-delta response %#02x", msg.op)
		}
		n := int64(len(msg.payload))
		cur, err := render.DecompressDelta(msg.payload, baseEnc)
		msg.recycle() // DecompressDelta builds a fresh buffer
		return cur, n, err
	}()
	if err != nil {
		c.mu.Lock()
		dead := c.readErr != nil
		c.mu.Unlock()
		if dead {
			return nil, nil, 0, 0, err
		}
		if enc, err = c.fetchEncoded(i); err != nil {
			return nil, nil, 0, 0, err
		}
		wire = int64(len(enc))
	}
	rep, err := hybrid.DecodeBinary(enc)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return rep, enc, wire, time.Since(start), nil
}

// FrameLoader adapts the client to the viewer's Loader signature. The
// connection multiplexes requests, so the viewer's prefetcher issues
// overlapping fetches on this one session.
func (c *Client) FrameLoader() func(i int) (*hybrid.Representation, error) {
	return func(i int) (*hybrid.Representation, error) {
		rep, _, _, err := c.FetchFrame(i)
		return rep, err
	}
}

// Render asks the server to render frame p.Frame with the given camera
// and transfer-function parameters — the thin-client mode. At the
// default QualityLossless tier the framebuffer is bit-identical to
// rendering the fetched frame locally; QualityPreview trades that for
// a quantized 8-bit encoding several times smaller on the wire. It
// returns the decoded framebuffer, the compressed wire size, and the
// (throttled) elapsed time.
func (c *Client) Render(p RenderParams) (*render.Framebuffer, int64, time.Duration, error) {
	start := time.Now()
	msg, err := c.roundTrip(opRender, encodeRenderParams(p))
	if err != nil {
		return nil, 0, 0, err
	}
	if msg.op != opRenderOK {
		return nil, 0, 0, fmt.Errorf("remote: unexpected render response %#02x", msg.op)
	}
	fb, err := render.DecodeFramebuffer(msg.payload)
	if err != nil {
		return nil, 0, 0, err
	}
	return fb, int64(len(msg.payload)), time.Since(start), nil
}

// Compute runs the named kernel on a Worker with the given request
// blob, returning the reply blob. Requests multiplex like every other
// verb, so concurrent Computes on one connection overlap on the wire
// and on the worker's cores; ctx abandons the wait (first-error
// cancellation in a pipeline stage). Servers without the kernel — or
// without the Compute verb at all — answer with a typed WireError
// (ErrCodeUnknownKernel / ErrCodeUnknownVerb).
func (c *Client) Compute(ctx context.Context, kernel string, req []byte) ([]byte, error) {
	buf, err := appendComputeHeader(getBytes(0), kernel)
	if err != nil {
		return nil, err
	}
	buf = append(buf, req...)
	msg, err := c.roundTripCtx(ctx, opCompute, buf)
	putBytes(buf)
	if err != nil {
		return nil, err
	}
	if msg.op != opComputeOK {
		return nil, fmt.Errorf("remote: unexpected compute response %#02x", msg.op)
	}
	return msg.payload, nil
}

// Kernels asks a worker which stage kernels it hosts — the v4
// provisioning check a fleet runs before admitting a member. A store
// service answers with ErrCodeUnknownVerb, which is itself the
// answer: this endpoint hosts no kernels at all.
func (c *Client) Kernels(ctx context.Context) ([]string, error) {
	msg, err := c.roundTripCtx(ctx, opKernels, nil)
	if err != nil {
		return nil, err
	}
	if msg.op != opKernelsOK {
		return nil, fmt.Errorf("remote: unexpected kernels response %#02x", msg.op)
	}
	names, err := decodeKernelList(msg.payload)
	msg.recycle() // decodeKernelList copies the names out
	return names, err
}

// ComputeExtract ships one projected point set to the worker's
// hybrid-extraction kernel and decodes the representation it sends
// back — the remote form of octree.Build + hybrid.Extract with the
// same configs, bit-identical to running them locally. Request and
// reply buffers recycle through the payload pool, so a steady-state
// distributed stream stops allocating wire scratch after the first few
// frames in flight.
func (c *Client) ComputeExtract(ctx context.Context, pts []vec.V3, tcfg octree.Config, ecfg hybrid.ExtractConfig) (*hybrid.Representation, error) {
	buf, err := appendComputeHeader(getBytes(0), KernelHybridExtract)
	if err != nil {
		return nil, err
	}
	buf = appendExtractRequest(buf, pts, tcfg, ecfg)
	msg, err := c.roundTripCtx(ctx, opCompute, buf)
	putBytes(buf)
	if err != nil {
		return nil, err
	}
	if msg.op != opComputeOK {
		return nil, fmt.Errorf("remote: unexpected compute response %#02x", msg.op)
	}
	rep, err := hybrid.DecodeBinary(msg.payload)
	msg.recycle() // DecodeBinary copies; the reply buffer is free again
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// ComputeTrace ships one batch of field-line seeds to the worker's
// trace kernel and decodes the integrated lines — the remote form of
// fieldline.TraceAll over the named analytic field, bit-identical to
// running it locally (lines travel in full double precision).
// cfg.Domain is a function and cannot cross the wire; configs that set
// it are rejected here rather than silently traced unbounded.
func (c *Client) ComputeTrace(ctx context.Context, spec FieldSpec, seeds []vec.V3, cfg fieldline.Config, sign float64, workers int) ([]*fieldline.Line, error) {
	if cfg.Domain != nil {
		return nil, fmt.Errorf("remote: fieldline.Config.Domain cannot ship to a trace kernel")
	}
	buf, err := appendComputeHeader(getBytes(0), KernelFieldlineTrace)
	if err != nil {
		return nil, err
	}
	buf = appendTraceRequest(buf, spec, seeds, cfg, sign, workers)
	msg, err := c.roundTripCtx(ctx, opCompute, buf)
	putBytes(buf)
	if err != nil {
		return nil, err
	}
	if msg.op != opComputeOK {
		return nil, fmt.Errorf("remote: unexpected compute response %#02x", msg.op)
	}
	lines, err := decodeTraceReply(msg.payload)
	msg.recycle() // decodeTraceReply copies
	return lines, err
}

// Subscription is a live feed of the server's frame count. Updates is
// latest-wins: a slow consumer sees the most recent count, not a
// backlog, mirroring the server's no-backpressure contract.
type Subscription struct {
	// Updates carries the server's frame count: first the count at
	// subscribe time, then a value per publish (collapsed under load).
	// It closes when the subscription or connection ends.
	Updates <-chan int

	// Frames carries inline frame pushes when the subscription was
	// opened with SubscribeOptions.InlineFrames; nil otherwise. Like
	// Updates it is latest-wins, and the first frame arrives only on
	// the first publish after subscribing (the backlog comes via
	// FetchFrame). A push the server had to degrade to a count-only
	// notify (frame already evicted) appears on Updates alone.
	Frames <-chan FrameUpdate

	ch        chan int
	fch       chan FrameUpdate
	done      chan struct{} // closed by Close; ends the connection watchdog
	cancel    func()
	mu        sync.Mutex
	last      int // highest count delivered; duplicates and regressions drop
	lastFrame int // highest count delivered on Frames
	closed    bool
}

// SubscribeOptions selects protocol v3 subscription extensions.
type SubscribeOptions struct {
	// InlineFrames asks the server to ship each new frame's wire
	// encoding inside the notify itself — the encode-once broadcast
	// path: the server encodes the frame once and writes that same
	// buffer to every inline subscriber, so the client skips the
	// notify→FetchFrame round trip.
	InlineFrames bool
}

// FrameUpdate is one inline-subscription push: the server's frame
// count, the index of the newest frame, and that frame's full wire
// encoding (a valid FetchFrameDelta base for later fetches).
type FrameUpdate struct {
	Frames  int
	Index   int
	Payload []byte
}

// Decode unpacks the pushed frame.
func (u FrameUpdate) Decode() (*hybrid.Representation, error) {
	return hybrid.DecodeBinary(u.Payload)
}

// Subscribe registers for live-frame notifications. On a static store
// the channel sees one update (the current count) and nothing more.
func (c *Client) Subscribe() (*Subscription, error) {
	return c.SubscribeWith(SubscribeOptions{})
}

// SubscribeWith is Subscribe with protocol v3 options.
func (c *Client) SubscribeWith(opts SubscribeOptions) (*Subscription, error) {
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan message, 1)
	c.pending[id] = ch
	sub := &Subscription{ch: make(chan int, 1), done: make(chan struct{}), last: -1}
	sub.Updates = sub.ch
	if opts.InlineFrames {
		sub.fch = make(chan FrameUpdate, 1)
		sub.Frames = sub.fch
	}
	sub.cancel = func() {
		c.mu.Lock()
		if c.subs[id] == sub {
			delete(c.subs, id)
		}
		c.mu.Unlock()
	}
	c.subs[id] = sub
	c.mu.Unlock()

	// Close the feed when the connection dies; the watchdog itself
	// ends when the subscription closes first.
	go func() {
		select {
		case <-c.done:
			sub.Close()
		case <-sub.done:
		}
	}()

	var payload []byte // empty = legacy count-only subscribe
	if opts.InlineFrames {
		payload = []byte{subFlagInline}
	}
	c.wmu.Lock()
	err := writeMessage(c.bw, id, opSubscribe, payload)
	c.wmu.Unlock()
	if err != nil {
		sub.Close()
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("remote: subscribe write: %w (%w)", err, ErrClientClosed)
	}
	accept := func(msg message) (*Subscription, error) {
		if msg.op == opError {
			sub.Close()
			return nil, fmt.Errorf("remote: server error: %s", msg.payload)
		}
		if msg.op != opSubscribeOK || len(msg.payload) != 8 {
			sub.Close()
			return nil, fmt.Errorf("remote: unexpected subscribe response %#02x", msg.op)
		}
		sub.deliver(int(binary.LittleEndian.Uint64(msg.payload)))
		return sub, nil
	}
	select {
	case msg := <-ch:
		return accept(msg)
	case <-c.done:
		// Prefer a response that arrived before the connection died.
		select {
		case msg := <-ch:
			return accept(msg)
		default:
		}
		sub.Close()
		c.mu.Lock()
		err := c.readErr
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
}

// deliver pushes a count latest-wins: if the consumer hasn't drained
// the previous value, it is replaced. Counts are monotonic — a stale
// value (e.g. the Subscribe response racing a newer pushed notify onto
// the wire) never overwrites a higher one.
func (s *Subscription) deliver(frames int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || frames <= s.last {
		return
	}
	s.last = frames
	for {
		select {
		case s.ch <- frames:
			return
		default:
			select {
			case <-s.ch:
			default:
			}
		}
	}
}

// deliverFrame pushes an inline frame latest-wins onto Frames, with
// the same monotonic guard as deliver.
func (s *Subscription) deliverFrame(u FrameUpdate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.fch == nil || u.Frames <= s.lastFrame {
		return
	}
	s.lastFrame = u.Frames
	for {
		select {
		case s.fch <- u:
			return
		default:
			select {
			case <-s.fch:
			default:
			}
		}
	}
}

// Close unregisters the subscription and closes Updates (and Frames).
func (s *Subscription) Close() {
	s.cancel()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
		if s.fch != nil {
			close(s.fch)
		}
		close(s.done)
	}
}
