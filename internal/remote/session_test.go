package remote

import (
	"bufio"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hybrid"
	"repro/internal/vec"
)

// stalledInlineSub opens a raw connection, subscribes with inline
// payloads, and never reads a byte again — the pathological viewer
// every overload test needs: its TCP buffers fill, the server-side
// drain blocks mid-write, and the send queue overflows.
func stalledInlineSub(t testing.TB, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := clientHello(conn); err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(conn)
	if err := writeMessage(bw, 1, opSubscribe, []byte{subFlagInline}); err != nil {
		t.Fatal(err)
	}
	return conn
}

// waitSubscribed polls the service's session table until n sessions
// show an active subscription — the raw subscribers above never read
// their SubscribeOK, so this is how tests know registration happened.
func waitSubscribed(t testing.TB, srv *Service, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		subscribed := 0
		for _, row := range srv.statsReport().Sessions {
			if row.Subscribed {
				subscribed++
			}
		}
		if subscribed >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d subscribed sessions", n)
}

// serveLive serves a fresh LiveRing with the given options; the test
// publishes into the returned ring.
func serveLive(t testing.TB, capacity int, opts ServiceOptions) (*Service, *LiveRing) {
	t.Helper()
	ring, err := NewLiveRing(capacity)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServiceWith("127.0.0.1:0", ring, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ring
}

// publishFrames pushes n frames (the same representation re-indexed)
// and returns the wall time the publisher spent — the number the
// isolation tests bound, because a publisher stalled behind a wedged
// subscriber is exactly the failure the send queues exist to prevent.
func publishFrames(t testing.TB, ring *LiveRing, rep *hybrid.Representation, n int) time.Duration {
	t.Helper()
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := ring.Publish(ring.NumFrames(), rep); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

// TestStalledSubscriberIsolation: a subscriber that stops reading must
// cost the publisher nothing and the healthy subscribers nothing. The
// stalled connection's queue overflows (SlowSkip drops the oldest
// pushes), the publish loop finishes promptly, and a healthy count-only
// subscriber still sees the final frame count.
func TestStalledSubscriberIsolation(t *testing.T) {
	const nFrames = 60
	rep := testReps(t, 1)[0]
	srv, ring := serveLive(t, 4, ServiceOptions{SendQueue: 2})

	stalledInlineSub(t, srv.Addr())
	waitSubscribed(t, srv, 1)

	healthy := dial(t, srv.Addr())
	sub, err := healthy.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	took := publishFrames(t, ring, rep, nFrames)
	// ~6MB of frames against a reader that accepts none of it: without
	// queue isolation the publisher would park on the dead connection's
	// TCP window for the duration. Bound it generously — the point is
	// "milliseconds, not wedged", not a tight benchmark.
	if took > 5*time.Second {
		t.Errorf("publishing %d frames took %v with one stalled subscriber — publisher blocked", nFrames, took)
	}

	deadline := time.After(10 * time.Second)
	for seen := 0; seen < nFrames; {
		select {
		case n, ok := <-sub.Updates:
			if !ok {
				t.Fatal("healthy subscription closed early")
			}
			seen = n
		case <-deadline:
			t.Fatal("healthy subscriber never saw the final frame")
		}
	}
	if n := srv.Stats().PushesDropped; n == 0 {
		t.Error("PushesDropped = 0 — the stalled subscriber's queue never overflowed")
	}
	if n := srv.Stats().SessionsEvicted; n != 0 {
		t.Errorf("SessionsEvicted = %d under SlowSkip, want 0", n)
	}
}

// TestSlowPolicyDegrade: under SlowDegrade an overflowing subscriber is
// downgraded to count-only notifies, never evicted — the degrade
// counters move, the evict counter does not, and the publisher stays
// unblocked.
func TestSlowPolicyDegrade(t *testing.T) {
	const nFrames = 60
	rep := testReps(t, 1)[0]
	srv, ring := serveLive(t, 4, ServiceOptions{SendQueue: 2, Slow: SlowDegrade})

	stalledInlineSub(t, srv.Addr())
	waitSubscribed(t, srv, 1)

	if took := publishFrames(t, ring, rep, nFrames); took > 5*time.Second {
		t.Errorf("publishing took %v under SlowDegrade — publisher blocked", took)
	}
	if n := srv.Stats().PushesDegraded; n == 0 {
		t.Error("PushesDegraded = 0 — the degrade policy never engaged")
	}
	if n := srv.Stats().SessionsEvicted; n != 0 {
		t.Errorf("SessionsEvicted = %d under SlowDegrade, want 0", n)
	}
}

// TestSlowPolicyEvict: under SlowEvict the overflowing subscriber is
// severed (best-effort retryable error, then connection close) and its
// session leaves the table; the publisher never blocks on the
// eviction's bounded write.
func TestSlowPolicyEvict(t *testing.T) {
	const nFrames = 60
	rep := testReps(t, 1)[0]
	srv, ring := serveLive(t, 4, ServiceOptions{SendQueue: 2, Slow: SlowEvict})

	stalledInlineSub(t, srv.Addr())
	waitSubscribed(t, srv, 1)

	if took := publishFrames(t, ring, rep, nFrames); took > 5*time.Second {
		t.Errorf("publishing took %v under SlowEvict — publisher blocked", took)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && srv.Stats().SessionsEvicted == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if n := srv.Stats().SessionsEvicted; n != 1 {
		t.Fatalf("SessionsEvicted = %d, want 1", n)
	}
	// The eviction closes the connection, which the server's read loop
	// notices and reaps the session.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && srv.SessionCount() != 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Errorf("SessionCount = %d after eviction, want 0", n)
	}
}

// blockingStore wedges every Frame call until its gate opens, so a
// render can be held mid-flight while another arrives — the fixture
// for the MaxRenders gate.
type blockingStore struct {
	*MemStore
	gate  chan struct{}
	calls atomic.Int32
}

func (s *blockingStore) Frame(i int) (*hybrid.Representation, error) {
	s.calls.Add(1)
	<-s.gate
	return s.MemStore.Frame(i)
}

// TestMaxRendersRefuses: with one render slot occupied by a render
// wedged inside the store, a second render for a different frame is
// refused immediately with retryable ErrCodeUnavailable instead of
// queueing behind the rasterizer.
func TestMaxRendersRefuses(t *testing.T) {
	mem, err := NewMemStore(testReps(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	store := &blockingStore{MemStore: mem, gate: make(chan struct{})}
	srv, err := NewServiceWith("127.0.0.1:0", store, ServiceOptions{MaxRenders: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := dial(t, srv.Addr())

	params := RenderParams{Frame: 0, Width: 32, Height: 32, ViewDir: vec.New(0.4, 0.3, 1)}
	first := make(chan error, 1)
	go func() {
		_, _, _, err := cli.Render(params)
		first <- err
	}()
	// Wait until the first render holds the gate inside Frame.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && store.calls.Load() == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if store.calls.Load() == 0 {
		t.Fatal("first render never reached the store")
	}

	// A different frame, so the render cache's single-flight coalescing
	// cannot merge it with the in-flight render.
	second := params
	second.Frame = 1
	_, _, _, err = cli.Render(second)
	if code := CodeOf(err); code != ErrCodeUnavailable {
		t.Fatalf("second render = %v (code %d), want retryable ErrCodeUnavailable", err, code)
	}
	if !IsTransient(err) {
		t.Error("render refusal not classified transient — reconnect clients would give up")
	}

	close(store.gate)
	if err := <-first; err != nil {
		t.Fatalf("gated render failed after release: %v", err)
	}
	if n := srv.Stats().RendersRefused; n != 1 {
		t.Errorf("RendersRefused = %d, want 1", n)
	}
}

// TestStatsVerb drives the v5 measurement surface end to end: Ping
// moves the heartbeat counter, Subscribe appears in the session table
// with the queue geometry, and the whole report survives the wire.
func TestStatsVerb(t *testing.T) {
	srv, _ := serveMem(t, testReps(t, 1))
	cli := dial(t, srv.Addr())

	if _, err := cli.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	sub, err := cli.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	r, err := cli.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if r.Stats.Pings == 0 {
		t.Error("Pings = 0 after an explicit Ping")
	}
	if len(r.Sessions) == 0 {
		t.Fatal("session table empty with a live session")
	}
	// A MemStore is not live, so Subscribe gets no queue; the row still
	// exists with identity and admission state.
	for _, row := range r.Sessions {
		if row.Refused {
			t.Errorf("session %d marked refused with no admission limit", row.ID)
		}
		if row.Remote == "" {
			t.Errorf("session %d has no remote address", row.ID)
		}
	}
}

// TestStatsVerbLiveQueue is TestStatsVerb against a live store, where
// the subscription owns a real send queue whose geometry and counters
// the table must expose.
func TestStatsVerbLiveQueue(t *testing.T) {
	srv, ring := serveLive(t, 4, ServiceOptions{})
	rep := testReps(t, 1)[0]
	cli := dial(t, srv.Addr())
	sub, err := cli.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitSubscribed(t, srv, 1)

	publishFrames(t, ring, rep, 2)
	// Drain so Sent moves.
	deadline := time.After(5 * time.Second)
	for n := 0; n < 2; {
		select {
		case n = <-sub.Updates:
		case <-deadline:
			t.Fatal("subscriber never saw the published frames")
		}
	}

	r, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var row *SessionStats
	for i := range r.Sessions {
		if r.Sessions[i].Subscribed {
			row = &r.Sessions[i]
		}
	}
	if row == nil {
		t.Fatal("no subscribed session in the table")
	}
	if row.QueueCap != DefaultSendQueue {
		t.Errorf("QueueCap = %d, want DefaultSendQueue (%d)", row.QueueCap, DefaultSendQueue)
	}
	if row.Sent == 0 || row.LastSent == 0 {
		t.Errorf("Sent = %d, LastSent = %d after deliveries, want both > 0", row.Sent, row.LastSent)
	}
	if row.Inline {
		t.Error("count-only subscription reported inline")
	}
}
