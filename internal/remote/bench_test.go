package remote

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/compositor"
	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/render"
	"repro/internal/vec"
)

// BenchmarkRemoteFetch tracks the protocol's transfer paths: full
// frame fetch vs server-side render (the thin-client trade), each over
// a local socket and over a modeled wide-area link. The throttled
// numbers are dominated by the modeled bandwidth by design — they
// exist so a perf regression in framing or compression shows up as a
// changed bytes/op, and so the fetch:render wire-size ratio (the §2.5
// economics) is recorded per run.
func BenchmarkRemoteFetch(b *testing.B) {
	reps := testReps(b, 1)
	srv, store := serveMem(b, reps)
	params := RenderParams{Frame: 0, Width: 128, Height: 128, ViewDir: vec.New(0.4, 0.3, 1)}
	// A link fast enough to keep the bench smoke quick, slow enough to
	// dominate scheduling noise: ~5ms per frame at this test scale.
	throttle := store.FrameBytes(0) * 200

	run := func(name string, bps int64, fetch bool) {
		b.Run(name, func(b *testing.B) {
			cli := dial(b, srv.Addr())
			cli.SetBandwidth(bps)
			var wire int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if fetch {
					_, wire, _, err = cli.FetchFrame(0)
				} else {
					_, wire, _, err = cli.Render(params)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(wire)
		})
	}
	run("fetch/local", 0, true)
	run("fetch/throttled", throttle, true)
	run("render/local", 0, false)
	run("render/throttled", throttle, false)
}

// BenchmarkDistributedExtract compares the extraction stage's three
// placements: in-process (the local stage path), on a worker over a
// loopback socket (wire framing + encode/decode cost), and over a
// modeled wide-area link (the paper's cross-site setting, where the
// transfer dominates and overlapping in-flight frames is what keeps
// the pipeline busy). bytes/op tracks the wire cost of one frame;
// ReportAllocs makes the pooled payload path's steady-state
// allocation rate visible next to the local one.
func BenchmarkDistributedExtract(b *testing.B) {
	pts := testPoints(7, 20_000)
	tcfg := octree.DefaultConfig()
	tcfg.Workers = 2
	ecfg := hybrid.ExtractConfig{VolumeRes: 16, Budget: 2000, Workers: 2}

	w, err := NewWorker("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()

	// One frame's wire sizes, for the throttle model and SetBytes.
	reqBytes := int64(len(appendExtractRequest(nil, pts, tcfg, ecfg)))
	tree, err := octree.Build(pts, tcfg)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := hybrid.Extract(tree, ecfg)
	if err != nil {
		b.Fatal(err)
	}
	repBytes := int64(len(rep.AppendBinary(nil)))

	b.Run("local", func(b *testing.B) {
		b.SetBytes(reqBytes + repBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree, err := octree.Build(pts, tcfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := hybrid.Extract(tree, ecfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	run := func(name string, bps int64) {
		b.Run(name, func(b *testing.B) {
			cli := dial(b, w.Addr())
			cli.SetBandwidth(bps)
			b.SetBytes(reqBytes + repBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cli.ComputeExtract(context.Background(), pts, tcfg, ecfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("loopback", 0)
	// Fast enough to keep the bench smoke quick, slow enough that the
	// modeled link dominates: ~5ms per reply at this frame size.
	run("throttled", repBytes*200)
}

// rawLiveStore is a live store with no encoding of its own (unlike
// LiveRing, which encodes at publish), so every broadcast must go
// through the service's encode-once frame cache — that is the work
// BenchmarkFanOut meters. Published frames cycle a fixed rep set under
// a monotonically growing index, matching the append-only contract.
type rawLiveStore struct {
	mu       sync.Mutex
	reps     []*hybrid.Representation
	frames   int
	watchers map[int]func(int)
	nextW    int
}

func newRawLiveStore(reps []*hybrid.Representation) *rawLiveStore {
	return &rawLiveStore{reps: reps, watchers: make(map[int]func(int))}
}

func (s *rawLiveStore) NumFrames() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frames
}

func (s *rawLiveStore) Frame(i int) (*hybrid.Representation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= s.frames {
		return nil, fmt.Errorf("remote: frame %d out of range", i)
	}
	return s.reps[i%len(s.reps)], nil
}

func (s *rawLiveStore) Watch(fn func(frames int)) (cancel func()) {
	s.mu.Lock()
	id := s.nextW
	s.nextW++
	s.watchers[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.watchers, id)
		s.mu.Unlock()
	}
}

func (s *rawLiveStore) publish() {
	s.mu.Lock()
	s.frames++
	frames := s.frames
	fns := make([]func(int), 0, len(s.watchers))
	for _, fn := range s.watchers {
		fns = append(fns, fn)
	}
	s.mu.Unlock()
	for _, fn := range fns {
		fn(frames)
	}
}

// BenchmarkFanOut is the tentpole measurement: one publish broadcast
// to N inline subscribers, gated (every subscriber acknowledges each
// frame before the next publish), over a local socket and a modeled
// WAN link. The encodes/frame metric is the encode-once contract —
// it stays ≈1 as subscribers grow from 1 to 64, because all N
// notifies share one cached wire encoding. The deltastep sub-bench
// records the other half of the economics: stepping a correlated
// beam-halo series frame-to-frame by XOR-delta ships a fraction of
// the full-frame bytes (reported as fullframe-B for comparison).
func BenchmarkFanOut(b *testing.B) {
	reps := correlatedReps(b, 4)
	enc, err := encodeRep(reps[0])
	if err != nil {
		b.Fatal(err)
	}
	full := int64(len(enc))
	// ~5ms per frame at this size, as in BenchmarkRemoteFetch.
	throttle := full * 200

	for _, n := range []int{1, 8, 64} {
		for _, link := range []struct {
			name string
			bps  int64
		}{{"local", 0}, {"throttled", throttle}} {
			b.Run(fmt.Sprintf("subs=%d/%s", n, link.name), func(b *testing.B) {
				store := newRawLiveStore(reps)
				srv, err := NewService("127.0.0.1:0", store)
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()

				acks := make(chan int, n)
				for i := 0; i < n; i++ {
					cli := dial(b, srv.Addr())
					cli.SetBandwidth(link.bps)
					sub, err := cli.SubscribeWith(SubscribeOptions{InlineFrames: true})
					if err != nil {
						b.Fatal(err)
					}
					<-sub.Updates // initial count
					go func() {
						for u := range sub.Frames {
							acks <- u.Frames
						}
					}()
				}

				start := srv.Stats()
				b.SetBytes(full)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					store.publish()
					for k := 0; k < n; k++ {
						if got := <-acks; got != i+1 {
							b.Fatalf("ack %d at frame %d (gated publish should never skip)", got, i+1)
						}
					}
				}
				b.StopTimer()
				st := srv.Stats()
				b.ReportMetric(float64(st.FrameEncodes-start.FrameEncodes)/float64(b.N), "encodes/frame")
			})
		}
	}

	for _, link := range []struct {
		name string
		bps  int64
	}{{"local", 0}, {"throttled", throttle}} {
		b.Run("deltastep/"+link.name, func(b *testing.B) {
			srv, _ := serveMem(b, reps)
			cli := dial(b, srv.Addr())
			cli.SetBandwidth(link.bps)
			baseEnc, err := cli.fetchEncoded(0)
			if err != nil {
				b.Fatal(err)
			}
			cur := 0
			var wire int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next := (cur + 1) % len(reps)
				_, enc, w, _, err := cli.FetchFrameDelta(next, cur, baseEnc)
				if err != nil {
					b.Fatal(err)
				}
				wire = w
				cur, baseEnc = next, enc
			}
			b.SetBytes(wire)
			b.ReportMetric(float64(full), "fullframe-B")
		})
	}
}

// BenchmarkFleetExtract scales the distributed extraction stage
// across 1, 2, and 3 fleet members, loopback and over the modeled
// wide-area link. The throttle is per connection — each member gets
// its own modeled link, as distinct machines would — so the throttled
// rows are where fleet striping pays: aggregate bandwidth grows with
// membership and throughput should scale close to linearly, while
// loopback rows show the dispatch overhead when the wire is free.
// Window×members frames stay in flight, as a stream stage would keep
// them.
func BenchmarkFleetExtract(b *testing.B) {
	pts := testPoints(7, 20_000)
	tcfg := octree.DefaultConfig()
	tcfg.Workers = 2
	ecfg := hybrid.ExtractConfig{VolumeRes: 16, Budget: 2000, Workers: 2}

	const members = 3
	addrs := make([]string, members)
	for i := range addrs {
		w, err := NewWorker("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		addrs[i] = w.Addr()
	}

	reqBytes := int64(len(appendExtractRequest(nil, pts, tcfg, ecfg)))
	tree, err := octree.Build(pts, tcfg)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := hybrid.Extract(tree, ecfg)
	if err != nil {
		b.Fatal(err)
	}
	repBytes := int64(len(rep.AppendBinary(nil)))
	// ~20ms per reply at this frame size, per member link: slow enough
	// that the modeled transfer dominates the kernel compute even on a
	// small host, so the throttled rows isolate the striping gain.
	throttle := repBytes * 50

	const window = 2
	for _, n := range []int{1, 2, 3} {
		run := func(link string, bps int64) {
			b.Run(fmt.Sprintf("%s/workers=%d", link, n), func(b *testing.B) {
				fl, err := NewFleet(addrs[:n], FleetOptions{
					Kernel:        KernelHybridExtract,
					Window:        window,
					BandwidthBps:  bps,
					ProbeInterval: -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer fl.Close()
				b.SetBytes(reqBytes + repBytes)
				b.ReportAllocs()
				b.ResetTimer()
				sem := make(chan struct{}, window*n)
				errs := make(chan error, 1)
				var wg sync.WaitGroup
				for i := 0; i < b.N; i++ {
					sem <- struct{}{}
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer func() { <-sem }()
						if _, err := fl.ComputeExtract(context.Background(), pts, tcfg, ecfg); err != nil {
							select {
							case errs <- err:
							default:
							}
						}
					}()
				}
				wg.Wait()
				select {
				case err := <-errs:
					b.Fatal(err)
				default:
				}
			})
		}
		run("loopback", 0)
		run("throttled", throttle)
	}
}

// BenchmarkDistributedRender scales the sort-last render path across
// 1, 2 and 3 fleet members, loopback and over the modeled per-member
// wide-area link: each frame splits into four sub-volume partitions,
// the fleet renders them via render.partial.v1, and the partials
// depth-composite back into one frame. bytes/op is the frame's full
// wire cost (requests out, compressed partials back) so a codec
// regression shows as a changed rate; partial-B records the average
// compressed partial size and composite-ms the per-frame composite
// cost, the two halves of the sort-last economics (ship less, merge
// fast).
func BenchmarkDistributedRender(b *testing.B) {
	rep := renderRepFixture(b, 20_000)
	const parts = 4
	n := len(rep.Points)

	reqs := make([]*RenderPartialRequest, parts)
	var reqBytes, partialBytes int64
	for k := 0; k < parts; k++ {
		reqs[k] = renderReqFixture(rep, k, k*n/parts, (k+1)*n/parts)
		reqs[k].Width, reqs[k].Height = 128, 128
		reqBytes += int64(len(appendRenderPartialRequest(nil, reqs[k])))
		// The worker's reply is bit-identical to the local pass, so its
		// wire size is too.
		partialBytes += int64(len(render.CompressPartial(localPointPass(b, reqs[k]), k)))
	}

	addrs := make([]string, 3)
	for i := range addrs {
		w, err := NewWorker("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		addrs[i] = w.Addr()
	}
	// ~20ms per frame's partials at this size, per member link, as in
	// BenchmarkFleetExtract: the modeled transfer dominates, so the
	// throttled rows isolate the striping gain.
	throttle := partialBytes * 50 / parts

	for _, members := range []int{1, 2, 3} {
		run := func(link string, bps int64) {
			b.Run(fmt.Sprintf("%s/workers=%d", link, members), func(b *testing.B) {
				fl, err := NewFleet(addrs[:members], FleetOptions{
					Kernel:        KernelRenderPartial,
					Window:        2,
					BandwidthBps:  bps,
					ProbeInterval: -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer fl.Close()
				fb, err := render.NewFramebuffer(128, 128)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(reqBytes + partialBytes)
				b.ReportAllocs()
				b.ResetTimer()
				var compositeNs int64
				for i := 0; i < b.N; i++ {
					partials := make([]*render.PartialFrame, parts)
					errs := make(chan error, parts)
					var wg sync.WaitGroup
					for k := 0; k < parts; k++ {
						wg.Add(1)
						go func(k int) {
							defer wg.Done()
							pf, err := fl.ComputeRender(context.Background(), reqs[k])
							if err != nil {
								select {
								case errs <- err:
								default:
								}
								return
							}
							partials[k] = pf
						}(k)
					}
					wg.Wait()
					select {
					case err := <-errs:
						b.Fatal(err)
					default:
					}
					fb.Clear(hybrid.RGBA{})
					start := time.Now()
					if err := compositor.CompositeDepth(fb, partials, 0); err != nil {
						b.Fatal(err)
					}
					compositeNs += time.Since(start).Nanoseconds()
				}
				b.ReportMetric(float64(partialBytes)/parts, "partial-B")
				b.ReportMetric(float64(compositeNs)/1e6/float64(b.N), "composite-ms")
			})
		}
		run("loopback", 0)
		run("throttled", throttle)
	}
}

// BenchmarkSlowSubscriber measures what a stalled viewer costs the
// publisher: per-publish latency into a live ring with 0, 1 and 8
// subscribers that stopped reading. The v5 send queues make the three
// numbers flat — update() only enqueues (and drops on overflow), so a
// wedged connection parks its own drain goroutine, never the publish
// path. A regression here means a slow client found a way to block the
// simulation again.
func BenchmarkSlowSubscriber(b *testing.B) {
	rep := testReps(b, 1)[0]
	for _, stalled := range []int{0, 1, 8} {
		b.Run(fmt.Sprintf("stalled=%d", stalled), func(b *testing.B) {
			ring, err := NewLiveRing(4)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := NewServiceWith("127.0.0.1:0", ring, ServiceOptions{SendQueue: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			for i := 0; i < stalled; i++ {
				stalledInlineSub(b, srv.Addr())
			}
			waitSubscribed(b, srv, stalled)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ring.Publish(i, rep); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
