package remote

import (
	"context"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/vec"
)

// BenchmarkRemoteFetch tracks the protocol's transfer paths: full
// frame fetch vs server-side render (the thin-client trade), each over
// a local socket and over a modeled wide-area link. The throttled
// numbers are dominated by the modeled bandwidth by design — they
// exist so a perf regression in framing or compression shows up as a
// changed bytes/op, and so the fetch:render wire-size ratio (the §2.5
// economics) is recorded per run.
func BenchmarkRemoteFetch(b *testing.B) {
	reps := testReps(b, 1)
	srv, store := serveMem(b, reps)
	params := RenderParams{Frame: 0, Width: 128, Height: 128, ViewDir: vec.New(0.4, 0.3, 1)}
	// A link fast enough to keep the bench smoke quick, slow enough to
	// dominate scheduling noise: ~5ms per frame at this test scale.
	throttle := store.FrameBytes(0) * 200

	run := func(name string, bps int64, fetch bool) {
		b.Run(name, func(b *testing.B) {
			cli := dial(b, srv.Addr())
			cli.SetBandwidth(bps)
			var wire int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if fetch {
					_, wire, _, err = cli.FetchFrame(0)
				} else {
					_, wire, _, err = cli.Render(params)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(wire)
		})
	}
	run("fetch/local", 0, true)
	run("fetch/throttled", throttle, true)
	run("render/local", 0, false)
	run("render/throttled", throttle, false)
}

// BenchmarkDistributedExtract compares the extraction stage's three
// placements: in-process (the local stage path), on a worker over a
// loopback socket (wire framing + encode/decode cost), and over a
// modeled wide-area link (the paper's cross-site setting, where the
// transfer dominates and overlapping in-flight frames is what keeps
// the pipeline busy). bytes/op tracks the wire cost of one frame;
// ReportAllocs makes the pooled payload path's steady-state
// allocation rate visible next to the local one.
func BenchmarkDistributedExtract(b *testing.B) {
	pts := testPoints(7, 20_000)
	tcfg := octree.DefaultConfig()
	tcfg.Workers = 2
	ecfg := hybrid.ExtractConfig{VolumeRes: 16, Budget: 2000, Workers: 2}

	w, err := NewWorker("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()

	// One frame's wire sizes, for the throttle model and SetBytes.
	reqBytes := int64(len(appendExtractRequest(nil, pts, tcfg, ecfg)))
	tree, err := octree.Build(pts, tcfg)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := hybrid.Extract(tree, ecfg)
	if err != nil {
		b.Fatal(err)
	}
	repBytes := int64(len(rep.AppendBinary(nil)))

	b.Run("local", func(b *testing.B) {
		b.SetBytes(reqBytes + repBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree, err := octree.Build(pts, tcfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := hybrid.Extract(tree, ecfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	run := func(name string, bps int64) {
		b.Run(name, func(b *testing.B) {
			cli := dial(b, w.Addr())
			cli.SetBandwidth(bps)
			b.SetBytes(reqBytes + repBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cli.ComputeExtract(context.Background(), pts, tcfg, ecfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("loopback", 0)
	// Fast enough to keep the bench smoke quick, slow enough that the
	// modeled link dominates: ~5ms per reply at this frame size.
	run("throttled", repBytes*200)
}
