package remote

import (
	"testing"

	"repro/internal/vec"
)

// BenchmarkRemoteFetch tracks the protocol's transfer paths: full
// frame fetch vs server-side render (the thin-client trade), each over
// a local socket and over a modeled wide-area link. The throttled
// numbers are dominated by the modeled bandwidth by design — they
// exist so a perf regression in framing or compression shows up as a
// changed bytes/op, and so the fetch:render wire-size ratio (the §2.5
// economics) is recorded per run.
func BenchmarkRemoteFetch(b *testing.B) {
	reps := testReps(b, 1)
	srv, store := serveMem(b, reps)
	params := RenderParams{Frame: 0, Width: 128, Height: 128, ViewDir: vec.New(0.4, 0.3, 1)}
	// A link fast enough to keep the bench smoke quick, slow enough to
	// dominate scheduling noise: ~5ms per frame at this test scale.
	throttle := store.FrameBytes(0) * 200

	run := func(name string, bps int64, fetch bool) {
		b.Run(name, func(b *testing.B) {
			cli := dial(b, srv.Addr())
			cli.SetBandwidth(bps)
			var wire int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if fetch {
					_, wire, _, err = cli.FetchFrame(0)
				} else {
					_, wire, _, err = cli.Render(params)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(wire)
		})
	}
	run("fetch/local", 0, true)
	run("fetch/throttled", throttle, true)
	run("render/local", 0, false)
	run("render/throttled", throttle, false)
}
