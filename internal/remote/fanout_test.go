package remote

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/hybrid"
	"repro/internal/vec"
)

// rawStore strips a MemStore down to the bare FrameStore interface —
// no EncodedFrame — so every Get must run the service-side encode
// path. It is how the tests (and BenchmarkFanOut) make the service's
// own encode-once cache observable instead of the store's.
type rawStore struct {
	reps []*hybrid.Representation
}

func (s *rawStore) NumFrames() int { return len(s.reps) }
func (s *rawStore) Frame(i int) (*hybrid.Representation, error) {
	if i < 0 || i >= len(s.reps) {
		return nil, fmt.Errorf("remote: frame %d out of range", i)
	}
	return s.reps[i], nil
}

// correlatedReps builds a beam-halo-style time series: one extracted
// frame, then per-frame clones with a slowly drifting density volume
// and a handful of moved halo points. Successive wire encodings are
// mostly identical, which is the regime the XOR-delta path is built
// for (a simulation's frame-to-frame change is a small fraction of the
// frame).
func correlatedReps(t testing.TB, n int) []*hybrid.Representation {
	t.Helper()
	base := testReps(t, 1)[0]
	reps := make([]*hybrid.Representation, n)
	reps[0] = base
	for f := 1; f < n; f++ {
		prev := reps[f-1]
		g := &hybrid.Grid{
			Nx: prev.Volume.Nx, Ny: prev.Volume.Ny, Nz: prev.Volume.Nz,
			Bounds: prev.Volume.Bounds,
			Data:   append([]float32(nil), prev.Volume.Data...),
		}
		// A few cells of volume churn per step.
		for k := 0; k < 8; k++ {
			i := (f*37 + k*101) % len(g.Data)
			g.Data[i] += 0.01
		}
		rep := &hybrid.Representation{
			Bounds:       prev.Bounds,
			Threshold:    prev.Threshold,
			MaxLeafD:     prev.MaxLeafD,
			Volume:       g,
			Points:       append([]vec.V3(nil), prev.Points...),
			PointDensity: append([]float32(nil), prev.PointDensity...),
			OrigIndex:    append([]int64(nil), prev.OrigIndex...),
		}
		// ...and a handful of halo points drifting.
		for k := 0; k < 4 && k < len(rep.Points); k++ {
			i := (f*13 + k*29) % len(rep.Points)
			p := rep.Points[i]
			rep.Points[i] = vec.New(p.X+0.001, p.Y, p.Z)
		}
		reps[f] = rep
	}
	return reps
}

// TestFetchFrameDelta pins the GetDelta contract: the reconstructed
// frame is bit-identical to a full Get, deltas chain (each
// reconstruction is the next base), and on a correlated series the
// wire cost is a fraction of the full frame.
func TestFetchFrameDelta(t *testing.T) {
	reps := correlatedReps(t, 4)
	srv, store := serveMem(t, reps)
	cli := dial(t, srv.Addr())

	baseEnc, err := cli.fetchEncoded(0)
	if err != nil {
		t.Fatal(err)
	}
	full := store.FrameBytes(1)
	for i := 1; i < 4; i++ {
		rep, enc, wire, _, err := cli.FetchFrameDelta(i, i-1, baseEnc)
		if err != nil {
			t.Fatalf("FetchFrameDelta(%d): %v", i, err)
		}
		want, _ := store.EncodedFrame(i)
		if !bytes.Equal(enc, want) {
			t.Fatalf("frame %d reconstruction not bit-identical to the full fetch", i)
		}
		if rep.NumPoints() != reps[i].NumPoints() {
			t.Errorf("frame %d: %d points, want %d", i, rep.NumPoints(), reps[i].NumPoints())
		}
		if wire*4 >= full {
			t.Errorf("frame %d delta shipped %d bytes vs %d full; want at least 4x smaller on a correlated series", i, wire, full)
		}
		baseEnc = enc
	}
}

// TestFetchFrameDeltaFallback: when the server cannot serve the delta
// (base evicted from the live ring) or the client's base bytes are
// stale (CRC mismatch on reconstruction), FetchFrameDelta degrades to
// a full fetch and still returns the exact frame.
func TestFetchFrameDeltaFallback(t *testing.T) {
	reps := correlatedReps(t, 4)
	ring, err := NewLiveRing(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if err := ring.Publish(i, rep); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewService("127.0.0.1:0", ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := dial(t, srv.Addr())

	want, _ := ring.EncodedFrame(3)

	// Base 0 is evicted (ring keeps 2 of 4): the server answers with an
	// error and the client refetches in full.
	_, enc, wire, _, err := cli.FetchFrameDelta(3, 0, []byte("stale"))
	if err != nil {
		t.Fatalf("delta with evicted base: %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Error("fallback fetch not bit-identical")
	}
	if wire != int64(len(want)) {
		t.Errorf("fallback wire size %d, want full frame %d", wire, len(want))
	}

	// Both frames live, but the caller's base bytes are wrong: the
	// delta applies to garbage, the CRC catches it, and the client
	// falls back rather than returning a corrupt frame.
	wrongBase := append([]byte(nil), want...)
	wrongBase[len(wrongBase)/2] ^= 0xff
	if _, enc, _, _, err = cli.FetchFrameDelta(3, 2, wrongBase); err != nil {
		t.Fatalf("delta with corrupt base: %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Error("corrupt-base fallback not bit-identical")
	}

	// Missing target frame fails outright — nothing to fall back to.
	if _, _, _, _, err := cli.FetchFrameDelta(99, 3, want); err == nil {
		t.Error("delta for missing frame succeeded")
	}
	// And the connection survives all of the above.
	if _, _, _, err := cli.FetchFrame(3); err != nil {
		t.Errorf("fetch after delta errors: %v", err)
	}
}

// TestRenderQualityTiers: the preview tier is an explicit opt-in that
// ships a visibly cheaper image; the default stays lossless.
func TestRenderQualityTiers(t *testing.T) {
	reps := testReps(t, 1)
	srv, _ := serveMem(t, reps)
	cli := dial(t, srv.Addr())
	base := RenderParams{Frame: 0, Width: 96, Height: 96, ViewDir: vec.New(0.4, 0.3, 1)}

	lossless, wireL, _, err := cli.Render(base)
	if err != nil {
		t.Fatal(err)
	}
	preview := base
	preview.Quality = QualityPreview
	fbP, wireP, _, err := cli.Render(preview)
	if err != nil {
		t.Fatalf("preview render: %v", err)
	}
	if wireP*2 >= wireL {
		t.Errorf("preview shipped %d bytes vs lossless %d; want at least 2x smaller", wireP, wireL)
	}
	// The preview image approximates the lossless one within the
	// quantization step — same render, cheaper codec.
	for i := range lossless.Color {
		want := lossless.Color[i]
		if want < 0 {
			want = 0
		}
		if want > 1 {
			want = 1
		}
		if d := fbP.Color[i] - want; d > 1.0/255 || d < -1.0/255 {
			t.Fatalf("preview color word %d off by %g", i, d)
		}
	}
	// The zero value of RenderParams selects the lossless tier: a
	// client that never heard of quality tiers keeps the bit-exact
	// contract.
	if QualityLossless != 0 {
		t.Fatal("QualityLossless must be the zero value")
	}
}

// TestEncodeOnceFrameCache: on a store with no encoding of its own, N
// concurrent Gets of one frame run exactly one encode — the
// single-flight contract the fan-out path rests on.
func TestEncodeOnceFrameCache(t *testing.T) {
	reps := testReps(t, 2)
	srv, err := NewService("127.0.0.1:0", &rawStore{reps: reps})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			rep, _, _, err := cli.FetchFrame(0)
			if err != nil {
				errs <- err
				return
			}
			if rep.NumPoints() != reps[0].NumPoints() {
				errs <- fmt.Errorf("fetched frame mangled")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.FrameEncodes != 1 {
		t.Errorf("%d clients cost %d frame encodes, want 1", clients, st.FrameEncodes)
	}
	if st.FrameEncodes+st.FrameHits != clients {
		t.Errorf("encodes %d + hits %d != %d requests", st.FrameEncodes, st.FrameHits, clients)
	}

	// Same single-flight contract on the render cache.
	params := RenderParams{Frame: 1, Width: 48, Height: 48, ViewDir: vec.New(0.4, 0.3, 1)}
	cli := dial(t, srv.Addr())
	var inner sync.WaitGroup
	rerrs := make(chan error, clients)
	for k := 0; k < clients; k++ {
		inner.Add(1)
		go func() {
			defer inner.Done()
			if _, _, _, err := cli.Render(params); err != nil {
				rerrs <- err
			}
		}()
	}
	inner.Wait()
	close(rerrs)
	for err := range rerrs {
		t.Fatal(err)
	}
	st = srv.Stats()
	if st.Renders != 1 {
		t.Errorf("%d identical renders cost %d raster passes, want 1", clients, st.Renders)
	}
	// A different quality tier is a different cache key: it must not
	// serve the lossless blob.
	p2 := params
	p2.Quality = QualityPreview
	if _, _, _, err := cli.Render(p2); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Renders != 2 {
		t.Errorf("preview render reused the lossless cache entry (renders = %d)", st.Renders)
	}
}

// racingLiveStore reproduces the subscribe-vs-publish race window
// deterministically: Watch fires its callback synchronously at
// registration — a publish landing exactly between the service's
// watcher registration and its NumFrames() read — while NumFrames
// still reports the stale pre-publish count.
type racingLiveStore struct {
	rep *hybrid.Representation
}

func (s *racingLiveStore) NumFrames() int { return 0 } // stale: the publish already landed
func (s *racingLiveStore) Frame(i int) (*hybrid.Representation, error) {
	if i != 0 {
		return nil, fmt.Errorf("remote: no such frame %d", i)
	}
	return s.rep, nil
}
func (s *racingLiveStore) Watch(fn func(frames int)) (cancel func()) {
	fn(1)
	return func() {}
}

// TestSubscribeSeesRaceWindowPublish pins the ordering contract in the
// subscribe handler (register the watcher before reading the count):
// a publish landing inside that window must reach the subscriber. The
// notify can overtake the SubscribeOK on the wire, so the client's
// monotonic guard is exercised too — the feed converges on 1 and
// never regresses to the stale 0.
func TestSubscribeSeesRaceWindowPublish(t *testing.T) {
	srv, err := NewService("127.0.0.1:0", &racingLiveStore{rep: testReps(t, 1)[0]})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := dial(t, srv.Addr())
	sub, err := cli.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	deadline := time.After(10 * time.Second)
	for {
		select {
		case n := <-sub.Updates:
			switch n {
			case 1:
				return // the in-window publish was observed
			case 0:
				// The stale subscribe-time count arrived first; the
				// pushed update must still follow.
			default:
				t.Fatalf("update %d, want 0 then 1", n)
			}
		case <-deadline:
			t.Fatal("publish inside the subscribe window was lost")
		}
	}
}

// TestInlineSubscribe: the v3 encode-once broadcast. Every inline
// subscriber receives the published frame's exact wire encoding in
// the notify itself (bit-identical to a Get), while a legacy
// subscriber on the same service still gets count-only notifies.
func TestInlineSubscribe(t *testing.T) {
	reps := correlatedReps(t, 3)
	ring, err := NewLiveRing(4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewService("127.0.0.1:0", ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const subscribers = 4
	subs := make([]*Subscription, subscribers)
	for i := range subs {
		cli := dial(t, srv.Addr())
		if subs[i], err = cli.SubscribeWith(SubscribeOptions{InlineFrames: true}); err != nil {
			t.Fatal(err)
		}
		if n := <-subs[i].Updates; n != 0 {
			t.Fatalf("initial update %d, want 0", n)
		}
	}
	legacy, err := dial(t, srv.Addr()).Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Frames != nil {
		t.Fatal("legacy subscription has a Frames channel")
	}
	<-legacy.Updates

	if err := ring.Publish(0, reps[0]); err != nil {
		t.Fatal(err)
	}
	want, _ := ring.EncodedFrame(0)
	for i, sub := range subs {
		select {
		case u := <-sub.Frames:
			if u.Frames != 1 || u.Index != 0 {
				t.Fatalf("subscriber %d: update (%d, %d), want (1, 0)", i, u.Frames, u.Index)
			}
			if !bytes.Equal(u.Payload, want) {
				t.Fatalf("subscriber %d: inline payload not bit-identical to Get", i)
			}
			rep, err := u.Decode()
			if err != nil {
				t.Fatalf("subscriber %d: decode: %v", i, err)
			}
			if rep.NumPoints() != reps[0].NumPoints() {
				t.Fatalf("subscriber %d: decoded frame mangled", i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("subscriber %d never received the inline frame", i)
		}
		// The count channel runs alongside the frame channel.
		select {
		case n := <-sub.Updates:
			if n != 1 {
				t.Fatalf("subscriber %d: count %d, want 1", i, n)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("subscriber %d never received the count update", i)
		}
	}
	select {
	case n := <-legacy.Updates:
		if n != 1 {
			t.Fatalf("legacy count %d, want 1", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("legacy subscriber never notified")
	}
	if st := srv.Stats(); st.NotifyFrames == 0 {
		t.Error("no inline frame notifies recorded")
	}
}

// TestFanOutStress is the multi-subscriber fan-out stress for the race
// detector: a publisher streams frames into a live ring while many
// inline subscribers decode every push they see and other clients pull
// deltas and renders through the shared caches. Latest-wins delivery
// means a subscriber may skip frames, but everything it does see must
// be bit-identical to the store.
func TestFanOutStress(t *testing.T) {
	reps := correlatedReps(t, 8)
	ring, err := NewLiveRing(16)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewService("127.0.0.1:0", ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const subscribers = 8
	var wg sync.WaitGroup
	errs := make(chan error, subscribers*2+1)
	stop := make(chan struct{})

	for c := 0; c < subscribers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			sub, err := cli.SubscribeWith(SubscribeOptions{InlineFrames: true})
			if err != nil {
				errs <- err
				return
			}
			defer sub.Close()
			seen := 0
			for {
				select {
				case u, ok := <-sub.Frames:
					if !ok {
						return
					}
					want, err := ring.EncodedFrame(u.Index)
					if err != nil {
						continue // already evicted past us; latest-wins
					}
					if !bytes.Equal(u.Payload, want) {
						errs <- fmt.Errorf("subscriber %d: frame %d payload corrupt", c, u.Index)
						return
					}
					if _, err := u.Decode(); err != nil {
						errs <- fmt.Errorf("subscriber %d: frame %d decode: %w", c, u.Index, err)
						return
					}
					seen++
					if u.Frames == len(reps) {
						return
					}
				case <-stop:
					_ = seen // a late subscriber may legitimately see none
					return
				}
			}
		}(c)
	}
	// Delta-stepping pullers riding the shared caches concurrently.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			var baseEnc []byte
			base := -1
			for i := 0; i < len(reps); i++ {
				for ring.NumFrames() <= i {
					select {
					case <-stop:
						return
					case <-time.After(time.Millisecond):
					}
				}
				var enc []byte
				var err error
				if base < 0 {
					enc, err = cli.fetchEncoded(i)
				} else {
					_, enc, _, _, err = cli.FetchFrameDelta(i, base, baseEnc)
				}
				if err != nil {
					errs <- fmt.Errorf("delta step %d: %w", i, err)
					return
				}
				if want, werr := ring.EncodedFrame(i); werr == nil && !bytes.Equal(enc, want) {
					errs <- fmt.Errorf("delta step %d not bit-identical", i)
					return
				}
				base, baseEnc = i, enc
			}
		}()
	}

	for i, rep := range reps {
		if err := ring.Publish(i, rep); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let notifies interleave with pulls
	}
	// Grace for in-flight notifies, then release anyone still waiting
	// (a subscriber whose latest-wins feed skipped the final frame
	// gets no further push to exit on).
	time.Sleep(200 * time.Millisecond)
	close(stop)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fan-out stress timed out")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
