package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/fieldline"
	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/pipeline"
	"repro/internal/vec"
)

// Fleet manages a set of worker connections hosting one kernel and
// stripes Compute requests across the healthy members: each worker
// carries a bounded in-flight window, each dispatch goes to the
// least-loaded member (so a lagging worker naturally sheds frames to
// faster peers — work stealing falls out of the load rule), and a
// failed attempt is re-dispatched to a surviving member under the
// retry policy. Because retries happen beneath the pipeline stage's
// sequence tagging, a failover is invisible in the output: frames
// arrive complete, in order, and bit-identical to a single-worker or
// local run.
//
// Health is per member. A consecutive run of transient failures
// (EjectAfter) ejects a worker — its connection is torn down and no
// further frames go to it — and a background probe re-dials ejected
// members every ProbeInterval, re-verifying the kernel advertisement
// before letting one back in. Admission is verified up front too:
// NewFleet asks every reachable member for its Kernels and refuses to
// build a fleet containing a mis-provisioned worker. A stream over a
// fleet therefore degrades instead of dying — it fails only when no
// member can serve a frame within the retry policy.
type Fleet struct {
	opts    FleetOptions
	members []*member

	probeDone chan struct{}
	probeWG   sync.WaitGroup

	mu       sync.Mutex
	next     int           // round-robin tiebreak cursor
	slotFree chan struct{} // closed-and-replaced when a slot or member frees up
	closed   bool
}

// WorkerState is a fleet member's health.
type WorkerState int

const (
	// WorkerHealthy members receive dispatches.
	WorkerHealthy WorkerState = iota
	// WorkerEjected members failed EjectAfter consecutive times (or
	// were unreachable at startup); the probe loop tries to bring them
	// back.
	WorkerEjected
	// WorkerRefused members answered a rejoin probe without
	// advertising the fleet's kernel — mis-provisioned, permanently
	// out.
	WorkerRefused
)

func (s WorkerState) String() string {
	switch s {
	case WorkerHealthy:
		return "healthy"
	case WorkerEjected:
		return "ejected"
	case WorkerRefused:
		return "refused"
	}
	return fmt.Sprintf("WorkerState(%d)", int(s))
}

// WorkerStats is one member's dispatch ledger, for observability and
// tests.
type WorkerStats struct {
	Addr       string
	State      WorkerState
	InFlight   int   // requests currently on this worker
	Dispatched int64 // total requests sent
	Failures   int64 // total transient failures recorded
	Rejoins    int64 // times the probe brought it back after ejection
}

// FleetOptions configure a Fleet. The zero value of every tunable
// gets a sensible default; only Kernel is required.
type FleetOptions struct {
	// Kernel names the stage kernel every member must host; NewFleet
	// and the rejoin probe verify it against the worker's Kernels
	// advertisement.
	Kernel string

	// Window is the per-worker in-flight cap (default 4). The fleet's
	// total concurrency is Window × healthy members.
	Window int

	// RequestTimeout bounds one Compute attempt (default
	// DefaultRequestTimeout, negative disables): a worker that hangs
	// mid-frame forfeits the frame to a surviving member instead of
	// stalling the stream.
	RequestTimeout time.Duration

	// Retry governs re-dispatch of failed attempts (zero value →
	// pipeline defaults: 3 attempts, exponential backoff with jitter).
	Retry pipeline.RetryPolicy

	// EjectAfter is the consecutive transient-failure count that
	// ejects a member (default 3).
	EjectAfter int

	// ProbeInterval is how often ejected members are re-dialed
	// (default 500ms; negative disables rejoin probing).
	ProbeInterval time.Duration

	// BandwidthBps throttles each member connection's response reads,
	// modeling the wide-area link (<= 0 disables).
	BandwidthBps int64

	// Dial overrides the transport dialer — the seam fault-injection
	// tests use to wrap member connections. nil means TCP with a 5s
	// connect timeout.
	Dial func(addr string) (net.Conn, error)
}

func (o FleetOptions) window() int {
	if o.Window <= 0 {
		return 4
	}
	return o.Window
}

func (o FleetOptions) ejectAfter() int {
	if o.EjectAfter <= 0 {
		return 3
	}
	return o.EjectAfter
}

func (o FleetOptions) probeInterval() time.Duration {
	switch {
	case o.ProbeInterval > 0:
		return o.ProbeInterval
	case o.ProbeInterval < 0:
		return 0
	default:
		return 500 * time.Millisecond
	}
}

func (o FleetOptions) requestTimeout() time.Duration {
	return ClientOptions{RequestTimeout: o.RequestTimeout}.requestTimeout()
}

func (o FleetOptions) dial(addr string) (net.Conn, error) {
	if o.Dial != nil {
		return o.Dial(addr)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	return conn, nil
}

// member is one worker slot. All mutable fields are guarded by the
// fleet mutex; cli is nil while ejected.
type member struct {
	addr string

	cli        *Client
	state      WorkerState
	inflight   int
	dispatched int64
	failures   int64 // total, for Stats
	streak     int   // consecutive, for ejection
	rejoins    int64
}

// errFleetClosed fails dispatches after Close; it is permanent, so
// retries stop immediately.
var errFleetClosed = errors.New("remote: fleet is closed")

// IsTransient reports whether err is worth re-dispatching to another
// worker: attempt deadlines, transport-level failures (connection
// lost, framing corruption, unexpected responses), and a draining
// worker's ErrCodeUnavailable all are. Application-level WireErrors
// (bad request, unknown kernel, kernel failure) are deterministic —
// every member would answer the same — and context cancellation means
// the caller is gone; neither retries.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, errFleetClosed) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var we *WireError
	if errors.As(err, &we) {
		return we.Code == ErrCodeUnavailable
	}
	return true
}

// NewFleet dials every addr, verifies each reachable worker hosts
// opts.Kernel, and returns the fleet. An unreachable worker starts
// ejected (the probe loop keeps trying to admit it); a reachable
// worker that does not advertise the kernel is a configuration error
// and fails construction. At least one member must be healthy at
// startup — a fleet that cannot serve its first frame fails fast here
// rather than timing out frame by frame.
func NewFleet(addrs []string, opts FleetOptions) (*Fleet, error) {
	if opts.Kernel == "" {
		return nil, errors.New("remote: FleetOptions.Kernel is required")
	}
	if len(addrs) == 0 {
		return nil, errors.New("remote: a fleet needs at least one worker address")
	}
	f := &Fleet{
		opts:      opts,
		probeDone: make(chan struct{}),
		slotFree:  make(chan struct{}),
	}
	var firstErr error
	healthy := 0
	for _, addr := range addrs {
		m := &member{addr: addr, state: WorkerEjected}
		cli, err := f.admit(addr)
		switch {
		case err == nil:
			m.cli = cli
			m.state = WorkerHealthy
			healthy++
		case errors.Is(err, errMisprovisioned):
			for _, prev := range f.members {
				if prev.cli != nil {
					prev.cli.Close()
				}
			}
			return nil, fmt.Errorf("remote: worker %s does not host kernel %q", addr, opts.Kernel)
		default:
			if firstErr == nil {
				firstErr = err
			}
		}
		f.members = append(f.members, m)
	}
	if healthy == 0 {
		return nil, fmt.Errorf("remote: no reachable worker in fleet %v: %w", addrs, firstErr)
	}
	if iv := opts.probeInterval(); iv > 0 {
		f.probeWG.Add(1)
		go f.probeLoop(iv)
	}
	return f, nil
}

var errMisprovisioned = errors.New("remote: kernel not advertised")

// admit dials addr, runs the handshake, and verifies the kernel
// advertisement. Returns errMisprovisioned (with the client closed)
// when the worker answers but does not host the fleet's kernel.
func (f *Fleet) admit(addr string) (*Client, error) {
	conn, err := f.opts.dial(addr)
	if err != nil {
		return nil, err
	}
	cli, err := NewClientConn(conn, ClientOptions{RequestTimeout: f.opts.RequestTimeout})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	names, err := cli.Kernels(ctx)
	cancel()
	if err != nil {
		cli.Close()
		return nil, err
	}
	for _, name := range names {
		if name == f.opts.Kernel {
			if f.opts.BandwidthBps > 0 {
				cli.SetBandwidth(f.opts.BandwidthBps)
			}
			return cli, nil
		}
	}
	cli.Close()
	return nil, errMisprovisioned
}

// Close tears the fleet down: the probe loop stops, every member
// connection closes, and waiting dispatchers fail with a permanent
// error.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	close(f.probeDone)
	var clients []*Client
	for _, m := range f.members {
		if m.cli != nil {
			clients = append(clients, m.cli)
			m.cli = nil
		}
		m.state = WorkerEjected
	}
	f.wakeLocked()
	f.mu.Unlock()
	f.probeWG.Wait()
	var firstErr error
	for _, cli := range clients {
		if err := cli.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats snapshots every member's ledger, in the order the addresses
// were given to NewFleet.
func (f *Fleet) Stats() []WorkerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]WorkerStats, len(f.members))
	for i, m := range f.members {
		out[i] = WorkerStats{
			Addr:       m.addr,
			State:      m.state,
			InFlight:   m.inflight,
			Dispatched: m.dispatched,
			Failures:   m.failures,
			Rejoins:    m.rejoins,
		}
	}
	return out
}

// wakeLocked signals every dispatcher parked on a full fleet that the
// slot picture changed. Close-and-replace broadcast: cheap when
// nobody waits, wakes everybody when the topology shifts.
func (f *Fleet) wakeLocked() {
	close(f.slotFree)
	f.slotFree = make(chan struct{})
}

// errNoWorkers is the transient attempt error for a fleet whose
// members are all ejected: the retry policy spends its backoff on it
// (a probe may readmit someone in the meantime) and the stream fails
// with it once the policy is exhausted.
var errNoWorkers = errors.New("remote: no healthy fleet member")

// acquire claims a dispatch slot on the least-loaded healthy member
// (round-robin among ties) and returns the member with its client
// pinned. It blocks while every healthy member's window is full —
// that backpressure is what stripes a stream across the fleet — but
// fails immediately (transiently) when no member is healthy at all,
// so "all workers down" is spent against the retry policy instead of
// parking the dispatcher until the stream's context dies.
func (f *Fleet) acquire(ctx context.Context) (*member, *Client, error) {
	for {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return nil, nil, errFleetClosed
		}
		n := len(f.members)
		anyHealthy := false
		var best *member
		for i := 0; i < n; i++ {
			m := f.members[(f.next+i)%n]
			if m.state != WorkerHealthy {
				continue
			}
			anyHealthy = true
			if m.inflight >= f.opts.window() {
				continue
			}
			if best == nil || m.inflight < best.inflight {
				best = m
			}
		}
		if !anyHealthy {
			f.mu.Unlock()
			return nil, nil, errNoWorkers
		}
		if best != nil {
			f.next = (f.next + 1) % n
			best.inflight++
			best.dispatched++
			cli := best.cli
			f.mu.Unlock()
			return best, cli, nil
		}
		wait := f.slotFree
		f.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// release returns m's slot and settles the health ledger: success (or
// a deterministic application error) clears the failure streak; a
// transient failure extends it, and a streak of EjectAfter ejects the
// member and severs its connection.
func (f *Fleet) release(m *member, err error) {
	var closeCli *Client
	f.mu.Lock()
	m.inflight--
	switch {
	case err == nil, !IsTransient(err):
		m.streak = 0
	default:
		m.failures++
		m.streak++
		if m.streak >= f.opts.ejectAfter() && m.state == WorkerHealthy {
			m.state = WorkerEjected
			closeCli = m.cli
			m.cli = nil
		}
	}
	f.wakeLocked()
	f.mu.Unlock()
	if closeCli != nil {
		closeCli.Close()
	}
}

// computeOnce runs one attempt: claim a slot, bound the attempt with
// the per-request deadline, ship the kernel call, settle health.
func (f *Fleet) computeOnce(ctx context.Context, req []byte) ([]byte, error) {
	m, cli, err := f.acquire(ctx)
	if err != nil {
		return nil, err
	}
	actx := ctx
	cancel := func() {}
	if d := f.opts.requestTimeout(); d > 0 {
		actx, cancel = context.WithTimeout(ctx, d)
	}
	out, err := cli.Compute(actx, f.opts.Kernel, req)
	cancel()
	f.release(m, err)
	return out, err
}

// Compute dispatches one kernel request to the fleet, re-dispatching
// transient failures to surviving members under the retry policy. req
// is caller-owned and reused verbatim across attempts, so a retried
// frame is bit-identical to a first-try one.
func (f *Fleet) Compute(ctx context.Context, req []byte) ([]byte, error) {
	var out []byte
	err := pipeline.Retry(ctx, f.opts.Retry, IsTransient, func(ctx context.Context) error {
		var aerr error
		out, aerr = f.computeOnce(ctx, req)
		return aerr
	})
	if err != nil {
		return nil, fmt.Errorf("remote: fleet compute failed: %w", err)
	}
	return out, nil
}

// ComputeExtract is Client.ComputeExtract striped over the fleet: the
// request encodes once, failover re-ships the identical bytes, and
// the reply decodes exactly as the single-worker path does — so fleet
// output is bit-identical to a one-worker or local run.
func (f *Fleet) ComputeExtract(ctx context.Context, pts []vec.V3, tcfg octree.Config, ecfg hybrid.ExtractConfig) (*hybrid.Representation, error) {
	req := appendExtractRequest(getBytes(0), pts, tcfg, ecfg)
	out, err := f.Compute(ctx, req)
	putBytes(req)
	if err != nil {
		return nil, err
	}
	rep, err := hybrid.DecodeBinary(out)
	putBytes(out)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// ComputeTrace is Client.ComputeTrace striped over the fleet.
func (f *Fleet) ComputeTrace(ctx context.Context, spec FieldSpec, seeds []vec.V3, cfg fieldline.Config, sign float64, workers int) ([]*fieldline.Line, error) {
	if cfg.Domain != nil {
		return nil, fmt.Errorf("remote: fieldline.Config.Domain cannot ship to a trace kernel")
	}
	req := appendTraceRequest(getBytes(0), spec, seeds, cfg, sign, workers)
	out, err := f.Compute(ctx, req)
	putBytes(req)
	if err != nil {
		return nil, err
	}
	lines, err := decodeTraceReply(out)
	putBytes(out)
	return lines, err
}

// probeLoop re-dials ejected members every interval, re-verifying the
// kernel advertisement before readmission. A member that answers but
// no longer hosts the kernel flips to WorkerRefused and stays out.
func (f *Fleet) probeLoop(interval time.Duration) {
	defer f.probeWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-f.probeDone:
			return
		case <-t.C:
			f.probeEjected()
		}
	}
}

func (f *Fleet) probeEjected() {
	f.mu.Lock()
	var targets []*member
	for _, m := range f.members {
		if m.state == WorkerEjected {
			targets = append(targets, m)
		}
	}
	f.mu.Unlock()
	for _, m := range targets {
		cli, err := f.admit(m.addr)
		if errors.Is(err, errMisprovisioned) {
			f.mu.Lock()
			if m.state == WorkerEjected {
				m.state = WorkerRefused
			}
			f.mu.Unlock()
			continue
		}
		if err != nil {
			continue // still down; next tick tries again
		}
		f.mu.Lock()
		if f.closed || m.state != WorkerEjected {
			f.mu.Unlock()
			cli.Close()
			continue
		}
		m.cli = cli
		m.state = WorkerHealthy
		m.streak = 0
		m.rejoins++
		f.wakeLocked()
		f.mu.Unlock()
	}
}
