package remote

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/render"
	"repro/internal/vec"
	"repro/internal/volren"
)

// renderRepFixture builds a real hybrid representation (leaf-ordered
// points, genuine bounds and TF parameters) for the render kernel
// tests.
func renderRepFixture(t testing.TB, n int) *hybrid.Representation {
	t.Helper()
	tcfg := octree.DefaultConfig()
	tcfg.Workers = 2
	tree, err := octree.Build(testPoints(11, n), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: 8, Budget: int64(n / 4), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) < 16 {
		t.Fatalf("fixture extracted only %d points", len(rep.Points))
	}
	return rep
}

func renderReqFixture(rep *hybrid.Representation, seq, lo, hi int) *RenderPartialRequest {
	return &RenderPartialRequest{
		Width: 72, Height: 64,
		Seq: seq, Offset: lo,
		ViewDir: vec.New(0.4, 0.3, 1), PointScale: 1.5,
		Bounds: rep.Bounds, Threshold: rep.Threshold, MaxLeafD: rep.MaxLeafD,
		Points: rep.Points[lo:hi], Density: rep.PointDensity[lo:hi],
	}
}

// localPointPass renders the request's slice with the plain local
// pass — no depth clip — so a match against the worker's clipped
// partial also proves the clip changed nothing.
func localPointPass(t testing.TB, req *RenderPartialRequest) *render.Framebuffer {
	t.Helper()
	tf, err := hybrid.DefaultTFParams(req.Threshold, req.MaxLeafD)
	if err != nil {
		t.Fatal(err)
	}
	cam, err := render.LookAtBounds(req.Bounds, req.ViewDir, math.Pi/3, float64(req.Width)/float64(req.Height))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := render.NewFramebuffer(req.Width, req.Height)
	if err != nil {
		t.Fatal(err)
	}
	fb.Clear(hybrid.RGBA{})
	sub := &hybrid.Representation{Points: req.Points, PointDensity: req.Density}
	volren.RenderPointPass(sub, tf, fb, cam, req.PointScale, req.Opaque,
		volren.PointPassOptions{Offset: req.Offset})
	return fb
}

func sameFrame(a, b *render.Framebuffer) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Color {
		if math.Float32bits(a.Color[i]) != math.Float32bits(b.Color[i]) {
			return false
		}
	}
	for i := range a.Depth {
		if math.Float32bits(a.Depth[i]) != math.Float32bits(b.Depth[i]) {
			return false
		}
	}
	return true
}

// TestRenderRequestRoundTrip pins the "ACPR" blob: every field
// survives encode/decode exactly, and every corruption class errors
// cleanly.
func TestRenderRequestRoundTrip(t *testing.T) {
	rep := renderRepFixture(t, 2000)
	in := renderReqFixture(rep, 3, 5, len(rep.Points)-7)
	in.Opaque = true
	blob := appendRenderPartialRequest(nil, in)

	out, err := decodeRenderPartialRequest(blob)
	if err != nil {
		t.Fatal(err)
	}
	if out.Width != in.Width || out.Height != in.Height || out.Seq != in.Seq || out.Offset != in.Offset ||
		out.ViewDir != in.ViewDir || out.PointScale != in.PointScale || out.Opaque != in.Opaque ||
		out.Bounds != in.Bounds || out.Threshold != in.Threshold || out.MaxLeafD != in.MaxLeafD {
		t.Errorf("scalar fields mangled:\n got %+v\nwant %+v", out, in)
	}
	if len(out.Points) != len(in.Points) || len(out.Density) != len(in.Density) {
		t.Fatalf("lengths mangled: %d/%d points, %d/%d densities",
			len(out.Points), len(in.Points), len(out.Density), len(in.Density))
	}
	for i := range in.Points {
		if out.Points[i] != in.Points[i] || out.Density[i] != in.Density[i] {
			t.Fatalf("point %d mangled", i)
		}
	}

	for name, data := range map[string][]byte{
		"empty":          {},
		"truncated":      blob[:len(blob)/2],
		"bad magic":      flipByte(blob, 0),
		"bad version":    flipByte(blob, 4),
		"flipped point":  flipByte(blob, renderReqFixed+12),
		"flipped crc":    flipByte(blob, len(blob)-1),
		"trailing bytes": append(append([]byte(nil), blob...), 0),
	} {
		if _, err := decodeRenderPartialRequest(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestComputeRenderBitIdentical is the kernel acceptance test: the
// worker's partial framebuffers — rendered with the depth clip and
// round-tripped through the "ACPB" codec — must be bit-identical to
// the unclipped local point pass over the same slices, with every
// partition in flight concurrently on one connection, and the whole
// kernel set advertised.
func TestComputeRenderBitIdentical(t *testing.T) {
	w := startWorker(t)
	cli := dial(t, w.Addr())

	kernels, err := cli.Kernels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range kernels {
		if k == KernelRenderPartial {
			found = true
		}
	}
	if !found {
		t.Fatalf("worker advertises %v without %s", kernels, KernelRenderPartial)
	}

	rep := renderRepFixture(t, 3000)
	const parts = 4
	n := len(rep.Points)
	var wg sync.WaitGroup
	errs := make(chan error, parts)
	for k := 0; k < parts; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			req := renderReqFixture(rep, k, k*n/parts, (k+1)*n/parts)
			pf, err := cli.ComputeRender(context.Background(), req)
			if err != nil {
				errs <- fmt.Errorf("partition %d: %w", k, err)
				return
			}
			if pf.Seq != k {
				errs <- fmt.Errorf("partition %d came back tagged %d", k, pf.Seq)
				return
			}
			if !sameFrame(pf.FB, localPointPass(t, req)) {
				errs <- fmt.Errorf("partition %d: remote partial not bit-identical to local pass", k)
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Mismatched slice lengths are rejected client-side.
	bad := renderReqFixture(rep, 0, 0, 10)
	bad.Density = bad.Density[:5]
	if _, err := cli.ComputeRender(context.Background(), bad); err == nil {
		t.Error("mismatched point/density lengths accepted")
	}
}

// TestFleetComputeRenderFailover: a 2-member render fleet whose first
// member's connection resets mid-exchange must finish every partition
// on the survivor, bit-identical — the mid-frame worker-loss half of
// the compositing acceptance criteria, at the partial level.
func TestFleetComputeRenderFailover(t *testing.T) {
	faulty := startWorker(t)
	clean := startWorker(t)
	fl, err := NewFleet([]string{faulty.Addr(), clean.Addr()}, FleetOptions{
		Kernel:        KernelRenderPartial,
		Window:        2,
		Retry:         fastFleetRetry,
		EjectAfter:    1,
		ProbeInterval: -1,
		Dial:          faultyDial(faulty.Addr(), faultPoint{}, faultPoint{kind: faultReset, offset: 4000}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	rep := renderRepFixture(t, 3000)
	const parts = 6
	n := len(rep.Points)
	var wg sync.WaitGroup
	errs := make(chan error, parts)
	for k := 0; k < parts; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			req := renderReqFixture(rep, k, k*n/parts, (k+1)*n/parts)
			pf, err := fl.ComputeRender(context.Background(), req)
			if err != nil {
				errs <- fmt.Errorf("partition %d: %w", k, err)
				return
			}
			if !sameFrame(pf.FB, localPointPass(t, req)) {
				errs <- fmt.Errorf("partition %d: failover partial not bit-identical", k)
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	checkFailover(t, fl)
}

// TestFleetComputeRenderTimeout: a cancelled context aborts an
// in-flight render fan-out promptly.
func TestFleetComputeRenderTimeout(t *testing.T) {
	w := startWorker(t)
	fl, err := NewFleet([]string{w.Addr()}, FleetOptions{
		Kernel: KernelRenderPartial, Window: 1,
		Retry: fastFleetRetry, ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	rep := renderRepFixture(t, 1500)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := fl.ComputeRender(ctx, renderReqFixture(rep, 0, 0, len(rep.Points))); err == nil {
		t.Error("expired context rendered without error")
	}
}
