// Package remote implements the remote-visualization setting of the
// paper: "Because of the collaborative nature of the overall
// accelerator modeling project, the visualization technology developed
// is for both desktop and remote visualization settings" — hybrid
// frames are produced where the supercomputer lives and viewed "on a
// scientist's desk thousands of miles away".
//
// A Server holds encoded hybrid frames; a Client fetches them over TCP
// with an optional bandwidth throttle that models the wide-area link,
// so the transfer-size economics of the hybrid representation (100MB
// frames at ~10s per frame on the paper's links) can be measured.
//
// Protocol (little-endian):
//
//	client: 1-byte op ('C' = count, 'G' = get) [+ 4-byte frame index]
//	server: 1-byte status (0 ok, 1 error) + 8-byte length + payload
package remote

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/hybrid"
)

// Server serves a fixed set of encoded hybrid frames.
type Server struct {
	ln     net.Listener
	frames [][]byte
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewServer encodes the given representations and starts listening on
// addr (use "127.0.0.1:0" for an ephemeral test port).
func NewServer(addr string, frames []*hybrid.Representation) (*Server, error) {
	encoded := make([][]byte, len(frames))
	for i, f := range frames {
		var buf writerBuffer
		if err := f.Write(&buf); err != nil {
			return nil, fmt.Errorf("remote: encoding frame %d: %w", i, err)
		}
		encoded[i] = buf.data
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	s := &Server{ln: ln, frames: encoded}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

type writerBuffer struct{ data []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// FrameBytes returns the encoded size of frame i.
func (s *Server) FrameBytes(i int) int64 {
	if i < 0 || i >= len(s.frames) {
		return 0
	}
	return int64(len(s.frames[i]))
}

// Close stops the server and waits for connection handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	le := binary.LittleEndian
	for {
		op, err := br.ReadByte()
		if err != nil {
			return
		}
		switch op {
		case 'C':
			bw.WriteByte(0)
			binary.Write(bw, le, uint64(8))
			binary.Write(bw, le, uint64(len(s.frames)))
		case 'G':
			var idx uint32
			if err := binary.Read(br, le, &idx); err != nil {
				return
			}
			if int(idx) >= len(s.frames) {
				msg := []byte(fmt.Sprintf("no frame %d", idx))
				bw.WriteByte(1)
				binary.Write(bw, le, uint64(len(msg)))
				bw.Write(msg)
			} else {
				bw.WriteByte(0)
				binary.Write(bw, le, uint64(len(s.frames[idx])))
				bw.Write(s.frames[idx])
			}
		default:
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Client fetches frames from a Server. BandwidthBps > 0 throttles
// reads to that many bytes per second, modeling the wide-area link.
type Client struct {
	conn         net.Conn
	br           *bufio.Reader
	BandwidthBps int64
}

// Dial connects to a frame server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	return &Client{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// NumFrames asks the server how many frames it holds.
func (c *Client) NumFrames() (int, error) {
	if _, err := c.conn.Write([]byte{'C'}); err != nil {
		return 0, fmt.Errorf("remote: %w", err)
	}
	payload, err := c.readResponse()
	if err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		return 0, fmt.Errorf("remote: bad count payload")
	}
	return int(binary.LittleEndian.Uint64(payload)), nil
}

// FetchFrame downloads and decodes frame i, returning the
// representation, the transfer size and the (throttled) elapsed time —
// exactly the "10 seconds for a 100MB time step" measurement of §2.5.
func (c *Client) FetchFrame(i int) (*hybrid.Representation, int64, time.Duration, error) {
	start := time.Now()
	req := make([]byte, 5)
	req[0] = 'G'
	binary.LittleEndian.PutUint32(req[1:], uint32(i))
	if _, err := c.conn.Write(req); err != nil {
		return nil, 0, 0, fmt.Errorf("remote: %w", err)
	}
	payload, err := c.readResponse()
	if err != nil {
		return nil, 0, 0, err
	}
	rep, err := hybrid.Read(&sliceReader{data: payload})
	if err != nil {
		return nil, 0, 0, err
	}
	return rep, int64(len(payload)), time.Since(start), nil
}

// readResponse reads a status + length + payload frame, applying the
// bandwidth throttle to the payload body.
func (c *Client) readResponse() ([]byte, error) {
	header := make([]byte, 9)
	if _, err := io.ReadFull(c.br, header); err != nil {
		return nil, fmt.Errorf("remote: reading header: %w", err)
	}
	status := header[0]
	length := binary.LittleEndian.Uint64(header[1:])
	if length > 1<<32 {
		return nil, fmt.Errorf("remote: implausible payload %d", length)
	}
	payload := make([]byte, length)
	if c.BandwidthBps <= 0 {
		if _, err := io.ReadFull(c.br, payload); err != nil {
			return nil, fmt.Errorf("remote: reading payload: %w", err)
		}
	} else {
		// Throttled read: consume in chunks, sleeping to hold the rate.
		const chunk = 64 << 10
		read := 0
		start := time.Now()
		for read < len(payload) {
			n := chunk
			if read+n > len(payload) {
				n = len(payload) - read
			}
			if _, err := io.ReadFull(c.br, payload[read:read+n]); err != nil {
				return nil, fmt.Errorf("remote: reading payload: %w", err)
			}
			read += n
			// Sleep until the wall clock catches up with the modeled link.
			ideal := time.Duration(float64(read) / float64(c.BandwidthBps) * float64(time.Second))
			if elapsed := time.Since(start); elapsed < ideal {
				time.Sleep(ideal - elapsed)
			}
		}
	}
	if status != 0 {
		return nil, fmt.Errorf("remote: server error: %s", payload)
	}
	return payload, nil
}

type sliceReader struct {
	data []byte
	pos  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// TransferEstimate returns how long a payload of the given size takes
// at the given bandwidth — the arithmetic behind the paper's frame
// budgeting (100MB at ~10MB/s ≈ 10 s).
func TransferEstimate(bytes, bandwidthBps int64) time.Duration {
	if bandwidthBps <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / float64(bandwidthBps) * float64(time.Second))
}
