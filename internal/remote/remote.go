// Package remote is the visualization service API for the paper's
// remote setting: frames are produced "where the supercomputer lives"
// and viewed "on a scientist's desk thousands of miles away" (§2.5).
//
// The read side is a FrameStore — an ordered collection of hybrid
// frames with three implementations covering the three deployment
// modes:
//
//   - MemStore: a fixed in-memory frame set (post-hoc, all extracted)
//   - DirStore: a directory of .achy files (the batch workflow)
//   - LiveRing: a bounded latest-wins ring that a *running* pipeline
//     publishes into (in-situ mode) — it implements core.FrameSink, the
//     write side that core.StreamFrames/StreamSolve accept as a sink
//     stage, so remote viewers watch the simulation while it computes
//     and a slow client can never backpressure the solver.
//
// A Service serves any FrameStore to concurrent clients over a
// versioned, length-prefixed, CRC-framed, request-ID-multiplexed
// protocol (protocol.go, v6) with these store verbs:
//
//   - List: frame range and liveness
//   - Get: full-frame transfer (fetch-and-render-locally); the
//     transfer-size economics of the hybrid representation — 100MB
//     frames at ~10s on the paper's links — measured by FetchFrame
//   - GetDelta (v3): the client names a frame it already holds and
//     receives the requested frame as a word-RLE-compressed XOR
//     residual against it — on a correlated time series a small
//     fraction of the full transfer, reconstructed bit-identically
//     (CRC-verified) by FetchFrameDelta, with transparent full-fetch
//     fallback when the base is gone or stale
//   - Subscribe: live-frame push notifications (LiveStore stores).
//     With the v3 inline flag (SubscribeOptions.InlineFrames) each
//     notify carries the new frame's wire encoding itself — encoded
//     once and broadcast to every inline subscriber from the shared
//     buffer, so per-frame server work is independent of audience size
//   - Render: thin-client mode — the client ships camera/transfer-
//     function parameters, the server renders on the tile-binned
//     rasterizer and returns an RLE-compressed framebuffer,
//     bit-identical to a local render at ~1-2 orders of magnitude
//     fewer bytes than the frame itself. v3 adds a negotiated quality
//     tier: the default stays lossless; QualityPreview opts into a
//     quantized 8-bit image several times smaller again (lossy
//     against the source, stable under its own round trip)
//   - Ping (v5): heartbeat. Clients ping in the background every
//     ClientOptions.HeartbeatInterval (default 15s) and declare a peer
//     dead after IdleTimeout of inbound silence; the server reaps a
//     connection that sends nothing — not even a ping — for
//     ServiceOptions.IdleTimeout (default 2m). Both sides answer it in
//     every state, including admission-refused sessions
//   - Stats (v5): the measurement surface — ServiceStats counters plus
//     a per-session table (admission verdict, subscription mode, send
//     queue depth/capacity, drop/degrade/sent counters)
//
// v5 is the session-resilience revision. On the server, each
// subscriber gets a bounded send queue (ServiceOptions.SendQueue)
// drained by its own goroutine, so a stalled connection never blocks
// the publisher or the other subscribers; overflow applies
// ServiceOptions.Slow — SlowSkip drops the oldest pushes (latest
// wins), SlowDegrade collapses an inline subscriber to count-only
// notifies until it catches up, SlowEvict severs the connection with a
// retryable error. Admission control (MaxSessions, MaxRenders) refuses
// excess work with retryable ErrCodeUnavailable instead of degrading
// admitted clients. On the client, ReconnectClient redials with
// pipeline.Retry backoff on any transient failure (connection loss,
// heartbeat timeout, retryable refusal), re-handshakes, and re-issues
// the interrupted call; SubscribeResume keeps a subscription across
// reconnects, catching up over GetDelta from the last delivered frame
// so the resumed stream is ordered, gapless and bit-identical to an
// uninterrupted one.
//
// On the server, all of Get, GetDelta and Render run behind
// encode-once caches (LRU + single-flight): N concurrent requests for
// the same frame, residual, or view cost one encode/render, which is
// what makes fan-out to large subscriber counts scale (see
// BenchmarkFanOut and ServiceStats).
//
// The Compute and Kernels verbs belong to the other service type: a
// Worker hosts named stage kernels, so the pipeline engine can place a
// stage's per-frame work on another process or host. Three kernels are
// built in, each with pario-idiom CRC-framed request/reply encodings:
//
//	kernel             request  reply  wired in by
//	hybrid.extract.v1  "ACPT"   .achy  core.StreamOptions.ExtractAddr/ExtractAddrs
//	fieldline.trace.v1 "ACFS"   "ACFR" Client.ComputeTrace / Fleet.ComputeTrace
//	render.partial.v1  "ACPR"   "ACPB" core.StreamOptions.RenderAddrs (v6)
//
// render.partial.v1 is the v6 sort-last kernel: the request carries a
// sub-volume of a frame's hybrid representation (an octree-partition
// slice of the leaf-ordered point set) plus camera and transfer-
// function parameters, the worker renders the point-splat pass with a
// depth channel clipped to the sub-volume's conservative depth slab,
// and the reply is a compressed RGBA+depth partial framebuffer
// ("ACPB", render.AppendPartial). The stream's render stage fans one
// request per partition across a render fleet and depth-composites
// the partials (internal/compositor) before the volume ray cast runs
// over the merged framebuffer — bit-identical to a single-node render
// at every partition count, worker count, and under mid-frame worker
// loss. cmd/vizworker hosts all three kernels. Kernels (v4) is the
// provisioning check: a worker advertises its hosted kernel set, and
// a Fleet refuses to admit a member that does not host its kernel. A
// service answers verbs it does not speak with a typed
// ErrCodeUnknownVerb error and keeps the connection.
//
// A Fleet stripes one kernel's requests across N workers with
// per-member in-flight windows and the robustness machinery the
// cross-site setting needs: per-attempt deadlines, exponential
// backoff with jitter, bounded re-dispatch of lost frames to
// surviving members (bit-identical — the stage reorderer keeps output
// order), consecutive-failure ejection with periodic probe-and-rejoin,
// and graceful degradation — a fleet stream fails only when no member
// can serve a frame within the retry policy. Workers drain on
// shutdown (v4 ErrCodeUnavailable answers are retried elsewhere), so
// deliberately stopping a worker never truncates a stream.
//
// Because responses are matched to requests by ID, one connection
// carries many requests in flight: the viewer's prefetcher overlaps
// its WAN fetches — and a distributed stage its in-flight frames — on
// a single session.
package remote
