package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/vec"
)

func startWorker(t testing.TB) *Worker {
	t.Helper()
	w, err := NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func testPoints(seed int64, n int) []vec.V3 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]vec.V3, n)
	for i := range pts {
		pts[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	return pts
}

// TestComputeExtractBitIdentical: the worker's hybrid-extraction
// kernel must reproduce the local Build+Extract pair byte for byte,
// with several frames in flight on one connection.
func TestComputeExtractBitIdentical(t *testing.T) {
	w := startWorker(t)
	cli := dial(t, w.Addr())

	tcfg := octree.DefaultConfig()
	tcfg.Workers = 2
	ecfg := hybrid.ExtractConfig{VolumeRes: 8, Budget: 600, Workers: 2}

	const frames = 6
	want := make([][]byte, frames)
	for f := range want {
		tree, err := octree.Build(testPoints(int64(f), 3000), tcfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := hybrid.Extract(tree, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		want[f] = rep.AppendBinary(nil)
	}

	// All frames concurrently, multiplexed on the one connection.
	var wg sync.WaitGroup
	errs := make(chan error, frames)
	for f := 0; f < frames; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rep, err := cli.ComputeExtract(context.Background(), testPoints(int64(f), 3000), tcfg, ecfg)
			if err != nil {
				errs <- fmt.Errorf("frame %d: %w", f, err)
				return
			}
			if !bytes.Equal(rep.AppendBinary(nil), want[f]) {
				errs <- fmt.Errorf("frame %d: remote extraction not bit-identical", f)
			}
		}(f)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestComputeUnknownKernel: naming an unregistered kernel returns a
// typed error and the connection survives.
func TestComputeUnknownKernel(t *testing.T) {
	w := startWorker(t)
	cli := dial(t, w.Addr())
	_, err := cli.Compute(context.Background(), "no.such.kernel", []byte("blob"))
	if err == nil {
		t.Fatal("unknown kernel computed without error")
	}
	if CodeOf(err) != ErrCodeUnknownKernel {
		t.Errorf("error code %d, want ErrCodeUnknownKernel; err: %v", CodeOf(err), err)
	}
	// Connection still works.
	if _, err := cli.ComputeExtract(context.Background(), testPoints(1, 500), octree.DefaultConfig(), hybrid.ExtractConfig{VolumeRes: 4, Budget: 100}); err != nil {
		t.Errorf("connection dead after unknown kernel: %v", err)
	}
}

// TestComputeMalformedBlob: a well-framed Compute whose kernel blob is
// corrupt gets a typed bad-request error (the blob's own CRC idiom at
// work), and the connection survives.
func TestComputeMalformedBlob(t *testing.T) {
	w := startWorker(t)
	cli := dial(t, w.Addr())

	good := appendExtractRequest(nil, testPoints(2, 100), octree.DefaultConfig(), hybrid.ExtractConfig{VolumeRes: 4, Budget: 50})
	for name, blob := range map[string][]byte{
		"empty":       {},
		"truncated":   good[:len(good)/2],
		"flipped bit": flipByte(good, len(good)-40),
		"bad magic":   flipByte(good, 0),
	} {
		_, err := cli.Compute(context.Background(), KernelHybridExtract, blob)
		if err == nil {
			t.Errorf("%s: computed without error", name)
			continue
		}
		if CodeOf(err) != ErrCodeBadRequest {
			t.Errorf("%s: error code %d, want ErrCodeBadRequest (%v)", name, CodeOf(err), err)
		}
	}
	// Connection survives the whole table.
	if _, err := cli.Compute(context.Background(), KernelHybridExtract, good); err != nil {
		t.Errorf("connection dead after malformed blobs: %v", err)
	}
}

// TestComputeAgainstService: a frame service does not speak Compute —
// the client gets a typed unknown-verb error (not a dropped
// connection) and can keep using the session for the verbs the
// service does speak.
func TestComputeAgainstService(t *testing.T) {
	srv, _ := serveMem(t, testReps(t, 1))
	cli := dial(t, srv.Addr())
	_, err := cli.Compute(context.Background(), KernelHybridExtract, nil)
	if err == nil {
		t.Fatal("service answered Compute without error")
	}
	if CodeOf(err) != ErrCodeUnknownVerb {
		t.Errorf("error code %d, want ErrCodeUnknownVerb (%v)", CodeOf(err), err)
	}
	var we *WireError
	if !errors.As(err, &we) {
		t.Error("error chain carries no *WireError")
	}
	if _, err := cli.List(); err != nil {
		t.Errorf("connection dead after unknown verb: %v", err)
	}
}

// TestWorkerRejectsStoreVerbs: the inverse direction — store verbs
// against a worker come back typed, connection intact.
func TestWorkerRejectsStoreVerbs(t *testing.T) {
	w := startWorker(t)
	cli := dial(t, w.Addr())
	if _, err := cli.List(); err == nil || CodeOf(err) != ErrCodeUnknownVerb {
		t.Errorf("List against worker: err %v, want ErrCodeUnknownVerb", err)
	}
	if _, err := cli.ComputeExtract(context.Background(), testPoints(3, 300), octree.DefaultConfig(), hybrid.ExtractConfig{VolumeRes: 4, Budget: 50}); err != nil {
		t.Errorf("compute after rejected verb: %v", err)
	}
}

// TestComputeWorkerCrash: closing the worker mid-request fails the
// in-flight Compute promptly instead of hanging.
func TestComputeWorkerCrash(t *testing.T) {
	w := startWorker(t)
	cli := dial(t, w.Addr())
	// Register a kernel that parks until its context dies, then crash
	// the worker under it.
	block := make(chan struct{})
	w.Register("test.block", func(ctx context.Context, req []byte) ([]byte, error) {
		close(block)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	done := make(chan error, 1)
	go func() {
		_, err := cli.Compute(context.Background(), "test.block", nil)
		done <- err
	}()
	<-block
	w.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("compute succeeded across a worker crash")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("compute hung after worker close")
	}
}

// TestComputeContextCancel: cancelling the caller's context abandons
// the wait promptly even though the kernel is still running.
func TestComputeContextCancel(t *testing.T) {
	w := startWorker(t)
	cli := dial(t, w.Addr())
	w.Register("test.slow", func(ctx context.Context, req []byte) ([]byte, error) {
		select {
		case <-ctx.Done():
		case <-time.After(30 * time.Second):
		}
		return getBytes(0), nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cli.Compute(ctx, "test.slow", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("compute returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("compute did not observe cancellation")
	}
}
