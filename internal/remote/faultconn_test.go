package remote

// Fault-injection harness for the failover tests: faultConn wraps a
// real connection and fires one configured fault per direction at an
// exact byte offset, so every test failure mode — corrupted framing,
// severed transport, hung worker, silently swallowed bytes — triggers
// at a deterministic point in the protocol exchange instead of
// depending on timing. The client handshake is 8 bytes out and 12
// bytes in, so offsets past those land inside request/response
// traffic.

import (
	"errors"
	"net"
	"sync"
)

type faultKind int

const (
	faultNone    faultKind = iota
	faultCorrupt           // flip a bit in the byte at the offset
	faultReset             // sever the connection at the offset
	faultStall             // stop moving bytes at the offset until the conn closes
	faultDrop              // silently discard everything from the offset on
)

// faultPoint configures one direction: kind fires once the direction
// has moved offset bytes.
type faultPoint struct {
	kind   faultKind
	offset int64
}

var errConnFault = errors.New("faultconn: injected fault")

type faultDir struct {
	mu      sync.Mutex
	fp      faultPoint
	seen    int64
	tripped bool
}

// split locates the fault inside an n-byte transfer: it returns how
// many bytes pass untouched and whether the fault fires in this call.
func (d *faultDir) split(n int) (clean int, fire bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fp.kind == faultNone || d.tripped && d.fp.kind == faultCorrupt {
		d.seen += int64(n)
		return n, false
	}
	if d.tripped { // stall/drop/reset stay in effect
		return 0, true
	}
	idx := d.fp.offset - d.seen
	if idx >= int64(n) {
		d.seen += int64(n)
		return n, false
	}
	d.tripped = true
	d.seen += int64(n)
	if idx < 0 {
		idx = 0
	}
	return int(idx), true
}

type faultConn struct {
	net.Conn
	rd, wr    faultDir
	closeOnce sync.Once
	closed    chan struct{}
}

func newFaultConn(conn net.Conn, read, write faultPoint) *faultConn {
	return &faultConn{
		Conn:   conn,
		rd:     faultDir{fp: read},
		wr:     faultDir{fp: write},
		closed: make(chan struct{}),
	}
}

func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *faultConn) stall() error {
	<-c.closed
	return errConnFault
}

func (c *faultConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n == 0 {
		return n, err
	}
	clean, fire := c.rd.split(n)
	if !fire {
		return n, err
	}
	switch c.rd.fp.kind {
	case faultCorrupt:
		p[clean] ^= 0x01
		return n, err
	case faultReset:
		c.Close()
		if clean > 0 {
			return clean, err
		}
		return 0, errConnFault
	case faultStall:
		if clean > 0 {
			return clean, err
		}
		return 0, c.stall()
	default: // faultDrop: deliver the clean prefix, swallow the rest forever
		if clean > 0 {
			return clean, err
		}
		for {
			if _, rerr := c.Conn.Read(p); rerr != nil {
				return 0, rerr
			}
			// keep draining; the reader never sees another byte
		}
	}
}

func (c *faultConn) Write(p []byte) (int, error) {
	clean, fire := c.wr.split(len(p))
	if !fire {
		return c.Conn.Write(p)
	}
	switch c.wr.fp.kind {
	case faultCorrupt:
		dup := make([]byte, len(p))
		copy(dup, p)
		dup[clean] ^= 0x01
		return c.Conn.Write(dup)
	case faultReset:
		if clean > 0 {
			c.Conn.Write(p[:clean])
		}
		c.Close()
		return clean, errConnFault
	case faultStall:
		if clean > 0 {
			if _, err := c.Conn.Write(p[:clean]); err != nil {
				return 0, err
			}
		}
		return clean, c.stall()
	default: // faultDrop: pretend everything made it out
		if clean > 0 {
			c.Conn.Write(p[:clean])
		}
		return len(p), nil
	}
}

// faultyDial returns a FleetOptions.Dial that injects the given
// faults on connections to faultAddr and dials everything else clean.
func faultyDial(faultAddr string, read, write faultPoint) func(string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if addr == faultAddr {
			return newFaultConn(conn, read, write), nil
		}
		return conn, nil
	}
}
