package remote

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hybrid"
	"repro/internal/pipeline"
	"repro/internal/render"
	"repro/internal/volren"
)

// Service is the visualization server: it owns a listening socket and
// serves a FrameStore to any number of concurrent clients over the v5
// protocol. Each connection multiplexes requests by ID — List, Get
// (full-frame transfer), GetDelta (XOR-residual transfer against a
// frame the client holds), Subscribe (live-frame push when the store
// is a LiveStore, e.g. a pipeline publishing into a LiveRing;
// optionally with inline frame payloads), Render (thin-client
// mode: the server renders on its tile-binned rasterizer and ships a
// compressed framebuffer — lossless RLE or the quantized preview tier
// — instead of the frame), Ping (heartbeat) and Stats (counters plus
// the per-session table).
// Compute requests belong to the Worker service; a Service answers
// them — like any other verb it does not speak — with a typed
// ErrCodeUnknownVerb error and keeps the connection open.
type Service struct {
	srv   *server
	store FrameStore

	// Encode-once caches: per-frame server work is independent of how
	// many clients ask. frames holds wire encodings for stores that
	// encode on demand; renders holds compressed framebuffers keyed by
	// the full request (frame, camera, TF, quality); deltas holds
	// XOR-residual blobs keyed by (frame, base). All are LRU-bounded
	// and single-flight: N concurrent identical requests run one fill.
	frames  *blobCache[int]
	renders *blobCache[RenderParams]
	deltas  *blobCache[deltaKey]

	// Overload protection (protocol v5): opts bounds sessions, renders
	// and per-subscriber send queues; renderGate is the MaxRenders
	// semaphore (nil = unlimited); the session table feeds the Stats
	// verb.
	opts       ServiceOptions
	renderGate chan struct{}

	smu      sync.Mutex
	sessions map[uint64]*session
	nextSess uint64
	admitted int

	// pipelineStats, when set, supplies the in-situ pipeline's stage
	// table for the Stats verb (protocol v7). Atomic so a live stream
	// can be attached after the service is already serving.
	pipelineStats atomic.Pointer[func() []pipeline.StageSnapshot]

	stats struct {
		frameEncodes, frameHits   atomic.Uint64
		renders, renderHits       atomic.Uint64
		deltaEncodes, deltaHits   atomic.Uint64
		notifyFrames, notifyCount atomic.Uint64

		pings, sessionsRefused, rendersRefused atomic.Uint64
		pushesDropped, pushesDegraded          atomic.Uint64
		sessionsEvicted                        atomic.Uint64
	}
}

type deltaKey struct{ frame, base int }

// Cache capacities: a handful of recent frames absorbs a subscriber
// crowd riding the live head; renders get more room because distinct
// camera params multiply per frame.
const (
	frameCacheCap  = 8
	renderCacheCap = 32
	deltaCacheCap  = 16
)

// ServiceStats counts the service's per-frame work and how much of it
// the encode-once caches absorbed, plus the v5 overload counters. The
// fan-out contract is FrameEncodes ≈ frames served, independent of
// subscriber count — BenchmarkFanOut pins it; the overload contract is
// publisher latency independent of stalled-subscriber count —
// BenchmarkSlowSubscriber pins that.
type ServiceStats struct {
	FrameEncodes uint64 // frame wire encodings actually computed
	FrameHits    uint64 // Get/notify requests served from cache or flight
	Renders      uint64 // server-side renders actually run
	RenderHits   uint64 // render requests served from cache or flight
	DeltaEncodes uint64 // delta residuals actually compressed
	DeltaHits    uint64 // delta requests served from cache or flight
	NotifyFrames uint64 // inline frame payload notifies written
	NotifyCounts uint64 // count-only notifies written

	Pings           uint64 // heartbeat round trips answered
	SessionsRefused uint64 // connections refused by MaxSessions admission
	RendersRefused  uint64 // renders refused by the MaxRenders gate
	PushesDropped   uint64 // subscriber pushes dropped by the skip policy
	PushesDegraded  uint64 // subscriber pushes degraded to count-only
	SessionsEvicted uint64 // slow subscribers evicted (SlowEvict)
}

// counters flattens the stats into the fixed wire order of the Stats
// verb; setCounters is its tolerant inverse (a shorter table from an
// older server leaves the missing fields zero).
func (s ServiceStats) counters() []uint64 {
	return []uint64{
		s.FrameEncodes, s.FrameHits, s.Renders, s.RenderHits,
		s.DeltaEncodes, s.DeltaHits, s.NotifyFrames, s.NotifyCounts,
		s.Pings, s.SessionsRefused, s.RendersRefused,
		s.PushesDropped, s.PushesDegraded, s.SessionsEvicted,
	}
}

func (s *ServiceStats) setCounters(c []uint64) {
	dst := []*uint64{
		&s.FrameEncodes, &s.FrameHits, &s.Renders, &s.RenderHits,
		&s.DeltaEncodes, &s.DeltaHits, &s.NotifyFrames, &s.NotifyCounts,
		&s.Pings, &s.SessionsRefused, &s.RendersRefused,
		&s.PushesDropped, &s.PushesDegraded, &s.SessionsEvicted,
	}
	for i, p := range dst {
		if i < len(c) {
			*p = c[i]
		}
	}
}

// Stats snapshots the service's work counters.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		FrameEncodes: s.stats.frameEncodes.Load(),
		FrameHits:    s.stats.frameHits.Load(),
		Renders:      s.stats.renders.Load(),
		RenderHits:   s.stats.renderHits.Load(),
		DeltaEncodes: s.stats.deltaEncodes.Load(),
		DeltaHits:    s.stats.deltaHits.Load(),
		NotifyFrames: s.stats.notifyFrames.Load(),
		NotifyCounts: s.stats.notifyCount.Load(),

		Pings:           s.stats.pings.Load(),
		SessionsRefused: s.stats.sessionsRefused.Load(),
		RendersRefused:  s.stats.rendersRefused.Load(),
		PushesDropped:   s.stats.pushesDropped.Load(),
		PushesDegraded:  s.stats.pushesDegraded.Load(),
		SessionsEvicted: s.stats.sessionsEvicted.Load(),
	}
}

// NewService starts a service for store on addr (use "127.0.0.1:0" for
// an ephemeral port) with default ServiceOptions: unlimited sessions
// and renders, latest-wins slow subscribers.
func NewService(addr string, store FrameStore) (*Service, error) {
	return NewServiceWith(addr, store, ServiceOptions{})
}

// NewServiceWith starts a service with explicit overload-protection
// options — session and render admission limits, send-queue bound,
// slow-subscriber policy, idle reaping.
func NewServiceWith(addr string, store FrameStore, opts ServiceOptions) (*Service, error) {
	if store == nil {
		return nil, fmt.Errorf("remote: nil frame store")
	}
	s := &Service{
		store:    store,
		frames:   newBlobCache[int](frameCacheCap),
		renders:  newBlobCache[RenderParams](renderCacheCap),
		deltas:   newBlobCache[deltaKey](deltaCacheCap),
		opts:     opts,
		sessions: make(map[uint64]*session),
	}
	if opts.MaxRenders > 0 {
		s.renderGate = make(chan struct{}, opts.MaxRenders)
	}
	srv, err := newServer(addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// Addr returns the listening address.
func (s *Service) Addr() string { return s.srv.Addr() }

// Close stops accepting, severs every connection, and waits for all
// handlers to unwind.
func (s *Service) Close() error { return s.srv.Close() }

// handle runs one connection: handshake, then a read loop dispatching
// each request to its own goroutine so expensive renders don't stall
// pipelined fetches. A framing error (bad length, bad CRC) terminates
// the connection — the stream can no longer be trusted. A well-framed
// request for a verb this service does not speak is answered with a
// typed ErrCodeUnknownVerb error and the connection stays up: framing
// integrity is intact, and the two service roles share one protocol —
// a client that sends Compute to a frame service (or Get to a worker)
// deserves an answer it can classify, not a dropped session.
//
// v5 adds the session envelope: every connection gets a session-table
// row and an admission verdict (an over-limit session answers all
// verbs but Ping with a retryable ErrCodeUnavailable), a read deadline
// reaps peers that go silent past the idle timeout (live v5 clients
// heartbeat well inside it), and Subscribe pushes flow through a
// bounded per-session send queue instead of an unbounded notifier.
func (s *Service) handle(conn net.Conn) {
	if err := serverHello(conn); err != nil {
		return
	}
	sess := s.addSession(conn.RemoteAddr().String())
	defer s.removeSession(sess)

	br := bufio.NewReaderSize(conn, 1<<16)
	w := newConnWriter(conn)

	var reqs sync.WaitGroup
	defer reqs.Wait()

	// Subscription state: one send queue per connection.
	var subCancel func()
	defer func() {
		if subCancel != nil {
			subCancel()
		}
	}()

	idle := s.opts.idleTimeout()
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		msg, err := readMessage(br, 0)
		if err != nil {
			return
		}
		// Heartbeat: answered inline for every session — including
		// refused ones, so a waiting-to-retry client can keep its
		// connection warm — and cheap enough to never need a goroutine.
		if msg.op == opPing {
			s.stats.pings.Add(1)
			if w.send(msg.reqID, opPingOK, nil) != nil {
				return
			}
			continue
		}
		if sess.refused {
			if w.sendErr(msg.reqID, &WireError{
				Code: ErrCodeUnavailable,
				Msg:  "remote: server at session capacity, retry later",
			}) != nil {
				return
			}
			continue
		}
		switch msg.op {
		case opList, opGet, opGetDelta, opRender:
			reqs.Add(1)
			go func(m message) {
				defer reqs.Done()
				s.serveRequest(w, m)
			}(msg)
		case opStats:
			if w.send(msg.reqID, opStatsOK, encodeStatsReport(s.statsReport())) != nil {
				return
			}
		case opSubscribe:
			var flags byte
			switch len(msg.payload) {
			case 0: // v2 client: count-only notifies
			case 1:
				flags = msg.payload[0]
			default:
				if w.sendErr(msg.reqID, &WireError{
					Code: ErrCodeBadRequest,
					Msg:  fmt.Sprintf("remote: subscribe payload %d bytes, want 0 or 1", len(msg.payload)),
				}) != nil {
					return
				}
				continue
			}
			// Register the watcher before reading the count so no
			// publish can fall between them unseen. A re-subscribe
			// replaces the queue, so pushes follow the newest
			// request ID.
			if sub, ok := s.store.(LiveStore); ok {
				if subCancel != nil {
					subCancel()
				}
				q := newSubQueue(s, w, msg.reqID, flags&subFlagInline != 0)
				sess.mu.Lock()
				sess.q = q
				sess.mu.Unlock()
				cancelWatch := sub.Watch(q.update)
				subCancel = func() {
					cancelWatch()
					q.stop()
				}
			}
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(s.store.NumFrames()))
			if w.send(msg.reqID, opSubscribeOK, payload) != nil {
				return
			}
		default:
			if w.sendErr(msg.reqID, &WireError{
				Code: ErrCodeUnknownVerb,
				Msg:  fmt.Sprintf("remote: service does not speak opcode %#02x", msg.op),
			}) != nil {
				return
			}
		}
	}
}

// serveRequest handles one List/Get/GetDelta/Render request.
func (s *Service) serveRequest(w *connWriter, msg message) {
	switch msg.op {
	case opList:
		w.send(msg.reqID, opListOK, encodeListInfo(listInfo(s.store)))

	case opGet:
		if len(msg.payload) != 4 {
			w.sendErr(msg.reqID, &WireError{
				Code: ErrCodeBadRequest,
				Msg:  fmt.Sprintf("remote: get payload %d bytes, want 4", len(msg.payload)),
			})
			return
		}
		idx := int(int32(binary.LittleEndian.Uint32(msg.payload)))
		enc, err := s.encodedFrame(idx)
		if err != nil {
			w.sendErr(msg.reqID, err)
			return
		}
		if len(enc) > maxBody-msgOverhead {
			// Answer per-request instead of letting writeMessage fail
			// and sever every other request on the connection.
			w.sendErr(msg.reqID, fmt.Errorf("remote: frame %d encoding (%d bytes) exceeds the message limit", idx, len(enc)))
			return
		}
		w.send(msg.reqID, opGetOK, enc)

	case opGetDelta:
		frame, base, err := decodeGetDelta(msg.payload)
		if err != nil {
			w.sendErr(msg.reqID, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()})
			return
		}
		blob, err := s.deltaBlob(frame, base)
		if err != nil {
			w.sendErr(msg.reqID, err)
			return
		}
		if len(blob) > maxBody-msgOverhead {
			w.sendErr(msg.reqID, fmt.Errorf("remote: frame %d delta (%d bytes) exceeds the message limit", frame, len(blob)))
			return
		}
		w.send(msg.reqID, opGetDeltaOK, blob)

	case opRender:
		params, err := decodeRenderParams(msg.payload)
		if err != nil {
			w.sendErr(msg.reqID, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()})
			return
		}
		blob, err := s.renderBlob(params)
		if err != nil {
			w.sendErr(msg.reqID, err)
			return
		}
		w.send(msg.reqID, opRenderOK, blob)
	}
}

// encodedFrame returns frame i in wire encoding. Stores holding the
// encoding (MemStore, LiveRing — encode-once at construction/publish)
// serve it directly; anything else goes through the frame cache, so N
// concurrent Gets of the same frame cost one encode.
func (s *Service) encodedFrame(i int) ([]byte, error) {
	if es, ok := s.store.(encodedFrameStore); ok {
		return es.EncodedFrame(i)
	}
	enc, hit, err := s.frames.get(i, func() ([]byte, error) {
		rep, err := s.store.Frame(i)
		if err != nil {
			return nil, err
		}
		return encodeRep(rep)
	})
	if err == nil {
		if hit {
			s.stats.frameHits.Add(1)
		} else {
			s.stats.frameEncodes.Add(1)
		}
	}
	return enc, err
}

// deltaBlob returns frame encoded as an XOR residual against base —
// the GetDelta response — through the delta cache, so a subscriber
// crowd stepping frame-to-frame costs one residual encode per
// (frame, base) pair.
func (s *Service) deltaBlob(frame, base int) ([]byte, error) {
	blob, hit, err := s.deltas.get(deltaKey{frame, base}, func() ([]byte, error) {
		cur, err := s.encodedFrame(frame)
		if err != nil {
			return nil, err
		}
		baseEnc, err := s.encodedFrame(base)
		if err != nil {
			return nil, fmt.Errorf("remote: delta base: %w", err)
		}
		return render.CompressDelta(cur, baseEnc), nil
	})
	if err == nil {
		if hit {
			s.stats.deltaHits.Add(1)
		} else {
			s.stats.deltaEncodes.Add(1)
		}
	}
	return blob, err
}

// renderBlob returns the wire blob for a render request through the
// render cache: identical thin-client views (same frame, camera, TF
// and quality tier) hit a cached compressed framebuffer.
func (s *Service) renderBlob(p RenderParams) ([]byte, error) {
	blob, hit, err := s.renders.get(p, func() ([]byte, error) {
		return s.renderFrame(p)
	})
	if err == nil {
		if hit {
			s.stats.renderHits.Add(1)
		} else {
			s.stats.renders.Add(1)
		}
	}
	return blob, err
}

// renderFrame runs the server-side render: the exact volren.RenderStill
// path a desktop viewer runs locally (core.RenderFrame), so the
// lossless tier is bit-identical to a local render of the fetched
// frame. The preview tier swaps only the wire codec — quantized 8-bit
// color, no depth — never the render itself.
func (s *Service) renderFrame(p RenderParams) ([]byte, error) {
	if s.renderGate != nil {
		select {
		case s.renderGate <- struct{}{}:
			defer func() { <-s.renderGate }()
		default:
			s.stats.rendersRefused.Add(1)
			return nil, &WireError{
				Code: ErrCodeUnavailable,
				Msg:  "remote: render capacity exhausted, retry later",
			}
		}
	}
	rep, err := s.store.Frame(p.Frame)
	if err != nil {
		return nil, err
	}
	tf, err := hybrid.DefaultTF(rep)
	if err != nil {
		return nil, err
	}
	if p.VolumeOpacity > 0 {
		tf.OpacityScale = p.VolumeOpacity
	}
	if p.LogDomainK > 0 {
		tf.Domain = hybrid.LogDomain(p.LogDomainK)
	}
	fb, _, _, err := volren.RenderStill(rep, tf, p.Width, p.Height, p.ViewDir)
	if err != nil {
		return nil, err
	}
	if p.Quality == QualityPreview {
		return render.CompressFramebufferQuantized(fb), nil
	}
	return render.CompressFramebuffer(fb), nil
}

// The per-subscription push machinery (previously `notifier`, now the
// bounded policy-aware `subQueue`) lives in session.go.
