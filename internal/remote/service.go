package remote

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/render"
)

// Service is the visualization server: it owns a listening socket and
// serves a FrameStore to any number of concurrent clients over the v1
// protocol. Each connection multiplexes requests by ID — List, Get
// (full-frame transfer), Subscribe (live-frame push when the store is
// a LiveStore, e.g. a pipeline publishing into a LiveRing), and Render
// (thin-client mode: the server renders on its tile-binned rasterizer
// and ships an RLE-compressed framebuffer instead of the frame).
type Service struct {
	ln    net.Listener
	store FrameStore
	wg    sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// LiveRing is the FrameSink the streaming pipelines publish into.
var _ core.FrameSink = (*LiveRing)(nil)

// NewService starts a service for store on addr (use "127.0.0.1:0" for
// an ephemeral port).
func NewService(addr string, store FrameStore) (*Service, error) {
	if store == nil {
		return nil, fmt.Errorf("remote: nil frame store")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	s := &Service{ln: ln, store: store, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Service) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, severs every connection, and waits for all
// handlers to unwind.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

// connWriter serializes response writes from concurrent request
// handlers and the subscription notifier onto one connection. A write
// error severs the connection: the response stream can no longer be
// trusted, and closing unblocks the read loop so the handler unwinds.
type connWriter struct {
	conn net.Conn
	mu   sync.Mutex
	bw   *bufio.Writer
}

func (w *connWriter) send(reqID uint64, op byte, payload []byte) error {
	w.mu.Lock()
	err := writeMessage(w.bw, reqID, op, payload)
	w.mu.Unlock()
	if err != nil {
		w.conn.Close()
	}
	return err
}

func (w *connWriter) sendErr(reqID uint64, err error) error {
	return w.send(reqID, opError, []byte(err.Error()))
}

// handle runs one connection: handshake, then a read loop dispatching
// each request to its own goroutine so expensive renders don't stall
// pipelined fetches. Any framing error (bad length, bad CRC, unknown
// opcode) terminates the connection — the stream can no longer be
// trusted.
func (s *Service) handle(conn net.Conn) {
	if err := serverHello(conn); err != nil {
		return
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	w := &connWriter{conn: conn, bw: bufio.NewWriterSize(conn, 1<<16)}

	var reqs sync.WaitGroup
	defer reqs.Wait()

	// Subscription state: one notifier per connection, latest-wins.
	var subCancel func()
	defer func() {
		if subCancel != nil {
			subCancel()
		}
	}()

	for {
		msg, err := readMessage(br, 0)
		if err != nil {
			return
		}
		switch msg.op {
		case opList, opGet, opRender:
			reqs.Add(1)
			go func(m message) {
				defer reqs.Done()
				s.serveRequest(w, m)
			}(msg)
		case opSubscribe:
			// Register the watcher before reading the count so no
			// publish can fall between them unseen. A re-subscribe
			// replaces the notifier, so pushes follow the newest
			// request ID.
			if sub, ok := s.store.(LiveStore); ok {
				if subCancel != nil {
					subCancel()
				}
				notify := newNotifier(w, msg.reqID)
				cancelWatch := sub.Watch(notify.update)
				subCancel = func() {
					cancelWatch()
					notify.stop()
				}
			}
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(s.store.NumFrames()))
			if w.send(msg.reqID, opSubscribeOK, payload) != nil {
				return
			}
		default:
			w.sendErr(msg.reqID, fmt.Errorf("remote: unknown opcode %#02x", msg.op))
			return
		}
	}
}

// serveRequest handles one List/Get/Render request.
func (s *Service) serveRequest(w *connWriter, msg message) {
	switch msg.op {
	case opList:
		w.send(msg.reqID, opListOK, encodeListInfo(listInfo(s.store)))

	case opGet:
		if len(msg.payload) != 4 {
			w.sendErr(msg.reqID, fmt.Errorf("remote: get payload %d bytes, want 4", len(msg.payload)))
			return
		}
		idx := int(int32(binary.LittleEndian.Uint32(msg.payload)))
		enc, err := s.encodedFrame(idx)
		if err != nil {
			w.sendErr(msg.reqID, err)
			return
		}
		if len(enc) > maxBody-msgOverhead {
			// Answer per-request instead of letting writeMessage fail
			// and sever every other request on the connection.
			w.sendErr(msg.reqID, fmt.Errorf("remote: frame %d encoding (%d bytes) exceeds the message limit", idx, len(enc)))
			return
		}
		w.send(msg.reqID, opGetOK, enc)

	case opRender:
		params, err := decodeRenderParams(msg.payload)
		if err != nil {
			w.sendErr(msg.reqID, err)
			return
		}
		blob, err := s.renderFrame(params)
		if err != nil {
			w.sendErr(msg.reqID, err)
			return
		}
		w.send(msg.reqID, opRenderOK, blob)
	}
}

// encodedFrame returns frame i in wire encoding, using the store's
// cached encoding when it has one.
func (s *Service) encodedFrame(i int) ([]byte, error) {
	if es, ok := s.store.(encodedFrameStore); ok {
		return es.EncodedFrame(i)
	}
	rep, err := s.store.Frame(i)
	if err != nil {
		return nil, err
	}
	return encodeRep(rep)
}

// renderFrame runs the server-side render: the exact core.RenderFrame
// path a desktop viewer runs locally, so the shipped image is
// bit-identical to a local render of the fetched frame.
func (s *Service) renderFrame(p RenderParams) ([]byte, error) {
	rep, err := s.store.Frame(p.Frame)
	if err != nil {
		return nil, err
	}
	tf, err := core.DefaultTF(rep)
	if err != nil {
		return nil, err
	}
	if p.VolumeOpacity > 0 {
		tf.OpacityScale = p.VolumeOpacity
	}
	if p.LogDomainK > 0 {
		tf.Domain = hybrid.LogDomain(p.LogDomainK)
	}
	fb, _, _, err := core.RenderFrame(rep, tf, p.Width, p.Height, p.ViewDir)
	if err != nil {
		return nil, err
	}
	return render.CompressFramebuffer(fb), nil
}

// newNotifier builds the per-subscription push machinery: the store's
// watcher callback records only the latest frame count (never
// blocking the publisher — this is what keeps a slow client from
// backpressuring the simulation), and a dedicated goroutine drains it
// onto the wire as fast as the connection accepts.
type notifier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	latest  int
	sent    int
	stopped bool
	done    chan struct{}
}

func newNotifier(w *connWriter, reqID uint64) *notifier {
	n := &notifier{done: make(chan struct{})}
	n.cond = sync.NewCond(&n.mu)
	go func() {
		defer close(n.done)
		for {
			n.mu.Lock()
			for n.latest == n.sent && !n.stopped {
				n.cond.Wait()
			}
			if n.stopped {
				n.mu.Unlock()
				return
			}
			frames := n.latest
			n.sent = frames
			n.mu.Unlock()
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(frames))
			if w.send(reqID, opNotify, payload) != nil {
				return
			}
		}
	}()
	return n
}

// update is the watcher callback; it never blocks.
func (n *notifier) update(frames int) {
	n.mu.Lock()
	if frames > n.latest {
		n.latest = frames
	}
	n.mu.Unlock()
	n.cond.Signal()
}

// stop terminates the notifier goroutine and waits for it.
func (n *notifier) stop() {
	n.mu.Lock()
	n.stopped = true
	n.mu.Unlock()
	n.cond.Signal()
	<-n.done
}
