package remote

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/hybrid"
	"repro/internal/render"
	"repro/internal/volren"
)

// Service is the visualization server: it owns a listening socket and
// serves a FrameStore to any number of concurrent clients over the v3
// protocol. Each connection multiplexes requests by ID — List, Get
// (full-frame transfer), GetDelta (XOR-residual transfer against a
// frame the client holds), Subscribe (live-frame push when the store
// is a LiveStore, e.g. a pipeline publishing into a LiveRing;
// optionally with inline frame payloads), and Render (thin-client
// mode: the server renders on its tile-binned rasterizer and ships a
// compressed framebuffer — lossless RLE or the quantized preview tier
// — instead of the frame).
// Compute requests belong to the Worker service; a Service answers
// them — like any other verb it does not speak — with a typed
// ErrCodeUnknownVerb error and keeps the connection open.
type Service struct {
	srv   *server
	store FrameStore

	// Encode-once caches: per-frame server work is independent of how
	// many clients ask. frames holds wire encodings for stores that
	// encode on demand; renders holds compressed framebuffers keyed by
	// the full request (frame, camera, TF, quality); deltas holds
	// XOR-residual blobs keyed by (frame, base). All are LRU-bounded
	// and single-flight: N concurrent identical requests run one fill.
	frames  *blobCache[int]
	renders *blobCache[RenderParams]
	deltas  *blobCache[deltaKey]

	stats struct {
		frameEncodes, frameHits   atomic.Uint64
		renders, renderHits       atomic.Uint64
		deltaEncodes, deltaHits   atomic.Uint64
		notifyFrames, notifyCount atomic.Uint64
	}
}

type deltaKey struct{ frame, base int }

// Cache capacities: a handful of recent frames absorbs a subscriber
// crowd riding the live head; renders get more room because distinct
// camera params multiply per frame.
const (
	frameCacheCap  = 8
	renderCacheCap = 32
	deltaCacheCap  = 16
)

// ServiceStats counts the service's per-frame work and how much of it
// the encode-once caches absorbed. The fan-out contract is
// FrameEncodes ≈ frames served, independent of subscriber count —
// BenchmarkFanOut pins it.
type ServiceStats struct {
	FrameEncodes uint64 // frame wire encodings actually computed
	FrameHits    uint64 // Get/notify requests served from cache or flight
	Renders      uint64 // server-side renders actually run
	RenderHits   uint64 // render requests served from cache or flight
	DeltaEncodes uint64 // delta residuals actually compressed
	DeltaHits    uint64 // delta requests served from cache or flight
	NotifyFrames uint64 // inline frame payload notifies written
	NotifyCounts uint64 // count-only notifies written
}

// Stats snapshots the service's work counters.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		FrameEncodes: s.stats.frameEncodes.Load(),
		FrameHits:    s.stats.frameHits.Load(),
		Renders:      s.stats.renders.Load(),
		RenderHits:   s.stats.renderHits.Load(),
		DeltaEncodes: s.stats.deltaEncodes.Load(),
		DeltaHits:    s.stats.deltaHits.Load(),
		NotifyFrames: s.stats.notifyFrames.Load(),
		NotifyCounts: s.stats.notifyCount.Load(),
	}
}

// NewService starts a service for store on addr (use "127.0.0.1:0" for
// an ephemeral port).
func NewService(addr string, store FrameStore) (*Service, error) {
	if store == nil {
		return nil, fmt.Errorf("remote: nil frame store")
	}
	s := &Service{
		store:   store,
		frames:  newBlobCache[int](frameCacheCap),
		renders: newBlobCache[RenderParams](renderCacheCap),
		deltas:  newBlobCache[deltaKey](deltaCacheCap),
	}
	srv, err := newServer(addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// Addr returns the listening address.
func (s *Service) Addr() string { return s.srv.Addr() }

// Close stops accepting, severs every connection, and waits for all
// handlers to unwind.
func (s *Service) Close() error { return s.srv.Close() }

// handle runs one connection: handshake, then a read loop dispatching
// each request to its own goroutine so expensive renders don't stall
// pipelined fetches. A framing error (bad length, bad CRC) terminates
// the connection — the stream can no longer be trusted. A well-framed
// request for a verb this service does not speak is answered with a
// typed ErrCodeUnknownVerb error and the connection stays up: framing
// integrity is intact, and the two service roles share one protocol —
// a client that sends Compute to a frame service (or Get to a worker)
// deserves an answer it can classify, not a dropped session.
func (s *Service) handle(conn net.Conn) {
	if err := serverHello(conn); err != nil {
		return
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	w := newConnWriter(conn)

	var reqs sync.WaitGroup
	defer reqs.Wait()

	// Subscription state: one notifier per connection, latest-wins.
	var subCancel func()
	defer func() {
		if subCancel != nil {
			subCancel()
		}
	}()

	for {
		msg, err := readMessage(br, 0)
		if err != nil {
			return
		}
		switch msg.op {
		case opList, opGet, opGetDelta, opRender:
			reqs.Add(1)
			go func(m message) {
				defer reqs.Done()
				s.serveRequest(w, m)
			}(msg)
		case opSubscribe:
			var flags byte
			switch len(msg.payload) {
			case 0: // v2 client: count-only notifies
			case 1:
				flags = msg.payload[0]
			default:
				if w.sendErr(msg.reqID, &WireError{
					Code: ErrCodeBadRequest,
					Msg:  fmt.Sprintf("remote: subscribe payload %d bytes, want 0 or 1", len(msg.payload)),
				}) != nil {
					return
				}
				continue
			}
			// Register the watcher before reading the count so no
			// publish can fall between them unseen. A re-subscribe
			// replaces the notifier, so pushes follow the newest
			// request ID.
			if sub, ok := s.store.(LiveStore); ok {
				if subCancel != nil {
					subCancel()
				}
				notify := newNotifier(s, w, msg.reqID, flags&subFlagInline != 0)
				cancelWatch := sub.Watch(notify.update)
				subCancel = func() {
					cancelWatch()
					notify.stop()
				}
			}
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(s.store.NumFrames()))
			if w.send(msg.reqID, opSubscribeOK, payload) != nil {
				return
			}
		default:
			if w.sendErr(msg.reqID, &WireError{
				Code: ErrCodeUnknownVerb,
				Msg:  fmt.Sprintf("remote: service does not speak opcode %#02x", msg.op),
			}) != nil {
				return
			}
		}
	}
}

// serveRequest handles one List/Get/GetDelta/Render request.
func (s *Service) serveRequest(w *connWriter, msg message) {
	switch msg.op {
	case opList:
		w.send(msg.reqID, opListOK, encodeListInfo(listInfo(s.store)))

	case opGet:
		if len(msg.payload) != 4 {
			w.sendErr(msg.reqID, &WireError{
				Code: ErrCodeBadRequest,
				Msg:  fmt.Sprintf("remote: get payload %d bytes, want 4", len(msg.payload)),
			})
			return
		}
		idx := int(int32(binary.LittleEndian.Uint32(msg.payload)))
		enc, err := s.encodedFrame(idx)
		if err != nil {
			w.sendErr(msg.reqID, err)
			return
		}
		if len(enc) > maxBody-msgOverhead {
			// Answer per-request instead of letting writeMessage fail
			// and sever every other request on the connection.
			w.sendErr(msg.reqID, fmt.Errorf("remote: frame %d encoding (%d bytes) exceeds the message limit", idx, len(enc)))
			return
		}
		w.send(msg.reqID, opGetOK, enc)

	case opGetDelta:
		frame, base, err := decodeGetDelta(msg.payload)
		if err != nil {
			w.sendErr(msg.reqID, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()})
			return
		}
		blob, err := s.deltaBlob(frame, base)
		if err != nil {
			w.sendErr(msg.reqID, err)
			return
		}
		if len(blob) > maxBody-msgOverhead {
			w.sendErr(msg.reqID, fmt.Errorf("remote: frame %d delta (%d bytes) exceeds the message limit", frame, len(blob)))
			return
		}
		w.send(msg.reqID, opGetDeltaOK, blob)

	case opRender:
		params, err := decodeRenderParams(msg.payload)
		if err != nil {
			w.sendErr(msg.reqID, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()})
			return
		}
		blob, err := s.renderBlob(params)
		if err != nil {
			w.sendErr(msg.reqID, err)
			return
		}
		w.send(msg.reqID, opRenderOK, blob)
	}
}

// encodedFrame returns frame i in wire encoding. Stores holding the
// encoding (MemStore, LiveRing — encode-once at construction/publish)
// serve it directly; anything else goes through the frame cache, so N
// concurrent Gets of the same frame cost one encode.
func (s *Service) encodedFrame(i int) ([]byte, error) {
	if es, ok := s.store.(encodedFrameStore); ok {
		return es.EncodedFrame(i)
	}
	enc, hit, err := s.frames.get(i, func() ([]byte, error) {
		rep, err := s.store.Frame(i)
		if err != nil {
			return nil, err
		}
		return encodeRep(rep)
	})
	if err == nil {
		if hit {
			s.stats.frameHits.Add(1)
		} else {
			s.stats.frameEncodes.Add(1)
		}
	}
	return enc, err
}

// deltaBlob returns frame encoded as an XOR residual against base —
// the GetDelta response — through the delta cache, so a subscriber
// crowd stepping frame-to-frame costs one residual encode per
// (frame, base) pair.
func (s *Service) deltaBlob(frame, base int) ([]byte, error) {
	blob, hit, err := s.deltas.get(deltaKey{frame, base}, func() ([]byte, error) {
		cur, err := s.encodedFrame(frame)
		if err != nil {
			return nil, err
		}
		baseEnc, err := s.encodedFrame(base)
		if err != nil {
			return nil, fmt.Errorf("remote: delta base: %w", err)
		}
		return render.CompressDelta(cur, baseEnc), nil
	})
	if err == nil {
		if hit {
			s.stats.deltaHits.Add(1)
		} else {
			s.stats.deltaEncodes.Add(1)
		}
	}
	return blob, err
}

// renderBlob returns the wire blob for a render request through the
// render cache: identical thin-client views (same frame, camera, TF
// and quality tier) hit a cached compressed framebuffer.
func (s *Service) renderBlob(p RenderParams) ([]byte, error) {
	blob, hit, err := s.renders.get(p, func() ([]byte, error) {
		return s.renderFrame(p)
	})
	if err == nil {
		if hit {
			s.stats.renderHits.Add(1)
		} else {
			s.stats.renders.Add(1)
		}
	}
	return blob, err
}

// renderFrame runs the server-side render: the exact volren.RenderStill
// path a desktop viewer runs locally (core.RenderFrame), so the
// lossless tier is bit-identical to a local render of the fetched
// frame. The preview tier swaps only the wire codec — quantized 8-bit
// color, no depth — never the render itself.
func (s *Service) renderFrame(p RenderParams) ([]byte, error) {
	rep, err := s.store.Frame(p.Frame)
	if err != nil {
		return nil, err
	}
	tf, err := hybrid.DefaultTF(rep)
	if err != nil {
		return nil, err
	}
	if p.VolumeOpacity > 0 {
		tf.OpacityScale = p.VolumeOpacity
	}
	if p.LogDomainK > 0 {
		tf.Domain = hybrid.LogDomain(p.LogDomainK)
	}
	fb, _, _, err := volren.RenderStill(rep, tf, p.Width, p.Height, p.ViewDir)
	if err != nil {
		return nil, err
	}
	if p.Quality == QualityPreview {
		return render.CompressFramebufferQuantized(fb), nil
	}
	return render.CompressFramebuffer(fb), nil
}

// newNotifier builds the per-subscription push machinery: the store's
// watcher callback records only the latest frame count (never
// blocking the publisher — this is what keeps a slow client from
// backpressuring the simulation), and a dedicated goroutine drains it
// onto the wire as fast as the connection accepts.
//
// In inline mode (protocol v3's encode-once broadcast) each drain
// ships the newest frame's wire encoding in the notify itself: the
// encoding comes from the store's publish-time cache or the service's
// single-flight frame cache, so one encode feeds every subscriber and
// the same buffer is written to every connection (sendVec — only the
// 12-byte header is per-connection). A frame that is gone by the time
// the drain runs (live rings evict) degrades to a count-only notify.
type notifier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	latest  int
	sent    int
	stopped bool
	done    chan struct{}
}

func newNotifier(s *Service, w *connWriter, reqID uint64, inline bool) *notifier {
	n := &notifier{done: make(chan struct{})}
	n.cond = sync.NewCond(&n.mu)
	go func() {
		defer close(n.done)
		for {
			n.mu.Lock()
			for n.latest == n.sent && !n.stopped {
				n.cond.Wait()
			}
			if n.stopped {
				n.mu.Unlock()
				return
			}
			frames := n.latest
			n.sent = frames
			n.mu.Unlock()
			if inline && frames > 0 {
				if enc, err := s.encodedFrame(frames - 1); err == nil &&
					notifyFrameHeader+len(enc) <= maxBody-msgOverhead {
					var head [notifyFrameHeader]byte
					binary.LittleEndian.PutUint64(head[0:], uint64(frames))
					binary.LittleEndian.PutUint32(head[8:], uint32(frames-1))
					if w.sendVec(reqID, opNotifyFrame, head[:], enc) != nil {
						return
					}
					s.stats.notifyFrames.Add(1)
					continue
				}
			}
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(frames))
			if w.send(reqID, opNotify, payload) != nil {
				return
			}
			s.stats.notifyCount.Add(1)
		}
	}()
	return n
}

// update is the watcher callback; it never blocks.
func (n *notifier) update(frames int) {
	n.mu.Lock()
	if frames > n.latest {
		n.latest = frames
	}
	n.mu.Unlock()
	n.cond.Signal()
}

// stop terminates the notifier goroutine and waits for it.
func (n *notifier) stop() {
	n.mu.Lock()
	n.stopped = true
	n.mu.Unlock()
	n.cond.Signal()
	<-n.done
}
