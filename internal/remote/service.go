package remote

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"repro/internal/hybrid"
	"repro/internal/render"
	"repro/internal/volren"
)

// Service is the visualization server: it owns a listening socket and
// serves a FrameStore to any number of concurrent clients over the v2
// protocol. Each connection multiplexes requests by ID — List, Get
// (full-frame transfer), Subscribe (live-frame push when the store is
// a LiveStore, e.g. a pipeline publishing into a LiveRing), and Render
// (thin-client mode: the server renders on its tile-binned rasterizer
// and ships an RLE-compressed framebuffer instead of the frame).
// Compute requests belong to the Worker service; a Service answers
// them — like any other verb it does not speak — with a typed
// ErrCodeUnknownVerb error and keeps the connection open.
type Service struct {
	srv   *server
	store FrameStore
}

// NewService starts a service for store on addr (use "127.0.0.1:0" for
// an ephemeral port).
func NewService(addr string, store FrameStore) (*Service, error) {
	if store == nil {
		return nil, fmt.Errorf("remote: nil frame store")
	}
	s := &Service{store: store}
	srv, err := newServer(addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// Addr returns the listening address.
func (s *Service) Addr() string { return s.srv.Addr() }

// Close stops accepting, severs every connection, and waits for all
// handlers to unwind.
func (s *Service) Close() error { return s.srv.Close() }

// handle runs one connection: handshake, then a read loop dispatching
// each request to its own goroutine so expensive renders don't stall
// pipelined fetches. A framing error (bad length, bad CRC) terminates
// the connection — the stream can no longer be trusted. A well-framed
// request for a verb this service does not speak is answered with a
// typed ErrCodeUnknownVerb error and the connection stays up: framing
// integrity is intact, and the two service roles share one protocol —
// a client that sends Compute to a frame service (or Get to a worker)
// deserves an answer it can classify, not a dropped session.
func (s *Service) handle(conn net.Conn) {
	if err := serverHello(conn); err != nil {
		return
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	w := newConnWriter(conn)

	var reqs sync.WaitGroup
	defer reqs.Wait()

	// Subscription state: one notifier per connection, latest-wins.
	var subCancel func()
	defer func() {
		if subCancel != nil {
			subCancel()
		}
	}()

	for {
		msg, err := readMessage(br, 0)
		if err != nil {
			return
		}
		switch msg.op {
		case opList, opGet, opRender:
			reqs.Add(1)
			go func(m message) {
				defer reqs.Done()
				s.serveRequest(w, m)
			}(msg)
		case opSubscribe:
			// Register the watcher before reading the count so no
			// publish can fall between them unseen. A re-subscribe
			// replaces the notifier, so pushes follow the newest
			// request ID.
			if sub, ok := s.store.(LiveStore); ok {
				if subCancel != nil {
					subCancel()
				}
				notify := newNotifier(w, msg.reqID)
				cancelWatch := sub.Watch(notify.update)
				subCancel = func() {
					cancelWatch()
					notify.stop()
				}
			}
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(s.store.NumFrames()))
			if w.send(msg.reqID, opSubscribeOK, payload) != nil {
				return
			}
		default:
			if w.sendErr(msg.reqID, &WireError{
				Code: ErrCodeUnknownVerb,
				Msg:  fmt.Sprintf("remote: service does not speak opcode %#02x", msg.op),
			}) != nil {
				return
			}
		}
	}
}

// serveRequest handles one List/Get/Render request.
func (s *Service) serveRequest(w *connWriter, msg message) {
	switch msg.op {
	case opList:
		w.send(msg.reqID, opListOK, encodeListInfo(listInfo(s.store)))

	case opGet:
		if len(msg.payload) != 4 {
			w.sendErr(msg.reqID, &WireError{
				Code: ErrCodeBadRequest,
				Msg:  fmt.Sprintf("remote: get payload %d bytes, want 4", len(msg.payload)),
			})
			return
		}
		idx := int(int32(binary.LittleEndian.Uint32(msg.payload)))
		enc, err := s.encodedFrame(idx)
		if err != nil {
			w.sendErr(msg.reqID, err)
			return
		}
		if len(enc) > maxBody-msgOverhead {
			// Answer per-request instead of letting writeMessage fail
			// and sever every other request on the connection.
			w.sendErr(msg.reqID, fmt.Errorf("remote: frame %d encoding (%d bytes) exceeds the message limit", idx, len(enc)))
			return
		}
		w.send(msg.reqID, opGetOK, enc)

	case opRender:
		params, err := decodeRenderParams(msg.payload)
		if err != nil {
			w.sendErr(msg.reqID, &WireError{Code: ErrCodeBadRequest, Msg: err.Error()})
			return
		}
		blob, err := s.renderFrame(params)
		if err != nil {
			w.sendErr(msg.reqID, err)
			return
		}
		w.send(msg.reqID, opRenderOK, blob)
	}
}

// encodedFrame returns frame i in wire encoding, using the store's
// cached encoding when it has one.
func (s *Service) encodedFrame(i int) ([]byte, error) {
	if es, ok := s.store.(encodedFrameStore); ok {
		return es.EncodedFrame(i)
	}
	rep, err := s.store.Frame(i)
	if err != nil {
		return nil, err
	}
	return encodeRep(rep)
}

// renderFrame runs the server-side render: the exact volren.RenderStill
// path a desktop viewer runs locally (core.RenderFrame), so the
// shipped image is bit-identical to a local render of the fetched
// frame.
func (s *Service) renderFrame(p RenderParams) ([]byte, error) {
	rep, err := s.store.Frame(p.Frame)
	if err != nil {
		return nil, err
	}
	tf, err := hybrid.DefaultTF(rep)
	if err != nil {
		return nil, err
	}
	if p.VolumeOpacity > 0 {
		tf.OpacityScale = p.VolumeOpacity
	}
	if p.LogDomainK > 0 {
		tf.Domain = hybrid.LogDomain(p.LogDomainK)
	}
	fb, _, _, err := volren.RenderStill(rep, tf, p.Width, p.Height, p.ViewDir)
	if err != nil {
		return nil, err
	}
	return render.CompressFramebuffer(fb), nil
}

// newNotifier builds the per-subscription push machinery: the store's
// watcher callback records only the latest frame count (never
// blocking the publisher — this is what keeps a slow client from
// backpressuring the simulation), and a dedicated goroutine drains it
// onto the wire as fast as the connection accepts.
type notifier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	latest  int
	sent    int
	stopped bool
	done    chan struct{}
}

func newNotifier(w *connWriter, reqID uint64) *notifier {
	n := &notifier{done: make(chan struct{})}
	n.cond = sync.NewCond(&n.mu)
	go func() {
		defer close(n.done)
		for {
			n.mu.Lock()
			for n.latest == n.sent && !n.stopped {
				n.cond.Wait()
			}
			if n.stopped {
				n.mu.Unlock()
				return
			}
			frames := n.latest
			n.sent = frames
			n.mu.Unlock()
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(frames))
			if w.send(reqID, opNotify, payload) != nil {
				return
			}
		}
	}()
	return n
}

// update is the watcher callback; it never blocks.
func (n *notifier) update(frames int) {
	n.mu.Lock()
	if frames > n.latest {
		n.latest = frames
	}
	n.mu.Unlock()
	n.cond.Signal()
}

// stop terminates the notifier goroutine and waits for it.
func (n *notifier) stop() {
	n.mu.Lock()
	n.stopped = true
	n.mu.Unlock()
	n.cond.Signal()
	<-n.done
}
