package remote

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"repro/internal/fieldline"
	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/vec"
)

// The Compute verb ships one stage invocation to a Worker:
//
//	request payload:  u8 len(kernel) | kernel name | kernel blob
//	response payload: kernel blob
//
// Kernel blobs are opaque to the protocol layer; each kernel defines
// its own pario-idiom encoding (magic, version, trailing CRC-32) so a
// stage payload corrupted between the framing checks is still caught.
// The hybrid-extraction kernel's request blob is below; its reply blob
// is a hybrid representation in the standard .achy encoding (which
// carries its own CRC already).

// KernelHybridExtract is the built-in distributed stage kernel:
// projected point sets in, hybrid representations out. The version
// suffix is part of the name — an incompatible blob layout gets a new
// name, and old workers answer it with ErrCodeUnknownKernel instead of
// misdecoding.
const KernelHybridExtract = "hybrid.extract.v1"

// KernelFieldlineTrace is the second built-in kernel: batches of field
// line seeds in, integrated lines out (fieldline.TraceAll on the
// worker's cores). The field itself is named, not shipped — the
// request selects one of the analytic FieldSpec kinds with its
// parameters, so the blob stays a few bytes per seed. Tracing over a
// sampled solver frame would mean shipping the frame; that stays
// local for now.
const KernelFieldlineTrace = "fieldline.trace.v1"

// maxKernelName bounds the kernel-name field (it is length-prefixed
// with one byte).
const maxKernelName = 255

// ---- payload buffer pool --------------------------------------------

// payloadPool recycles wire payload buffers: inbound message bodies,
// compute request encodings, and kernel reply encodings. A
// steady-state distributed stream reuses a bounded set of buffers
// instead of allocating one per frame per hop — the wire-path
// equivalent of the pipeline's FreeList-recycled scratch.
var payloadPool sync.Pool // holds *[]byte

// getBytes returns a length-n buffer, reusing a pooled backing array
// when one is large enough.
func getBytes(n int) []byte {
	if bp, ok := payloadPool.Get().(*[]byte); ok {
		if b := *bp; cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// putBytes recycles a buffer obtained from getBytes (or any buffer the
// caller is done with). The caller must not touch b again.
func putBytes(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}

// ---- compute request framing ----------------------------------------

// appendComputeHeader appends the kernel-name prefix of a Compute
// request payload.
func appendComputeHeader(dst []byte, kernel string) ([]byte, error) {
	if len(kernel) == 0 || len(kernel) > maxKernelName {
		return dst, fmt.Errorf("remote: kernel name %q length out of range [1, %d]", kernel, maxKernelName)
	}
	dst = append(dst, byte(len(kernel)))
	return append(dst, kernel...), nil
}

// decodeComputeRequest splits a Compute payload into the kernel name
// and its blob. The blob aliases p.
func decodeComputeRequest(p []byte) (kernel string, blob []byte, err error) {
	if len(p) < 1 {
		return "", nil, fmt.Errorf("remote: empty compute payload")
	}
	n := int(p[0])
	if n == 0 || len(p) < 1+n {
		return "", nil, fmt.Errorf("remote: compute payload truncated inside kernel name (%d bytes, name %d)", len(p), n)
	}
	return string(p[1 : 1+n]), p[1+n:], nil
}

// ---- hybrid-extraction kernel blob ----------------------------------

// The extract request blob ("ACPT" — accelerator point set) carries
// the projected point set together with the partition and extraction
// configs, so the worker reproduces the local Build+Extract exactly:
//
//	magic "ACPT" | u32 version | i64 MaxLevel | i64 LeafCap |
//	i64 TreeWorkers | f64 Pad | i64 VolumeRes | f64 Threshold |
//	i64 Budget | i64 ExtractWorkers | i64 n | n × (3 f64) |
//	u32 crc32 (all preceding bytes)
//
// Worker fields ship verbatim: octree.Build is bit-identical at every
// worker count, and hybrid.Extract's volume splat depends on its
// worker count only through slab boundaries — shipping the requester's
// value keeps the distributed result bit-identical to the local run
// (with Workers 0, both sides auto-size, which matches whenever the
// two processes see the same core count — pin a count for bit-exact
// runs across heterogeneous hosts).

var magicPointSet = [4]byte{'A', 'C', 'P', 'T'}

const (
	pointSetVersion = 1
	// extractReqFixed is the blob size without the points: magic,
	// version, 8 config words, count, crc.
	extractReqFixed = 4 + 4 + 8*8 + 8 + 4
)

// appendExtractRequest appends the extract kernel's request blob.
func appendExtractRequest(dst []byte, pts []vec.V3, tcfg octree.Config, ecfg hybrid.ExtractConfig) []byte {
	need := extractReqFixed + 24*len(pts)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	le := binary.LittleEndian
	dst = append(dst, magicPointSet[:]...)
	dst = le.AppendUint32(dst, pointSetVersion)
	for _, v := range []uint64{
		uint64(int64(tcfg.MaxLevel)),
		uint64(int64(tcfg.LeafCap)),
		uint64(int64(tcfg.Workers)),
		math.Float64bits(tcfg.Pad),
		uint64(int64(ecfg.VolumeRes)),
		math.Float64bits(ecfg.Threshold),
		uint64(ecfg.Budget),
		uint64(int64(ecfg.Workers)),
	} {
		dst = le.AppendUint64(dst, v)
	}
	dst = le.AppendUint64(dst, uint64(int64(len(pts))))
	for _, p := range pts {
		dst = le.AppendUint64(dst, math.Float64bits(p.X))
		dst = le.AppendUint64(dst, math.Float64bits(p.Y))
		dst = le.AppendUint64(dst, math.Float64bits(p.Z))
	}
	return le.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// ---- field-line trace kernel blob -----------------------------------

// FieldKind names an analytic field the trace kernel can integrate.
type FieldKind uint8

const (
	// FieldUniform is the constant field Params[0:3].
	FieldUniform FieldKind = 0
	// FieldDipole is an ideal dipole at the origin with moment
	// Params[0:3]: B(r) = (3 r̂ (m·r̂) − m) / |r|³.
	FieldDipole FieldKind = 1
	// FieldVortex is the rigid-rotation field ω × r with
	// ω = Params[0:3] — its lines are circles, exercising the
	// CloseLoop termination.
	FieldVortex FieldKind = 2
)

// FieldSpec selects the field a remote trace integrates.
type FieldSpec struct {
	Kind   FieldKind
	Params [4]float64
}

// Field instantiates the named analytic field.
func (s FieldSpec) Field() (fieldline.Field, error) {
	p := vec.New(s.Params[0], s.Params[1], s.Params[2])
	switch s.Kind {
	case FieldUniform:
		return fieldline.FieldFunc(func(vec.V3) vec.V3 { return p }), nil
	case FieldDipole:
		return fieldline.FieldFunc(func(r vec.V3) vec.V3 {
			d2 := r.Len2()
			if d2 == 0 {
				return vec.V3{}
			}
			d := math.Sqrt(d2)
			rhat := r.Scale(1 / d)
			return rhat.Scale(3 * p.Dot(rhat)).Sub(p).Scale(1 / (d2 * d))
		}), nil
	case FieldVortex:
		return fieldline.FieldFunc(func(r vec.V3) vec.V3 { return p.Cross(r) }), nil
	default:
		return nil, fmt.Errorf("remote: unknown field kind %d", s.Kind)
	}
}

// The trace request blob ("ACFS" — accelerator field seeds) carries
// the field spec, the integration config, and the seed batch:
//
//	magic "ACFS" | u32 version | u8 kind | 4 f64 params | f64 Step |
//	i64 MaxSteps | f64 MinMag | u8 closeLoop | f64 sign | i64 workers |
//	i64 n | n × (3 f64) | u32 crc32 (all preceding bytes)
//
// Config.Domain is a Go function and cannot ship; ComputeTrace rejects
// configs that set it. Workers ships verbatim like the extract blob's
// worker fields — TraceAll is bit-identical at every worker count, so
// this only matters for the worker's scheduling, not the result.

var magicFieldSeeds = [4]byte{'A', 'C', 'F', 'S'}

const (
	fieldSeedsVersion = 1
	// traceReqFixed is the request blob size without the seeds.
	traceReqFixed = 4 + 4 + 1 + 4*8 + 8 + 8 + 8 + 1 + 8 + 8 + 8 + 4
)

// appendTraceRequest appends the trace kernel's request blob.
func appendTraceRequest(dst []byte, spec FieldSpec, seeds []vec.V3, cfg fieldline.Config, sign float64, workers int) []byte {
	need := traceReqFixed + 24*len(seeds)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	le := binary.LittleEndian
	dst = append(dst, magicFieldSeeds[:]...)
	dst = le.AppendUint32(dst, fieldSeedsVersion)
	dst = append(dst, byte(spec.Kind))
	for _, f := range spec.Params {
		dst = le.AppendUint64(dst, math.Float64bits(f))
	}
	dst = le.AppendUint64(dst, math.Float64bits(cfg.Step))
	dst = le.AppendUint64(dst, uint64(int64(cfg.MaxSteps)))
	dst = le.AppendUint64(dst, math.Float64bits(cfg.MinMag))
	if cfg.CloseLoop {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = le.AppendUint64(dst, math.Float64bits(sign))
	dst = le.AppendUint64(dst, uint64(int64(workers)))
	dst = le.AppendUint64(dst, uint64(int64(len(seeds))))
	for _, s := range seeds {
		dst = le.AppendUint64(dst, math.Float64bits(s.X))
		dst = le.AppendUint64(dst, math.Float64bits(s.Y))
		dst = le.AppendUint64(dst, math.Float64bits(s.Z))
	}
	return le.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// decodeTraceRequest parses a trace request blob, verifying the
// checksum. Nothing aliases p.
func decodeTraceRequest(p []byte) (spec FieldSpec, seeds []vec.V3, cfg fieldline.Config, sign float64, workers int, err error) {
	le := binary.LittleEndian
	fail := func(format string, args ...any) (FieldSpec, []vec.V3, fieldline.Config, float64, int, error) {
		return FieldSpec{}, nil, fieldline.Config{}, 0, 0, fmt.Errorf(format, args...)
	}
	if len(p) < traceReqFixed {
		return fail("remote: trace request truncated (%d bytes)", len(p))
	}
	if [4]byte(p[:4]) != magicFieldSeeds {
		return fail("remote: bad field-seeds magic %q", p[:4])
	}
	if v := le.Uint32(p[4:]); v != fieldSeedsVersion {
		return fail("remote: unsupported field-seeds version %d", v)
	}
	n := int64(le.Uint64(p[82:]))
	if n < 0 || n > int64(maxBody)/24 {
		return fail("remote: implausible seed count %d", n)
	}
	if int64(len(p)) != int64(traceReqFixed)+24*n {
		return fail("remote: trace request is %d bytes, want %d for %d seeds",
			len(p), int64(traceReqFixed)+24*n, n)
	}
	crcOff := len(p) - 4
	if got, want := le.Uint32(p[crcOff:]), crc32.ChecksumIEEE(p[:crcOff]); got != want {
		return fail("remote: trace request checksum mismatch (wire %08x, computed %08x)", got, want)
	}
	spec.Kind = FieldKind(p[8])
	for i := range spec.Params {
		spec.Params[i] = math.Float64frombits(le.Uint64(p[9+8*i:]))
	}
	cfg = fieldline.Config{
		Step:      math.Float64frombits(le.Uint64(p[41:])),
		MaxSteps:  int(int64(le.Uint64(p[49:]))),
		MinMag:    math.Float64frombits(le.Uint64(p[57:])),
		CloseLoop: p[65] != 0,
	}
	sign = math.Float64frombits(le.Uint64(p[66:]))
	workers = int(int64(le.Uint64(p[74:])))
	seeds = make([]vec.V3, n)
	for i := range seeds {
		off := traceReqFixed - 4 + 24*i
		seeds[i] = vec.New(
			math.Float64frombits(le.Uint64(p[off:])),
			math.Float64frombits(le.Uint64(p[off+8:])),
			math.Float64frombits(le.Uint64(p[off+16:])),
		)
	}
	return spec, seeds, cfg, sign, workers, nil
}

// The trace reply blob ("ACFR") carries the integrated lines in full
// double precision, so a remote trace is bit-identical to the local
// TraceAll (lineio's single-precision file format is a storage trade
// this wire path does not make):
//
//	magic "ACFR" | u32 version | u32 count |
//	count × (u32 npts | u8 closed | npts × (7 f64: point, tangent,
//	strength)) | u32 crc32 (all preceding bytes)

var magicFieldReply = [4]byte{'A', 'C', 'F', 'R'}

// appendTraceReply appends the trace kernel's reply blob.
func appendTraceReply(dst []byte, lines []*fieldline.Line) []byte {
	start := len(dst)
	le := binary.LittleEndian
	dst = append(dst, magicFieldReply[:]...)
	dst = le.AppendUint32(dst, fieldSeedsVersion)
	dst = le.AppendUint32(dst, uint32(len(lines)))
	for _, l := range lines {
		dst = le.AppendUint32(dst, uint32(len(l.Points)))
		if l.Closed {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		for i, pt := range l.Points {
			for _, f := range [7]float64{pt.X, pt.Y, pt.Z,
				l.Tangents[i].X, l.Tangents[i].Y, l.Tangents[i].Z,
				l.Strengths[i]} {
				dst = le.AppendUint64(dst, math.Float64bits(f))
			}
		}
	}
	return le.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// decodeTraceReply parses a trace reply blob, verifying the checksum.
func decodeTraceReply(p []byte) ([]*fieldline.Line, error) {
	le := binary.LittleEndian
	if len(p) < 4+4+4+4 {
		return nil, fmt.Errorf("remote: trace reply truncated (%d bytes)", len(p))
	}
	if [4]byte(p[:4]) != magicFieldReply {
		return nil, fmt.Errorf("remote: bad trace reply magic %q", p[:4])
	}
	if v := le.Uint32(p[4:]); v != fieldSeedsVersion {
		return nil, fmt.Errorf("remote: unsupported trace reply version %d", v)
	}
	crcOff := len(p) - 4
	if got, want := le.Uint32(p[crcOff:]), crc32.ChecksumIEEE(p[:crcOff]); got != want {
		return nil, fmt.Errorf("remote: trace reply checksum mismatch (wire %08x, computed %08x)", got, want)
	}
	count := int(le.Uint32(p[8:]))
	body := p[12:crcOff]
	lines := make([]*fieldline.Line, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < 5 {
			return nil, fmt.Errorf("remote: trace reply truncated at line %d header", i)
		}
		npts := int(le.Uint32(body))
		closed := body[4] != 0
		body = body[5:]
		if npts < 0 || len(body) < 56*npts {
			return nil, fmt.Errorf("remote: trace reply truncated inside line %d (%d points)", i, npts)
		}
		l := &fieldline.Line{
			Closed:    closed,
			Points:    make([]vec.V3, npts),
			Tangents:  make([]vec.V3, npts),
			Strengths: make([]float64, npts),
		}
		for j := 0; j < npts; j++ {
			off := 56 * j
			l.Points[j] = vec.New(
				math.Float64frombits(le.Uint64(body[off:])),
				math.Float64frombits(le.Uint64(body[off+8:])),
				math.Float64frombits(le.Uint64(body[off+16:])))
			l.Tangents[j] = vec.New(
				math.Float64frombits(le.Uint64(body[off+24:])),
				math.Float64frombits(le.Uint64(body[off+32:])),
				math.Float64frombits(le.Uint64(body[off+40:])))
			l.Strengths[j] = math.Float64frombits(le.Uint64(body[off+48:]))
		}
		body = body[56*npts:]
		lines = append(lines, l)
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("remote: %d trailing bytes after trace reply lines", len(body))
	}
	return lines, nil
}

// decodeExtractRequest parses an extract request blob, verifying the
// checksum. The returned points reuse scratch's backing array when it
// is large enough; nothing aliases p, so the caller may recycle the
// blob immediately.
func decodeExtractRequest(p []byte, scratch []vec.V3) (pts []vec.V3, tcfg octree.Config, ecfg hybrid.ExtractConfig, err error) {
	le := binary.LittleEndian
	if len(p) < extractReqFixed {
		return nil, tcfg, ecfg, fmt.Errorf("remote: extract request truncated (%d bytes)", len(p))
	}
	if [4]byte(p[:4]) != magicPointSet {
		return nil, tcfg, ecfg, fmt.Errorf("remote: bad point-set magic %q", p[:4])
	}
	if v := le.Uint32(p[4:]); v != pointSetVersion {
		return nil, tcfg, ecfg, fmt.Errorf("remote: unsupported point-set version %d", v)
	}
	n := int64(le.Uint64(p[72:]))
	if n < 0 || n > int64(maxBody)/24 {
		return nil, tcfg, ecfg, fmt.Errorf("remote: implausible point count %d", n)
	}
	if int64(len(p)) != int64(extractReqFixed)+24*n {
		return nil, tcfg, ecfg, fmt.Errorf("remote: extract request is %d bytes, want %d for %d points",
			len(p), int64(extractReqFixed)+24*n, n)
	}
	crcOff := len(p) - 4
	if got, want := le.Uint32(p[crcOff:]), crc32.ChecksumIEEE(p[:crcOff]); got != want {
		return nil, tcfg, ecfg, fmt.Errorf("remote: extract request checksum mismatch (wire %08x, computed %08x)", got, want)
	}
	tcfg = octree.Config{
		MaxLevel: int(int64(le.Uint64(p[8:]))),
		LeafCap:  int(int64(le.Uint64(p[16:]))),
		Workers:  int(int64(le.Uint64(p[24:]))),
		Pad:      math.Float64frombits(le.Uint64(p[32:])),
	}
	ecfg = hybrid.ExtractConfig{
		VolumeRes: int(int64(le.Uint64(p[40:]))),
		Threshold: math.Float64frombits(le.Uint64(p[48:])),
		Budget:    int64(le.Uint64(p[56:])),
		Workers:   int(int64(le.Uint64(p[64:]))),
	}
	if int64(cap(scratch)) >= n {
		pts = scratch[:n]
	} else {
		pts = make([]vec.V3, n)
	}
	for i := range pts {
		off := extractReqFixed - 4 + 24*i // points follow the fixed fields, CRC trails
		pts[i] = vec.New(
			math.Float64frombits(le.Uint64(p[off:])),
			math.Float64frombits(le.Uint64(p[off+8:])),
			math.Float64frombits(le.Uint64(p[off+16:])),
		)
	}
	return pts, tcfg, ecfg, nil
}
