package remote

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/vec"
)

// The Compute verb ships one stage invocation to a Worker:
//
//	request payload:  u8 len(kernel) | kernel name | kernel blob
//	response payload: kernel blob
//
// Kernel blobs are opaque to the protocol layer; each kernel defines
// its own pario-idiom encoding (magic, version, trailing CRC-32) so a
// stage payload corrupted between the framing checks is still caught.
// The hybrid-extraction kernel's request blob is below; its reply blob
// is a hybrid representation in the standard .achy encoding (which
// carries its own CRC already).

// KernelHybridExtract is the built-in distributed stage kernel:
// projected point sets in, hybrid representations out. The version
// suffix is part of the name — an incompatible blob layout gets a new
// name, and old workers answer it with ErrCodeUnknownKernel instead of
// misdecoding.
const KernelHybridExtract = "hybrid.extract.v1"

// maxKernelName bounds the kernel-name field (it is length-prefixed
// with one byte).
const maxKernelName = 255

// ---- payload buffer pool --------------------------------------------

// payloadPool recycles wire payload buffers: inbound message bodies,
// compute request encodings, and kernel reply encodings. A
// steady-state distributed stream reuses a bounded set of buffers
// instead of allocating one per frame per hop — the wire-path
// equivalent of the pipeline's FreeList-recycled scratch.
var payloadPool sync.Pool // holds *[]byte

// getBytes returns a length-n buffer, reusing a pooled backing array
// when one is large enough.
func getBytes(n int) []byte {
	if bp, ok := payloadPool.Get().(*[]byte); ok {
		if b := *bp; cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// putBytes recycles a buffer obtained from getBytes (or any buffer the
// caller is done with). The caller must not touch b again.
func putBytes(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}

// ---- compute request framing ----------------------------------------

// appendComputeHeader appends the kernel-name prefix of a Compute
// request payload.
func appendComputeHeader(dst []byte, kernel string) ([]byte, error) {
	if len(kernel) == 0 || len(kernel) > maxKernelName {
		return dst, fmt.Errorf("remote: kernel name %q length out of range [1, %d]", kernel, maxKernelName)
	}
	dst = append(dst, byte(len(kernel)))
	return append(dst, kernel...), nil
}

// decodeComputeRequest splits a Compute payload into the kernel name
// and its blob. The blob aliases p.
func decodeComputeRequest(p []byte) (kernel string, blob []byte, err error) {
	if len(p) < 1 {
		return "", nil, fmt.Errorf("remote: empty compute payload")
	}
	n := int(p[0])
	if n == 0 || len(p) < 1+n {
		return "", nil, fmt.Errorf("remote: compute payload truncated inside kernel name (%d bytes, name %d)", len(p), n)
	}
	return string(p[1 : 1+n]), p[1+n:], nil
}

// ---- hybrid-extraction kernel blob ----------------------------------

// The extract request blob ("ACPT" — accelerator point set) carries
// the projected point set together with the partition and extraction
// configs, so the worker reproduces the local Build+Extract exactly:
//
//	magic "ACPT" | u32 version | i64 MaxLevel | i64 LeafCap |
//	i64 TreeWorkers | f64 Pad | i64 VolumeRes | f64 Threshold |
//	i64 Budget | i64 ExtractWorkers | i64 n | n × (3 f64) |
//	u32 crc32 (all preceding bytes)
//
// Worker fields ship verbatim: octree.Build is bit-identical at every
// worker count, and hybrid.Extract's volume splat depends on its
// worker count only through slab boundaries — shipping the requester's
// value keeps the distributed result bit-identical to the local run
// (with Workers 0, both sides auto-size, which matches whenever the
// two processes see the same core count — pin a count for bit-exact
// runs across heterogeneous hosts).

var magicPointSet = [4]byte{'A', 'C', 'P', 'T'}

const (
	pointSetVersion = 1
	// extractReqFixed is the blob size without the points: magic,
	// version, 8 config words, count, crc.
	extractReqFixed = 4 + 4 + 8*8 + 8 + 4
)

// appendExtractRequest appends the extract kernel's request blob.
func appendExtractRequest(dst []byte, pts []vec.V3, tcfg octree.Config, ecfg hybrid.ExtractConfig) []byte {
	need := extractReqFixed + 24*len(pts)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	le := binary.LittleEndian
	dst = append(dst, magicPointSet[:]...)
	dst = le.AppendUint32(dst, pointSetVersion)
	for _, v := range []uint64{
		uint64(int64(tcfg.MaxLevel)),
		uint64(int64(tcfg.LeafCap)),
		uint64(int64(tcfg.Workers)),
		math.Float64bits(tcfg.Pad),
		uint64(int64(ecfg.VolumeRes)),
		math.Float64bits(ecfg.Threshold),
		uint64(ecfg.Budget),
		uint64(int64(ecfg.Workers)),
	} {
		dst = le.AppendUint64(dst, v)
	}
	dst = le.AppendUint64(dst, uint64(int64(len(pts))))
	for _, p := range pts {
		dst = le.AppendUint64(dst, math.Float64bits(p.X))
		dst = le.AppendUint64(dst, math.Float64bits(p.Y))
		dst = le.AppendUint64(dst, math.Float64bits(p.Z))
	}
	return le.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// decodeExtractRequest parses an extract request blob, verifying the
// checksum. The returned points reuse scratch's backing array when it
// is large enough; nothing aliases p, so the caller may recycle the
// blob immediately.
func decodeExtractRequest(p []byte, scratch []vec.V3) (pts []vec.V3, tcfg octree.Config, ecfg hybrid.ExtractConfig, err error) {
	le := binary.LittleEndian
	if len(p) < extractReqFixed {
		return nil, tcfg, ecfg, fmt.Errorf("remote: extract request truncated (%d bytes)", len(p))
	}
	if [4]byte(p[:4]) != magicPointSet {
		return nil, tcfg, ecfg, fmt.Errorf("remote: bad point-set magic %q", p[:4])
	}
	if v := le.Uint32(p[4:]); v != pointSetVersion {
		return nil, tcfg, ecfg, fmt.Errorf("remote: unsupported point-set version %d", v)
	}
	n := int64(le.Uint64(p[72:]))
	if n < 0 || n > int64(maxBody)/24 {
		return nil, tcfg, ecfg, fmt.Errorf("remote: implausible point count %d", n)
	}
	if int64(len(p)) != int64(extractReqFixed)+24*n {
		return nil, tcfg, ecfg, fmt.Errorf("remote: extract request is %d bytes, want %d for %d points",
			len(p), int64(extractReqFixed)+24*n, n)
	}
	crcOff := len(p) - 4
	if got, want := le.Uint32(p[crcOff:]), crc32.ChecksumIEEE(p[:crcOff]); got != want {
		return nil, tcfg, ecfg, fmt.Errorf("remote: extract request checksum mismatch (wire %08x, computed %08x)", got, want)
	}
	tcfg = octree.Config{
		MaxLevel: int(int64(le.Uint64(p[8:]))),
		LeafCap:  int(int64(le.Uint64(p[16:]))),
		Workers:  int(int64(le.Uint64(p[24:]))),
		Pad:      math.Float64frombits(le.Uint64(p[32:])),
	}
	ecfg = hybrid.ExtractConfig{
		VolumeRes: int(int64(le.Uint64(p[40:]))),
		Threshold: math.Float64frombits(le.Uint64(p[48:])),
		Budget:    int64(le.Uint64(p[56:])),
		Workers:   int(int64(le.Uint64(p[64:]))),
	}
	if int64(cap(scratch)) >= n {
		pts = scratch[:n]
	} else {
		pts = make([]vec.V3, n)
	}
	for i := range pts {
		off := extractReqFixed - 4 + 24*i // points follow the fixed fields, CRC trails
		pts[i] = vec.New(
			math.Float64frombits(le.Uint64(p[off:])),
			math.Float64frombits(le.Uint64(p[off+8:])),
			math.Float64frombits(le.Uint64(p[off+16:])),
		)
	}
	return pts, tcfg, ecfg, nil
}
