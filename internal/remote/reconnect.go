package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hybrid"
	"repro/internal/pipeline"
	"repro/internal/render"
)

// errReconnectClosed marks a ReconnectClient the caller has Closed.
// Unlike ErrClientClosed — which means "this connection died, a redial
// fixes it" — this one is final: no verb and no amount of retrying is
// allowed to resurrect a closed reconnect client.
var errReconnectClosed = errors.New("remote: reconnect client closed")

// ReconnectOptions tune a ReconnectClient.
type ReconnectOptions struct {
	// Client configures each underlying connection (request timeout,
	// heartbeat cadence). The v5 heartbeat is what converts a silently
	// dead link into a prompt ErrClientClosed, which is what triggers
	// the redial — leave it enabled unless a test says otherwise.
	Client ClientOptions
	// Retry governs the redial/backoff schedule; the zero value is the
	// pipeline default (3 attempts, 50ms base doubling to 2s, ±50%
	// jitter). Each verb call gets at most MaxAttempts tries across
	// redials before its error surfaces; a subscription that exhausts
	// the policy while resubscribing ends with that error.
	Retry pipeline.RetryPolicy
	// Bandwidth, if > 0, applies SetBandwidth to every new connection
	// (the throttle would otherwise be lost on redial).
	Bandwidth int64
	// Dial overrides the transport dial — the seam for tests that wrap
	// connections in fault injectors, and for callers with custom
	// transports. nil means TCP with a 5s timeout.
	Dial func(addr string) (net.Conn, error)
}

// ReconnectClient is the resilient form of Client: a wrapper holding
// one live connection at a time that transparently redials (with
// pipeline.Retry backoff), re-runs the protocol handshake, and retries
// the interrupted call whenever the connection dies or the server
// refuses retryably (ErrCodeUnavailable — admission or render
// capacity). Subscriptions opened through SubscribeResume survive
// reconnects too: each tracks the last frame it delivered and catches
// up over GetDelta, so a viewer that loses its link resumes the stream
// bit-identical with no duplicated or skipped frames.
//
// Methods are safe for concurrent use; all calls on one ReconnectClient
// share the underlying connection, and a redial by one call is
// immediately visible to the others.
type ReconnectClient struct {
	addr string
	opts ReconnectOptions

	mu     sync.Mutex
	cli    *Client
	gen    uint64 // bumps on every successful dial
	closed bool

	redials atomic.Uint64
}

// DialReconnect connects to addr, retrying the initial dial under the
// same policy as every later redial.
func DialReconnect(addr string, opts ReconnectOptions) (*ReconnectClient, error) {
	rc := &ReconnectClient{addr: addr, opts: opts}
	if err := rc.do(func(c *Client) error { return nil }); err != nil {
		return nil, err
	}
	return rc, nil
}

// Close severs the current connection and makes every later call fail
// fast and non-retryably.
func (rc *ReconnectClient) Close() error {
	rc.mu.Lock()
	rc.closed = true
	cli := rc.cli
	rc.cli = nil
	rc.mu.Unlock()
	if cli != nil {
		return cli.Close()
	}
	return nil
}

// Redials reports how many times the client has re-established its
// connection — 0 after an uninterrupted session.
func (rc *ReconnectClient) Redials() uint64 { return rc.redials.Load() }

// client returns the live connection, dialing a fresh one if none is
// up. Dial attempts are serialized under mu; concurrent callers wait
// for one dial rather than racing their own. The returned generation
// identifies this connection for invalidate.
func (rc *ReconnectClient) client() (*Client, uint64, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil, 0, errReconnectClosed
	}
	if rc.cli != nil {
		return rc.cli, rc.gen, nil
	}
	conn, err := rc.dial()
	if err != nil {
		return nil, 0, fmt.Errorf("remote: redial %s: %w", rc.addr, err)
	}
	cli, err := NewClientConn(conn, rc.opts.Client)
	if err != nil {
		return nil, 0, err
	}
	if rc.opts.Bandwidth > 0 {
		cli.SetBandwidth(rc.opts.Bandwidth)
	}
	if rc.gen > 0 {
		rc.redials.Add(1)
	}
	rc.gen++
	rc.cli = cli
	return cli, rc.gen, nil
}

func (rc *ReconnectClient) dial() (net.Conn, error) {
	if rc.opts.Dial != nil {
		return rc.opts.Dial(rc.addr)
	}
	return net.DialTimeout("tcp", rc.addr, 5*time.Second)
}

// invalidate drops the connection behind gen so the next call redials.
// A newer generation is left alone: another caller already redialed,
// and their connection is not guilty of this caller's error.
func (rc *ReconnectClient) invalidate(gen uint64) {
	rc.mu.Lock()
	if rc.gen == gen && rc.cli != nil {
		rc.cli.Close()
		rc.cli = nil
	}
	rc.mu.Unlock()
}

// reconnectRetryable classifies errors for the redial loop: a closed
// reconnect client is final; everything else defers to IsTransient
// (connection loss, timeouts, and retryable ErrCodeUnavailable servers
// retry; typed protocol errors like unknown-verb or bad-request
// surface immediately).
func reconnectRetryable(err error) bool {
	return !errors.Is(err, errReconnectClosed) && IsTransient(err)
}

// do runs f against the live connection under the retry policy,
// redialing between attempts when the failure implicates the
// connection (any transient error — if the server refused admission,
// only a fresh connection gets a fresh verdict).
func (rc *ReconnectClient) do(f func(c *Client) error) error {
	return pipeline.Retry(context.Background(), rc.opts.Retry, reconnectRetryable,
		func(ctx context.Context) error {
			cli, gen, err := rc.client()
			if err != nil {
				return err
			}
			if err := f(cli); err != nil {
				if IsTransient(err) {
					rc.invalidate(gen)
				}
				return err
			}
			return nil
		})
}

// List is Client.List with transparent redial.
func (rc *ReconnectClient) List() (ListInfo, error) {
	var li ListInfo
	err := rc.do(func(c *Client) error {
		var e error
		li, e = c.List()
		return e
	})
	return li, err
}

// NumFrames is Client.NumFrames with transparent redial.
func (rc *ReconnectClient) NumFrames() (int, error) {
	li, err := rc.List()
	return li.Frames, err
}

// FetchFrame is Client.FetchFrame with transparent redial.
func (rc *ReconnectClient) FetchFrame(i int) (*hybrid.Representation, int64, time.Duration, error) {
	var (
		rep  *hybrid.Representation
		n    int64
		took time.Duration
	)
	err := rc.do(func(c *Client) error {
		var e error
		rep, n, took, e = c.FetchFrame(i)
		return e
	})
	return rep, n, took, err
}

// Render is Client.Render with transparent redial — including past a
// server whose render gate is momentarily full (ErrCodeUnavailable),
// which costs a backoff and a fresh connection, not the frame.
func (rc *ReconnectClient) Render(p RenderParams) (*render.Framebuffer, int64, time.Duration, error) {
	var (
		fb   *render.Framebuffer
		n    int64
		took time.Duration
	)
	err := rc.do(func(c *Client) error {
		var e error
		fb, n, took, e = c.Render(p)
		return e
	})
	return fb, n, took, err
}

// Ping is Client.Ping with transparent redial.
func (rc *ReconnectClient) Ping() (time.Duration, error) {
	var rtt time.Duration
	err := rc.do(func(c *Client) error {
		var e error
		rtt, e = c.Ping()
		return e
	})
	return rtt, err
}

// Stats is Client.Stats with transparent redial.
func (rc *ReconnectClient) Stats() (StatsReport, error) {
	var r StatsReport
	err := rc.do(func(c *Client) error {
		var e error
		r, e = c.Stats()
		return e
	})
	return r, err
}

// FrameLoader adapts the reconnect client to the viewer's Loader
// signature, like Client.FrameLoader.
func (rc *ReconnectClient) FrameLoader() func(i int) (*hybrid.Representation, error) {
	return func(i int) (*hybrid.Representation, error) {
		rep, _, _, err := rc.FetchFrame(i)
		return rep, err
	}
}

// ResumedFrame is one frame delivered by a resilient subscription: the
// frame's index and its full wire encoding, exactly the bytes the
// server's store holds (deltas are reconstructed before delivery, so
// the payload chains as the next GetDelta base — and a resumed stream
// is bit-identical to an uninterrupted one).
type ResumedFrame struct {
	Index   int
	Payload []byte
}

// Decode unpacks the frame.
func (f ResumedFrame) Decode() (*hybrid.Representation, error) {
	return hybrid.DecodeBinary(f.Payload)
}

// ReconnectSub is a subscription that survives reconnects. Unlike
// Client.Subscribe's latest-wins channels, Frames is ordered, gapless
// and consumer-paced: every frame index after the resume point appears
// exactly once, in order — the pump fetches whatever span a notify (or
// an outage) skipped via GetDelta before moving on. The trade is that
// a consumer slower than the server's live ring can lose frames to
// eviction; those are counted in Skipped, never silently dropped.
type ReconnectSub struct {
	// Frames delivers the stream. It closes when Close is called or
	// the subscription fails permanently (retry policy exhausted);
	// Err distinguishes.
	Frames <-chan ResumedFrame

	rc      *ReconnectClient
	ch      chan ResumedFrame
	done    chan struct{}
	once    sync.Once
	skipped atomic.Uint64

	mu  sync.Mutex
	err error
}

// SubscribeResume opens a resilient live subscription delivering every
// frame after index `after` (pass -1 to stream from the first frame
// the server still holds, or the last index already on hand to resume
// a previous session). The subscription redials, re-subscribes and
// catches up via GetDelta on every connection loss; the consumer just
// reads Frames.
func (rc *ReconnectClient) SubscribeResume(after int) (*ReconnectSub, error) {
	rc.mu.Lock()
	closed := rc.closed
	rc.mu.Unlock()
	if closed {
		return nil, errReconnectClosed
	}
	s := &ReconnectSub{
		rc:   rc,
		ch:   make(chan ResumedFrame),
		done: make(chan struct{}),
	}
	s.Frames = s.ch
	go s.run(after)
	return s, nil
}

// Close stops the subscription and closes Frames.
func (s *ReconnectSub) Close() {
	s.once.Do(func() { close(s.done) })
}

// Err reports why Frames closed: nil after Close, the terminal error
// after a permanent failure.
func (s *ReconnectSub) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Skipped counts frames lost to server-side eviction — a consumer
// pacing slower than the live ring's capacity. 0 means the gapless
// guarantee held end to end.
func (s *ReconnectSub) Skipped() uint64 { return s.skipped.Load() }

func (s *ReconnectSub) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// run is the pump: subscribe (redialing under the retry policy),
// consume count notifies, and close every gap — whether from notify
// collapsing under load or from an outage between subscriptions — with
// GetDelta catch-up against the last delivered frame. lastIdx/lastEnc
// persist across reconnects; that is the whole resume mechanism.
func (s *ReconnectSub) run(after int) {
	defer close(s.ch)
	lastIdx := after
	var lastEnc []byte
	for {
		select {
		case <-s.done:
			return
		default:
		}
		var (
			cli *Client
			gen uint64
			sub *Subscription
		)
		err := pipeline.Retry(context.Background(), s.rc.opts.Retry, reconnectRetryable,
			func(ctx context.Context) error {
				c, g, err := s.rc.client()
				if err != nil {
					return err
				}
				sb, err := c.Subscribe()
				if err != nil {
					if IsTransient(err) {
						s.rc.invalidate(g)
					}
					return err
				}
				cli, gen, sub = c, g, sb
				return nil
			})
		if err != nil {
			s.fail(err)
			return
		}

		// Consume notifies until the connection dies or we're closed.
		// Each notify names the server's frame count n; catch-up walks
		// lastIdx+1..n-1 in order, so collapsed notifies cost nothing.
		alive := true
		for alive {
			select {
			case <-s.done:
				sub.Close()
				return
			case n, ok := <-sub.Updates:
				if !ok {
					// Connection lost mid-stream: drop this generation
					// and loop back to redial + resubscribe. Catch-up
					// picks up exactly after lastIdx.
					s.rc.invalidate(gen)
					alive = false
					break
				}
				if err := s.catchUp(cli, n, &lastIdx, &lastEnc); err != nil {
					if errors.Is(err, errReconnectClosed) {
						sub.Close()
						return
					}
					s.rc.invalidate(gen)
					sub.Close()
					alive = false
				}
			}
		}
	}
}

// catchUp fetches frames lastIdx+1 .. n-1 in order, each as a delta
// against the previous (the reconstructed encoding chains as the next
// base), and delivers them consumer-paced. A transient error aborts —
// the caller redials and retries the same span. A typed non-transient
// server error for one frame means it is truly gone (evicted from the
// live ring before we got there): it is counted and skipped, and the
// delta chain reseeds with a full fetch at the next frame.
func (s *ReconnectSub) catchUp(cli *Client, n int, lastIdx *int, lastEnc *[]byte) error {
	for i := *lastIdx + 1; i < n; i++ {
		_, enc, _, _, err := cli.FetchFrameDelta(i, *lastIdx, *lastEnc)
		if err != nil {
			if IsTransient(err) {
				return err
			}
			s.skipped.Add(1)
			*lastEnc = nil // base chain broken; reseed with a full fetch
			*lastIdx = i
			continue
		}
		select {
		case s.ch <- ResumedFrame{Index: i, Payload: enc}:
		case <-s.done:
			return errReconnectClosed
		}
		*lastIdx = i
		*lastEnc = enc
	}
	return nil
}
