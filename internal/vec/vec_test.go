package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func approx(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func approxV(a, b V3) bool { return approx(a.X, b.X) && approx(a.Y, b.Y) && approx(a.Z, b.Z) }

func TestAddSub(t *testing.T) {
	a := New(1, 2, 3)
	b := New(4, -5, 6)
	if got := a.Add(b); got != (V3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (V3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
}

func TestScaleNeg(t *testing.T) {
	a := New(1, -2, 3)
	if got := a.Scale(2); got != (V3{2, -4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != (V3{-1, 2, -3}) {
		t.Errorf("Neg = %v", got)
	}
}

func TestDotCross(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	z := New(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y cross z = %v, want x", got)
	}
	if got := x.Dot(y); got != 0 {
		t.Errorf("x dot y = %v", got)
	}
}

func TestNorm(t *testing.T) {
	v := New(3, 4, 0)
	n := v.Norm()
	if !approx(n.Len(), 1) {
		t.Errorf("Norm length = %v", n.Len())
	}
	zero := V3{}
	if zero.Norm() != zero {
		t.Errorf("Norm of zero changed the vector")
	}
}

func TestLerp(t *testing.T) {
	a := New(0, 0, 0)
	b := New(2, 4, 8)
	if got := a.Lerp(b, 0.5); got != (V3{1, 2, 4}) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestComponentAccess(t *testing.T) {
	v := New(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := v.Component(i); got != want {
			t.Errorf("Component(%d) = %v, want %v", i, got, want)
		}
	}
	if got := v.WithComponent(1, 42); got != (V3{7, 42, 9}) {
		t.Errorf("WithComponent = %v", got)
	}
}

func TestComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Component(3) did not panic")
		}
	}()
	New(0, 0, 0).Component(3)
}

func TestIsFinite(t *testing.T) {
	if !New(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (V3{math.NaN(), 0, 0}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (V3{0, math.Inf(1), 0}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestPerpIsPerpendicular(t *testing.T) {
	f := func(x, y, z float64) bool {
		// Bound magnitudes so the cross product inside Perp cannot overflow.
		v := New(math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6))
		p := v.Perp()
		if v.Len2() == 0 {
			return p == V3{1, 0, 0}
		}
		return math.Abs(v.Norm().Dot(p)) < 1e-9 && approx(p.Len(), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cross product is perpendicular to both operands.
func TestCrossPerpendicularProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		// Bound magnitudes so the dot-product tolerance is meaningful.
		a := New(math.Mod(ax, 100), math.Mod(ay, 100), math.Mod(az, 100))
		b := New(math.Mod(bx, 100), math.Mod(by, 100), math.Mod(bz, 100))
		c := a.Cross(b)
		tol := 1e-6 * (1 + a.Len()*b.Len())
		return math.Abs(c.Dot(a)) < tol && math.Abs(c.Dot(b)) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |a.b| <= |a||b| (Cauchy-Schwarz).
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := New(math.Mod(ax, 1000), math.Mod(ay, 1000), math.Mod(az, 1000))
		b := New(math.Mod(bx, 1000), math.Mod(by, 1000), math.Mod(bz, 1000))
		return math.Abs(a.Dot(b)) <= a.Len()*b.Len()*(1+1e-12)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatIdentity(t *testing.T) {
	p := New(1, 2, 3)
	if got := Identity().Apply(p); got != p {
		t.Errorf("Identity.Apply = %v", got)
	}
}

func TestMatTranslate(t *testing.T) {
	m := Translate(New(1, 2, 3))
	if got := m.Apply(New(0, 0, 0)); got != (V3{1, 2, 3}) {
		t.Errorf("Translate.Apply = %v", got)
	}
	// Directions ignore translation.
	if got := m.ApplyDir(New(1, 0, 0)); got != (V3{1, 0, 0}) {
		t.Errorf("Translate.ApplyDir = %v", got)
	}
}

func TestMatRotations(t *testing.T) {
	// 90 degrees about Z maps X to Y.
	m := RotateZ(math.Pi / 2)
	got := m.Apply(New(1, 0, 0))
	if !approxV(got, V3{0, 1, 0}) {
		t.Errorf("RotateZ(90).Apply(x) = %v", got)
	}
	// 90 degrees about X maps Y to Z.
	got = RotateX(math.Pi / 2).Apply(New(0, 1, 0))
	if !approxV(got, V3{0, 0, 1}) {
		t.Errorf("RotateX(90).Apply(y) = %v", got)
	}
	// 90 degrees about Y maps Z to X.
	got = RotateY(math.Pi / 2).Apply(New(0, 0, 1))
	if !approxV(got, V3{1, 0, 0}) {
		t.Errorf("RotateY(90).Apply(z) = %v", got)
	}
}

func TestMatMulAssociatesWithApply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := RotateX(rng.Float64()).Mul(Translate(New(rng.Float64(), rng.Float64(), rng.Float64())))
		b := RotateY(rng.Float64()).Mul(Scaling(New(1+rng.Float64(), 1+rng.Float64(), 1+rng.Float64())))
		p := New(rng.Float64(), rng.Float64(), rng.Float64())
		want := a.Apply(b.Apply(p))
		got := a.Mul(b).Apply(p)
		if !approxV(got, want) {
			t.Fatalf("Mul/Apply mismatch: %v vs %v", got, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := M4{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	tr := m.Transpose()
	if tr[1] != 5 || tr[4] != 2 || tr[15] != 16 {
		t.Errorf("Transpose wrong: %v", tr)
	}
	if m.Transpose().Transpose() != m {
		t.Errorf("double transpose is not identity")
	}
}

func TestLookAtPlacesEyeAtOrigin(t *testing.T) {
	eye := New(1, 2, 3)
	m := LookAt(eye, New(0, 0, 0), New(0, 1, 0))
	if got := m.Apply(eye); !approxV(got, V3{}) {
		t.Errorf("LookAt maps eye to %v, want origin", got)
	}
	// The target should land on the -Z axis in view space.
	got := m.Apply(New(0, 0, 0))
	if !approx(got.X, 0) || !approx(got.Y, 0) || got.Z >= 0 {
		t.Errorf("LookAt maps target to %v, want on -Z axis", got)
	}
}

func TestPerspectiveDepthOrdering(t *testing.T) {
	proj := Perspective(math.Pi/3, 1, 0.1, 100)
	near := proj.Apply(New(0, 0, -0.5))
	far := proj.Apply(New(0, 0, -50))
	if near.Z >= far.Z {
		t.Errorf("perspective depth not monotonic: near %v far %v", near.Z, far.Z)
	}
}

func TestOrthoMapsBoxToCanonical(t *testing.T) {
	m := Ortho(-2, 2, -1, 1, 1, 10)
	lo := m.Apply(New(-2, -1, -1))
	hi := m.Apply(New(2, 1, -10))
	if !approxV(lo, V3{-1, -1, -1}) {
		t.Errorf("Ortho near corner = %v", lo)
	}
	if !approxV(hi, V3{1, 1, 1}) {
		t.Errorf("Ortho far corner = %v", hi)
	}
}
