package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyBox(t *testing.T) {
	b := Empty()
	if !b.IsEmpty() {
		t.Fatal("Empty() is not empty")
	}
	if b.Volume() != 0 {
		t.Errorf("empty volume = %v", b.Volume())
	}
	b = b.ExtendPoint(New(1, 2, 3))
	if b.IsEmpty() {
		t.Fatal("box still empty after ExtendPoint")
	}
	if !b.Contains(New(1, 2, 3)) {
		t.Error("box does not contain its only point")
	}
}

func TestExtendBox(t *testing.T) {
	a := Box(New(0, 0, 0), New(1, 1, 1))
	b := Box(New(2, -1, 0.5), New(3, 0.5, 2))
	u := a.ExtendBox(b)
	want := Box(New(0, -1, 0), New(3, 1, 2))
	if u != want {
		t.Errorf("ExtendBox = %v, want %v", u, want)
	}
}

func TestVolumeAndCenter(t *testing.T) {
	b := Box(New(0, 0, 0), New(2, 3, 4))
	if b.Volume() != 24 {
		t.Errorf("Volume = %v", b.Volume())
	}
	if b.Center() != (V3{1, 1.5, 2}) {
		t.Errorf("Center = %v", b.Center())
	}
}

// Property: the eight octants of a box exactly tile it (equal child
// volumes summing to the parent, disjoint interiors) and OctantIndex is
// consistent with Octant.
func TestOctantsTileParent(t *testing.T) {
	b := Box(New(-1, -2, -3), New(5, 4, 3))
	var sum float64
	for i := 0; i < 8; i++ {
		child := b.Octant(i)
		sum += child.Volume()
		if !approx(child.Volume(), b.Volume()/8) {
			t.Errorf("octant %d volume %v, want %v", i, child.Volume(), b.Volume()/8)
		}
	}
	if !approx(sum, b.Volume()) {
		t.Errorf("octants sum to %v, parent is %v", sum, b.Volume())
	}
}

func TestOctantIndexConsistency(t *testing.T) {
	b := Box(New(0, 0, 0), New(8, 8, 8))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := New(rng.Float64()*8, rng.Float64()*8, rng.Float64()*8)
		idx := b.OctantIndex(p)
		if !b.Octant(idx).Contains(p) {
			t.Fatalf("point %v assigned to octant %d = %+v which does not contain it",
				p, idx, b.Octant(idx))
		}
	}
}

func TestOctantIndexBoundaryGoesUp(t *testing.T) {
	b := Box(New(0, 0, 0), New(2, 2, 2))
	// The center is exactly on all three splitting planes: upper halves.
	if got := b.OctantIndex(New(1, 1, 1)); got != 7 {
		t.Errorf("center octant = %d, want 7", got)
	}
}

func TestIntersectRayThroughBox(t *testing.T) {
	b := Box(New(0, 0, 0), New(1, 1, 1))
	tEnter, tExit, hit := b.IntersectRay(New(-1, 0.5, 0.5), New(1, 0, 0))
	if !hit {
		t.Fatal("ray through box reported miss")
	}
	if !approx(tEnter, 1) || !approx(tExit, 2) {
		t.Errorf("enter/exit = %v/%v, want 1/2", tEnter, tExit)
	}
}

func TestIntersectRayMiss(t *testing.T) {
	b := Box(New(0, 0, 0), New(1, 1, 1))
	if _, _, hit := b.IntersectRay(New(-1, 5, 0.5), New(1, 0, 0)); hit {
		t.Error("ray far above box reported hit")
	}
	// Parallel ray outside a slab.
	if _, _, hit := b.IntersectRay(New(0.5, 2, 0.5), New(1, 0, 0)); hit {
		t.Error("parallel outside ray reported hit")
	}
}

func TestIntersectRayFromInside(t *testing.T) {
	b := Box(New(0, 0, 0), New(1, 1, 1))
	tEnter, tExit, hit := b.IntersectRay(New(0.5, 0.5, 0.5), New(0, 0, 1))
	if !hit {
		t.Fatal("ray from inside reported miss")
	}
	if tEnter > 0 {
		t.Errorf("enter from inside should be <= 0, got %v", tEnter)
	}
	if !approx(tExit, 0.5) {
		t.Errorf("exit = %v, want 0.5", tExit)
	}
}

func TestNormalizeRoundTrip(t *testing.T) {
	b := Box(New(-3, 2, 10), New(5, 6, 30))
	f := func(x, y, z float64) bool {
		p := New(math.Mod(x, 4), math.Mod(y, 2)+4, math.Mod(z, 10)+20)
		q := b.Denormalize(b.Normalize(p))
		return approxV(p, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeDegenerateAxis(t *testing.T) {
	b := Box(New(0, 0, 5), New(1, 1, 5)) // flat in Z
	n := b.Normalize(New(0.5, 0.25, 5))
	if n.Z != 0.5 {
		t.Errorf("degenerate axis normalized to %v, want 0.5", n.Z)
	}
}

func TestIntersects(t *testing.T) {
	a := Box(New(0, 0, 0), New(1, 1, 1))
	b := Box(New(0.5, 0.5, 0.5), New(2, 2, 2))
	c := Box(New(2, 2, 2), New(3, 3, 3))
	if !a.Intersects(b) {
		t.Error("overlapping boxes reported disjoint")
	}
	if a.Intersects(c) {
		t.Error("disjoint boxes reported overlapping")
	}
	// Touching at a corner counts as intersecting (inclusive).
	d := Box(New(1, 1, 1), New(2, 2, 2))
	if !a.Intersects(d) {
		t.Error("corner-touching boxes reported disjoint")
	}
}
