package vec

import "math"

// M4 is a 4x4 matrix in row-major order, used for the model-view and
// projection transforms of the software renderer.
type M4 [16]float64

// Identity returns the 4x4 identity matrix.
func Identity() M4 {
	return M4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Translate returns a translation matrix by t.
func Translate(t V3) M4 {
	return M4{
		1, 0, 0, t.X,
		0, 1, 0, t.Y,
		0, 0, 1, t.Z,
		0, 0, 0, 1,
	}
}

// Scaling returns a scaling matrix with per-axis factors s.
func Scaling(s V3) M4 {
	return M4{
		s.X, 0, 0, 0,
		0, s.Y, 0, 0,
		0, 0, s.Z, 0,
		0, 0, 0, 1,
	}
}

// RotateX returns a rotation about the X axis by angle radians.
func RotateX(angle float64) M4 {
	c, s := math.Cos(angle), math.Sin(angle)
	return M4{
		1, 0, 0, 0,
		0, c, -s, 0,
		0, s, c, 0,
		0, 0, 0, 1,
	}
}

// RotateY returns a rotation about the Y axis by angle radians.
func RotateY(angle float64) M4 {
	c, s := math.Cos(angle), math.Sin(angle)
	return M4{
		c, 0, s, 0,
		0, 1, 0, 0,
		-s, 0, c, 0,
		0, 0, 0, 1,
	}
}

// RotateZ returns a rotation about the Z axis by angle radians.
func RotateZ(angle float64) M4 {
	c, s := math.Cos(angle), math.Sin(angle)
	return M4{
		c, -s, 0, 0,
		s, c, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Mul returns the matrix product m*n.
func (m M4) Mul(n M4) M4 {
	var r M4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += m[i*4+k] * n[k*4+j]
			}
			r[i*4+j] = s
		}
	}
	return r
}

// Apply transforms the point p (w=1) by m and performs the perspective
// divide. Points at w=0 are returned untransformed in w.
func (m M4) Apply(p V3) V3 {
	x := m[0]*p.X + m[1]*p.Y + m[2]*p.Z + m[3]
	y := m[4]*p.X + m[5]*p.Y + m[6]*p.Z + m[7]
	z := m[8]*p.X + m[9]*p.Y + m[10]*p.Z + m[11]
	w := m[12]*p.X + m[13]*p.Y + m[14]*p.Z + m[15]
	if w != 0 && w != 1 {
		inv := 1 / w
		return V3{x * inv, y * inv, z * inv}
	}
	return V3{x, y, z}
}

// ApplyDir transforms the direction d (w=0) by m, ignoring translation.
func (m M4) ApplyDir(d V3) V3 {
	return V3{
		m[0]*d.X + m[1]*d.Y + m[2]*d.Z,
		m[4]*d.X + m[5]*d.Y + m[6]*d.Z,
		m[8]*d.X + m[9]*d.Y + m[10]*d.Z,
	}
}

// Transpose returns the transpose of m.
func (m M4) Transpose() M4 {
	var r M4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[j*4+i] = m[i*4+j]
		}
	}
	return r
}

// LookAt returns a view matrix placing the camera at eye, looking at
// target, with the given approximate up direction, matching the
// OpenGL gluLookAt convention (camera looks down -Z in view space).
func LookAt(eye, target, up V3) M4 {
	f := target.Sub(eye).Norm()
	s := f.Cross(up.Norm()).Norm()
	u := s.Cross(f)
	return M4{
		s.X, s.Y, s.Z, -s.Dot(eye),
		u.X, u.Y, u.Z, -u.Dot(eye),
		-f.X, -f.Y, -f.Z, f.Dot(eye),
		0, 0, 0, 1,
	}
}

// Perspective returns a perspective projection with the given vertical
// field of view (radians), aspect ratio, and near/far planes, matching
// the OpenGL gluPerspective convention.
func Perspective(fovy, aspect, near, far float64) M4 {
	t := 1 / math.Tan(fovy/2)
	return M4{
		t / aspect, 0, 0, 0,
		0, t, 0, 0,
		0, 0, (far + near) / (near - far), 2 * far * near / (near - far),
		0, 0, -1, 0,
	}
}

// Ortho returns an orthographic projection mapping the box
// [l,r]x[b,t]x[n,f] to the canonical view volume.
func Ortho(l, r, b, t, n, f float64) M4 {
	return M4{
		2 / (r - l), 0, 0, -(r + l) / (r - l),
		0, 2 / (t - b), 0, -(t + b) / (t - b),
		0, 0, -2 / (f - n), -(f + n) / (f - n),
		0, 0, 0, 1,
	}
}
