// Package vec provides the small dense linear-algebra types used across
// the visualization pipeline: 3-component vectors, 4x4 transforms,
// axis-aligned boxes, and a simple look-at camera.
//
// All types are plain value types with float64 components. They are
// deliberately allocation-free: every operation returns a new value and
// no method mutates its receiver, so they are safe to share across the
// goroutine-parallel stages of the pipeline.
package vec

import (
	"fmt"
	"math"
)

// V3 is a 3-component double-precision vector. It is used both for
// spatial positions (x, y, z) and for momenta (px, py, pz), matching the
// six-dimensional phase-space coordinates of the beam-dynamics data.
type V3 struct {
	X, Y, Z float64
}

// New returns the vector (x, y, z).
func New(x, y, z float64) V3 { return V3{x, y, z} }

// Add returns v + w.
func (v V3) Add(w V3) V3 { return V3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v V3) Sub(w V3) V3 { return V3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v V3) Scale(s float64) V3 { return V3{s * v.X, s * v.Y, s * v.Z} }

// Mul returns the component-wise product of v and w.
func (v V3) Mul(w V3) V3 { return V3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Div returns the component-wise quotient v / w.
func (v V3) Div(w V3) V3 { return V3{v.X / w.X, v.Y / w.Y, v.Z / w.Z} }

// Neg returns -v.
func (v V3) Neg() V3 { return V3{-v.X, -v.Y, -v.Z} }

// Dot returns the inner product of v and w.
func (v V3) Dot(w V3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v V3) Cross(w V3) V3 {
	return V3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean norm of v.
func (v V3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns the squared Euclidean norm of v.
func (v V3) Len2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v V3) Dist(w V3) float64 { return v.Sub(w).Len() }

// Norm returns v scaled to unit length. The zero vector is returned
// unchanged so callers need not special-case degenerate tangents.
func (v V3) Norm() V3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Lerp returns the linear interpolation (1-t)*v + t*w.
func (v V3) Lerp(w V3, t float64) V3 {
	return V3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// Min returns the component-wise minimum of v and w.
func (v V3) Min(w V3) V3 {
	return V3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v V3) Max(w V3) V3 {
	return V3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// Abs returns the component-wise absolute value of v.
func (v V3) Abs() V3 {
	return V3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)}
}

// MaxComponent returns the largest of the three components.
func (v V3) MaxComponent() float64 {
	return math.Max(v.X, math.Max(v.Y, v.Z))
}

// MinComponent returns the smallest of the three components.
func (v V3) MinComponent() float64 {
	return math.Min(v.X, math.Min(v.Y, v.Z))
}

// Component returns component i of v, with i in 0..2 ordered X, Y, Z.
func (v V3) Component(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	case 2:
		return v.Z
	}
	panic(fmt.Sprintf("vec: component index %d out of range", i))
}

// WithComponent returns a copy of v with component i replaced by x.
func (v V3) WithComponent(i int, x float64) V3 {
	switch i {
	case 0:
		v.X = x
	case 1:
		v.Y = x
	case 2:
		v.Z = x
	default:
		panic(fmt.Sprintf("vec: component index %d out of range", i))
	}
	return v
}

// IsFinite reports whether all components are finite (no NaN or Inf).
func (v V3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v V3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

// Perp returns an arbitrary unit vector perpendicular to v. It is used
// to start the parallel-transport frame along field lines. For the zero
// vector it returns the X axis.
func (v V3) Perp() V3 {
	if v.Len2() == 0 {
		return V3{1, 0, 0}
	}
	// Cross with the axis least aligned with v to avoid degeneracy.
	a := v.Abs()
	var axis V3
	switch {
	case a.X <= a.Y && a.X <= a.Z:
		axis = V3{1, 0, 0}
	case a.Y <= a.Z:
		axis = V3{0, 1, 0}
	default:
		axis = V3{0, 0, 1}
	}
	return v.Cross(axis).Norm()
}
