package vec

import "math"

// AABB is an axis-aligned bounding box, the basic spatial-subdivision
// primitive of the particle octree and of the hexahedral cavity meshes.
// An AABB with Min > Max on any axis is "empty"; Empty() constructs the
// canonical empty box, which absorbs points and boxes via Extend*.
type AABB struct {
	Min, Max V3
}

// Empty returns the canonical empty box (+Inf mins, -Inf maxes).
func Empty() AABB {
	inf := math.Inf(1)
	return AABB{V3{inf, inf, inf}, V3{-inf, -inf, -inf}}
}

// Box returns the AABB spanning min..max.
func Box(min, max V3) AABB { return AABB{min, max} }

// IsEmpty reports whether the box contains no points.
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// ExtendPoint returns the smallest box containing both b and p.
func (b AABB) ExtendPoint(p V3) AABB {
	return AABB{b.Min.Min(p), b.Max.Max(p)}
}

// ExtendBox returns the smallest box containing both b and o.
func (b AABB) ExtendBox(o AABB) AABB {
	return AABB{b.Min.Min(o.Min), b.Max.Max(o.Max)}
}

// Contains reports whether p lies inside b (inclusive of faces).
func (b AABB) Contains(p V3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Center returns the centroid of b.
func (b AABB) Center() V3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the per-axis extents of b.
func (b AABB) Size() V3 { return b.Max.Sub(b.Min) }

// Volume returns the volume of b, or 0 for an empty box.
func (b AABB) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X * s.Y * s.Z
}

// Diagonal returns the length of the main diagonal.
func (b AABB) Diagonal() float64 { return b.Size().Len() }

// Octant returns the i-th (0..7) child box of the uniform octree split
// of b. Bit 0 selects the upper X half, bit 1 the upper Y half, bit 2
// the upper Z half — the same child indexing used by the octree
// partitioner so that child boxes can be derived without storage.
func (b AABB) Octant(i int) AABB {
	c := b.Center()
	child := b
	if i&1 != 0 {
		child.Min.X = c.X
	} else {
		child.Max.X = c.X
	}
	if i&2 != 0 {
		child.Min.Y = c.Y
	} else {
		child.Max.Y = c.Y
	}
	if i&4 != 0 {
		child.Min.Z = c.Z
	} else {
		child.Max.Z = c.Z
	}
	return child
}

// OctantIndex returns which of the eight child octants of b contains p,
// using the same bit convention as Octant. Points exactly on the
// splitting plane go to the upper half, which keeps insertion
// deterministic.
func (b AABB) OctantIndex(p V3) int {
	c := b.Center()
	i := 0
	if p.X >= c.X {
		i |= 1
	}
	if p.Y >= c.Y {
		i |= 2
	}
	if p.Z >= c.Z {
		i |= 4
	}
	return i
}

// Intersects reports whether b and o overlap (inclusive).
func (b AABB) Intersects(o AABB) bool {
	return b.Min.X <= o.Max.X && b.Max.X >= o.Min.X &&
		b.Min.Y <= o.Max.Y && b.Max.Y >= o.Min.Y &&
		b.Min.Z <= o.Max.Z && b.Max.Z >= o.Min.Z
}

// IntersectRay intersects the ray origin + t*dir with b and returns the
// parametric entry and exit distances. It reports false when the ray
// misses the box. Entry may be negative when the origin is inside.
func (b AABB) IntersectRay(origin, dir V3) (tEnter, tExit float64, hit bool) {
	tEnter = math.Inf(-1)
	tExit = math.Inf(1)
	for axis := 0; axis < 3; axis++ {
		o := origin.Component(axis)
		d := dir.Component(axis)
		lo := b.Min.Component(axis)
		hi := b.Max.Component(axis)
		if d == 0 {
			if o < lo || o > hi {
				return 0, 0, false
			}
			continue
		}
		t0 := (lo - o) / d
		t1 := (hi - o) / d
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tEnter {
			tEnter = t0
		}
		if t1 < tExit {
			tExit = t1
		}
		if tEnter > tExit {
			return 0, 0, false
		}
	}
	return tEnter, tExit, true
}

// Normalize maps p from box coordinates to [0,1]^3. Degenerate axes map
// to 0.5 so flattened boxes (e.g. planar phase plots) stay renderable.
func (b AABB) Normalize(p V3) V3 {
	s := b.Size()
	n := V3{0.5, 0.5, 0.5}
	if s.X > 0 {
		n.X = (p.X - b.Min.X) / s.X
	}
	if s.Y > 0 {
		n.Y = (p.Y - b.Min.Y) / s.Y
	}
	if s.Z > 0 {
		n.Z = (p.Z - b.Min.Z) / s.Z
	}
	return n
}

// Denormalize maps p from [0,1]^3 back to box coordinates.
func (b AABB) Denormalize(p V3) V3 {
	s := b.Size()
	return V3{
		b.Min.X + p.X*s.X,
		b.Min.Y + p.Y*s.Y,
		b.Min.Z + p.Z*s.Z,
	}
}
