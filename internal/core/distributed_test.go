package core

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/remote"
)

// noLeaks polls until the goroutine count falls back to the baseline,
// failing the test if pipeline or client goroutines outlive the
// stream.
func noLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestStreamRemoteExtractBitIdentical is the integration acceptance
// test of the distributed stage path: StreamFrames with ExtractAddr
// pointed at an in-process worker must produce byte-for-byte the
// representations of the all-local run, in frame order, with several
// frames in flight on the worker connection.
func TestStreamRemoteExtractBitIdentical(t *testing.T) {
	p, frames := streamFixture(t, 4000)
	// Pin the splat worker count: the volume splat's slab boundaries
	// depend on it, and bit-identity across processes requires both
	// sides to use the same value.
	p.Extract.Workers = 2

	var want [][]byte
	local := p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{
		PartitionWorkers: 2,
		ExtractWorkers:   2,
	})
	for r := range local.Out {
		want = append(want, r.Rep.AppendBinary(nil))
	}
	if err := local.Wait(); err != nil {
		t.Fatal(err)
	}

	w, err := remote.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	s := p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{
		ExtractAddr:    w.Addr(),
		ExtractWorkers: 3, // frames in flight across the wire
		Buffer:         2,
	})
	got := 0
	for r := range s.Out {
		if r.Index != got {
			t.Fatalf("result %d arrived with index %d (order violated)", got, r.Index)
		}
		if r.Tree != nil {
			t.Error("distributed stage materialized a local tree")
		}
		if !bytes.Equal(r.Rep.AppendBinary(nil), want[got]) {
			t.Errorf("frame %d: distributed extraction differs from local", got)
		}
		got++
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != len(frames) {
		t.Fatalf("stream emitted %d frames, want %d", got, len(frames))
	}
}

// TestStreamRemoteExtractDialFailure: a bad worker address fails the
// stream promptly — Wait reports the dial error, Out closes, no
// goroutine survives.
func TestStreamRemoteExtractDialFailure(t *testing.T) {
	before := runtime.NumGoroutine()
	p, frames := streamFixture(t, 500)
	// A port nothing listens on: bind one, close it, reuse the address.
	w, err := remote.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := w.Addr()
	w.Close()

	s := p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{ExtractAddr: addr})
	for range s.Out {
		t.Error("stream emitted a frame despite a dead worker address")
	}
	err = s.Wait()
	if err == nil || !strings.Contains(err.Error(), "dialing extract worker") {
		t.Fatalf("Wait = %v, want dial failure", err)
	}
	noLeaks(t, before)
}

// TestStreamRemoteExtractWorkerCrash: the worker dying mid-stream
// propagates through the pipeline's first-error drain — Wait errors,
// every stage unwinds, nothing leaks.
func TestStreamRemoteExtractWorkerCrash(t *testing.T) {
	before := runtime.NumGoroutine()
	p, frames := streamFixture(t, 2000)
	w, err := remote.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	long := append(frames, frames...)
	long = append(long, frames...) // 9 frames
	s := p.StreamFrames(context.Background(), FrameSliceSource(long...), StreamOptions{
		ExtractAddr:    w.Addr(),
		ExtractWorkers: 2,
	})
	// Take one good frame, then kill the worker under the stream.
	if _, ok := <-s.Out; !ok {
		t.Fatal("stream produced nothing before the crash")
	}
	w.Close()
	for range s.Out {
	}
	if err := s.Wait(); err == nil {
		t.Fatal("Wait returned nil after the worker crashed mid-stream")
	}
	noLeaks(t, before)
}

// TestStreamRemoteExtractCancel: cancelling the caller's context
// aborts a distributed stream promptly even with requests in flight.
func TestStreamRemoteExtractCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	p, frames := streamFixture(t, 2000)
	w, err := remote.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ctx, cancel := context.WithCancel(context.Background())
	long := append(frames, frames...)
	long = append(long, frames...)
	s := p.StreamFrames(ctx, FrameSliceSource(long...), StreamOptions{
		ExtractAddr:    w.Addr(),
		ExtractWorkers: 2,
	})
	<-s.Out // at least one frame through, requests in flight behind it
	cancel()

	done := make(chan error, 1)
	go func() { done <- s.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait hung after cancellation")
	}
	w.Close() // retire the worker's accept loop before counting
	noLeaks(t, before)
}

// TestStreamRemoteExtractOptionValidation: the incompatible option
// combinations fail fast with a clear error instead of starting a
// half-configured stream.
func TestStreamRemoteExtractOptionValidation(t *testing.T) {
	p, frames := streamFixture(t, 500)
	for name, opts := range map[string]StreamOptions{
		"skip extract": {ExtractAddr: "127.0.0.1:1", SkipExtract: true},
		"keep trees":   {ExtractAddr: "127.0.0.1:1", KeepTrees: true},
	} {
		s := p.StreamFrames(context.Background(), FrameSliceSource(frames...), opts)
		for range s.Out {
			t.Errorf("%s: stream emitted output", name)
		}
		if err := s.Wait(); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
}

// TestStreamFleetExtractSurvivesWorkerLoss is the fleet acceptance
// test: a 3-worker fleet stream loses one worker mid-run and still
// delivers every frame, in order, byte-for-byte identical to the
// all-local run — the failover is invisible in the output.
func TestStreamFleetExtractSurvivesWorkerLoss(t *testing.T) {
	p, frames := streamFixture(t, 3000)
	// Pin the splat worker count: bit-identity across processes
	// requires both sides to use the same value.
	p.Extract.Workers = 2
	long := append(frames, frames...)
	long = append(long, frames...)
	long = append(long, frames...) // 12 frames

	var want [][]byte
	local := p.StreamFrames(context.Background(), FrameSliceSource(long...), StreamOptions{
		PartitionWorkers: 2,
		ExtractWorkers:   2,
	})
	for r := range local.Out {
		want = append(want, r.Rep.AppendBinary(nil))
	}
	if err := local.Wait(); err != nil {
		t.Fatal(err)
	}

	workers := make([]*remote.Worker, 3)
	addrs := make([]string, 3)
	for i := range workers {
		w, err := remote.NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers[i], addrs[i] = w, w.Addr()
	}
	before := runtime.NumGoroutine() // workers up, stream not yet started

	s := p.StreamFrames(context.Background(), FrameSliceSource(long...), StreamOptions{
		ExtractAddrs:   addrs,
		ExtractWorkers: 2,
		Buffer:         2,
		ExtractPolicy: &remote.FleetOptions{
			Retry:         pipeline.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: -1},
			EjectAfter:    1,
			ProbeInterval: -1,
		},
	})
	got := 0
	for r := range s.Out {
		if r.Index != got {
			t.Fatalf("result %d arrived with index %d (order violated across failover)", got, r.Index)
		}
		if !bytes.Equal(r.Rep.AppendBinary(nil), want[got]) {
			t.Errorf("frame %d: fleet extraction differs from local", got)
		}
		got++
		if got == 2 {
			// Kill a member with the stream mid-flight; its frames must
			// re-dispatch to the survivors.
			workers[0].Close()
		}
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait = %v after losing one of three workers", err)
	}
	if got != len(long) {
		t.Fatalf("stream emitted %d frames, want %d (frames lost in failover)", got, len(long))
	}
	noLeaks(t, before)
}

// TestStreamFleetAllWorkersDown: when every fleet member dies the
// stream fails cleanly once the retry policy is spent — no hang, no
// leaked stage.
func TestStreamFleetAllWorkersDown(t *testing.T) {
	p, frames := streamFixture(t, 1000)
	w1, err := remote.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := remote.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	long := append(frames, frames...) // 6 frames
	s := p.StreamFrames(context.Background(), FrameSliceSource(long...), StreamOptions{
		ExtractAddrs:   []string{w1.Addr(), w2.Addr()},
		ExtractWorkers: 2,
		ExtractPolicy: &remote.FleetOptions{
			Retry:         pipeline.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Jitter: -1},
			EjectAfter:    1,
			ProbeInterval: -1,
		},
	})
	if _, ok := <-s.Out; !ok {
		t.Fatal("stream produced nothing before the outage")
	}
	w1.Close()
	w2.Close()
	for range s.Out {
	}
	if err := s.Wait(); err == nil {
		t.Fatal("Wait returned nil after the whole fleet died")
	}
	noLeaks(t, before)
}

// TestStreamExtractAddrsValidation: ExtractAddr and ExtractAddrs are
// mutually exclusive, and the fleet path inherits the single-worker
// incompatibilities.
func TestStreamExtractAddrsValidation(t *testing.T) {
	p, frames := streamFixture(t, 500)
	for name, opts := range map[string]StreamOptions{
		"both addr forms": {ExtractAddr: "127.0.0.1:1", ExtractAddrs: []string{"127.0.0.1:2"}},
		"skip extract":    {ExtractAddrs: []string{"127.0.0.1:1"}, SkipExtract: true},
		"keep trees":      {ExtractAddrs: []string{"127.0.0.1:1"}, KeepTrees: true},
	} {
		s := p.StreamFrames(context.Background(), FrameSliceSource(frames...), opts)
		for range s.Out {
			t.Errorf("%s: stream emitted output", name)
		}
		if err := s.Wait(); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
}
